/**
 * @file
 * Regenerates paper Fig. 16, the ablation studies:
 *  (a) adaptive codec architecture: deploy the TBS-pruned model on
 *      every hardware architecture; ones without the codec/MBD units
 *      fall back to dense independent-dimension blocks.
 *  (b) I/O-aware configurable architecture: scheduling off, and the
 *      DVPE replaced by SIGMA's element-level FAN.
 *
 * Paper reference: other architectures lose >= 1.44x on the TBS
 * model; scheduling contributes 1.57x utilisation; DVPE+FAN's EDP is
 * 1.61x worse than the DVPE.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "util/stats.hpp"
#include "workload/models.hpp"

using namespace tbstc;
using accel::AccelKind;

int
main()
{
    const workload::GemmShape shape{"resnet50.conv4", 256, 2304, 196};
    const double sparsity = 0.75;

    util::banner("Fig. 16(a): the TBS-pruned model on every "
                 "architecture (codec ablation)");
    util::Table a({"architecture", "cycles", "slowdown vs TB-STC"});
    accel::RunRequest req;
    req.shape = shape;
    req.sparsity = sparsity;
    req.patternOverride = core::Pattern::TBS;
    const auto tb = accel::runLayer(AccelKind::TbStc, req);
    for (AccelKind kind :
         {AccelKind::STC, AccelKind::Vegeta, AccelKind::HighLight,
          AccelKind::RmStc, AccelKind::TbStc}) {
        const auto s = accel::runLayer(kind, req);
        a.addRow({accel::accelName(kind), util::fmtDouble(s.cycles, 0),
                  bench::fmtRatio(s.cycles / tb.cycles)});
    }
    a.print();
    std::printf("Reading: without the adaptive codec / MBD units the "
                "TBS model's independent-\ndimension blocks fall back "
                "to dense (paper: >= 1.44x gap).\n");

    util::banner("Fig. 16(b): scheduling and reduction-network "
                 "ablation");
    util::Table b({"configuration", "cycles", "compute util",
                   "norm. EDP"});
    accel::RunRequest base;
    base.shape = shape;
    base.sparsity = sparsity;
    const auto full = accel::runLayer(AccelKind::TbStc, base);

    auto naive_cfg = accel::accelConfig(AccelKind::TbStc);
    naive_cfg.interSched = sim::InterSched::Naive;
    naive_cfg.intraMap = sim::IntraMap::Naive;
    accel::RunRequest naive_req = base;
    naive_req.configOverride = naive_cfg;
    const auto naive = accel::runLayer(AccelKind::TbStc, naive_req);

    const auto fan = accel::runLayer(AccelKind::TbStcFan, base);

    b.addRow({"non-scheduling", util::fmtDouble(naive.cycles, 0),
              bench::fmtPct(naive.computeUtilisation),
              util::fmtDouble(naive.edp / full.edp, 2)});
    b.addRow({"DVPE+FAN (SIGMA)", util::fmtDouble(fan.cycles, 0),
              bench::fmtPct(fan.computeUtilisation),
              util::fmtDouble(fan.edp / full.edp, 2)});
    b.addRow({"TB-STC (full)", util::fmtDouble(full.cycles, 0),
              bench::fmtPct(full.computeUtilisation), "1.00"});
    b.print();
    std::printf("Reading: scheduling lifts utilisation %.2fx (paper: "
                "1.57x); FAN's element-level\nnetwork costs %.2fx EDP "
                "(paper: 1.61x).\n",
                full.computeUtilisation / naive.computeUtilisation,
                fan.edp / full.edp);
    return 0;
}
