/**
 * @file
 * Regenerates paper Fig. 15, the sensitivity studies:
 *  (a) block size M vs speedup and accuracy,
 *  (b) weight int8 quantization on top of TBS ("Q+S"),
 *  (c) memory-bandwidth sweep,
 *  (d) sparsity-degree sweep against SGCN.
 *
 * Paper reference: speedup flattens beyond M = 8 while accuracy falls
 * (94.91 -> 93.82); Q+S adds 1.33x / 1.39x on ResNet-50 / BERT;
 * bandwidth saturates around 256 GB/s; TB-STC beats SGCN by ~1.32x
 * for 30-90% sparsity but loses at 95%.
 *
 * Every sweep point is an independent (train +) simulate unit, so each
 * section fans its points out over the worker pool (TBSTC_THREADS) and
 * assembles rows in index order — output is identical at any count.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "nn/sparse_train.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "workload/accuracy_model.hpp"

using namespace tbstc;
using accel::AccelKind;
using workload::ModelId;

namespace {

double
trainAtBlockSize(size_t m, uint64_t seed)
{
    util::Rng rng(seed);
    nn::DatasetConfig dc;
    dc.features = 32;
    dc.classes = 8;
    dc.trainSamples = 2048;
    dc.testSamples = 1024;
    const nn::DataSplit data = nn::makeClusterDataset(dc, rng);
    nn::Mlp model({32, 64, 64, 8}, rng);
    nn::TrainConfig cfg;
    cfg.pattern = core::Pattern::TBS;
    cfg.sparsity = 0.75;
    cfg.m = m;
    cfg.epochs = 18;
    cfg.rampEpochs = 8;
    cfg.lr = 0.08;
    return nn::sparseTrain(model, data, cfg, rng).finalAccuracy * 100.0;
}

void
blockSize(bench::BenchReport &report)
{
    util::banner("Fig. 15(a): block size vs speedup and measured "
                 "accuracy (75% TBS)");
    util::Table t({"M", "speedup vs dense", "trained accuracy(%)"});
    accel::RunRequest dense_req;
    dense_req.shape = workload::GemmShape{"conv4.3x3", 256, 2304, 196};
    dense_req.sparsity = 0.0;
    const auto dense = accel::runLayer(AccelKind::TC, dense_req);
    const std::vector<size_t> ms{4, 8, 16, 32};
    struct Point
    {
        double speedup = 0.0;
        double acc = 0.0;
    };
    const auto points = util::parallelMap<Point>(
        ms.size(), [&](size_t i) {
            accel::RunRequest req = dense_req;
            req.sparsity = 0.75;
            req.m = ms[i];
            const auto s = accel::runLayer(AccelKind::TbStc, req);
            // Really train at this block size (2 seeds averaged).
            const double acc = 0.5 * (trainAtBlockSize(ms[i], 31)
                                      + trainAtBlockSize(ms[i], 32));
            return Point{dense.cycles / s.cycles, acc};
        });
    for (size_t i = 0; i < ms.size(); ++i)
        t.addRow({std::to_string(ms[i]),
                  bench::fmtRatio(points[i].speedup),
                  util::fmtDouble(points[i].acc, 2)});
    t.print();
    report.addTable("fig15a_block_size", t);
    std::printf("Reading: speedup peaks at M = 8 and saturates beyond. "
                "Measured MLP accuracy\ndifferences across M sit "
                "inside seed noise (~1%%), the same magnitude as the\n"
                "paper's 94.91 -> 93.82 drop from M = 8 to 32 -> M = 8 "
                "is the sweet spot.\n");
}

void
quantization(bench::BenchReport &report)
{
    util::banner("Fig. 15(b): weight int8 quantization on TBS-pruned "
                 "models (Q+S)");
    util::Table t({"model", "S speedup", "Q+S speedup", "Q gain",
                   "paper gain"});
    struct Row
    {
        ModelId model;
        uint64_t seq;
        double sparsity;
        const char *paper;
    };
    const std::vector<Row> rows{
        {ModelId::ResNet50, 0, 0.75, "1.33x"},
        {ModelId::BertBase, 128, 0.50, "1.39x"}};
    struct Point
    {
        double dense = 0.0;
        double fp16 = 0.0;
        double int8 = 0.0;
    };
    const auto points = util::parallelMap<Point>(
        rows.size(), [&](size_t i) {
            const Row &r = rows[i];
            Point p;
            p.dense =
                accel::runModel(AccelKind::TC, r.model, 0.0, r.seq)
                    .cycles;
            p.fp16 = accel::runModel(AccelKind::TbStc, r.model,
                                     r.sparsity, r.seq)
                         .cycles;
            p.int8 = accel::runModel(AccelKind::TbStc, r.model,
                                     r.sparsity, r.seq, true)
                         .cycles;
            return p;
        });
    for (size_t i = 0; i < rows.size(); ++i)
        t.addRow({workload::modelName(rows[i].model),
                  bench::fmtRatio(points[i].dense / points[i].fp16),
                  bench::fmtRatio(points[i].dense / points[i].int8),
                  bench::fmtRatio(points[i].fp16 / points[i].int8),
                  rows[i].paper});
    t.print();
    report.addTable("fig15b_quantization", t);
}

void
bandwidth(bench::BenchReport &report)
{
    util::banner("Fig. 15(c): memory-bandwidth sweep (decode-style "
                 "OPT FFN layer, 87.5% TBS)");
    util::Table t({"bandwidth(GB/s)", "normalized speedup"});
    const std::vector<double> bws{32.0, 64.0, 128.0, 256.0, 512.0};
    const auto cycles = util::parallelMap<double>(
        bws.size(), [&](size_t i) {
            auto cfg = accel::accelConfig(AccelKind::TbStc);
            cfg.dramGbps = bws[i];
            accel::RunRequest req;
            // Small-batch decode: weight traffic dominates, which is
            // the regime the paper's sweep explores ("still limited by
            // memory access when handling tasks with higher
            // sparsity").
            req.shape = workload::GemmShape{"opt.fc1", 16384, 4096, 8};
            req.sparsity = 0.875;
            req.configOverride = cfg;
            return accel::runLayer(AccelKind::TbStc, req).cycles;
        });
    for (size_t i = 0; i < bws.size(); ++i)
        t.addRow({util::fmtDouble(bws[i], 0),
                  bench::fmtRatio(cycles[0] / cycles[i])});
    t.print();
    report.addTable("fig15c_bandwidth", t);
    std::printf("Reading: bandwidth-bound until ~256 GB/s, then "
                "compute-bound (paper Fig. 15(c)).\n");
}

void
sparsitySweep(bench::BenchReport &report)
{
    util::banner("Fig. 15(d): sparsity sweep vs SGCN (512x512x256 "
                 "layer)");
    util::Table t({"sparsity", "SGCN cycles", "TB-STC cycles",
                   "TB-STC gain"});
    const std::vector<double> sps{0.3, 0.5, 0.7, 0.9, 0.95};
    struct Point
    {
        double sg = 0.0;
        double tb = 0.0;
    };
    const auto points = util::parallelMap<Point>(
        sps.size(), [&](size_t i) {
            accel::RunRequest req;
            req.shape = workload::GemmShape{"sweep", 512, 512, 256};
            req.sparsity = sps[i];
            return Point{accel::runLayer(AccelKind::Sgcn, req).cycles,
                         accel::runLayer(AccelKind::TbStc, req).cycles};
        });
    std::vector<double> mid_gains;
    for (size_t i = 0; i < sps.size(); ++i) {
        const double gain = points[i].sg / points[i].tb;
        if (sps[i] <= 0.9)
            mid_gains.push_back(gain);
        t.addRow({util::fmtDouble(sps[i], 2),
                  util::fmtDouble(points[i].sg, 0),
                  util::fmtDouble(points[i].tb, 0),
                  bench::fmtRatio(gain)});
    }
    t.print();
    report.addTable("fig15d_sparsity_sweep", t);
    std::printf("Mean TB-STC gain over SGCN for 30-90%% sparsity: "
                "%.2fx (paper: 1.32x); SGCN wins at 95%%.\n",
                util::geomean(mid_gains));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig15_sensitivity");
    blockSize(report);
    quantization(report);
    bandwidth(report);
    sparsitySweep(report);
    return 0;
}
