/**
 * @file
 * Regenerates paper Fig. 15, the sensitivity studies:
 *  (a) block size M vs speedup and accuracy,
 *  (b) weight int8 quantization on top of TBS ("Q+S"),
 *  (c) memory-bandwidth sweep,
 *  (d) sparsity-degree sweep against SGCN.
 *
 * Paper reference: speedup flattens beyond M = 8 while accuracy falls
 * (94.91 -> 93.82); Q+S adds 1.33x / 1.39x on ResNet-50 / BERT;
 * bandwidth saturates around 256 GB/s; TB-STC beats SGCN by ~1.32x
 * for 30-90% sparsity but loses at 95%.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "nn/sparse_train.hpp"
#include "util/stats.hpp"
#include "workload/accuracy_model.hpp"

using namespace tbstc;
using accel::AccelKind;
using workload::ModelId;

namespace {

double
trainAtBlockSize(size_t m, uint64_t seed)
{
    util::Rng rng(seed);
    nn::DatasetConfig dc;
    dc.features = 32;
    dc.classes = 8;
    dc.trainSamples = 2048;
    dc.testSamples = 1024;
    const nn::DataSplit data = nn::makeClusterDataset(dc, rng);
    nn::Mlp model({32, 64, 64, 8}, rng);
    nn::TrainConfig cfg;
    cfg.pattern = core::Pattern::TBS;
    cfg.sparsity = 0.75;
    cfg.m = m;
    cfg.epochs = 18;
    cfg.rampEpochs = 8;
    cfg.lr = 0.08;
    return nn::sparseTrain(model, data, cfg, rng).finalAccuracy * 100.0;
}

void
blockSize()
{
    util::banner("Fig. 15(a): block size vs speedup and measured "
                 "accuracy (75% TBS)");
    util::Table t({"M", "speedup vs dense", "trained accuracy(%)"});
    accel::RunRequest dense_req;
    dense_req.shape = workload::GemmShape{"conv4.3x3", 256, 2304, 196};
    dense_req.sparsity = 0.0;
    const auto dense = accel::runLayer(AccelKind::TC, dense_req);
    for (size_t m : {4u, 8u, 16u, 32u}) {
        accel::RunRequest req = dense_req;
        req.sparsity = 0.75;
        req.m = m;
        const auto s = accel::runLayer(AccelKind::TbStc, req);
        // Really train at this block size (2 seeds averaged).
        const double acc = 0.5 * (trainAtBlockSize(m, 31)
                                  + trainAtBlockSize(m, 32));
        t.addRow({std::to_string(m),
                  bench::fmtRatio(dense.cycles / s.cycles),
                  util::fmtDouble(acc, 2)});
    }
    t.print();
    std::printf("Reading: speedup peaks at M = 8 and saturates beyond. "
                "Measured MLP accuracy\ndifferences across M sit "
                "inside seed noise (~1%%), the same magnitude as the\n"
                "paper's 94.91 -> 93.82 drop from M = 8 to 32 -> M = 8 "
                "is the sweet spot.\n");
}

void
quantization()
{
    util::banner("Fig. 15(b): weight int8 quantization on TBS-pruned "
                 "models (Q+S)");
    util::Table t({"model", "S speedup", "Q+S speedup", "Q gain",
                   "paper gain"});
    struct Row
    {
        ModelId model;
        uint64_t seq;
        double sparsity;
        const char *paper;
    };
    for (const Row &r : {Row{ModelId::ResNet50, 0, 0.75, "1.33x"},
                         Row{ModelId::BertBase, 128, 0.50, "1.39x"}}) {
        const auto dense =
            accel::runModel(AccelKind::TC, r.model, 0.0, r.seq);
        const auto fp16 =
            accel::runModel(AccelKind::TbStc, r.model, r.sparsity, r.seq);
        const auto int8 = accel::runModel(AccelKind::TbStc, r.model,
                                          r.sparsity, r.seq, true);
        t.addRow({workload::modelName(r.model),
                  bench::fmtRatio(dense.cycles / fp16.cycles),
                  bench::fmtRatio(dense.cycles / int8.cycles),
                  bench::fmtRatio(fp16.cycles / int8.cycles), r.paper});
    }
    t.print();
}

void
bandwidth()
{
    util::banner("Fig. 15(c): memory-bandwidth sweep (decode-style "
                 "OPT FFN layer, 87.5% TBS)");
    util::Table t({"bandwidth(GB/s)", "normalized speedup"});
    double base = 0.0;
    for (double bw : {32.0, 64.0, 128.0, 256.0, 512.0}) {
        auto cfg = accel::accelConfig(AccelKind::TbStc);
        cfg.dramGbps = bw;
        accel::RunRequest req;
        // Small-batch decode: weight traffic dominates, which is the
        // regime the paper's sweep explores ("still limited by memory
        // access when handling tasks with higher sparsity").
        req.shape = workload::GemmShape{"opt.fc1", 16384, 4096, 8};
        req.sparsity = 0.875;
        req.configOverride = cfg;
        const auto s = accel::runLayer(AccelKind::TbStc, req);
        if (base == 0.0)
            base = s.cycles;
        t.addRow({util::fmtDouble(bw, 0),
                  bench::fmtRatio(base / s.cycles)});
    }
    t.print();
    std::printf("Reading: bandwidth-bound until ~256 GB/s, then "
                "compute-bound (paper Fig. 15(c)).\n");
}

void
sparsitySweep()
{
    util::banner("Fig. 15(d): sparsity sweep vs SGCN (512x512x256 "
                 "layer)");
    util::Table t({"sparsity", "SGCN cycles", "TB-STC cycles",
                   "TB-STC gain"});
    std::vector<double> mid_gains;
    for (double sp : {0.3, 0.5, 0.7, 0.9, 0.95}) {
        accel::RunRequest req;
        req.shape = workload::GemmShape{"sweep", 512, 512, 256};
        req.sparsity = sp;
        const auto sg = accel::runLayer(AccelKind::Sgcn, req);
        const auto tb = accel::runLayer(AccelKind::TbStc, req);
        const double gain = sg.cycles / tb.cycles;
        if (sp <= 0.9)
            mid_gains.push_back(gain);
        t.addRow({util::fmtDouble(sp, 2), util::fmtDouble(sg.cycles, 0),
                  util::fmtDouble(tb.cycles, 0), bench::fmtRatio(gain)});
    }
    t.print();
    std::printf("Mean TB-STC gain over SGCN for 30-90%% sparsity: "
                "%.2fx (paper: 1.32x); SGCN wins at 95%%.\n",
                util::geomean(mid_gains));
}

} // namespace

int
main()
{
    blockSize();
    quantization();
    bandwidth();
    sparsitySweep();
    return 0;
}
