/**
 * @file
 * Shared helpers for the benchmark harnesses.
 *
 * Every bench binary regenerates one table or figure of the paper:
 * it runs the real pipeline (masks -> encodings -> simulator or the
 * nn trainer), prints the measured rows next to the paper's reported
 * values, and exits. Results are deterministic.
 */

#ifndef TBSTC_BENCH_BENCH_UTIL_HPP
#define TBSTC_BENCH_BENCH_UTIL_HPP

#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "util/table.hpp"

namespace tbstc::bench {

/** The baseline set of paper Sec. VII-A2 (without the ablation FAN). */
inline std::vector<accel::AccelKind>
paperBaselines()
{
    using accel::AccelKind;
    return {AccelKind::TC,       AccelKind::STC,   AccelKind::Vegeta,
            AccelKind::HighLight, AccelKind::RmStc, AccelKind::TbStc};
}

/** Sparse baselines compared in the layer-wise study (Fig. 12). */
inline std::vector<accel::AccelKind>
sparseBaselines()
{
    using accel::AccelKind;
    return {AccelKind::STC, AccelKind::Vegeta, AccelKind::HighLight,
            AccelKind::RmStc, AccelKind::TbStc};
}

/** "1.23x"-style ratio formatting. */
inline std::string
fmtRatio(double v, int precision = 2)
{
    return util::fmtDouble(v, precision) + "x";
}

/** Percentage formatting. */
inline std::string
fmtPct(double v, int precision = 1)
{
    return util::fmtDouble(v * 100.0, precision) + "%";
}

} // namespace tbstc::bench

#endif // TBSTC_BENCH_BENCH_UTIL_HPP
