/**
 * @file
 * Shared helpers for the benchmark harnesses.
 *
 * Every bench binary regenerates one table or figure of the paper:
 * it runs the real pipeline (masks -> encodings -> simulator or the
 * nn trainer), prints the measured rows next to the paper's reported
 * values, and exits. Results are deterministic.
 */

#ifndef TBSTC_BENCH_BENCH_UTIL_HPP
#define TBSTC_BENCH_BENCH_UTIL_HPP

#include <chrono>
#include <cstdio>
#include <string>
#include <sys/resource.h>
#include <vector>

#include "accel/accelerator.hpp"
#include "obs/obs.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace tbstc::bench {

/**
 * Machine-readable bench output. Every bench main() constructs one and
 * registers its tables; when the bench was invoked with `--json <path>`
 * the destructor dumps all measured rows plus the bench wall-time as
 * JSON, so BENCH_*.json perf/result trajectories can be tracked across
 * commits. Without the flag this is a no-op shell around the bench.
 */
class BenchReport
{
  public:
    BenchReport(int argc, char **argv, std::string bench)
        : bench_(std::move(bench)), start_(Clock::now())
    {
        for (int i = 1; i + 1 < argc; ++i)
            if (std::string(argv[i]) == "--json")
                path_ = argv[i + 1];
        // JSON reports carry the deterministic metrics of the run, so
        // perf trajectories can attribute a wall-time shift to cycle,
        // byte, or scheduling changes.
        if (!path_.empty()) {
            obs::setMetricsEnabled(true);
            obs::resetMetrics();
        }
    }

    /** Record one named table (no-op unless --json was given). */
    void
    addTable(const std::string &name, const util::Table &t)
    {
        if (path_.empty())
            return;
        std::string json = "    {\"name\": " + quote(name)
            + ", \"header\": " + cells(t.header()) + ", \"rows\": [";
        for (size_t r = 0; r < t.data().size(); ++r)
            json += (r ? ", " : "") + cells(t.data()[r]);
        json += "]}";
        tables_.push_back(std::move(json));
    }

    ~BenchReport()
    {
        if (path_.empty())
            return;
        const double wall =
            std::chrono::duration<double>(Clock::now() - start_).count();
        std::FILE *f = std::fopen(path_.c_str(), "w");
        if (f == nullptr) {
            util::warn("cannot write --json file '{}'", path_);
            return;
        }
        // Peak RSS covers the whole process so far; for a bench binary
        // that is the figure's own working set (ru_maxrss is KiB on
        // Linux).
        struct rusage ru = {};
        getrusage(RUSAGE_SELF, &ru);
        std::string metrics = obs::metricsJson();
        if (!metrics.empty() && metrics.back() == '\n')
            metrics.pop_back();
        std::fprintf(f,
                     "{\n  \"bench\": %s,\n  \"wall_seconds\": %.6f,\n"
                     "  \"wall_ms\": %.3f,\n  \"peak_rss_kb\": %ld,\n"
                     "  \"threads\": %zu,\n  \"metrics\": %s,\n"
                     "  \"tables\": [\n",
                     quote(bench_).c_str(), wall, wall * 1e3,
                     ru.ru_maxrss, util::effectiveThreads(),
                     metrics.c_str());
        for (size_t i = 0; i < tables_.size(); ++i)
            std::fprintf(f, "%s%s\n", tables_[i].c_str(),
                         i + 1 < tables_.size() ? "," : "");
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
    }

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

  private:
    using Clock = std::chrono::steady_clock;

    static std::string
    quote(const std::string &s)
    {
        std::string out = "\"";
        for (const char c : s) {
            switch (c) {
              case '"':  out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              case '\t': out += "\\t"; break;
              case '\r': out += "\\r"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
        return out + "\"";
    }

    static std::string
    cells(const std::vector<std::string> &row)
    {
        std::string out = "[";
        for (size_t i = 0; i < row.size(); ++i)
            out += (i ? ", " : "") + quote(row[i]);
        return out + "]";
    }

    std::string bench_;
    std::string path_;
    Clock::time_point start_;
    std::vector<std::string> tables_;
};

/** The baseline set of paper Sec. VII-A2 (without the ablation FAN). */
inline std::vector<accel::AccelKind>
paperBaselines()
{
    using accel::AccelKind;
    return {AccelKind::TC,       AccelKind::STC,   AccelKind::Vegeta,
            AccelKind::HighLight, AccelKind::RmStc, AccelKind::TbStc};
}

/** Sparse baselines compared in the layer-wise study (Fig. 12). */
inline std::vector<accel::AccelKind>
sparseBaselines()
{
    using accel::AccelKind;
    return {AccelKind::STC, AccelKind::Vegeta, AccelKind::HighLight,
            AccelKind::RmStc, AccelKind::TbStc};
}

/** "1.23x"-style ratio formatting. */
inline std::string
fmtRatio(double v, int precision = 2)
{
    return util::fmtDouble(v, precision) + "x";
}

/** Percentage formatting. */
inline std::string
fmtPct(double v, int precision = 1)
{
    return util::fmtDouble(v * 100.0, precision) + "%";
}

} // namespace tbstc::bench

#endif // TBSTC_BENCH_BENCH_UTIL_HPP
