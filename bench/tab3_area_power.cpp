/**
 * @file
 * Regenerates paper Table III (area and power breakdown of TB-STC at
 * 1 GHz), the A100-scale overhead claim of Sec. VII-C4, and the
 * Fig. 6(d) datapath-power comparison between RM-STC and TB-STC.
 *
 * Paper reference: 1.47 mm^2 / 200.59 mW total; DVPE array 97.28% of
 * area; scaled to A100 proportions the added logic is 1.57% of the
 * 826 mm^2 die (RM-STC: ~1.8%).
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sim/energy.hpp"

using namespace tbstc;
using accel::AccelKind;

int
main()
{
    const sim::AreaModel model{accel::accelConfig(AccelKind::TbStc)};

    util::banner("Table III: area and power breakdown (1 GHz, 7 nm)");
    util::Table t({"component", "area(mm^2)", "area share", "power(mW)",
                   "power share"});
    const double area_total = model.totalAreaMm2();
    const double power_total = model.totalPowerMw();
    for (const auto &c : model.components()) {
        t.addRow({c.name, util::fmtDouble(c.areaMm2, 2),
                  bench::fmtPct(c.areaMm2 / area_total, 2),
                  util::fmtDouble(c.powerMw, 2),
                  bench::fmtPct(c.powerMw / power_total, 2)});
    }
    t.addRow({"Total", util::fmtDouble(area_total, 2), "100.00%",
              util::fmtDouble(power_total, 2), "100.00%"});
    t.print();

    util::banner("Sec. VII-C4: A100-proportion overhead");
    std::printf("Added logic per TB-STC instance: %.2f mm^2\n",
                model.addedAreaMm2());
    std::printf("Scaled x108 tensor cores on an 826 mm^2 die: %.2f%% "
                "(paper: 1.57%%; RM-STC: ~1.8%%)\n",
                model.a100OverheadFraction() * 100.0);

    util::banner("Fig. 6(d): datapath power at full load, RM-STC vs "
                 "TB-STC");
    const sim::EnergyParams e;
    auto datapath_mw = [&](AccelKind kind) {
        const auto cfg = accel::accelConfig(kind);
        // 1024 useful MACs per cycle at 1 GHz.
        const double dynamic = 1024.0 * e.macFp16Pj
            * cfg.computeEnergyScale * 1e-12 * 1e9 * 1e3;
        return dynamic + e.dvpeStaticMw + cfg.extraStaticW * 1e3;
    };
    const double rm = datapath_mw(AccelKind::RmStc);
    const double tb = datapath_mw(AccelKind::TbStc);
    util::Table p({"datapath", "power(mW)", "vs TB-STC"});
    p.addRow({"RM-STC", util::fmtDouble(rm, 1),
              bench::fmtRatio(rm / tb)});
    p.addRow({"TB-STC", util::fmtDouble(tb, 1), "1.00x"});
    p.print();
    std::printf("\nReading: supporting fully unstructured sparsity "
                "(gather/union) costs far more\npower than TB-STC's "
                "structured datapath (paper Fig. 6(d)).\n");
    return 0;
}
