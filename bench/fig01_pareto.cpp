/**
 * @file
 * Regenerates paper Fig. 1: the accuracy-EDP Pareto frontier on BERT
 * (sst-2). Each accelerator sweeps its pattern's sparsity; every
 * point is (accuracy, normalized EDP). TB-STC should dominate: at
 * matched accuracy it reaches lower EDP than every baseline.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "workload/accuracy_model.hpp"

using namespace tbstc;
using accel::AccelKind;
using workload::ModelId;

int
main()
{
    const std::vector<double> sparsities{0.3, 0.5, 0.625, 0.75, 0.875};
    const uint64_t seq = 128;

    const auto dense =
        accel::runModel(AccelKind::TC, ModelId::BertBase, 0.0, seq);

    util::banner("Fig. 1: accuracy-EDP Pareto frontier, BERT/sst-2 "
                 "(EDP normalized to dense TC)");
    util::Table t({"accel", "sparsity", "accuracy(%)", "norm.EDP"});
    t.addRow({"TC(dense)", "0.000",
              util::fmtDouble(workload::denseAccuracy(ModelId::BertBase), 2),
              "1.000"});
    for (AccelKind kind : bench::sparseBaselines()) {
        const core::Pattern pattern = accel::accelPattern(kind);
        for (double sp : sparsities) {
            if (kind == AccelKind::STC && sp != 0.5)
                continue; // STC only expresses 4:8.
            const auto stats =
                accel::runModel(kind, ModelId::BertBase, sp, seq);
            const double acc = workload::proxyAccuracy(
                ModelId::BertBase, pattern, sp);
            t.addRow({accel::accelName(kind), util::fmtDouble(sp, 3),
                      util::fmtDouble(acc, 2),
                      util::fmtDouble(stats.edp / dense.edp, 4)});
        }
    }
    t.print();

    std::printf("\nReading: at every accuracy level the TB-STC points "
                "sit at the lowest EDP\n(the paper's enhanced Pareto "
                "frontier).\n");
    return 0;
}
