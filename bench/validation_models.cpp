/**
 * @file
 * Simulator self-validation: cross-checks the analytic pipeline model
 * against the event-driven cycle simulator and the coarse DRAM model
 * against the banked DRAM simulator, across the accelerator zoo and
 * the bound regimes. Not a paper figure — the evidence that the
 * numbers behind the paper figures rest on consistent models.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/cyclesim.hpp"
#include "sim/dram.hpp"
#include "sim/dram_detail.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "workload/profile_builder.hpp"

using namespace tbstc;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "validation_models");
    util::banner("analytic pipeline vs event-driven cycle simulator");
    util::Table t({"workload", "regime", "analytic cycles",
                   "event-driven", "ratio"});
    struct Case
    {
        const char *name;
        uint64_t x, y, nb;
        double sparsity;
        const char *regime;
    };
    const std::vector<Case> cases{
        {"bert.fc1", 3072, 768, 512, 0.5, "compute-bound"},
        {"bert.fc1", 3072, 768, 512, 0.875, "compute-bound"},
        {"decode", 4096, 4096, 8, 0.5, "memory-bound"},
        {"square", 512, 512, 128, 0.625, "mixed"}};
    // Each cross-check runs both simulators on its own profile —
    // independent, so fan the cases out over the pool.
    struct Pair
    {
        double analytic = 0.0;
        double event = 0.0;
    };
    const auto runs = util::parallelMap<Pair>(
        cases.size(), [&](size_t i) {
            const Case &c = cases[i];
            workload::ProfileSpec spec;
            spec.shape = {c.name, c.x, c.y, c.nb};
            spec.pattern = core::Pattern::TBS;
            spec.sparsity = c.sparsity;
            spec.fmt = format::StorageFormat::DDC;
            const auto profile = workload::buildLayerProfile(spec);
            const sim::ArchConfig cfg;
            return Pair{
                sim::simulateLayer(profile, cfg).cycles,
                sim::simulateLayerEventDriven(profile, cfg).cycles};
        });
    std::vector<double> ratios;
    for (size_t i = 0; i < cases.size(); ++i) {
        const double ratio = runs[i].event / runs[i].analytic;
        ratios.push_back(ratio);
        t.addRow({cases[i].name, cases[i].regime,
                  util::fmtDouble(runs[i].analytic, 0),
                  util::fmtDouble(runs[i].event, 0),
                  util::fmtDouble(ratio, 3)});
    }
    t.print();
    report.addTable("analytic_vs_event", t);
    std::printf("geomean event/analytic ratio: %.3f (the analytic "
                "model is the fast path;\nthe event simulator bounds "
                "its optimism)\n", util::geomean(ratios));

    util::banner("coarse DRAM model vs banked row-buffer simulator");
    util::Table d({"stream", "coarse util", "banked util",
                   "row hit rate"});
    const sim::ArchConfig cfg;
    const sim::DramModel coarse(cfg);
    const sim::DramSim banked(cfg);
    struct Stream
    {
        const char *name;
        format::StreamProfile profile;
        double spread;
    };
    for (const Stream &s :
         {Stream{"contiguous (DDC)", {1 << 20, 1 << 20, 1}, 1.0},
          Stream{"128B runs (CSR-ish)", {1 << 18, 1 << 18, 2048}, 4.0},
          Stream{"16B runs (worst CSR)", {1 << 16, 1 << 16, 4096},
                 512.0}}) {
        const auto c = coarse.stream(s.profile);
        const auto b = banked.serveStream(s.profile, s.spread);
        d.addRow({s.name, bench::fmtPct(c.utilisation()),
                  bench::fmtPct(b.utilisation(
                      static_cast<double>(s.profile.usefulBytes),
                      cfg.dramBytesPerCycle())),
                  bench::fmtPct(b.rowHitRate())});
    }
    d.print();
    report.addTable("dram_models", d);
    std::printf("\nBoth models rank the formats identically; the "
                "banked simulator pays real row\nactivations and "
                "bounds the coarse model from below on scattered "
                "traffic.\n");
    return 0;
}
