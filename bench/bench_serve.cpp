/**
 * @file
 * google-benchmark harness for the serve daemon hot path.
 *
 * Each benchmark spins an in-process Server on a loopback TCP socket
 * and measures the serving-layer costs the daemon adds on top of the
 * cached pipeline: protocol round-trips (ping), warm-cache request
 * latency (run/sparsify over an already-cached signature), and
 * closed-loop loadgen throughput at several client counts (items/s is
 * requests per second).
 *
 * Output is the same google-benchmark JSON as bench_kernels (`--json
 * PATH` translates to --benchmark_out), with context.tbstc_isa
 * recorded so tools/check_perf.py can gate serve-layer regressions
 * against per-ISA baselines exactly like the kernel benches:
 *
 *     bench_serve --json serve.json
 *     tools/check_perf.py serve.json bench/baselines --prefix bench_serve
 */

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "kernels/kernels.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/parallel.hpp"

namespace {

using namespace tbstc;
using namespace tbstc::serve;

/** A live server plus one connected loopback client. */
class ServerFixture
{
  public:
    ServerFixture()
    {
        ServerOptions opts;
        opts.limits.queueCapacity = 512;
        server_ = std::make_unique<Server>(opts);
        const auto started = server_->start();
        if (!started.ok())
            std::abort();
        port_ = *started;
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port_);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0)
            std::abort();
    }

    ~ServerFixture()
    {
        if (fd_ >= 0)
            ::close(fd_);
        server_->beginShutdown();
        server_->wait();
    }

    /** One request/response round-trip; aborts on transport failure. */
    std::string
    roundTrip(const Request &req)
    {
        if (!writeFrame(fd_, serializeRequest(req)))
            std::abort();
        std::string payload;
        if (readFrame(fd_, payload) != FrameStatus::Ok)
            std::abort();
        return payload;
    }

    uint16_t port() const { return port_; }

  private:
    std::unique_ptr<Server> server_;
    uint16_t port_ = 0;
    int fd_ = -1;
};

Request
pingRequest(uint64_t id)
{
    Request req;
    req.id = id;
    req.op = Op::Ping;
    return req;
}

Request
runRequest(uint64_t id)
{
    Request req;
    req.id = id;
    req.op = Op::Run;
    req.run.layer = "256x256x1";
    req.run.sparsity = 0.75;
    return req;
}

Request
sparsifyRequest(uint64_t id)
{
    Request req;
    req.id = id;
    req.op = Op::Sparsify;
    req.sparsify.layer = "128x128x1";
    req.sparsify.sparsity = 0.75;
    return req;
}

/** Protocol + queue + batcher overhead with no pipeline work at all. */
void
BM_ServePingRoundTrip(benchmark::State &state)
{
    ServerFixture fx;
    uint64_t id = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(fx.roundTrip(pingRequest(++id)));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ServePingRoundTrip)->UseRealTime();

/** Warm-cache run request: the steady-state daemon serving latency. */
void
BM_ServeRunWarmCache(benchmark::State &state)
{
    ServerFixture fx;
    uint64_t id = 0;
    fx.roundTrip(runRequest(++id)); // prime the caches
    for (auto _ : state)
        benchmark::DoNotOptimize(fx.roundTrip(runRequest(++id)));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeRunWarmCache)->UseRealTime();

/** Sparsify round-trip (Algorithm 1 + DDC summary, no simulation). */
void
BM_ServeSparsifyRoundTrip(benchmark::State &state)
{
    ServerFixture fx;
    uint64_t id = 0;
    fx.roundTrip(sparsifyRequest(++id));
    for (auto _ : state)
        benchmark::DoNotOptimize(fx.roundTrip(sparsifyRequest(++id)));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeSparsifyRoundTrip)->UseRealTime();

/**
 * Closed-loop loadgen throughput at state.range(0) clients over the
 * deterministic mix. One iteration = one full loadgen pass; items/s
 * is the aggregate request rate the daemon sustains warm-cache.
 */
void
BM_ServeLoadgenThroughput(benchmark::State &state)
{
    ServerFixture fx;
    LoadgenOptions opts;
    opts.port = fx.port();
    opts.clients = static_cast<size_t>(state.range(0));
    opts.totalRequests = 128;
    {
        const auto warm = runLoadgen(opts); // prime the caches
        if (!warm.ok())
            std::abort();
    }
    uint64_t answered = 0;
    for (auto _ : state) {
        const auto stats = runLoadgen(opts);
        if (!stats.ok() || stats->errors != 0)
            std::abort();
        answered += stats->ok;
    }
    state.SetItemsProcessed(static_cast<int64_t>(answered));
}
BENCHMARK(BM_ServeLoadgenThroughput)->Arg(1)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

} // namespace

/** Custom main: same `--json PATH` convention as bench_kernels. */
int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv, argv + argc);
    for (size_t i = 1; i + 1 < args.size(); ++i)
        if (args[i] == "--json") {
            const std::string path = args[i + 1];
            args.erase(args.begin() + static_cast<long>(i),
                       args.begin() + static_cast<long>(i) + 2);
            args.push_back("--benchmark_out=" + path);
            args.push_back("--benchmark_out_format=json");
            break;
        }
    std::vector<char *> cargs;
    cargs.reserve(args.size());
    for (auto &a : args)
        cargs.push_back(a.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::AddCustomContext(
        "tbstc_isa",
        tbstc::kernels::isaName(tbstc::kernels::activeIsa()));
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    tbstc::util::shutdownPool();
    return 0;
}
