/**
 * @file
 * Regenerates paper Table I: accuracy of sparse training from scratch
 * under each sparsity pattern.
 *
 * Substitution (DESIGN.md): ResNet/BERT retraining is replaced by
 * really training MLP classifiers on four synthetic tasks with the
 * identical mask machinery; two tasks are pruned at 75% (the ResNet
 * column) and two at 50% (the BERT column). The reproduced quantity
 * is the ordering and the relative gaps:
 * Dense >= US >= TBS > RS-H ~ RS-V > TS.
 *
 * Paper reference (average accuracy drop vs US): TS -1.20, RS-V
 * -1.04, RS-H -1.02, TBS -0.17.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "nn/sparse_train.hpp"
#include "util/stats.hpp"

using namespace tbstc;
using core::Pattern;

namespace {

struct Task
{
    std::string name;
    double sparsity;
    uint64_t seed;
};

double
trainOnce(const nn::DataSplit &data, Pattern pattern, double sparsity,
          uint64_t seed)
{
    // Two weight-init seeds averaged per cell: retraining gaps at MLP
    // scale are small (the paper's own gaps are ~1%), so the bench
    // reduces seed noise.
    double sum = 0.0;
    for (uint64_t sub : {0u, 1u}) {
        util::Rng rng(seed * 13 + sub);
        nn::Mlp model({32, 64, 64, 8}, rng);
        nn::TrainConfig cfg;
        cfg.pattern = pattern;
        cfg.sparsity = pattern == Pattern::Dense ? 0.0 : sparsity;
        cfg.epochs = 18;
        cfg.rampEpochs = 8;
        cfg.batch = 128;
        cfg.lr = 0.08;
        sum += nn::sparseTrain(model, data, cfg, rng).finalAccuracy;
    }
    return sum * 50.0;
}

} // namespace

int
main()
{
    // High-sparsity tasks (the ResNet 75% column analogue) and
    // moderate ones (the BERT 50% analogue); MLP-scale models carry
    // more redundancy per parameter than CNNs, so the binding
    // sparsities sit one step higher.
    const std::vector<Task> tasks{
        {"task-A(87.5%)", 0.875, 101},
        {"task-B(87.5%)", 0.875, 202},
        {"task-C(75%)", 0.75, 303},
        {"task-D(75%)", 0.75, 404},
    };
    const std::vector<Pattern> patterns{
        Pattern::Dense, Pattern::US, Pattern::TS,
        Pattern::RSV,   Pattern::RSH, Pattern::TBS};

    // One dataset per task, shared by all patterns.
    std::vector<nn::DataSplit> datasets;
    for (const Task &task : tasks) {
        util::Rng rng(task.seed);
        nn::DatasetConfig dc;
        dc.features = 32;
        dc.classes = 8;
        dc.trainSamples = 2048;
        dc.testSamples = 1024;
        datasets.push_back(nn::makeClusterDataset(dc, rng));
    }

    util::banner("Table I: accuracy with sparse retraining "
                 "(measured on MLP tasks; see DESIGN.md substitution)");
    util::Table t({"pattern", tasks[0].name, tasks[1].name,
                   tasks[2].name, tasks[3].name, "average",
                   "drop vs US", "paper drop"});
    const std::vector<std::string> paper_drop{"-", "(-0.00)", "(-1.20)",
                                              "(-1.04)", "(-1.02)",
                                              "(-0.17)"};
    std::vector<double> us_acc;
    for (size_t pi = 0; pi < patterns.size(); ++pi) {
        const Pattern p = patterns[pi];
        std::vector<double> accs;
        std::vector<std::string> row{patternName(p)};
        for (size_t ti = 0; ti < tasks.size(); ++ti) {
            const double acc = trainOnce(datasets[ti], p,
                                         tasks[ti].sparsity,
                                         tasks[ti].seed * 7 + pi);
            accs.push_back(acc);
            row.push_back(util::fmtDouble(acc, 2));
        }
        const double avg = util::mean(accs);
        if (p == Pattern::US)
            us_acc = accs;
        row.push_back(util::fmtDouble(avg, 2));
        row.push_back(
            p == Pattern::Dense || us_acc.empty()
                ? "-"
                : util::fmtDouble(avg - util::mean(us_acc), 2));
        row.push_back(paper_drop[pi]);
        t.addRow(row);
    }
    t.print();

    std::printf("\nReading: with per-epoch mask regeneration + SR-STE, "
                "sparse training adapts\naround every pattern, so "
                "retraining gaps stay small (the paper's own gaps "
                "are\n~1%%); the one-shot study (Table II bench) "
                "resolves the pattern ordering sharply.\n");
    return 0;
}
