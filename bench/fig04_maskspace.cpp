/**
 * @file
 * Regenerates paper Fig. 4(b) and 4(c): mask similarity of each N:M
 * pattern with unstructured sparsity, and the mask-space (Eqs. (1)-(4))
 * vs model-accuracy relationship.
 *
 * Paper reference: TBS reaches 85.31%-91.62% similarity with US, far
 * above the other structured patterns; mask-space ordering is
 * TS < RS-V < RS-H < TBS < US at X = Y, M = 8.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/maskspace.hpp"
#include "workload/accuracy_model.hpp"

using namespace tbstc;
using core::Pattern;

int
main()
{
    const std::vector<Pattern> patterns{Pattern::TS, Pattern::RSV,
                                        Pattern::RSH, Pattern::TBS};

    util::banner("Fig. 4(b): mask similarity with US "
                 "(ResNet-50-style 75% sparsity; paper: TBS "
                 "85.31%-91.62%)");
    util::Table sim_t({"pattern", "s=0.50", "s=0.625", "s=0.75",
                       "s=0.875"});
    for (Pattern p : patterns) {
        std::vector<std::string> row{patternName(p)};
        for (double sp : {0.5, 0.625, 0.75, 0.875})
            row.push_back(
                bench::fmtPct(workload::maskSimilarity(p, sp, 8)));
        sim_t.addRow(row);
    }
    sim_t.print();

    util::banner("Fig. 4(c): log2 mask-space (X = Y, M = 8) and proxy "
                 "accuracy (BERT anchor)");
    for (size_t dim : {64u, 256u, 1024u}) {
        util::Table t({"pattern", "log2 MS", "accuracy@50%"});
        for (Pattern p : {Pattern::TS, Pattern::RSV, Pattern::RSH,
                          Pattern::TBS, Pattern::US}) {
            t.addRow({patternName(p),
                      util::fmtDouble(
                          core::log2MaskSpace(p, dim, dim, 8), 0),
                      util::fmtDouble(
                          workload::proxyAccuracy(
                              workload::ModelId::BertBase, p, 0.5),
                          2)});
        }
        std::printf("\n[X = Y = %zu]\n", dim);
        t.print();
    }

    std::printf("\nReading: mask-space grows TS < RS-V < RS-H < TBS "
                "< US and accuracy follows\n(the paper's Fig. 4(c) "
                "trend: more representation space, less accuracy "
                "loss).\n");
    return 0;
}
