/**
 * @file
 * Regenerates paper Table II: one-shot pruning accuracy under Wanda
 * and SparseGPT for each sparsity pattern.
 *
 * Substitution (DESIGN.md): OPT-6.7B / Llama2-7B are replaced by
 * three trained MLP "models"; the Wanda and SparseGPT criteria are
 * the real algorithms (activation-norm saliency; OBS saliency plus
 * Cholesky error compensation). Because MLP-scale models carry less
 * redundancy per parameter than 7B LLMs, pattern gaps resolve most
 * clearly at 75% sparsity; both 50% and 75% are reported.
 *
 * Paper reference (average drop vs US at 50%): TS -3.24, RS-V -2.63,
 * RS-H -2.58, TBS -0.66.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "nn/oneshot.hpp"
#include "nn/sparse_train.hpp"
#include "util/fmt.hpp"
#include "util/stats.hpp"

using namespace tbstc;
using core::Criterion;
using core::Pattern;

namespace {

struct TrainedTask
{
    nn::DataSplit data;
    nn::Mlp model;
    double denseAcc;
};

TrainedTask
makeTask(uint64_t seed)
{
    util::Rng rng(seed);
    nn::DatasetConfig dc;
    dc.features = 32;
    dc.classes = 8;
    dc.trainSamples = 4096;
    dc.testSamples = 2048;
    dc.clusterStddev = 0.8;
    dc.warpStrength = 0.5;
    nn::DataSplit data = nn::makeClusterDataset(dc, rng);

    nn::Mlp model({32, 64, 64, 8}, rng);
    nn::TrainConfig cfg;
    cfg.pattern = Pattern::Dense;
    cfg.epochs = 30;
    cfg.lr = 0.08;
    (void)nn::sparseTrain(model, data, cfg, rng);
    const double acc =
        model.accuracy(data.test.x, data.test.labels) * 100.0;
    return {std::move(data), std::move(model), acc};
}

double
pruneAndEval(const TrainedTask &task, Pattern pattern,
             Criterion criterion, double sparsity)
{
    nn::Mlp pruned = task.model;
    if (pattern != Pattern::Dense) {
        nn::OneshotConfig cfg;
        cfg.pattern = pattern;
        cfg.criterion = criterion;
        cfg.sparsity = sparsity;
        nn::oneshotPrune(pruned, task.data.train.x, cfg);
    }
    return pruned.accuracy(task.data.test.x, task.data.test.labels)
        * 100.0;
}

} // namespace

int
main()
{
    std::vector<TrainedTask> tasks;
    for (uint64_t seed : {101, 202, 303})
        tasks.push_back(makeTask(seed));

    const std::vector<Pattern> patterns{
        Pattern::Dense, Pattern::US, Pattern::TS,
        Pattern::RSV,   Pattern::RSH, Pattern::TBS};
    const std::vector<std::string> paper_drop{"-", "(-0.00)", "(-3.24)",
                                              "(-2.63)", "(-2.58)",
                                              "(-0.66)"};

    for (double sparsity : {0.5, 0.75}) {
        util::banner(util::formatStr(
            "Table II: one-shot pruning accuracy at {}% "
            "(3 trained MLPs x Wanda/SparseGPT, averaged)",
            static_cast<int>(sparsity * 100)));
        util::Table t({"pattern", "Wanda avg", "SparseGPT avg",
                       "average", "drop vs US", "paper drop@50%"});
        double us_avg = 0.0;
        for (size_t pi = 0; pi < patterns.size(); ++pi) {
            const Pattern p = patterns[pi];
            std::vector<double> wanda;
            std::vector<double> sgpt;
            for (const auto &task : tasks) {
                wanda.push_back(
                    pruneAndEval(task, p, Criterion::Wanda, sparsity));
                sgpt.push_back(pruneAndEval(task, p,
                                            Criterion::SparseGpt,
                                            sparsity));
            }
            const double avg =
                0.5 * (util::mean(wanda) + util::mean(sgpt));
            if (p == Pattern::US)
                us_avg = avg;
            t.addRow({patternName(p), util::fmtDouble(util::mean(wanda), 2),
                      util::fmtDouble(util::mean(sgpt), 2),
                      util::fmtDouble(avg, 2),
                      p == Pattern::Dense
                          ? "-"
                          : util::fmtDouble(avg - us_avg, 2),
                      paper_drop[pi]});
        }
        t.print();
    }

    std::printf("\nReading: US degrades least; among structured "
                "patterns TBS stays closest to US\n(clearest at 75%%, "
                "where MLP-scale capacity binds), mirroring Table II's "
                "ordering.\n");
    return 0;
}
