/**
 * @file
 * Regenerates paper Fig. 17: the distribution of block-level sparsity
 * kinds (row-direction / column-direction / other) across layers of a
 * TBS-pruned ResNet-50.
 *
 * Paper reference: averaged over the model, 18.7% of blocks are
 * row-direction sparse, 46.0% column-direction, 35.3% other
 * (dense/empty) — evidence that single-dimension patterns cannot
 * cover real weight structure.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/blockstats.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "workload/models.hpp"
#include "workload/synth.hpp"

using namespace tbstc;

int
main()
{
    util::banner("Fig. 17: block-direction distribution of the "
                 "TBS-pruned ResNet-50 (75% sparsity)");
    util::Table t({"layer", "row-dir", "col-dir", "other"});

    double row_total = 0.0;
    double col_total = 0.0;
    double other_total = 0.0;
    double blocks_total = 0.0;

    const auto layers = workload::modelLayers(workload::ModelId::ResNet50);
    // Representative low/medium/high-sparsity layers plus the model
    // average (the paper's "Total" bar).
    const std::vector<size_t> highlighted{2, 22, 48};
    for (size_t li = 0; li < layers.size(); ++li) {
        const auto &shape = layers[li];
        const auto w = workload::synthWeights(shape, 42, 1024);
        const auto scores = core::magnitudeScores(w);
        const auto res =
            core::tbsMask(scores, 0.75, 8, core::defaultCandidates(8));
        const auto d = core::directionDistribution(res.meta);

        const auto n = static_cast<double>(d.blocks);
        row_total += d.rowFrac * n;
        col_total += d.colFrac * n;
        other_total += d.otherFrac * n;
        blocks_total += n;

        for (size_t h : highlighted) {
            if (h == li) {
                t.addRow({shape.name, bench::fmtPct(d.rowFrac),
                          bench::fmtPct(d.colFrac),
                          bench::fmtPct(d.otherFrac)});
            }
        }
    }
    t.addRow({"Total (all layers)",
              bench::fmtPct(row_total / blocks_total),
              bench::fmtPct(col_total / blocks_total),
              bench::fmtPct(other_total / blocks_total)});
    t.print();

    std::printf("\nPaper Total: row 18.7%%, col 46.0%%, other 35.3%%. "
                "All three categories carry\nsubstantial mass -> "
                "single-dimension N:M patterns are insufficient.\n");
    return 0;
}
