/**
 * @file
 * Regenerates the paper's Sec. V storage-format study (Figs. 7-9):
 * bandwidth utilisation of SDC / CSR / DDC on TBS-pruned matrices,
 * and the adaptive codec unit's conversion cycle cost.
 *
 * Paper reference: SDC wastes >61.54% of its traffic on padding at
 * high sparsity, CSR delivers <38.2% of peak bandwidth, and the DDC +
 * codec combination improves bandwidth utilisation by 1.47x.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "format/codec.hpp"
#include "format/encoding.hpp"
#include "sim/dram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/synth.hpp"

using namespace tbstc;

int
main()
{
    const sim::DramModel dram{sim::ArchConfig{}};
    const std::vector<double> sparsities{0.5, 0.625, 0.75, 0.875};

    util::banner("Fig. 7/9: bandwidth utilisation of storage formats "
                 "on TBS-pruned 512x512 layers");
    util::Table t({"sparsity", "SDC util", "SDC redundancy", "CSR util",
                   "DDC util", "DDC gain"});
    std::vector<double> gains;
    for (double sp : sparsities) {
        const auto w = workload::synthWeights(
            {"codec-bench", 512, 512, 1}, 99);
        const auto scores = core::magnitudeScores(w);
        const auto res =
            core::tbsMask(scores, sp, 8, core::defaultCandidates(8));

        const auto sdc = format::encodeSdc(w, res.mask);
        const auto csr = format::encodeCsr(w, res.mask);
        const auto ddc = format::encodeDdc(w, res.mask, res.meta);

        const double u_sdc = dram.stream(sdc->streamProfile(8)).utilisation();
        const double u_csr = dram.stream(csr->streamProfile(8)).utilisation();
        const double u_ddc = dram.stream(ddc->streamProfile(8)).utilisation();
        const double gain = u_ddc / std::max(u_sdc, u_csr);
        gains.push_back(gain);
        t.addRow({util::fmtDouble(sp, 3), bench::fmtPct(u_sdc),
                  bench::fmtPct(sdc->streamProfile(8).redundancy()),
                  bench::fmtPct(u_csr), bench::fmtPct(u_ddc),
                  bench::fmtRatio(gain)});
    }
    t.print();
    std::printf("\nMean DDC bandwidth gain over the best alternative: "
                "%.2fx (paper: 1.47x)\n", util::geomean(gains));

    util::banner("Fig. 9(c): adaptive codec conversion cycles "
                 "(independent-dimension blocks, 2 elements/timestep)");
    util::Table c({"block N:M", "nnz", "conversion cycles",
                   "cycles/(nnz/2)"});
    util::Rng rng(5);
    for (uint8_t n : {1, 2, 4}) {
        // Column-wise N:8 block in storage (column-major) order.
        std::vector<format::StorageElem> storage;
        for (uint8_t col = 0; col < 8; ++col) {
            std::vector<size_t> rows(rng.permutation(8));
            for (uint8_t k = 0; k < n; ++k)
                storage.push_back({1.0f,
                                   static_cast<uint8_t>(rows[k]), col});
        }
        const auto out =
            format::convertToComputation(storage, {8, 2, 2});
        const double nnz = static_cast<double>(storage.size());
        c.addRow({std::to_string(n) + ":8", std::to_string(storage.size()),
                  std::to_string(out.cycles),
                  util::fmtDouble(out.cycles / (nnz / 2.0), 2)});
    }
    c.print();
    std::printf("\nReading: conversion streams at ~2 elements/cycle "
                "with a short drain tail,\nwhich is why the pipeline "
                "hides it (Fig. 14).\n");
    return 0;
}
