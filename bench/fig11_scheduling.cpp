/**
 * @file
 * Regenerates the paper's Sec. VI scheduling study (Fig. 11):
 * compute utilisation of naive direct mapping vs the hierarchical
 * sparsity-aware scheduling, measured on TBS-pruned layers.
 *
 * Paper reference: direct mapping reaches only 45.50% computation
 * utilisation; hierarchical scheduling improves it by 1.57x.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/pipeline.hpp"
#include "util/stats.hpp"
#include "workload/profile_builder.hpp"

using namespace tbstc;
using accel::AccelKind;

int
main()
{
    const std::vector<double> sparsities{0.5, 0.625, 0.75};

    util::banner("Fig. 11: compute utilisation, naive direct mapping "
                 "vs hierarchical sparsity-aware scheduling");
    util::Table t({"sparsity", "naive util", "inter-only", "intra-only",
                   "full (TB-STC)", "improvement"});
    std::vector<double> lifts;
    std::vector<double> naive_utils;
    for (double sp : sparsities) {
        accel::RunRequest req;
        req.shape = workload::GemmShape{"sched-bench", 768, 768, 128};
        req.sparsity = sp;

        auto run_with = [&](sim::InterSched inter, sim::IntraMap intra) {
            auto cfg = accel::accelConfig(AccelKind::TbStc);
            cfg.interSched = inter;
            cfg.intraMap = intra;
            accel::RunRequest r = req;
            r.configOverride = cfg;
            return accel::runLayer(AccelKind::TbStc, r);
        };

        const auto naive =
            run_with(sim::InterSched::Naive, sim::IntraMap::Naive);
        const auto inter_only =
            run_with(sim::InterSched::Aware, sim::IntraMap::Naive);
        const auto intra_only =
            run_with(sim::InterSched::Naive, sim::IntraMap::Packed);
        const auto full =
            run_with(sim::InterSched::Aware, sim::IntraMap::Packed);

        const double lift =
            full.computeUtilisation / naive.computeUtilisation;
        lifts.push_back(lift);
        naive_utils.push_back(naive.computeUtilisation);
        t.addRow({util::fmtDouble(sp, 3),
                  bench::fmtPct(naive.computeUtilisation),
                  bench::fmtPct(inter_only.computeUtilisation),
                  bench::fmtPct(intra_only.computeUtilisation),
                  bench::fmtPct(full.computeUtilisation),
                  bench::fmtRatio(lift)});
    }
    t.print();

    std::printf("\nMean naive utilisation: %.2f%% (paper: 45.50%%); "
                "mean improvement: %.2fx (paper: 1.57x)\n",
                util::mean(naive_utils) * 100.0, util::geomean(lifts));
    return 0;
}
