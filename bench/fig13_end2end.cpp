/**
 * @file
 * Regenerates paper Fig. 13: end-to-end inference speedup and
 * normalized EDP on ResNet-50, BERT, and OPT-6.7B at iso-accuracy:
 * each pattern runs at the highest sparsity that still matches the
 * target accuracy (US at 50% / 75%), except STC, which is hard-wired
 * to 4:8.
 *
 * Paper reference: TB-STC improves speedup by 1.22x / 1.06x and EDP
 * by 1.62x / 1.92x over HighLight / RM-STC end to end.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "workload/accuracy_model.hpp"

using namespace tbstc;
using accel::AccelKind;
using bench::fmtRatio;
using workload::ModelId;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig13_end2end");
    struct Workload
    {
        ModelId model;
        uint64_t seq;
        double target_sparsity; ///< Sparsity the US baseline runs at.
    };
    const std::vector<Workload> workloads{
        {ModelId::ResNet50, 0, 0.75},
        {ModelId::BertBase, 128, 0.50},
        {ModelId::Opt67b, 256, 0.50},
    };
    const auto kinds = bench::paperBaselines();

    std::map<AccelKind, std::vector<double>> speedups;
    std::map<AccelKind, std::vector<double>> edps;

    util::banner("Fig. 13: end-to-end speedup / normalized EDP at "
                 "iso-accuracy (vs dense TC)");

    // Every (workload, accelerator) cell — plus each workload's dense
    // reference — is an independent whole-model simulation; run the
    // grid in parallel and assemble the tables in order afterwards.
    struct Cell
    {
        double sparsity = 0.0;
        sim::RunStats stats;
    };
    const size_t per_workload = kinds.size() + 1; // Job 0 = dense ref.
    const auto cells = util::parallelMap<Cell>(
        workloads.size() * per_workload, [&](size_t job) {
            const Workload &w = workloads[job / per_workload];
            const size_t j = job % per_workload;
            if (j == 0)
                return Cell{0.0, accel::runModel(AccelKind::TC, w.model,
                                                 0.0, w.seq)};
            const AccelKind kind = kinds[j - 1];
            const core::Pattern pattern = accel::accelPattern(kind);
            double sparsity = 0.0;
            if (kind == AccelKind::STC) {
                sparsity = 0.5; // Hard-wired 4:8.
            } else if (pattern != core::Pattern::Dense) {
                // The accuracy every pattern must match: US at the
                // target sparsity (see DESIGN.md for the proxy).
                const double target_acc = workload::proxyAccuracy(
                    w.model, core::Pattern::US, w.target_sparsity);
                sparsity = workload::isoAccuracySparsity(
                    w.model, pattern, target_acc);
            }
            return Cell{sparsity, accel::runModel(kind, w.model,
                                                  sparsity, w.seq)};
        });

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const Workload &w = workloads[wi];
        const double target_acc = workload::proxyAccuracy(
            w.model, core::Pattern::US, w.target_sparsity);

        util::Table t({"accel", "sparsity", "accuracy", "speedup",
                       "norm.EDP"});
        const Cell &dense = cells[wi * per_workload];
        for (size_t j = 0; j < kinds.size(); ++j) {
            const AccelKind kind = kinds[j];
            const Cell &cell = cells[wi * per_workload + j + 1];
            const double speedup =
                dense.stats.cycles / cell.stats.cycles;
            const double edp = cell.stats.edp / dense.stats.edp;
            if (kind != AccelKind::TC) {
                speedups[kind].push_back(speedup);
                edps[kind].push_back(edp);
            }
            t.addRow({accel::accelName(kind),
                      util::fmtDouble(cell.sparsity, 3),
                      util::fmtDouble(
                          workload::proxyAccuracy(
                              w.model, accel::accelPattern(kind),
                              cell.sparsity),
                          2),
                      fmtRatio(speedup),
                      util::fmtDouble(edp, 3)});
        }
        std::printf("\n[%s, seq=%llu, target accuracy %.2f]\n",
                    workload::modelName(w.model).c_str(),
                    static_cast<unsigned long long>(w.seq), target_acc);
        t.print();
        report.addTable(workload::modelName(w.model), t);
    }

    util::banner("Fig. 13 summary: TB-STC vs baselines (geomean over "
                 "models)");
    util::Table s({"baseline", "speedup gain", "EDP gain", "paper"});
    const std::map<AccelKind, std::string> paper{
        {AccelKind::STC, "-"},
        {AccelKind::Vegeta, "-"},
        {AccelKind::HighLight, "1.22x speed / 1.62x EDP"},
        {AccelKind::RmStc, "1.06x speed / 1.92x EDP"},
    };
    for (AccelKind kind : kinds) {
        if (kind == AccelKind::TbStc || kind == AccelKind::TC)
            continue;
        std::vector<double> sp;
        std::vector<double> ed;
        for (size_t i = 0; i < speedups[AccelKind::TbStc].size(); ++i) {
            sp.push_back(speedups[AccelKind::TbStc][i]
                         / speedups[kind][i]);
            ed.push_back(edps[kind][i] / edps[AccelKind::TbStc][i]);
        }
        s.addRow({accel::accelName(kind), fmtRatio(util::geomean(sp)),
                  fmtRatio(util::geomean(ed)), paper.at(kind)});
    }
    s.print();
    report.addTable("summary", s);
    return 0;
}
