/**
 * @file
 * google-benchmark microbenchmarks of the library's hot kernels:
 * mask generation (Alg. 1 and baselines), format encoding, the codec
 * conversion queue, the inter-block scheduler, and the pipeline
 * simulator itself. These guard the simulator's own performance —
 * LLM-scale sweeps depend on them.
 */

#include <benchmark/benchmark.h>

#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "format/codec.hpp"
#include "format/encoding.hpp"
#include "sim/pipeline.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "workload/profile_builder.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc;

core::Matrix
benchScores(size_t dim)
{
    const auto w = workload::synthWeights(
        {"kernel-bench", dim, dim, 1}, 1);
    return core::magnitudeScores(w);
}

void
BM_UsMask(benchmark::State &state)
{
    const auto scores = benchScores(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(core::usMask(scores, 0.75));
    state.SetItemsProcessed(state.iterations() * scores.size());
}
BENCHMARK(BM_UsMask)->Arg(256)->Arg(512);

void
BM_TbsMask(benchmark::State &state)
{
    const auto scores = benchScores(state.range(0));
    const auto cand = core::defaultCandidates(8);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::tbsMask(scores, 0.75, 8, cand));
    state.SetItemsProcessed(state.iterations() * scores.size());
}
BENCHMARK(BM_TbsMask)->Arg(256)->Arg(512);

void
BM_RsvMask(benchmark::State &state)
{
    const auto scores = benchScores(state.range(0));
    const auto cand = core::defaultCandidates(8);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::rsvMask(scores, 0.75, 8, cand));
}
BENCHMARK(BM_RsvMask)->Arg(256);

void
BM_DdcEncode(benchmark::State &state)
{
    const auto w = workload::synthWeights(
        {"kernel-bench", 512, 512, 1}, 1);
    const auto scores = core::magnitudeScores(w);
    const auto res =
        core::tbsMask(scores, 0.75, 8, core::defaultCandidates(8));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            format::encodeDdc(w, res.mask, res.meta));
}
BENCHMARK(BM_DdcEncode);

void
BM_CodecConvert(benchmark::State &state)
{
    util::Rng rng(3);
    std::vector<format::StorageElem> storage;
    for (uint8_t col = 0; col < 8; ++col) {
        const auto rows = rng.permutation(8);
        for (uint8_t k = 0; k < 4; ++k)
            storage.push_back(
                {1.0f, static_cast<uint8_t>(rows[k]), col});
    }
    const format::CodecConfig cfg{8, 2, 2};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            format::convertToComputation(storage, cfg));
    state.SetItemsProcessed(state.iterations() * storage.size());
}
BENCHMARK(BM_CodecConvert);

void
BM_Scheduler(benchmark::State &state)
{
    util::Rng rng(5);
    std::vector<uint64_t> costs(static_cast<size_t>(state.range(0)));
    for (auto &c : costs)
        c = rng.below(9);
    const auto policy = state.range(1) == 0 ? sim::InterSched::Naive
                                            : sim::InterSched::Aware;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sim::scheduleBlocks(costs, 128, policy, 8));
    state.SetItemsProcessed(state.iterations() * costs.size());
}
BENCHMARK(BM_Scheduler)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({65536, 1});

void
BM_SimulateLayer(benchmark::State &state)
{
    workload::ProfileSpec spec;
    spec.shape = {"sim-bench", 1024, 1024, 128};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.75;
    spec.fmt = format::StorageFormat::DDC;
    const auto profile = workload::buildLayerProfile(spec);
    const sim::ArchConfig cfg;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::simulateLayer(profile, cfg));
}
BENCHMARK(BM_SimulateLayer);

void
BM_BuildLayerProfile(benchmark::State &state)
{
    workload::ProfileSpec spec;
    spec.shape = {"profile-bench", 1024, 1024, 128};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.75;
    spec.fmt = format::StorageFormat::DDC;
    for (auto _ : state)
        benchmark::DoNotOptimize(workload::buildLayerProfile(spec));
}
BENCHMARK(BM_BuildLayerProfile);

} // namespace

BENCHMARK_MAIN();
