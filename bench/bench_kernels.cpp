/**
 * @file
 * google-benchmark microbenchmarks of the library's hot kernels:
 * mask generation (Alg. 1 and baselines), format encoding, the codec
 * conversion queue, the inter-block scheduler, and the pipeline
 * simulator itself. These guard the simulator's own performance —
 * LLM-scale sweeps depend on them.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/blockstats.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "format/codec.hpp"
#include "format/encoding.hpp"
#include "sim/pipeline.hpp"
#include "sim/scheduler.hpp"
#include "util/contentstore.hpp"
#include "util/rng.hpp"
#include "workload/profile_builder.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc;

/**
 * Run @p body with the content store disabled, so a benchmark of the
 * compute path measures compute, not memoization. (The store is
 * process-global; benchmarks run serially so flipping it is safe.)
 */
template <typename F>
void
withoutCache(F &&body)
{
    util::ContentStore &store = util::ContentStore::instance();
    const bool was = store.enabled();
    store.setEnabled(false);
    body();
    store.setEnabled(was);
}

core::Matrix
benchScores(size_t dim)
{
    const auto w = workload::synthWeights(
        {"kernel-bench", dim, dim, 1}, 1);
    return core::magnitudeScores(w);
}

void
BM_UsMask(benchmark::State &state)
{
    const auto scores = benchScores(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(core::usMask(scores, 0.75));
    state.SetItemsProcessed(state.iterations() * scores.size());
}
BENCHMARK(BM_UsMask)->Arg(256)->Arg(512);

void
BM_TbsMask(benchmark::State &state)
{
    const auto scores = benchScores(state.range(0));
    const auto cand = core::defaultCandidates(8);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::tbsMask(scores, 0.75, 8, cand));
    state.SetItemsProcessed(state.iterations() * scores.size());
}
BENCHMARK(BM_TbsMask)->Arg(256)->Arg(512);

void
BM_RsvMask(benchmark::State &state)
{
    const auto scores = benchScores(state.range(0));
    const auto cand = core::defaultCandidates(8);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::rsvMask(scores, 0.75, 8, cand));
}
BENCHMARK(BM_RsvMask)->Arg(256);

void
BM_DdcEncode(benchmark::State &state)
{
    const auto w = workload::synthWeights(
        {"kernel-bench", 512, 512, 1}, 1);
    const auto scores = core::magnitudeScores(w);
    const auto res =
        core::tbsMask(scores, 0.75, 8, core::defaultCandidates(8));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            format::encodeDdc(w, res.mask, res.meta));
}
BENCHMARK(BM_DdcEncode);

void
BM_CodecConvert(benchmark::State &state)
{
    util::Rng rng(3);
    std::vector<format::StorageElem> storage;
    for (uint8_t col = 0; col < 8; ++col) {
        const auto rows = rng.permutation(8);
        for (uint8_t k = 0; k < 4; ++k)
            storage.push_back(
                {1.0f, static_cast<uint8_t>(rows[k]), col});
    }
    const format::CodecConfig cfg{8, 2, 2};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            format::convertToComputation(storage, cfg));
    state.SetItemsProcessed(state.iterations() * storage.size());
}
BENCHMARK(BM_CodecConvert);

void
BM_Scheduler(benchmark::State &state)
{
    util::Rng rng(5);
    std::vector<uint64_t> costs(static_cast<size_t>(state.range(0)));
    for (auto &c : costs)
        c = rng.below(9);
    const auto policy = state.range(1) == 0 ? sim::InterSched::Naive
                                            : sim::InterSched::Aware;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sim::scheduleBlocks(costs, 128, policy, 8));
    state.SetItemsProcessed(state.iterations() * costs.size());
}
BENCHMARK(BM_Scheduler)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({65536, 1});

void
BM_SimulateLayer(benchmark::State &state)
{
    workload::ProfileSpec spec;
    spec.shape = {"sim-bench", 1024, 1024, 128};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.75;
    spec.fmt = format::StorageFormat::DDC;
    const auto profile = workload::buildLayerProfile(spec);
    const sim::ArchConfig cfg;
    withoutCache([&] {
        for (auto _ : state)
            benchmark::DoNotOptimize(sim::simulateLayer(profile, cfg));
    });
}
BENCHMARK(BM_SimulateLayer);

void
BM_BuildLayerProfile(benchmark::State &state)
{
    workload::ProfileSpec spec;
    spec.shape = {"profile-bench", 1024, 1024, 128};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.75;
    spec.fmt = format::StorageFormat::DDC;
    withoutCache([&] {
        for (auto _ : state)
            benchmark::DoNotOptimize(workload::buildLayerProfile(spec));
    });
}
BENCHMARK(BM_BuildLayerProfile);

// --------------------------------------------------------------------
// Packed-mask kernels: the word-parallel primitives the bit-packed
// Mask replaced byte loops with. Throughput here is what the 3x
// blockstats / 2x tbsMask end-to-end speedups are built from.
// --------------------------------------------------------------------

core::Mask
benchMask(size_t dim, double sparsity, uint64_t seed)
{
    const auto w = workload::synthWeights(
        {"mask-bench", dim, dim, 1}, seed);
    return core::usMask(core::magnitudeScores(w), sparsity);
}

void
BM_MaskNnz(benchmark::State &state)
{
    const auto m = benchMask(state.range(0), 0.75, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(m.nnz());
    state.SetItemsProcessed(state.iterations() * m.size());
}
BENCHMARK(BM_MaskNnz)->Arg(1024);

void
BM_MaskAgreement(benchmark::State &state)
{
    const auto a = benchMask(state.range(0), 0.75, 2);
    const auto b = benchMask(state.range(0), 0.75, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.agreement(b));
    state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_MaskAgreement)->Arg(1024);

void
BM_MaskOverlap(benchmark::State &state)
{
    const auto a = benchMask(state.range(0), 0.75, 2);
    const auto b = benchMask(state.range(0), 0.75, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.overlap(b));
    state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_MaskOverlap)->Arg(1024);

void
BM_MaskAnd(benchmark::State &state)
{
    const auto a = benchMask(state.range(0), 0.75, 2);
    const auto b = benchMask(state.range(0), 0.75, 3);
    for (auto _ : state) {
        core::Mask c = a;
        c &= b;
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_MaskAnd)->Arg(1024);

void
BM_BlockNnz(benchmark::State &state)
{
    const auto m = benchMask(1024, 0.75, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::blockNnz(m, static_cast<size_t>(state.range(0))));
    state.SetItemsProcessed(state.iterations() * m.size());
}
BENCHMARK(BM_BlockNnz)->Arg(8)->Arg(16);

void
BM_ApplyMask(benchmark::State &state)
{
    const auto w = workload::synthWeights(
        {"mask-bench", 1024, 1024, 1}, 2);
    const auto m = core::usMask(core::magnitudeScores(w), 0.75);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::applyMask(w, m));
    state.SetItemsProcessed(state.iterations() * m.size());
}
BENCHMARK(BM_ApplyMask);

// --------------------------------------------------------------------
// Content-addressed cache paths: a warm profile/sim request must cost
// hash + map lookup + payload decode, not a rebuild. The *Cached
// variants measure exactly the path a warm fig-grid run takes.
// --------------------------------------------------------------------

void
BM_BuildLayerProfileCached(benchmark::State &state)
{
    workload::ProfileSpec spec;
    spec.shape = {"profile-bench-hot", 512, 512, 128};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.75;
    spec.fmt = format::StorageFormat::DDC;
    util::ContentStore &store = util::ContentStore::instance();
    const bool was = store.enabled();
    store.setEnabled(true);
    benchmark::DoNotOptimize(workload::buildLayerProfile(spec)); // Warm.
    for (auto _ : state)
        benchmark::DoNotOptimize(workload::buildLayerProfile(spec));
    store.setEnabled(was);
}
BENCHMARK(BM_BuildLayerProfileCached);

void
BM_SimulateLayerCached(benchmark::State &state)
{
    workload::ProfileSpec spec;
    spec.shape = {"sim-bench-hot", 512, 512, 128};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.75;
    spec.fmt = format::StorageFormat::DDC;
    util::ContentStore &store = util::ContentStore::instance();
    const bool was = store.enabled();
    store.setEnabled(true);
    const auto profile = workload::buildLayerProfile(spec);
    const sim::ArchConfig cfg;
    benchmark::DoNotOptimize(sim::simulateLayer(profile, cfg)); // Warm.
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::simulateLayer(profile, cfg));
    store.setEnabled(was);
}
BENCHMARK(BM_SimulateLayerCached);

void
BM_ContentStoreHit(benchmark::State &state)
{
    util::ContentStore store;
    const std::vector<uint8_t> payload(
        static_cast<size_t>(state.range(0)), 0x5a);
    store.put("bench", 1, payload);
    for (auto _ : state) {
        auto [bytes, outcome] =
            store.getOrCompute("bench", 1, [&] { return payload; });
        benchmark::DoNotOptimize(bytes);
        benchmark::DoNotOptimize(outcome);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ContentStoreHit)->Arg(1024)->Arg(65536);

} // namespace

/**
 * Custom main: accept the repo-wide `--json PATH` convention (what the
 * CI perf-smoke job and the fig benches use) by translating it into
 * google-benchmark's --benchmark_out flags before initialization.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv, argv + argc);
    for (size_t i = 1; i + 1 < args.size(); ++i)
        if (args[i] == "--json") {
            const std::string path = args[i + 1];
            args.erase(args.begin() + static_cast<long>(i),
                       args.begin() + static_cast<long>(i) + 2);
            args.push_back("--benchmark_out=" + path);
            args.push_back("--benchmark_out_format=json");
            break;
        }
    std::vector<char *> cargs;
    cargs.reserve(args.size());
    for (auto &a : args)
        cargs.push_back(a.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
