/**
 * @file
 * google-benchmark microbenchmarks of the library's hot kernels:
 * mask generation (Alg. 1 and baselines), format encoding, the codec
 * conversion queue, the inter-block scheduler, and the pipeline
 * simulator itself. These guard the simulator's own performance —
 * LLM-scale sweeps depend on them.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/blockstats.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "format/codec.hpp"
#include "format/encoding.hpp"
#include "kernels/kernels.hpp"
#include "sim/pipeline.hpp"
#include "sim/scheduler.hpp"
#include "util/contentstore.hpp"
#include "util/rng.hpp"
#include "workload/profile_builder.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc;

/**
 * Run @p body with the content store disabled, so a benchmark of the
 * compute path measures compute, not memoization. (The store is
 * process-global; benchmarks run serially so flipping it is safe.)
 */
template <typename F>
void
withoutCache(F &&body)
{
    util::ContentStore &store = util::ContentStore::instance();
    const bool was = store.enabled();
    store.setEnabled(false);
    body();
    store.setEnabled(was);
}

core::Matrix
benchScores(size_t dim)
{
    const auto w = workload::synthWeights(
        {"kernel-bench", dim, dim, 1}, 1);
    return core::magnitudeScores(w);
}

void
BM_UsMask(benchmark::State &state)
{
    const auto scores = benchScores(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(core::usMask(scores, 0.75));
    state.SetItemsProcessed(state.iterations() * scores.size());
}
BENCHMARK(BM_UsMask)->Arg(256)->Arg(512);

void
BM_TbsMask(benchmark::State &state)
{
    const auto scores = benchScores(state.range(0));
    const auto cand = core::defaultCandidates(8);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::tbsMask(scores, 0.75, 8, cand));
    state.SetItemsProcessed(state.iterations() * scores.size());
}
BENCHMARK(BM_TbsMask)->Arg(256)->Arg(512);

void
BM_RsvMask(benchmark::State &state)
{
    const auto scores = benchScores(state.range(0));
    const auto cand = core::defaultCandidates(8);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::rsvMask(scores, 0.75, 8, cand));
}
BENCHMARK(BM_RsvMask)->Arg(256);

void
BM_DdcEncode(benchmark::State &state)
{
    const auto w = workload::synthWeights(
        {"kernel-bench", 512, 512, 1}, 1);
    const auto scores = core::magnitudeScores(w);
    const auto res =
        core::tbsMask(scores, 0.75, 8, core::defaultCandidates(8));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            format::encodeDdc(w, res.mask, res.meta));
}
BENCHMARK(BM_DdcEncode);

void
BM_CodecConvert(benchmark::State &state)
{
    util::Rng rng(3);
    std::vector<format::StorageElem> storage;
    for (uint8_t col = 0; col < 8; ++col) {
        const auto rows = rng.permutation(8);
        for (uint8_t k = 0; k < 4; ++k)
            storage.push_back(
                {1.0f, static_cast<uint8_t>(rows[k]), col});
    }
    const format::CodecConfig cfg{8, 2, 2};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            format::convertToComputation(storage, cfg));
    state.SetItemsProcessed(state.iterations() * storage.size());
}
BENCHMARK(BM_CodecConvert);

void
BM_Scheduler(benchmark::State &state)
{
    util::Rng rng(5);
    std::vector<uint64_t> costs(static_cast<size_t>(state.range(0)));
    for (auto &c : costs)
        c = rng.below(9);
    const auto policy = state.range(1) == 0 ? sim::InterSched::Naive
                                            : sim::InterSched::Aware;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sim::scheduleBlocks(costs, 128, policy, 8));
    state.SetItemsProcessed(state.iterations() * costs.size());
}
BENCHMARK(BM_Scheduler)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({65536, 1});

void
BM_SimulateLayer(benchmark::State &state)
{
    workload::ProfileSpec spec;
    spec.shape = {"sim-bench", 1024, 1024, 128};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.75;
    spec.fmt = format::StorageFormat::DDC;
    const auto profile = workload::buildLayerProfile(spec);
    const sim::ArchConfig cfg;
    withoutCache([&] {
        for (auto _ : state)
            benchmark::DoNotOptimize(sim::simulateLayer(profile, cfg));
    });
}
BENCHMARK(BM_SimulateLayer);

void
BM_BuildLayerProfile(benchmark::State &state)
{
    workload::ProfileSpec spec;
    spec.shape = {"profile-bench", 1024, 1024, 128};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.75;
    spec.fmt = format::StorageFormat::DDC;
    withoutCache([&] {
        for (auto _ : state)
            benchmark::DoNotOptimize(workload::buildLayerProfile(spec));
    });
}
BENCHMARK(BM_BuildLayerProfile);

// --------------------------------------------------------------------
// Packed-mask kernels: the word-parallel primitives the bit-packed
// Mask replaced byte loops with. Throughput here is what the 3x
// blockstats / 2x tbsMask end-to-end speedups are built from.
// --------------------------------------------------------------------

core::Mask
benchMask(size_t dim, double sparsity, uint64_t seed)
{
    const auto w = workload::synthWeights(
        {"mask-bench", dim, dim, 1}, seed);
    return core::usMask(core::magnitudeScores(w), sparsity);
}

void
BM_MaskNnz(benchmark::State &state)
{
    const auto m = benchMask(state.range(0), 0.75, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(m.nnz());
    state.SetItemsProcessed(state.iterations() * m.size());
}
BENCHMARK(BM_MaskNnz)->Arg(1024);

void
BM_MaskAgreement(benchmark::State &state)
{
    const auto a = benchMask(state.range(0), 0.75, 2);
    const auto b = benchMask(state.range(0), 0.75, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.agreement(b));
    state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_MaskAgreement)->Arg(1024);

void
BM_MaskOverlap(benchmark::State &state)
{
    const auto a = benchMask(state.range(0), 0.75, 2);
    const auto b = benchMask(state.range(0), 0.75, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.overlap(b));
    state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_MaskOverlap)->Arg(1024);

void
BM_MaskAnd(benchmark::State &state)
{
    const auto a = benchMask(state.range(0), 0.75, 2);
    const auto b = benchMask(state.range(0), 0.75, 3);
    for (auto _ : state) {
        core::Mask c = a;
        c &= b;
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_MaskAnd)->Arg(1024);

void
BM_BlockNnz(benchmark::State &state)
{
    const auto m = benchMask(1024, 0.75, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::blockNnz(m, static_cast<size_t>(state.range(0))));
    state.SetItemsProcessed(state.iterations() * m.size());
}
BENCHMARK(BM_BlockNnz)->Arg(8)->Arg(16);

void
BM_ApplyMask(benchmark::State &state)
{
    const auto w = workload::synthWeights(
        {"mask-bench", 1024, 1024, 1}, 2);
    const auto m = core::usMask(core::magnitudeScores(w), 0.75);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::applyMask(w, m));
    state.SetItemsProcessed(state.iterations() * m.size());
}
BENCHMARK(BM_ApplyMask);

// --------------------------------------------------------------------
// Content-addressed cache paths: a warm profile/sim request must cost
// hash + map lookup + payload decode, not a rebuild. The *Cached
// variants measure exactly the path a warm fig-grid run takes.
// --------------------------------------------------------------------

void
BM_BuildLayerProfileCached(benchmark::State &state)
{
    workload::ProfileSpec spec;
    spec.shape = {"profile-bench-hot", 512, 512, 128};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.75;
    spec.fmt = format::StorageFormat::DDC;
    util::ContentStore &store = util::ContentStore::instance();
    const bool was = store.enabled();
    store.setEnabled(true);
    benchmark::DoNotOptimize(workload::buildLayerProfile(spec)); // Warm.
    for (auto _ : state)
        benchmark::DoNotOptimize(workload::buildLayerProfile(spec));
    store.setEnabled(was);
}
BENCHMARK(BM_BuildLayerProfileCached);

void
BM_SimulateLayerCached(benchmark::State &state)
{
    workload::ProfileSpec spec;
    spec.shape = {"sim-bench-hot", 512, 512, 128};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.75;
    spec.fmt = format::StorageFormat::DDC;
    util::ContentStore &store = util::ContentStore::instance();
    const bool was = store.enabled();
    store.setEnabled(true);
    const auto profile = workload::buildLayerProfile(spec);
    const sim::ArchConfig cfg;
    benchmark::DoNotOptimize(sim::simulateLayer(profile, cfg)); // Warm.
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::simulateLayer(profile, cfg));
    store.setEnabled(was);
}
BENCHMARK(BM_SimulateLayerCached);

void
BM_ContentStoreHit(benchmark::State &state)
{
    util::ContentStore store;
    const std::vector<uint8_t> payload(
        static_cast<size_t>(state.range(0)), 0x5a);
    store.put("bench", 1, payload);
    for (auto _ : state) {
        auto [bytes, outcome] =
            store.getOrCompute("bench", 1, [&] { return payload; });
        benchmark::DoNotOptimize(bytes);
        benchmark::DoNotOptimize(outcome);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ContentStoreHit)->Arg(1024)->Arg(65536);

// --------------------------------------------------------------------
// Per-ISA kernel-table microbenchmarks: one registration per primitive
// per level the host can run (BM_Kernel*/scalar, /avx2, ...), so one
// run shows every level side by side and check_perf can gate the SIMD
// wins against per-ISA baselines. The macro benchmarks above use the
// *active* level (TBSTC_ISA / --isa); these bypass the selection.
// --------------------------------------------------------------------

std::vector<uint64_t>
benchWords(size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<uint64_t> words(n);
    for (auto &w : words)
        w = rng.next();
    return words;
}

void
BM_KernelPopcount(benchmark::State &state,
                  const kernels::KernelTable *t)
{
    const auto words = benchWords(131072, 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(t->popcount(words.data(), words.size()));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * words.size() * 8));
}

void
BM_KernelPopcountXor(benchmark::State &state,
                     const kernels::KernelTable *t)
{
    const auto a = benchWords(131072, 11);
    const auto b = benchWords(131072, 13);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            t->popcountXor(a.data(), b.data(), a.size()));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * a.size() * 16));
}

void
BM_KernelBytePopcountAccum(benchmark::State &state,
                           const kernels::KernelTable *t)
{
    // The blockNnz inner loop: 8 row accumulations into one strip.
    const auto words = benchWords(8 * 2048, 17);
    std::vector<uint64_t> acc(2048);
    for (auto _ : state) {
        std::fill(acc.begin(), acc.end(), uint64_t{0});
        for (size_t r = 0; r < 8; ++r)
            t->bytePopcountAccum(words.data() + r * acc.size(),
                                 acc.size(), acc.data());
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * words.size() * 8));
}

void
BM_KernelRank8x8(benchmark::State &state, const kernels::KernelTable *t)
{
    util::Rng rng(23);
    std::vector<float> blocks(64 * 1024);
    for (auto &v : blocks)
        v = static_cast<float>(rng.below(4096)) * 0.25f;
    std::vector<uint16_t> rank_row(64);
    std::vector<uint16_t> rank_col(64);
    for (auto _ : state) {
        for (size_t b = 0; b < 1024; ++b)
            t->rank8x8(blocks.data() + b * 64, rank_row.data(),
                       rank_col.data());
        benchmark::DoNotOptimize(rank_row.data());
        benchmark::DoNotOptimize(rank_col.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * 1024 * 64));
}

void
BM_KernelPackIdx(benchmark::State &state, const kernels::KernelTable *t)
{
    util::Rng rng(29);
    const unsigned bits = 3; // m = 8, the dominant DDC geometry.
    std::vector<uint8_t> vals(1 << 16);
    for (auto &v : vals)
        v = static_cast<uint8_t>(rng.below(8));
    std::vector<uint8_t> packed((vals.size() * bits + 7) / 8);
    for (auto _ : state) {
        t->packIdx(vals.data(), vals.size(), bits, packed.data());
        benchmark::DoNotOptimize(packed.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * vals.size()));
}

void
BM_KernelUnpackIdx(benchmark::State &state,
                   const kernels::KernelTable *t)
{
    util::Rng rng(31);
    const unsigned bits = 3;
    std::vector<uint8_t> vals(1 << 16);
    for (auto &v : vals)
        v = static_cast<uint8_t>(rng.below(8));
    std::vector<uint8_t> packed((vals.size() * bits + 7) / 8);
    kernels::kernelTableFor(kernels::Isa::Scalar)
        ->packIdx(vals.data(), vals.size(), bits, packed.data());
    std::vector<uint8_t> out(vals.size());
    for (auto _ : state) {
        t->unpackIdx(packed.data(), out.size(), bits, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * out.size()));
}

void
BM_KernelCrc32(benchmark::State &state, const kernels::KernelTable *t)
{
    util::Rng rng(37);
    std::vector<uint8_t> bytes(1 << 16);
    for (auto &b : bytes)
        b = static_cast<uint8_t>(rng.below(256));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            t->crc32(bytes.data(), bytes.size(), 0));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * bytes.size()));
}

/** Register every BM_Kernel* benchmark for every runnable level. */
void
registerKernelBenchmarks()
{
    const std::pair<const char *,
                    void (*)(benchmark::State &,
                             const kernels::KernelTable *)>
        prims[] = {
            {"BM_KernelPopcount", &BM_KernelPopcount},
            {"BM_KernelPopcountXor", &BM_KernelPopcountXor},
            {"BM_KernelBytePopcountAccum", &BM_KernelBytePopcountAccum},
            {"BM_KernelRank8x8", &BM_KernelRank8x8},
            {"BM_KernelPackIdx", &BM_KernelPackIdx},
            {"BM_KernelUnpackIdx", &BM_KernelUnpackIdx},
            {"BM_KernelCrc32", &BM_KernelCrc32},
        };
    for (const kernels::Isa isa : kernels::supportedIsas()) {
        const kernels::KernelTable *t = kernels::kernelTableFor(isa);
        for (const auto &[name, fn] : prims)
            benchmark::RegisterBenchmark(
                (std::string(name) + "/" + t->name).c_str(), fn, t);
    }
}

} // namespace

/**
 * Custom main: accept the repo-wide `--json PATH` convention (what the
 * CI perf-smoke job and the fig benches use) by translating it into
 * google-benchmark's --benchmark_out flags before initialization.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv, argv + argc);
    for (size_t i = 1; i + 1 < args.size(); ++i)
        if (args[i] == "--json") {
            const std::string path = args[i + 1];
            args.erase(args.begin() + static_cast<long>(i),
                       args.begin() + static_cast<long>(i) + 2);
            args.push_back("--benchmark_out=" + path);
            args.push_back("--benchmark_out_format=json");
            break;
        }
    std::vector<char *> cargs;
    cargs.reserve(args.size());
    for (auto &a : args)
        cargs.push_back(a.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    // Attribute every run (and its JSON) to the dispatched backend;
    // check_perf.py keys its baselines off this field.
    benchmark::AddCustomContext(
        "tbstc_isa",
        tbstc::kernels::isaName(tbstc::kernels::activeIsa()));
    registerKernelBenchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
