/**
 * @file
 * Regenerates paper Fig. 18: training-loss convergence of dense, US,
 * and TBS sparse training, with the TBS sparsity ramp marked.
 *
 * Paper reference: TBS training converges to nearly the dense loss;
 * it needs somewhat more epochs than dense but fewer than US (whose
 * larger search space trains slower).
 */

#include <cstdio>

#include "bench_util.hpp"
#include "nn/sparse_train.hpp"

using namespace tbstc;
using core::Pattern;

int
main()
{
    util::Rng data_rng(77);
    nn::DatasetConfig dc;
    dc.features = 32;
    dc.classes = 8;
    dc.trainSamples = 3072;
    dc.testSamples = 1024;
    const nn::DataSplit data = nn::makeClusterDataset(dc, data_rng);

    auto train = [&](Pattern p) {
        util::Rng rng(7);
        nn::Mlp model({32, 64, 64, 8}, rng);
        nn::TrainConfig cfg;
        cfg.pattern = p;
        cfg.sparsity = p == Pattern::Dense ? 0.0 : 0.5;
        cfg.epochs = 24;
        cfg.rampEpochs = 10;
        cfg.batch = 128;
        cfg.lr = 0.08;
        return nn::sparseTrain(model, data, cfg, rng);
    };

    const auto dense = train(Pattern::Dense);
    const auto us = train(Pattern::US);
    const auto tbs = train(Pattern::TBS);

    util::banner("Fig. 18: training loss per epoch (dense vs US vs "
                 "TBS; TBS sparsity ramp shown)");
    util::Table t({"epoch", "dense loss", "US loss", "TBS loss",
                   "TBS sparsity"});
    for (size_t e = 0; e < dense.history.size(); ++e) {
        t.addRow({std::to_string(e + 1),
                  util::fmtDouble(dense.history[e].trainLoss, 4),
                  util::fmtDouble(us.history[e].trainLoss, 4),
                  util::fmtDouble(tbs.history[e].trainLoss, 4),
                  util::fmtDouble(tbs.history[e].sparsity, 3)});
    }
    t.print();

    std::printf("\nFinal test accuracy: dense %.2f%%, US %.2f%%, TBS "
                "%.2f%%.\nReading: TBS converges to near-dense loss "
                "while the mask ramps to 50%% sparsity\n(paper Fig. "
                "18).\n",
                dense.finalAccuracy * 100.0, us.finalAccuracy * 100.0,
                tbs.finalAccuracy * 100.0);
    return 0;
}
