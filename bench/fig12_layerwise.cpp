/**
 * @file
 * Regenerates paper Fig. 12: layer-wise speedup and normalized EDP
 * across sparsity degrees on typical ResNet-50 and BERT layers, for
 * STC / VEGETA / HighLight / RM-STC / TB-STC (all normalized to the
 * dense tensor core).
 *
 * Paper reference: TB-STC averages 1.55x / 1.29x / 1.21x / 1.06x
 * speedup over STC / VEGETA / HighLight / RM-STC, and 1.41x EDP over
 * HighLight, 1.75x over RM-STC.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "util/stats.hpp"
#include "workload/models.hpp"

using namespace tbstc;
using accel::AccelKind;
using bench::fmtRatio;

int
main()
{
    const std::vector<double> sparsities{0.5, 0.625, 0.75, 0.875};
    const auto kinds = bench::sparseBaselines();

    std::vector<workload::GemmShape> layers;
    for (auto model : {workload::ModelId::ResNet50,
                       workload::ModelId::BertBase}) {
        for (const auto &shape : workload::representativeLayers(model))
            layers.push_back(shape);
    }

    util::banner("Fig. 12: layer-wise speedup and normalized EDP "
                 "(vs dense TC)");
    std::map<AccelKind, std::vector<double>> speedups;
    std::map<AccelKind, std::vector<double>> edps;

    for (double sp : sparsities) {
        util::Table t({"layer", "sparsity", "STC", "VEGETA", "HighLight",
                       "RM-STC", "TB-STC", "metric"});
        for (const auto &shape : layers) {
            accel::RunRequest req;
            req.shape = shape;
            req.sparsity = sp;
            const auto dense = accel::runLayer(AccelKind::TC, req);

            std::vector<std::string> row_speed{
                shape.name, util::fmtDouble(sp, 3)};
            std::vector<std::string> row_edp{shape.name,
                                             util::fmtDouble(sp, 3)};
            for (AccelKind kind : kinds) {
                const auto stats = accel::runLayer(kind, req);
                const double speedup = dense.cycles / stats.cycles;
                const double edp = stats.edp / dense.edp;
                speedups[kind].push_back(speedup);
                edps[kind].push_back(edp);
                row_speed.push_back(fmtRatio(speedup));
                row_edp.push_back(util::fmtDouble(edp, 3));
            }
            row_speed.push_back("speedup");
            row_edp.push_back("norm.EDP");
            t.addRow(row_speed);
            t.addRow(row_edp);
        }
        t.print();
    }

    util::banner("Fig. 12 summary: TB-STC vs each baseline "
                 "(geomean over layers x sparsities)");
    util::Table s({"baseline", "TB-STC speedup", "TB-STC EDP gain",
                   "paper speedup"});
    const auto &tb_speed = speedups[AccelKind::TbStc];
    const auto &tb_edp = edps[AccelKind::TbStc];
    const std::map<AccelKind, std::string> paper{
        {AccelKind::STC, "1.55x"},
        {AccelKind::Vegeta, "1.29x"},
        {AccelKind::HighLight, "1.21x"},
        {AccelKind::RmStc, "1.06x"},
    };
    for (AccelKind kind : kinds) {
        if (kind == AccelKind::TbStc)
            continue;
        std::vector<double> speed_ratio;
        std::vector<double> edp_ratio;
        for (size_t i = 0; i < tb_speed.size(); ++i) {
            speed_ratio.push_back(tb_speed[i] / speedups[kind][i]);
            edp_ratio.push_back(edps[kind][i] / tb_edp[i]);
        }
        s.addRow({accel::accelName(kind),
                  fmtRatio(util::geomean(speed_ratio)),
                  fmtRatio(util::geomean(edp_ratio)),
                  paper.at(kind)});
    }
    s.print();
    return 0;
}
