/**
 * @file
 * Regenerates paper Fig. 14: execution-cycle breakdown of typical
 * GEMMs from BERT's 9th encoder layer on TB-STC, showing that the
 * codec's format conversion hides inside the pipeline.
 *
 * Paper reference: format conversion accounts for only ~3.57% of the
 * overall execution on average.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "util/stats.hpp"
#include "workload/models.hpp"

using namespace tbstc;
using accel::AccelKind;

int
main()
{
    util::banner("Fig. 14: execution-cycle breakdown on BERT layer 9 "
                 "(TB-STC, 50% TBS)");
    util::Table t({"layer", "compute", "memory", "codec work",
                   "codec exposed", "exposed share"});
    std::vector<double> exposed_shares;
    for (const auto &shape : workload::representativeLayers(
             workload::ModelId::BertBase, 128)) {
        accel::RunRequest req;
        req.shape = shape;
        req.sparsity = 0.5;
        const auto s = accel::runLayer(AccelKind::TbStc, req);
        // Visible conversion = the part the pipeline cannot overlap:
        // the slack-limited exposure plus the per-launch ramp the
        // codec contributes to the startup window.
        const double visible = s.breakdown.codecExposed
            + std::min(s.breakdown.codec, s.breakdown.startup);
        const double share = visible / s.breakdown.total;
        exposed_shares.push_back(share);
        t.addRow({shape.name,
                  util::fmtDouble(s.breakdown.compute, 0),
                  util::fmtDouble(s.breakdown.memory, 0),
                  util::fmtDouble(s.breakdown.codec, 0),
                  util::fmtDouble(s.breakdown.codecExposed, 0),
                  bench::fmtPct(share, 2)});
    }
    t.print();

    std::printf("\nMean visible conversion share: %.2f%% (paper: "
                "3.57%%). The codec's raw work\noverlaps the "
                "compute/memory bottleneck; only queue ramp/drain is "
                "visible.\n", util::mean(exposed_shares) * 100.0);
    return 0;
}
