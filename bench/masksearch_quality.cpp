/**
 * @file
 * Mask-quality vs search-cost study for the pluggable TBS mask-search
 * strategies (docs/mask_search.md).
 *
 * Sweeps the Fig. 13 workload models across the Table I/II sparsity
 * grid and, for each cell, runs both registered strategies (`greedy`
 * Algorithm 1 and the `optimal` assignment solver) on the same
 * synthetic weights. Reported per cell:
 *
 *  - per-block dominance: the fraction of M x M blocks whose optimal
 *    L1 distance to the unstructured mask is <= / < greedy's, each
 *    distance recomputed here from the masks (not trusted from solver
 *    stats). The solver's structural guarantee is dominance on 100%
 *    of blocks; the bench exits non-zero if any cell violates it, so
 *    the CI smoke doubles as a regression gate.
 *  - mask quality: usHamming and US agreement per strategy, plus the
 *    accuracy proxy. Greedy's proxy is workload::proxyAccuracy();
 *    optimal's scales greedy's structured gap by the measured
 *    dissimilarity ratio, mirroring how the proxy interpolates
 *    between patterns (src/workload/accuracy_model.cpp).
 *  - search cost: wall time per strategy and the optimal solver's
 *    augmentation count (Kuhn re-routes; 0 means greedy-equivalent
 *    column pressure).
 *
 * A second table places the SlideSparse family on the Fig. 4(b) axis:
 * US agreement of TS vs TBS vs SS across the sparsity grid.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/mask_search.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "workload/accuracy_model.hpp"
#include "workload/models.hpp"
#include "workload/synth.hpp"

using namespace tbstc;
using core::Pattern;

namespace {

constexpr size_t kM = 8;
/** Row cap keeps an LLM layer's probe at bench scale. */
constexpr uint64_t kMaxRows = 512;

struct StrategyRun
{
    core::MaskOutput out;
    double seconds = 0.0;
};

StrategyRun
runStrategy(const core::Matrix &scores, const std::string &strategy,
            double sparsity)
{
    core::MaskRequest req;
    req.pattern = Pattern::TBS;
    req.strategy = strategy;
    req.sparsity = sparsity;
    req.m = kM;
    const auto t0 = std::chrono::steady_clock::now();
    auto res = core::tryMakeMask(scores, req);
    const auto t1 = std::chrono::steady_clock::now();
    if (!res)
        util::panic("mask search failed: {}", res.error().message);
    return {std::move(*res),
            std::chrono::duration<double>(t1 - t0).count()};
}

/** L1 distance of one M x M block of @p mask to the same US block. */
size_t
blockDist(const core::Mask &mask, const core::Mask &us, size_t br,
          size_t bc)
{
    size_t d = 0;
    for (size_t r = 0; r < kM; ++r) {
        const uint64_t a = mask.rowBits(br * kM + r, bc * kM, kM);
        const uint64_t b = us.rowBits(br * kM + r, bc * kM, kM);
        d += static_cast<size_t>(__builtin_popcountll(a ^ b));
    }
    return d;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "masksearch_quality");

    struct Probe
    {
        workload::ModelId model;
        uint64_t seq;
    };
    // The Fig. 13 workload set; one representative weight layer each.
    const std::vector<Probe> probes{
        {workload::ModelId::ResNet50, 0},
        {workload::ModelId::BertBase, 128},
        {workload::ModelId::Opt67b, 256},
    };
    // The Table I/II sparsity grid.
    const std::vector<double> sparsities{0.5, 0.625, 0.75, 0.875};

    util::banner("Mask quality: greedy vs optimal TBS search "
                 "(per-block L1 vs US recomputed from the masks)");
    util::Table quality({"model", "layer", "s", "blocks", "dom",
                         "strict", "usHam(g)", "usHam(o)", "agree(g)",
                         "agree(o)", "acc(g)", "acc(o)"});
    util::Table cost({"model", "s", "greedy ms", "optimal ms",
                      "cost ratio", "augments", "improved blocks"});
    bool dominated_everywhere = true;

    for (const Probe &p : probes) {
        const auto layers = workload::modelLayers(p.model, p.seq);
        const workload::GemmShape shape = layers.front();
        const auto w = workload::synthWeights(shape, 42, kMaxRows);
        const auto scores = core::magnitudeScores(w);
        const std::string layer_name =
            util::formatStr("{}x{}", w.rows(), w.cols());

        for (const double s : sparsities) {
            const auto greedy =
                runStrategy(scores, core::kGreedyStrategy, s);
            const auto opt =
                runStrategy(scores, core::kOptimalStrategy, s);
            const auto us = core::usMask(scores, s);

            const size_t brs = w.rows() / kM;
            const size_t bcs = w.cols() / kM;
            size_t dominated = 0;
            size_t strict = 0;
            for (size_t br = 0; br < brs; ++br) {
                for (size_t bc = 0; bc < bcs; ++bc) {
                    const size_t dg =
                        blockDist(greedy.out.mask, us, br, bc);
                    const size_t dd =
                        blockDist(opt.out.mask, us, br, bc);
                    dominated += dd <= dg;
                    strict += dd < dg;
                }
            }
            const size_t blocks = brs * bcs;
            if (dominated != blocks)
                dominated_everywhere = false;

            const auto total = static_cast<double>(us.size());
            const double agree_g = 1.0 - greedy.out.usHamming / total;
            const double agree_o = 1.0 - opt.out.usHamming / total;
            // Accuracy proxy: greedy is the TBS curve itself; optimal
            // shrinks greedy's structured gap (vs US) by the measured
            // dissimilarity ratio, the same interpolation the proxy
            // uses between patterns.
            const double acc_us =
                workload::proxyAccuracy(p.model, Pattern::US, s, kM);
            const double acc_g =
                workload::proxyAccuracy(p.model, Pattern::TBS, s, kM);
            const double dis_g = std::max(1e-9, 1.0 - agree_g);
            const double acc_o =
                acc_us - (acc_us - acc_g) * ((1.0 - agree_o) / dis_g);

            quality.addRow(
                {workload::modelName(p.model), layer_name,
                 util::fmtDouble(s, 3), std::to_string(blocks),
                 bench::fmtPct(static_cast<double>(dominated) / blocks),
                 bench::fmtPct(static_cast<double>(strict) / blocks),
                 std::to_string(greedy.out.usHamming),
                 std::to_string(opt.out.usHamming),
                 bench::fmtPct(agree_g), bench::fmtPct(agree_o),
                 util::fmtDouble(acc_g, 2), util::fmtDouble(acc_o, 2)});
            cost.addRow(
                {workload::modelName(p.model), util::fmtDouble(s, 3),
                 util::fmtDouble(greedy.seconds * 1e3, 2),
                 util::fmtDouble(opt.seconds * 1e3, 2),
                 bench::fmtRatio(opt.seconds
                                 / std::max(1e-9, greedy.seconds)),
                 std::to_string(opt.out.stats.augmentations),
                 std::to_string(opt.out.stats.improvedBlocks)});
        }
    }
    quality.print();

    util::banner("Search cost: wall time per strategy");
    cost.print();

    util::banner("SlideSparse on the Fig. 4(b) axis: US agreement "
                 "of TS vs TBS vs SS (256x256 probe, M = 8)");
    util::Table family({"pattern", "s=0.50", "s=0.625", "s=0.75",
                        "s=0.875"});
    for (const Pattern pat : {Pattern::TS, Pattern::TBS, Pattern::SS}) {
        std::vector<std::string> row{core::patternName(pat)};
        for (const double s : sparsities)
            row.push_back(
                bench::fmtPct(workload::maskSimilarity(pat, s, kM)));
        family.addRow(row);
    }
    family.print();

    report.addTable("mask_quality", quality);
    report.addTable("search_cost", cost);
    report.addTable("ss_family_similarity", family);

    if (!dominated_everywhere) {
        std::fprintf(stderr, "FAIL: optimal lost to greedy on at "
                             "least one block\n");
        return 1;
    }
    std::printf("\nReading: the optimal solver never loses a block to "
                "greedy (the dom column\nis structural), buys a "
                "measurable US-agreement gain at higher sparsity, "
                "and\ncosts a bounded constant factor in search "
                "time.\n");
    return 0;
}
