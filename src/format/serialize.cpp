#include "serialize.hpp"

#include <algorithm>

#include "kernels/kernels.hpp"
#include "util/checked.hpp"
#include "util/crc32.hpp"
#include "util/fp16.hpp"
#include "util/logging.hpp"

namespace tbstc::format {

using core::Mask;
using core::Matrix;
using core::SparsityDim;
using core::TbsMeta;
using util::checkedAdd;
using util::checkedMul;
using util::crc32;
using util::ensure;
using util::fatal;
using util::Result;
using util::unexpected;

const char *
decodeErrorName(DecodeErrorKind kind)
{
    switch (kind) {
    case DecodeErrorKind::Truncated: return "truncated";
    case DecodeErrorKind::BadMagic: return "bad-magic";
    case DecodeErrorKind::BadVersion: return "bad-version";
    case DecodeErrorKind::GeometryOverflow: return "geometry-overflow";
    case DecodeErrorKind::BadLadder: return "bad-ladder";
    case DecodeErrorKind::InfoFieldRange: return "info-field-range";
    case DecodeErrorKind::OffsetInconsistent: return "offset-inconsistent";
    case DecodeErrorKind::ChecksumMismatch: return "checksum-mismatch";
    case DecodeErrorKind::PayloadOverrun: return "payload-overrun";
    }
    return "unknown";
}

namespace {

/// Blocks per offset group: the 12-bit element offset must cover a
/// group's worth of payload, and a block holds at most M*M elements,
/// so with M = 8 a group of 63 blocks stays under 4096 elements.
constexpr uint32_t kDefaultGroupBlocks = 63;

/// Fixed header bytes before the candidate ladder: magic, rows, cols,
/// m, group size, declared payload element count, ladder size.
constexpr size_t kFixedHeaderBytes = 4 * 6 + 1;

/**
 * Internal non-abort error channel: thrown by the decode helpers and
 * converted to a Result at the tryDeserializeDdc()/ddcLayout()
 * boundary. Never escapes this translation unit.
 */
struct DecodeFail
{
    DecodeError err;
};

[[noreturn]] void
failDecode(DecodeErrorKind kind, size_t offset, std::string message)
{
    throw DecodeFail{{kind, offset, std::move(message)}};
}

/** Little-endian byte writer. */
class Writer
{
  public:
    void
    u8(uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        u8(static_cast<uint8_t>(v));
        u8(static_cast<uint8_t>(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    }

    /**
     * Append a CRC32 of everything written since byte @p from —
     * the v2 stream's header and per-section integrity fields.
     */
    void
    sealCrc(size_t from)
    {
        u32(crc32(std::span(bytes_).subspan(from)));
    }

    size_t size() const { return bytes_.size(); }

    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/** Little-endian bounds-checked reader reporting structured errors. */
class Reader
{
  public:
    explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

    uint8_t
    u8()
    {
        if (pos_ >= bytes_.size())
            failDecode(DecodeErrorKind::Truncated, pos_,
                       util::formatStr("stream truncated at byte {}",
                                       pos_));
        return bytes_[pos_++];
    }

    uint16_t
    u16()
    {
        const uint16_t lo = u8();
        return static_cast<uint16_t>(lo | (u16_t(u8()) << 8));
    }

    uint32_t
    u32()
    {
        const uint32_t lo = u16();
        return lo | (static_cast<uint32_t>(u16()) << 16);
    }

    size_t pos() const { return pos_; }

  private:
    using u16_t = uint16_t;
    std::span<const uint8_t> bytes_;
    size_t pos_ = 0;
};

/** Read a little-endian u32 at an absolute, already-validated offset. */
uint32_t
u32At(std::span<const uint8_t> bytes, size_t at)
{
    return static_cast<uint32_t>(bytes[at]) | (bytes[at + 1] << 8)
        | (bytes[at + 2] << 16)
        | (static_cast<uint32_t>(bytes[at + 3]) << 24);
}

void
putU32At(std::vector<uint8_t> &bytes, size_t at, uint32_t v)
{
    bytes[at] = static_cast<uint8_t>(v);
    bytes[at + 1] = static_cast<uint8_t>(v >> 8);
    bytes[at + 2] = static_cast<uint8_t>(v >> 16);
    bytes[at + 3] = static_cast<uint8_t>(v >> 24);
}

/**
 * Collector for the intra-group index stream. Values are staged
 * byte-wide and bit-packed in one batch through the dispatched
 * kernels::packIdx (LSB-first, the same layout the old bit-at-a-time
 * writer produced), so the serializer's inner loop never touches
 * individual bits.
 */
class BitWriter
{
  public:
    explicit BitWriter(unsigned bits) : bits_(bits) {}

    void put(uint32_t value) { vals_.push_back(static_cast<uint8_t>(value)); }

    /** Pack everything staged so far into the wire byte stream. */
    std::vector<uint8_t>
    packed() const
    {
        std::vector<uint8_t> bytes((vals_.size() * bits_ + 7) / 8, 0);
        kernels::active().packIdx(vals_.data(), vals_.size(), bits_,
                                  bytes.data());
        return bytes;
    }

  private:
    unsigned bits_;
    std::vector<uint8_t> vals_;
};

/**
 * Reader over the index section [start, end): the whole section is
 * bit-unpacked in one batch (kernels::unpackIdx) and consumed value
 * by value. parseHeader has already reconciled the section size
 * against count*bits exactly, but the bound is still re-checked here
 * so a future layout change cannot turn a short section into an
 * out-of-bounds read.
 */
class BitReader
{
  public:
    BitReader(std::span<const uint8_t> bytes, size_t start, size_t end,
              size_t count, unsigned bits)
        : vals_(count)
    {
        if (start > end || end > bytes.size()
            || end - start < (count * static_cast<uint64_t>(bits) + 7) / 8)
            failDecode(DecodeErrorKind::Truncated, end,
                       "index stream truncated");
        kernels::active().unpackIdx(bytes.data() + start, count, bits,
                                    vals_.data());
    }

    uint32_t
    get()
    {
        if (next_ >= vals_.size())
            failDecode(DecodeErrorKind::Truncated, next_,
                       "index stream truncated");
        return vals_[next_++];
    }

  private:
    std::vector<uint8_t> vals_;
    size_t next_ = 0;
};

unsigned
idxBits(size_t m)
{
    unsigned bits = 0;
    while ((1u << bits) < m)
        ++bits;
    return std::max(bits, 1u);
}

/** Header fields plus the derived (size-checked) section map. */
struct ParsedHeader
{
    uint32_t rows = 0;
    uint32_t cols = 0;
    uint32_t m = 0;
    uint32_t groupBlocks = 0;
    std::vector<uint8_t> ladder;
    DdcLayout layout;
};

/**
 * Parse and validate the v2 header and compute the section map. All
 * derived sizes use overflow-checked arithmetic and are reconciled
 * against the actual stream length before anything is allocated, so a
 * hostile header cannot trigger an allocation bomb. Throws DecodeFail.
 */
ParsedHeader
parseHeader(std::span<const uint8_t> bytes)
{
    Reader in(bytes);
    const uint32_t magic = in.u32();
    if (magic == kDdcMagicV1)
        failDecode(DecodeErrorKind::BadVersion, 0,
                   "version 1 stream (no integrity fields); "
                   "re-serialize with the current library");
    if (magic != kDdcMagicV2)
        failDecode(DecodeErrorKind::BadMagic, 0,
                   util::formatStr("bad magic {}", magic));

    ParsedHeader h;
    h.rows = in.u32();
    h.cols = in.u32();
    h.m = in.u32();
    h.groupBlocks = in.u32();
    h.layout.totalValues = in.u32();
    if (h.m == 0 || h.m > 16)
        failDecode(DecodeErrorKind::GeometryOverflow, 12,
                   util::formatStr("block size {} outside the format's "
                                   "4-bit intra-group index budget",
                                   h.m));
    if (h.groupBlocks == 0)
        failDecode(DecodeErrorKind::GeometryOverflow, 16,
                   "offset group size is zero");
    if (h.rows % h.m != 0 || h.cols % h.m != 0)
        failDecode(DecodeErrorKind::GeometryOverflow, 4,
                   util::formatStr("geometry {}x{} not a multiple of "
                                   "block size {}",
                                   h.rows, h.cols, h.m));

    const uint8_t ladder_size = in.u8();
    if (ladder_size == 0 || ladder_size > 8)
        failDecode(DecodeErrorKind::BadLadder, kFixedHeaderBytes - 1,
                   util::formatStr("candidate ladder size {} outside "
                                   "[1, 8]",
                                   ladder_size));
    h.ladder.resize(ladder_size);
    for (size_t i = 0; i < h.ladder.size(); ++i) {
        h.ladder[i] = in.u8();
        if (h.ladder[i] > h.m)
            failDecode(DecodeErrorKind::BadLadder, in.pos() - 1,
                       util::formatStr("candidate N {} exceeds M {}",
                                       h.ladder[i], h.m));
        if (i > 0 && h.ladder[i] <= h.ladder[i - 1])
            failDecode(DecodeErrorKind::BadLadder, in.pos() - 1,
                       "candidate ladder not strictly increasing");
    }

    // Section map, reconciled against the stream length with checked
    // arithmetic before any allocation happens.
    DdcLayout &lay = h.layout;
    lay.headerCrcAt = in.pos();
    lay.groupBasesAt = lay.headerCrcAt + 4;
    uint64_t blocks = 0;
    uint64_t groups = 0;
    if (!checkedMul(h.rows / h.m, h.cols / h.m, blocks)
        || !checkedAdd(blocks, h.groupBlocks - 1, groups))
        failDecode(DecodeErrorKind::GeometryOverflow, 4,
                   "block count overflows");
    groups /= h.groupBlocks;
    lay.blocks = static_cast<size_t>(blocks);
    lay.groups = static_cast<size_t>(groups);

    const uint64_t values_bytes = uint64_t{lay.totalValues} * 2;
    const uint64_t idx_bytes =
        (uint64_t{lay.totalValues} * idxBits(h.m) + 7) / 8;
    uint64_t bases_bytes = 0;
    uint64_t info_bytes = 0;
    if (!checkedMul(groups, 4, bases_bytes)
        || !checkedMul(blocks, 2, info_bytes))
        failDecode(DecodeErrorKind::GeometryOverflow, 4,
                   "section sizes overflow");
    uint64_t end = lay.groupBasesAt;
    // Each section is followed by its 4-byte CRC32.
    for (const uint64_t section :
         {bases_bytes, info_bytes, values_bytes, idx_bytes}) {
        if (!checkedAdd(end, section, end)
            || !checkedAdd(end, 4, end))
            failDecode(DecodeErrorKind::GeometryOverflow, 4,
                       "section sizes overflow");
    }
    if (end > bytes.size())
        failDecode(DecodeErrorKind::Truncated, bytes.size(),
                   util::formatStr("stream has {} bytes but the header "
                                   "declares {}",
                                   bytes.size(), end));
    if (end < bytes.size())
        failDecode(DecodeErrorKind::PayloadOverrun,
                   static_cast<size_t>(end),
                   util::formatStr("{} trailing bytes after the index "
                                   "section",
                                   bytes.size() - end));
    lay.infoAt = lay.groupBasesAt + lay.groups * 4 + 4;
    lay.valuesAt = lay.infoAt + lay.blocks * 2 + 4;
    lay.indicesAt = lay.valuesAt + static_cast<size_t>(values_bytes) + 4;
    lay.end = static_cast<size_t>(end);
    return h;
}

/** Verify the header CRC and every per-section CRC. Throws DecodeFail. */
void
checkCrcs(std::span<const uint8_t> bytes, const DdcLayout &lay)
{
    struct Section
    {
        const char *name;
        size_t begin;
        size_t end; // CRC32 field lives at `end`.
    };
    const Section sections[] = {
        {"header", 0, lay.headerCrcAt},
        {"group bases", lay.groupBasesAt, lay.infoAt - 4},
        {"info table", lay.infoAt, lay.valuesAt - 4},
        {"values", lay.valuesAt, lay.indicesAt - 4},
        {"indices", lay.indicesAt, lay.end - 4},
    };
    for (const auto &s : sections) {
        const uint32_t stored = u32At(bytes, s.end);
        const uint32_t actual =
            crc32(bytes.subspan(s.begin, s.end - s.begin));
        if (stored != actual)
            failDecode(DecodeErrorKind::ChecksumMismatch, s.end,
                       util::formatStr("{} CRC32 mismatch", s.name));
    }
}

/** Full decode behind the Result boundary. Throws DecodeFail. */
DdcParsed
decodeImpl(std::span<const uint8_t> bytes)
{
    const ParsedHeader h = parseHeader(bytes);
    const DdcLayout &lay = h.layout;
    checkCrcs(bytes, lay);

    DdcParsed out;
    out.meta.m = h.m;
    out.meta.blockRows = h.rows / h.m;
    out.meta.blockCols = h.cols / h.m;
    out.meta.blocks.resize(lay.blocks);

    std::vector<uint32_t> group_base(lay.groups);
    for (size_t g = 0; g < lay.groups; ++g)
        group_base[g] = u32At(bytes, lay.groupBasesAt + g * 4);

    uint64_t running = 0;
    for (size_t b = 0; b < lay.blocks; ++b) {
        const size_t entry_at = lay.infoAt + b * 2;
        const uint16_t entry = static_cast<uint16_t>(
            bytes[entry_at] | (bytes[entry_at + 1] << 8));
        const auto ratio = static_cast<size_t>((entry >> 12) & 0x7);
        if (ratio >= h.ladder.size())
            failDecode(DecodeErrorKind::InfoFieldRange, entry_at,
                       util::formatStr("block {} ratio index {} out of "
                                       "range (ladder has {})",
                                       b, ratio, h.ladder.size()));
        core::BlockInfo &bi = out.meta.blocks[b];
        bi.n = h.ladder[ratio];
        bi.dim = entry & 0x8000 ? SparsityDim::Independent
                                : SparsityDim::Reduction;
        // Validate the offset chain against the group bases.
        const uint32_t offset = entry & 0x0fff;
        const int64_t expect = static_cast<int64_t>(running)
            - group_base[b / h.groupBlocks];
        if (expect != offset)
            failDecode(DecodeErrorKind::OffsetInconsistent, entry_at,
                       util::formatStr("block {} offset {} != expected "
                                       "{}",
                                       b, offset, expect));
        running += uint64_t{bi.n} * h.m;
    }
    if (running != lay.totalValues)
        failDecode(DecodeErrorKind::PayloadOverrun, lay.valuesAt,
                   util::formatStr("info table totals {} payload "
                                   "elements but the header declares "
                                   "{}",
                                   running, lay.totalValues));

    const unsigned bits = idxBits(h.m);
    BitReader idx(bytes, lay.indicesAt, lay.end - 4, lay.totalValues,
                  bits);

    out.matrix = Matrix(h.rows, h.cols);
    out.mask = Mask(h.rows, h.cols);
    size_t cursor = lay.valuesAt;
    for (size_t br = 0; br < out.meta.blockRows; ++br) {
        for (size_t bc = 0; bc < out.meta.blockCols; ++bc) {
            const auto &bi = out.meta.block(br, bc);
            for (size_t g = 0; g < h.m; ++g) {
                // Within a group, non-zero entries must arrive in
                // strictly increasing index order (the serializer's
                // canonical order): an out-of-order or duplicate index
                // would silently overwrite a decoded element.
                int last = -1;
                for (size_t k = 0; k < bi.n; ++k) {
                    const uint16_t half = static_cast<uint16_t>(
                        bytes[cursor] | (bytes[cursor + 1] << 8));
                    cursor += 2;
                    const uint32_t e = idx.get();
                    if (e >= h.m)
                        failDecode(DecodeErrorKind::PayloadOverrun,
                                   cursor - 2,
                                   util::formatStr("intra-group index "
                                                   "{} out of range",
                                                   e));
                    if (half == 0)
                        continue; // Padding (or a dropped +0.0).
                    if (static_cast<int>(e) <= last)
                        failDecode(DecodeErrorKind::OffsetInconsistent,
                                   cursor - 2,
                                   util::formatStr(
                                       "block ({}, {}) group {} index "
                                       "{} not strictly increasing",
                                       br, bc, g, e));
                    last = static_cast<int>(e);
                    const size_t r =
                        bi.dim == SparsityDim::Reduction ? g : e;
                    const size_t c =
                        bi.dim == SparsityDim::Reduction ? e : g;
                    out.matrix.at(br * h.m + r, bc * h.m + c) =
                        util::fp16ToFloat(half);
                    out.mask.at(br * h.m + r, bc * h.m + c) = 1;
                }
            }
        }
    }
    return out;
}

} // namespace

std::vector<uint8_t>
serializeDdc(const Matrix &w, const Mask &mask, const TbsMeta &meta)
{
    const size_t m = meta.m;
    ensure(w.rows() == mask.rows() && w.cols() == mask.cols(),
           "serializeDdc: shape mismatch");
    ensure(w.rows() == meta.blockRows * m && w.cols() == meta.blockCols * m,
           "serializeDdc: metadata grid mismatch");
    if (m > 16)
        fatal("serializeDdc: block size {} exceeds the format's 4-bit "
              "intra-group index budget", m);

    // Candidate ladder: the distinct Ns in use, sorted; the 3-bit
    // ratio field indexes it.
    std::vector<uint8_t> ladder;
    for (const auto &b : meta.blocks)
        ladder.push_back(b.n);
    std::sort(ladder.begin(), ladder.end());
    ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
    if (ladder.size() > 8)
        fatal("serializeDdc: {} distinct N values exceed the 3-bit "
              "sparsity-ratio field", ladder.size());

    const size_t blocks = meta.blocks.size();
    if (blocks >= uint64_t{1} << 32)
        fatal("serializeDdc: {} blocks exceed the format's 32-bit "
              "geometry fields", blocks);
    const uint32_t group_blocks = kDefaultGroupBlocks;
    const size_t groups = (blocks + group_blocks - 1) / group_blocks;

    // First pass: payload sizes per block -> group bases, offsets, and
    // the total element count the header declares.
    std::vector<uint32_t> group_base(groups, 0);
    std::vector<uint16_t> info(blocks, 0);
    uint32_t total_values = 0;
    {
        uint32_t element = 0;
        uint32_t base = 0;
        for (size_t b = 0; b < blocks; ++b) {
            if (b % group_blocks == 0) {
                base = element;
                group_base[b / group_blocks] = base;
            }
            const auto &bi = meta.blocks[b];
            const uint32_t offset = element - base;
            ensure(offset < 4096,
                   "serializeDdc: group offset overflow (internal)");
            const auto ratio = static_cast<uint16_t>(
                std::lower_bound(ladder.begin(), ladder.end(), bi.n)
                - ladder.begin());
            info[b] = static_cast<uint16_t>(
                (bi.dim == SparsityDim::Independent ? 0x8000u : 0u)
                | (ratio << 12) | offset);
            element += static_cast<uint32_t>(bi.n) * m;
        }
        total_values = element;
    }

    Writer out;
    out.u32(kDdcMagicV2);
    out.u32(static_cast<uint32_t>(w.rows()));
    out.u32(static_cast<uint32_t>(w.cols()));
    out.u32(static_cast<uint32_t>(m));
    out.u32(group_blocks);
    out.u32(total_values);
    out.u8(static_cast<uint8_t>(ladder.size()));
    for (uint8_t n : ladder)
        out.u8(n);
    out.sealCrc(0);

    size_t section_at = out.size();
    for (uint32_t base : group_base)
        out.u32(base);
    out.sealCrc(section_at);

    section_at = out.size();
    for (uint16_t i : info)
        out.u16(i);
    out.sealCrc(section_at);

    // Second pass: values (fp16) and packed intra-group indices, in
    // block walk order; groups run along each block's own dimension.
    const unsigned bits = idxBits(m);
    BitWriter idx(bits);
    section_at = out.size();
    uint32_t emitted_values = 0;
    for (size_t br = 0; br < meta.blockRows; ++br) {
        for (size_t bc = 0; bc < meta.blockCols; ++bc) {
            const auto &bi = meta.block(br, bc);
            for (size_t g = 0; g < m; ++g) {
                size_t count = 0;
                for (size_t e = 0; e < m; ++e) {
                    const size_t r =
                        bi.dim == SparsityDim::Reduction ? g : e;
                    const size_t c =
                        bi.dim == SparsityDim::Reduction ? e : g;
                    if (!mask.at(br * m + r, bc * m + c))
                        continue;
                    if (count >= bi.n)
                        fatal("serializeDdc: group ({}, {})/{} holds "
                              "more than N = {} elements — not a "
                              "valid TBS mask", br, bc, g, bi.n);
                    const uint16_t half = util::fp16FromFloat(
                        w.at(br * m + r, bc * m + c));
                    out.u16(half);
                    idx.put(static_cast<uint32_t>(e));
                    ++count;
                    ++emitted_values;
                }
                for (; count < bi.n; ++count) {
                    // Pad short groups (never produced by tbsMask, but
                    // keeps the format total-function).
                    out.u16(0);
                    idx.put(0);
                    ++emitted_values;
                }
            }
        }
    }
    ensure(emitted_values == total_values,
           "serializeDdc: pass disagreement (internal)");
    out.sealCrc(section_at);

    section_at = out.size();
    for (uint8_t b : idx.packed())
        out.u8(b);
    out.sealCrc(section_at);
    return out.take();
}

Result<DdcParsed, DecodeError>
tryDeserializeDdc(std::span<const uint8_t> bytes)
{
    try {
        return decodeImpl(bytes);
    } catch (const DecodeFail &f) {
        return unexpected(f.err);
    }
}

DdcParsed
deserializeDdc(std::span<const uint8_t> bytes)
{
    auto parsed = tryDeserializeDdc(bytes);
    if (!parsed)
        fatal("deserializeDdc: {} at byte {}: {}",
              decodeErrorName(parsed.error().kind),
              parsed.error().offset, parsed.error().message);
    return std::move(*parsed);
}

Result<DdcLayout, DecodeError>
ddcLayout(std::span<const uint8_t> bytes)
{
    try {
        return parseHeader(bytes).layout;
    } catch (const DecodeFail &f) {
        return unexpected(f.err);
    }
}

bool
ddcFixupCrcs(std::vector<uint8_t> &bytes)
{
    const auto lay = ddcLayout(bytes);
    if (!lay)
        return false;
    const auto seal = [&](size_t begin, size_t end) {
        putU32At(bytes, end,
                 crc32(std::span(bytes).subspan(begin, end - begin)));
    };
    seal(0, lay->headerCrcAt);
    seal(lay->groupBasesAt, lay->infoAt - 4);
    seal(lay->infoAt, lay->valuesAt - 4);
    seal(lay->valuesAt, lay->indicesAt - 4);
    seal(lay->indicesAt, lay->end - 4);
    return true;
}

} // namespace tbstc::format
