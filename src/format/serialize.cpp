#include "serialize.hpp"

#include <algorithm>
#include <bit>

#include "util/fp16.hpp"
#include "util/logging.hpp"

namespace tbstc::format {

using core::Mask;
using core::Matrix;
using core::SparsityDim;
using core::TbsMeta;
using util::ensure;
using util::fatal;

namespace {

constexpr uint32_t kMagic = 0x31434444; // "DDC1" little-endian.

/// Blocks per offset group: the 12-bit element offset must cover a
/// group's worth of payload, and a block holds at most M*M elements,
/// so with M = 8 a group of 63 blocks stays under 4096 elements.
constexpr uint32_t kDefaultGroupBlocks = 63;

/** Little-endian byte writer. */
class Writer
{
  public:
    void
    u8(uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        u8(static_cast<uint8_t>(v));
        u8(static_cast<uint8_t>(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    }

    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/** Little-endian bounds-checked reader. */
class Reader
{
  public:
    explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

    uint8_t
    u8()
    {
        if (pos_ >= bytes_.size())
            fatal("DDC stream truncated at byte {}", pos_);
        return bytes_[pos_++];
    }

    uint16_t
    u16()
    {
        const uint16_t lo = u8();
        return static_cast<uint16_t>(lo | (u16_t(u8()) << 8));
    }

    uint32_t
    u32()
    {
        const uint32_t lo = u16();
        return lo | (static_cast<uint32_t>(u16()) << 16);
    }

    size_t pos() const { return pos_; }

  private:
    using u16_t = uint16_t;
    std::span<const uint8_t> bytes_;
    size_t pos_ = 0;
};

/** Bit-packer for the intra-group index stream. */
class BitWriter
{
  public:
    void
    put(uint32_t value, unsigned bits)
    {
        for (unsigned b = 0; b < bits; ++b) {
            if (bit_ == 0)
                bytes_.push_back(0);
            if (value & (1u << b))
                bytes_.back() |= static_cast<uint8_t>(1u << bit_);
            bit_ = (bit_ + 1) % 8;
        }
    }

    const std::vector<uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<uint8_t> bytes_;
    unsigned bit_ = 0;
};

/** Bit-unpacker. */
class BitReader
{
  public:
    BitReader(std::span<const uint8_t> bytes, size_t start)
        : bytes_(bytes), pos_(start)
    {
    }

    uint32_t
    get(unsigned bits)
    {
        uint32_t value = 0;
        for (unsigned b = 0; b < bits; ++b) {
            const size_t byte = pos_ + bit_ / 8;
            if (byte >= bytes_.size())
                fatal("DDC index stream truncated");
            if (bytes_[byte] & (1u << (bit_ % 8)))
                value |= 1u << b;
            ++bit_;
        }
        return value;
    }

  private:
    std::span<const uint8_t> bytes_;
    size_t pos_;
    size_t bit_ = 0;
};

unsigned
idxBits(size_t m)
{
    unsigned bits = 0;
    while ((1u << bits) < m)
        ++bits;
    return std::max(bits, 1u);
}

} // namespace

std::vector<uint8_t>
serializeDdc(const Matrix &w, const Mask &mask, const TbsMeta &meta)
{
    const size_t m = meta.m;
    ensure(w.rows() == mask.rows() && w.cols() == mask.cols(),
           "serializeDdc: shape mismatch");
    ensure(w.rows() == meta.blockRows * m && w.cols() == meta.blockCols * m,
           "serializeDdc: metadata grid mismatch");
    if (m > 16)
        fatal("serializeDdc: block size {} exceeds the format's 4-bit "
              "intra-group index budget", m);

    // Candidate ladder: the distinct Ns in use, sorted; the 3-bit
    // ratio field indexes it.
    std::vector<uint8_t> ladder;
    for (const auto &b : meta.blocks)
        ladder.push_back(b.n);
    std::sort(ladder.begin(), ladder.end());
    ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
    if (ladder.size() > 8)
        fatal("serializeDdc: {} distinct N values exceed the 3-bit "
              "sparsity-ratio field", ladder.size());

    const size_t blocks = meta.blocks.size();
    const uint32_t group_blocks = kDefaultGroupBlocks;
    const size_t groups = (blocks + group_blocks - 1) / group_blocks;

    Writer out;
    out.u32(kMagic);
    out.u32(static_cast<uint32_t>(w.rows()));
    out.u32(static_cast<uint32_t>(w.cols()));
    out.u32(static_cast<uint32_t>(m));
    out.u32(group_blocks);
    out.u8(static_cast<uint8_t>(ladder.size()));
    for (uint8_t n : ladder)
        out.u8(n);

    // First pass: payload sizes per block -> group bases and offsets.
    std::vector<uint32_t> group_base(groups, 0);
    std::vector<uint16_t> info(blocks, 0);
    {
        uint32_t element = 0;
        uint32_t base = 0;
        for (size_t b = 0; b < blocks; ++b) {
            if (b % group_blocks == 0) {
                base = element;
                group_base[b / group_blocks] = base;
            }
            const auto &bi = meta.blocks[b];
            const uint32_t offset = element - base;
            ensure(offset < 4096,
                   "serializeDdc: group offset overflow (internal)");
            const auto ratio = static_cast<uint16_t>(
                std::lower_bound(ladder.begin(), ladder.end(), bi.n)
                - ladder.begin());
            info[b] = static_cast<uint16_t>(
                (bi.dim == SparsityDim::Independent ? 0x8000u : 0u)
                | (ratio << 12) | offset);
            element += static_cast<uint32_t>(bi.n) * m;
        }
    }
    for (uint32_t base : group_base)
        out.u32(base);
    for (uint16_t i : info)
        out.u16(i);

    // Second pass: values (fp16) and packed intra-group indices, in
    // block walk order; groups run along each block's own dimension.
    BitWriter idx;
    const unsigned bits = idxBits(m);
    std::vector<uint8_t> value_bytes;
    uint32_t emitted_values = 0;
    for (size_t br = 0; br < meta.blockRows; ++br) {
        for (size_t bc = 0; bc < meta.blockCols; ++bc) {
            const auto &bi = meta.block(br, bc);
            for (size_t g = 0; g < m; ++g) {
                size_t count = 0;
                for (size_t e = 0; e < m; ++e) {
                    const size_t r =
                        bi.dim == SparsityDim::Reduction ? g : e;
                    const size_t c =
                        bi.dim == SparsityDim::Reduction ? e : g;
                    if (!mask.at(br * m + r, bc * m + c))
                        continue;
                    if (count >= bi.n)
                        fatal("serializeDdc: group ({}, {})/{} holds "
                              "more than N = {} elements — not a "
                              "valid TBS mask", br, bc, g, bi.n);
                    const uint16_t half = util::fp16FromFloat(
                        w.at(br * m + r, bc * m + c));
                    value_bytes.push_back(static_cast<uint8_t>(half));
                    value_bytes.push_back(
                        static_cast<uint8_t>(half >> 8));
                    idx.put(static_cast<uint32_t>(e), bits);
                    ++count;
                    ++emitted_values;
                }
                for (; count < bi.n; ++count) {
                    // Pad short groups (never produced by tbsMask, but
                    // keeps the format total-function).
                    value_bytes.push_back(0);
                    value_bytes.push_back(0);
                    idx.put(0, bits);
                    ++emitted_values;
                }
            }
        }
    }
    out.u32(emitted_values);
    std::vector<uint8_t> bytes = out.take();
    bytes.insert(bytes.end(), value_bytes.begin(), value_bytes.end());
    bytes.insert(bytes.end(), idx.bytes().begin(), idx.bytes().end());
    return bytes;
}

DdcParsed
deserializeDdc(std::span<const uint8_t> bytes)
{
    Reader in(bytes);
    if (in.u32() != kMagic)
        fatal("deserializeDdc: bad magic");
    const uint32_t rows = in.u32();
    const uint32_t cols = in.u32();
    const uint32_t m = in.u32();
    const uint32_t group_blocks = in.u32();
    if (m == 0 || group_blocks == 0 || rows % m != 0 || cols % m != 0)
        fatal("deserializeDdc: invalid geometry {}x{} m={}", rows, cols,
              m);

    const uint8_t ladder_size = in.u8();
    if (ladder_size == 0 || ladder_size > 8)
        fatal("deserializeDdc: invalid candidate ladder size {}",
              ladder_size);
    std::vector<uint8_t> ladder(ladder_size);
    for (auto &n : ladder) {
        n = in.u8();
        if (n > m)
            fatal("deserializeDdc: candidate N {} exceeds M {}", n, m);
    }

    DdcParsed out;
    out.meta.m = m;
    out.meta.blockRows = rows / m;
    out.meta.blockCols = cols / m;
    const size_t blocks = out.meta.blockRows * out.meta.blockCols;
    out.meta.blocks.resize(blocks);

    const size_t groups = (blocks + group_blocks - 1) / group_blocks;
    std::vector<uint32_t> group_base(groups);
    for (auto &base : group_base)
        base = in.u32();

    uint32_t total_values = 0;
    for (size_t b = 0; b < blocks; ++b) {
        const uint16_t entry = in.u16();
        const auto ratio = static_cast<size_t>((entry >> 12) & 0x7);
        if (ratio >= ladder.size())
            fatal("deserializeDdc: ratio index {} out of range", ratio);
        core::BlockInfo &bi = out.meta.blocks[b];
        bi.n = ladder[ratio];
        bi.dim = entry & 0x8000 ? SparsityDim::Independent
                                : SparsityDim::Reduction;
        // Validate the offset chain.
        const uint32_t offset = entry & 0x0fff;
        const uint32_t expect = total_values
            - group_base[b / group_blocks];
        if (offset != expect)
            fatal("deserializeDdc: block {} offset {} != expected {}",
                  b, offset, expect);
        total_values += static_cast<uint32_t>(bi.n) * m;
    }

    const uint32_t declared = in.u32();
    if (declared != total_values)
        fatal("deserializeDdc: payload count {} != info table total {}",
              declared, total_values);

    const size_t values_at = in.pos();
    const size_t idx_at = values_at + size_t{total_values} * 2;
    if (idx_at > bytes.size())
        fatal("DDC stream truncated in values");
    BitReader idx(bytes, idx_at);
    const unsigned bits = idxBits(m);

    out.matrix = Matrix(rows, cols);
    out.mask = Mask(rows, cols);
    size_t cursor = values_at;
    for (size_t br = 0; br < out.meta.blockRows; ++br) {
        for (size_t bc = 0; bc < out.meta.blockCols; ++bc) {
            const auto &bi = out.meta.block(br, bc);
            for (size_t g = 0; g < m; ++g) {
                for (size_t k = 0; k < bi.n; ++k) {
                    const uint16_t half = static_cast<uint16_t>(
                        bytes[cursor] | (bytes[cursor + 1] << 8));
                    cursor += 2;
                    const uint32_t e = idx.get(bits);
                    if (e >= m)
                        fatal("deserializeDdc: intra-group index {} "
                              "out of range", e);
                    const size_t r =
                        bi.dim == SparsityDim::Reduction ? g : e;
                    const size_t c =
                        bi.dim == SparsityDim::Reduction ? e : g;
                    const float v = util::fp16ToFloat(half);
                    if (half != 0) {
                        out.matrix.at(br * m + r, bc * m + c) = v;
                        out.mask.at(br * m + r, bc * m + c) = 1;
                    }
                }
            }
        }
    }
    return out;
}

} // namespace tbstc::format
