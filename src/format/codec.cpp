#include "codec.hpp"

#include <deque>

#include "obs/obs.hpp"
#include "util/fmt.hpp"
#include "util/logging.hpp"

namespace tbstc::format {

using util::ensure;
using util::Result;
using util::unexpected;

Result<CodecOutput, DecodeError>
tryDecodeBlock(const std::vector<StorageElem> &storage,
               const CodecConfig &cfg)
{
    if (cfg.m == 0 || cfg.m > 256 || cfg.lanes == 0 || cfg.threshold == 0)
        return unexpected(DecodeError{
            DecodeErrorKind::GeometryOverflow, 0,
            util::formatStr("invalid codec config m={} lanes={} "
                            "threshold={}",
                            cfg.m, cfg.lanes, cfg.threshold)});
    for (size_t i = 0; i < storage.size(); ++i) {
        if (storage[i].rid >= cfg.m || storage[i].iid >= cfg.m)
            return unexpected(DecodeError{
                DecodeErrorKind::InfoFieldRange, i,
                util::formatStr("element {} index ({}, {}) outside "
                                "the {}-wide block",
                                i, storage[i].rid, storage[i].iid,
                                cfg.m)});
    }

    CodecOutput out;
    out.values.reserve(storage.size());
    out.rids.reserve(storage.size());
    out.iids.reserve(storage.size());

    std::vector<std::deque<StorageElem>> queues(cfg.m);
    size_t cursor = 0;   // Next storage element to ingest.
    size_t pending = storage.size();
    size_t scan = 0;     // Round-robin output arbiter position.

    auto emit = [&](const StorageElem &e) {
        out.values.push_back(e.value);
        out.rids.push_back(e.rid);
        out.iids.push_back(e.iid);
        --pending;
    };

    // Queue-group occupancy telemetry, sampled once per timestep.
    const bool sample = obs::metricsEnabled();
    static const obs::Histogram occupancy = obs::histogram(
        "format.codec.queue_occupancy", 0.0, 64.0, 16);
    static const obs::Gauge occupancy_peak =
        obs::gauge("format.codec.queue_peak");

    while (pending > 0) {
        ++out.cycles;
        if (sample) {
            // Elements sitting in the Rid queues right now.
            const auto queued = static_cast<int64_t>(
                cursor - (storage.size() - pending));
            occupancy.observe(static_cast<double>(queued));
            occupancy_peak.record(queued);
        }

        // Ingest up to `lanes` elements into the Rid-indexed queues.
        for (size_t l = 0; l < cfg.lanes && cursor < storage.size(); ++l) {
            const StorageElem &e = storage[cursor++];
            queues[e.rid].push_back(e);
        }

        if (cursor < storage.size()) {
            // Steady state: the merger grants one queue per timestep,
            // chosen round-robin among queues at or above threshold.
            for (size_t probe = 0; probe < cfg.m; ++probe) {
                auto &q = queues[(scan + probe) % cfg.m];
                if (q.size() >= cfg.threshold) {
                    for (size_t k = 0; k < cfg.threshold; ++k) {
                        emit(q.front());
                        q.pop_front();
                    }
                    scan = (scan + probe + 1) % cfg.m;
                    break;
                }
            }
        } else {
            // Drain phase: ingest is finished, so the merger network
            // combines leftovers across queues into full output groups
            // (paper: "merges the remaining elements at the final
            // timestep"). One output group per timestep.
            size_t emitted = 0;
            for (size_t q = 0; q < cfg.m && emitted < cfg.threshold; ++q) {
                while (!queues[q].empty() && emitted < cfg.threshold) {
                    emit(queues[q].front());
                    queues[q].pop_front();
                    ++emitted;
                }
            }
        }
    }

    if (sample) {
        static const obs::Counter blocks =
            obs::counter("format.codec.blocks_converted");
        static const obs::Counter elems =
            obs::counter("format.codec.elements");
        static const obs::Counter cycles =
            obs::counter("format.codec.cycles");
        blocks.add();
        elems.add(storage.size());
        cycles.add(out.cycles);
    }
    return out;
}

CodecOutput
convertToComputation(const std::vector<StorageElem> &storage,
                     const CodecConfig &cfg)
{
    ensure(cfg.m > 0 && cfg.lanes > 0 && cfg.threshold > 0,
           "invalid CodecConfig");
    auto out = tryDecodeBlock(storage, cfg);
    ensure(out.ok(), "codec: rid out of range");
    return std::move(*out);
}

uint64_t
passthroughCycles(size_t nnz, const CodecConfig &cfg)
{
    ensure(cfg.lanes > 0, "invalid CodecConfig");
    return (nnz + cfg.lanes - 1) / cfg.lanes;
}

} // namespace tbstc::format
