/**
 * @file
 * Structured decode-error taxonomy for DDC stream ingestion.
 *
 * Every way a serialized stream can be rejected maps to exactly one
 * DecodeErrorKind, so callers (the fsck tool, remote-checkpoint
 * loaders, the fault-injection harness) can dispatch on the class of
 * failure instead of parsing message strings. The error carries the
 * byte offset at which validation failed, which fsck reports so a
 * corrupted dump can be inspected with a hex editor.
 */

#ifndef TBSTC_FORMAT_DECODE_ERROR_HPP
#define TBSTC_FORMAT_DECODE_ERROR_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace tbstc::format {

/** Why a DDC stream was rejected. */
enum class DecodeErrorKind : uint8_t
{
    Truncated,        ///< Stream ends before a required field/section.
    BadMagic,         ///< First four bytes are not a DDC magic.
    BadVersion,       ///< Recognized magic of an unsupported version.
    GeometryOverflow, ///< Geometry fields inconsistent, out of range,
                      ///< or a derived size overflows.
    BadLadder,        ///< Candidate ladder empty, oversized, unsorted,
                      ///< duplicated, or an N exceeds M.
    InfoFieldRange,   ///< Info-table field out of its valid range.
    OffsetInconsistent, ///< Info-table offset chain disagrees with the
                        ///< group bases / running element count.
    ChecksumMismatch, ///< Header or section CRC32 does not match.
    PayloadOverrun,   ///< Payload/index data inconsistent with the
                      ///< declared totals, or trailing bytes.
};

/** Stable lower-case identifier for a kind (fsck/CLI output). */
const char *decodeErrorName(DecodeErrorKind kind);

/** A rejected stream: what failed, where, and a formatted message. */
struct DecodeError
{
    DecodeErrorKind kind = DecodeErrorKind::Truncated;
    size_t offset = 0;   ///< Byte offset the validation failed at.
    std::string message; ///< Human-readable detail.
};

} // namespace tbstc::format

#endif // TBSTC_FORMAT_DECODE_ERROR_HPP
