/**
 * @file
 * Sparse storage formats (paper Sec. V).
 *
 * Each encoding is a real byte-level representation built from an
 * actual mask. The simulator derives bandwidth behaviour from the
 * encoding's StreamProfile — the byte counts and access contiguity the
 * computation's block-ordered walk induces — rather than from
 * hard-coded per-format factors.
 *
 * Formats:
 *  - Dense: row-major fp16 payload, no metadata.
 *  - SDC: single-dimensional compression. Rows are compressed and then
 *    padded to the global maximum row occupancy so accesses stay
 *    regular (paper Fig. 7(a)); the padding is redundant traffic.
 *  - CSR: classic compressed sparse row; minimal bytes, but a
 *    block-ordered walk touches many short non-contiguous runs
 *    (paper Fig. 7(b)).
 *  - DDC: the paper's dual-dimensional compression (Fig. 8): a 16-bit
 *    per-block info entry (1b sparsity dim, 3b sparsity ratio N, 12b
 *    element offset) plus per-block payloads compressed along the
 *    block's own sparsity dimension, laid out in block-walk order.
 */

#ifndef TBSTC_FORMAT_ENCODING_HPP
#define TBSTC_FORMAT_ENCODING_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "core/matrix.hpp"
#include "core/pattern.hpp"

namespace tbstc::format {

/** Storage-format family. */
enum class StorageFormat : uint8_t
{
    Dense,
    SDC,
    CSR,
    DDC,
    Bitmap, ///< Values + one presence bit per position (RM-STC style).
};

/** Human-readable format name. */
std::string formatName(StorageFormat f);

/**
 * Byte-stream statistics of walking an encoding in computation order
 * (block-column major over M x M blocks, as the PE array consumes it).
 */
struct StreamProfile
{
    uint64_t payloadBytes = 0; ///< Bytes that must cross the memory bus.
    uint64_t usefulBytes = 0;  ///< Bytes carrying non-redundant content.
    uint64_t segments = 0;     ///< Contiguous runs in the walk.

    /** Fraction of traffic that is padding/duplication. */
    double
    redundancy() const
    {
        return payloadBytes == 0
            ? 0.0
            : 1.0 - static_cast<double>(usefulBytes) / payloadBytes;
    }

    /** Average contiguous-run length in bytes. */
    double
    avgSegmentBytes() const
    {
        return segments == 0
            ? 0.0
            : static_cast<double>(payloadBytes) / segments;
    }
};

/**
 * A materialized sparse-matrix encoding.
 *
 * decode() must reproduce exactly the masked matrix the encoding was
 * built from (lossless round trip at fp32 resolution; byte counts
 * model fp16 payloads).
 */
class Encoding
{
  public:
    virtual ~Encoding() = default;

    /** Format family of this encoding. */
    virtual StorageFormat format() const = 0;

    /** Total storage footprint in bytes (values + metadata). */
    virtual uint64_t storageBytes() const = 0;

    /** Reconstruct the (masked) dense matrix. */
    virtual core::Matrix decode() const = 0;

    /** Access statistics for a block-ordered walk with block size m. */
    virtual StreamProfile streamProfile(size_t m) const = 0;
};

/** Encode a dense matrix (no mask). */
std::unique_ptr<Encoding> encodeDense(const core::Matrix &w);

/** Encode the masked matrix in SDC (row-padded) layout. */
std::unique_ptr<Encoding>
encodeSdc(const core::Matrix &w, const core::Mask &mask);

/** Encode the masked matrix in CSR layout. */
std::unique_ptr<Encoding>
encodeCsr(const core::Matrix &w, const core::Mask &mask);

/**
 * Encode the masked matrix in DDC layout using the TBS metadata to
 * pick each block's compression dimension.
 */
std::unique_ptr<Encoding>
encodeDdc(const core::Matrix &w, const core::Mask &mask,
          const core::TbsMeta &meta);

/**
 * Encode the masked matrix as packed non-zero values plus a dense
 * presence bitmap, the format RM-STC's row-merge dataflow consumes.
 * Fully contiguous and unpadded, at one metadata bit per position.
 */
std::unique_ptr<Encoding>
encodeBitmap(const core::Matrix &w, const core::Mask &mask);

} // namespace tbstc::format

#endif // TBSTC_FORMAT_ENCODING_HPP
