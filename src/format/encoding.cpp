#include "encoding.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "util/logging.hpp"

namespace tbstc::format {

using core::Mask;
using core::Matrix;
using core::SparsityDim;
using core::TbsMeta;
using util::ensure;

namespace {

constexpr uint64_t kValueBytes = 2;  ///< fp16 payload element.
constexpr uint64_t kIdxBytes = 2;    ///< 16-bit column/row index.
constexpr uint64_t kInfoBytes = 2;   ///< DDC per-block info entry.
constexpr uint64_t kRowPtrBytes = 4; ///< CSR row pointer.

/** Sentinel column marking an SDC padding slot. */
constexpr uint16_t kPadSlot = 0xffff;

/**
 * On-line merger of a walk's byte accesses into contiguous segments.
 * Feed (start, len) accesses in walk order; adjacent runs coalesce.
 */
class SegmentCounter
{
  public:
    void
    access(uint64_t start, uint64_t len)
    {
        if (len == 0)
            return;
        if (!(open_ && start == end_))
            ++segments_;
        open_ = true;
        end_ = start + len;
        bytes_ += len;
    }

    uint64_t segments() const { return segments_; }
    uint64_t bytes() const { return bytes_; }

  private:
    bool open_ = false;
    uint64_t end_ = 0;
    uint64_t segments_ = 0;
    uint64_t bytes_ = 0;
};

/** Dense row-major fp16 encoding. */
class DenseEncoding final : public Encoding
{
  public:
    explicit DenseEncoding(Matrix w) : w_(std::move(w)) {}

    StorageFormat format() const override { return StorageFormat::Dense; }

    uint64_t
    storageBytes() const override
    {
        return static_cast<uint64_t>(w_.size()) * kValueBytes;
    }

    Matrix decode() const override { return w_; }

    StreamProfile
    streamProfile(size_t m) const override
    {
        StreamProfile p;
        p.payloadBytes = storageBytes();
        p.usefulBytes = p.payloadBytes;
        SegmentCounter seg;
        const uint64_t row_bytes = w_.cols() * kValueBytes;
        for (size_t br = 0; br < w_.rows(); br += m) {
            for (size_t bc = 0; bc < w_.cols(); bc += m) {
                for (size_t r = 0; r < m && br + r < w_.rows(); ++r) {
                    const uint64_t start =
                        (br + r) * row_bytes + bc * kValueBytes;
                    const size_t width =
                        std::min(m, w_.cols() - bc) * kValueBytes;
                    seg.access(start, width);
                }
            }
        }
        p.segments = seg.segments();
        return p;
    }

  private:
    Matrix w_;
};

/** SDC: per-row compression padded to the global max row occupancy. */
class SdcEncoding final : public Encoding
{
  public:
    SdcEncoding(const Matrix &w, const Mask &mask)
        : rows_(w.rows()), cols_(w.cols())
    {
        ensure(mask.rows() == rows_ && mask.cols() == cols_,
               "SDC mask shape mismatch");
        size_t max_nnz = 0;
        std::vector<std::vector<std::pair<uint16_t, float>>> row_data(rows_);
        for (size_t r = 0; r < rows_; ++r) {
            mask.forEachSet(r, [&](size_t c) {
                row_data[r].emplace_back(static_cast<uint16_t>(c),
                                         w.at(r, c));
            });
            max_nnz = std::max(max_nnz, row_data[r].size());
            nnz_ += row_data[r].size();
        }
        pitch_ = max_nnz;
        cols_idx_.assign(rows_ * pitch_, kPadSlot);
        values_.assign(rows_ * pitch_, 0.0f);
        for (size_t r = 0; r < rows_; ++r) {
            for (size_t i = 0; i < row_data[r].size(); ++i) {
                cols_idx_[r * pitch_ + i] = row_data[r][i].first;
                values_[r * pitch_ + i] = row_data[r][i].second;
            }
        }
    }

    StorageFormat format() const override { return StorageFormat::SDC; }

    uint64_t
    storageBytes() const override
    {
        return static_cast<uint64_t>(rows_) * pitch_
            * (kValueBytes + kIdxBytes);
    }

    Matrix
    decode() const override
    {
        Matrix w(rows_, cols_);
        for (size_t r = 0; r < rows_; ++r)
            for (size_t i = 0; i < pitch_; ++i)
                if (cols_idx_[r * pitch_ + i] != kPadSlot)
                    w.at(r, cols_idx_[r * pitch_ + i]) =
                        values_[r * pitch_ + i];
        return w;
    }

    StreamProfile
    streamProfile(size_t /* m */) const override
    {
        // SDC's whole point is regular row-aligned streaming: the padded
        // rows are read end to end, one long contiguous run, and the
        // padding slots are the redundant traffic (paper Fig. 7(a)).
        StreamProfile p;
        p.payloadBytes = storageBytes();
        p.usefulBytes = nnz_ * (kValueBytes + kIdxBytes);
        p.segments = 1;
        return p;
    }

    size_t pitch() const { return pitch_; }

  private:
    size_t rows_;
    size_t cols_;
    size_t pitch_ = 0; ///< Padded slots per row (global max nnz).
    uint64_t nnz_ = 0;
    std::vector<uint16_t> cols_idx_;
    std::vector<float> values_;
};

/** Classic CSR. */
class CsrEncoding final : public Encoding
{
  public:
    CsrEncoding(const Matrix &w, const Mask &mask)
        : rows_(w.rows()), cols_(w.cols())
    {
        ensure(mask.rows() == rows_ && mask.cols() == cols_,
               "CSR mask shape mismatch");
        row_ptr_.push_back(0);
        for (size_t r = 0; r < rows_; ++r) {
            mask.forEachSet(r, [&](size_t c) {
                col_idx_.push_back(static_cast<uint16_t>(c));
                values_.push_back(w.at(r, c));
            });
            row_ptr_.push_back(static_cast<uint32_t>(col_idx_.size()));
        }
    }

    StorageFormat format() const override { return StorageFormat::CSR; }

    uint64_t
    storageBytes() const override
    {
        return values_.size() * (kValueBytes + kIdxBytes)
            + row_ptr_.size() * kRowPtrBytes;
    }

    Matrix
    decode() const override
    {
        Matrix w(rows_, cols_);
        for (size_t r = 0; r < rows_; ++r)
            for (uint32_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
                w.at(r, col_idx_[i]) = values_[i];
        return w;
    }

    StreamProfile
    streamProfile(size_t m) const override
    {
        // The PE array consumes M x M blocks, but CSR packs by full
        // row: every block touches a short run inside each of its rows'
        // value and index arrays (paper Fig. 7(b)).
        StreamProfile p;
        SegmentCounter seg;
        // Values and indices stream as interleaved (value, index)
        // pairs, as a hardware CSR walker would lay them out.
        const uint64_t pair = kValueBytes + kIdxBytes;
        for (size_t br = 0; br < rows_; br += m) {
            for (size_t bc = 0; bc < cols_; bc += m) {
                for (size_t r = br; r < std::min(br + m, rows_); ++r) {
                    // Entries of row r within [bc, bc+m) are contiguous
                    // in CSR order; locate them.
                    uint32_t lo = row_ptr_[r];
                    while (lo < row_ptr_[r + 1] && col_idx_[lo] < bc)
                        ++lo;
                    uint32_t hi = lo;
                    while (hi < row_ptr_[r + 1] && col_idx_[hi] < bc + m)
                        ++hi;
                    seg.access(lo * pair, (hi - lo) * pair);
                }
            }
        }
        const uint64_t ptr_bytes = row_ptr_.size() * kRowPtrBytes;
        p.payloadBytes = seg.bytes() + ptr_bytes;
        p.usefulBytes = p.payloadBytes;
        p.segments = seg.segments() + 1;
        return p;
    }

  private:
    size_t rows_;
    size_t cols_;
    std::vector<uint32_t> row_ptr_;
    std::vector<uint16_t> col_idx_;
    std::vector<float> values_;
};

/** The paper's dual-dimensional compression. */
class DdcEncoding final : public Encoding
{
  public:
    DdcEncoding(const Matrix &w, const Mask &mask, const TbsMeta &meta)
        : rows_(w.rows()), cols_(w.cols()), meta_(meta)
    {
        ensure(mask.rows() == rows_ && mask.cols() == cols_,
               "DDC mask shape mismatch");
        ensure(rows_ == meta.blockRows * meta.m
                   && cols_ == meta.blockCols * meta.m,
               "DDC metadata grid mismatch");
        const size_t m = meta.m;
        for (size_t br = 0; br < meta.blockRows; ++br) {
            for (size_t bc = 0; bc < meta.blockCols; ++bc) {
                const auto &info = meta.block(br, bc);
                offsets_.push_back(static_cast<uint32_t>(values_.size()));
                // Groups run along the block's sparsity dimension; each
                // group stores exactly N entries (slots beyond the
                // group's population are zero padding inside the block,
                // which TBS generation never produces).
                for (size_t g = 0; g < m; ++g) {
                    size_t emitted = 0;
                    if (info.dim == SparsityDim::Reduction && m <= 64) {
                        // Row group: grab the block row's bits in one
                        // word and walk only the set positions.
                        uint64_t bits =
                            mask.rowBits(br * m + g, bc * m, m);
                        while (bits != 0 && emitted < info.n) {
                            const auto e = static_cast<size_t>(
                                std::countr_zero(bits));
                            bits &= bits - 1;
                            values_.push_back(
                                w.at(br * m + g, bc * m + e));
                            intra_idx_.push_back(static_cast<uint8_t>(e));
                            ++emitted;
                        }
                    } else {
                        for (size_t e = 0; e < m && emitted < info.n;
                             ++e) {
                            const size_t r =
                                info.dim == SparsityDim::Reduction ? g : e;
                            const size_t c =
                                info.dim == SparsityDim::Reduction ? e : g;
                            if (mask.at(br * m + r, bc * m + c)) {
                                values_.push_back(
                                    w.at(br * m + r, bc * m + c));
                                intra_idx_.push_back(
                                    static_cast<uint8_t>(e));
                                ++emitted;
                            }
                        }
                    }
                    for (; emitted < info.n; ++emitted) {
                        values_.push_back(0.0f);
                        intra_idx_.push_back(0);
                    }
                }
            }
        }
    }

    StorageFormat format() const override { return StorageFormat::DDC; }

    uint64_t
    storageBytes() const override
    {
        const uint64_t info = meta_.blocks.size() * kInfoBytes;
        const uint64_t vals = values_.size() * kValueBytes;
        // ceil(log2 m)-bit intra-group indices, bit-packed.
        const uint64_t idx_bits =
            static_cast<uint64_t>(intra_idx_.size()) * log2Bits(meta_.m);
        return info + vals + (idx_bits + 7) / 8;
    }

    Matrix
    decode() const override
    {
        Matrix w(rows_, cols_);
        const size_t m = meta_.m;
        size_t cursor = 0;
        for (size_t br = 0; br < meta_.blockRows; ++br) {
            for (size_t bc = 0; bc < meta_.blockCols; ++bc) {
                const auto &info = meta_.block(br, bc);
                for (size_t g = 0; g < m; ++g) {
                    for (size_t k = 0; k < info.n; ++k, ++cursor) {
                        const size_t e = intra_idx_[cursor];
                        const float v = values_[cursor];
                        if (v == 0.0f)
                            continue; // Padding slot.
                        const size_t r = info.dim == SparsityDim::Reduction
                            ? g : e;
                        const size_t c = info.dim == SparsityDim::Reduction
                            ? e : g;
                        w.at(br * m + r, bc * m + c) = v;
                    }
                }
            }
        }
        return w;
    }

    StreamProfile
    streamProfile(size_t /* m */) const override
    {
        // Payloads are laid out in exactly the walk order, so the whole
        // stream is one contiguous run; the info table is a second.
        StreamProfile p;
        p.payloadBytes = storageBytes();
        p.usefulBytes = p.payloadBytes;
        p.segments = 2;
        return p;
    }

  private:
    static uint64_t
    log2Bits(size_t m)
    {
        uint64_t bits = 0;
        while ((1ull << bits) < m)
            ++bits;
        return bits == 0 ? 1 : bits;
    }

    size_t rows_;
    size_t cols_;
    TbsMeta meta_;
    std::vector<uint32_t> offsets_;
    std::vector<float> values_;
    std::vector<uint8_t> intra_idx_;
};

/** RM-STC style values + presence bitmap. */
class BitmapEncoding final : public Encoding
{
  public:
    BitmapEncoding(const Matrix &w, const Mask &mask)
        : rows_(w.rows()), cols_(w.cols())
    {
        ensure(mask.rows() == rows_ && mask.cols() == cols_,
               "Bitmap mask shape mismatch");
        bits_.assign((rows_ * cols_ + 7) / 8, 0);
        for (size_t r = 0; r < rows_; ++r) {
            mask.forEachSet(r, [&](size_t c) {
                const size_t pos = r * cols_ + c;
                bits_[pos / 8] |= static_cast<uint8_t>(1u << (pos % 8));
                values_.push_back(w.at(r, c));
            });
        }
    }

    StorageFormat format() const override { return StorageFormat::Bitmap; }

    uint64_t
    storageBytes() const override
    {
        return values_.size() * kValueBytes + bits_.size();
    }

    Matrix
    decode() const override
    {
        Matrix w(rows_, cols_);
        size_t cursor = 0;
        for (size_t pos = 0; pos < rows_ * cols_; ++pos)
            if (bits_[pos / 8] & (1u << (pos % 8)))
                w.data()[pos] = values_[cursor++];
        return w;
    }

    StreamProfile
    streamProfile(size_t /* m */) const override
    {
        // Row-merge hardware streams values and bitmap sequentially and
        // reassembles blocks on chip; both arrays are contiguous.
        StreamProfile p;
        p.payloadBytes = storageBytes();
        p.usefulBytes = p.payloadBytes;
        p.segments = 2;
        return p;
    }

  private:
    size_t rows_;
    size_t cols_;
    std::vector<uint8_t> bits_;
    std::vector<float> values_;
};

} // namespace

std::string
formatName(StorageFormat f)
{
    switch (f) {
      case StorageFormat::Dense: return "Dense";
      case StorageFormat::SDC:   return "SDC";
      case StorageFormat::CSR:   return "CSR";
      case StorageFormat::DDC:   return "DDC";
      case StorageFormat::Bitmap: return "Bitmap";
    }
    util::panic("unknown StorageFormat");
}

std::unique_ptr<Encoding>
encodeDense(const Matrix &w)
{
    return std::make_unique<DenseEncoding>(w);
}

std::unique_ptr<Encoding>
encodeSdc(const Matrix &w, const Mask &mask)
{
    return std::make_unique<SdcEncoding>(w, mask);
}

std::unique_ptr<Encoding>
encodeCsr(const Matrix &w, const Mask &mask)
{
    return std::make_unique<CsrEncoding>(w, mask);
}

std::unique_ptr<Encoding>
encodeDdc(const Matrix &w, const Mask &mask, const TbsMeta &meta)
{
    return std::make_unique<DdcEncoding>(w, mask, meta);
}

std::unique_ptr<Encoding>
encodeBitmap(const Matrix &w, const Mask &mask)
{
    return std::make_unique<BitmapEncoding>(w, mask);
}

} // namespace tbstc::format
