/**
 * @file
 * Byte-exact serialization of the DDC storage format (paper Fig. 8).
 *
 * The DdcEncoding class models the format's costs; this module
 * materializes the actual byte stream a DMA engine would fetch
 * (format version 2, "DDC2"):
 *
 *   header      magic/version, matrix geometry, block size, group
 *               size, declared payload element count, the N-candidate
 *               ladder, then a CRC32 of the header bytes
 *   group bases one u32 element base per group of blocks (the paper's
 *               12-bit element offsets address within a group; bases
 *               extend them to arbitrarily large matrices) + CRC32
 *   info table  one 16-bit entry per block:
 *                 bit  15     sparsity dimension (0 row / 1 column)
 *                 bits 14-12  sparsity ratio: index into the
 *                             candidate ladder (the paper's 3-bit
 *                             "Sparsity ratio")
 *                 bits 11-0   element offset within the block's group
 *               + CRC32
 *   values      fp16, exactly N x M per block, group order + CRC32
 *   indices     ceil(log2 M)-bit intra-group positions, bit-packed
 *               + CRC32
 *
 * Values are stored in fp16 (the datapath precision), so serialization
 * round-trips fp16-rounded weights bit-exactly.
 *
 * Ingestion is hardened: tryDeserializeDdc() validates every field
 * with checked arithmetic and returns a structured DecodeError instead
 * of throwing, so a corrupted or hostile stream can never crash,
 * over-allocate, or decode to a silently wrong matrix. The throwing
 * deserializeDdc() is a thin wrapper for callers that treat bad input
 * as fatal. Version-1 streams (no integrity fields) are rejected with
 * DecodeErrorKind::BadVersion.
 */

#ifndef TBSTC_FORMAT_SERIALIZE_HPP
#define TBSTC_FORMAT_SERIALIZE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/matrix.hpp"
#include "core/pattern.hpp"
#include "format/decode_error.hpp"
#include "util/result.hpp"

namespace tbstc::format {

/** Magic of the unsupported v1 layout (no integrity fields). */
constexpr uint32_t kDdcMagicV1 = 0x31434444; // "DDC1" little-endian.

/** Magic of the current v2 layout (header + per-section CRC32). */
constexpr uint32_t kDdcMagicV2 = 0x32434444; // "DDC2" little-endian.

/** Result of parsing a serialized DDC stream. */
struct DdcParsed
{
    core::Matrix matrix; ///< Reconstructed (masked, fp16) matrix.
    core::Mask mask;     ///< Kept positions.
    core::TbsMeta meta;  ///< Per-block info recovered from the table.
};

/**
 * Section map of a v2 stream, derived from the header alone (sizes
 * are checked, but no CRC or content validation is performed). Each
 * *At offset names the first byte of a section; every section is
 * followed by its 4-byte CRC32.
 */
struct DdcLayout
{
    size_t headerCrcAt = 0;  ///< Header CRC32 (header spans [0, here)).
    size_t groupBasesAt = 0; ///< u32 per group.
    size_t infoAt = 0;       ///< u16 per block.
    size_t valuesAt = 0;     ///< fp16 payload.
    size_t indicesAt = 0;    ///< Bit-packed intra-group indices.
    size_t end = 0;          ///< One past the final section CRC.
    size_t groups = 0;       ///< Offset-group count.
    size_t blocks = 0;       ///< Info-table entry count.
    uint32_t totalValues = 0; ///< Declared payload element count.
};

/**
 * Serialize a TBS-masked matrix into the DDC byte stream.
 *
 * @param w Weight matrix.
 * @param mask TBS keep-mask (groups must hold exactly N elements, as
 *     tbsMask() produces; validated).
 * @param meta Block metadata.
 * @note fatal() if the mask violates the metadata or the geometry
 *     cannot be represented (e.g. more blocks than the info table's
 *     group addressing covers).
 */
std::vector<uint8_t> serializeDdc(const core::Matrix &w,
                                  const core::Mask &mask,
                                  const core::TbsMeta &meta);

/**
 * Parse a DDC byte stream produced by serializeDdc() without ever
 * throwing or aborting: any malformed, truncated, or corrupted input
 * yields a DecodeError naming the failure class and byte offset.
 * All size/offset arithmetic is overflow-checked and every allocation
 * is bounded by the input length, so hostile headers cannot trigger
 * allocation bombs or out-of-bounds access.
 */
util::Result<DdcParsed, DecodeError>
tryDeserializeDdc(std::span<const uint8_t> bytes);

/**
 * Parse a DDC byte stream produced by serializeDdc().
 *
 * Legacy: abort-wrapping convenience around tryDeserializeDdc(), which
 * is the primary API (see src/tbstc.hpp). New code should call
 * tryDeserializeDdc() and handle the DecodeError.
 *
 * @note fatal() (throws util::FatalError) on malformed input.
 */
DdcParsed deserializeDdc(std::span<const uint8_t> bytes);

/**
 * Compute the section map of @p bytes from its header. Validates
 * magic/version, geometry ranges, and that the declared sections fit
 * the stream exactly — but not CRCs or section contents, so tooling
 * (fsck reporting, fault injection) can locate sections inside
 * partially corrupted streams.
 */
util::Result<DdcLayout, DecodeError>
ddcLayout(std::span<const uint8_t> bytes);

/**
 * Recompute the header and all section CRC32 fields of @p bytes in
 * place. Used by the fault-injection harness to build streams whose
 * checksums are valid but whose fields are hostile, exercising the
 * structural validators behind the CRC layer.
 *
 * @return false when the stream is too malformed to locate the
 *     sections (the bytes are left untouched).
 */
bool ddcFixupCrcs(std::vector<uint8_t> &bytes);

} // namespace tbstc::format

#endif // TBSTC_FORMAT_SERIALIZE_HPP
