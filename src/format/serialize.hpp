/**
 * @file
 * Byte-exact serialization of the DDC storage format (paper Fig. 8).
 *
 * The DdcEncoding class models the format's costs; this module
 * materializes the actual byte stream a DMA engine would fetch:
 *
 *   header      magic/version, matrix geometry, block size, the
 *               N-candidate ladder, group size
 *   group bases one u32 element base per group of blocks (the paper's
 *               12-bit element offsets address within a group; bases
 *               extend them to arbitrarily large matrices)
 *   info table  one 16-bit entry per block:
 *                 bit  15     sparsity dimension (0 row / 1 column)
 *                 bits 14-12  sparsity ratio: index into the
 *                             candidate ladder (the paper's 3-bit
 *                             "Sparsity ratio")
 *                 bits 11-0   element offset within the block's group
 *   values      fp16, exactly N x M per block, group order
 *   indices     ceil(log2 M)-bit intra-group positions, bit-packed
 *
 * Values are stored in fp16 (the datapath precision), so serialization
 * round-trips fp16-rounded weights bit-exactly.
 */

#ifndef TBSTC_FORMAT_SERIALIZE_HPP
#define TBSTC_FORMAT_SERIALIZE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/matrix.hpp"
#include "core/pattern.hpp"

namespace tbstc::format {

/** Result of parsing a serialized DDC stream. */
struct DdcParsed
{
    core::Matrix matrix; ///< Reconstructed (masked, fp16) matrix.
    core::Mask mask;     ///< Kept positions.
    core::TbsMeta meta;  ///< Per-block info recovered from the table.
};

/**
 * Serialize a TBS-masked matrix into the DDC byte stream.
 *
 * @param w Weight matrix.
 * @param mask TBS keep-mask (groups must hold exactly N elements, as
 *     tbsMask() produces; validated).
 * @param meta Block metadata.
 * @note fatal() if the mask violates the metadata or the geometry
 *     cannot be represented (e.g. more blocks than the info table's
 *     group addressing covers).
 */
std::vector<uint8_t> serializeDdc(const core::Matrix &w,
                                  const core::Mask &mask,
                                  const core::TbsMeta &meta);

/**
 * Parse a DDC byte stream produced by serializeDdc().
 * @note fatal() on malformed input (bad magic, truncation,
 *     out-of-range fields).
 */
DdcParsed deserializeDdc(std::span<const uint8_t> bytes);

} // namespace tbstc::format

#endif // TBSTC_FORMAT_SERIALIZE_HPP
