/**
 * @file
 * Adaptive codec unit (paper Sec. V-B, Figs. 8(b)/9).
 *
 * Blocks whose N:M sparsity runs along the independent dimension are
 * stored column-compressed (minimal storage) but must be consumed
 * row-grouped (the computation format). The codec unit performs this
 * conversion on the fly with a group of queues indexed by the
 * reduction-dimension index (Rid), a merger network that resolves
 * output conflicts, and a final merge of leftover elements.
 *
 * This model executes the conversion element by element and reports
 * the cycle count, so the simulator can overlap (hide) conversion
 * within the block pipeline exactly as the paper's Fig. 14 does.
 */

#ifndef TBSTC_FORMAT_CODEC_HPP
#define TBSTC_FORMAT_CODEC_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "format/decode_error.hpp"
#include "util/result.hpp"

namespace tbstc::format {

/** One storage-format element entering the codec. */
struct StorageElem
{
    float value = 0.0f;
    uint8_t rid = 0; ///< Reduction-dimension index (row within block).
    uint8_t iid = 0; ///< Independent-dimension index (column).
};

/** Conversion result: computation-format stream plus cycle cost. */
struct CodecOutput
{
    std::vector<float> values;  ///< Emitted values, computation order.
    std::vector<uint8_t> rids;  ///< Row group of each emitted value.
    std::vector<uint8_t> iids;  ///< Column index of each emitted value.
    uint64_t cycles = 0;        ///< Timesteps the conversion occupied.
};

/** Codec unit geometry. */
struct CodecConfig
{
    size_t m = 8;         ///< Block edge; number of queues.
    size_t lanes = 2;     ///< Elements ingested per timestep.
    size_t threshold = 2; ///< Queue occupancy that triggers an output.
};

/**
 * Convert one independent-dimension block from storage format
 * (column-major element order, as DDC stores it) to computation
 * format (row-grouped). See paper Fig. 9(c) for the worked example.
 *
 * Legacy: abort-wrapping convenience around tryDecodeBlock(), which is
 * the primary API (see src/tbstc.hpp). New code should call
 * tryDecodeBlock() and handle the DecodeError.
 *
 * @note panic() on an invalid config or an out-of-range element index.
 */
CodecOutput convertToComputation(const std::vector<StorageElem> &storage,
                                 const CodecConfig &cfg);

/**
 * Convert one untrusted independent-dimension block (e.g. straight off
 * a deserialized stream) without aborting: an invalid config or an
 * element whose Rid/Iid falls outside the block geometry yields a
 * structured DecodeError instead of a panic. This is the primary
 * decode entry point.
 */
util::Result<CodecOutput, DecodeError>
tryDecodeBlock(const std::vector<StorageElem> &storage,
               const CodecConfig &cfg);

/**
 * Cycle cost of passing a reduction-dimension block through the codec
 * unchanged (no conversion; pure streaming at `lanes` per timestep).
 */
uint64_t passthroughCycles(size_t nnz, const CodecConfig &cfg);

} // namespace tbstc::format

#endif // TBSTC_FORMAT_CODEC_HPP
