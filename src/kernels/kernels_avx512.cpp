/**
 * @file
 * AVX-512 kernels for x86-64, compiled with
 * -mavx512f -mavx512bw -mavx512dq -mavx512vl -mavx512vpopcntdq. The
 * dispatcher installs this table only when all five features are
 * present — partial AVX-512 parts fall back to the AVX2 level, which
 * keeps this TU a single clean code path.
 *
 * Popcounts use VPOPCNTDQ (vpopcntq: native 64-bit lane popcount, no
 * LUT needed); the byte-lane accumulator uses the 512-bit pshufb
 * nibble LUT (AVX512BW). rank8x8, the BMI2 index codec, and the
 * PCLMUL CRC gain nothing from 512-bit width — those entries reuse
 * the AVX2 implementations.
 */

#include <immintrin.h>

#include "kernels_detail.hpp"

namespace tbstc::kernels::detail {

namespace {

/**
 * Horizontal sum of 8 u64 lanes. Spelled with a store rather than
 * _mm512_reduce_add_epi64: GCC 12's header expands the latter through
 * _mm256_undefined_si256 and trips -Wuninitialized.
 */
inline uint64_t
hsum512(__m512i v)
{
    alignas(64) uint64_t lanes[8];
    _mm512_store_si512(lanes, v);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4]
        + lanes[5] + lanes[6] + lanes[7];
}

inline uint64_t
scalarPop(uint64_t x)
{
    x = x - ((x >> 1) & 0x5555555555555555ull);
    x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
    x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
    return (x * 0x0101010101010101ull) >> 56;
}

uint64_t
popcountWords(const uint64_t *w, size_t n)
{
    __m512i total = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        total = _mm512_add_epi64(
            total, _mm512_popcnt_epi64(_mm512_loadu_si512(w + i)));
    uint64_t sum =
        hsum512(total);
    for (; i < n; ++i)
        sum += scalarPop(w[i]);
    return sum;
}

uint64_t
popcountAndWords(const uint64_t *a, const uint64_t *b, size_t n)
{
    __m512i total = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i v = _mm512_and_si512(_mm512_loadu_si512(a + i),
                                           _mm512_loadu_si512(b + i));
        total = _mm512_add_epi64(total, _mm512_popcnt_epi64(v));
    }
    uint64_t sum =
        hsum512(total);
    for (; i < n; ++i)
        sum += scalarPop(a[i] & b[i]);
    return sum;
}

uint64_t
popcountXorWords(const uint64_t *a, const uint64_t *b, size_t n)
{
    __m512i total = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i v = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                           _mm512_loadu_si512(b + i));
        total = _mm512_add_epi64(total, _mm512_popcnt_epi64(v));
    }
    uint64_t sum =
        hsum512(total);
    for (; i < n; ++i)
        sum += scalarPop(a[i] ^ b[i]);
    return sum;
}

void
andInplace(uint64_t *a, const uint64_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm512_storeu_si512(
            a + i, _mm512_and_si512(_mm512_loadu_si512(a + i),
                                    _mm512_loadu_si512(b + i)));
    for (; i < n; ++i)
        a[i] &= b[i];
}

void
orInplace(uint64_t *a, const uint64_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm512_storeu_si512(
            a + i, _mm512_or_si512(_mm512_loadu_si512(a + i),
                                   _mm512_loadu_si512(b + i)));
    for (; i < n; ++i)
        a[i] |= b[i];
}

void
xorInplace(uint64_t *a, const uint64_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm512_storeu_si512(
            a + i, _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                    _mm512_loadu_si512(b + i)));
    for (; i < n; ++i)
        a[i] ^= b[i];
}

void
bytePopcountAccum(const uint64_t *w, size_t n, uint64_t *acc)
{
    // The 16-byte nibble-popcount LUT replicated to all four 128-bit
    // lanes, spelled as u64 pairs (0,1,1,2,1,2,2,3 / 1,2,2,3,2,3,3,4):
    // _mm512_broadcast_i32x4 trips the same GCC 12 -Wuninitialized
    // header bug as the reduce intrinsics.
    const __m512i lut = _mm512_setr_epi64(
        0x0302020102010100ll, 0x0403030203020201ll,
        0x0302020102010100ll, 0x0403030203020201ll,
        0x0302020102010100ll, 0x0403030203020201ll,
        0x0302020102010100ll, 0x0403030203020201ll);
    const __m512i low = _mm512_set1_epi8(0x0f);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i v = _mm512_loadu_si512(w + i);
        const __m512i lo = _mm512_and_si512(v, low);
        const __m512i hi =
            _mm512_and_si512(_mm512_srli_epi16(v, 4), low);
        const __m512i pop =
            _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                            _mm512_shuffle_epi8(lut, hi));
        _mm512_storeu_si512(
            acc + i,
            _mm512_add_epi8(_mm512_loadu_si512(acc + i), pop));
    }
    for (; i < n; ++i) {
        uint64_t x = w[i];
        x = x - ((x >> 1) & 0x5555555555555555ull);
        x = (x & 0x3333333333333333ull)
            + ((x >> 2) & 0x3333333333333333ull);
        acc[i] += (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
    }
}

} // namespace

const KernelTable &
avx512Table()
{
    static const KernelTable table = [] {
        KernelTable t = avx2Table(); // rank8x8 / codec / crc32 entries.
        t.isa = Isa::Avx512;
        t.name = "avx512";
        t.popcount = &popcountWords;
        t.popcountAnd = &popcountAndWords;
        t.popcountXor = &popcountXorWords;
        t.andInplace = &andInplace;
        t.orInplace = &orInplace;
        t.xorInplace = &xorInplace;
        t.bytePopcountAccum = &bytePopcountAccum;
        return t;
    }();
    return table;
}

} // namespace tbstc::kernels::detail
