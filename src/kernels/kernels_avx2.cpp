/**
 * @file
 * AVX2-level kernels for x86-64. Compiled with
 * -mavx2 -mbmi2 -msse4.2 -mpclmul; the dispatcher only installs this
 * table when the CPU reports AVX2+BMI2 (the CRC entry additionally
 * requires SSE4.2+PCLMUL and falls back to the scalar slice-by-8
 * otherwise).
 *
 * Implementation notes:
 *  - popcounts use the pshufb nibble-LUT form (Mula): 32 bytes per
 *    shuffle pair, horizontal-summed with vpsadbw. The scalar level
 *    compiles std::popcount to a SWAR sequence (the baseline -march
 *    has no POPCNT), so the vector form clears 2x comfortably.
 *  - the DDC index codec packs/unpacks eight fields per BMI2
 *    pext/pdep. On Zen 1/2 pdep/pext are microcoded and slow; those
 *    CPUs still produce identical bytes, just without the win — force
 *    TBSTC_ISA=scalar there if the codec dominates.
 *  - CRC-32 uses PCLMUL folding (the Intel CRC whitepaper / zlib
 *    constants) over 64-byte blocks, identical bit-for-bit to the
 *    table-driven form.
 */

#include <cstring>
#include <immintrin.h>

#include "kernels_detail.hpp"

namespace tbstc::kernels::detail {

namespace {

// --------------------------------------------------------------------
// Popcount family.
// --------------------------------------------------------------------

/** Per-byte popcounts of each of the 32 bytes of v. */
inline __m256i
bytePop256(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
    return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                           _mm256_shuffle_epi8(lut, hi));
}

inline uint64_t
hsum64(__m256i v)
{
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    const __m128i s = _mm_add_epi64(lo, hi);
    return static_cast<uint64_t>(_mm_cvtsi128_si64(s))
        + static_cast<uint64_t>(
               _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

inline uint64_t
scalarPop(uint64_t x)
{
    x = x - ((x >> 1) & 0x5555555555555555ull);
    x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
    x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
    return (x * 0x0101010101010101ull) >> 56;
}

uint64_t
popcountWords(const uint64_t *w, size_t n)
{
    __m256i total = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + i));
        total = _mm256_add_epi64(
            total, _mm256_sad_epu8(bytePop256(v),
                                   _mm256_setzero_si256()));
    }
    uint64_t sum = hsum64(total);
    for (; i < n; ++i)
        sum += scalarPop(w[i]);
    return sum;
}

uint64_t
popcountAndWords(const uint64_t *a, const uint64_t *b, size_t n)
{
    __m256i total = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_and_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + i)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + i)));
        total = _mm256_add_epi64(
            total, _mm256_sad_epu8(bytePop256(v),
                                   _mm256_setzero_si256()));
    }
    uint64_t sum = hsum64(total);
    for (; i < n; ++i)
        sum += scalarPop(a[i] & b[i]);
    return sum;
}

uint64_t
popcountXorWords(const uint64_t *a, const uint64_t *b, size_t n)
{
    __m256i total = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + i)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + i)));
        total = _mm256_add_epi64(
            total, _mm256_sad_epu8(bytePop256(v),
                                   _mm256_setzero_si256()));
    }
    uint64_t sum = hsum64(total);
    for (; i < n; ++i)
        sum += scalarPop(a[i] ^ b[i]);
    return sum;
}

void
andInplace(uint64_t *a, const uint64_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_and_si256(
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(a + i)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + i)));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + i), v);
    }
    for (; i < n; ++i)
        a[i] &= b[i];
}

void
orInplace(uint64_t *a, const uint64_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_or_si256(
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(a + i)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + i)));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + i), v);
    }
    for (; i < n; ++i)
        a[i] |= b[i];
}

void
xorInplace(uint64_t *a, const uint64_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(a + i)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + i)));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + i), v);
    }
    for (; i < n; ++i)
        a[i] ^= b[i];
}

void
bytePopcountAccum(const uint64_t *w, size_t n, uint64_t *acc)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + i));
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + i),
                            _mm256_add_epi8(a, bytePop256(v)));
    }
    for (; i < n; ++i) {
        uint64_t x = w[i];
        x = x - ((x >> 1) & 0x5555555555555555ull);
        x = (x & 0x3333333333333333ull)
            + ((x >> 2) & 0x3333333333333333ull);
        acc[i] += (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
    }
}

// --------------------------------------------------------------------
// rank8x8: vector pairwise comparator. For one 8-float row v, lane c
// accumulates one rank point per broadcast source c2 with
// v[c2] > v[c], or v[c2] == v[c] when c2 < c — exactly the scalar
// (value desc, index asc) total order. Column ranks come from the
// same kernel after an 8x8 register transpose.
// --------------------------------------------------------------------

inline void
transpose8x8(__m256 r[8])
{
    const __m256 t0 = _mm256_unpacklo_ps(r[0], r[1]);
    const __m256 t1 = _mm256_unpackhi_ps(r[0], r[1]);
    const __m256 t2 = _mm256_unpacklo_ps(r[2], r[3]);
    const __m256 t3 = _mm256_unpackhi_ps(r[2], r[3]);
    const __m256 t4 = _mm256_unpacklo_ps(r[4], r[5]);
    const __m256 t5 = _mm256_unpackhi_ps(r[4], r[5]);
    const __m256 t6 = _mm256_unpacklo_ps(r[6], r[7]);
    const __m256 t7 = _mm256_unpackhi_ps(r[6], r[7]);
    const __m256 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
    r[0] = _mm256_permute2f128_ps(s0, s4, 0x20);
    r[1] = _mm256_permute2f128_ps(s1, s5, 0x20);
    r[2] = _mm256_permute2f128_ps(s2, s6, 0x20);
    r[3] = _mm256_permute2f128_ps(s3, s7, 0x20);
    r[4] = _mm256_permute2f128_ps(s0, s4, 0x31);
    r[5] = _mm256_permute2f128_ps(s1, s5, 0x31);
    r[6] = _mm256_permute2f128_ps(s2, s6, 0x31);
    r[7] = _mm256_permute2f128_ps(s3, s7, 0x31);
}

/** Rank all 8 rows of the block; out is a row-major 8x8 u16 table. */
inline void
rankRows8(const __m256 rows[8], uint16_t *out)
{
    const __m256i idx =
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    for (int r = 0; r < 8; ++r) {
        const __m256 v = rows[r];
        __m256i rank = _mm256_setzero_si256();
        for (int c2 = 0; c2 < 8; ++c2) {
            const __m256i c2v = _mm256_set1_epi32(c2);
            const __m256 b = _mm256_permutevar8x32_ps(v, c2v);
            const __m256i gt = _mm256_castps_si256(
                _mm256_cmp_ps(b, v, _CMP_GT_OQ));
            const __m256i eq = _mm256_castps_si256(
                _mm256_cmp_ps(b, v, _CMP_EQ_OQ));
            const __m256i tie = _mm256_and_si256(
                eq, _mm256_cmpgt_epi32(idx, c2v));
            // Matching lanes are all-ones (-1): subtract to count.
            rank = _mm256_sub_epi32(rank,
                                    _mm256_or_si256(gt, tie));
        }
        const __m128i packed = _mm_packus_epi32(
            _mm256_castsi256_si128(rank),
            _mm256_extracti128_si256(rank, 1));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + r * 8),
                         packed);
    }
}

void
rank8x8(const float *blk, uint16_t *rank_row, uint16_t *rank_col)
{
    __m256 rows[8];
    for (int r = 0; r < 8; ++r)
        rows[r] = _mm256_loadu_ps(blk + r * 8);
    rankRows8(rows, rank_row);
    transpose8x8(rows);
    uint16_t tmp[64];
    rankRows8(rows, tmp);
    for (int c = 0; c < 8; ++c)
        for (int r = 0; r < 8; ++r)
            rank_col[r * 8 + c] = tmp[c * 8 + r];
}

// --------------------------------------------------------------------
// DDC index codec: eight fields per pext/pdep. Values are byte-wide
// (bits <= 8), so eight of them live in one u64 with the field mask
// replicated per byte — and a volley of eight consumes exactly `bits`
// stream bytes, so the hot loop is one unaligned 8-byte load/store
// plus one pext/pdep per volley, with no carry buffer at all. The
// loops stay 8 bytes inside the stream and hand the remainder to a
// scalar bit-register tail (volley boundaries are byte-aligned).
// --------------------------------------------------------------------

void
packIdx(const uint8_t *vals, size_t n, unsigned bits, uint8_t *dst)
{
    const uint64_t field = (uint64_t{1} << bits) - 1;
    const uint64_t bmask = field * 0x0101010101010101ull;
    const size_t total_bytes = (n * bits + 7) / 8;
    size_t i = 0;
    size_t out = 0;
    while (i + 8 <= n && out + 8 <= total_bytes) {
        uint64_t v;
        std::memcpy(&v, vals + i, 8);
        const uint64_t packed = _pext_u64(v & bmask, bmask);
        // Writes 8 - bits garbage bytes past the volley; every one of
        // them is inside the stream (guarded above) and overwritten by
        // the next volley or the tail.
        std::memcpy(dst + out, &packed, 8);
        i += 8;
        out += bits;
    }
    uint64_t buf = 0;
    unsigned nb = 0;
    for (; i < n; ++i) {
        buf |= static_cast<uint64_t>(vals[i] & field) << nb;
        nb += bits;
        while (nb >= 8) {
            dst[out++] = static_cast<uint8_t>(buf);
            buf >>= 8;
            nb -= 8;
        }
    }
    if (nb > 0)
        dst[out++] = static_cast<uint8_t>(buf);
}

void
unpackIdx(const uint8_t *src, size_t n, unsigned bits, uint8_t *dst)
{
    const uint64_t field = (uint64_t{1} << bits) - 1;
    const uint64_t bmask = field * 0x0101010101010101ull;
    const unsigned chunk_bits = 8 * bits;
    const uint64_t chunk_mask = chunk_bits == 64
        ? ~uint64_t{0}
        : (uint64_t{1} << chunk_bits) - 1;
    const size_t total_bytes = (n * bits + 7) / 8;
    size_t i = 0;
    size_t in = 0;
    while (i + 8 <= n && in + 8 <= total_bytes) {
        uint64_t chunk;
        std::memcpy(&chunk, src + in, 8);
        const uint64_t vals8 = _pdep_u64(chunk & chunk_mask, bmask);
        std::memcpy(dst + i, &vals8, 8);
        i += 8;
        in += bits;
    }
    uint64_t buf = 0;
    unsigned nb = 0;
    for (; i < n; ++i) {
        while (nb < bits) {
            buf |= static_cast<uint64_t>(src[in++]) << nb;
            nb += 8;
        }
        dst[i] = static_cast<uint8_t>(buf & field);
        buf >>= bits;
        nb -= bits;
    }
}

// --------------------------------------------------------------------
// CRC-32 via PCLMUL folding (IEEE reflected 0xEDB88320). Constants
// and fold structure follow the Intel "Fast CRC Computation Using
// PCLMULQDQ" whitepaper as deployed in zlib: fold 64-byte blocks with
// four 128-bit accumulators, reduce to one, then Barrett-reduce to
// 32 bits. Operates on the raw (pre/post-conditioned) CRC state.
// --------------------------------------------------------------------

alignas(16) const uint64_t kK1K2[2] = {0x0154442bd4, 0x01c6e41596};
alignas(16) const uint64_t kK3K4[2] = {0x01751997d0, 0x00ccaa009e};
alignas(16) const uint64_t kK5K0[2] = {0x0163cd6124, 0x0000000000};
alignas(16) const uint64_t kPoly[2] = {0x01db710641, 0x01f7011641};

/** Fold a region of len >= 64, len % 16 == 0. Raw CRC in and out. */
uint32_t
crcFold(const uint8_t *buf, size_t len, uint32_t crc)
{
    __m128i x0, x1, x2, x3, x4, x5, x6, x7, x8, y5, y6, y7, y8;

    x1 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(buf + 0x00));
    x2 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(buf + 0x10));
    x3 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(buf + 0x20));
    x4 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(buf + 0x30));

    x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));

    x0 = _mm_load_si128(reinterpret_cast<const __m128i *>(kK1K2));

    buf += 64;
    len -= 64;

    while (len >= 64) {
        x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
        x6 = _mm_clmulepi64_si128(x2, x0, 0x00);
        x7 = _mm_clmulepi64_si128(x3, x0, 0x00);
        x8 = _mm_clmulepi64_si128(x4, x0, 0x00);

        x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
        x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
        x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
        x4 = _mm_clmulepi64_si128(x4, x0, 0x11);

        y5 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(buf + 0x00));
        y6 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(buf + 0x10));
        y7 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(buf + 0x20));
        y8 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(buf + 0x30));

        x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), y5);
        x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), y6);
        x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), y7);
        x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), y8);

        buf += 64;
        len -= 64;
    }

    // Fold the four accumulators into one.
    x0 = _mm_load_si128(reinterpret_cast<const __m128i *>(kK3K4));

    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);

    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);

    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

    while (len >= 16) {
        x2 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(buf));

        x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
        x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);

        buf += 16;
        len -= 16;
    }

    // Fold 128 bits to 64, then Barrett-reduce to 32.
    x2 = _mm_clmulepi64_si128(x1, x0, 0x10);
    x3 = _mm_setr_epi32(~0, 0, ~0, 0);
    x1 = _mm_srli_si128(x1, 8);
    x1 = _mm_xor_si128(x1, x2);

    x0 = _mm_loadl_epi64(reinterpret_cast<const __m128i *>(kK5K0));

    x2 = _mm_srli_si128(x1, 4);
    x1 = _mm_and_si128(x1, x3);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_xor_si128(x1, x2);

    x0 = _mm_load_si128(reinterpret_cast<const __m128i *>(kPoly));

    x2 = _mm_and_si128(x1, x3);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x10);
    x2 = _mm_and_si128(x2, x3);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x00);
    x1 = _mm_xor_si128(x1, x2);

    return static_cast<uint32_t>(_mm_extract_epi32(x1, 1));
}

uint32_t
pclmulCrc32(const uint8_t *p, size_t n, uint32_t seed)
{
    if (n < 64)
        return scalarCrc32(p, n, seed);
    uint32_t c = seed ^ 0xffffffffu;
    const size_t chunk = n & ~size_t{15}; // >= 64 and 16-aligned.
    c = crcFold(p, chunk, c);
    // Chain the sub-16-byte tail through the table form: re-condition
    // the raw state into a seed (the pre/post XORs cancel).
    return scalarCrc32(p + chunk, n - chunk, c ^ 0xffffffffu);
}

} // namespace

const KernelTable &
avx2Table()
{
    static const KernelTable table = [] {
        KernelTable t{};
        t.isa = Isa::Avx2;
        t.name = "avx2";
        t.popcount = &popcountWords;
        t.popcountAnd = &popcountAndWords;
        t.popcountXor = &popcountXorWords;
        t.andInplace = &andInplace;
        t.orInplace = &orInplace;
        t.xorInplace = &xorInplace;
        t.bytePopcountAccum = &bytePopcountAccum;
        t.rank8x8 = &rank8x8;
        t.packIdx = &packIdx;
        t.unpackIdx = &unpackIdx;
        // PCLMUL+SSE4.2 ride along with AVX2 on every known part, but
        // the features are architecturally separate — honor cpuid.
        const CpuFeatures &f = cpuFeatures();
        t.crc32 = (f.pclmul && f.sse42) ? &pclmulCrc32 : &scalarCrc32;
        return t;
    }();
    return table;
}

} // namespace tbstc::kernels::detail
