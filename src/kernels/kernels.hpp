/**
 * @file
 * Multi-ISA SIMD kernel backend with runtime dispatch.
 *
 * Every bit-level hot loop in the library — the packed-mask popcount
 * family, the SWAR byte-lane accumulator behind blockNnz, the rank8
 * scoring oracle of Algorithm 1, the DDC index-stream bit packer, and
 * CRC-32 — routes through one table of function pointers selected
 * once, at first use, from runtime CPU-feature detection. Each ISA's
 * implementations live in their own translation unit compiled with
 * the matching `-m` flags, so a single binary carries scalar, AVX2,
 * and AVX-512 paths on x86-64 (NEON on aarch64) and runs the best one
 * the host supports.
 *
 * Contract: every ISA level is bit-identical to the scalar level on
 * every input. The scalar implementations are the specification; the
 * cross-ISA equivalence suite (tests/test_kernels.cpp) and the golden
 * mask hashes pin this, so masks, DDC streams, checksums, and cache
 * keys never depend on the machine that produced them.
 *
 * Selection order: TBSTC_ISA environment variable if set (values:
 * `scalar`, `avx2`, `avx512`, `neon`, `native`), else the best level
 * the CPU supports. Forcing a level the host cannot run is a hard
 * error — silently falling back would make perf numbers lie. The
 * `tbstc --isa` flag and `tbstc cpuinfo` build on the same entry
 * points (setIsa / activeIsa / cpuFeatures).
 */

#ifndef TBSTC_KERNELS_KERNELS_HPP
#define TBSTC_KERNELS_KERNELS_HPP

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace tbstc::kernels {

/** Dispatchable ISA levels, ascending within an architecture. */
enum class Isa : uint8_t
{
    Scalar = 0, ///< Portable C++; the bit-exactness reference.
    Avx2 = 1,   ///< x86-64 AVX2 (+BMI2, SSE4.2, PCLMUL where present).
    Avx512 = 2, ///< x86-64 AVX-512 F/BW/DQ/VL/VPOPCNTDQ.
    Neon = 3,   ///< aarch64 Advanced SIMD (+CRC where present).
};

/** Raw CPU feature bits behind the ISA levels (for cpuinfo). */
struct CpuFeatures
{
    bool sse42 = false;
    bool pclmul = false;
    bool bmi2 = false;
    bool avx2 = false;
    bool avx512f = false;
    bool avx512bw = false;
    bool avx512dq = false;
    bool avx512vl = false;
    bool avx512vpopcntdq = false;
    bool neon = false;
    bool armCrc = false;
};

/**
 * The kernel table: one entry per vectorizable primitive. All
 * pointers are always non-null; a level that has no specialized form
 * of a primitive points at the next-best implementation it can run
 * (e.g. AVX-512 reuses the AVX2 rank8x8).
 */
struct KernelTable
{
    Isa isa;          ///< Level this table implements.
    const char *name; ///< "scalar", "avx2", ...

    /** Total set bits over n words. */
    uint64_t (*popcount)(const uint64_t *w, size_t n);
    /** Set bits of a[i] & b[i] over n words (mask overlap). */
    uint64_t (*popcountAnd)(const uint64_t *a, const uint64_t *b,
                            size_t n);
    /** Set bits of a[i] ^ b[i] over n words (Hamming distance). */
    uint64_t (*popcountXor)(const uint64_t *a, const uint64_t *b,
                            size_t n);
    /** a[i] &= b[i] over n words. */
    void (*andInplace)(uint64_t *a, const uint64_t *b, size_t n);
    /** a[i] |= b[i] over n words. */
    void (*orInplace)(uint64_t *a, const uint64_t *b, size_t n);
    /** a[i] ^= b[i] over n words. */
    void (*xorInplace)(uint64_t *a, const uint64_t *b, size_t n);

    /**
     * acc[i] += per-byte popcounts of w[i], for i < n: each byte lane
     * of acc accumulates its own byte's count. The caller bounds the
     * number of accumulations so no byte lane can exceed 255 (the
     * blockNnz walk adds at most 8 rows of at most 8 bits each).
     */
    void (*bytePopcountAccum)(const uint64_t *w, size_t n,
                              uint64_t *acc);

    /**
     * Rank tables of one 8x8 row-major float block under the
     * selectTopN total order (value descending, index ascending):
     * rank_row[r*8+c] ranks element (r, c) within row r, rank_col
     * ranks it within column c. Alg. 1's scoring oracle.
     */
    void (*rank8x8)(const float *blk, uint16_t *rank_row,
                    uint16_t *rank_col);

    /**
     * Pack n values of `bits` bits each (1 <= bits <= 8, values
     * already < 2^bits) LSB-first into dst. dst must hold
     * (n*bits + 7) / 8 bytes; bytes past the last written bit are
     * zeroed. The DDC index-stream layout.
     */
    void (*packIdx)(const uint8_t *vals, size_t n, unsigned bits,
                    uint8_t *dst);
    /**
     * Inverse of packIdx: unpack n values of `bits` bits each from
     * src (holding at least (n*bits + 7) / 8 bytes) into dst[n].
     */
    void (*unpackIdx)(const uint8_t *src, size_t n, unsigned bits,
                      uint8_t *dst);

    /**
     * CRC-32 (IEEE 802.3, reflected 0xEDB88320) of n bytes, chained
     * from a previous result via seed. Matches zlib's crc32().
     */
    uint32_t (*crc32)(const uint8_t *p, size_t n, uint32_t seed);
};

/** Detected CPU feature bits (cached after the first call). */
const CpuFeatures &cpuFeatures();

/** Canonical lower-case name of a level ("scalar", "avx2", ...). */
const char *isaName(Isa isa);

/**
 * Parse an ISA name as accepted by TBSTC_ISA / --isa. Returns false
 * for unknown names. "native" parses to bestSupportedIsa().
 */
bool parseIsa(std::string_view name, Isa &out);

/** True when this host can run @p isa (compiled in + CPU support). */
bool isaSupported(Isa isa);

/** Every runnable level on this host, ascending; always has Scalar. */
std::vector<Isa> supportedIsas();

/** The highest runnable level on this host. */
Isa bestSupportedIsa();

/**
 * The kernel table of a specific level, or nullptr when the host
 * cannot run it. Lets benchmarks and the equivalence suite exercise
 * every level side by side without touching the active selection.
 */
const KernelTable *kernelTableFor(Isa isa);

/**
 * The active kernel table. First use resolves TBSTC_ISA (malformed
 * or unsupported values are a hard error on stderr, exit 2) or falls
 * back to bestSupportedIsa(). Thread-safe; the selection never
 * changes concurrently with kernel execution in normal operation
 * (setIsa is for startup flag handling and tests).
 */
const KernelTable &active();

/** Level of the active table. */
Isa activeIsa();

/**
 * Force the active level (the --isa flag, the equivalence suite).
 * Returns false — and leaves the selection unchanged — when the host
 * cannot run @p isa. Call before spawning parallel work.
 */
bool setIsa(Isa isa);

} // namespace tbstc::kernels

#endif // TBSTC_KERNELS_KERNELS_HPP
