/**
 * @file
 * Runtime CPU-feature detection and kernel-table dispatch.
 *
 * Detection: __builtin_cpu_supports on x86-64 (which also folds in
 * the XSAVE/OS-enabled state for AVX registers), getauxval(AT_HWCAP)
 * on aarch64 Linux. Selection happens once, at the first call to
 * active(): TBSTC_ISA if set — a malformed or unsupported value is a
 * hard error, because silently falling back would make forced-ISA
 * perf runs lie — else the best level the host supports.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "kernels_detail.hpp"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace tbstc::kernels {

namespace {

CpuFeatures
detectCpuFeatures()
{
    CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
    f.sse42 = __builtin_cpu_supports("sse4.2");
    f.pclmul = __builtin_cpu_supports("pclmul");
    f.bmi2 = __builtin_cpu_supports("bmi2");
    f.avx2 = __builtin_cpu_supports("avx2");
    f.avx512f = __builtin_cpu_supports("avx512f");
    f.avx512bw = __builtin_cpu_supports("avx512bw");
    f.avx512dq = __builtin_cpu_supports("avx512dq");
    f.avx512vl = __builtin_cpu_supports("avx512vl");
    f.avx512vpopcntdq = __builtin_cpu_supports("avx512vpopcntdq");
#elif defined(__aarch64__)
#if defined(__linux__)
    const unsigned long hwcap = getauxval(AT_HWCAP);
    f.neon = (hwcap & HWCAP_ASIMD) != 0;
    f.armCrc = (hwcap & HWCAP_CRC32) != 0;
#else
    // Advanced SIMD is architecturally baseline on aarch64; without
    // an auxv the CRC extension cannot be probed, so leave it off.
    f.neon = true;
#endif
#endif
    return f;
}

/** The selection; nullptr until first active()/setIsa(). */
std::atomic<const KernelTable *> g_active{nullptr};
std::once_flag g_init_once;

[[noreturn]] void
fatalIsa(const char *value, const char *why)
{
    std::fprintf(stderr,
                 "tbstc: TBSTC_ISA=%s: %s (supported here:", value, why);
    for (const Isa isa : supportedIsas())
        std::fprintf(stderr, " %s", isaName(isa));
    std::fprintf(stderr, ")\n");
    std::exit(2);
}

void
initActive()
{
    const char *env = std::getenv("TBSTC_ISA");
    if (env != nullptr && env[0] != '\0') {
        Isa isa;
        if (!parseIsa(env, isa))
            fatalIsa(env, "unknown ISA name");
        const KernelTable *t = kernelTableFor(isa);
        if (t == nullptr)
            fatalIsa(env, "not supported on this host");
        g_active.store(t, std::memory_order_release);
        return;
    }
    g_active.store(kernelTableFor(bestSupportedIsa()),
                   std::memory_order_release);
}

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures features = detectCpuFeatures();
    return features;
}

const char *
isaName(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return "scalar";
    case Isa::Avx2:
        return "avx2";
    case Isa::Avx512:
        return "avx512";
    case Isa::Neon:
        return "neon";
    }
    return "unknown";
}

bool
parseIsa(std::string_view name, Isa &out)
{
    if (name == "scalar") {
        out = Isa::Scalar;
        return true;
    }
    if (name == "avx2") {
        out = Isa::Avx2;
        return true;
    }
    if (name == "avx512") {
        out = Isa::Avx512;
        return true;
    }
    if (name == "neon") {
        out = Isa::Neon;
        return true;
    }
    if (name == "native") {
        out = bestSupportedIsa();
        return true;
    }
    return false;
}

bool
isaSupported(Isa isa)
{
    return kernelTableFor(isa) != nullptr;
}

std::vector<Isa>
supportedIsas()
{
    std::vector<Isa> out;
    for (const Isa isa :
         {Isa::Scalar, Isa::Avx2, Isa::Avx512, Isa::Neon})
        if (isaSupported(isa))
            out.push_back(isa);
    return out;
}

Isa
bestSupportedIsa()
{
    Isa best = Isa::Scalar;
    for (const Isa isa : {Isa::Avx2, Isa::Avx512, Isa::Neon})
        if (isaSupported(isa))
            best = isa;
    return best;
}

const KernelTable *
kernelTableFor(Isa isa)
{
    [[maybe_unused]] const CpuFeatures &f = cpuFeatures();
    switch (isa) {
    case Isa::Scalar:
        return &detail::scalarTable();
    case Isa::Avx2:
#if defined(TBSTC_KERNELS_HAVE_AVX2)
        // BMI2 is required for the pext/pdep index codec; every AVX2
        // part ships it.
        if (f.avx2 && f.bmi2)
            return &detail::avx2Table();
#endif
        return nullptr;
    case Isa::Avx512:
#if defined(TBSTC_KERNELS_HAVE_AVX512)
        if (f.avx2 && f.bmi2 && f.avx512f && f.avx512bw && f.avx512dq
            && f.avx512vl && f.avx512vpopcntdq)
            return &detail::avx512Table();
#endif
        return nullptr;
    case Isa::Neon:
#if defined(TBSTC_KERNELS_HAVE_NEON)
        if (f.neon)
            return &detail::neonTable();
#endif
        return nullptr;
    }
    return nullptr;
}

const KernelTable &
active()
{
    const KernelTable *t = g_active.load(std::memory_order_acquire);
    if (t == nullptr) {
        std::call_once(g_init_once, initActive);
        t = g_active.load(std::memory_order_acquire);
    }
    return *t;
}

Isa
activeIsa()
{
    return active().isa;
}

bool
setIsa(Isa isa)
{
    const KernelTable *t = kernelTableFor(isa);
    if (t == nullptr)
        return false;
    g_active.store(t, std::memory_order_release);
    return true;
}

} // namespace tbstc::kernels
