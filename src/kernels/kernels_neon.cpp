/**
 * @file
 * NEON kernels for aarch64. Advanced SIMD is architecturally baseline
 * on aarch64, so this whole TU compiles with the default flags except
 * the CRC functions, which carry a `+crc` target attribute and are
 * only wired into the table when getauxval reports HWCAP_CRC32.
 *
 * vcntq_u8 gives per-byte popcounts directly — both the popcount
 * family (via the pairwise-add widening chain) and the byte-lane
 * accumulator come out almost for free. rank8x8 and the index codec
 * keep the scalar forms: without pext/pdep the byte-gather tricks
 * don't pay for themselves on the 2x64-bit lanes.
 */

#include <arm_neon.h>

#include "kernels_detail.hpp"

#if defined(__ARM_FEATURE_CRC32)
#define TBSTC_NEON_CRC_ATTR
#else
#define TBSTC_NEON_CRC_ATTR __attribute__((target("+crc")))
#endif
#include <arm_acle.h>

namespace tbstc::kernels::detail {

namespace {

uint64_t
popcountWords(const uint64_t *w, size_t n)
{
    uint64x2_t total = vdupq_n_u64(0);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint8x16_t v =
            vreinterpretq_u8_u64(vld1q_u64(w + i));
        total = vaddq_u64(
            total, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
    }
    uint64_t sum = vgetq_lane_u64(total, 0) + vgetq_lane_u64(total, 1);
    for (; i < n; ++i)
        sum += static_cast<uint64_t>(__builtin_popcountll(w[i]));
    return sum;
}

uint64_t
popcountAndWords(const uint64_t *a, const uint64_t *b, size_t n)
{
    uint64x2_t total = vdupq_n_u64(0);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint8x16_t v = vreinterpretq_u8_u64(
            vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
        total = vaddq_u64(
            total, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
    }
    uint64_t sum = vgetq_lane_u64(total, 0) + vgetq_lane_u64(total, 1);
    for (; i < n; ++i)
        sum += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
    return sum;
}

uint64_t
popcountXorWords(const uint64_t *a, const uint64_t *b, size_t n)
{
    uint64x2_t total = vdupq_n_u64(0);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint8x16_t v = vreinterpretq_u8_u64(
            veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
        total = vaddq_u64(
            total, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
    }
    uint64_t sum = vgetq_lane_u64(total, 0) + vgetq_lane_u64(total, 1);
    for (; i < n; ++i)
        sum += static_cast<uint64_t>(__builtin_popcountll(a[i] ^ b[i]));
    return sum;
}

void
andInplace(uint64_t *a, const uint64_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(a + i, vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
    for (; i < n; ++i)
        a[i] &= b[i];
}

void
orInplace(uint64_t *a, const uint64_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(a + i, vorrq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
    for (; i < n; ++i)
        a[i] |= b[i];
}

void
xorInplace(uint64_t *a, const uint64_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(a + i, veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
    for (; i < n; ++i)
        a[i] ^= b[i];
}

void
bytePopcountAccum(const uint64_t *w, size_t n, uint64_t *acc)
{
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint8x16_t pop =
            vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(w + i)));
        const uint8x16_t a =
            vreinterpretq_u8_u64(vld1q_u64(acc + i));
        vst1q_u64(acc + i,
                  vreinterpretq_u64_u8(vaddq_u8(a, pop)));
    }
    for (; i < n; ++i) {
        uint64_t x = w[i];
        x = x - ((x >> 1) & 0x5555555555555555ull);
        x = (x & 0x3333333333333333ull)
            + ((x >> 2) & 0x3333333333333333ull);
        acc[i] += (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
    }
}

TBSTC_NEON_CRC_ATTR uint32_t
armCrc32(const uint8_t *p, size_t n, uint32_t seed)
{
    uint32_t c = seed ^ 0xffffffffu;
    while (n >= 8) {
        uint64_t v;
        __builtin_memcpy(&v, p, 8);
        c = __crc32d(c, v);
        p += 8;
        n -= 8;
    }
    while (n > 0) {
        c = __crc32b(c, *p);
        ++p;
        --n;
    }
    return c ^ 0xffffffffu;
}

} // namespace

const KernelTable &
neonTable()
{
    static const KernelTable table = [] {
        KernelTable t = scalarTable(); // rank8x8 / codec entries.
        t.isa = Isa::Neon;
        t.name = "neon";
        t.popcount = &popcountWords;
        t.popcountAnd = &popcountAndWords;
        t.popcountXor = &popcountXorWords;
        t.andInplace = &andInplace;
        t.orInplace = &orInplace;
        t.xorInplace = &xorInplace;
        t.bytePopcountAccum = &bytePopcountAccum;
        t.crc32 = cpuFeatures().armCrc ? &armCrc32 : &scalarCrc32;
        return t;
    }();
    return table;
}

} // namespace tbstc::kernels::detail
