/**
 * @file
 * Scalar (portable C++) kernel implementations — the reference every
 * SIMD level must match bit-for-bit. Compiled with the project's
 * default flags only, so this TU runs on any target.
 */

#include <array>
#include <bit>
#include <cstring>

#include "kernels_detail.hpp"

namespace tbstc::kernels::detail {

namespace {

uint64_t
popcountWords(const uint64_t *w, size_t n)
{
    uint64_t total = 0;
    for (size_t i = 0; i < n; ++i)
        total += static_cast<uint64_t>(std::popcount(w[i]));
    return total;
}

uint64_t
popcountAndWords(const uint64_t *a, const uint64_t *b, size_t n)
{
    uint64_t total = 0;
    for (size_t i = 0; i < n; ++i)
        total += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
    return total;
}

uint64_t
popcountXorWords(const uint64_t *a, const uint64_t *b, size_t n)
{
    uint64_t total = 0;
    for (size_t i = 0; i < n; ++i)
        total += static_cast<uint64_t>(std::popcount(a[i] ^ b[i]));
    return total;
}

void
andInplace(uint64_t *a, const uint64_t *b, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        a[i] &= b[i];
}

void
orInplace(uint64_t *a, const uint64_t *b, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        a[i] |= b[i];
}

void
xorInplace(uint64_t *a, const uint64_t *b, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        a[i] ^= b[i];
}

/** SWAR per-byte popcounts: each byte of the result counts its own byte. */
inline uint64_t
bytePopcounts(uint64_t x)
{
    x = x - ((x >> 1) & 0x5555555555555555ull);
    x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
    return (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
}

void
bytePopcountAccum(const uint64_t *w, size_t n, uint64_t *acc)
{
    for (size_t i = 0; i < n; ++i)
        acc[i] += bytePopcounts(w[i]);
}

// --------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected 0xEDB88320), slice-by-8.
//
// Eight 256-entry tables built at compile time: table 0 is the
// classic byte-at-a-time table, table k advances a byte k positions
// further through the shift register. The hot loop consumes 8 input
// bytes per iteration with eight independent lookups — no per-call
// lazy initialization, no data-dependent chain longer than one XOR
// tree. Matches zlib's crc32() bit-for-bit.
// --------------------------------------------------------------------

constexpr std::array<std::array<uint32_t, 256>, 8>
makeCrcTables()
{
    std::array<std::array<uint32_t, 256>, 8> t{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[0][i] = c;
    }
    for (size_t k = 1; k < 8; ++k)
        for (uint32_t i = 0; i < 256; ++i)
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xffu];
    return t;
}

constexpr auto kCrc = makeCrcTables();

inline uint32_t
loadLe32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8)
        | (static_cast<uint32_t>(p[2]) << 16)
        | (static_cast<uint32_t>(p[3]) << 24);
}

} // namespace

uint32_t
scalarCrc32(const uint8_t *p, size_t n, uint32_t seed)
{
    uint32_t c = seed ^ 0xffffffffu;
    while (n >= 8) {
        c ^= loadLe32(p);
        const uint32_t hi = loadLe32(p + 4);
        c = kCrc[7][c & 0xffu] ^ kCrc[6][(c >> 8) & 0xffu]
            ^ kCrc[5][(c >> 16) & 0xffu] ^ kCrc[4][c >> 24]
            ^ kCrc[3][hi & 0xffu] ^ kCrc[2][(hi >> 8) & 0xffu]
            ^ kCrc[1][(hi >> 16) & 0xffu] ^ kCrc[0][hi >> 24];
        p += 8;
        n -= 8;
    }
    for (size_t i = 0; i < n; ++i)
        c = kCrc[0][(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

// --------------------------------------------------------------------
// DDC index-stream bit packing, word-buffered: values stream through
// a 64-bit shift register and leave as whole bytes, so the cost is
// per value, not per bit.
// --------------------------------------------------------------------

void
scalarPackIdx(const uint8_t *vals, size_t n, unsigned bits, uint8_t *dst)
{
    const uint8_t vmask = static_cast<uint8_t>((1u << bits) - 1u);
    uint64_t buf = 0;
    unsigned nb = 0;
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
        buf |= static_cast<uint64_t>(vals[i] & vmask) << nb;
        nb += bits;
        while (nb >= 8) {
            dst[out++] = static_cast<uint8_t>(buf);
            buf >>= 8;
            nb -= 8;
        }
    }
    if (nb > 0)
        dst[out++] = static_cast<uint8_t>(buf);
}

void
scalarUnpackIdx(const uint8_t *src, size_t n, unsigned bits, uint8_t *dst)
{
    const uint64_t vmask = (uint64_t{1} << bits) - 1u;
    uint64_t buf = 0;
    unsigned nb = 0;
    size_t in = 0;
    for (size_t i = 0; i < n; ++i) {
        while (nb < bits) {
            buf |= static_cast<uint64_t>(src[in++]) << nb;
            nb += 8;
        }
        dst[i] = static_cast<uint8_t>(buf & vmask);
        buf >>= bits;
        nb -= bits;
    }
}

// --------------------------------------------------------------------
// rank8x8: ranks of every element of an 8x8 block within its row and
// its column under (value desc, index asc) — 28 branchless pairwise
// compares per 8-element group, everything in registers.
// --------------------------------------------------------------------

namespace {

inline void
rank8(const float *p, size_t stride, uint16_t *out, size_t out_stride)
{
    float v[8];
    for (size_t i = 0; i < 8; ++i)
        v[i] = p[i * stride];
    unsigned rk[8] = {};
    for (size_t i = 0; i < 8; ++i)
        for (size_t j = i + 1; j < 8; ++j) {
            const auto ifirst = static_cast<unsigned>(v[i] >= v[j]);
            rk[j] += ifirst;
            rk[i] += 1u - ifirst;
        }
    for (size_t i = 0; i < 8; ++i)
        out[i * out_stride] = static_cast<uint16_t>(rk[i]);
}

} // namespace

void
scalarRank8x8(const float *blk, uint16_t *rank_row, uint16_t *rank_col)
{
    for (size_t r = 0; r < 8; ++r)
        rank8(blk + r * 8, 1, rank_row + r * 8, 1);
    for (size_t c = 0; c < 8; ++c)
        rank8(blk + c, 8, rank_col + c, 8);
}

const KernelTable &
scalarTable()
{
    static const KernelTable table = {
        Isa::Scalar,
        "scalar",
        &popcountWords,
        &popcountAndWords,
        &popcountXorWords,
        &andInplace,
        &orInplace,
        &xorInplace,
        &bytePopcountAccum,
        &scalarRank8x8,
        &scalarPackIdx,
        &scalarUnpackIdx,
        &scalarCrc32,
    };
    return table;
}

} // namespace tbstc::kernels::detail
