/**
 * @file
 * Internal linkage between the dispatcher and the per-ISA translation
 * units. Each TU exposes its table through one getter; the getters
 * for ISAs that are not compiled into this binary are #defined away
 * by the build (TBSTC_KERNELS_HAVE_*), so the dispatcher never
 * references code the target cannot assemble.
 */

#ifndef TBSTC_KERNELS_KERNELS_DETAIL_HPP
#define TBSTC_KERNELS_KERNELS_DETAIL_HPP

#include "kernels.hpp"

namespace tbstc::kernels::detail {

/** The scalar table: always present, the bit-exactness reference. */
const KernelTable &scalarTable();

#if defined(TBSTC_KERNELS_HAVE_AVX2)
/**
 * The AVX2 table. Safe to *call the getter* on any x86-64; the
 * kernels themselves require AVX2/BMI2 (and the CRC entry PCLMUL +
 * SSE4.2 — the getter wires the scalar CRC when those are absent).
 */
const KernelTable &avx2Table();
#endif

#if defined(TBSTC_KERNELS_HAVE_AVX512)
/** The AVX-512 table (requires F/BW/DQ/VL/VPOPCNTDQ at runtime). */
const KernelTable &avx512Table();
#endif

#if defined(TBSTC_KERNELS_HAVE_NEON)
/** The NEON table (aarch64; the CRC entry additionally needs +crc). */
const KernelTable &neonTable();
#endif

/** Scalar CRC-32, shared by tables lacking a hardware CRC path. */
uint32_t scalarCrc32(const uint8_t *p, size_t n, uint32_t seed);

/** Scalar pack/unpack, shared by levels without a BMI2-style path. */
void scalarPackIdx(const uint8_t *vals, size_t n, unsigned bits,
                   uint8_t *dst);
void scalarUnpackIdx(const uint8_t *src, size_t n, unsigned bits,
                     uint8_t *dst);

/** Scalar rank8x8, shared by levels without a vector comparator. */
void scalarRank8x8(const float *blk, uint16_t *rank_row,
                   uint16_t *rank_col);

} // namespace tbstc::kernels::detail

#endif // TBSTC_KERNELS_KERNELS_DETAIL_HPP
