/**
 * @file
 * Mask-space (representation-space) analysis, paper Sec. III-A2.
 *
 * Mask-space counts the masks a sparsity pattern can express on an
 * X x Y matrix at sparsity granularity M (paper Eqs. (1)-(4)). Counts
 * are astronomically large, so everything is computed and returned in
 * log2. Brute-force enumerators over tiny matrices are provided so
 * tests can validate the closed forms.
 */

#ifndef TBSTC_CORE_MASKSPACE_HPP
#define TBSTC_CORE_MASKSPACE_HPP

#include <cstdint>

#include "pattern.hpp"

namespace tbstc::core {

/**
 * log2 mask-space of tile-wise N:M (paper Eq. (1)):
 *   MS_TS = sum_{i=0}^{k} C(M, 2^i)^(X*Y/M),   k = log2 M.
 * All tiles share one N drawn from the power-of-two ladder.
 */
double log2MaskSpaceTs(size_t x, size_t y, size_t m);

/**
 * log2 mask-space of row-wise N:M with per-row N (paper Eq. (2)):
 *   MS_RS-V = [ sum_{i=0}^{k} C(M, 2^i)^(Y/M) ]^X.
 */
double log2MaskSpaceRsv(size_t x, size_t y, size_t m);

/**
 * log2 mask-space of hierarchical row-wise N:M (paper Eq. (3)):
 *   MS_RS-H = sum_{i=M}^{2M-1} [ (C(i,M) * C(M,M/2)^M)^(X*Y/(i*M))
 *                                + 2 * C(i,M)^(X*Y/(i*M)) ].
 */
double log2MaskSpaceRsh(size_t x, size_t y, size_t m);

/**
 * log2 mask-space of transposable block-wise N:M (paper Eq. (4)):
 *   MS_TBS = [ sum_{i=0}^{k} 2 * C(M, 2^i)^M ]^(X*Y/M^2).
 * Each block independently chooses N and one of two directions.
 */
double log2MaskSpaceTbs(size_t x, size_t y, size_t m);

/** log2 mask-space of unstructured sparsity: all 2^(X*Y) masks. */
double log2MaskSpaceUs(size_t x, size_t y);

/**
 * log2 mask-space of SlideSparse (2N-2):2N with m = 2N: every
 * m-element tile independently takes any mask with at most m-2 kept
 * elements, so
 *   MS_SS = (2^M - M - 1)^(X*Y/M)
 * (all 2^M tile masks minus the one M-dense and the M masks with M-1
 * kept).
 */
double log2MaskSpaceSs(size_t x, size_t y, size_t m);

/** Dispatch over pattern families (US/TS/RSV/RSH/TBS/SS). */
double log2MaskSpace(Pattern p, size_t x, size_t y, size_t m);

/**
 * Brute-force mask count for one M x M block under TBS semantics
 * (union over candidate N and both directions, counting distinct
 * masks). Exponential in m*m; only call with m <= 4.
 */
uint64_t bruteForceTbsBlockMasks(size_t m);

/**
 * Brute-force count of masks of one M-tile under a fixed N:M
 * constraint: C(M, N). For cross-checking chooseExact in context.
 */
uint64_t bruteForceTileMasks(size_t m, size_t n);

} // namespace tbstc::core

#endif // TBSTC_CORE_MASKSPACE_HPP
