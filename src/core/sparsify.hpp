/**
 * @file
 * Mask generators for every sparsity-pattern family, including the
 * paper's Algorithm 1 (TBS sparsification).
 *
 * All generators take a saliency score matrix (see prune.hpp) and a
 * target sparsity degree, and return a keep-mask that satisfies the
 * pattern's structural constraints while matching the target as closely
 * as the candidate N set permits.
 *
 * Matrix dimensions must be multiples of the block size M; hardware
 * (and our workload layer) pads shapes to the block grid, exactly as
 * real tensor-core kernels do.
 */

#ifndef TBSTC_CORE_SPARSIFY_HPP
#define TBSTC_CORE_SPARSIFY_HPP

#include <span>

#include "matrix.hpp"
#include "pattern.hpp"

namespace tbstc::core {

/** TBS sparsification output: the mask plus per-block (N, dim) info. */
struct TbsResult
{
    Mask mask;
    TbsMeta meta;
    /**
     * Hamming distance between the TBS mask and the unstructured mask
     * of Algorithm 1 step 1 — a free by-product of the per-block
     * direction scoring. workload::maskSimilarity derives the paper's
     * mask-similarity metric from it without re-running usMask.
     */
    size_t usHamming = 0;
};

/** Unstructured mask: keep the global top-k scores. */
Mask usMask(const Matrix &scores, double sparsity);

/**
 * Tile-wise N:M mask (NVIDIA STC style): every M-element row tile keeps
 * its top @p n scores. 4:8 reproduces STC's supported pattern.
 */
Mask tsMask(const Matrix &scores, size_t n, size_t m);

/**
 * Row-wise N:M with per-row N (VEGETA). Each row picks the candidate N
 * closest to its unstructured density; a global largest-remainder pass
 * nudges rows so the whole matrix hits the target sparsity.
 */
Mask rsvMask(const Matrix &scores, double sparsity, size_t m,
             std::span<const uint8_t> candidates);

/**
 * Row-wise hierarchical N:M (HighLight). Each super-group of M row
 * tiles keeps T of its M tiles (tile-level N:M), and surviving tiles
 * keep N0 of M elements, with (T, N0) chosen per super-group to match
 * its unstructured density.
 */
Mask rshMask(const Matrix &scores, double sparsity, size_t m,
             std::span<const uint8_t> candidates);

/**
 * Transposable block-wise N:M (paper Algorithm 1):
 *  1. unstructured prune to the target sparsity;
 *  2. per M x M block, choose N from @p candidates nearest the block's
 *     unstructured density (with a global balance pass so the matrix
 *     hits the target);
 *  3. per block, build the reduction-direction mask (top-N per row) and
 *     the independent-direction mask (top-N per column) and keep the one
 *     with the smaller L1 distance to the unstructured block mask.
 */
TbsResult tbsMask(const Matrix &scores, double sparsity, size_t m,
                  std::span<const uint8_t> candidates);

/**
 * Dispatch by pattern family. TS derives its fixed N from the target
 * density (e.g. 50% -> 4:8); Dense returns an all-keep mask.
 */
Mask patternMask(Pattern p, const Matrix &scores, double sparsity,
                 size_t m, std::span<const uint8_t> candidates);

/**
 * Verify the structural invariant of a TBS mask against its metadata:
 * every block group (row or column per its dim) has at most N non-zeros.
 * @return true when the mask is a valid TBS mask.
 */
bool validateTbs(const Mask &mask, const TbsMeta &meta);

/** Verify a tile-wise N:M constraint over all row tiles. */
bool validateTs(const Mask &mask, size_t n, size_t m);

} // namespace tbstc::core

#endif // TBSTC_CORE_SPARSIFY_HPP
