/**
 * @file
 * Mask generators for every sparsity-pattern family, including the
 * paper's Algorithm 1 (TBS sparsification).
 *
 * All generators take a saliency score matrix (see prune.hpp) and a
 * target sparsity degree, and return a keep-mask that satisfies the
 * pattern's structural constraints while matching the target as closely
 * as the candidate N set permits.
 *
 * Matrix dimensions must be multiples of the block size M; hardware
 * (and our workload layer) pads shapes to the block grid, exactly as
 * real tensor-core kernels do.
 *
 * These free functions are the low-level generator surface and are
 * kept byte-stable (golden-hash pinned) as documented legacy wrappers.
 * New code should prefer the strategy-aware tryMakeMask entry point in
 * mask_search.hpp, which adds request validation, a pluggable search-
 * strategy registry, and structured errors on top of the same
 * generators.
 */

#ifndef TBSTC_CORE_SPARSIFY_HPP
#define TBSTC_CORE_SPARSIFY_HPP

#include <span>

#include "matrix.hpp"
#include "pattern.hpp"

namespace tbstc::core {

/** TBS sparsification output: the mask plus per-block (N, dim) info. */
struct TbsResult
{
    Mask mask;
    TbsMeta meta;
    /**
     * Hamming distance between the TBS mask and the unstructured mask
     * of Algorithm 1 step 1 — a free by-product of the per-block
     * direction scoring. workload::maskSimilarity derives the paper's
     * mask-similarity metric from it without re-running usMask.
     */
    size_t usHamming = 0;
};

/** Unstructured mask: keep the global top-k scores. */
Mask usMask(const Matrix &scores, double sparsity);

/**
 * Tile-wise N:M mask (NVIDIA STC style): every M-element row tile keeps
 * its top @p n scores. 4:8 reproduces STC's supported pattern.
 */
Mask tsMask(const Matrix &scores, size_t n, size_t m);

/**
 * Row-wise N:M with per-row N (VEGETA). Each row picks the candidate N
 * closest to its unstructured density; a global largest-remainder pass
 * nudges rows so the whole matrix hits the target sparsity.
 */
Mask rsvMask(const Matrix &scores, double sparsity, size_t m,
             std::span<const uint8_t> candidates);

/**
 * Row-wise hierarchical N:M (HighLight). Each super-group of M row
 * tiles keeps T of its M tiles (tile-level N:M), and surviving tiles
 * keep N0 of M elements, with (T, N0) chosen per super-group to match
 * its unstructured density.
 */
Mask rshMask(const Matrix &scores, double sparsity, size_t m,
             std::span<const uint8_t> candidates);

/**
 * Transposable block-wise N:M (paper Algorithm 1):
 *  1. unstructured prune to the target sparsity;
 *  2. per M x M block, choose N from @p candidates nearest the block's
 *     unstructured density (with a global balance pass so the matrix
 *     hits the target);
 *  3. per block, build the reduction-direction mask (top-N per row) and
 *     the independent-direction mask (top-N per column) and keep the one
 *     with the smaller L1 distance to the unstructured block mask.
 */
TbsResult tbsMask(const Matrix &scores, double sparsity, size_t m,
                  std::span<const uint8_t> candidates);

/**
 * Statistics of one TBS mask search. The greedy mapper only fills
 * `blocks`; the optimal solver reports how much of its extra work paid
 * off, which the mask-search bench turns into its quality-vs-cost
 * table.
 */
struct TbsSearchStats
{
    size_t blocks = 0;        ///< M x M blocks examined.
    /** Blocks whose L1 distance to the US mask beat greedy's choice. */
    size_t improvedBlocks = 0;
    /** Blocks whose final mask meets the N cap in *both* directions. */
    size_t transposableBlocks = 0;
    /** Augmenting paths that re-routed the doubly-constrained core. */
    size_t augmentations = 0;
};

/**
 * TSENOR-style optimal transposable search (second TBS strategy).
 *
 * Steps 1 and 2 are identical to tbsMask (same unstructured mask, same
 * per-block N balance pass). Step 3 replaces the greedy rank-table
 * mapper: per block it solves the top-N selection to L1 optimality
 * against the step-1 unstructured mask, exploiting the <=N slack of
 * the TBS constraint — the optimal block keeps only unstructured-kept
 * elements, min(us_g, N) per group of the declared direction, so its
 * distance is us_nnz - sum_g min(us_g, N), provably <= greedy's
 * N*m + us_nnz - 2*overlap[N] in every block and direction. Inside
 * that optimum, a Hungarian-style augmenting-path b-matching (row caps
 * *and* column caps of N simultaneously) decides which elements form
 * the transposable core, so the kept set stays as close to a both-
 * direction-legal mask as the block permits.
 *
 * Trade-off: the optimal mask never keeps a non-US element, so its nnz
 * can undershoot the target where a group has fewer than N survivors
 * (greedy pads such groups with noise). Scoring is scalar per block —
 * slower than greedy's SIMD rank kernel, which is the price the bench
 * quantifies.
 */
TbsResult tbsMaskOptimal(const Matrix &scores, double sparsity, size_t m,
                         std::span<const uint8_t> candidates,
                         TbsSearchStats *stats = nullptr);

/**
 * SlideSparse (2N-2):2N mask (arxiv 2603.05232), with m = 2N. Every
 * m-element row tile keeps at most m-2 elements; the per-tile keep
 * count is chosen from the contiguous 0..m-2 ladder nearest the tile's
 * unstructured density, with the usual global largest-remainder pass
 * toward the target. Requires an even m >= 4; targets sparser than
 * 2/m are unreachable (the cap bites) and the mask saturates at m-2
 * per tile.
 */
Mask ssMask(const Matrix &scores, double sparsity, size_t m);

/** Per-tile candidate keep counts of SlideSparse: {0, 1, ..., m-2}. */
std::vector<uint8_t> slideSparseCandidates(size_t m);

/**
 * Dispatch by pattern family. TS derives its fixed N from the target
 * density (e.g. 50% -> 4:8); Dense returns an all-keep mask.
 */
Mask patternMask(Pattern p, const Matrix &scores, double sparsity,
                 size_t m, std::span<const uint8_t> candidates);

/**
 * Verify the structural invariant of a TBS mask against its metadata:
 * every block group (row or column per its dim) has at most N non-zeros.
 * @return true when the mask is a valid TBS mask.
 */
bool validateTbs(const Mask &mask, const TbsMeta &meta);

/** Verify a tile-wise N:M constraint over all row tiles. */
bool validateTs(const Mask &mask, size_t n, size_t m);

/**
 * Verify the SlideSparse invariant: m is even and >= 4, columns tile
 * by m, and every aligned m-element row tile keeps at most m-2
 * elements.
 */
bool validateSlideSparse(const Mask &mask, size_t m);

} // namespace tbstc::core

#endif // TBSTC_CORE_SPARSIFY_HPP
