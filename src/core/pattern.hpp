/**
 * @file
 * Sparsity-pattern taxonomy and per-block metadata for TBS.
 *
 * Pattern families follow the paper's Sec. II-A / Fig. 4(a):
 *  - US    unstructured (element-wise top-k)
 *  - TS    tile-wise N:M (fixed N for every M-element row tile; the
 *          NVIDIA STC 2:4 / 4:8 pattern)
 *  - RS-V  row-wise N:M, per-row N (VEGETA)
 *  - RS-H  row-wise hierarchical N:M (HighLight)
 *  - TBS   transposable block-wise N:M (this paper): per M x M block an
 *          independent N *and* an independent sparsity dimension.
 *  - SS    SlideSparse (2N-2):2N (arxiv 2603.05232): every 2N-element
 *          row tile keeps at most 2N-2 elements, with a per-tile keep
 *          count chosen from the full 0..2N-2 ladder.
 */

#ifndef TBSTC_CORE_PATTERN_HPP
#define TBSTC_CORE_PATTERN_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace tbstc::core {

/** Sparsity-pattern family. */
enum class Pattern : uint8_t
{
    Dense, ///< No sparsity.
    US,    ///< Unstructured.
    TS,    ///< Tile-wise N:M (NVIDIA STC).
    RSV,   ///< Row-wise N:M, per-row N (VEGETA).
    RSH,   ///< Row-wise hierarchical N:M (HighLight).
    TBS,   ///< Transposable block-wise N:M (this paper).
    SS,    ///< SlideSparse (2N-2):2N row tiles (arxiv 2603.05232).
};

/** Human-readable pattern name as used in the paper's tables. */
std::string patternName(Pattern p);

/**
 * Dimension along which an N:M group is formed inside a block.
 *
 * Reduction = groups along a row (classic "row-wise" N:M; elements of a
 * group share a row). Independent = groups along a column.
 */
enum class SparsityDim : uint8_t
{
    Reduction,   ///< N:M within each row of the block.
    Independent, ///< N:M within each column of the block.
};

/** Short label for a sparsity dimension ("row"/"col"). */
std::string dimName(SparsityDim d);

/** Per-block TBS descriptor: N of the N:M ratio plus the direction. */
struct BlockInfo
{
    uint8_t n = 0;                               ///< Non-zeros per group.
    SparsityDim dim = SparsityDim::Reduction;    ///< Group direction.

    bool operator==(const BlockInfo &) const = default;
};

/**
 * Block-grid metadata accompanying a TBS mask: one BlockInfo per
 * M x M block, in row-major block order. blockRows/blockCols count
 * blocks, not elements.
 */
struct TbsMeta
{
    size_t m = 8;           ///< Block edge (the M of N:M).
    size_t blockRows = 0;   ///< Number of block rows.
    size_t blockCols = 0;   ///< Number of block columns.
    std::vector<BlockInfo> blocks; ///< blockRows * blockCols entries.

    const BlockInfo &
    block(size_t br, size_t bc) const
    {
        return blocks[br * blockCols + bc];
    }

    BlockInfo &
    block(size_t br, size_t bc)
    {
        return blocks[br * blockCols + bc];
    }
};

/** Default candidate N set for M = 8 (paper Sec. VII-A3). */
std::vector<uint8_t> defaultCandidates(size_t m);

} // namespace tbstc::core

#endif // TBSTC_CORE_PATTERN_HPP
