#include "blockstats.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/kernels.hpp"
#include "util/logging.hpp"

namespace tbstc::core {

using util::ensure;

BlockKind
classifyBlock(const BlockInfo &info, size_t m)
{
    if (info.n == 0 || info.n == m)
        return BlockKind::Other;
    return info.dim == SparsityDim::Reduction ? BlockKind::RowSparse
                                              : BlockKind::ColSparse;
}

DirectionDistribution
directionDistribution(const TbsMeta &meta)
{
    DirectionDistribution d;
    d.blocks = meta.blocks.size();
    if (d.blocks == 0)
        return d;
    size_t row = 0;
    size_t col = 0;
    size_t other = 0;
    for (const auto &b : meta.blocks) {
        switch (classifyBlock(b, meta.m)) {
          case BlockKind::RowSparse: ++row; break;
          case BlockKind::ColSparse: ++col; break;
          case BlockKind::Other:     ++other; break;
        }
    }
    const auto total = static_cast<double>(d.blocks);
    d.rowFrac = row / total;
    d.colFrac = col / total;
    d.otherFrac = other / total;
    return d;
}

std::vector<size_t>
blockNnz(const Mask &mask, size_t m)
{
    ensure(m > 0 && mask.rows() % m == 0 && mask.cols() % m == 0,
           "blockNnz requires block-divisible mask");
    const size_t block_rows = mask.rows() / m;
    const size_t block_cols = mask.cols() / m;
    std::vector<size_t> nnz(block_rows * block_cols, 0);
    if (m == 8) {
        // Each packed word holds 8 adjacent blocks' row bytes; SWAR
        // byte-popcounts accumulate all 8 per-block sums at once (the
        // 8-row vertical sum tops out at 64, well inside a byte).
        const std::span<const uint64_t> words = mask.words();
        const size_t wpr = mask.wordsPerRow();
        const kernels::KernelTable &k = kernels::active();
        std::vector<uint64_t> acc(wpr);
        for (size_t br = 0; br < block_rows; ++br) {
            std::fill(acc.begin(), acc.end(), uint64_t{0});
            for (size_t r = 0; r < 8; ++r)
                k.bytePopcountAccum(
                    words.data() + (br * 8 + r) * wpr, wpr, acc.data());
            for (size_t bc = 0; bc < block_cols; ++bc)
                nnz[br * block_cols + bc] =
                    (acc[bc >> 3] >> ((bc & 7) * 8)) & 0xff;
        }
        return nnz;
    }
    // Word-at-a-time: each block row contributes one popcount per <=64
    // columns.
    for (size_t br = 0; br < block_rows; ++br)
        for (size_t r = 0; r < m; ++r)
            for (size_t bc = 0; bc < block_cols; ++bc)
                for (size_t c0 = 0; c0 < m; c0 += 64)
                    nnz[br * block_cols + bc] += mask.rangeNnz(
                        br * m + r, bc * m + c0, std::min<size_t>(64, m - c0));
    return nnz;
}

double
naiveInterBlockUtilisation(const std::vector<size_t> &nnz, size_t window,
                           size_t m)
{
    ensure(window > 0 && m > 0, "invalid window or block size");
    if (nnz.empty())
        return 1.0;
    double useful = 0.0;
    double issued = 0.0;
    for (size_t w0 = 0; w0 < nnz.size(); w0 += window) {
        const size_t w1 = std::min(w0 + window, nnz.size());
        size_t max_nnz = 0;
        size_t sum_nnz = 0;
        for (size_t i = w0; i < w1; ++i) {
            max_nnz = std::max(max_nnz, nnz[i]);
            sum_nnz += nnz[i];
        }
        // Each PE in the window stalls until the heaviest block's cycles
        // (ceil(max/m) pipeline beats of m MACs) have elapsed.
        const double beats =
            std::ceil(static_cast<double>(max_nnz) / static_cast<double>(m));
        useful += static_cast<double>(sum_nnz);
        issued += beats * static_cast<double>(m) *
            static_cast<double>(w1 - w0);
    }
    return issued > 0.0 ? useful / issued : 1.0;
}

} // namespace tbstc::core
