/**
 * @file
 * Block-level statistics over TBS-pruned matrices: direction
 * distribution (paper Fig. 17), per-block density histograms, and the
 * workload-imbalance metrics motivating Sec. VI.
 */

#ifndef TBSTC_CORE_BLOCKSTATS_HPP
#define TBSTC_CORE_BLOCKSTATS_HPP

#include <vector>

#include "matrix.hpp"
#include "pattern.hpp"

namespace tbstc::core {

/** Fig. 17 categories for one block. */
enum class BlockKind : uint8_t
{
    RowSparse, ///< N:M along the reduction dimension (and N in (0, M)).
    ColSparse, ///< N:M along the independent dimension (and N in (0, M)).
    Other,     ///< Dense (N = M) or empty (N = 0): direction-free.
};

/** Distribution of block kinds across a TBS metadata grid. */
struct DirectionDistribution
{
    double rowFrac = 0.0;
    double colFrac = 0.0;
    double otherFrac = 0.0;
    size_t blocks = 0;
};

/** Classify one block. */
BlockKind classifyBlock(const BlockInfo &info, size_t m);

/** Fig. 17: fraction of row-/column-/other blocks in @p meta. */
DirectionDistribution directionDistribution(const TbsMeta &meta);

/** Per-block non-zero counts of @p mask on the M-grid of @p meta. */
std::vector<size_t> blockNnz(const Mask &mask, size_t m);

/**
 * Inter-block imbalance: ratio of the mean block workload to the max,
 * i.e. the PE utilisation a naive one-block-per-PE-slot mapping
 * achieves over each consecutive window of @p window blocks.
 */
double naiveInterBlockUtilisation(const std::vector<size_t> &nnz,
                                  size_t window, size_t m);

} // namespace tbstc::core

#endif // TBSTC_CORE_BLOCKSTATS_HPP
