#include "linalg.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace tbstc::core {

using util::ensure;
using util::fatal;

Matrix
choleskyLower(const Matrix &a)
{
    ensure(a.rows() == a.cols(), "choleskyLower requires a square matrix");
    const size_t n = a.rows();
    Matrix l(n, n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j <= i; ++j) {
            double sum = a.at(i, j);
            for (size_t k = 0; k < j; ++k)
                sum -= static_cast<double>(l.at(i, k)) * l.at(j, k);
            if (i == j) {
                if (sum <= 0.0)
                    fatal("choleskyLower: matrix is not positive definite "
                          "(pivot {} at index {})", sum, i);
                l.at(i, j) = static_cast<float>(std::sqrt(sum));
            } else {
                l.at(i, j) = static_cast<float>(sum / l.at(j, j));
            }
        }
    }
    return l;
}

Matrix
choleskyUpper(const Matrix &a)
{
    return choleskyLower(a).transposed();
}

Matrix
spdInverse(const Matrix &a)
{
    const size_t n = a.rows();
    const Matrix l = choleskyLower(a);

    // Invert L by forward substitution: L * Linv = I.
    Matrix linv(n, n);
    for (size_t col = 0; col < n; ++col) {
        for (size_t i = col; i < n; ++i) {
            double sum = (i == col) ? 1.0 : 0.0;
            for (size_t k = col; k < i; ++k)
                sum -= static_cast<double>(l.at(i, k)) * linv.at(k, col);
            linv.at(i, col) = static_cast<float>(sum / l.at(i, i));
        }
    }

    // A^-1 = Linv^T * Linv.
    Matrix inv(n, n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double sum = 0.0;
            for (size_t k = std::max(i, j); k < n; ++k)
                sum += static_cast<double>(linv.at(k, i)) * linv.at(k, j);
            inv.at(i, j) = static_cast<float>(sum);
        }
    }
    return inv;
}

Matrix
gramFromActivations(const Matrix &x, double damp)
{
    ensure(x.rows() > 0, "gramFromActivations requires samples");
    const size_t n = x.rows();
    const size_t f = x.cols();
    Matrix h(f, f);
    for (size_t s = 0; s < n; ++s) {
        for (size_t i = 0; i < f; ++i) {
            const float xi = x.at(s, i);
            if (xi == 0.0f)
                continue;
            for (size_t j = i; j < f; ++j)
                h.at(i, j) += xi * x.at(s, j);
        }
    }
    double trace = 0.0;
    for (size_t i = 0; i < f; ++i)
        trace += h.at(i, i);
    const float lambda =
        static_cast<float>(damp * trace / static_cast<double>(f * n));
    for (size_t i = 0; i < f; ++i) {
        for (size_t j = i; j < f; ++j) {
            h.at(i, j) = h.at(i, j) / static_cast<float>(n)
                + (i == j ? lambda : 0.0f);
            h.at(j, i) = h.at(i, j);
        }
    }
    // Guarantee positive definiteness even for rank-deficient samples.
    for (size_t i = 0; i < f; ++i)
        if (h.at(i, i) <= 0.0f)
            h.at(i, i) = 1e-6f;
    return h;
}

Matrix
identity(size_t n)
{
    Matrix i(n, n);
    for (size_t k = 0; k < n; ++k)
        i.at(k, k) = 1.0f;
    return i;
}

} // namespace tbstc::core
