/**
 * @file
 * Dense matrix and binary mask containers shared by every subsystem.
 *
 * Conventions (paper Fig. 3(a)): in the SpMM D = A x B + C the sparse
 * operand A has shape rows x cols where @b cols is the reduction
 * dimension (contracted with B) and @b rows is the independent dimension
 * (survives into D). "Row-wise" N:M sparsity groups M consecutive
 * elements along a row (i.e. along the reduction dimension); "column-wise"
 * groups along a column (the independent dimension).
 */

#ifndef TBSTC_CORE_MATRIX_HPP
#define TBSTC_CORE_MATRIX_HPP

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tbstc::core {

/** Row-major dense float matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a rows x cols matrix of zeros. */
    Matrix(size_t rows, size_t cols);

    /** Construct from existing row-major data (size must match). */
    Matrix(size_t rows, size_t cols, std::vector<float> data);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }

    float &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    std::span<float> data() { return data_; }
    std::span<const float> data() const { return data_; }

    /** Mutable view of one row. */
    std::span<float> row(size_t r) { return {&data_[r * cols_], cols_}; }
    std::span<const float>
    row(size_t r) const
    {
        return {&data_[r * cols_], cols_};
    }

    /** Transposed copy. */
    Matrix transposed() const;

    /** Sum of |a_ij|. */
    double absSum() const;

    /** Frobenius norm. */
    double frobenius() const;

    bool operator==(const Matrix &other) const = default;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

/**
 * Binary keep/drop mask over a matrix (1 = keep), bit-packed.
 *
 * Storage is 64 elements per word, row-aligned: every row starts on a
 * word boundary (wordsPerRow() words per row) and the pad bits past the
 * last column of a row are always zero. That invariant makes the
 * defaulted operator== exact and lets nnz/overlap/agreement/hamming run
 * as word-wise popcounts without per-word tail masking.
 *
 * The element accessors keep the historical byte semantics: const
 * at(r, c) yields a uint8_t 0/1 and the mutable overload returns a
 * proxy assignable from any integer (non-zero sets the bit), so callers
 * written against the old byte-per-element Mask compile unchanged.
 */
class Mask
{
  public:
    /** Assignable proxy for a single mask bit. */
    class BitRef
    {
      public:
        BitRef(uint64_t *word, unsigned bit) : word_(word), bit_(bit) {}

        BitRef &
        operator=(uint8_t v)
        {
            const uint64_t m = uint64_t{1} << bit_;
            if (v != 0)
                *word_ |= m;
            else
                *word_ &= ~m;
            return *this;
        }

        BitRef &
        operator=(const BitRef &o)
        {
            return *this = static_cast<uint8_t>(o);
        }

        operator uint8_t() const
        {
            return static_cast<uint8_t>((*word_ >> bit_) & 1u);
        }

      private:
        uint64_t *word_;
        unsigned bit_;
    };

    Mask() = default;

    /** Construct a rows x cols mask, all dropped. */
    Mask(size_t rows, size_t cols);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return rows_ * cols_; }

    uint8_t
    at(size_t r, size_t c) const
    {
        return static_cast<uint8_t>(
            (words_[r * wpr_ + (c >> 6)] >> (c & 63)) & 1u);
    }

    BitRef
    at(size_t r, size_t c)
    {
        return {&words_[r * wpr_ + (c >> 6)],
                static_cast<unsigned>(c & 63)};
    }

    /** Bit at flat row-major index i, i.e. at(i / cols, i % cols). */
    uint8_t bit(size_t i) const { return at(i / cols_, i % cols_); }

    /** Row-major byte image (one 0/1 byte per element). */
    std::vector<uint8_t> toBytes() const;

    /** Packed words, row-aligned at wordsPerRow() words per row. */
    std::span<const uint64_t> words() const { return words_; }
    size_t wordsPerRow() const { return wpr_; }

    /** Up to 64 bits [c0, c0+len) of row r; bit 0 is column c0. */
    uint64_t
    rowBits(size_t r, size_t c0, size_t len) const
    {
        if (len == 0)
            return 0;
        const uint64_t *row = words_.data() + r * wpr_;
        const size_t w = c0 >> 6;
        const auto b = static_cast<unsigned>(c0 & 63);
        uint64_t bits = row[w] >> b;
        if (b != 0 && b + len > 64)
            bits |= row[w + 1] << (64u - b);
        return len >= 64 ? bits : bits & ((uint64_t{1} << len) - 1);
    }

    /** Overwrite bits [c0, c0+len) of row r from the low bits (len <= 64). */
    void
    setRowBits(size_t r, size_t c0, size_t len, uint64_t bits)
    {
        if (len == 0)
            return;
        if (len < 64)
            bits &= (uint64_t{1} << len) - 1;
        uint64_t *row = words_.data() + r * wpr_;
        const size_t w = c0 >> 6;
        const auto b = static_cast<unsigned>(c0 & 63);
        const size_t lo = len < 64 - b ? len : 64 - b;
        const uint64_t lo_mask =
            (lo == 64 ? ~uint64_t{0} : (uint64_t{1} << lo) - 1) << b;
        row[w] = (row[w] & ~lo_mask) | ((bits << b) & lo_mask);
        if (lo < len) {
            const uint64_t hi_mask = (uint64_t{1} << (len - lo)) - 1;
            row[w + 1] = (row[w + 1] & ~hi_mask) | ((bits >> lo) & hi_mask);
        }
    }

    /** Kept count in [c0, c0+len) of row r (len <= 64). */
    size_t
    rangeNnz(size_t r, size_t c0, size_t len) const
    {
        return static_cast<size_t>(std::popcount(rowBits(r, c0, len)));
    }

    /** Invoke f(c) for every kept column of row r, ascending. */
    template <typename F>
    void
    forEachSet(size_t r, F &&f) const
    {
        const uint64_t *row = words_.data() + r * wpr_;
        for (size_t w = 0; w < wpr_; ++w) {
            uint64_t bits = row[w];
            while (bits != 0) {
                f(w * 64 + static_cast<size_t>(std::countr_zero(bits)));
                bits &= bits - 1;
            }
        }
    }

    /** Invoke f(c) for every dropped column of row r, ascending. */
    template <typename F>
    void
    forEachDropped(size_t r, F &&f) const
    {
        const uint64_t *row = words_.data() + r * wpr_;
        for (size_t w = 0; w < wpr_; ++w) {
            uint64_t bits = ~row[w];
            if (w + 1 == wpr_ && (cols_ & 63) != 0)
                bits &= (uint64_t{1} << (cols_ & 63)) - 1;
            while (bits != 0) {
                f(w * 64 + static_cast<size_t>(std::countr_zero(bits)));
                bits &= bits - 1;
            }
        }
    }

    /** Number of kept (non-zero) positions. */
    size_t nnz() const;

    /** Fraction of dropped positions. */
    double sparsity() const;

    /** Positions whose keep/drop state differs from @p other's. */
    size_t hamming(const Mask &other) const;

    /** Kept positions agreeing with @p other, as a fraction of its nnz. */
    double overlap(const Mask &other) const;

    /**
     * Position-wise agreement with @p other (keeps and drops both
     * count): 1 - normalized Hamming/L1 distance. The paper's
     * mask-similarity metric (Fig. 4(b)).
     */
    double agreement(const Mask &other) const;

    /** Word-wise set combinators; shapes must match. */
    Mask &operator&=(const Mask &other);
    Mask &operator|=(const Mask &other);
    Mask &operator^=(const Mask &other);

    /** Transposed copy. */
    Mask transposed() const;

    bool operator==(const Mask &other) const = default;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t wpr_ = 0;
    std::vector<uint64_t> words_;
};

inline Mask
operator&(Mask a, const Mask &b)
{
    return a &= b;
}

inline Mask
operator|(Mask a, const Mask &b)
{
    return a |= b;
}

inline Mask
operator^(Mask a, const Mask &b)
{
    return a ^= b;
}

/** Element-wise product W .* mask; shapes must match. */
Matrix applyMask(const Matrix &w, const Mask &mask);

/** Reference dense GEMM: D = A x B (+ C when provided). */
Matrix matmul(const Matrix &a, const Matrix &b, const Matrix *c = nullptr);

/** Max |x - y| over all elements; shapes must match. */
double maxAbsDiff(const Matrix &x, const Matrix &y);

} // namespace tbstc::core

#endif // TBSTC_CORE_MATRIX_HPP
