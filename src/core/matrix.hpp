/**
 * @file
 * Dense matrix and binary mask containers shared by every subsystem.
 *
 * Conventions (paper Fig. 3(a)): in the SpMM D = A x B + C the sparse
 * operand A has shape rows x cols where @b cols is the reduction
 * dimension (contracted with B) and @b rows is the independent dimension
 * (survives into D). "Row-wise" N:M sparsity groups M consecutive
 * elements along a row (i.e. along the reduction dimension); "column-wise"
 * groups along a column (the independent dimension).
 */

#ifndef TBSTC_CORE_MATRIX_HPP
#define TBSTC_CORE_MATRIX_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tbstc::core {

/** Row-major dense float matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a rows x cols matrix of zeros. */
    Matrix(size_t rows, size_t cols);

    /** Construct from existing row-major data (size must match). */
    Matrix(size_t rows, size_t cols, std::vector<float> data);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }

    float &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    std::span<float> data() { return data_; }
    std::span<const float> data() const { return data_; }

    /** Mutable view of one row. */
    std::span<float> row(size_t r) { return {&data_[r * cols_], cols_}; }
    std::span<const float>
    row(size_t r) const
    {
        return {&data_[r * cols_], cols_};
    }

    /** Transposed copy. */
    Matrix transposed() const;

    /** Sum of |a_ij|. */
    double absSum() const;

    /** Frobenius norm. */
    double frobenius() const;

    bool operator==(const Matrix &other) const = default;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

/** Binary keep/drop mask over a matrix (1 = keep). */
class Mask
{
  public:
    Mask() = default;

    /** Construct a rows x cols mask, all dropped. */
    Mask(size_t rows, size_t cols);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    uint8_t &at(size_t r, size_t c) { return keep_[r * cols_ + c]; }
    uint8_t at(size_t r, size_t c) const { return keep_[r * cols_ + c]; }

    std::span<const uint8_t> data() const { return keep_; }

    /** Number of kept (non-zero) positions. */
    size_t nnz() const;

    /** Fraction of dropped positions. */
    double sparsity() const;

    /** Kept positions agreeing with @p other, as a fraction of its nnz. */
    double overlap(const Mask &other) const;

    /**
     * Position-wise agreement with @p other (keeps and drops both
     * count): 1 - normalized Hamming/L1 distance. The paper's
     * mask-similarity metric (Fig. 4(b)).
     */
    double agreement(const Mask &other) const;

    /** Transposed copy. */
    Mask transposed() const;

    bool operator==(const Mask &other) const = default;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<uint8_t> keep_;
};

/** Element-wise product W .* mask; shapes must match. */
Matrix applyMask(const Matrix &w, const Mask &mask);

/** Reference dense GEMM: D = A x B (+ C when provided). */
Matrix matmul(const Matrix &a, const Matrix &b, const Matrix *c = nullptr);

/** Max |x - y| over all elements; shapes must match. */
double maxAbsDiff(const Matrix &x, const Matrix &y);

} // namespace tbstc::core

#endif // TBSTC_CORE_MATRIX_HPP
