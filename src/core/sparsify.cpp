#include "sparsify.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <type_traits>

#include "kernels/kernels.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace tbstc::core {

using util::ensure;
using util::fatal;

namespace {

/**
 * Mark the top @p n of @p vals in @p keep (1 = kept). Deterministic
 * tie-break: higher score wins, then lower index — a strict total
 * order, so the top-n set is unique. The selection runs value-only:
 * nth_element over a float scratch copy finds the n-th largest score,
 * everything strictly above it is kept, and the remaining slots go to
 * the lowest-indexed elements tied with it. That reproduces exactly
 * the set the index-permuting formulation selects, without the
 * iota/indirect-comparator overhead. @p scratch is reused across calls
 * so per-tile selection never re-allocates.
 */
void
selectTopN(std::span<const float> vals, size_t n, std::span<uint8_t> keep,
           std::vector<float> &scratch)
{
    ensure(vals.size() == keep.size(), "selectTopN size mismatch");
    if (n >= vals.size()) {
        std::fill(keep.begin(), keep.end(), uint8_t{1});
        return;
    }
    if (n == 0) {
        std::fill(keep.begin(), keep.end(), uint8_t{0});
        return;
    }
    if (n + 1 == vals.size()) {
        // Dense end of the candidate ladder: drop only the worst
        // element — the minimum, ties resolved to the highest index
        // (the last element in the total order).
        size_t worst = 0;
        for (size_t i = 1; i < vals.size(); ++i)
            if (vals[i] <= vals[worst])
                worst = i;
        std::fill(keep.begin(), keep.end(), uint8_t{1});
        keep[worst] = 0;
        return;
    }
    scratch.assign(vals.begin(), vals.end());
    std::nth_element(scratch.begin(), scratch.begin() + (n - 1),
                     scratch.end(), std::greater<float>());
    const float threshold = scratch[n - 1];
    size_t ties = n;
    for (const float v : vals)
        ties -= v > threshold;
    for (size_t i = 0; i < vals.size(); ++i) {
        // setcc for the common above/below case; scores rarely collide
        // with the threshold exactly, so the tie branch predicts well.
        uint8_t k = vals[i] > threshold;
        if (vals[i] == threshold && ties > 0) {
            k = 1;
            --ties;
        }
        keep[i] = k;
    }
}

/** Target number of kept elements for a sparsity degree. */
size_t
targetNnz(size_t total, double sparsity)
{
    if (sparsity < 0.0 || sparsity > 1.0)
        fatal("sparsity degree {} is outside [0, 1]", sparsity);
    const double keep = (1.0 - sparsity) * static_cast<double>(total);
    return static_cast<size_t>(std::llround(keep));
}

/** One unit of the candidate-count fitting problem. */
struct FitUnit
{
    double ideal;  ///< Desired kept elements (from the US mask).
    size_t groups; ///< Number of N:M groups in the unit.
};

/**
 * Choose a per-unit N from @p candidates so each unit's kept count
 * (N * groups) tracks its unstructured ideal, then run a
 * largest-remainder promotion pass so the matrix total lands as close
 * to @p target_nnz as the candidate lattice allows. This implements
 * Alg. 1 step 2's "ensuring the overall sparsity meets the
 * predetermined target".
 */
std::vector<uint8_t>
fitCounts(std::span<const FitUnit> units,
          std::span<const uint8_t> candidates, size_t target_nnz)
{
    ensure(!candidates.empty(), "fitCounts requires candidates");
    std::vector<uint8_t> cand(candidates.begin(), candidates.end());
    std::sort(cand.begin(), cand.end());

    struct Promo
    {
        size_t unit;
        double frac;   ///< How far the ideal sits above the floor step.
        size_t gain;   ///< Elements added by promoting one step.
        uint8_t hi;    ///< Candidate reached by the promotion.
    };

    std::vector<uint8_t> n(units.size());
    std::vector<Promo> promos;
    long long total = 0;

    for (size_t u = 0; u < units.size(); ++u) {
        const double per_group =
            units[u].ideal / static_cast<double>(units[u].groups);
        // Bracket per_group between adjacent candidates.
        size_t hi_idx = 0;
        while (hi_idx < cand.size()
               && static_cast<double>(cand[hi_idx]) < per_group)
            ++hi_idx;
        const uint8_t hi =
            hi_idx < cand.size() ? cand[hi_idx] : cand.back();
        const uint8_t lo = hi_idx > 0 ? cand[hi_idx - 1] : cand.front();
        n[u] = lo;
        total += static_cast<long long>(lo) * units[u].groups;
        if (hi > lo) {
            const double frac = (per_group - lo) / (hi - lo);
            promos.push_back(
                {u, frac, (hi - lo) * units[u].groups, hi});
        }
    }

    long long deficit = static_cast<long long>(target_nnz) - total;
    std::sort(promos.begin(), promos.end(),
              [](const Promo &a, const Promo &b) {
                  if (a.frac != b.frac)
                      return a.frac > b.frac;
                  return a.unit < b.unit;
              });
    for (const auto &p : promos) {
        if (deficit <= 0)
            break;
        const auto gain = static_cast<long long>(p.gain);
        // Promote only when it brings the total closer to the target.
        if (std::llabs(deficit - gain) < deficit) {
            n[p.unit] = p.hi;
            deficit -= gain;
        }
    }
    return n;
}

void
checkBlockDivisibility(const Matrix &scores, size_t m)
{
    if (m == 0 || scores.rows() % m != 0 || scores.cols() % m != 0)
        fatal("matrix {}x{} is not divisible into {}x{} blocks; pad the "
              "workload to the block grid first",
              scores.rows(), scores.cols(), m, m);
}

/** Row-wise patterns only tile along rows; rows may be ragged. */
void
checkTileDivisibility(const Matrix &scores, size_t m)
{
    if (m == 0 || scores.cols() % m != 0)
        fatal("matrix {}x{} rows are not divisible into {}-element "
              "tiles; pad the workload first",
              scores.rows(), scores.cols(), m);
}

/**
 * Algorithm 1 step-2 input: per-block unstructured densities over the
 * M x M grid. Shared by the greedy and optimal TBS strategies so both
 * feed fitCounts identical units and end up with identical per-block N
 * — the strategies differ only in the step-3 mapper.
 */
std::vector<FitUnit>
tbsFitUnits(const Mask &us, size_t m, size_t block_rows, size_t block_cols)
{
    std::vector<FitUnit> units(block_rows * block_cols);
    util::parallelFor(block_rows, 0, [&](size_t begin, size_t end) {
        for (size_t br = begin; br < end; ++br) {
            for (size_t bc = 0; bc < block_cols; ++bc) {
                size_t nnz = 0;
                for (size_t r = 0; r < m; ++r)
                    for (size_t c0 = 0; c0 < m; c0 += 64)
                        nnz += us.rangeNnz(br * m + r, bc * m + c0,
                                           std::min<size_t>(64, m - c0));
                units[br * block_cols + bc] =
                    {static_cast<double>(nnz), m};
            }
        }
    });
    return units;
}

/**
 * Algorithm 1 step-3 worker over block-rows [begin, end).
 *
 * Instead of re-running a top-N selection per (N, dim) candidate, rank
 * every block element once within its row and its column under
 * (score desc, index asc) — the same strict total order selectTopN
 * uses, so "rank < N" reproduces its top-N set exactly — and build
 * prefix-overlap tables against the unstructured mask. Each
 * direction's L1 distance for any candidate N then reads off in O(1):
 * dist(N) = N*m + us_nnz - 2*overlap[N].
 *
 * @p m is either a plain size_t or std::integral_constant<size_t, 8>:
 * the dominant block size dispatches through the constant so every
 * m-bounded loop unrolls and the rank comparisons vectorize.
 */
template <typename MT>
void
tbsScoreBlockRows(const Matrix &scores, const Mask &us,
                  std::span<const uint8_t> n, size_t block_cols, MT m,
                  size_t begin, size_t end, TbsResult &out)
{
    [[maybe_unused]] const auto rank_kernel = kernels::active().rank8x8;
    std::vector<float> blk(m * m);
    std::vector<uint16_t> rank_row(m * m);
    std::vector<uint16_t> rank_col(m * m);
    std::vector<size_t> overlap_row(m + 1);
    std::vector<size_t> overlap_col(m + 1);
    for (size_t br = begin; br < end; ++br) {
        for (size_t bc = 0; bc < block_cols; ++bc) {
            const uint8_t nb = n[br * block_cols + bc];
            for (size_t r = 0; r < m; ++r) {
                const std::span<const float> src =
                    scores.row(br * m + r);
                std::copy_n(src.data() + bc * m, static_cast<size_t>(m),
                            &blk[r * m]);
            }
            if constexpr (!std::is_same_v<MT, size_t>) {
                static_assert(MT::value == 8);
                // The selectTopN-order rank oracle, dispatched to the
                // active ISA level (kernels/): both rank tables of the
                // whole 8x8 block in one call.
                rank_kernel(blk.data(), rank_row.data(),
                            rank_col.data());
            } else {
                // Bitwise |/& rather than short-circuit ||/&&: scores
                // are effectively random, so data-dependent branches
                // mispredict half the time.
                for (size_t r = 0; r < m; ++r) {
                    const float *row = &blk[r * m];
                    for (size_t c = 0; c < m; ++c) {
                        const float v = row[c];
                        unsigned rk = 0;
                        for (size_t c2 = 0; c2 < m; ++c2)
                            rk += static_cast<unsigned>(row[c2] > v)
                                | (static_cast<unsigned>(row[c2] == v)
                                   & static_cast<unsigned>(c2 < c));
                        rank_row[r * m + c] =
                            static_cast<uint16_t>(rk);
                    }
                }
                for (size_t c = 0; c < m; ++c) {
                    for (size_t r = 0; r < m; ++r) {
                        const float v = blk[r * m + c];
                        unsigned rk = 0;
                        for (size_t r2 = 0; r2 < m; ++r2)
                            rk += static_cast<unsigned>(
                                      blk[r2 * m + c] > v)
                                | (static_cast<unsigned>(
                                       blk[r2 * m + c] == v)
                                   & static_cast<unsigned>(r2 < r));
                        rank_col[r * m + c] =
                            static_cast<uint16_t>(rk);
                    }
                }
            }
            // overlap_dir[k]: US-kept positions whose in-group rank is
            // below k, i.e. |top-k mask AND us| for direction dir.
            std::fill(overlap_row.begin(), overlap_row.end(), size_t{0});
            std::fill(overlap_col.begin(), overlap_col.end(), size_t{0});
            size_t us_nnz = 0;
            for (size_t r = 0; r < m; ++r) {
                if (m <= 64) {
                    uint64_t bits = us.rowBits(br * m + r, bc * m, m);
                    us_nnz +=
                        static_cast<size_t>(std::popcount(bits));
                    while (bits != 0) {
                        const auto c = static_cast<size_t>(
                            std::countr_zero(bits));
                        bits &= bits - 1;
                        ++overlap_row[rank_row[r * m + c] + 1];
                        ++overlap_col[rank_col[r * m + c] + 1];
                    }
                } else {
                    for (size_t c = 0; c < m; ++c) {
                        if (us.at(br * m + r, bc * m + c)) {
                            ++us_nnz;
                            ++overlap_row[rank_row[r * m + c] + 1];
                            ++overlap_col[rank_col[r * m + c] + 1];
                        }
                    }
                }
            }
            for (size_t k = 1; k <= m; ++k) {
                overlap_row[k] += overlap_row[k - 1];
                overlap_col[k] += overlap_col[k - 1];
            }
            const size_t dist_row = nb * m + us_nnz - 2 * overlap_row[nb];
            const size_t dist_col = nb * m + us_nnz - 2 * overlap_col[nb];
            const bool use_row = dist_row <= dist_col;
            const auto &rank = use_row ? rank_row : rank_col;
            if (m <= 64) {
                for (size_t r = 0; r < m; ++r) {
                    uint64_t bits = 0;
                    for (size_t c = 0; c < m; ++c)
                        bits |= static_cast<uint64_t>(rank[r * m + c]
                                                      < nb)
                            << c;
                    out.mask.setRowBits(br * m + r, bc * m, m, bits);
                }
            } else {
                for (size_t r = 0; r < m; ++r)
                    for (size_t c = 0; c < m; ++c)
                        out.mask.at(br * m + r, bc * m + c) =
                            static_cast<uint8_t>(rank[r * m + c] < nb);
            }
            out.meta.block(br, bc) = {nb, use_row
                                              ? SparsityDim::Reduction
                                              : SparsityDim::Independent};
        }
    }
}

/** Reusable per-worker scratch of the optimal TBS block solver. */
struct OptScratch
{
    std::vector<uint8_t> usb;       ///< 0/1 unstructured bits, row-major.
    std::vector<float> blk;         ///< Block scores, row-major.
    std::vector<uint16_t> rank_row; ///< selectTopN-order rank within row.
    std::vector<uint16_t> rank_col; ///< ... within column.
    std::vector<uint16_t> inv_row;  ///< inv_row[r*m+rk] = column at rank rk.
    std::vector<uint16_t> inv_col;  ///< inv_col[c*m+rk] = row at rank rk.
    std::vector<size_t> overlap_row;
    std::vector<size_t> overlap_col;
    std::vector<size_t> row_us;     ///< US survivors per row.
    std::vector<size_t> col_us;     ///< ... per column.
    std::vector<size_t> col_used;   ///< Core occupancy per column.
    std::vector<uint8_t> core;      ///< Doubly-constrained kept core.
    std::vector<uint8_t> seen;      ///< DFS column marks.
    std::vector<uint8_t> keep;      ///< Final block mask, 0/1 bytes.
};

/**
 * Solve one M x M block to L1 optimality against the unstructured
 * mask (see tbsMaskOptimal's contract in sparsify.hpp). Fills
 * s.keep with the block's final 0/1 image and returns the declared
 * direction; @p improved reports whether the optimum strictly beat
 * the greedy mapper's distance, @p transposable whether the final
 * mask also meets the N cap in the *other* direction, @p augments
 * how many augmenting paths re-routed the matching core.
 */
SparsityDim
optimalBlockSolve(const Matrix &scores, const Mask &us, size_t br,
                  size_t bc, size_t m, uint8_t nb, OptScratch &s,
                  bool &improved, bool &transposable, size_t &augments)
{
    s.blk.resize(m * m);
    s.usb.assign(m * m, 0);
    s.rank_row.resize(m * m);
    s.rank_col.resize(m * m);
    s.inv_row.resize(m * m);
    s.inv_col.resize(m * m);
    s.overlap_row.assign(m + 1, 0);
    s.overlap_col.assign(m + 1, 0);
    s.row_us.assign(m, 0);
    s.col_us.assign(m, 0);

    size_t us_nnz = 0;
    for (size_t r = 0; r < m; ++r) {
        const std::span<const float> src = scores.row(br * m + r);
        std::copy_n(src.data() + bc * m, m, &s.blk[r * m]);
        for (size_t c0 = 0; c0 < m; c0 += 64) {
            const size_t len = std::min<size_t>(64, m - c0);
            uint64_t bits = us.rowBits(br * m + r, bc * m + c0, len);
            while (bits != 0) {
                const size_t c =
                    c0 + static_cast<size_t>(std::countr_zero(bits));
                bits &= bits - 1;
                s.usb[r * m + c] = 1;
                ++s.row_us[r];
                ++s.col_us[c];
                ++us_nnz;
            }
        }
    }

    // The greedy mapper's rank oracle, scalar: (score desc, index asc)
    // within each row and column — selectTopN's strict total order.
    for (size_t r = 0; r < m; ++r) {
        const float *row = &s.blk[r * m];
        for (size_t c = 0; c < m; ++c) {
            const float v = row[c];
            unsigned rk = 0;
            for (size_t c2 = 0; c2 < m; ++c2)
                rk += static_cast<unsigned>(row[c2] > v)
                    | (static_cast<unsigned>(row[c2] == v)
                       & static_cast<unsigned>(c2 < c));
            s.rank_row[r * m + c] = static_cast<uint16_t>(rk);
            s.inv_row[r * m + rk] = static_cast<uint16_t>(c);
        }
    }
    for (size_t c = 0; c < m; ++c) {
        for (size_t r = 0; r < m; ++r) {
            const float v = s.blk[r * m + c];
            unsigned rk = 0;
            for (size_t r2 = 0; r2 < m; ++r2)
                rk += static_cast<unsigned>(s.blk[r2 * m + c] > v)
                    | (static_cast<unsigned>(s.blk[r2 * m + c] == v)
                       & static_cast<unsigned>(r2 < r));
            s.rank_col[r * m + c] = static_cast<uint16_t>(rk);
            s.inv_col[c * m + rk] = static_cast<uint16_t>(r);
        }
    }

    // Greedy's distances, for the improved-block statistic.
    for (size_t r = 0; r < m; ++r) {
        for (size_t c = 0; c < m; ++c) {
            if (s.usb[r * m + c]) {
                ++s.overlap_row[s.rank_row[r * m + c] + 1];
                ++s.overlap_col[s.rank_col[r * m + c] + 1];
            }
        }
    }
    for (size_t k = 1; k <= m; ++k) {
        s.overlap_row[k] += s.overlap_row[k - 1];
        s.overlap_col[k] += s.overlap_col[k - 1];
    }
    const size_t g_row = nb * m + us_nnz - 2 * s.overlap_row[nb];
    const size_t g_col = nb * m + us_nnz - 2 * s.overlap_col[nb];
    const size_t greedy_dist = g_row <= g_col ? g_row : g_col;

    // The L1 optimum under the <=N constraint keeps unstructured
    // survivors only, min(us_g, N) per group of the chosen direction.
    size_t kept_row = 0;
    size_t kept_col = 0;
    for (size_t g = 0; g < m; ++g) {
        kept_row += std::min<size_t>(s.row_us[g], nb);
        kept_col += std::min<size_t>(s.col_us[g], nb);
    }
    const size_t opt_row = us_nnz - kept_row;
    const size_t opt_col = us_nnz - kept_col;
    const bool use_row = opt_row <= opt_col; // Greedy's tie-break too.
    improved = (use_row ? opt_row : opt_col) < greedy_dist;

    // Stage A: Hungarian-style augmenting-path b-matching of the
    // unstructured survivors under simultaneous row *and* column caps
    // of N — the doubly-constrained transposable core. Rows are
    // processed in index order and elements in rank order, so the
    // matching is deterministic and keeps the highest-scoring
    // survivors first.
    s.core.assign(m * m, 0);
    s.col_used.assign(m, 0);
    size_t steals = 0;
    // Free one unit of column c by re-routing a kept edge to a column
    // with spare capacity, recursively (the alternating-path DFS).
    auto stealCol = [&](auto &&self, size_t c) -> bool {
        for (size_t r2 = 0; r2 < m; ++r2) {
            if (!s.core[r2 * m + c])
                continue;
            for (size_t rk = 0; rk < m; ++rk) {
                const size_t c2 = s.inv_row[r2 * m + rk];
                if (c2 == c || !s.usb[r2 * m + c2]
                    || s.core[r2 * m + c2] || s.seen[c2])
                    continue;
                s.seen[c2] = 1;
                if (s.col_used[c2] < nb || self(self, c2)) {
                    s.core[r2 * m + c] = 0;
                    s.core[r2 * m + c2] = 1;
                    ++s.col_used[c2];
                    --s.col_used[c];
                    ++steals;
                    return true;
                }
            }
        }
        return false;
    };
    auto addOne = [&](size_t r) -> bool {
        for (size_t rk = 0; rk < m; ++rk) {
            const size_t c = s.inv_row[r * m + rk];
            if (!s.usb[r * m + c] || s.core[r * m + c] || s.seen[c])
                continue;
            s.seen[c] = 1;
            if (s.col_used[c] < nb || stealCol(stealCol, c)) {
                s.core[r * m + c] = 1;
                ++s.col_used[c];
                return true;
            }
        }
        return false;
    };
    for (size_t r = 0; r < m; ++r) {
        const size_t want = std::min<size_t>(s.row_us[r], nb);
        for (size_t have = 0; have < want; ++have) {
            s.seen.assign(m, 0);
            if (!addOne(r))
                break;
        }
    }

    // Stage B: top each declared-direction group up to its quota with
    // the best-ranked survivors outside the core. The choice cannot
    // change the L1 distance (every survivor costs the same), only how
    // transposable the final mask ends up.
    s.keep.assign(m * m, 0);
    if (use_row) {
        for (size_t r = 0; r < m; ++r) {
            const size_t quota = std::min<size_t>(s.row_us[r], nb);
            size_t got = 0;
            for (size_t c = 0; c < m; ++c) {
                if (s.core[r * m + c]) {
                    s.keep[r * m + c] = 1;
                    ++got;
                }
            }
            for (size_t rk = 0; rk < m && got < quota; ++rk) {
                const size_t c = s.inv_row[r * m + rk];
                if (s.usb[r * m + c] && !s.core[r * m + c]) {
                    s.keep[r * m + c] = 1;
                    ++got;
                }
            }
        }
    } else {
        for (size_t c = 0; c < m; ++c) {
            const size_t quota = std::min<size_t>(s.col_us[c], nb);
            size_t got = 0;
            for (size_t r = 0; r < m; ++r) {
                if (s.core[r * m + c]) {
                    s.keep[r * m + c] = 1;
                    ++got;
                }
            }
            for (size_t rk = 0; rk < m && got < quota; ++rk) {
                const size_t r = s.inv_col[c * m + rk];
                if (s.usb[r * m + c] && !s.core[r * m + c]) {
                    s.keep[r * m + c] = 1;
                    ++got;
                }
            }
        }
    }

    transposable = true;
    for (size_t g = 0; g < m && transposable; ++g) {
        size_t cross = 0;
        for (size_t i = 0; i < m; ++i)
            cross += use_row ? s.keep[i * m + g] : s.keep[g * m + i];
        transposable = cross <= nb;
    }
    augments = steals;
    return use_row ? SparsityDim::Reduction : SparsityDim::Independent;
}

/** Pack one row tile of 0/1 bytes into the mask (len <= 64). */
void
packTile(Mask &mask, size_t r, size_t c0, std::span<const uint8_t> keep)
{
    uint64_t bits = 0;
    for (size_t i = 0; i < keep.size(); ++i)
        bits |= static_cast<uint64_t>(keep[i] != 0) << i;
    mask.setRowBits(r, c0, keep.size(), bits);
}

/** Pack a row-major 0/1 byte image into the mask, 64 bytes per step. */
void
packBytes(Mask &mask, std::span<const uint8_t> keep)
{
    for (size_t r = 0; r < mask.rows(); ++r) {
        const uint8_t *src = keep.data() + r * mask.cols();
        for (size_t c0 = 0; c0 < mask.cols(); c0 += 64) {
            const size_t len = std::min<size_t>(64, mask.cols() - c0);
            packTile(mask, r, c0, {src + c0, len});
        }
    }
}

} // namespace

Mask
usMask(const Matrix &scores, double sparsity)
{
    const size_t k = targetNnz(scores.size(), sparsity);
    Mask mask(scores.rows(), scores.cols());
    std::vector<uint8_t> keep(scores.size());
    std::vector<float> scratch;
    selectTopN(scores.data(), k, keep, scratch);
    packBytes(mask, keep);
    return mask;
}

Mask
tsMask(const Matrix &scores, size_t n, size_t m)
{
    checkTileDivisibility(scores, m);
    ensure(n <= m, "tsMask requires n <= m");
    Mask mask(scores.rows(), scores.cols());
    std::vector<float> tile(m);
    std::vector<uint8_t> keep(m);
    std::vector<float> scratch;
    for (size_t r = 0; r < scores.rows(); ++r) {
        for (size_t t = 0; t < scores.cols(); t += m) {
            for (size_t i = 0; i < m; ++i)
                tile[i] = scores.at(r, t + i);
            selectTopN(tile, n, keep, scratch);
            if (m <= 64)
                packTile(mask, r, t, keep);
            else
                for (size_t i = 0; i < m; ++i)
                    mask.at(r, t + i) = keep[i];
        }
    }
    return mask;
}

Mask
rsvMask(const Matrix &scores, double sparsity, size_t m,
        std::span<const uint8_t> candidates)
{
    checkTileDivisibility(scores, m);
    const Mask us = usMask(scores, sparsity);
    const size_t target = targetNnz(scores.size(), sparsity);
    const size_t groups = scores.cols() / m;

    std::vector<FitUnit> units(scores.rows());
    for (size_t r = 0; r < scores.rows(); ++r) {
        size_t row_nnz = 0;
        for (size_t c = 0; c < scores.cols(); c += 64)
            row_nnz += us.rangeNnz(
                r, c, std::min<size_t>(64, scores.cols() - c));
        units[r] = {static_cast<double>(row_nnz), groups};
    }
    const std::vector<uint8_t> n = fitCounts(units, candidates, target);

    Mask mask(scores.rows(), scores.cols());
    std::vector<float> tile(m);
    std::vector<uint8_t> keep(m);
    std::vector<float> scratch;
    for (size_t r = 0; r < scores.rows(); ++r) {
        for (size_t t = 0; t < scores.cols(); t += m) {
            for (size_t i = 0; i < m; ++i)
                tile[i] = scores.at(r, t + i);
            selectTopN(tile, n[r], keep, scratch);
            if (m <= 64)
                packTile(mask, r, t, keep);
            else
                for (size_t i = 0; i < m; ++i)
                    mask.at(r, t + i) = keep[i];
        }
    }
    return mask;
}

Mask
rshMask(const Matrix &scores, double sparsity, size_t m,
        std::span<const uint8_t> /* candidates */)
{
    checkTileDivisibility(scores, m);
    const Mask us = usMask(scores, sparsity);
    const size_t target = targetNnz(scores.size(), sparsity);
    const size_t tiles_per_row = scores.cols() / m;

    // Super-groups of up to M row tiles. HighLight's hierarchy: keep T
    // of the super-group's tiles; surviving tiles are either dense (M:M)
    // or half-dense (M/2:M), mirroring the structure of paper Eq. (3).
    struct Super
    {
        size_t row;
        size_t tile0;     ///< First tile index in the row.
        size_t tiles;     ///< Tiles in this super-group (<= m).
        size_t us_nnz;
        uint8_t n0;       ///< Inner density: m or m/2.
    };
    std::vector<Super> supers;
    for (size_t r = 0; r < scores.rows(); ++r) {
        for (size_t t0 = 0; t0 < tiles_per_row; t0 += m) {
            Super s;
            s.row = r;
            s.tile0 = t0;
            s.tiles = std::min(m, tiles_per_row - t0);
            s.us_nnz = 0;
            for (size_t c = t0 * m; c < (t0 + s.tiles) * m; c += 64)
                s.us_nnz += us.rangeNnz(
                    r, c,
                    std::min<size_t>(64, (t0 + s.tiles) * m - c));
            // Inner density from the average kept-per-surviving-tile:
            // dense inner tiles when the super-group is lightly pruned.
            const double density = static_cast<double>(s.us_nnz)
                / static_cast<double>(s.tiles * m);
            s.n0 = density > 0.5 ? static_cast<uint8_t>(m)
                                  : static_cast<uint8_t>(m / 2);
            supers.push_back(s);
        }
    }

    // Fit the number of kept tiles T per super-group. Tile candidates
    // are the contiguous integers 0..tiles; reuse fitCounts by treating
    // each super-group as one unit of `tiles` groups with N in 0..1 ...
    // simpler: largest-remainder directly over tile counts.
    std::vector<size_t> t_count(supers.size());
    struct Promo
    {
        size_t unit;
        double frac;
        size_t gain;
    };
    std::vector<Promo> promos;
    long long total = 0;
    for (size_t u = 0; u < supers.size(); ++u) {
        const double ideal_tiles = static_cast<double>(supers[u].us_nnz)
            / static_cast<double>(supers[u].n0);
        const auto floor_t = static_cast<size_t>(
            std::min<double>(std::floor(ideal_tiles),
                             static_cast<double>(supers[u].tiles)));
        t_count[u] = floor_t;
        total += static_cast<long long>(floor_t) * supers[u].n0;
        if (floor_t < supers[u].tiles) {
            promos.push_back({u, ideal_tiles - static_cast<double>(floor_t),
                              supers[u].n0});
        }
    }
    long long deficit = static_cast<long long>(target) - total;
    std::sort(promos.begin(), promos.end(),
              [](const Promo &a, const Promo &b) {
                  if (a.frac != b.frac)
                      return a.frac > b.frac;
                  return a.unit < b.unit;
              });
    for (const auto &p : promos) {
        if (deficit <= 0)
            break;
        const auto gain = static_cast<long long>(p.gain);
        if (std::llabs(deficit - gain) < deficit) {
            ++t_count[p.unit];
            deficit -= gain;
        }
    }

    // Materialize: per super-group keep the T tiles with the largest
    // score mass, each at its inner density.
    Mask mask(scores.rows(), scores.cols());
    std::vector<float> tile(m);
    std::vector<uint8_t> keep(m);
    std::vector<float> scratch;
    for (size_t u = 0; u < supers.size(); ++u) {
        const Super &s = supers[u];
        std::vector<std::pair<double, size_t>> mass(s.tiles);
        for (size_t t = 0; t < s.tiles; ++t) {
            double sum = 0.0;
            for (size_t i = 0; i < m; ++i)
                sum += scores.at(s.row, (s.tile0 + t) * m + i);
            mass[t] = {sum, t};
        }
        std::sort(mass.begin(), mass.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first > b.first;
                      return a.second < b.second;
                  });
        for (size_t rank = 0; rank < t_count[u]; ++rank) {
            const size_t t = mass[rank].second;
            for (size_t i = 0; i < m; ++i)
                tile[i] = scores.at(s.row, (s.tile0 + t) * m + i);
            selectTopN(tile, s.n0, keep, scratch);
            if (m <= 64)
                packTile(mask, s.row, (s.tile0 + t) * m, keep);
            else
                for (size_t i = 0; i < m; ++i)
                    mask.at(s.row, (s.tile0 + t) * m + i) = keep[i];
        }
    }
    return mask;
}

TbsResult
tbsMask(const Matrix &scores, double sparsity, size_t m,
        std::span<const uint8_t> candidates)
{
    checkBlockDivisibility(scores, m);
    // Step 1: unstructured pruning at the target sparsity.
    const Mask us = usMask(scores, sparsity);
    const size_t target = targetNnz(scores.size(), sparsity);
    const size_t block_rows = scores.rows() / m;
    const size_t block_cols = scores.cols() / m;

    // Step 2: choose N per block from the unstructured block density.
    // Blocks are independent and write index-addressed slots, so the
    // density scan parallelizes; the largest-remainder promotion pass
    // inside fitCounts is a global ordered pass and stays serial.
    const std::vector<FitUnit> units =
        tbsFitUnits(us, m, block_rows, block_cols);
    const std::vector<uint8_t> n = fitCounts(units, candidates, target);

    // Step 3: per block, choose the pruning direction by L1 distance to
    // the unstructured block mask.
    TbsResult out;
    out.mask = Mask(scores.rows(), scores.cols());
    out.meta.m = m;
    out.meta.blockRows = block_rows;
    out.meta.blockCols = block_cols;
    out.meta.blocks.resize(block_rows * block_cols);

    // Workers own whole block-rows: different block-rows never share a
    // packed mask word, so the parallel materialization stays race-free
    // and index-addressed (bit-identical at any thread count). The
    // per-block scoring itself lives in tbsScoreBlockRows.
    util::parallelFor(block_rows, 0, [&](size_t begin, size_t end) {
        if (m == 8)
            tbsScoreBlockRows(scores, us, n, block_cols,
                              std::integral_constant<size_t, 8>{},
                              begin, end, out);
        else
            tbsScoreBlockRows(scores, us, n, block_cols, m, begin, end,
                              out);
    });
    // One word-wise XOR/popcount pass; maskSimilarity consumes this.
    out.usHamming = out.mask.hamming(us);
    return out;
}

TbsResult
tbsMaskOptimal(const Matrix &scores, double sparsity, size_t m,
               std::span<const uint8_t> candidates, TbsSearchStats *stats)
{
    checkBlockDivisibility(scores, m);
    // Steps 1 and 2 are shared with the greedy strategy verbatim: same
    // unstructured mask, same per-block N balance. Only the step-3
    // mapper differs.
    const Mask us = usMask(scores, sparsity);
    const size_t target = targetNnz(scores.size(), sparsity);
    const size_t block_rows = scores.rows() / m;
    const size_t block_cols = scores.cols() / m;
    const std::vector<FitUnit> units =
        tbsFitUnits(us, m, block_rows, block_cols);
    const std::vector<uint8_t> n = fitCounts(units, candidates, target);

    TbsResult out;
    out.mask = Mask(scores.rows(), scores.cols());
    out.meta.m = m;
    out.meta.blockRows = block_rows;
    out.meta.blockCols = block_cols;
    out.meta.blocks.resize(block_rows * block_cols);

    // Stats land in per-block-row slots and reduce serially below, so
    // the totals are bit-identical at any thread count, like the mask.
    std::vector<size_t> improved(block_rows, 0);
    std::vector<size_t> transposable(block_rows, 0);
    std::vector<size_t> augments(block_rows, 0);

    util::parallelFor(block_rows, 0, [&](size_t begin, size_t end) {
        OptScratch s;
        for (size_t br = begin; br < end; ++br) {
            for (size_t bc = 0; bc < block_cols; ++bc) {
                bool imp = false;
                bool trans = false;
                size_t aug = 0;
                const uint8_t nb = n[br * block_cols + bc];
                const SparsityDim dim = optimalBlockSolve(
                    scores, us, br, bc, m, nb, s, imp, trans, aug);
                if (m <= 64) {
                    for (size_t r = 0; r < m; ++r) {
                        uint64_t bits = 0;
                        for (size_t c = 0; c < m; ++c)
                            bits |= static_cast<uint64_t>(
                                        s.keep[r * m + c] != 0)
                                << c;
                        out.mask.setRowBits(br * m + r, bc * m, m, bits);
                    }
                } else {
                    for (size_t r = 0; r < m; ++r)
                        for (size_t c = 0; c < m; ++c)
                            out.mask.at(br * m + r, bc * m + c) =
                                s.keep[r * m + c];
                }
                out.meta.block(br, bc) = {nb, dim};
                improved[br] += imp;
                transposable[br] += trans;
                augments[br] += aug;
            }
        }
    });
    out.usHamming = out.mask.hamming(us);
    if (stats != nullptr) {
        *stats = {};
        stats->blocks = block_rows * block_cols;
        for (size_t br = 0; br < block_rows; ++br) {
            stats->improvedBlocks += improved[br];
            stats->transposableBlocks += transposable[br];
            stats->augmentations += augments[br];
        }
    }
    return out;
}

std::vector<uint8_t>
slideSparseCandidates(size_t m)
{
    if (m < 4 || m % 2 != 0 || m - 2 > 255)
        fatal("SlideSparse requires an even block size m = 2N with "
              "4 <= m <= 256; got {}",
              m);
    std::vector<uint8_t> c(m - 1);
    for (size_t n = 0; n <= m - 2; ++n)
        c[n] = static_cast<uint8_t>(n);
    return c;
}

Mask
ssMask(const Matrix &scores, double sparsity, size_t m)
{
    checkTileDivisibility(scores, m);
    const Mask us = usMask(scores, sparsity);
    const size_t target = targetNnz(scores.size(), sparsity);
    const size_t tiles_per_row = scores.cols() / m;
    const std::vector<uint8_t> cand = slideSparseCandidates(m);

    // One fit unit per tile. fitCounts brackets a tile's unstructured
    // density on the contiguous 0..m-2 ladder, so tiles denser than
    // the (2N-2):2N cap saturate at m-2 and the largest-remainder pass
    // spreads the shortfall across the rest of the matrix.
    std::vector<FitUnit> units(scores.rows() * tiles_per_row);
    for (size_t r = 0; r < scores.rows(); ++r) {
        for (size_t t = 0; t < tiles_per_row; ++t) {
            size_t nnz = 0;
            for (size_t c0 = 0; c0 < m; c0 += 64)
                nnz += us.rangeNnz(r, t * m + c0,
                                   std::min<size_t>(64, m - c0));
            units[r * tiles_per_row + t] = {static_cast<double>(nnz), 1};
        }
    }
    const std::vector<uint8_t> n = fitCounts(units, cand, target);

    Mask mask(scores.rows(), scores.cols());
    std::vector<float> tile(m);
    std::vector<uint8_t> keep(m);
    std::vector<float> scratch;
    for (size_t r = 0; r < scores.rows(); ++r) {
        for (size_t t = 0; t < tiles_per_row; ++t) {
            for (size_t i = 0; i < m; ++i)
                tile[i] = scores.at(r, t * m + i);
            selectTopN(tile, n[r * tiles_per_row + t], keep, scratch);
            if (m <= 64)
                packTile(mask, r, t * m, keep);
            else
                for (size_t i = 0; i < m; ++i)
                    mask.at(r, t * m + i) = keep[i];
        }
    }
    return mask;
}

Mask
patternMask(Pattern p, const Matrix &scores, double sparsity, size_t m,
            std::span<const uint8_t> candidates)
{
    switch (p) {
      case Pattern::Dense: {
        Mask mask(scores.rows(), scores.cols());
        for (size_t r = 0; r < mask.rows(); ++r)
            for (size_t c = 0; c < mask.cols(); ++c)
                mask.at(r, c) = 1;
        return mask;
      }
      case Pattern::US:
        return usMask(scores, sparsity);
      case Pattern::TS: {
        const auto n = static_cast<size_t>(
            std::llround((1.0 - sparsity) * static_cast<double>(m)));
        return tsMask(scores, std::min(n, m), m);
      }
      case Pattern::RSV:
        return rsvMask(scores, sparsity, m, candidates);
      case Pattern::RSH:
        return rshMask(scores, sparsity, m, candidates);
      case Pattern::TBS:
        return tbsMask(scores, sparsity, m, candidates).mask;
      case Pattern::SS:
        // SlideSparse draws per-tile counts from its own contiguous
        // ladder; the caller's candidate set does not apply.
        return ssMask(scores, sparsity, m);
    }
    util::panic("unknown Pattern");
}

bool
validateTbs(const Mask &mask, const TbsMeta &meta)
{
    const size_t m = meta.m;
    if (mask.rows() != meta.blockRows * m
        || mask.cols() != meta.blockCols * m)
        return false;
    for (size_t br = 0; br < meta.blockRows; ++br) {
        for (size_t bc = 0; bc < meta.blockCols; ++bc) {
            const BlockInfo &info = meta.block(br, bc);
            for (size_t g = 0; g < m; ++g) {
                size_t nnz = 0;
                for (size_t i = 0; i < m; ++i) {
                    const size_t r = info.dim == SparsityDim::Reduction
                        ? g : i;
                    const size_t c = info.dim == SparsityDim::Reduction
                        ? i : g;
                    nnz += mask.at(br * m + r, bc * m + c);
                }
                if (nnz > info.n)
                    return false;
            }
        }
    }
    return true;
}

bool
validateTs(const Mask &mask, size_t n, size_t m)
{
    if (mask.cols() % m != 0)
        return false;
    for (size_t r = 0; r < mask.rows(); ++r) {
        for (size_t t = 0; t < mask.cols(); t += m) {
            size_t nnz = 0;
            for (size_t i = 0; i < m; ++i)
                nnz += mask.at(r, t + i);
            if (nnz > n)
                return false;
        }
    }
    return true;
}

bool
validateSlideSparse(const Mask &mask, size_t m)
{
    if (m < 4 || m % 2 != 0 || mask.cols() % m != 0)
        return false;
    for (size_t r = 0; r < mask.rows(); ++r) {
        for (size_t t = 0; t < mask.cols(); t += m) {
            size_t nnz = 0;
            for (size_t c0 = 0; c0 < m; c0 += 64)
                nnz += mask.rangeNnz(r, t + c0,
                                     std::min<size_t>(64, m - c0));
            if (nnz > m - 2)
                return false;
        }
    }
    return true;
}

} // namespace tbstc::core
