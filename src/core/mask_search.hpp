/**
 * @file
 * Strategy-aware mask-search surface.
 *
 * tryMakeMask() is the primary entry point for producing a sparsity
 * mask: it validates a MaskRequest, dispatches the pattern family to
 * its generator, and — for TBS — routes the per-block search through a
 * pluggable strategy registry. Two strategies ship built in:
 *
 *   "greedy"  — paper Algorithm 1 (tbsMask): per block, rank-table
 *               top-N in each direction, keep the direction with the
 *               smaller L1 distance to the unstructured mask.
 *   "optimal" — TSENOR-style solver (tbsMaskOptimal): per block, the
 *               exact L1 optimum under the <=N constraint, with a
 *               Hungarian-style b-matching core. Never worse than
 *               greedy on any block; may undershoot the target nnz.
 *
 * Following the try*-primary convention (see serialize.hpp), the
 * function never throws for bad requests: it returns
 * Result<MaskOutput, MaskError> with a machine-readable error kind.
 * The free functions in sparsify.hpp remain available as byte-stable
 * legacy wrappers for callers that have already validated their
 * inputs.
 */

#ifndef TBSTC_CORE_MASK_SEARCH_HPP
#define TBSTC_CORE_MASK_SEARCH_HPP

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "matrix.hpp"
#include "pattern.hpp"
#include "sparsify.hpp"
#include "util/result.hpp"

namespace tbstc::core {

/** Names of the built-in TBS search strategies. */
inline constexpr const char *kGreedyStrategy = "greedy";
inline constexpr const char *kOptimalStrategy = "optimal";

/**
 * One mask request. `strategy` selects the TBS search strategy; the
 * empty string means the default ("greedy"). Known strategies are
 * accepted (and ignored) for non-TBS patterns, which each have a
 * single generator; an unknown strategy is always an error, so a typo
 * can never silently fall back to greedy. Empty `candidates` means
 * defaultCandidates(m).
 */
struct MaskRequest
{
    Pattern pattern = Pattern::TBS;
    std::string strategy;
    double sparsity = 0.5;
    size_t m = 8;
    std::vector<uint8_t> candidates;
};

/**
 * A produced mask plus everything the search learned on the way.
 * `meta` carries the per-block (N, dim) grid for TBS and is an empty
 * grid (blocks.empty()) for the other families; `usHamming` is the L1
 * distance to the same-sparsity unstructured mask for every family;
 * `stats` is filled by TBS strategies (greedy only reports blocks).
 */
struct MaskOutput
{
    Mask mask;
    TbsMeta meta;
    size_t usHamming = 0;
    TbsSearchStats stats;
};

/** Machine-readable class of a rejected MaskRequest. */
enum class MaskErrorKind : uint8_t
{
    UnknownStrategy, ///< Strategy name not in the registry.
    BadSparsity,     ///< Sparsity outside [0, 1].
    BadBlockSize,    ///< m == 0, or illegal for the pattern (SS parity).
    NotDivisible,    ///< Matrix does not tile by m as the pattern needs.
    BadCandidates,   ///< A candidate N exceeds m.
};

/** Stable name of a MaskErrorKind ("unknown_strategy", ...). */
const char *maskErrorKindName(MaskErrorKind kind);

/** Why a MaskRequest was rejected. */
struct MaskError
{
    MaskErrorKind kind = MaskErrorKind::UnknownStrategy;
    std::string message;
};

/**
 * A TBS search strategy: same contract as tbsMask/tbsMaskOptimal.
 * Inputs are pre-validated by tryMakeMask; the stats pointer may be
 * null.
 */
using MaskStrategyFn = std::function<TbsResult(
    const Matrix &scores, double sparsity, size_t m,
    std::span<const uint8_t> candidates, TbsSearchStats *stats)>;

/**
 * Register (or replace) a TBS search strategy under @p name. The two
 * built-ins are pre-registered; replacing them is allowed but dubious.
 * Thread-safe; names must be non-empty.
 */
void registerMaskStrategy(const std::string &name, MaskStrategyFn fn);

/** Whether @p name is a registered strategy ("" counts: the default). */
bool isMaskStrategy(const std::string &name);

/** Registered strategy names, sorted. */
std::vector<std::string> maskStrategyNames();

/**
 * Validate @p req and produce the mask. See the file comment for the
 * dispatch semantics; errors come back as a MaskError instead of a
 * thrown FatalError.
 */
util::Result<MaskOutput, MaskError> tryMakeMask(const Matrix &scores,
                                                const MaskRequest &req);

} // namespace tbstc::core

#endif // TBSTC_CORE_MASK_SEARCH_HPP
