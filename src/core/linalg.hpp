/**
 * @file
 * Dense linear algebra needed by the SparseGPT-style pruning criterion:
 * Cholesky factorization and SPD inversion of the activation Gram matrix.
 */

#ifndef TBSTC_CORE_LINALG_HPP
#define TBSTC_CORE_LINALG_HPP

#include "matrix.hpp"

namespace tbstc::core {

/**
 * Lower-triangular Cholesky factor L with A = L * L^T.
 * @param a Symmetric positive-definite matrix.
 * @note fatal() if @p a is not SPD (non-positive pivot).
 */
Matrix choleskyLower(const Matrix &a);

/** Upper-triangular Cholesky factor U with A = U^T * U. */
Matrix choleskyUpper(const Matrix &a);

/** Inverse of an SPD matrix via Cholesky. */
Matrix spdInverse(const Matrix &a);

/**
 * Gram matrix H = (1/n) X^T X + damp * mean(diag) * I from activation
 * samples X (n x features). This is the Hessian proxy used by
 * SparseGPT/OBS.
 */
Matrix gramFromActivations(const Matrix &x, double damp = 0.01);

/** Identity matrix of size n. */
Matrix identity(size_t n);

} // namespace tbstc::core

#endif // TBSTC_CORE_LINALG_HPP
