#include "mask_search.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "util/fmt.hpp"
#include "util/logging.hpp"

namespace tbstc::core {

using util::unexpected;

namespace {

struct Registry
{
    std::mutex mu;
    std::map<std::string, MaskStrategyFn> fns;
};

Registry &
registry()
{
    static Registry reg;
    static std::once_flag once;
    std::call_once(once, [] {
        reg.fns[kGreedyStrategy] =
            [](const Matrix &scores, double sparsity, size_t m,
               std::span<const uint8_t> candidates, TbsSearchStats *stats) {
                TbsResult r = tbsMask(scores, sparsity, m, candidates);
                if (stats != nullptr) {
                    *stats = {};
                    stats->blocks = r.meta.blocks.size();
                }
                return r;
            };
        reg.fns[kOptimalStrategy] =
            [](const Matrix &scores, double sparsity, size_t m,
               std::span<const uint8_t> candidates, TbsSearchStats *stats) {
                return tbsMaskOptimal(scores, sparsity, m, candidates,
                                      stats);
            };
    });
    return reg;
}

util::Unexpected<MaskError>
fail(MaskErrorKind kind, std::string message)
{
    return unexpected(MaskError{kind, std::move(message)});
}

} // namespace

const char *
maskErrorKindName(MaskErrorKind kind)
{
    switch (kind) {
      case MaskErrorKind::UnknownStrategy: return "unknown_strategy";
      case MaskErrorKind::BadSparsity:     return "bad_sparsity";
      case MaskErrorKind::BadBlockSize:    return "bad_block_size";
      case MaskErrorKind::NotDivisible:    return "not_divisible";
      case MaskErrorKind::BadCandidates:   return "bad_candidates";
    }
    util::panic("unknown MaskErrorKind");
}

void
registerMaskStrategy(const std::string &name, MaskStrategyFn fn)
{
    util::ensure(!name.empty(), "mask strategy name must be non-empty");
    util::ensure(static_cast<bool>(fn), "mask strategy fn must be set");
    Registry &reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    reg.fns[name] = std::move(fn);
}

bool
isMaskStrategy(const std::string &name)
{
    if (name.empty())
        return true; // The default strategy.
    Registry &reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    return reg.fns.contains(name);
}

std::vector<std::string>
maskStrategyNames()
{
    Registry &reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    std::vector<std::string> names;
    names.reserve(reg.fns.size());
    for (const auto &[name, fn] : reg.fns)
        names.push_back(name);
    return names;
}

util::Result<MaskOutput, MaskError>
tryMakeMask(const Matrix &scores, const MaskRequest &req)
{
    // Look the strategy up front even for non-TBS patterns: a typo'd
    // strategy must never silently degrade to the default.
    const std::string &strategy =
        req.strategy.empty() ? kGreedyStrategy : req.strategy;
    MaskStrategyFn fn;
    {
        Registry &reg = registry();
        const std::lock_guard<std::mutex> lock(reg.mu);
        const auto it = reg.fns.find(strategy);
        if (it == reg.fns.end())
            return fail(MaskErrorKind::UnknownStrategy,
                        util::formatStr("unknown mask strategy \"{}\"",
                                        strategy));
        fn = it->second;
    }

    if (!(req.sparsity >= 0.0 && req.sparsity <= 1.0))
        return fail(MaskErrorKind::BadSparsity,
                    util::formatStr("sparsity {} is outside [0, 1]",
                                    req.sparsity));
    if (req.m == 0)
        return fail(MaskErrorKind::BadBlockSize, "block size m is 0");
    if (req.pattern == Pattern::SS && (req.m < 4 || req.m % 2 != 0))
        return fail(
            MaskErrorKind::BadBlockSize,
            util::formatStr(
                "SlideSparse requires an even block size >= 4; got {}",
                req.m));

    const bool blockwise = req.pattern == Pattern::TBS;
    if (scores.cols() % req.m != 0
        || (blockwise && scores.rows() % req.m != 0))
        return fail(MaskErrorKind::NotDivisible,
                    util::formatStr(
                        "matrix {}x{} does not tile by m = {} as {} "
                        "requires; pad the workload first",
                        scores.rows(), scores.cols(), req.m,
                        patternName(req.pattern)));

    std::vector<uint8_t> candidates = req.candidates;
    if (candidates.empty())
        candidates = defaultCandidates(req.m);
    for (const uint8_t c : candidates) {
        if (c > req.m)
            return fail(MaskErrorKind::BadCandidates,
                        util::formatStr(
                            "candidate N = {} exceeds block size m = {}",
                            c, req.m));
    }

    MaskOutput out;
    if (req.pattern == Pattern::TBS) {
        TbsResult r =
            fn(scores, req.sparsity, req.m, candidates, &out.stats);
        out.mask = std::move(r.mask);
        out.meta = std::move(r.meta);
        out.usHamming = r.usHamming;
        return out;
    }
    // Single-generator families: a known strategy is accepted but has
    // nothing to select. Dense skips the Pattern::Dense sparsity==0
    // mismatch question entirely: its mask keeps everything.
    out.mask = patternMask(req.pattern, scores, req.sparsity, req.m,
                           candidates);
    out.meta.m = req.m;
    out.usHamming =
        out.mask.hamming(usMask(scores, req.sparsity));
    return out;
}

} // namespace tbstc::core
