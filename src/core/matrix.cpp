#include "matrix.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/kernels.hpp"
#include "util/logging.hpp"

namespace tbstc::core {

using util::ensure;

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data))
{
    ensure(data_.size() == rows * cols, "Matrix data size mismatch");
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

double
Matrix::absSum() const
{
    double sum = 0.0;
    for (float x : data_)
        sum += std::fabs(x);
    return sum;
}

double
Matrix::frobenius() const
{
    double sum = 0.0;
    for (float x : data_)
        sum += static_cast<double>(x) * x;
    return std::sqrt(sum);
}

Mask::Mask(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), wpr_((cols + 63) / 64),
      words_(rows * ((cols + 63) / 64), 0)
{
}

std::vector<uint8_t>
Mask::toBytes() const
{
    std::vector<uint8_t> out(rows_ * cols_);
    for (size_t r = 0; r < rows_; ++r) {
        uint8_t *dst = out.data() + r * cols_;
        const uint64_t *row = words_.data() + r * wpr_;
        for (size_t c = 0; c < cols_; ++c)
            dst[c] = static_cast<uint8_t>((row[c >> 6] >> (c & 63)) & 1u);
    }
    return out;
}

size_t
Mask::nnz() const
{
    return static_cast<size_t>(
        kernels::active().popcount(words_.data(), words_.size()));
}

double
Mask::sparsity() const
{
    if (size() == 0)
        return 0.0;
    return 1.0 - static_cast<double>(nnz()) / static_cast<double>(size());
}

size_t
Mask::hamming(const Mask &other) const
{
    ensure(rows_ == other.rows_ && cols_ == other.cols_,
           "Mask::hamming shape mismatch");
    return static_cast<size_t>(kernels::active().popcountXor(
        words_.data(), other.words_.data(), words_.size()));
}

double
Mask::overlap(const Mask &other) const
{
    ensure(rows_ == other.rows_ && cols_ == other.cols_,
           "Mask::overlap shape mismatch");
    const size_t other_nnz = other.nnz();
    if (other_nnz == 0)
        return 1.0;
    const auto agree = static_cast<size_t>(kernels::active().popcountAnd(
        words_.data(), other.words_.data(), words_.size()));
    return static_cast<double>(agree) / static_cast<double>(other_nnz);
}

double
Mask::agreement(const Mask &other) const
{
    ensure(rows_ == other.rows_ && cols_ == other.cols_,
           "Mask::agreement shape mismatch");
    if (size() == 0)
        return 1.0;
    const size_t same = size() - hamming(other);
    return static_cast<double>(same) / static_cast<double>(size());
}

Mask &
Mask::operator&=(const Mask &other)
{
    ensure(rows_ == other.rows_ && cols_ == other.cols_,
           "Mask::operator&= shape mismatch");
    kernels::active().andInplace(words_.data(), other.words_.data(),
                                 words_.size());
    return *this;
}

Mask &
Mask::operator|=(const Mask &other)
{
    ensure(rows_ == other.rows_ && cols_ == other.cols_,
           "Mask::operator|= shape mismatch");
    kernels::active().orInplace(words_.data(), other.words_.data(),
                                words_.size());
    return *this;
}

Mask &
Mask::operator^=(const Mask &other)
{
    ensure(rows_ == other.rows_ && cols_ == other.cols_,
           "Mask::operator^= shape mismatch");
    // Pad bits are zero on both sides, so XOR keeps the invariant.
    kernels::active().xorInplace(words_.data(), other.words_.data(),
                                 words_.size());
    return *this;
}

Mask
Mask::transposed() const
{
    Mask t(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        forEachSet(r, [&](size_t c) { t.at(c, r) = 1; });
    return t;
}

Matrix
applyMask(const Matrix &w, const Mask &mask)
{
    ensure(w.rows() == mask.rows() && w.cols() == mask.cols(),
           "applyMask shape mismatch");
    Matrix out(w.rows(), w.cols());
    for (size_t r = 0; r < w.rows(); ++r) {
        const std::span<const float> src = w.row(r);
        const std::span<float> dst = out.row(r);
        mask.forEachSet(r, [&](size_t c) { dst[c] = src[c]; });
    }
    return out;
}

Matrix
matmul(const Matrix &a, const Matrix &b, const Matrix *c)
{
    ensure(a.cols() == b.rows(), "matmul inner dimension mismatch");
    Matrix d(a.rows(), b.cols());
    if (c) {
        ensure(c->rows() == d.rows() && c->cols() == d.cols(),
               "matmul bias shape mismatch");
        d = *c;
    }
    for (size_t i = 0; i < a.rows(); ++i) {
        for (size_t k = 0; k < a.cols(); ++k) {
            const float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            for (size_t j = 0; j < b.cols(); ++j)
                d.at(i, j) += aik * b.at(k, j);
        }
    }
    return d;
}

double
maxAbsDiff(const Matrix &x, const Matrix &y)
{
    ensure(x.rows() == y.rows() && x.cols() == y.cols(),
           "maxAbsDiff shape mismatch");
    double m = 0.0;
    for (size_t i = 0; i < x.size(); ++i)
        m = std::max(m, std::fabs(static_cast<double>(x.data()[i])
                                  - y.data()[i]));
    return m;
}

} // namespace tbstc::core
