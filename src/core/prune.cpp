#include "prune.hpp"

#include <cmath>

#include "linalg.hpp"
#include "util/logging.hpp"

namespace tbstc::core {

using util::ensure;

std::string
criterionName(Criterion c)
{
    switch (c) {
      case Criterion::Magnitude: return "Magnitude";
      case Criterion::Wanda:     return "Wanda";
      case Criterion::SparseGpt: return "SparseGPT";
      case Criterion::Gradient:  return "Gradient";
    }
    util::panic("unknown Criterion");
}

Matrix
magnitudeScores(const Matrix &w)
{
    Matrix s(w.rows(), w.cols());
    for (size_t i = 0; i < w.size(); ++i)
        s.data()[i] = std::fabs(w.data()[i]);
    return s;
}

Matrix
wandaScores(const Matrix &w, std::span<const float> act_norm)
{
    ensure(act_norm.size() == w.cols(),
           "wandaScores: one activation norm per input feature required");
    Matrix s(w.rows(), w.cols());
    for (size_t r = 0; r < w.rows(); ++r)
        for (size_t c = 0; c < w.cols(); ++c)
            s.at(r, c) = std::fabs(w.at(r, c)) * act_norm[c];
    return s;
}

std::vector<float>
activationNorms(const Matrix &acts)
{
    std::vector<float> norms(acts.cols(), 0.0f);
    for (size_t s = 0; s < acts.rows(); ++s)
        for (size_t f = 0; f < acts.cols(); ++f)
            norms[f] += acts.at(s, f) * acts.at(s, f);
    for (auto &n : norms)
        n = std::sqrt(n);
    return norms;
}

Matrix
sparseGptScores(const Matrix &w, const Matrix &hinv)
{
    ensure(hinv.rows() == w.cols() && hinv.cols() == w.cols(),
           "sparseGptScores: H^-1 must be cols x cols");
    Matrix s(w.rows(), w.cols());
    for (size_t c = 0; c < w.cols(); ++c) {
        const float d = hinv.at(c, c);
        ensure(d > 0.0f, "sparseGptScores: non-positive H^-1 diagonal");
        for (size_t r = 0; r < w.rows(); ++r)
            s.at(r, c) = w.at(r, c) * w.at(r, c) / d;
    }
    return s;
}

void
obsCompensate(Matrix &w, const Mask &mask, const Matrix &hinv_upper)
{
    ensure(mask.rows() == w.rows() && mask.cols() == w.cols(),
           "obsCompensate: mask shape mismatch");
    ensure(hinv_upper.rows() == w.cols() && hinv_upper.cols() == w.cols(),
           "obsCompensate: Cholesky factor must be cols x cols");
    const size_t cols = w.cols();
    for (size_t r = 0; r < w.rows(); ++r) {
        mask.forEachDropped(r, [&](size_t j) {
            const float ujj = hinv_upper.at(j, j);
            const float err = w.at(r, j) / ujj;
            w.at(r, j) = 0.0f;
            for (size_t j2 = j + 1; j2 < cols; ++j2)
                w.at(r, j2) -= err * hinv_upper.at(j, j2);
        });
        // Zeroing happened as we swept; re-apply the mask so later
        // compensation cannot resurrect pruned positions.
        mask.forEachDropped(r, [&](size_t j) { w.at(r, j) = 0.0f; });
    }
}

Matrix
gradientScores(const Matrix &w, const Matrix &grad)
{
    ensure(grad.rows() == w.rows() && grad.cols() == w.cols(),
           "gradientScores: gradient shape mismatch");
    Matrix s(w.rows(), w.cols());
    for (size_t i = 0; i < w.size(); ++i)
        s.data()[i] = std::fabs(w.data()[i] * grad.data()[i]);
    return s;
}

Matrix
criterionScores(Criterion c, const Matrix &w, const Matrix &acts)
{
    switch (c) {
      case Criterion::Magnitude:
        return magnitudeScores(w);
      case Criterion::Wanda:
        return wandaScores(w, activationNorms(acts));
      case Criterion::SparseGpt: {
        const Matrix h = gramFromActivations(acts);
        return sparseGptScores(w, spdInverse(h));
      }
      case Criterion::Gradient:
        util::fatal("Gradient criterion needs an explicit gradient; "
                    "call gradientScores() directly");
    }
    util::panic("unknown Criterion");
}

} // namespace tbstc::core
