/**
 * @file
 * Pruning criteria (saliency scores) and one-shot weight compensation.
 *
 * The paper stresses that the sparsity *pattern* is orthogonal to the
 * pruning *criterion* (Sec. III-B note). We provide the three criteria
 * the evaluation uses: magnitude, Wanda, and a SparseGPT-style OBS
 * criterion with optional weight compensation.
 */

#ifndef TBSTC_CORE_PRUNE_HPP
#define TBSTC_CORE_PRUNE_HPP

#include <span>
#include <string>
#include <vector>

#include "matrix.hpp"

namespace tbstc::core {

/** Pruning criterion family. */
enum class Criterion : uint8_t
{
    Magnitude, ///< |W| (Han et al.).
    Wanda,     ///< |W| * ||X_j||_2 per input feature (Sun et al.).
    SparseGpt, ///< W^2 / diag(H^-1) (Frantar & Alistarh).
    Gradient,  ///< |W * dL/dW| first-order saliency (Taylor pruning).
};

/** Human-readable criterion name. */
std::string criterionName(Criterion c);

/** Magnitude saliency: score_ij = |w_ij|. */
Matrix magnitudeScores(const Matrix &w);

/**
 * Wanda saliency: score_ij = |w_ij| * ||X_j||_2, where @p act_norm[j]
 * is the L2 norm of input feature j over a calibration batch. The
 * weight matrix is rows x cols with cols = input features (reduction).
 */
Matrix wandaScores(const Matrix &w, std::span<const float> act_norm);

/** Per-feature L2 norms of a calibration activation batch (n x features). */
std::vector<float> activationNorms(const Matrix &acts);

/**
 * SparseGPT/OBS saliency: score_ij = w_ij^2 / [H^-1]_jj with H the
 * activation Gram matrix (see gramFromActivations()).
 */
Matrix sparseGptScores(const Matrix &w, const Matrix &hinv);

/**
 * First-order (Taylor) saliency: score_ij = |w_ij * g_ij| where
 * @p grad is the loss gradient w.r.t. the weights. The paper lists
 * gradient-based criteria among the orthogonal choices TBS composes
 * with.
 */
Matrix gradientScores(const Matrix &w, const Matrix &grad);

/**
 * SparseGPT column-sequential weight compensation.
 *
 * After a mask has been chosen, sweeps columns left to right; for each
 * pruned weight w_ij the remaining columns j' > j of row i absorb the
 * OBS update -w_ij / U_jj * U_j,j' where U is the upper Cholesky factor
 * of H^-1. This is the error-compensation step that makes SparseGPT
 * one-shot pruning accurate.
 *
 * @param w Weight matrix; updated in place (pruned entries zeroed).
 * @param mask Keep mask (1 = keep).
 * @param hinv_upper Upper Cholesky factor of the inverse Gram matrix.
 */
void obsCompensate(Matrix &w, const Mask &mask, const Matrix &hinv_upper);

/**
 * Compute criterion scores with the auxiliary statistics each criterion
 * needs derived from a calibration batch @p acts (n x features).
 * Magnitude ignores @p acts.
 */
Matrix criterionScores(Criterion c, const Matrix &w, const Matrix &acts);

} // namespace tbstc::core

#endif // TBSTC_CORE_PRUNE_HPP
