#include "pattern.hpp"

#include "util/logging.hpp"

namespace tbstc::core {

std::string
patternName(Pattern p)
{
    switch (p) {
      case Pattern::Dense: return "Dense";
      case Pattern::US:    return "US";
      case Pattern::TS:    return "TS";
      case Pattern::RSV:   return "RS-V";
      case Pattern::RSH:   return "RS-H";
      case Pattern::TBS:   return "TBS";
      case Pattern::SS:    return "SS";
    }
    util::panic("unknown Pattern");
}

std::string
dimName(SparsityDim d)
{
    return d == SparsityDim::Reduction ? "row" : "col";
}

std::vector<uint8_t>
defaultCandidates(size_t m)
{
    // Powers of two up to M, plus the empty block: {0, 1, 2, 4, ..., M}.
    std::vector<uint8_t> c{0};
    for (size_t n = 1; n <= m; n *= 2)
        c.push_back(static_cast<uint8_t>(n));
    return c;
}

} // namespace tbstc::core
