#include "maskspace.hpp"

#include <bit>
#include <cmath>
#include <vector>

#include "util/combinatorics.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace tbstc::core {

using util::ensure;
using util::log2Choose;
using util::log2SumExp2;

namespace {

/** k = log2 M; the paper's power-of-two N ladder runs i = 0..k. */
size_t
log2OfM(size_t m)
{
    ensure(m > 0 && std::has_single_bit(m),
           "mask-space formulas require a power-of-two M");
    return static_cast<size_t>(std::countr_zero(m));
}

} // namespace

double
log2MaskSpaceTs(size_t x, size_t y, size_t m)
{
    const size_t k = log2OfM(m);
    const double tiles = static_cast<double>(x) * y / m;
    std::vector<double> terms;
    for (size_t i = 0; i <= k; ++i)
        terms.push_back(tiles * log2Choose(m, double(1ull << i)));
    return log2SumExp2(terms);
}

double
log2MaskSpaceRsv(size_t x, size_t y, size_t m)
{
    const size_t k = log2OfM(m);
    const double tiles_per_row = static_cast<double>(y) / m;
    std::vector<double> terms;
    for (size_t i = 0; i <= k; ++i)
        terms.push_back(tiles_per_row * log2Choose(m, double(1ull << i)));
    return static_cast<double>(x) * log2SumExp2(terms);
}

double
log2MaskSpaceRsh(size_t x, size_t y, size_t m)
{
    const double xy = static_cast<double>(x) * y;
    std::vector<double> terms;
    for (size_t i = m; i < 2 * m; ++i) {
        const double reps = xy / (static_cast<double>(i) * m);
        const double inner = log2Choose(double(i), double(m))
            + static_cast<double>(m) * log2Choose(m, double(m) / 2.0);
        terms.push_back(reps * inner);
        terms.push_back(1.0 + reps * log2Choose(double(i), double(m)));
    }
    return log2SumExp2(terms);
}

double
log2MaskSpaceTbs(size_t x, size_t y, size_t m)
{
    const size_t k = log2OfM(m);
    std::vector<double> terms;
    for (size_t i = 0; i <= k; ++i) {
        terms.push_back(1.0 + static_cast<double>(m)
                        * log2Choose(m, double(1ull << i)));
    }
    const double per_block = log2SumExp2(terms);
    const double blocks =
        static_cast<double>(x) * y / (static_cast<double>(m) * m);
    return blocks * per_block;
}

double
log2MaskSpaceUs(size_t x, size_t y)
{
    return static_cast<double>(x) * y;
}

double
log2MaskSpaceSs(size_t x, size_t y, size_t m)
{
    ensure(m >= 4 && m % 2 == 0,
           "SlideSparse mask-space requires an even M >= 4");
    const double tiles = static_cast<double>(x) * y / m;
    // Count in log space via the complement: 2^M tile masks minus the
    // M+1 over-dense ones. exp2(M) stays exact in double through
    // M = 52, far past any practical tile width.
    const double per_tile =
        std::log2(std::exp2(static_cast<double>(m))
                  - static_cast<double>(m) - 1.0);
    return tiles * per_tile;
}

double
log2MaskSpace(Pattern p, size_t x, size_t y, size_t m)
{
    switch (p) {
      case Pattern::US:  return log2MaskSpaceUs(x, y);
      case Pattern::TS:  return log2MaskSpaceTs(x, y, m);
      case Pattern::RSV: return log2MaskSpaceRsv(x, y, m);
      case Pattern::RSH: return log2MaskSpaceRsh(x, y, m);
      case Pattern::TBS: return log2MaskSpaceTbs(x, y, m);
      case Pattern::SS:  return log2MaskSpaceSs(x, y, m);
      case Pattern::Dense: return 0.0;
    }
    util::panic("unknown Pattern");
}

uint64_t
bruteForceTbsBlockMasks(size_t m)
{
    ensure(m <= 4, "bruteForceTbsBlockMasks is exponential; m <= 4 only");
    const size_t bits = m * m;
    const size_t k = log2OfM(m);

    // A mask belongs to the block space when some candidate N makes
    // every row exactly-N (reduction dir) or every column exactly-N
    // (independent dir). The paper's per-block space keeps exactly
    // N per group for the chosen N.
    const auto in_space = [&](uint64_t mask) {
        for (size_t i = 0; i <= k; ++i) {
            const uint64_t n = 1ull << i;
            bool row_ok = true;
            bool col_ok = true;
            for (size_t g = 0; g < m; ++g) {
                uint64_t row_nnz = 0;
                uint64_t col_nnz = 0;
                for (size_t e = 0; e < m; ++e) {
                    row_nnz += (mask >> (g * m + e)) & 1ull;
                    col_nnz += (mask >> (e * m + g)) & 1ull;
                }
                row_ok = row_ok && row_nnz == n;
                col_ok = col_ok && col_nnz == n;
            }
            if (row_ok || col_ok)
                return true;
        }
        return false;
    };

    // The loop enumerates distinct mask values, so membership counting
    // needs no dedup set; chunks count independently and sum exactly.
    return util::orderedReduce<uint64_t>(
        size_t{1} << bits, 4096, 0,
        [&](size_t begin, size_t end) {
            uint64_t count = 0;
            for (uint64_t mask = begin; mask < end; ++mask)
                count += in_space(mask);
            return count;
        },
        [](uint64_t acc, uint64_t c) { return acc + c; });
}

uint64_t
bruteForceTileMasks(size_t m, size_t n)
{
    ensure(m <= 20, "bruteForceTileMasks: m too large");
    uint64_t count = 0;
    for (uint64_t mask = 0; mask < (1ull << m); ++mask)
        count += static_cast<size_t>(std::popcount(mask)) == n;
    return count;
}

} // namespace tbstc::core
