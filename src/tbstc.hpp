/**
 * @file
 * Umbrella header: the TB-STC library's public API surface.
 *
 * Including this header pulls in every stable entry point. Library
 * consumers (examples/, external embedders) should include this one
 * header rather than reaching into subdirectory headers, whose
 * internals may be rearranged between releases.
 *
 * # API tiers
 *
 * The **primary** API for fallible operations is the Result-returning
 * `try*` surface — it never throws or aborts on bad input and carries
 * a structured error describing exactly what went wrong:
 *
 *   - core::tryMakeMask()          strategy-aware mask search
 *   - format::tryDeserializeDdc()  parse an untrusted DDC byte stream
 *   - format::tryDecodeBlock()     codec-convert an untrusted block
 *   - format::ddcLayout()          locate sections in a DDC stream
 *   - util::FlagSet::parse()       typed command-line parsing
 *
 * The abort-wrapping variants (format::deserializeDdc(),
 * format::convertToComputation()) are **legacy** conveniences for
 * callers that treat bad input as fatal; they throw util::FatalError /
 * util::PanicError on the same inputs the try* functions report
 * structurally. New code should prefer the try* surface.
 *
 * Infallible modelling entry points (accel::runLayer(),
 * sim::simulateLayer(), core::tbsMask(), ...) validate their
 * configuration with util::ensure() and are part of the primary API.
 *
 * # Observability
 *
 * The obs:: layer (metrics + chrome://tracing spans) is compiled in by
 * default but off at runtime; see docs/observability.md. Enable with
 * obs::setMetricsEnabled() / obs::setTracingEnabled().
 */

#ifndef TBSTC_TBSTC_HPP
#define TBSTC_TBSTC_HPP

// Utilities: error handling, formatting, parallelism, CLI flags.
#include "util/flags.hpp"
#include "util/fmt.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

// Observability: deterministic metrics + event tracing.
#include "obs/obs.hpp"

// Sparsity core: masks, patterns, pruning, strategy-aware search.
#include "core/blockstats.hpp"
#include "core/mask_search.hpp"
#include "core/maskspace.hpp"
#include "core/matrix.hpp"
#include "core/pattern.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"

// Storage formats: encodings, DDC serialization, codec unit.
#include "format/codec.hpp"
#include "format/decode_error.hpp"
#include "format/encoding.hpp"
#include "format/serialize.hpp"

// Simulator: architecture config, cycle models, energy.
#include "sim/config.hpp"
#include "sim/cyclesim.hpp"
#include "sim/dram.hpp"
#include "sim/dram_detail.hpp"
#include "sim/dvpe.hpp"
#include "sim/energy.hpp"
#include "sim/pipeline.hpp"
#include "sim/profile.hpp"
#include "sim/scheduler.hpp"

// Workloads: model zoo, synthetic weights, profiles.
#include "workload/graph.hpp"
#include "workload/models.hpp"
#include "workload/profile_builder.hpp"
#include "workload/synth.hpp"

// Accelerator presets and end-to-end runs.
#include "accel/accelerator.hpp"

// NN stack: sparse training and one-shot pruning experiments.
#include "nn/oneshot.hpp"
#include "nn/sparse_train.hpp"

#endif // TBSTC_TBSTC_HPP
