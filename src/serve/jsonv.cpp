#include "jsonv.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tbstc::serve {

namespace {

const JsonValue &
nullValue()
{
    static const JsonValue v;
    return v;
}

const std::string &
emptyString()
{
    static const std::string s;
    return s;
}

const JsonValue::Object &
emptyObject()
{
    static const JsonValue::Object o;
    return o;
}

const JsonValue::Array &
emptyArray()
{
    static const JsonValue::Array a;
    return a;
}

/** Recursive-descent parser over one string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    util::Result<JsonValue, JsonError>
    document()
    {
        skipWs();
        auto v = value(0);
        if (!v)
            return util::unexpected(v.error());
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing bytes after JSON value");
        return std::move(*v);
    }

  private:
    util::Result<JsonValue, JsonError>
    fail(std::string msg) const
    {
        return util::unexpected(JsonError{pos_, std::move(msg)});
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    util::Result<JsonValue, JsonError>
    value(size_t depth)
    {
        if (depth > kJsonMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return object(depth);
        if (c == '[')
            return array(depth);
        if (c == '"') {
            auto s = string();
            if (!s)
                return util::unexpected(s.error());
            return JsonValue::makeString(std::move(*s));
        }
        if (literal("true"))
            return JsonValue::makeBool(true);
        if (literal("false"))
            return JsonValue::makeBool(false);
        if (literal("null"))
            return JsonValue();
        return number();
    }

    util::Result<JsonValue, JsonError>
    number()
    {
        const size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E' || text_[pos_] == '+'
                   || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("invalid value");
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || !std::isfinite(v)) {
            pos_ = start;
            return fail("invalid number '" + token + "'");
        }
        return JsonValue::makeNumber(v);
    }

    util::Result<std::string, JsonError>
    string()
    {
        if (!consume('"'))
            return util::unexpected(JsonError{pos_, "expected string"});
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                return util::unexpected(JsonError{pos_ - 1,
                              "unescaped control character in string"});
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return util::unexpected(JsonError{pos_, "truncated \\u escape"});
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return util::unexpected(JsonError{pos_ - 1, "bad \\u escape digit"});
                }
                // UTF-8 encode the BMP code point (surrogate pairs in
                // request payloads are not expected; a lone surrogate
                // encodes as its raw 3-byte form, which round-trips).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return util::unexpected(JsonError{pos_ - 1, "unknown escape"});
            }
        }
        return util::unexpected(JsonError{pos_, "unterminated string"});
    }

    util::Result<JsonValue, JsonError>
    object(size_t depth)
    {
        consume('{');
        JsonValue::Object members;
        skipWs();
        if (consume('}'))
            return JsonValue::makeObject(std::move(members));
        for (;;) {
            skipWs();
            auto key = string();
            if (!key)
                return util::unexpected(key.error());
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after object key");
            skipWs();
            auto v = value(depth + 1);
            if (!v)
                return v;
            members.insert_or_assign(std::move(*key), std::move(*v));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return JsonValue::makeObject(std::move(members));
            return fail("expected ',' or '}' in object");
        }
    }

    util::Result<JsonValue, JsonError>
    array(size_t depth)
    {
        consume('[');
        JsonValue::Array items;
        skipWs();
        if (consume(']'))
            return JsonValue::makeArray(std::move(items));
        for (;;) {
            skipWs();
            auto v = value(depth + 1);
            if (!v)
                return v;
            items.push_back(std::move(*v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return JsonValue::makeArray(std::move(items));
            return fail("expected ',' or ']' in array");
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
};

} // namespace

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.type_ = Type::Number;
    v.num_ = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.type_ = Type::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeObject(Object o)
{
    JsonValue v;
    v.type_ = Type::Object;
    v.obj_ = std::move(o);
    return v;
}

JsonValue
JsonValue::makeArray(Array a)
{
    JsonValue v;
    v.type_ = Type::Array;
    v.arr_ = std::move(a);
    return v;
}

bool
JsonValue::asBool(bool dflt) const
{
    return type_ == Type::Bool ? bool_ : dflt;
}

double
JsonValue::asNumber(double dflt) const
{
    return type_ == Type::Number ? num_ : dflt;
}

const std::string &
JsonValue::asString() const
{
    return type_ == Type::String ? str_ : emptyString();
}

const JsonValue::Object &
JsonValue::asObject() const
{
    return type_ == Type::Object ? obj_ : emptyObject();
}

const JsonValue::Array &
JsonValue::asArray() const
{
    return type_ == Type::Array ? arr_ : emptyArray();
}

const JsonValue &
JsonValue::get(std::string_view name) const
{
    if (type_ != Type::Object)
        return nullValue();
    const auto it = obj_.find(name);
    return it == obj_.end() ? nullValue() : it->second;
}

bool
JsonValue::has(std::string_view name) const
{
    return type_ == Type::Object && obj_.find(name) != obj_.end();
}

util::Result<JsonValue, JsonError>
parseJson(std::string_view text)
{
    return Parser(text).document();
}

std::string
jsonQuote(std::string_view s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    if (v == static_cast<double>(static_cast<long long>(v))
        && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace tbstc::serve
