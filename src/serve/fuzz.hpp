/**
 * @file
 * Seeded adversarial protocol fuzzer for the serve daemon
 * (`tbstc fuzz`, the ServeFuzz tests, and CI's serve-smoke job).
 *
 * Drives sessions of corrupted frames — built by util::FaultInjector
 * over real serialized requests — against a live daemon and checks
 * the robustness contract from docs/serving.md:
 *
 *  - the daemon never crashes or hangs, whatever bytes arrive;
 *  - corruption that keeps the length-prefix framing intact (bit
 *    flips, truncated/garbage JSON, trailing bytes) is answered with
 *    a typed error and the session keeps working: well-formed
 *    requests sent afterwards on the same connection receive
 *    byte-identical responses to a clean connection's;
 *  - corruption that desynchronizes framing (length-prefix lies,
 *    oversize or zero prefixes, raw garbage, mid-frame disconnects)
 *    costs only that connection — a reconnect gets full service.
 *
 * Probe requests cover three geometries (ping, run, sparsify) so the
 * contract is checked across the inline, simulation, and DDC paths.
 * Everything derives from one seed: a failing run is replayable.
 */

#ifndef TBSTC_SERVE_FUZZ_HPP
#define TBSTC_SERVE_FUZZ_HPP

#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace tbstc::serve {

struct FuzzOptions
{
    /** Unix socket path; empty → TCP to 127.0.0.1:port. */
    std::string socketPath;
    uint16_t port = 0;

    uint64_t seed = 1;           ///< Derives every mutation.
    size_t sessions = 125;       ///< Connections fuzzed.
    size_t framesPerSession = 8; ///< Mutated frames per session.
};

struct FuzzStats
{
    uint64_t sessions = 0;       ///< Sessions completed.
    uint64_t mutatedFrames = 0;  ///< Corrupted frames delivered.
    uint64_t responses = 0;      ///< Replies to framing-safe frames.
    uint64_t reconnects = 0;     ///< Reconnects after a desync.
    uint64_t probes = 0;         ///< Well-formed probe requests sent.
    uint64_t probeMismatches = 0; ///< Probe replies != clean reference.
};

/**
 * Run the fuzz campaign against a live daemon. An error return means
 * the harness could not run (connect failure, reference capture
 * failure) — contract violations are reported in probeMismatches, not
 * as errors, so callers can assert on them explicitly.
 */
util::Result<FuzzStats, std::string>
runProtocolFuzz(const FuzzOptions &opts);

/** Render @p s as the stable tbstc.fuzz.v1 JSON document. */
std::string fuzzJson(const FuzzStats &s);

} // namespace tbstc::serve

#endif // TBSTC_SERVE_FUZZ_HPP
