#include "config.hpp"

#include <cmath>

#include "jsonv.hpp"

namespace tbstc::serve {

namespace {

/** "'<name>' must be ..." — built by append, not operator+ chains
 *  (g++ 12's -Wrestrict false-fires on the temporary chain). */
std::string
fieldError(std::string_view name, std::string_view what)
{
    std::string msg("'");
    msg += name;
    msg += "' must be ";
    msg += what;
    return msg;
}

/** Read an optional non-negative integer field into @p out. */
util::Result<bool, std::string>
u64Limit(const JsonValue &v, std::string_view name, uint64_t &out)
{
    if (!v.has(name))
        return false;
    const JsonValue &f = v.get(name);
    const double d = f.asNumber(-1.0);
    if (f.type() != JsonValue::Type::Number || d < 0.0
        || d != std::floor(d) || d > 9.007199254740992e15)
        return util::unexpected(
            fieldError(name, "a non-negative integer"));
    out = static_cast<uint64_t>(d);
    return true;
}

/** Read an optional non-negative number field into @p out. */
util::Result<bool, std::string>
numLimit(const JsonValue &v, std::string_view name, double &out)
{
    if (!v.has(name))
        return false;
    const JsonValue &f = v.get(name);
    const double d = f.asNumber(-1.0);
    if (f.type() != JsonValue::Type::Number || !(d >= 0.0))
        return util::unexpected(
            fieldError(name, "a non-negative number"));
    out = d;
    return true;
}

} // namespace

util::Result<ServeLimits, std::string>
parseLimits(std::string_view json, const ServeLimits &base)
{
    const auto doc = parseJson(json);
    if (!doc)
        return util::unexpected(
            "invalid JSON at byte " + std::to_string(doc.error().offset)
            + ": " + doc.error().message);
    if (!doc->isObject())
        return util::unexpected(
            std::string("limits must be a JSON object"));

    ServeLimits l = base;
    uint64_t u = 0;
    const JsonValue &v = *doc;

    if (auto r = u64Limit(v, "queue_capacity", u); !r)
        return util::unexpected(r.error());
    else if (*r)
        l.queueCapacity = static_cast<size_t>(u > 0 ? u : 1);
    if (auto r = u64Limit(v, "retry_after_ms", l.retryAfterMs); !r)
        return util::unexpected(r.error());
    if (auto r = u64Limit(v, "idle_timeout_ms", l.idleTimeoutMs); !r)
        return util::unexpected(r.error());
    if (auto r = u64Limit(v, "read_timeout_ms", l.readTimeoutMs); !r)
        return util::unexpected(r.error());
    if (auto r = u64Limit(v, "write_timeout_ms", l.writeTimeoutMs); !r)
        return util::unexpected(r.error());
    if (auto r = u64Limit(v, "max_connections", u); !r)
        return util::unexpected(r.error());
    else if (*r)
        l.maxConnections = static_cast<size_t>(u);
    if (auto r = numLimit(v, "rate_per_sec", l.ratePerSec); !r)
        return util::unexpected(r.error());
    if (auto r = numLimit(v, "rate_burst", l.rateBurst); !r)
        return util::unexpected(r.error());
    if (auto r = u64Limit(v, "max_inflight", u); !r)
        return util::unexpected(r.error());
    else if (*r)
        l.maxInflight = static_cast<size_t>(u);

    if (l.ratePerSec > 0.0 && l.rateBurst < 1.0)
        l.rateBurst = 1.0;
    return l;
}

std::string
limitsJson(const ServeLimits &l)
{
    std::string out = "{";
    out += "\"queue_capacity\": " + std::to_string(l.queueCapacity);
    out += ", \"retry_after_ms\": " + std::to_string(l.retryAfterMs);
    out += ", \"idle_timeout_ms\": " + std::to_string(l.idleTimeoutMs);
    out += ", \"read_timeout_ms\": " + std::to_string(l.readTimeoutMs);
    out += ", \"write_timeout_ms\": "
        + std::to_string(l.writeTimeoutMs);
    out += ", \"max_connections\": "
        + std::to_string(l.maxConnections);
    out += ", \"rate_per_sec\": " + jsonNumber(l.ratePerSec);
    out += ", \"rate_burst\": " + jsonNumber(l.rateBurst);
    out += ", \"max_inflight\": " + std::to_string(l.maxInflight);
    out += "}";
    return out;
}

} // namespace tbstc::serve
