/**
 * @file
 * Bounded multi-producer / single-consumer request queue with
 * back-pressure and drain semantics.
 *
 * Connection reader threads produce; the batcher thread consumes. The
 * capacity bound is the daemon's back-pressure threshold: a full queue
 * rejects the push immediately (the reader answers busy +
 * retry-after instead of buffering unboundedly), so memory stays
 * bounded no matter how fast clients submit.
 *
 * close() starts the drain: further pushes are refused with Closed
 * (readers answer "shutting down") while popBatch() keeps returning
 * queued items until the queue is empty, then returns an empty batch
 * exactly once to signal the consumer to exit. Because pushes check
 * the closed flag under the same mutex that popBatch holds, no item
 * can slip in after the consumer has observed the drained state —
 * every accepted request is answered.
 */

#ifndef TBSTC_SERVE_QUEUE_HPP
#define TBSTC_SERVE_QUEUE_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace tbstc::serve {

/** Outcome of a producer push. */
enum class PushResult : uint8_t
{
    Ok,     ///< Enqueued; the consumer will answer it.
    Full,   ///< At capacity: reject with busy + retry-after.
    Closed, ///< Draining: reject with a shutting-down error.
};

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity)
        : capacity_(capacity > 0 ? capacity : 1)
    {
    }

    size_t
    capacity() const
    {
        const std::lock_guard lk(m_);
        return capacity_;
    }

    /**
     * Hot-reload the back-pressure threshold. Shrinking below the
     * current depth is allowed: queued items still drain, and pushes
     * are refused until the depth falls under the new capacity.
     */
    void
    setCapacity(size_t capacity)
    {
        const std::lock_guard lk(m_);
        capacity_ = capacity > 0 ? capacity : 1;
    }

    /** Enqueue @p item unless full or closed. Never blocks. */
    PushResult
    tryPush(T item)
    {
        {
            const std::lock_guard lk(m_);
            if (closed_)
                return PushResult::Closed;
            if (items_.size() >= capacity_)
                return PushResult::Full;
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
        return PushResult::Ok;
    }

    /**
     * Pop up to @p max items, blocking while the queue is empty and
     * open. An empty vector means closed-and-drained: the consumer
     * should exit its loop.
     */
    std::vector<T>
    popBatch(size_t max)
    {
        std::unique_lock lk(m_);
        cv_.wait(lk, [&] { return closed_ || !items_.empty(); });
        std::vector<T> batch;
        const size_t take = items_.size() < max ? items_.size() : max;
        batch.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        return batch;
    }

    /** Refuse new pushes; wake the consumer to drain what remains. */
    void
    close()
    {
        {
            const std::lock_guard lk(m_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    bool
    closed() const
    {
        const std::lock_guard lk(m_);
        return closed_;
    }

    size_t
    depth() const
    {
        const std::lock_guard lk(m_);
        return items_.size();
    }

  private:
    size_t capacity_; ///< Guarded by m_ (hot-reloadable).
    mutable std::mutex m_;
    std::condition_variable cv_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace tbstc::serve

#endif // TBSTC_SERVE_QUEUE_HPP
