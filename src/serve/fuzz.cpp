#include "fuzz.hpp"

#include <array>
#include <cerrno>
#include <cstring>
#include <span>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "protocol.hpp"
#include "util/faultinject.hpp"

namespace tbstc::serve {

namespace {

/** Client-side read deadlines: generous, but never hang the harness. */
constexpr FrameTimeouts kProbeTimeouts{10000, 10000};

/** Fixed probe ids, one per geometry (stable reference bytes). */
constexpr uint64_t kProbeIdBase = 77777777;

/** The three probe geometries: inline, simulation, and DDC paths. */
std::array<Request, 3>
probeRequests()
{
    std::array<Request, 3> reqs;
    reqs[0].id = kProbeIdBase;
    reqs[0].op = Op::Ping;
    reqs[1].id = kProbeIdBase + 1;
    reqs[1].op = Op::Run;
    reqs[1].run.kind = accel::AccelKind::TbStc;
    reqs[1].run.layer = "64x64x1";
    reqs[1].run.sparsity = 0.5;
    reqs[1].run.seed = 42;
    reqs[2].id = kProbeIdBase + 2;
    reqs[2].op = Op::Sparsify;
    reqs[2].sparsify.layer = "128x128x1";
    reqs[2].sparsify.sparsity = 0.75;
    reqs[2].sparsify.seed = 42;
    reqs[2].sparsify.m = 8;
    return reqs;
}

bool
sendRaw(int fd, const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    size_t off = 0;
    while (off < len) {
        const ssize_t n =
            ::send(fd, p + off, len - off, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

std::string_view
asView(const std::vector<uint8_t> &bytes)
{
    return {reinterpret_cast<const char *>(bytes.data()),
            bytes.size()};
}

std::span<const uint8_t>
asBytes(const std::string &s)
{
    return {reinterpret_cast<const uint8_t *>(s.data()), s.size()};
}

} // namespace

util::Result<FuzzStats, std::string>
runProtocolFuzz(const FuzzOptions &opts)
{
    const auto probes = probeRequests();
    std::array<std::string, 3> payloads;
    for (size_t g = 0; g < probes.size(); ++g)
        payloads[g] = serializeRequest(probes[g]);

    // Capture reference responses on a clean connection: the bytes a
    // fuzzed session's probes must reproduce exactly.
    std::array<std::string, 3> references;
    {
        std::string err;
        const int fd = connectClient(opts.socketPath, opts.port, err);
        if (fd < 0)
            return util::unexpected(err);
        for (size_t g = 0; g < probes.size(); ++g) {
            if (!writeFrame(fd, payloads[g])
                || readFrameDeadline(fd, references[g],
                                     kDefaultMaxFrameBytes,
                                     kProbeTimeouts)
                    != FrameStatus::Ok) {
                ::close(fd);
                return util::unexpected(
                    std::string("reference capture failed"));
            }
        }
        ::close(fd);
    }

    util::FaultInjector inj(opts.seed);
    util::Rng &rng = inj.rng();
    FuzzStats stats;
    std::string frame;

    for (size_t s = 0; s < opts.sessions; ++s) {
        std::string err;
        int fd = connectClient(opts.socketPath, opts.port, err);
        if (fd < 0)
            return util::unexpected(err);

        const auto reconnect = [&]() -> bool {
            ::close(fd);
            ++stats.reconnects;
            fd = connectClient(opts.socketPath, opts.port, err);
            return fd >= 0;
        };

        bool alive = true;
        for (size_t f = 0; alive && f < opts.framesPerSession; ++f) {
            const std::string &payload = payloads[rng.below(3)];
            const auto base = asBytes(payload);
            bool framingSafe = true;
            bool sent = true;
            switch (rng.below(10)) {
              case 0: // a few bit flips in a well-framed payload
                sent = writeFrame(
                    fd, asView(inj.flipBits(base, 1 + rng.below(4))));
                break;
              case 1: // one byte clobbered in a well-framed payload
                sent =
                    writeFrame(fd, asView(inj.mutateRandomByte(base)));
                break;
              case 2: { // well-framed but truncated JSON
                auto cut = inj.truncateRandom(base);
                if (cut.empty())
                    cut.push_back('{');
                sent = writeFrame(fd, asView(cut));
                break;
              }
              case 3: // well-framed JSON with trailing garbage
                sent = writeFrame(
                    fd, asView(inj.extend(base, 1 + rng.below(16))));
                break;
              case 4: { // two payload ranges exchanged, still framed
                std::vector<uint8_t> mut(base.begin(), base.end());
                if (mut.size() >= 8)
                    mut = inj.swapRanges(mut, 0, mut.size() / 2, 2);
                sent = writeFrame(fd, asView(mut));
                break;
              }
              case 5: { // length-prefix lie: claims more than is sent
                const uint8_t hdr[4] = {0xff, 0xff, 0x00, 0x00};
                sent = sendRaw(fd, hdr, sizeof hdr)
                    && sendRaw(fd, payload.data(), payload.size() / 2);
                framingSafe = false;
                break;
              }
              case 6: { // length prefix above the 1 MiB frame cap
                const uint8_t hdr[4] = {0xff, 0xff, 0xff, 0x7f};
                sent = sendRaw(fd, hdr, sizeof hdr);
                framingSafe = false;
                break;
              }
              case 7: { // zero length prefix (protocol error)
                const uint8_t hdr[4] = {0, 0, 0, 0};
                sent = sendRaw(fd, hdr, sizeof hdr);
                framingSafe = false;
                break;
              }
              case 8: { // random header plus raw garbage bytes
                uint8_t junk[24];
                for (auto &b : junk)
                    b = static_cast<uint8_t>(rng.below(256));
                // Keep the claimed length small so the daemon treats
                // the garbage as payload instead of waiting for MiBs.
                junk[1] = 0;
                junk[2] = 0;
                junk[3] = 0;
                if (junk[0] == 0)
                    junk[0] = 1;
                sent = sendRaw(fd, junk, sizeof junk);
                framingSafe = false;
                break;
              }
              default: { // mid-frame disconnect
                const uint8_t hdr[4] = {
                    static_cast<uint8_t>(payload.size()), 0, 0, 0};
                sent = sendRaw(fd, hdr, sizeof hdr)
                    && sendRaw(fd, payload.data(),
                               payload.size() / 2);
                framingSafe = false;
                break;
              }
            }
            ++stats.mutatedFrames;
            if (!sent || !framingSafe) {
                // Desynced (or the daemon already dropped us): this
                // connection is spent; prove a fresh one gets served.
                alive = reconnect();
                continue;
            }
            // Framing intact: exactly one reply must come back
            // (typed error, or success when the mutation happened to
            // keep the request valid).
            if (readFrameDeadline(fd, frame, kDefaultMaxFrameBytes,
                                  kProbeTimeouts)
                == FrameStatus::Ok)
                ++stats.responses;
            else
                alive = reconnect();
        }

        // End-of-session probes: the (possibly corruption-scarred)
        // connection must answer well-formed requests with the exact
        // bytes a clean connection produced.
        for (size_t g = 0; alive && g < probes.size(); ++g) {
            ++stats.probes;
            if (!writeFrame(fd, payloads[g])
                || readFrameDeadline(fd, frame, kDefaultMaxFrameBytes,
                                     kProbeTimeouts)
                    != FrameStatus::Ok
                || frame != references[g])
                ++stats.probeMismatches;
        }
        if (fd >= 0)
            ::close(fd);
        ++stats.sessions;
    }
    return stats;
}

std::string
fuzzJson(const FuzzStats &s)
{
    std::string out = "{\"schema\": \"tbstc.fuzz.v1\"";
    out += ", \"sessions\": " + std::to_string(s.sessions);
    out += ", \"mutated_frames\": " + std::to_string(s.mutatedFrames);
    out += ", \"responses\": " + std::to_string(s.responses);
    out += ", \"reconnects\": " + std::to_string(s.reconnects);
    out += ", \"probes\": " + std::to_string(s.probes);
    out += ", \"probe_mismatches\": "
        + std::to_string(s.probeMismatches);
    out += "}";
    return out;
}

} // namespace tbstc::serve
