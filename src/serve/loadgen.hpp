/**
 * @file
 * Load generator for the serve daemon (`tbstc loadgen`).
 *
 * Drives N closed-loop client connections through a deterministic
 * request mix derived from one seed, measures per-request latency from
 * send to response, honors busy back-pressure (sleeps the server's
 * retry_after_ms hint and resends), and reports throughput plus
 * p50/p95/p99 latency.
 *
 * Verification modes back the daemon's byte-identity bar:
 *  - responses sharing a request signature must carry identical csv
 *    bytes (counted in `mismatched` when they do not);
 *  - verify=true additionally re-executes each distinct request
 *    in-process
 *    through the same serve::exec entry points and compares the
 *    daemon's csv bytes against the local result — the exact bytes
 *    one-shot `tbstc run` would print.
 */

#ifndef TBSTC_SERVE_LOADGEN_HPP
#define TBSTC_SERVE_LOADGEN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "protocol.hpp"
#include "util/result.hpp"

namespace tbstc::serve {

struct LoadgenOptions
{
    /** Unix socket path; empty → TCP to 127.0.0.1:port. */
    std::string socketPath;
    uint16_t port = 0;

    size_t clients = 8;         ///< Concurrent closed-loop clients.
    size_t totalRequests = 200; ///< Across all clients.
    uint64_t seed = 42;         ///< Mix derivation seed.
    size_t maxRetries = 1000;   ///< Busy/rate-limit retries per req.
    bool verify = false;        ///< Recompute distinct results locally.

    /**
     * Chaos clients running alongside the honest load (`--chaos N`):
     * each loops sending corrupted frames — bit-flipped payloads,
     * length-prefix lies, truncations, garbage bytes, mid-frame
     * disconnects — plus periodic well-formed pings that must still
     * be answered. The honest load's success is the assertion that
     * hostile traffic cannot take the daemon down.
     */
    size_t chaosClients = 0;
    uint64_t chaosSeed = 1337; ///< Chaos mutation derivation seed.
};

struct LoadgenStats
{
    uint64_t sent = 0;        ///< Requests sent (excluding retries).
    uint64_t ok = 0;          ///< Success responses.
    uint64_t busyRetries = 0; ///< Busy rejections retried.
    uint64_t errors = 0;      ///< Non-busy failures (incl. transport).
    uint64_t mismatched = 0;  ///< csv-byte mismatches (see file doc).
    uint64_t chaosFrames = 0;   ///< Corrupted frames sent by chaos.
    uint64_t chaosProbesOk = 0; ///< Chaos pings answered correctly.
    double elapsedSeconds = 0.0;
    double reqPerSec = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
};

/**
 * Build the deterministic request mix: run requests cycling small
 * layers × accelerators × sparsities plus sparsify requests, ids
 * assigned 1..total. Depends only on (total, seed).
 */
std::vector<Request> buildMix(size_t total, uint64_t seed);

/**
 * The one-shot CLI command equivalent to @p req ("tbstc run ..."),
 * for CI scripts that diff daemon responses against one-shot runs.
 */
std::string oneShotCommand(const Request &req);

/** Run the load; returns stats or a connection/setup error. */
util::Result<LoadgenStats, std::string>
runLoadgen(const LoadgenOptions &opts);

/** Render @p s as the stable tbstc.loadgen.v1 JSON document. */
std::string loadgenJson(const LoadgenStats &s);

} // namespace tbstc::serve

#endif // TBSTC_SERVE_LOADGEN_HPP
