/**
 * @file
 * Request execution shared by the one-shot CLI and the serve daemon.
 *
 * The daemon's acceptance bar is byte-identical responses: a `run`
 * request answered by `tbstc serve` must produce exactly the bytes the
 * one-shot `tbstc run` would print for the same parameters. The only
 * robust way to guarantee that is to have both call the same code, so
 * the CLI's former runOne/printStats logic lives here and both paths
 * delegate: the CLI parses flags into a RunSpec and prints
 * formatStats(); the daemon parses a JSON request into the same
 * RunSpec and embeds formatStats() in the response.
 *
 * Parsing helpers return std::optional instead of exiting, so the
 * daemon can answer a bad request with a structured error while the
 * CLI turns nullopt into its usual exit-2 diagnostic.
 */

#ifndef TBSTC_SERVE_EXEC_HPP
#define TBSTC_SERVE_EXEC_HPP

#include <optional>
#include <string>

#include "accel/accelerator.hpp"
#include "sim/pipeline.hpp"
#include "workload/models.hpp"

namespace tbstc::serve {

/** One simulate-this request, CLI flags and JSON fields alike. */
struct RunSpec
{
    accel::AccelKind kind = accel::AccelKind::TbStc;
    std::string model;      ///< Model name; empty when layer is set.
    std::string layer;      ///< "XxYxNB" layer spec; empty for model.
    double sparsity = 0.5;
    uint64_t seq = 128;
    uint64_t seed = 42;
    bool int8Weights = false;
    bool full = false;            ///< Include dense attention GEMMs.
    std::optional<double> bw;     ///< Off-chip bandwidth override.

    /**
     * TBS mask-search strategy (registry name). Empty = default
     * greedy, which keeps the wire bytes and responses of strategy-
     * less requests unchanged.
     */
    std::string strategy;
};

/** One sparsify-this request (the `formats` pipeline's front half). */
struct SparsifySpec
{
    std::string layer = "512x512x1"; ///< "XxYxNB" weight shape.
    double sparsity = 0.75;
    uint64_t seed = 42;
    uint64_t m = 8;
    std::string strategy; ///< Mask-search strategy; empty = greedy.
};

/** Result of a sparsify execution (summary; values stay server-side). */
struct SparsifyResult
{
    uint64_t rows = 0;
    uint64_t cols = 0;
    uint64_t nnz = 0;       ///< Kept weights under the TBS mask.
    uint64_t ddcBytes = 0;  ///< serializeDdc() stream size.
    uint32_t ddcCrc32 = 0;  ///< CRC-32 of the stream (zlib-compatible).
};

/** Accelerator name -> kind ("tbstc", "stc", ...); nullopt unknown. */
std::optional<accel::AccelKind> tryParseAccel(const std::string &name);

/** Kind -> the lowercase wire/CLI name tryParseAccel accepts. */
std::string accelWireName(accel::AccelKind kind);

/** Model name -> id ("bert", "opt", ...); nullopt when unknown. */
std::optional<workload::ModelId> tryParseModel(const std::string &name);

/** "XxYxNB" -> shape (named @p name); nullopt when malformed. */
std::optional<workload::GemmShape>
tryParseLayer(const std::string &spec, const std::string &name);

/**
 * Execute a run request: one layer, a model's weight GEMMs, or a full
 * inference pass, exactly as `tbstc run` would. Throws on specs that
 * fail validation deeper in the stack (the daemon maps exceptions to
 * error responses).
 */
sim::RunStats executeRun(const RunSpec &spec);

/**
 * Execute a sparsify request: synthesize the layer's weights, run
 * Algorithm 1 at the requested sparsity, serialize the DDC2 stream,
 * and summarize it. Matches `tbstc formats --dump` byte-for-byte
 * (same row cap), so ddcCrc32 equals the CRC of a dumped file.
 */
SparsifyResult executeSparsify(const SparsifySpec &spec);

/**
 * Render @p s as `tbstc run` prints it: the human line or the CSV
 * line (both newline-terminated). Byte-identical to the one-shot
 * output for the same stats.
 */
std::string formatStats(const std::string &label, const sim::RunStats &s,
                        bool csv);

/** The CSV header line `tbstc run --csv` prints before the row. */
std::string statsCsvHeader();

} // namespace tbstc::serve

#endif // TBSTC_SERVE_EXEC_HPP
