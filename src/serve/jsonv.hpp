/**
 * @file
 * Minimal JSON document model for the serve protocol.
 *
 * The daemon's wire format is length-prefixed JSON (docs/serving.md),
 * so the server must *parse* arbitrary client bytes — obs/json.hpp
 * only escapes strings for export. This is a small recursive-descent
 * parser producing an immutable JsonValue tree: objects are string
 * maps, numbers are doubles (request ids and sizes fit double's exact
 * 53-bit integer range), and parse failures return a Result error with
 * the byte offset instead of throwing, mirroring the format layer's
 * hardened-decode convention — a hostile frame can never abort the
 * daemon.
 *
 * Depth is bounded (kMaxDepth) so deeply nested input cannot overflow
 * the stack; the caller bounds input *size* via the frame layer.
 */

#ifndef TBSTC_SERVE_JSONV_HPP
#define TBSTC_SERVE_JSONV_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace tbstc::serve {

/** Maximum nesting depth accepted by parseJson(). */
constexpr size_t kJsonMaxDepth = 64;

/** One parsed JSON value (immutable after parsing). */
class JsonValue
{
  public:
    enum class Type : uint8_t { Null, Bool, Number, String, Object, Array };

    using Object = std::map<std::string, JsonValue, std::less<>>;
    using Array = std::vector<JsonValue>;

    JsonValue() = default;
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string s);
    static JsonValue makeObject(Object o);
    static JsonValue makeArray(Array a);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; defaults are returned on type mismatch. */
    bool asBool(bool dflt = false) const;
    double asNumber(double dflt = 0.0) const;
    const std::string &asString() const;
    const Object &asObject() const;
    const Array &asArray() const;

    /** Object member lookup; a shared null value when absent. */
    const JsonValue &get(std::string_view name) const;
    bool has(std::string_view name) const;

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Object obj_;
    Array arr_;
};

/** Where and why parsing failed. */
struct JsonError
{
    size_t offset = 0;
    std::string message;
};

/**
 * Parse one complete JSON document (trailing bytes after the value are
 * an error, so a frame is exactly one request).
 */
util::Result<JsonValue, JsonError> parseJson(std::string_view text);

/** Quote and escape @p s as a JSON string literal. */
std::string jsonQuote(std::string_view s);

/**
 * Render a double the way the serve protocol expects: shortest form
 * that round-trips (%.17g trimmed), "0" for zero, integers without a
 * fractional part. NaN/Inf (not representable in JSON) render as null.
 */
std::string jsonNumber(double v);

} // namespace tbstc::serve

#endif // TBSTC_SERVE_JSONV_HPP
