/**
 * @file
 * Wire protocol of the serve daemon: length-prefixed JSON frames.
 *
 * Framing: every message (either direction) is a 4-byte little-endian
 * unsigned payload length followed by exactly that many bytes of
 * UTF-8 JSON. Length 0 and lengths above the receiver's frame cap are
 * protocol errors (the connection is closed); the cap bounds per-
 * connection memory against allocation-bomb frames, mirroring the DDC
 * decoder's checked-size discipline.
 *
 * Requests (client -> server), one JSON object per frame:
 *   {"id": N, "op": "run",      ...RunSpec fields...}
 *   {"id": N, "op": "sparsify", ...SparsifySpec fields...}
 *   {"id": N, "op": "stats"}
 *   {"id": N, "op": "ping"}
 *
 * Responses (server -> client), one per request, in completion order:
 *   {"id": N, "ok": true,  "result": {...}}
 *   {"id": N, "ok": false, "error": "...", "kind": "...",
 *    "retry_after_ms": M}            // kind=="busy" only
 *
 * Full field tables live in docs/serving.md.
 */

#ifndef TBSTC_SERVE_PROTOCOL_HPP
#define TBSTC_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "exec.hpp"
#include "jsonv.hpp"
#include "util/result.hpp"

namespace tbstc::serve {

/** Default per-frame payload cap (1 MiB; requests are tiny). */
constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

/**
 * Default retry_after_ms hint attached to back-pressure rejections.
 * Shared by the server (as the base hint it advertises) and the
 * loadgen client (as the fallback when a busy response somehow lacks
 * the field), so the two sides never disagree about the default.
 */
constexpr uint64_t kDefaultRetryAfterMs = 50;

/** Request operations the daemon understands. */
enum class Op : uint8_t
{
    Ping,     ///< Liveness probe; answered inline by the reader.
    Stats,    ///< Live telemetry export; answered by the batcher.
    Run,      ///< Simulate a layer/model (the `tbstc run` path).
    Sparsify, ///< Algorithm 1 + DDC serialization summary.
};

/** Machine-readable error class of a failure response. */
enum class ErrorKind : uint8_t
{
    BadRequest,       ///< Malformed JSON / unknown op / bad field.
    Busy,             ///< Queue full: back-pressure, retry later.
    ShuttingDown,     ///< Drain in progress; no new work accepted.
    Internal,         ///< Execution threw (reported, never aborts).
    RateLimited,      ///< Per-client rate/in-flight limit; retry later.
    DeadlineExceeded, ///< deadline_ms expired before execution.
    Overloaded,       ///< Connection shed at accept (conn cap).
};

/** Stable wire name of an ErrorKind ("bad_request", "busy", ...). */
const char *errorKindName(ErrorKind kind);

/** One parsed request. */
struct Request
{
    uint64_t id = 0;

    /**
     * Client-declared time budget in milliseconds, measured from the
     * moment the server accepts the request. 0 = no deadline. Work
     * whose deadline expires while queued is answered with a
     * `deadline_exceeded` error instead of executing. Excluded from
     * the batcher's dedup signature.
     */
    uint64_t deadlineMs = 0;

    Op op = Op::Ping;
    RunSpec run;           ///< Valid when op == Run.
    SparsifySpec sparsify; ///< Valid when op == Sparsify.
};

/**
 * A parse/validation failure. Carries the request id whenever the
 * document was well-formed enough to yield one, so the error response
 * still matches the client's outstanding request (id 0 otherwise).
 */
struct RequestError
{
    uint64_t id = 0;
    std::string message;
};

/**
 * Parse one request frame payload. Unknown fields are ignored
 * (forward compatibility); a missing or unknown "op", non-object
 * document, or malformed spec field is an error. The error message is
 * the "error" field of the failure response.
 */
util::Result<Request, RequestError> parseRequest(std::string_view json);

/** Serialize the request @p req as a frame payload. */
std::string serializeRequest(const Request &req);

/** Build a success response envelope around a result object/string. */
std::string okResponse(uint64_t id, const std::string &resultJson);

/** Build a failure response. retryAfterMs only applies to Busy. */
std::string errorResponse(uint64_t id, ErrorKind kind,
                          const std::string &message,
                          uint64_t retryAfterMs = 0);

/** Result payload of a Run response (csv/text are exec::formatStats). */
std::string runResultJson(const sim::RunStats &stats,
                          const std::string &label);

/** Result payload of a Sparsify response. */
std::string sparsifyResultJson(const SparsifyResult &r);

/**
 * Frame I/O over a connected socket. Partial reads/writes are
 * retried; EINTR is transparent. write uses MSG_NOSIGNAL so a
 * vanished peer surfaces as an error return, not SIGPIPE.
 */
enum class FrameStatus : uint8_t
{
    Ok,
    Eof,     ///< Orderly close before a length prefix.
    TooBig,  ///< Length prefix above the cap (protocol error).
    Error,   ///< Socket error or mid-frame disconnect.
    Timeout, ///< Idle or per-frame deadline expired (deadline reads).
};

/** Read one frame payload into @p out (blocks indefinitely). */
FrameStatus readFrame(int fd, std::string &out,
                      size_t maxBytes = kDefaultMaxFrameBytes);

/** Write one frame; false on any socket error. */
bool writeFrame(int fd, std::string_view payload);

/**
 * Deadlines for one readFrameDeadline call, both in milliseconds and
 * both disabled by 0: idleMs bounds the wait for a frame's *first*
 * byte (reaps half-open and idle connections); frameMs bounds the
 * time from that first byte to frame completion (reaps slow-loris
 * writers that trickle one byte at a time).
 */
struct FrameTimeouts
{
    uint64_t idleMs = 0;
    uint64_t frameMs = 0;
};

/**
 * Read one frame like readFrame, but poll-based: returns Timeout when
 * a FrameTimeouts deadline expires instead of blocking forever. Works
 * on blocking and non-blocking sockets alike (recv is issued with
 * MSG_DONTWAIT and waits happen in poll).
 */
FrameStatus readFrameDeadline(int fd, std::string &out, size_t maxBytes,
                              const FrameTimeouts &t);

/**
 * Write one frame with a completion deadline (0 = wait forever).
 * false on socket error or when the peer does not drain the frame in
 * time — a slow-reading client cannot pin the writer.
 */
bool writeFrameDeadline(int fd, std::string_view payload,
                        uint64_t timeoutMs);

/**
 * Connect a client socket to a daemon: @p socketPath when non-empty,
 * otherwise TCP to 127.0.0.1:@p port. Returns the fd, or -1 with a
 * human-readable message in @p err. Shared by loadgen, the protocol
 * fuzzer, and tests.
 */
int connectClient(const std::string &socketPath, uint16_t port,
                  std::string &err);

} // namespace tbstc::serve

#endif // TBSTC_SERVE_PROTOCOL_HPP
