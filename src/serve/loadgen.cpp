#include "loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "util/rng.hpp"

namespace tbstc::serve {

namespace {

/** Connect to the daemon; -1 + errno message on failure. */
int
connectDaemon(const LoadgenOptions &opts, std::string &err)
{
    return connectClient(opts.socketPath, opts.port, err);
}

/**
 * Signature of a request: its serialization with id and deadline
 * zeroed (mirrors the batcher's dedup key).
 */
std::string
signatureOf(const Request &req)
{
    Request key = req;
    key.id = 0;
    key.deadlineMs = 0;
    return serializeRequest(key);
}

/**
 * One chaos client (`--chaos`): loops until @p stop, each round
 * connecting and sending a seeded corruption of a valid frame — bit
 * flips, garbage JSON, length-prefix lies, oversize claims, raw
 * garbage bytes, or a mid-frame disconnect. Corruptions that keep the
 * framing intact are followed by a well-formed ping on the same
 * connection that must still be answered (counted in @p probesOk);
 * desyncing ones abandon the connection, as a real hostile or broken
 * peer would.
 */
void
chaosClient(const LoadgenOptions &opts, uint64_t seed,
            const std::atomic<bool> &stop,
            std::atomic<uint64_t> &frames,
            std::atomic<uint64_t> &probesOk)
{
    util::Rng rng(seed);
    std::string frame;
    while (!stop.load(std::memory_order_relaxed)) {
        std::string err;
        const int fd = connectClient(opts.socketPath, opts.port, err);
        if (fd < 0) {
            // Shed at the connection cap, or transient: back off.
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            continue;
        }
        Request req;
        req.id = rng.below(1000) + 1;
        req.op = Op::Ping;
        const std::string payload = serializeRequest(req);
        bool framingSafe = true;
        switch (rng.below(6)) {
          case 0: { // bit flip inside a correctly framed payload
            std::string p = payload;
            p[rng.below(p.size())] ^=
                static_cast<char>(1u << rng.below(8));
            (void)writeFrame(fd, p);
            break;
          }
          case 1: // truncated JSON inside a correctly framed payload
            (void)writeFrame(fd, "{\"op\": \"ping\", ");
            break;
          case 2: { // length-prefix lie: claim more than is sent
            const uint8_t hdr[4] = {0xff, 0xff, 0x00, 0x00};
            (void)::send(fd, hdr, sizeof hdr, MSG_NOSIGNAL);
            (void)::send(fd, payload.data(), payload.size() / 2,
                         MSG_NOSIGNAL);
            framingSafe = false;
            break;
          }
          case 3: { // oversize length prefix (above the frame cap)
            const uint8_t hdr[4] = {0xff, 0xff, 0xff, 0x7f};
            (void)::send(fd, hdr, sizeof hdr, MSG_NOSIGNAL);
            framingSafe = false;
            break;
          }
          case 4: { // raw garbage bytes, no framing at all
            uint8_t junk[32];
            for (auto &b : junk)
                b = static_cast<uint8_t>(rng.below(256));
            (void)::send(fd, junk, sizeof junk, MSG_NOSIGNAL);
            framingSafe = false;
            break;
          }
          default: { // mid-frame disconnect
            const uint8_t hdr[4] = {
                static_cast<uint8_t>(payload.size()), 0, 0, 0};
            (void)::send(fd, hdr, sizeof hdr, MSG_NOSIGNAL);
            (void)::send(fd, payload.data(), payload.size() / 2,
                         MSG_NOSIGNAL);
            framingSafe = false;
            break;
          }
        }
        frames.fetch_add(1, std::memory_order_relaxed);
        if (framingSafe) {
            // Drain the server's verdict on the corrupted frame, then
            // prove the session still works with a clean ping.
            (void)readFrameDeadline(fd, frame, kDefaultMaxFrameBytes,
                                    {2000, 2000});
            Request probe;
            probe.id = 424242;
            probe.op = Op::Ping;
            if (writeFrame(fd, serializeRequest(probe))
                && readFrameDeadline(fd, frame, kDefaultMaxFrameBytes,
                                     {2000, 2000})
                    == FrameStatus::Ok) {
                const auto doc = parseJson(frame);
                if (doc && doc->isObject()
                    && doc->get("ok").asBool(false))
                    probesOk.fetch_add(1, std::memory_order_relaxed);
            }
        }
        ::close(fd);
    }
}

/** Shared across client threads. */
struct Shared
{
    std::mutex m;
    std::map<std::string, std::string> csvBySig; // first response wins
    uint64_t mismatched = 0;
};

double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double idx = q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

std::vector<Request>
buildMix(size_t total, uint64_t seed)
{
    static const char *kLayers[] = {"256x256x1", "512x512x1",
                                    "384x256x2"};
    static const accel::AccelKind kAccels[] = {
        accel::AccelKind::TbStc, accel::AccelKind::STC,
        accel::AccelKind::TC, accel::AccelKind::TbStcFan};
    static const double kSparsities[] = {0.5, 0.75};

    util::Rng rng(seed);
    std::vector<Request> mix;
    mix.reserve(total);
    for (size_t i = 0; i < total; ++i) {
        Request req;
        req.id = static_cast<uint64_t>(i) + 1;
        // ~1 in 8 requests exercises the sparsify/DDC path; the rest
        // the simulation path.
        if (rng.below(8) == 0) {
            req.op = Op::Sparsify;
            req.sparsify.layer = rng.below(2) == 0 ? "128x128x1"
                                                   : "256x256x1";
            req.sparsify.sparsity = 0.75;
            req.sparsify.seed = 42;
            req.sparsify.m = 8;
        } else {
            req.op = Op::Run;
            req.run.kind = kAccels[rng.below(4)];
            req.run.layer = kLayers[rng.below(3)];
            req.run.sparsity = kSparsities[rng.below(2)];
            req.run.seed = 42;
        }
        mix.push_back(std::move(req));
    }
    return mix;
}

std::string
oneShotCommand(const Request &req)
{
    char buf[256];
    if (req.op == Op::Sparsify) {
        std::snprintf(buf, sizeof buf,
                      "tbstc formats --layer %s --sparsity %g "
                      "--seed %llu --m %llu",
                      req.sparsify.layer.c_str(), req.sparsify.sparsity,
                      static_cast<unsigned long long>(
                          req.sparsify.seed),
                      static_cast<unsigned long long>(req.sparsify.m));
        return buf;
    }
    std::snprintf(buf, sizeof buf,
                  "tbstc run --accel %s --layer %s --sparsity %g "
                  "--seed %llu --csv",
                  accelWireName(req.run.kind).c_str(),
                  req.run.layer.c_str(), req.run.sparsity,
                  static_cast<unsigned long long>(req.run.seed));
    return buf;
}

util::Result<LoadgenStats, std::string>
runLoadgen(const LoadgenOptions &opts)
{
    if (opts.clients == 0 || opts.totalRequests == 0)
        return util::unexpected(
            std::string("need clients > 0 and requests > 0"));

    const auto mix = buildMix(opts.totalRequests, opts.seed);

    // Probe the connection once before spawning clients so setup
    // failures surface as one clean error.
    {
        std::string err;
        const int fd = connectDaemon(opts, err);
        if (fd < 0)
            return util::unexpected(err);
        ::close(fd);
    }

    Shared shared;
    std::atomic<uint64_t> sent{0};
    std::atomic<uint64_t> ok{0};
    std::atomic<uint64_t> busyRetries{0};
    std::atomic<uint64_t> errors{0};
    std::vector<std::vector<double>> latencies(opts.clients);

    // Chaos clients run for the duration of the honest load.
    std::atomic<bool> chaosStop{false};
    std::atomic<uint64_t> chaosFrames{0};
    std::atomic<uint64_t> chaosProbesOk{0};
    std::vector<std::thread> chaos;
    chaos.reserve(opts.chaosClients);
    for (size_t c = 0; c < opts.chaosClients; ++c)
        chaos.emplace_back([&, c] {
            chaosClient(opts, opts.chaosSeed + c, chaosStop,
                        chaosFrames, chaosProbesOk);
        });

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(opts.clients);
    for (size_t c = 0; c < opts.clients; ++c) {
        clients.emplace_back([&, c] {
            std::string err;
            const int fd = connectDaemon(opts, err);
            if (fd < 0) {
                errors.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            std::string frame;
            // Client c takes mix indices c, c+clients, c+2*clients...
            for (size_t i = c; i < mix.size(); i += opts.clients) {
                const Request &req = mix[i];
                const std::string payload = serializeRequest(req);
                bool answered = false;
                const auto sendT = std::chrono::steady_clock::now();
                for (size_t attempt = 0;
                     attempt <= opts.maxRetries && !answered;
                     ++attempt) {
                    if (attempt == 0)
                        sent.fetch_add(1, std::memory_order_relaxed);
                    if (!writeFrame(fd, payload)
                        || readFrame(fd, frame) != FrameStatus::Ok) {
                        errors.fetch_add(1,
                                         std::memory_order_relaxed);
                        ::close(fd);
                        return;
                    }
                    const auto doc = parseJson(frame);
                    if (!doc || !doc->isObject()) {
                        errors.fetch_add(1,
                                         std::memory_order_relaxed);
                        answered = true;
                        break;
                    }
                    if (doc->get("ok").asBool(false)) {
                        const auto recvT =
                            std::chrono::steady_clock::now();
                        latencies[c].push_back(
                            std::chrono::duration<double,
                                                  std::milli>(
                                recvT - sendT)
                                .count());
                        ok.fetch_add(1, std::memory_order_relaxed);
                        answered = true;
                        // Cross-check response bytes against the
                        // first response seen for this signature:
                        // the csv line for runs, the DDC stream CRC
                        // for sparsifies.
                        const JsonValue &res = doc->get("result");
                        std::string csv;
                        if (res.has("csv"))
                            csv = res.get("csv").asString();
                        else
                            csv = jsonNumber(
                                res.get("ddc_crc32").asNumber(-1.0));
                        const std::lock_guard lk(shared.m);
                        const auto [it, inserted] =
                            shared.csvBySig.try_emplace(
                                signatureOf(req), csv);
                        if (!inserted && it->second != csv)
                            ++shared.mismatched;
                        break;
                    }
                    const std::string &kind =
                        doc->get("kind").asString();
                    if (kind == "busy" || kind == "rate_limited") {
                        busyRetries.fetch_add(
                            1, std::memory_order_relaxed);
                        const double ms =
                            doc->get("retry_after_ms")
                                .asNumber(static_cast<double>(
                                    kDefaultRetryAfterMs));
                        std::this_thread::sleep_for(
                            std::chrono::duration<double,
                                                  std::milli>(ms));
                        continue;
                    }
                    errors.fetch_add(1, std::memory_order_relaxed);
                    answered = true;
                }
                if (!answered)
                    errors.fetch_add(1, std::memory_order_relaxed);
            }
            ::close(fd);
        });
    }
    for (auto &t : clients)
        t.join();
    const auto t1 = std::chrono::steady_clock::now();
    chaosStop.store(true, std::memory_order_relaxed);
    for (auto &t : chaos)
        t.join();

    LoadgenStats s;
    s.sent = sent.load();
    s.ok = ok.load();
    s.busyRetries = busyRetries.load();
    s.errors = errors.load();
    s.mismatched = shared.mismatched;
    s.chaosFrames = chaosFrames.load();
    s.chaosProbesOk = chaosProbesOk.load();
    s.elapsedSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    s.reqPerSec = s.elapsedSeconds > 0.0
        ? static_cast<double>(s.ok) / s.elapsedSeconds
        : 0.0;

    std::vector<double> all;
    for (const auto &v : latencies)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    s.p50Ms = percentile(all, 0.50);
    s.p95Ms = percentile(all, 0.95);
    s.p99Ms = percentile(all, 0.99);

    if (opts.verify) {
        // Re-run each distinct request in-process through the same
        // exec entry points and demand byte-identical csv fields.
        std::map<std::string, std::string> csvBySig;
        {
            const std::lock_guard lk(shared.m);
            csvBySig = shared.csvBySig;
        }
        for (const auto &req : mix) {
            const auto it = csvBySig.find(signatureOf(req));
            if (it == csvBySig.end())
                continue;
            std::string local;
            try {
                if (req.op == Op::Run) {
                    local = formatStats(accel::accelName(req.run.kind),
                                        executeRun(req.run), true);
                } else {
                    local = jsonNumber(static_cast<double>(
                        executeSparsify(req.sparsify).ddcCrc32));
                }
            } catch (const std::exception &) {
                ++s.mismatched;
                continue;
            }
            if (local != it->second)
                ++s.mismatched;
            csvBySig.erase(it); // verify each signature once
        }
    }
    return s;
}

std::string
loadgenJson(const LoadgenStats &s)
{
    std::string out = "{\"schema\": \"tbstc.loadgen.v1\"";
    out += ", \"sent\": " + std::to_string(s.sent);
    out += ", \"ok\": " + std::to_string(s.ok);
    out += ", \"busy_retries\": " + std::to_string(s.busyRetries);
    out += ", \"errors\": " + std::to_string(s.errors);
    out += ", \"mismatched\": " + std::to_string(s.mismatched);
    out += ", \"chaos_frames\": " + std::to_string(s.chaosFrames);
    out += ", \"chaos_probes_ok\": "
        + std::to_string(s.chaosProbesOk);
    out += ", \"elapsed_s\": " + jsonNumber(s.elapsedSeconds);
    out += ", \"req_per_s\": " + jsonNumber(s.reqPerSec);
    out += ", \"latency_ms\": {\"p50\": " + jsonNumber(s.p50Ms)
        + ", \"p95\": " + jsonNumber(s.p95Ms)
        + ", \"p99\": " + jsonNumber(s.p99Ms) + "}}";
    return out;
}

} // namespace tbstc::serve
