/**
 * @file
 * Hot-reloadable operational limits of the serve daemon.
 *
 * ServeLimits gathers every knob that bounds what a client — or a
 * population of clients — can do to the daemon: connection caps,
 * per-connection I/O deadlines, per-client token-bucket rates and
 * in-flight caps, and the queue's back-pressure threshold. The struct
 * is deliberately plain data: the server snapshots it into an
 * immutable shared_ptr per accepted connection, so a SIGHUP reload
 * (`Server::reloadLimits`) changes what *new* accepts see while
 * connections already in flight finish under the limits they were
 * admitted with.
 *
 * The JSON form (parseLimits/limitsJson) is both the `--config` file
 * format and the "limits" section of a stats response, so an operator
 * can always read back exactly what a live daemon is enforcing.
 */

#ifndef TBSTC_SERVE_CONFIG_HPP
#define TBSTC_SERVE_CONFIG_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "protocol.hpp"
#include "util/result.hpp"

namespace tbstc::serve {

/**
 * Every hot-reloadable limit, with serving-sane defaults. A value of 0
 * disables the corresponding limit (except queueCapacity, which is
 * clamped to at least 1).
 */
struct ServeLimits
{
    /** Queue capacity = back-pressure threshold (full -> busy). */
    size_t queueCapacity = 256;

    /** Base retry_after_ms hint; busy hints scale up under pressure. */
    uint64_t retryAfterMs = kDefaultRetryAfterMs;

    /**
     * Reap a connection that has not started a frame for this long
     * (half-open and idle clients). 0 = never.
     */
    uint64_t idleTimeoutMs = 30000;

    /**
     * Once a frame's first byte arrives, the full frame must arrive
     * within this window (defeats slow-loris writers). 0 = no limit.
     */
    uint64_t readTimeoutMs = 10000;

    /**
     * A response write that cannot complete within this window marks
     * the connection dead instead of pinning the writer. 0 = no limit.
     */
    uint64_t writeTimeoutMs = 10000;

    /** Accept-time cap on live connections; beyond it, shed. 0 = off. */
    size_t maxConnections = 256;

    /** Per-connection token-bucket refill rate (req/s). 0 = off. */
    double ratePerSec = 0.0;

    /** Token-bucket burst size (clamped to >= 1 when rate is on). */
    double rateBurst = 64.0;

    /** Per-connection cap on queued-but-unanswered requests. 0 = off. */
    size_t maxInflight = 0;
};

/**
 * Parse a limits document (the `--config` file / stats "limits"
 * shape): a JSON object whose recognized fields override @p base.
 * Unknown fields are ignored for forward compatibility; a field of
 * the wrong type or out of range is an error naming the field.
 *
 * Recognized fields (all optional): queue_capacity, retry_after_ms,
 * idle_timeout_ms, read_timeout_ms, write_timeout_ms,
 * max_connections, rate_per_sec, rate_burst, max_inflight.
 */
util::Result<ServeLimits, std::string>
parseLimits(std::string_view json, const ServeLimits &base = {});

/** Render @p l as the JSON object parseLimits accepts. */
std::string limitsJson(const ServeLimits &l);

} // namespace tbstc::serve

#endif // TBSTC_SERVE_CONFIG_HPP
