#include "protocol.hpp"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/mask_search.hpp"

namespace tbstc::serve {

namespace {

/** Read a non-negative integer field; nullopt on absence/mismatch. */
std::optional<uint64_t>
u64Field(const JsonValue &obj, std::string_view name)
{
    const JsonValue &v = obj.get(name);
    if (v.type() != JsonValue::Type::Number)
        return std::nullopt;
    const double d = v.asNumber();
    if (d < 0.0 || d != std::floor(d) || d > 9.007199254740992e15)
        return std::nullopt;
    return static_cast<uint64_t>(d);
}

} // namespace

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::BadRequest: return "bad_request";
      case ErrorKind::Busy: return "busy";
      case ErrorKind::ShuttingDown: return "shutting_down";
      case ErrorKind::Internal: return "internal";
      case ErrorKind::RateLimited: return "rate_limited";
      case ErrorKind::DeadlineExceeded: return "deadline_exceeded";
      case ErrorKind::Overloaded: return "overloaded";
    }
    return "internal";
}

util::Result<Request, RequestError>
parseRequest(std::string_view json)
{
    const auto doc = parseJson(json);
    if (!doc)
        return util::unexpected(RequestError{
            0, "invalid JSON at byte "
                   + std::to_string(doc.error().offset) + ": "
                   + doc.error().message});
    const JsonValue &v = *doc;
    if (!v.isObject())
        return util::unexpected(
            RequestError{0, "request must be a JSON object"});

    Request req;
    if (const auto id = u64Field(v, "id"))
        req.id = *id;
    else if (v.has("id"))
        return util::unexpected(
            RequestError{0, "'id' must be a non-negative integer"});
    if (const auto dl = u64Field(v, "deadline_ms"))
        req.deadlineMs = *dl;
    else if (v.has("deadline_ms"))
        return util::unexpected(RequestError{
            req.id, "'deadline_ms' must be a non-negative integer"});

    const auto fail = [&req](std::string message) {
        return util::unexpected(RequestError{req.id,
                                             std::move(message)});
    };

    const std::string &op = v.get("op").asString();
    if (op == "ping") {
        req.op = Op::Ping;
        return req;
    }
    if (op == "stats") {
        req.op = Op::Stats;
        return req;
    }
    if (op == "run") {
        req.op = Op::Run;
        RunSpec &r = req.run;
        const std::string &accel = v.get("accel").asString();
        const auto kind = tryParseAccel(accel);
        if (!kind)
            return fail("unknown accelerator '" + accel
                                    + "'");
        r.kind = *kind;
        r.model = v.get("model").asString();
        r.layer = v.get("layer").asString();
        if (r.model.empty() && r.layer.empty())
            return fail("need 'model' or 'layer'");
        if (!r.model.empty() && !tryParseModel(r.model))
            return fail("unknown model '" + r.model + "'");
        if (!r.layer.empty() && !tryParseLayer(r.layer, "cli.layer"))
            return fail("layer spec must be XxYxNB, got '"
                                    + r.layer + "'");
        r.sparsity = v.get("sparsity").asNumber(r.sparsity);
        if (!(r.sparsity >= 0.0 && r.sparsity < 1.0))
            return fail("'sparsity' must be in [0, 1)");
        if (const auto seq = u64Field(v, "seq"))
            r.seq = *seq;
        if (const auto seed = u64Field(v, "seed"))
            r.seed = *seed;
        r.int8Weights = v.get("int8").asBool(false);
        r.full = v.get("full").asBool(false);
        if (v.has("bw")) {
            const double bw = v.get("bw").asNumber(-1.0);
            if (bw <= 0.0)
                return fail("'bw' must be positive");
            r.bw = bw;
        }
        if (v.has("strategy")) {
            r.strategy = v.get("strategy").asString();
            if (!core::isMaskStrategy(r.strategy))
                return fail("unknown mask strategy '" + r.strategy
                            + "'");
        }
        return req;
    }
    if (op == "sparsify") {
        req.op = Op::Sparsify;
        SparsifySpec &s = req.sparsify;
        s.layer = v.get("layer").asString();
        if (s.layer.empty() || !tryParseLayer(s.layer, "cli.formats"))
            return fail("layer spec must be XxYxNB, got '"
                                    + s.layer + "'");
        s.sparsity = v.get("sparsity").asNumber(s.sparsity);
        if (!(s.sparsity >= 0.0 && s.sparsity < 1.0))
            return fail("'sparsity' must be in [0, 1)");
        if (const auto seed = u64Field(v, "seed"))
            s.seed = *seed;
        if (const auto m = u64Field(v, "m"))
            s.m = *m;
        if (s.m == 0 || s.m > 64)
            return fail("'m' must be in [1, 64]");
        if (v.has("strategy")) {
            s.strategy = v.get("strategy").asString();
            if (!core::isMaskStrategy(s.strategy))
                return fail("unknown mask strategy '" + s.strategy
                            + "'");
        }
        return req;
    }
    if (op.empty())
        return fail("missing 'op'");
    return fail("unknown op '" + op + "'");
}

std::string
serializeRequest(const Request &req)
{
    std::string out = "{\"id\": " + std::to_string(req.id);
    if (req.deadlineMs != 0)
        out += ", \"deadline_ms\": " + std::to_string(req.deadlineMs);
    switch (req.op) {
      case Op::Ping:
        out += ", \"op\": \"ping\"";
        break;
      case Op::Stats:
        out += ", \"op\": \"stats\"";
        break;
      case Op::Run: {
        const RunSpec &r = req.run;
        out += ", \"op\": \"run\", \"accel\": "
            + jsonQuote(accelWireName(r.kind));
        if (!r.model.empty())
            out += ", \"model\": " + jsonQuote(r.model);
        if (!r.layer.empty())
            out += ", \"layer\": " + jsonQuote(r.layer);
        out += ", \"sparsity\": " + jsonNumber(r.sparsity);
        out += ", \"seq\": " + std::to_string(r.seq);
        out += ", \"seed\": " + std::to_string(r.seed);
        if (r.int8Weights)
            out += ", \"int8\": true";
        if (r.full)
            out += ", \"full\": true";
        if (r.bw)
            out += ", \"bw\": " + jsonNumber(*r.bw);
        // Emitted only when set: default (greedy) requests keep their
        // historical wire bytes, so batcher dedup signatures and the
        // daemon-vs-one-shot byte-identity gate are unaffected.
        if (!r.strategy.empty())
            out += ", \"strategy\": " + jsonQuote(r.strategy);
        break;
      }
      case Op::Sparsify: {
        const SparsifySpec &s = req.sparsify;
        out += ", \"op\": \"sparsify\", \"layer\": "
            + jsonQuote(s.layer);
        out += ", \"sparsity\": " + jsonNumber(s.sparsity);
        out += ", \"seed\": " + std::to_string(s.seed);
        out += ", \"m\": " + std::to_string(s.m);
        if (!s.strategy.empty())
            out += ", \"strategy\": " + jsonQuote(s.strategy);
        break;
      }
    }
    out += "}";
    return out;
}

std::string
okResponse(uint64_t id, const std::string &resultJson)
{
    return "{\"id\": " + std::to_string(id)
        + ", \"ok\": true, \"result\": " + resultJson + "}";
}

std::string
errorResponse(uint64_t id, ErrorKind kind, const std::string &message,
              uint64_t retryAfterMs)
{
    std::string out = "{\"id\": " + std::to_string(id)
        + ", \"ok\": false, \"kind\": \""
        + errorKindName(kind) + "\", \"error\": " + jsonQuote(message);
    if (kind == ErrorKind::Busy || kind == ErrorKind::RateLimited
        || kind == ErrorKind::Overloaded)
        out += ", \"retry_after_ms\": " + std::to_string(retryAfterMs);
    out += "}";
    return out;
}

std::string
runResultJson(const sim::RunStats &stats, const std::string &label)
{
    return "{\"label\": " + jsonQuote(label)
        + ", \"csv\": " + jsonQuote(formatStats(label, stats, true))
        + ", \"text\": " + jsonQuote(formatStats(label, stats, false))
        + ", \"cycles\": " + jsonNumber(stats.cycles)
        + ", \"seconds\": " + jsonNumber(stats.seconds)
        + ", \"energy_j\": " + jsonNumber(stats.energy.totalJ()) + "}";
}

std::string
sparsifyResultJson(const SparsifyResult &r)
{
    return "{\"rows\": " + std::to_string(r.rows)
        + ", \"cols\": " + std::to_string(r.cols)
        + ", \"nnz\": " + std::to_string(r.nnz)
        + ", \"ddc_bytes\": " + std::to_string(r.ddcBytes)
        + ", \"ddc_crc32\": " + std::to_string(r.ddcCrc32) + "}";
}

FrameStatus
readFrame(int fd, std::string &out, size_t maxBytes)
{
    uint8_t lenBuf[4];
    size_t got = 0;
    while (got < sizeof lenBuf) {
        const ssize_t n =
            ::recv(fd, lenBuf + got, sizeof lenBuf - got, 0);
        if (n == 0)
            return got == 0 ? FrameStatus::Eof : FrameStatus::Error;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return FrameStatus::Error;
        }
        got += static_cast<size_t>(n);
    }
    const uint32_t len = static_cast<uint32_t>(lenBuf[0])
        | static_cast<uint32_t>(lenBuf[1]) << 8
        | static_cast<uint32_t>(lenBuf[2]) << 16
        | static_cast<uint32_t>(lenBuf[3]) << 24;
    if (len == 0 || len > maxBytes)
        return FrameStatus::TooBig;
    out.resize(len);
    size_t off = 0;
    while (off < len) {
        const ssize_t n = ::recv(fd, out.data() + off, len - off, 0);
        if (n == 0)
            return FrameStatus::Error;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return FrameStatus::Error;
        }
        off += static_cast<size_t>(n);
    }
    return FrameStatus::Ok;
}

bool
writeFrame(int fd, std::string_view payload)
{
    if (payload.empty() || payload.size() > UINT32_MAX)
        return false;
    const uint32_t len = static_cast<uint32_t>(payload.size());
    std::string buf;
    buf.reserve(4 + payload.size());
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>(len >> (8 * i)));
    buf.append(payload);
    size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n = ::send(fd, buf.data() + off, buf.size() - off,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

namespace {

using Clock = std::chrono::steady_clock;

/** Absolute deadline @p ms from now; max() when @p ms is 0. */
Clock::time_point
deadlineFrom(Clock::time_point now, uint64_t ms)
{
    if (ms == 0)
        return Clock::time_point::max();
    return now + std::chrono::milliseconds(ms);
}

/** Poll @p fd for @p events until @p deadline. True = ready. */
bool
pollUntil(int fd, short events, Clock::time_point deadline)
{
    for (;;) {
        int timeoutMs = -1;
        if (deadline != Clock::time_point::max()) {
            const auto now = Clock::now();
            if (now >= deadline)
                return false;
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - now)
                    .count();
            timeoutMs = static_cast<int>(
                left > 60000 ? 60000 : (left < 1 ? 1 : left));
        }
        pollfd pfd{fd, events, 0};
        const int rc = ::poll(&pfd, 1, timeoutMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return true; // let recv/send surface the real error
        }
        if (rc > 0)
            return true;
        if (deadline == Clock::time_point::max())
            continue;
        if (Clock::now() >= deadline)
            return false;
    }
}

/**
 * Receive exactly @p need bytes into @p dst, honoring @p deadline.
 * Returns Ok, Eof (peer closed with 0 bytes received overall when
 * @p eofAtStart), Error, or Timeout.
 */
FrameStatus
recvExact(int fd, uint8_t *dst, size_t need, bool eofAtStart,
          Clock::time_point &deadline, const FrameTimeouts &t,
          bool &sawFirstByte)
{
    size_t got = 0;
    while (got < need) {
        const ssize_t n =
            ::recv(fd, dst + got, need - got, MSG_DONTWAIT);
        if (n > 0) {
            if (!sawFirstByte) {
                // The frame has begun: switch from the idle deadline
                // to the (usually tighter) frame-completion deadline.
                sawFirstByte = true;
                deadline = deadlineFrom(Clock::now(), t.frameMs);
            }
            got += static_cast<size_t>(n);
            continue;
        }
        if (n == 0)
            return (eofAtStart && got == 0 && !sawFirstByte)
                ? FrameStatus::Eof
                : FrameStatus::Error;
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            return FrameStatus::Error;
        if (!pollUntil(fd, POLLIN, deadline))
            return FrameStatus::Timeout;
    }
    return FrameStatus::Ok;
}

} // namespace

FrameStatus
readFrameDeadline(int fd, std::string &out, size_t maxBytes,
                  const FrameTimeouts &t)
{
    bool sawFirstByte = false;
    auto deadline = deadlineFrom(Clock::now(), t.idleMs);

    uint8_t lenBuf[4];
    const FrameStatus hdr = recvExact(fd, lenBuf, sizeof lenBuf, true,
                                      deadline, t, sawFirstByte);
    if (hdr != FrameStatus::Ok)
        return hdr;
    const uint32_t len = static_cast<uint32_t>(lenBuf[0])
        | static_cast<uint32_t>(lenBuf[1]) << 8
        | static_cast<uint32_t>(lenBuf[2]) << 16
        | static_cast<uint32_t>(lenBuf[3]) << 24;
    if (len == 0 || len > maxBytes)
        return FrameStatus::TooBig;
    out.resize(len);
    return recvExact(fd, reinterpret_cast<uint8_t *>(out.data()), len,
                     false, deadline, t, sawFirstByte);
}

bool
writeFrameDeadline(int fd, std::string_view payload, uint64_t timeoutMs)
{
    if (payload.empty() || payload.size() > UINT32_MAX)
        return false;
    const uint32_t len = static_cast<uint32_t>(payload.size());
    std::string buf;
    buf.reserve(4 + payload.size());
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>(len >> (8 * i)));
    buf.append(payload);

    const auto deadline = deadlineFrom(Clock::now(), timeoutMs);
    size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n =
            ::send(fd, buf.data() + off, buf.size() - off,
                   MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
            return false;
        if (!pollUntil(fd, POLLOUT, deadline)) {
            // Distinguishable from a peer error for the caller's
            // accounting (pollUntil(false) always means deadline).
            errno = ETIMEDOUT;
            return false;
        }
    }
    return true;
}

int
connectClient(const std::string &socketPath, uint16_t port,
              std::string &err)
{
    int fd = -1;
    if (!socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (socketPath.size() >= sizeof addr.sun_path) {
            err = "socket path too long: " + socketPath;
            return -1;
        }
        std::strncpy(addr.sun_path, socketPath.c_str(),
                     sizeof addr.sun_path - 1);
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd >= 0
            && ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof addr)
                != 0) {
            ::close(fd);
            fd = -1;
        }
    } else {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd >= 0
            && ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof addr)
                != 0) {
            ::close(fd);
            fd = -1;
        }
    }
    if (fd < 0)
        err = std::string("connect: ") + std::strerror(errno);
    return fd;
}

} // namespace tbstc::serve
