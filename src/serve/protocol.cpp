#include "protocol.hpp"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace tbstc::serve {

namespace {

/** Read a non-negative integer field; nullopt on absence/mismatch. */
std::optional<uint64_t>
u64Field(const JsonValue &obj, std::string_view name)
{
    const JsonValue &v = obj.get(name);
    if (v.type() != JsonValue::Type::Number)
        return std::nullopt;
    const double d = v.asNumber();
    if (d < 0.0 || d != std::floor(d) || d > 9.007199254740992e15)
        return std::nullopt;
    return static_cast<uint64_t>(d);
}

} // namespace

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::BadRequest: return "bad_request";
      case ErrorKind::Busy: return "busy";
      case ErrorKind::ShuttingDown: return "shutting_down";
      case ErrorKind::Internal: return "internal";
    }
    return "internal";
}

util::Result<Request, RequestError>
parseRequest(std::string_view json)
{
    const auto doc = parseJson(json);
    if (!doc)
        return util::unexpected(RequestError{
            0, "invalid JSON at byte "
                   + std::to_string(doc.error().offset) + ": "
                   + doc.error().message});
    const JsonValue &v = *doc;
    if (!v.isObject())
        return util::unexpected(
            RequestError{0, "request must be a JSON object"});

    Request req;
    if (const auto id = u64Field(v, "id"))
        req.id = *id;
    else if (v.has("id"))
        return util::unexpected(
            RequestError{0, "'id' must be a non-negative integer"});

    const auto fail = [&req](std::string message) {
        return util::unexpected(RequestError{req.id,
                                             std::move(message)});
    };

    const std::string &op = v.get("op").asString();
    if (op == "ping") {
        req.op = Op::Ping;
        return req;
    }
    if (op == "stats") {
        req.op = Op::Stats;
        return req;
    }
    if (op == "run") {
        req.op = Op::Run;
        RunSpec &r = req.run;
        const std::string &accel = v.get("accel").asString();
        const auto kind = tryParseAccel(accel);
        if (!kind)
            return fail("unknown accelerator '" + accel
                                    + "'");
        r.kind = *kind;
        r.model = v.get("model").asString();
        r.layer = v.get("layer").asString();
        if (r.model.empty() && r.layer.empty())
            return fail("need 'model' or 'layer'");
        if (!r.model.empty() && !tryParseModel(r.model))
            return fail("unknown model '" + r.model + "'");
        if (!r.layer.empty() && !tryParseLayer(r.layer, "cli.layer"))
            return fail("layer spec must be XxYxNB, got '"
                                    + r.layer + "'");
        r.sparsity = v.get("sparsity").asNumber(r.sparsity);
        if (!(r.sparsity >= 0.0 && r.sparsity < 1.0))
            return fail("'sparsity' must be in [0, 1)");
        if (const auto seq = u64Field(v, "seq"))
            r.seq = *seq;
        if (const auto seed = u64Field(v, "seed"))
            r.seed = *seed;
        r.int8Weights = v.get("int8").asBool(false);
        r.full = v.get("full").asBool(false);
        if (v.has("bw")) {
            const double bw = v.get("bw").asNumber(-1.0);
            if (bw <= 0.0)
                return fail("'bw' must be positive");
            r.bw = bw;
        }
        return req;
    }
    if (op == "sparsify") {
        req.op = Op::Sparsify;
        SparsifySpec &s = req.sparsify;
        s.layer = v.get("layer").asString();
        if (s.layer.empty() || !tryParseLayer(s.layer, "cli.formats"))
            return fail("layer spec must be XxYxNB, got '"
                                    + s.layer + "'");
        s.sparsity = v.get("sparsity").asNumber(s.sparsity);
        if (!(s.sparsity >= 0.0 && s.sparsity < 1.0))
            return fail("'sparsity' must be in [0, 1)");
        if (const auto seed = u64Field(v, "seed"))
            s.seed = *seed;
        if (const auto m = u64Field(v, "m"))
            s.m = *m;
        if (s.m == 0 || s.m > 64)
            return fail("'m' must be in [1, 64]");
        return req;
    }
    if (op.empty())
        return fail("missing 'op'");
    return fail("unknown op '" + op + "'");
}

std::string
serializeRequest(const Request &req)
{
    std::string out = "{\"id\": " + std::to_string(req.id);
    switch (req.op) {
      case Op::Ping:
        out += ", \"op\": \"ping\"";
        break;
      case Op::Stats:
        out += ", \"op\": \"stats\"";
        break;
      case Op::Run: {
        const RunSpec &r = req.run;
        out += ", \"op\": \"run\", \"accel\": "
            + jsonQuote(accelWireName(r.kind));
        if (!r.model.empty())
            out += ", \"model\": " + jsonQuote(r.model);
        if (!r.layer.empty())
            out += ", \"layer\": " + jsonQuote(r.layer);
        out += ", \"sparsity\": " + jsonNumber(r.sparsity);
        out += ", \"seq\": " + std::to_string(r.seq);
        out += ", \"seed\": " + std::to_string(r.seed);
        if (r.int8Weights)
            out += ", \"int8\": true";
        if (r.full)
            out += ", \"full\": true";
        if (r.bw)
            out += ", \"bw\": " + jsonNumber(*r.bw);
        break;
      }
      case Op::Sparsify: {
        const SparsifySpec &s = req.sparsify;
        out += ", \"op\": \"sparsify\", \"layer\": "
            + jsonQuote(s.layer);
        out += ", \"sparsity\": " + jsonNumber(s.sparsity);
        out += ", \"seed\": " + std::to_string(s.seed);
        out += ", \"m\": " + std::to_string(s.m);
        break;
      }
    }
    out += "}";
    return out;
}

std::string
okResponse(uint64_t id, const std::string &resultJson)
{
    return "{\"id\": " + std::to_string(id)
        + ", \"ok\": true, \"result\": " + resultJson + "}";
}

std::string
errorResponse(uint64_t id, ErrorKind kind, const std::string &message,
              uint64_t retryAfterMs)
{
    std::string out = "{\"id\": " + std::to_string(id)
        + ", \"ok\": false, \"kind\": \""
        + errorKindName(kind) + "\", \"error\": " + jsonQuote(message);
    if (kind == ErrorKind::Busy)
        out += ", \"retry_after_ms\": " + std::to_string(retryAfterMs);
    out += "}";
    return out;
}

std::string
runResultJson(const sim::RunStats &stats, const std::string &label)
{
    return "{\"label\": " + jsonQuote(label)
        + ", \"csv\": " + jsonQuote(formatStats(label, stats, true))
        + ", \"text\": " + jsonQuote(formatStats(label, stats, false))
        + ", \"cycles\": " + jsonNumber(stats.cycles)
        + ", \"seconds\": " + jsonNumber(stats.seconds)
        + ", \"energy_j\": " + jsonNumber(stats.energy.totalJ()) + "}";
}

std::string
sparsifyResultJson(const SparsifyResult &r)
{
    return "{\"rows\": " + std::to_string(r.rows)
        + ", \"cols\": " + std::to_string(r.cols)
        + ", \"nnz\": " + std::to_string(r.nnz)
        + ", \"ddc_bytes\": " + std::to_string(r.ddcBytes)
        + ", \"ddc_crc32\": " + std::to_string(r.ddcCrc32) + "}";
}

FrameStatus
readFrame(int fd, std::string &out, size_t maxBytes)
{
    uint8_t lenBuf[4];
    size_t got = 0;
    while (got < sizeof lenBuf) {
        const ssize_t n =
            ::recv(fd, lenBuf + got, sizeof lenBuf - got, 0);
        if (n == 0)
            return got == 0 ? FrameStatus::Eof : FrameStatus::Error;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return FrameStatus::Error;
        }
        got += static_cast<size_t>(n);
    }
    const uint32_t len = static_cast<uint32_t>(lenBuf[0])
        | static_cast<uint32_t>(lenBuf[1]) << 8
        | static_cast<uint32_t>(lenBuf[2]) << 16
        | static_cast<uint32_t>(lenBuf[3]) << 24;
    if (len == 0 || len > maxBytes)
        return FrameStatus::TooBig;
    out.resize(len);
    size_t off = 0;
    while (off < len) {
        const ssize_t n = ::recv(fd, out.data() + off, len - off, 0);
        if (n == 0)
            return FrameStatus::Error;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return FrameStatus::Error;
        }
        off += static_cast<size_t>(n);
    }
    return FrameStatus::Ok;
}

bool
writeFrame(int fd, std::string_view payload)
{
    if (payload.empty() || payload.size() > UINT32_MAX)
        return false;
    const uint32_t len = static_cast<uint32_t>(payload.size());
    std::string buf;
    buf.reserve(4 + payload.size());
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>(len >> (8 * i)));
    buf.append(payload);
    size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n = ::send(fd, buf.data() + off, buf.size() - off,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace tbstc::serve
