#include "server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace tbstc::serve {

namespace {

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

/** Outcome of executing one distinct request signature. */
struct ExecResult
{
    bool ok = false;
    std::string payload; ///< Result JSON, or the error message.
};

/** Growth factor cap for the busy retry hint (base * up to 32). */
constexpr uint64_t kMaxBusyHintMultiplier = 32;

} // namespace

Conn::Conn(int fd, std::shared_ptr<const ServeLimits> limits,
           std::atomic<uint64_t> *writeTimeouts)
    : fd_(fd), limits_(std::move(limits)),
      writeTimeouts_(writeTimeouts), tokens_(limits_->rateBurst),
      lastRefill_(std::chrono::steady_clock::now())
{
}

Conn::~Conn()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
Conn::send(std::string_view payload)
{
    const std::lock_guard lk(writeMutex_);
    errno = 0;
    if (writeFrameDeadline(fd_, payload, limits_->writeTimeoutMs))
        return true;
    if (errno == ETIMEDOUT && writeTimeouts_ != nullptr)
        writeTimeouts_->fetch_add(1, std::memory_order_relaxed);
    // A peer that cannot be written to cannot be served: shut the
    // socket down so the reader reaps the connection instead of
    // parsing more frames it can never answer.
    ::shutdown(fd_, SHUT_RDWR);
    return false;
}

void
Conn::shutdownBoth()
{
    ::shutdown(fd_, SHUT_RDWR);
}

bool
Conn::tryTakeToken(uint64_t &retryMs)
{
    const double rate = limits_->ratePerSec;
    if (rate <= 0.0)
        return true;
    const double burst = std::max(limits_->rateBurst, 1.0);
    const std::lock_guard lk(rateMutex_);
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - lastRefill_).count();
    lastRefill_ = now;
    tokens_ = std::min(burst, tokens_ + elapsed * rate);
    if (tokens_ >= 1.0) {
        tokens_ -= 1.0;
        return true;
    }
    retryMs =
        static_cast<uint64_t>((1.0 - tokens_) / rate * 1000.0) + 1;
    return false;
}

void
Conn::refundToken()
{
    if (limits_->ratePerSec <= 0.0)
        return;
    const double burst = std::max(limits_->rateBurst, 1.0);
    const std::lock_guard lk(rateMutex_);
    tokens_ = std::min(burst, tokens_ + 1.0);
}

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      limits_(std::make_shared<const ServeLimits>(opts_.limits)),
      queue_(opts_.limits.queueCapacity)
{
}

Server::~Server()
{
    beginShutdown();
    wait();
}

util::Result<uint16_t, std::string>
Server::start()
{
    if (started_)
        return util::unexpected(std::string("server already started"));

    if (::pipe(wakeFds_) != 0)
        return util::unexpected(errnoString("pipe"));

    if (!opts_.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opts_.socketPath.size() >= sizeof addr.sun_path)
            return util::unexpected("socket path too long: "
                                    + opts_.socketPath);
        std::strncpy(addr.sun_path, opts_.socketPath.c_str(),
                     sizeof addr.sun_path - 1);
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            return util::unexpected(errnoString("socket"));
        ::unlink(opts_.socketPath.c_str());
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr)
            != 0)
            return util::unexpected(
                errnoString(("bind " + opts_.socketPath).c_str()));
    } else {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            return util::unexpected(errnoString("socket"));
        const int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(opts_.tcpPort);
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr)
            != 0)
            return util::unexpected(errnoString("bind 127.0.0.1"));
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        if (::getsockname(listenFd_,
                          reinterpret_cast<sockaddr *>(&bound), &len)
            != 0)
            return util::unexpected(errnoString("getsockname"));
        port_ = ntohs(bound.sin_port);
    }

    if (::listen(listenFd_, 64) != 0)
        return util::unexpected(errnoString("listen"));

    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    batcherThread_ = std::thread([this] { batcherLoop(); });
    return port_;
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[2];
        fds[0] = {wakeFds_[0], POLLIN, 0};
        fds[1] = {listenFd_, POLLIN, 0};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[0].revents != 0)
            break; // beginShutdown woke us: stop accepting.
        if ((fds[1].revents & POLLIN) == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break;
        }
        auto limits = limitsSnapshot();
        if (limits->maxConnections > 0
            && liveConns_.load(std::memory_order_relaxed)
                >= limits->maxConnections) {
            // Shed at accept: one typed error frame, then close. The
            // frame is far smaller than a socket buffer, so the
            // deadline write cannot stall the accept thread.
            shed_.fetch_add(1, std::memory_order_relaxed);
            (void)writeFrameDeadline(
                fd,
                errorResponse(0, ErrorKind::Overloaded,
                              "connection limit reached; retry",
                              limits->retryAfterMs),
                limits->writeTimeoutMs);
            ::close(fd);
            continue;
        }
        connections_.fetch_add(1, std::memory_order_relaxed);
        liveConns_.fetch_add(1, std::memory_order_relaxed);
        auto conn =
            std::make_shared<Conn>(fd, std::move(limits), &timeouts_);
        ReaderSlot slot;
        auto done = slot.done;
        slot.thread = std::thread(
            [this, conn, done] { readerLoop(conn, done); });
        {
            const std::lock_guard lk(connsMutex_);
            // Prune finished readers so a long-lived daemon does not
            // accumulate one dead thread handle per past connection.
            for (auto &r : readers_)
                if (r.done->load(std::memory_order_acquire)
                    && r.thread.joinable())
                    r.thread.join();
            std::erase_if(readers_, [](const ReaderSlot &r) {
                return !r.thread.joinable();
            });
            std::erase_if(conns_, [](const std::shared_ptr<Conn> &c) {
                return c.use_count() == 1;
            });
            conns_.push_back(conn);
            readers_.push_back(std::move(slot));
        }
    }
}

void
Server::readerLoop(std::shared_ptr<Conn> conn,
                   std::shared_ptr<std::atomic<bool>> done)
{
    const ServeLimits &lim = conn->limits();
    const FrameTimeouts timeouts{lim.idleTimeoutMs, lim.readTimeoutMs};
    std::string buf;
    for (;;) {
        const FrameStatus st = readFrameDeadline(
            conn->fd(), buf, opts_.maxFrameBytes, timeouts);
        if (st == FrameStatus::Eof || st == FrameStatus::Error)
            break;
        if (st == FrameStatus::Timeout) {
            // Half-open, idle, or slow-loris peer: reap it. No
            // farewell frame — a peer that stopped sending mid-frame
            // has desynchronized framing anyway.
            timeouts_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        if (st == FrameStatus::TooBig) {
            badFrames_.fetch_add(1, std::memory_order_relaxed);
            conn->send(errorResponse(
                0, ErrorKind::BadRequest,
                "frame length invalid or above cap"));
            break;
        }
        auto parsed = parseRequest(buf);
        if (!parsed) {
            badRequests_.fetch_add(1, std::memory_order_relaxed);
            conn->send(errorResponse(parsed.error().id,
                                     ErrorKind::BadRequest,
                                     parsed.error().message));
            continue;
        }
        Request req = std::move(*parsed);
        if (req.op == Op::Ping) {
            // Pings stay outside the fairness gates: health probes
            // must work even on a rate-limited connection.
            pings_.fetch_add(1, std::memory_order_relaxed);
            conn->send(okResponse(req.id, "{\"pong\": true}"));
            continue;
        }
        const uint64_t id = req.id;

        // Per-client fairness gates, checked before the shared queue
        // so one greedy connection answers for its own appetite
        // instead of starving everyone through busy rejections.
        uint64_t retryMs = lim.retryAfterMs;
        if (!conn->tryTakeToken(retryMs)) {
            rateLimited_.fetch_add(1, std::memory_order_relaxed);
            conn->send(errorResponse(id, ErrorKind::RateLimited,
                                     "per-client rate limit; retry",
                                     retryMs));
            continue;
        }
        if (lim.maxInflight > 0
            && conn->inflight() >= lim.maxInflight) {
            conn->refundToken();
            rateLimited_.fetch_add(1, std::memory_order_relaxed);
            conn->send(errorResponse(
                id, ErrorKind::RateLimited,
                "per-client in-flight cap reached; retry",
                lim.retryAfterMs));
            continue;
        }

        PendingRequest pending;
        pending.conn = conn;
        pending.req = std::move(req);
        pending.enqueued = std::chrono::steady_clock::now();
        if (pending.req.deadlineMs > 0) {
            pending.hasDeadline = true;
            pending.deadline = pending.enqueued
                + std::chrono::milliseconds(pending.req.deadlineMs);
        }
        conn->addInflight();
        // Count the acceptance before publishing the request: the
        // batcher may pop and answer it (a stats snapshot, say)
        // before a post-push increment would land. Rejections undo.
        acceptedReqs_.fetch_add(1, std::memory_order_relaxed);
        switch (queue_.tryPush(std::move(pending))) {
          case PushResult::Ok:
            busyStreak_.store(0, std::memory_order_relaxed);
            break;
          case PushResult::Full: {
            acceptedReqs_.fetch_sub(1, std::memory_order_relaxed);
            conn->subInflight();
            conn->refundToken();
            busyRejected_.fetch_add(1, std::memory_order_relaxed);
            // Hint grows with sustained pressure: the first rejection
            // advertises the base, each consecutive one backs clients
            // off further (capped so hints stay finite).
            const uint64_t streak =
                busyStreak_.fetch_add(1, std::memory_order_relaxed);
            const uint64_t mult = 1
                + std::min<uint64_t>(streak,
                                     kMaxBusyHintMultiplier - 1);
            conn->send(errorResponse(id, ErrorKind::Busy,
                                     "request queue full; retry",
                                     lim.retryAfterMs * mult));
            break;
          }
          case PushResult::Closed:
            acceptedReqs_.fetch_sub(1, std::memory_order_relaxed);
            conn->subInflight();
            conn->refundToken();
            drainRejected_.fetch_add(1, std::memory_order_relaxed);
            conn->send(errorResponse(id, ErrorKind::ShuttingDown,
                                     "server is draining"));
            break;
        }
    }
    // Shut the socket down now so the peer sees FIN immediately; the
    // fd itself closes when the last in-flight answer releases the
    // Conn. Without this, a reaped half-open client would keep an
    // ESTABLISHED socket until the next accept prunes the list.
    conn->shutdownBoth();
    liveConns_.fetch_sub(1, std::memory_order_relaxed);
    done->store(true, std::memory_order_release);
}

void
Server::batcherLoop()
{
    for (;;) {
        auto batch = queue_.popBatch(opts_.maxBatch);
        if (batch.empty())
            break; // closed and fully drained
        if (opts_.batchHook)
            opts_.batchHook(batch.size());
        executeBatch(batch);
        batches_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
Server::executeBatch(std::vector<PendingRequest> &batch)
{
    // All obs recording below happens on this (batcher) thread or
    // inside the pool batch, whose completion synchronizes with us —
    // so the stats path's metricsJson() never races a recording.
    static const obs::Gauge depthGauge =
        obs::gauge("serve.queue.depth", obs::Domain::Host);
    static const obs::Histogram batchHist = obs::histogram(
        "serve.batch.size", 0.0, 64.0, 64, obs::Domain::Host);
    static const obs::Histogram latencyHist = obs::histogram(
        "serve.latency.ms", 0.0, 1000.0, 100, obs::Domain::Host);
    static const obs::Counter reqCounter =
        obs::counter("serve.requests", obs::Domain::Host);
    static const obs::Counter dedupCounter =
        obs::counter("serve.batch.dedup_hits", obs::Domain::Host);

    if (obs::metricsEnabled()) {
        depthGauge.record(static_cast<int64_t>(queue_.depth()));
        batchHist.observe(static_cast<double>(batch.size()));
        reqCounter.add(batch.size());
    }

    // First pass: requests whose deadline expired while queued are
    // answered without executing (the client has given up; running
    // the work would only steal pool time from live requests), and
    // stats requests are answered here, between executions, where the
    // obs export is quiescent by construction.
    const auto entryNow = std::chrono::steady_clock::now();
    std::vector<size_t> execIdx;
    execIdx.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        const PendingRequest &p = batch[i];
        if (p.hasDeadline && entryNow >= p.deadline) {
            deadlineExceeded_.fetch_add(1, std::memory_order_relaxed);
            p.conn->send(errorResponse(
                p.req.id, ErrorKind::DeadlineExceeded,
                "deadline_ms expired before execution"));
            answered_.fetch_add(1, std::memory_order_relaxed);
            p.conn->subInflight();
        } else if (p.req.op == Op::Stats) {
            p.conn->send(okResponse(p.req.id, statsJson()));
            answered_.fetch_add(1, std::memory_order_relaxed);
            p.conn->subInflight();
        } else {
            execIdx.push_back(i);
        }
    }

    // Coalesce identical requests: one execution per distinct
    // signature (the request serialized with id and deadline zeroed —
    // the same work coalesces no matter what budget each duplicate
    // declared), fanned out to every duplicate. Signatures keep
    // first-appearance order, so the parallel region's chunk layout
    // is deterministic for a given batch.
    std::vector<std::string> sigs;
    std::vector<size_t> groupOf(execIdx.size());
    std::map<std::string, size_t> groupBySig;
    for (size_t k = 0; k < execIdx.size(); ++k) {
        Request keyReq = batch[execIdx[k]].req;
        keyReq.id = 0;
        keyReq.deadlineMs = 0;
        std::string sig = serializeRequest(keyReq);
        const auto [it, inserted] =
            groupBySig.try_emplace(std::move(sig), sigs.size());
        if (inserted)
            sigs.push_back(it->first);
        groupOf[k] = it->second;
    }
    if (execIdx.size() > sigs.size()) {
        const uint64_t hits = execIdx.size() - sigs.size();
        dedupHits_.fetch_add(hits, std::memory_order_relaxed);
        if (obs::metricsEnabled())
            dedupCounter.add(hits);
    }

    std::vector<size_t> representative(sigs.size());
    for (size_t k = execIdx.size(); k-- > 0;)
        representative[groupOf[k]] = execIdx[k];

    const auto results = util::parallelMap<ExecResult>(
        sigs.size(), [&](size_t g) {
            const Request &req = batch[representative[g]].req;
            ExecResult r;
            try {
                if (req.op == Op::Run) {
                    const auto stats = executeRun(req.run);
                    r.payload = runResultJson(
                        stats, accel::accelName(req.run.kind));
                } else {
                    r.payload = sparsifyResultJson(
                        executeSparsify(req.sparsify));
                }
                r.ok = true;
            } catch (const std::exception &e) {
                r.payload = e.what();
            }
            return r;
        });

    const auto now = std::chrono::steady_clock::now();
    for (size_t k = 0; k < execIdx.size(); ++k) {
        const PendingRequest &p = batch[execIdx[k]];
        const ExecResult &r = results[groupOf[k]];
        if (r.ok)
            p.conn->send(okResponse(p.req.id, r.payload));
        else
            p.conn->send(errorResponse(p.req.id, ErrorKind::Internal,
                                       r.payload));
        answered_.fetch_add(1, std::memory_order_relaxed);
        p.conn->subInflight();
        if (obs::metricsEnabled()) {
            const double ms =
                std::chrono::duration<double, std::milli>(
                    now - p.enqueued)
                    .count();
            latencyHist.observe(ms);
        }
    }
}

std::string
Server::statsJson() const
{
    const ServerCounters c = counters();
    std::string out = "{\"schema\": \"tbstc.serve.stats.v1\", ";
    out += "\"server\": {";
    out += "\"connections\": " + std::to_string(c.connections);
    out += ", \"live_connections\": "
        + std::to_string(liveConns_.load(std::memory_order_relaxed));
    out += ", \"accepted\": " + std::to_string(c.accepted);
    out += ", \"pings\": " + std::to_string(c.pings);
    out += ", \"busy_rejected\": " + std::to_string(c.busyRejected);
    out += ", \"drain_rejected\": " + std::to_string(c.drainRejected);
    out += ", \"bad_requests\": " + std::to_string(c.badRequests);
    out += ", \"bad_frames\": " + std::to_string(c.badFrames);
    out += ", \"answered\": " + std::to_string(c.answered);
    out += ", \"dedup_hits\": " + std::to_string(c.dedupHits);
    out += ", \"batches\": " + std::to_string(c.batches);
    out += ", \"timeouts\": " + std::to_string(c.timeouts);
    out += ", \"shed\": " + std::to_string(c.shed);
    out += ", \"rate_limited\": " + std::to_string(c.rateLimited);
    out += ", \"deadline_exceeded\": "
        + std::to_string(c.deadlineExceeded);
    out += ", \"reloads\": " + std::to_string(c.reloads);
    out += ", \"queue_depth\": " + std::to_string(queue_.depth());
    out += ", \"queue_capacity\": " + std::to_string(queue_.capacity());
    out += std::string(", \"draining\": ")
        + (draining_.load(std::memory_order_relaxed) ? "true"
                                                     : "false");
    out += "}, \"limits\": " + limitsJson(*limitsSnapshot());
    out += ", \"metrics\": " + obs::metricsJson(true) + "}";
    return out;
}

ServerCounters
Server::counters() const
{
    ServerCounters c;
    c.connections = connections_.load(std::memory_order_relaxed);
    c.accepted = acceptedReqs_.load(std::memory_order_relaxed);
    c.pings = pings_.load(std::memory_order_relaxed);
    c.busyRejected = busyRejected_.load(std::memory_order_relaxed);
    c.drainRejected = drainRejected_.load(std::memory_order_relaxed);
    c.badRequests = badRequests_.load(std::memory_order_relaxed);
    c.badFrames = badFrames_.load(std::memory_order_relaxed);
    c.answered = answered_.load(std::memory_order_relaxed);
    c.dedupHits = dedupHits_.load(std::memory_order_relaxed);
    c.batches = batches_.load(std::memory_order_relaxed);
    c.timeouts = timeouts_.load(std::memory_order_relaxed);
    c.shed = shed_.load(std::memory_order_relaxed);
    c.rateLimited = rateLimited_.load(std::memory_order_relaxed);
    c.deadlineExceeded =
        deadlineExceeded_.load(std::memory_order_relaxed);
    c.reloads = reloads_.load(std::memory_order_relaxed);
    return c;
}

void
Server::reloadLimits(const ServeLimits &limits)
{
    auto next = std::make_shared<const ServeLimits>(limits);
    {
        const std::lock_guard lk(limitsMutex_);
        limits_ = std::move(next);
    }
    // The queue is shared (not per-connection), so its threshold
    // changes immediately; in-flight items above a shrunken capacity
    // still drain normally.
    queue_.setCapacity(limits.queueCapacity);
    reloads_.fetch_add(1, std::memory_order_relaxed);
}

ServeLimits
Server::currentLimits() const
{
    return *limitsSnapshot();
}

std::shared_ptr<const ServeLimits>
Server::limitsSnapshot() const
{
    const std::lock_guard lk(limitsMutex_);
    return limits_;
}

void
Server::beginShutdown()
{
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true))
        return;
    if (wakeFds_[1] >= 0) {
        const char b = 1;
        // A full pipe cannot happen (one byte ever written), but be
        // explicit that the result is irrelevant.
        (void)!::write(wakeFds_[1], &b, 1);
    }
    queue_.close();
}

void
Server::wait()
{
    if (!started_)
        return;
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (batcherThread_.joinable())
        batcherThread_.join();

    // Everything accepted has been answered. Unblock readers still
    // parked in readFrameDeadline and join them.
    std::vector<std::shared_ptr<Conn>> conns;
    std::vector<ReaderSlot> readers;
    {
        const std::lock_guard lk(connsMutex_);
        conns.swap(conns_);
        readers.swap(readers_);
    }
    for (auto &c : conns)
        c->shutdownBoth();
    for (auto &r : readers)
        if (r.thread.joinable())
            r.thread.join();
    conns.clear();

    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    for (int &fd : wakeFds_) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
    if (!opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());

    // All threads have joined: mirroring the reader-side atomics into
    // obs here is race-free by construction.
    if (obs::metricsEnabled()) {
        const ServerCounters c = counters();
        obs::counter("serve.connections", obs::Domain::Host)
            .add(c.connections);
        obs::counter("serve.rejected.busy", obs::Domain::Host)
            .add(c.busyRejected);
        obs::counter("serve.rejected.drain", obs::Domain::Host)
            .add(c.drainRejected);
        obs::counter("serve.bad_requests", obs::Domain::Host)
            .add(c.badRequests);
        obs::counter("serve.answered", obs::Domain::Host)
            .add(c.answered);
        obs::counter("serve.timeouts", obs::Domain::Host)
            .add(c.timeouts);
        obs::counter("serve.shed", obs::Domain::Host).add(c.shed);
        obs::counter("serve.ratelimited", obs::Domain::Host)
            .add(c.rateLimited);
        obs::counter("serve.deadline_exceeded", obs::Domain::Host)
            .add(c.deadlineExceeded);
    }
    util::drainPool();
    if (!opts_.metricsPath.empty())
        obs::writeMetricsJson(opts_.metricsPath, true);
    started_ = false;
}

} // namespace tbstc::serve
