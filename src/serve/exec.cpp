#include "exec.hpp"

#include <cstdio>
#include <map>
#include <stdexcept>

#include "core/mask_search.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "format/serialize.hpp"
#include "util/crc32.hpp"
#include "workload/synth.hpp"

namespace tbstc::serve {

namespace {

/** Row cap used by the formats/sparsify pipeline (matches the CLI). */
constexpr uint64_t kSparsifyMaxRows = 4096;

} // namespace

std::optional<accel::AccelKind>
tryParseAccel(const std::string &name)
{
    static const std::map<std::string, accel::AccelKind> kinds{
        {"tc", accel::AccelKind::TC},
        {"stc", accel::AccelKind::STC},
        {"vegeta", accel::AccelKind::Vegeta},
        {"highlight", accel::AccelKind::HighLight},
        {"rmstc", accel::AccelKind::RmStc},
        {"sgcn", accel::AccelKind::Sgcn},
        {"tbstc", accel::AccelKind::TbStc},
        {"fan", accel::AccelKind::TbStcFan},
    };
    const auto it = kinds.find(name);
    if (it == kinds.end())
        return std::nullopt;
    return it->second;
}

std::string
accelWireName(accel::AccelKind kind)
{
    switch (kind) {
      case accel::AccelKind::TC:        return "tc";
      case accel::AccelKind::STC:       return "stc";
      case accel::AccelKind::Vegeta:    return "vegeta";
      case accel::AccelKind::HighLight: return "highlight";
      case accel::AccelKind::RmStc:     return "rmstc";
      case accel::AccelKind::Sgcn:      return "sgcn";
      case accel::AccelKind::TbStc:     return "tbstc";
      case accel::AccelKind::TbStcFan:  return "fan";
    }
    return "tbstc";
}

std::optional<workload::ModelId>
tryParseModel(const std::string &name)
{
    static const std::map<std::string, workload::ModelId> models{
        {"resnet50", workload::ModelId::ResNet50},
        {"resnet18", workload::ModelId::ResNet18},
        {"bert", workload::ModelId::BertBase},
        {"opt", workload::ModelId::Opt67b},
        {"llama", workload::ModelId::Llama27b},
    };
    const auto it = models.find(name);
    if (it == models.end())
        return std::nullopt;
    return it->second;
}

std::optional<workload::GemmShape>
tryParseLayer(const std::string &spec, const std::string &name)
{
    uint64_t x = 0;
    uint64_t y = 0;
    uint64_t nb = 0;
    if (std::sscanf(spec.c_str(), "%llux%llux%llu",
                    reinterpret_cast<unsigned long long *>(&x),
                    reinterpret_cast<unsigned long long *>(&y),
                    reinterpret_cast<unsigned long long *>(&nb))
        != 3)
        return std::nullopt;
    if (x == 0 || y == 0 || nb == 0)
        return std::nullopt;
    return workload::GemmShape{name, x, y, nb};
}

sim::RunStats
executeRun(const RunSpec &spec)
{
    // The protocol/CLI layers reject unknown strategies up front; this
    // backstop covers programmatic callers building specs directly.
    if (!core::isMaskStrategy(spec.strategy))
        throw std::invalid_argument("unknown mask strategy '"
                                    + spec.strategy + "'");
    std::optional<sim::ArchConfig> override;
    if (spec.bw) {
        auto cfg = accel::accelConfig(spec.kind);
        cfg.dramGbps = *spec.bw;
        override = cfg;
    }

    if (!spec.layer.empty()) {
        const auto shape = tryParseLayer(spec.layer, "cli.layer");
        if (!shape)
            throw std::invalid_argument(
                "layer spec must be XxYxNB, got '" + spec.layer + "'");
        accel::RunRequest req;
        req.shape = *shape;
        req.sparsity = spec.sparsity;
        req.seed = spec.seed;
        req.int8Weights = spec.int8Weights;
        req.maskStrategy = spec.strategy;
        req.configOverride = override;
        return accel::runLayer(spec.kind, req);
    }
    if (spec.model.empty())
        throw std::invalid_argument("need model or layer");
    const auto model = tryParseModel(spec.model);
    if (!model)
        throw std::invalid_argument("unknown model '" + spec.model + "'");
    if (spec.full) {
        // Full inference pass: weight GEMMs + dense attention GEMMs.
        return accel::runInference(spec.kind, *model, spec.sparsity,
                                   spec.seq, spec.int8Weights, spec.seed,
                                   spec.strategy);
    }
    if (override) {
        sim::RunStats total;
        for (const auto &shape :
             workload::modelLayers(*model, spec.seq)) {
            accel::RunRequest req;
            req.shape = shape;
            req.sparsity = spec.sparsity;
            req.seed = spec.seed;
            req.int8Weights = spec.int8Weights;
            req.maskStrategy = spec.strategy;
            req.configOverride = override;
            total.accumulate(accel::runLayer(spec.kind, req));
        }
        return total;
    }
    return accel::runModel(spec.kind, *model, spec.sparsity, spec.seq,
                           spec.int8Weights, spec.seed, spec.strategy);
}

SparsifyResult
executeSparsify(const SparsifySpec &spec)
{
    const auto shape = tryParseLayer(spec.layer, "cli.formats");
    if (!shape)
        throw std::invalid_argument(
            "layer spec must be XxYxNB, got '" + spec.layer + "'");
    if (spec.m == 0 || spec.m > 64)
        throw std::invalid_argument("block size m out of range");

    const auto w =
        workload::synthWeights(*shape, spec.seed, kSparsifyMaxRows);
    const auto scores = core::magnitudeScores(w);
    // The strategy-aware search; greedy (the empty default) delegates
    // to core::tbsMask verbatim, so strategy-less requests keep their
    // historical DDC bytes and CRCs.
    core::MaskRequest req;
    req.pattern = core::Pattern::TBS;
    req.strategy = spec.strategy;
    req.sparsity = spec.sparsity;
    req.m = static_cast<size_t>(spec.m);
    const auto tbs = core::tryMakeMask(scores, req);
    if (!tbs)
        throw std::invalid_argument(tbs.error().message);
    const auto bytes = format::serializeDdc(w, tbs->mask, tbs->meta);

    SparsifyResult out;
    out.rows = w.rows();
    out.cols = w.cols();
    out.nnz = tbs->mask.nnz();
    out.ddcBytes = bytes.size();
    out.ddcCrc32 = util::crc32(bytes);
    return out;
}

std::string
formatStats(const std::string &label, const sim::RunStats &s, bool csv)
{
    char buf[256];
    if (csv) {
        std::snprintf(buf, sizeof buf,
                      "%s,%.0f,%.6e,%.6e,%.6e,%.4f,%.4f\n",
                      label.c_str(), s.cycles, s.seconds,
                      s.energy.totalJ(), s.edp, s.computeUtilisation,
                      s.bwUtilisation);
        return buf;
    }
    std::snprintf(buf, sizeof buf,
                  "%-10s cycles=%.0f time=%.3f ms energy=%.3f mJ "
                  "EDP=%.4e computeUtil=%.1f%% bwUtil=%.1f%%\n",
                  label.c_str(), s.cycles, s.seconds * 1e3,
                  s.energy.totalJ() * 1e3, s.edp,
                  s.computeUtilisation * 100.0,
                  s.bwUtilisation * 100.0);
    return buf;
}

std::string
statsCsvHeader()
{
    return "accel,cycles,seconds,energyJ,edp,computeUtil,bwUtil\n";
}

} // namespace tbstc::serve
