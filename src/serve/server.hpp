/**
 * @file
 * The `tbstc serve` daemon: concurrent request execution over the
 * cached simulation pipeline.
 *
 * Thread architecture (one Server instance):
 *
 *   accept thread ──spawns──► one reader thread per connection
 *        │                         │ parse + inline ping
 *        │                         ▼
 *        │                  BoundedQueue (back-pressure: full → busy)
 *        │                         │
 *        ▼                         ▼
 *   wake pipe ◄──────────── batcher thread: pops a batch, dedups
 *                           identical requests, executes distinct
 *                           ones on the util/parallel pool, writes
 *                           responses in completion order
 *
 * Why a single batcher instead of N independent workers: requests
 * sharing an (accelerator, model, sparsity, ...) signature coalesce
 * into one execution whose result fans out to every duplicate, and the
 * distinct ones run as one deterministic parallel region — so the
 * ContentStore/profile cache sees one miss per distinct key instead of
 * a thundering herd, and obs recording happens only on the batcher or
 * inside pool batches (whose completion synchronizes with the
 * batcher), keeping metricsJson() export race-free without locks on
 * the hot path. Reader threads never record obs metrics; their event
 * counts are plain atomics mirrored into obs once at shutdown.
 *
 * Drain (SIGTERM → beginShutdown): stop accepting connections, close
 * the queue (new frames answered "shutting_down"), let the batcher
 * answer everything already accepted, then unblock readers and join.
 * Every accepted request is answered before wait() returns.
 *
 * Fault tolerance (see docs/serving.md "Operational limits & failure
 * modes"): every reader read is poll-based with an idle and a
 * per-frame deadline, so half-open and slow-loris clients are reaped
 * instead of pinning a thread; response writes carry a deadline too.
 * Accepts beyond the live-connection cap are shed with a typed
 * `overloaded` error. Each connection owns a token bucket and an
 * in-flight cap (per-client fairness: one greedy client is rate
 * limited before it can starve the shared queue), busy hints scale
 * with overload pressure, and requests carrying `deadline_ms` that
 * expire while queued are answered `deadline_exceeded` instead of
 * executing. All of these limits live in a ServeLimits snapshot that
 * reloadLimits() (SIGHUP in the CLI) swaps atomically: connections
 * already accepted finish under the limits they were admitted with,
 * new accepts see the new ones.
 */

#ifndef TBSTC_SERVE_SERVER_HPP
#define TBSTC_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "config.hpp"
#include "protocol.hpp"
#include "queue.hpp"
#include "util/result.hpp"

namespace tbstc::serve {

/** Server configuration (all knobs have serving-sane defaults). */
struct ServerOptions
{
    /** Unix socket path; when empty, a TCP socket on 127.0.0.1. */
    std::string socketPath;

    /** TCP port (0 = ephemeral, read back via Server::port()). */
    uint16_t tcpPort = 0;

    /** Max requests coalesced into one batcher execution. */
    size_t maxBatch = 32;

    /** Per-frame payload cap for this server's connections. */
    size_t maxFrameBytes = kDefaultMaxFrameBytes;

    /** When set, metricsJson(includeHost) is written here at drain. */
    std::string metricsPath;

    /**
     * Initial operational limits (queue capacity, deadlines, rates,
     * caps). Hot-reloadable at runtime via Server::reloadLimits().
     */
    ServeLimits limits;

    /**
     * Test hook: invoked by the batcher with the batch size before
     * executing it. A blocking hook holds the batcher so tests can
     * fill the queue deterministically and observe busy rejections.
     */
    std::function<void(size_t)> batchHook;
};

/** Reader/acceptor event counts (plain atomics; see file comment). */
struct ServerCounters
{
    uint64_t connections = 0;     ///< Connections ever accepted.
    uint64_t accepted = 0;        ///< Requests enqueued successfully.
    uint64_t pings = 0;           ///< Pings answered inline.
    uint64_t busyRejected = 0;    ///< Back-pressure rejections.
    uint64_t drainRejected = 0;   ///< Rejections during drain.
    uint64_t badRequests = 0;     ///< Parse/validation failures.
    uint64_t badFrames = 0;       ///< Oversized/zero-length frames.
    uint64_t answered = 0;        ///< Responses written by the batcher.
    uint64_t dedupHits = 0;       ///< Requests answered by a batch twin.
    uint64_t batches = 0;         ///< Batches executed.
    uint64_t timeouts = 0;        ///< Conns reaped by an I/O deadline.
    uint64_t shed = 0;            ///< Conns shed at accept (conn cap).
    uint64_t rateLimited = 0;     ///< Per-client limit rejections.
    uint64_t deadlineExceeded = 0; ///< Requests expired before exec.
    uint64_t reloads = 0;         ///< reloadLimits() applications.
};

/**
 * One accepted connection. Reader thread reads frames; responses may
 * be written by the reader (ping, rejections) or the batcher, so
 * writes are serialized by the per-connection mutex. The fd is owned
 * here and closed with the last shared_ptr, so a response to a
 * request that outlived its reader still has a live socket.
 *
 * The connection also carries its admission-time ServeLimits snapshot
 * and the per-client fairness state those limits govern: a token
 * bucket refilled in real time and a count of in-flight (queued but
 * unanswered) requests. Both are keyed by connection — the protocol
 * has no authentication, so the connection *is* the client identity.
 */
class Conn
{
  public:
    Conn(int fd, std::shared_ptr<const ServeLimits> limits,
         std::atomic<uint64_t> *writeTimeouts);
    ~Conn();
    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    int fd() const { return fd_; }

    /** Limits this connection was admitted under (immutable). */
    const ServeLimits &limits() const { return *limits_; }

    /**
     * Write one response frame (mutex-serialized, deadline-bounded by
     * limits().writeTimeoutMs). A timed-out or failed write shuts the
     * connection down so the reader stops serving a dead peer.
     */
    bool send(std::string_view payload);

    /** shutdown(2) both directions: wakes a blocked reader. */
    void shutdownBoth();

    /**
     * Take one token from the rate bucket. True when admitted (or
     * rate limiting is off); false with the milliseconds until the
     * next token in @p retryMs otherwise.
     */
    bool tryTakeToken(uint64_t &retryMs);

    /** Return a token taken for a request the queue then refused. */
    void refundToken();

    /** In-flight (queued, unanswered) request accounting. */
    size_t inflight() const
    {
        return inflight_.load(std::memory_order_relaxed);
    }
    void addInflight()
    {
        inflight_.fetch_add(1, std::memory_order_relaxed);
    }
    void subInflight()
    {
        inflight_.fetch_sub(1, std::memory_order_relaxed);
    }

  private:
    int fd_;
    std::mutex writeMutex_;
    std::shared_ptr<const ServeLimits> limits_;
    std::atomic<uint64_t> *writeTimeouts_; ///< Server's timeout count.

    std::mutex rateMutex_;
    double tokens_ = 0.0;
    std::chrono::steady_clock::time_point lastRefill_;

    std::atomic<size_t> inflight_{0};
};

/** One queued request: the parsed request plus its reply channel. */
struct PendingRequest
{
    std::shared_ptr<Conn> conn;
    Request req;
    std::chrono::steady_clock::time_point enqueued;

    /** Absolute deadline; only meaningful when hasDeadline. */
    std::chrono::steady_clock::time_point deadline{};
    bool hasDeadline = false;
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and spawn the accept + batcher threads.
     * @return the bound TCP port (0 for unix sockets), or a
     *         human-readable error.
     */
    util::Result<uint16_t, std::string> start();

    /**
     * Begin the drain: refuse new connections and new requests,
     * answer everything already accepted. Idempotent, callable from
     * any thread (but not from a signal handler — give SIGTERM to a
     * sigwait thread that calls this; see cli serve).
     */
    void beginShutdown();

    /**
     * Block until the drain completes and every thread has joined.
     * Returns immediately if start() failed or was never called.
     * After wait(): counters are final, reader-side counts have been
     * mirrored into obs, and metricsPath (if set) has been written.
     */
    void wait();

    /** Bound TCP port after start() (0 for unix sockets). */
    uint16_t port() const { return port_; }

    /** Snapshot of the event counters (safe from any thread). */
    ServerCounters counters() const;

    /**
     * Hot-reload the operational limits (SIGHUP in the CLI): the
     * queue capacity changes immediately, every other limit applies
     * to connections accepted from now on. Connections already in
     * flight keep the snapshot they were admitted with — work racing
     * a reload finishes under the old limits. Safe from any thread;
     * never drops a connection or an accepted request.
     */
    void reloadLimits(const ServeLimits &limits);

    /** The limits new connections are currently admitted under. */
    ServeLimits currentLimits() const;

  private:
    void acceptLoop();
    void readerLoop(std::shared_ptr<Conn> conn,
                    std::shared_ptr<std::atomic<bool>> done);
    void batcherLoop();
    void executeBatch(std::vector<PendingRequest> &batch);
    std::string statsJson() const;
    std::shared_ptr<const ServeLimits> limitsSnapshot() const;

    ServerOptions opts_;
    int listenFd_ = -1;
    int wakeFds_[2] = {-1, -1}; ///< Self-pipe waking the accept poll.
    uint16_t port_ = 0;
    bool started_ = false;

    /** Limits for new accepts; swapped whole by reloadLimits(). */
    mutable std::mutex limitsMutex_;
    std::shared_ptr<const ServeLimits> limits_;

    BoundedQueue<PendingRequest> queue_;
    std::atomic<bool> draining_{false};

    std::thread acceptThread_;
    std::thread batcherThread_;

    /** One connection's reader thread, pruned once marked done. */
    struct ReaderSlot
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done =
            std::make_shared<std::atomic<bool>>(false);
    };
    mutable std::mutex connsMutex_;
    std::vector<std::shared_ptr<Conn>> conns_;
    std::vector<ReaderSlot> readers_;

    std::atomic<uint64_t> connections_{0};
    std::atomic<size_t> liveConns_{0}; ///< Accepted minus reaped.
    std::atomic<uint64_t> acceptedReqs_{0};
    std::atomic<uint64_t> pings_{0};
    std::atomic<uint64_t> busyRejected_{0};
    std::atomic<uint64_t> drainRejected_{0};
    std::atomic<uint64_t> badRequests_{0};
    std::atomic<uint64_t> badFrames_{0};
    std::atomic<uint64_t> answered_{0};
    std::atomic<uint64_t> dedupHits_{0};
    std::atomic<uint64_t> batches_{0};
    std::atomic<uint64_t> timeouts_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> rateLimited_{0};
    std::atomic<uint64_t> deadlineExceeded_{0};
    std::atomic<uint64_t> reloads_{0};

    /**
     * Consecutive busy rejections since the queue last accepted a
     * push: the overload-pressure signal behind the growing
     * retry_after_ms hint (base * (1 + streak), capped at 32x).
     */
    std::atomic<uint64_t> busyStreak_{0};
};

} // namespace tbstc::serve

#endif // TBSTC_SERVE_SERVER_HPP
