/**
 * @file
 * The `tbstc serve` daemon: concurrent request execution over the
 * cached simulation pipeline.
 *
 * Thread architecture (one Server instance):
 *
 *   accept thread ──spawns──► one reader thread per connection
 *        │                         │ parse + inline ping
 *        │                         ▼
 *        │                  BoundedQueue (back-pressure: full → busy)
 *        │                         │
 *        ▼                         ▼
 *   wake pipe ◄──────────── batcher thread: pops a batch, dedups
 *                           identical requests, executes distinct
 *                           ones on the util/parallel pool, writes
 *                           responses in completion order
 *
 * Why a single batcher instead of N independent workers: requests
 * sharing an (accelerator, model, sparsity, ...) signature coalesce
 * into one execution whose result fans out to every duplicate, and the
 * distinct ones run as one deterministic parallel region — so the
 * ContentStore/profile cache sees one miss per distinct key instead of
 * a thundering herd, and obs recording happens only on the batcher or
 * inside pool batches (whose completion synchronizes with the
 * batcher), keeping metricsJson() export race-free without locks on
 * the hot path. Reader threads never record obs metrics; their event
 * counts are plain atomics mirrored into obs once at shutdown.
 *
 * Drain (SIGTERM → beginShutdown): stop accepting connections, close
 * the queue (new frames answered "shutting_down"), let the batcher
 * answer everything already accepted, then unblock readers and join.
 * Every accepted request is answered before wait() returns.
 */

#ifndef TBSTC_SERVE_SERVER_HPP
#define TBSTC_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "protocol.hpp"
#include "queue.hpp"
#include "util/result.hpp"

namespace tbstc::serve {

/** Server configuration (all knobs have serving-sane defaults). */
struct ServerOptions
{
    /** Unix socket path; when empty, a TCP socket on 127.0.0.1. */
    std::string socketPath;

    /** TCP port (0 = ephemeral, read back via Server::port()). */
    uint16_t tcpPort = 0;

    /** Queue capacity = back-pressure threshold (full → busy). */
    size_t queueCapacity = 256;

    /** Max requests coalesced into one batcher execution. */
    size_t maxBatch = 32;

    /** retry_after_ms hint attached to busy rejections. */
    uint64_t retryAfterMs = 50;

    /** Per-frame payload cap for this server's connections. */
    size_t maxFrameBytes = kDefaultMaxFrameBytes;

    /** When set, metricsJson(includeHost) is written here at drain. */
    std::string metricsPath;

    /**
     * Test hook: invoked by the batcher with the batch size before
     * executing it. A blocking hook holds the batcher so tests can
     * fill the queue deterministically and observe busy rejections.
     */
    std::function<void(size_t)> batchHook;
};

/** Reader/acceptor event counts (plain atomics; see file comment). */
struct ServerCounters
{
    uint64_t connections = 0;     ///< Connections ever accepted.
    uint64_t accepted = 0;        ///< Requests enqueued successfully.
    uint64_t pings = 0;           ///< Pings answered inline.
    uint64_t busyRejected = 0;    ///< Back-pressure rejections.
    uint64_t drainRejected = 0;   ///< Rejections during drain.
    uint64_t badRequests = 0;     ///< Parse/validation failures.
    uint64_t badFrames = 0;       ///< Oversized/zero-length frames.
    uint64_t answered = 0;        ///< Responses written by the batcher.
    uint64_t dedupHits = 0;       ///< Requests answered by a batch twin.
    uint64_t batches = 0;         ///< Batches executed.
};

/**
 * One accepted connection. Reader thread reads frames; responses may
 * be written by the reader (ping, rejections) or the batcher, so
 * writes are serialized by the per-connection mutex. The fd is owned
 * here and closed with the last shared_ptr, so a response to a
 * request that outlived its reader still has a live socket.
 */
class Conn
{
  public:
    explicit Conn(int fd) : fd_(fd) {}
    ~Conn();
    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    int fd() const { return fd_; }

    /** Write one response frame (mutex-serialized). */
    bool send(std::string_view payload);

    /** shutdown(2) both directions: wakes a blocked reader. */
    void shutdownBoth();

  private:
    int fd_;
    std::mutex writeMutex_;
};

/** One queued request: the parsed request plus its reply channel. */
struct PendingRequest
{
    std::shared_ptr<Conn> conn;
    Request req;
    std::chrono::steady_clock::time_point enqueued;
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and spawn the accept + batcher threads.
     * @return the bound TCP port (0 for unix sockets), or a
     *         human-readable error.
     */
    util::Result<uint16_t, std::string> start();

    /**
     * Begin the drain: refuse new connections and new requests,
     * answer everything already accepted. Idempotent, callable from
     * any thread (but not from a signal handler — give SIGTERM to a
     * sigwait thread that calls this; see cli serve).
     */
    void beginShutdown();

    /**
     * Block until the drain completes and every thread has joined.
     * Returns immediately if start() failed or was never called.
     * After wait(): counters are final, reader-side counts have been
     * mirrored into obs, and metricsPath (if set) has been written.
     */
    void wait();

    /** Bound TCP port after start() (0 for unix sockets). */
    uint16_t port() const { return port_; }

    /** Snapshot of the event counters (safe from any thread). */
    ServerCounters counters() const;

  private:
    void acceptLoop();
    void readerLoop(std::shared_ptr<Conn> conn,
                    std::shared_ptr<std::atomic<bool>> done);
    void batcherLoop();
    void executeBatch(std::vector<PendingRequest> &batch);
    std::string statsJson() const;

    ServerOptions opts_;
    int listenFd_ = -1;
    int wakeFds_[2] = {-1, -1}; ///< Self-pipe waking the accept poll.
    uint16_t port_ = 0;
    bool started_ = false;

    BoundedQueue<PendingRequest> queue_;
    std::atomic<bool> draining_{false};

    std::thread acceptThread_;
    std::thread batcherThread_;

    /** One connection's reader thread, pruned once marked done. */
    struct ReaderSlot
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done =
            std::make_shared<std::atomic<bool>>(false);
    };
    mutable std::mutex connsMutex_;
    std::vector<std::shared_ptr<Conn>> conns_;
    std::vector<ReaderSlot> readers_;

    std::atomic<uint64_t> connections_{0};
    std::atomic<uint64_t> acceptedReqs_{0};
    std::atomic<uint64_t> pings_{0};
    std::atomic<uint64_t> busyRejected_{0};
    std::atomic<uint64_t> drainRejected_{0};
    std::atomic<uint64_t> badRequests_{0};
    std::atomic<uint64_t> badFrames_{0};
    std::atomic<uint64_t> answered_{0};
    std::atomic<uint64_t> dedupHits_{0};
    std::atomic<uint64_t> batches_{0};
};

} // namespace tbstc::serve

#endif // TBSTC_SERVE_SERVER_HPP
