#include "metrics.hpp"

#include <cstdio>
#include <string>

#if TBSTC_OBS_ENABLED

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "json.hpp"

namespace tbstc::obs {

namespace {

enum class Kind : uint8_t { Counter, Gauge, Histogram };

/** Immutable description of one registered metric. */
struct MetricDef
{
    std::string name;
    Kind kind = Kind::Counter;
    Domain domain = Domain::Deterministic;
    uint32_t slot = 0; ///< Counter/gauge slot, or first bucket index.
    uint32_t bins = 0; ///< Histogram bucket count.
    double lo = 0.0;
    double hi = 1.0;
};

constexpr int64_t kGaugeUnset = std::numeric_limits<int64_t>::min();

/** Raw metric storage; grown on demand to the slot being written. */
struct Store
{
    std::vector<uint64_t> counters;
    std::vector<int64_t> gauges;
    std::vector<uint64_t> buckets;

    void
    clear()
    {
        counters.assign(counters.size(), 0);
        gauges.assign(gauges.size(), kGaugeUnset);
        buckets.assign(buckets.size(), 0);
    }
};

/** Fold @p src into @p dst (associative + commutative per element). */
void
foldStore(Store &dst, const Store &src)
{
    if (dst.counters.size() < src.counters.size())
        dst.counters.resize(src.counters.size(), 0);
    for (size_t i = 0; i < src.counters.size(); ++i)
        dst.counters[i] += src.counters[i];
    if (dst.gauges.size() < src.gauges.size())
        dst.gauges.resize(src.gauges.size(), kGaugeUnset);
    for (size_t i = 0; i < src.gauges.size(); ++i)
        dst.gauges[i] = std::max(dst.gauges[i], src.gauges[i]);
    if (dst.buckets.size() < src.buckets.size())
        dst.buckets.resize(src.buckets.size(), 0);
    for (size_t i = 0; i < src.buckets.size(); ++i)
        dst.buckets[i] += src.buckets[i];
}

struct Shard;

/**
 * Registry: metric definitions plus every live thread shard. Shards of
 * exited threads fold into `retired` so pool resizes lose nothing.
 */
struct Registry
{
    std::mutex m;
    std::vector<MetricDef> defs;
    std::map<std::string, size_t, std::less<>> byName;
    uint32_t counterSlots = 0;
    uint32_t gaugeSlots = 0;
    uint32_t bucketSlots = 0;
    std::vector<Shard *> live;
    Store retired;
};

Registry &
registry()
{
    // Leaked intentionally: worker threads (and their Shard
    // destructors) may outlive static destruction order otherwise.
    static Registry *r = new Registry;
    return *r;
}

/** One thread's private storage, registered for merging at export. */
struct Shard
{
    Store store;

    Shard()
    {
        Registry &r = registry();
        std::lock_guard lk(r.m);
        r.live.push_back(this);
    }

    ~Shard()
    {
        Registry &r = registry();
        std::lock_guard lk(r.m);
        foldStore(r.retired, store);
        std::erase(r.live, this);
    }

    Shard(const Shard &) = delete;
    Shard &operator=(const Shard &) = delete;
};

Shard &
localShard()
{
    thread_local Shard shard;
    return shard;
}

/** Register-or-lookup under the registry lock. */
size_t
defineMetric(std::string_view name, Kind kind, Domain domain,
             double lo, double hi, uint32_t bins)
{
    Registry &r = registry();
    std::lock_guard lk(r.m);
    if (const auto it = r.byName.find(name); it != r.byName.end())
        return it->second; // First registration's geometry wins.

    MetricDef def;
    def.name = std::string(name);
    def.kind = kind;
    def.domain = domain;
    switch (kind) {
      case Kind::Counter:
        def.slot = r.counterSlots++;
        break;
      case Kind::Gauge:
        def.slot = r.gaugeSlots++;
        break;
      case Kind::Histogram:
        def.bins = std::clamp<uint32_t>(bins, 1, 512);
        if (!(hi > lo))
            hi = lo + 1.0;
        def.lo = lo;
        def.hi = hi;
        def.slot = r.bucketSlots;
        r.bucketSlots += def.bins;
        break;
    }
    r.defs.push_back(def);
    r.byName.emplace(def.name, r.defs.size() - 1);
    return r.defs.size() - 1;
}

/** Merge retired + live shards into one Store (caller holds no lock). */
Store
mergedStore()
{
    Registry &r = registry();
    std::lock_guard lk(r.m);
    Store out = r.retired;
    for (const Shard *s : r.live)
        foldStore(out, s->store);
    return out;
}

/** Stable double formatting for bucket bounds ("0", "0.5", "1e+30"). */
std::string
fmtBound(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
appendSection(std::string &out, const std::string &indent,
              const std::vector<const MetricDef *> &defs,
              const Store &store)
{
    std::string counters;
    std::string gauges;
    std::string hists;
    for (const MetricDef *d : defs) {
        switch (d->kind) {
          case Kind::Counter: {
            const uint64_t v = d->slot < store.counters.size()
                ? store.counters[d->slot]
                : 0;
            counters += (counters.empty() ? "" : ", ")
                + jsonQuote(d->name) + ": " + std::to_string(v);
            break;
          }
          case Kind::Gauge: {
            const int64_t v = d->slot < store.gauges.size()
                ? store.gauges[d->slot]
                : kGaugeUnset;
            gauges += (gauges.empty() ? "" : ", ") + jsonQuote(d->name)
                + ": " + std::to_string(v == kGaugeUnset ? 0 : v);
            break;
          }
          case Kind::Histogram: {
            uint64_t total = 0;
            std::string buckets;
            for (uint32_t b = 0; b < d->bins; ++b) {
                const size_t i = d->slot + b;
                const uint64_t v =
                    i < store.buckets.size() ? store.buckets[i] : 0;
                total += v;
                buckets += (b ? ", " : "") + std::to_string(v);
            }
            hists += (hists.empty() ? "" : ",\n" + indent + "  ")
                + jsonQuote(d->name) + ": {\"lo\": " + fmtBound(d->lo)
                + ", \"hi\": " + fmtBound(d->hi) + ", \"buckets\": ["
                + buckets + "], \"total\": " + std::to_string(total)
                + "}";
            break;
          }
        }
    }
    out += indent + "\"counters\": {" + counters + "},\n";
    out += indent + "\"gauges\": {" + gauges + "},\n";
    out += indent + "\"histograms\": {";
    if (!hists.empty())
        out += "\n" + indent + "  " + hists + "\n" + indent;
    out += "}";
}

} // namespace

void
Counter::add(uint64_t delta) const
{
    if (!metricsEnabled())
        return;
    auto &c = localShard().store.counters;
    if (c.size() <= slot_)
        c.resize(slot_ + 1, 0);
    c[slot_] += delta;
}

void
Gauge::record(int64_t v) const
{
    if (!metricsEnabled())
        return;
    auto &g = localShard().store.gauges;
    if (g.size() <= slot_)
        g.resize(slot_ + 1, kGaugeUnset);
    g[slot_] = std::max(g[slot_], v);
}

void
Histogram::observe(double x) const
{
    if (!metricsEnabled() || std::isnan(x))
        return;
    uint32_t bin = 0;
    if (x >= hi_) {
        bin = bins_ - 1;
    } else if (x > lo_) {
        const double f = (x - lo_) / (hi_ - lo_);
        bin = std::min<uint32_t>(
            bins_ - 1,
            static_cast<uint32_t>(f * static_cast<double>(bins_)));
    }
    auto &b = localShard().store.buckets;
    const size_t i = firstBucket_ + bin;
    if (b.size() <= i)
        b.resize(i + 1, 0);
    b[i] += 1;
}

Counter
counter(std::string_view name, Domain domain)
{
    const size_t id =
        defineMetric(name, Kind::Counter, domain, 0, 0, 0);
    Counter c;
    {
        Registry &r = registry();
        std::lock_guard lk(r.m);
        c.slot_ = r.defs[id].slot;
    }
    return c;
}

Gauge
gauge(std::string_view name, Domain domain)
{
    const size_t id = defineMetric(name, Kind::Gauge, domain, 0, 0, 0);
    Gauge g;
    {
        Registry &r = registry();
        std::lock_guard lk(r.m);
        g.slot_ = r.defs[id].slot;
    }
    return g;
}

Histogram
histogram(std::string_view name, double lo, double hi, uint32_t bins,
          Domain domain)
{
    const size_t id =
        defineMetric(name, Kind::Histogram, domain, lo, hi, bins);
    Histogram h;
    {
        Registry &r = registry();
        std::lock_guard lk(r.m);
        const MetricDef &d = r.defs[id];
        h.firstBucket_ = d.slot;
        h.bins_ = d.bins;
        h.lo_ = d.lo;
        h.hi_ = d.hi;
    }
    return h;
}

std::string
metricsJson(bool includeHost)
{
    const Store merged = mergedStore();

    // Snapshot the defs sorted by name, split by domain.
    std::vector<MetricDef> defs;
    {
        Registry &r = registry();
        std::lock_guard lk(r.m);
        defs = r.defs;
    }
    std::sort(defs.begin(), defs.end(),
              [](const MetricDef &a, const MetricDef &b) {
                  return a.name < b.name;
              });
    std::vector<const MetricDef *> det;
    std::vector<const MetricDef *> host;
    for (const MetricDef &d : defs)
        (d.domain == Domain::Deterministic ? det : host).push_back(&d);

    std::string out = "{\n  \"schema\": \"tbstc.metrics.v1\",\n";
    appendSection(out, "  ", det, merged);
    if (includeHost) {
        out += ",\n  \"host\": {\n";
        appendSection(out, "    ", host, merged);
        out += "\n  }";
    }
    out += "\n}\n";
    return out;
}

bool
writeMetricsJson(const std::string &path, bool includeHost)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string json = metricsJson(includeHost);
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

void
resetMetrics()
{
    Registry &r = registry();
    std::lock_guard lk(r.m);
    r.retired.clear();
    for (Shard *s : r.live)
        s->store.clear();
}

} // namespace tbstc::obs

#else // TBSTC_OBS_ENABLED == 0: keep the link surface alive.

namespace tbstc::obs {

void Counter::add(uint64_t) const {}
void Gauge::record(int64_t) const {}
void Histogram::observe(double) const {}
Counter counter(std::string_view, Domain) { return {}; }
Gauge gauge(std::string_view, Domain) { return {}; }
Histogram
histogram(std::string_view, double, double, uint32_t, Domain)
{
    return {};
}

std::string
metricsJson(bool)
{
    return "{\n  \"schema\": \"tbstc.metrics.v1\",\n"
           "  \"counters\": {},\n  \"gauges\": {},\n"
           "  \"histograms\": {}\n}\n";
}

bool
writeMetricsJson(const std::string &path, bool includeHost)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string json = metricsJson(includeHost);
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

void resetMetrics() {}

} // namespace tbstc::obs

#endif // TBSTC_OBS_ENABLED
