/**
 * @file
 * Span/event tracer exporting Chrome `chrome://tracing` JSON.
 *
 * Two clock domains share one trace, separated by pid:
 *
 *  - pid 1 "host": wall-clock spans (ScopedSpan) in microseconds since
 *    the first trace event; tid is a small per-thread id. Use these to
 *    see where a run's real time went (profile building, layer sims,
 *    training epochs).
 *  - pid 2 "sim": simulated-time events in *cycles* (rendered as µs by
 *    the viewer — read the axis as cycles). Each simulator run
 *    allocates a track (simTrack) and emits per-stage spans on lanes
 *    of that track, e.g. the event-driven pipeline's fetch / codec /
 *    compute occupancy per tile, DVPE issue/drain, or DRAM row
 *    activity.
 *
 * Events buffer in thread-local vectors (no recording lock) and merge
 * at export. The trace is a diagnostic artifact: unlike the metrics
 * JSON it is not required to be bit-identical across thread counts
 * (host timestamps never are), but sim-domain events carry
 * deterministic timestamps and durations.
 *
 * Recording is off by default; setTracingEnabled(true) turns it on.
 * With TBSTC_OBS_ENABLED=0 the guard folds to constexpr false and
 * every call site compiles out. A global cap (~1M events) bounds
 * memory; events beyond it are dropped and counted in the export's
 * "otherData.dropped".
 */

#ifndef TBSTC_OBS_TRACE_HPP
#define TBSTC_OBS_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#ifndef TBSTC_OBS_ENABLED
#define TBSTC_OBS_ENABLED 1
#endif

namespace tbstc::obs {

#if TBSTC_OBS_ENABLED

namespace detail {
inline std::atomic<bool> g_traceOn{false};
} // namespace detail

/** True when event recording is active (relaxed load). */
inline bool
tracingEnabled()
{
    return detail::g_traceOn.load(std::memory_order_relaxed);
}

/** Turn event recording on or off at runtime. */
inline void
setTracingEnabled(bool on)
{
    detail::g_traceOn.store(on, std::memory_order_relaxed);
}

#else

constexpr bool tracingEnabled() { return false; }
inline void setTracingEnabled(bool) {}

#endif

/**
 * RAII host-time span: records a complete ('X') event covering the
 * scope's lifetime on the calling thread's host track.
 */
class ScopedSpan
{
  public:
    /** @param name Span label (copied only if tracing is on). */
    explicit ScopedSpan(std::string_view name);
    ~ScopedSpan();
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    std::string name_;
    double startUs_ = -1.0; ///< < 0: tracing was off at construction.
};

/** Record an instant ('i') event on the calling thread's host track. */
void hostInstant(std::string_view name);

/**
 * Allocate a sim-time track and label it @p label in the viewer.
 * Tracks are cheap (an atomic increment plus one metadata event);
 * allocate one per simulator run so concurrent layer simulations do
 * not interleave on one timeline. Returns 0 when tracing is off.
 */
uint64_t simTrack(std::string_view label);

/** Number of lanes reserved per track (lane must be < this). */
constexpr uint64_t kSimLanes = 8;

/** Label lane @p lane of @p track (e.g. "fetch", "codec", "DVPE"). */
void simLaneName(uint64_t track, uint64_t lane, std::string_view name);

/**
 * Record a sim-time span on (track, lane): starts at @p startCycles,
 * lasts @p durCycles. Zero-duration spans are recorded as instants.
 */
void simSpan(uint64_t track, uint64_t lane, std::string_view name,
             double startCycles, double durCycles);

/** Record a sim-time instant event on (track, lane). */
void simInstant(uint64_t track, uint64_t lane, std::string_view name,
                double atCycles);

/**
 * Record a sim-time counter ('C') sample — Chrome renders these as a
 * stacked area chart per (track, name), e.g. codec queue occupancy
 * over cycles.
 */
void simCounter(uint64_t track, std::string_view name, double atCycles,
                double value);

/**
 * Render the Chrome trace JSON document:
 * {"traceEvents": [...], "otherData": {...}}. Every event carries the
 * required schema fields (name, ph, ts, pid, tid). Quiescent-point
 * operation (see metrics.hpp).
 */
std::string chromeTraceJson();

/**
 * Write chromeTraceJson() to @p path.
 * @return false when the file cannot be written.
 */
bool writeChromeTrace(const std::string &path);

/** Discard all buffered events. Quiescent-point operation. */
void resetTrace();

} // namespace tbstc::obs

#endif // TBSTC_OBS_TRACE_HPP
