/**
 * @file
 * Minimal JSON string escaping shared by the metric and trace
 * exporters. Self-contained (obs sits below util in the layering).
 */

#ifndef TBSTC_OBS_JSON_HPP
#define TBSTC_OBS_JSON_HPP

#include <cstdio>
#include <string>
#include <string_view>

namespace tbstc::obs {

/** Quote and escape @p s as a JSON string literal. */
inline std::string
jsonQuote(std::string_view s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace tbstc::obs

#endif // TBSTC_OBS_JSON_HPP
