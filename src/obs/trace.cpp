#include "trace.hpp"

#include <cstdio>
#include <string>

#if TBSTC_OBS_ENABLED

#include <chrono>
#include <mutex>
#include <vector>

#include "json.hpp"

namespace tbstc::obs {

namespace {

constexpr uint32_t kHostPid = 1;
constexpr uint32_t kSimPid = 2;

/** Hard cap on buffered events across all threads. */
constexpr size_t kMaxEvents = 1u << 20;

struct Event
{
    std::string name;
    std::string argsJson; ///< Pre-rendered args object, or empty.
    double ts = 0.0;
    double dur = 0.0;
    uint64_t tid = 0;
    uint32_t pid = kHostPid;
    char ph = 'X';
};

struct EventShard;

struct TraceState
{
    std::mutex m;
    std::vector<EventShard *> live;
    std::vector<Event> retired;
    std::atomic<size_t> count{0};
    std::atomic<size_t> dropped{0};
    std::atomic<uint64_t> nextTrack{1};
    std::atomic<uint64_t> nextHostTid{1};
};

TraceState &
state()
{
    static TraceState *s = new TraceState; // Leaked: outlives threads.
    return *s;
}

struct EventShard
{
    std::vector<Event> events;
    uint64_t hostTid;

    EventShard()
        : hostTid(state().nextHostTid.fetch_add(
              1, std::memory_order_relaxed))
    {
        TraceState &s = state();
        std::lock_guard lk(s.m);
        s.live.push_back(this);
    }

    ~EventShard()
    {
        TraceState &s = state();
        std::lock_guard lk(s.m);
        s.retired.insert(s.retired.end(),
                         std::make_move_iterator(events.begin()),
                         std::make_move_iterator(events.end()));
        std::erase(s.live, this);
    }

    EventShard(const EventShard &) = delete;
    EventShard &operator=(const EventShard &) = delete;
};

EventShard &
localShard()
{
    thread_local EventShard shard;
    return shard;
}

/** Reserve capacity for one event; false when over the global cap. */
bool
admitEvent()
{
    TraceState &s = state();
    if (s.count.fetch_add(1, std::memory_order_relaxed) >= kMaxEvents) {
        s.count.fetch_sub(1, std::memory_order_relaxed);
        s.dropped.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    return true;
}

void
push(Event e)
{
    if (!admitEvent())
        return;
    localShard().events.push_back(std::move(e));
}

/** Microseconds since the process's trace epoch. */
double
nowUs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return std::chrono::duration<double, std::micro>(Clock::now()
                                                     - epoch)
        .count();
}

void
appendEventJson(std::string &out, const Event &e)
{
    char num[64];
    out += "  {\"name\": " + jsonQuote(e.name) + ", \"ph\": \"";
    out += e.ph;
    out += "\"";
    std::snprintf(num, sizeof num, ", \"ts\": %.3f", e.ts);
    out += num;
    if (e.ph == 'X') {
        std::snprintf(num, sizeof num, ", \"dur\": %.3f", e.dur);
        out += num;
    }
    std::snprintf(num, sizeof num, ", \"pid\": %u, \"tid\": %llu",
                  e.pid, static_cast<unsigned long long>(e.tid));
    out += num;
    if (e.ph == 'i')
        out += ", \"s\": \"t\"";
    if (!e.argsJson.empty())
        out += ", \"args\": " + e.argsJson;
    out += "}";
}

Event
metadataEvent(uint32_t pid, uint64_t tid, std::string_view kind,
              std::string_view label)
{
    Event e;
    e.name = std::string(kind);
    e.ph = 'M';
    e.pid = pid;
    e.tid = tid;
    e.argsJson = "{\"name\": " + jsonQuote(label) + "}";
    return e;
}

/** Emit the fixed process-name metadata once per process. */
void
ensureProcessMetadata()
{
    static std::once_flag once;
    std::call_once(once, [] {
        push(metadataEvent(kHostPid, 0, "process_name", "host"));
        push(metadataEvent(kSimPid, 0, "process_name",
                           "sim (ts = cycles)"));
    });
}

} // namespace

ScopedSpan::ScopedSpan(std::string_view name)
{
    if (!tracingEnabled())
        return;
    ensureProcessMetadata();
    name_ = std::string(name);
    startUs_ = nowUs();
}

ScopedSpan::~ScopedSpan()
{
    if (startUs_ < 0.0)
        return;
    Event e;
    e.name = std::move(name_);
    e.ts = startUs_;
    e.dur = nowUs() - startUs_;
    e.pid = kHostPid;
    e.tid = localShard().hostTid;
    push(std::move(e));
}

void
hostInstant(std::string_view name)
{
    if (!tracingEnabled())
        return;
    ensureProcessMetadata();
    Event e;
    e.name = std::string(name);
    e.ph = 'i';
    e.ts = nowUs();
    e.pid = kHostPid;
    e.tid = localShard().hostTid;
    push(std::move(e));
}

uint64_t
simTrack(std::string_view label)
{
    if (!tracingEnabled())
        return 0;
    ensureProcessMetadata();
    const uint64_t track =
        state().nextTrack.fetch_add(1, std::memory_order_relaxed);
    push(metadataEvent(kSimPid, track * kSimLanes, "thread_name",
                       label));
    return track;
}

void
simLaneName(uint64_t track, uint64_t lane, std::string_view name)
{
    if (!tracingEnabled() || track == 0)
        return;
    push(metadataEvent(kSimPid, track * kSimLanes + lane, "thread_name",
                       name));
}

void
simSpan(uint64_t track, uint64_t lane, std::string_view name,
        double startCycles, double durCycles)
{
    if (!tracingEnabled() || track == 0)
        return;
    if (durCycles <= 0.0) {
        simInstant(track, lane, name, startCycles);
        return;
    }
    Event e;
    e.name = std::string(name);
    e.ts = startCycles;
    e.dur = durCycles;
    e.pid = kSimPid;
    e.tid = track * kSimLanes + lane;
    push(std::move(e));
}

void
simInstant(uint64_t track, uint64_t lane, std::string_view name,
           double atCycles)
{
    if (!tracingEnabled() || track == 0)
        return;
    Event e;
    e.name = std::string(name);
    e.ph = 'i';
    e.ts = atCycles;
    e.pid = kSimPid;
    e.tid = track * kSimLanes + lane;
    push(std::move(e));
}

void
simCounter(uint64_t track, std::string_view name, double atCycles,
           double value)
{
    if (!tracingEnabled() || track == 0)
        return;
    Event e;
    e.name = std::string(name);
    e.ph = 'C';
    e.ts = atCycles;
    e.pid = kSimPid;
    e.tid = track * kSimLanes;
    char num[64];
    std::snprintf(num, sizeof num, "%.3f", value);
    e.argsJson = "{\"value\": " + std::string(num) + "}";
    push(std::move(e));
}

std::string
chromeTraceJson()
{
    TraceState &s = state();
    std::vector<const Event *> all;
    std::lock_guard lk(s.m);
    all.reserve(s.count.load(std::memory_order_relaxed));
    for (const Event &e : s.retired)
        all.push_back(&e);
    for (const EventShard *sh : s.live)
        for (const Event &e : sh->events)
            all.push_back(&e);

    std::string out = "{\n\"traceEvents\": [\n";
    for (size_t i = 0; i < all.size(); ++i) {
        appendEventJson(out, *all[i]);
        out += i + 1 < all.size() ? ",\n" : "\n";
    }
    out += "],\n\"otherData\": {\"schema\": \"tbstc.trace.v1\", "
           "\"dropped\": "
        + std::to_string(s.dropped.load(std::memory_order_relaxed))
        + "}\n}\n";
    return out;
}

bool
writeChromeTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string json = chromeTraceJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

void
resetTrace()
{
    TraceState &s = state();
    std::lock_guard lk(s.m);
    for (EventShard *sh : s.live)
        sh->events.clear();
    s.retired.clear();
    s.count.store(0, std::memory_order_relaxed);
    s.dropped.store(0, std::memory_order_relaxed);
}

} // namespace tbstc::obs

#else // TBSTC_OBS_ENABLED == 0

namespace tbstc::obs {

ScopedSpan::ScopedSpan(std::string_view) {}
ScopedSpan::~ScopedSpan() = default;
void hostInstant(std::string_view) {}
uint64_t simTrack(std::string_view) { return 0; }
void simLaneName(uint64_t, uint64_t, std::string_view) {}
void simSpan(uint64_t, uint64_t, std::string_view, double, double) {}
void simInstant(uint64_t, uint64_t, std::string_view, double) {}
void simCounter(uint64_t, std::string_view, double, double) {}

std::string
chromeTraceJson()
{
    return "{\n\"traceEvents\": [\n],\n\"otherData\": "
           "{\"schema\": \"tbstc.trace.v1\", \"dropped\": 0}\n}\n";
}

bool
writeChromeTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string json = chromeTraceJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

void resetTrace() {}

} // namespace tbstc::obs

#endif // TBSTC_OBS_ENABLED
