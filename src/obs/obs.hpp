/**
 * @file
 * Umbrella header for the telemetry subsystem: the deterministic
 * metrics registry (metrics.hpp) and the Chrome-trace event tracer
 * (trace.hpp). See docs/observability.md for the event taxonomy and
 * metric naming convention.
 */

#ifndef TBSTC_OBS_OBS_HPP
#define TBSTC_OBS_OBS_HPP

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#endif // TBSTC_OBS_OBS_HPP
