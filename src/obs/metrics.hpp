/**
 * @file
 * Deterministic metrics registry (counters, gauges, histograms).
 *
 * Every run of the simulator, codec, or trainer should be able to
 * explain where its cycles, bytes, and stalls went without printf
 * archaeology. This registry gives each subsystem named metrics that
 * are cheap to record from any thread and export to a stable JSON
 * document.
 *
 * Determinism contract (matches util/parallel's): recording goes into
 * thread-local shards, and the merged value of every metric depends
 * only on the *multiset* of recordings, never on which thread made
 * them or in what order. That is achieved by restricting merged state
 * to operations that are associative and commutative over integers:
 *
 *  - Counter    u64 add           (sum over shards)
 *  - Gauge      i64 high-watermark (max over shards)
 *  - Histogram  u64 bucket counts  (elementwise sum over shards)
 *
 * Export sorts metrics by name, so the JSON is bit-identical at any
 * TBSTC_THREADS for the same workload. Metrics whose values genuinely
 * depend on the host schedule (pool steal counts, queue depths) are
 * registered under Domain::Host and excluded from the deterministic
 * export unless explicitly requested.
 *
 * Cost model: everything is compiled out when TBSTC_OBS_ENABLED is 0
 * (metricsEnabled() folds to constexpr false), and when compiled in
 * but runtime-disabled, a recording call is one relaxed atomic load
 * and a branch. Hot loops should still guard sample *construction*
 * with `if (obs::metricsEnabled())`.
 *
 * Exporting and resetting are quiescent-point operations: call them
 * only while no parallel region is recording (the pool's batch
 * completion synchronizes worker writes with the submitting thread).
 */

#ifndef TBSTC_OBS_METRICS_HPP
#define TBSTC_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#ifndef TBSTC_OBS_ENABLED
#define TBSTC_OBS_ENABLED 1
#endif

namespace tbstc::obs {

/** Whether a metric survives into the deterministic export. */
enum class Domain : uint8_t
{
    Deterministic, ///< Thread-count-invariant; in the default export.
    Host,          ///< Host-schedule-dependent diagnostics; opt-in.
};

#if TBSTC_OBS_ENABLED

namespace detail {
inline std::atomic<bool> g_metricsOn{false};
} // namespace detail

/** True when metric recording is active (relaxed load; hot-path safe). */
inline bool
metricsEnabled()
{
    return detail::g_metricsOn.load(std::memory_order_relaxed);
}

/** Turn metric recording on or off at runtime. */
inline void
setMetricsEnabled(bool on)
{
    detail::g_metricsOn.store(on, std::memory_order_relaxed);
}

#else // TBSTC_OBS_ENABLED == 0: the guard folds to a dead branch.

constexpr bool metricsEnabled() { return false; }
inline void setMetricsEnabled(bool) {}

#endif

/** Monotonic event counter. Handle is a value type; copy freely. */
class Counter
{
  public:
    /** Record @p delta occurrences. No-op while recording is off. */
    void add(uint64_t delta = 1) const;

    /**
     * Record a nonnegative real quantity (cycles, bytes) rounded to
     * the nearest integer unit. Each call rounds independently, so the
     * merged total is still order-independent.
     */
    void
    addRounded(double v) const
    {
        if (v > 0.0)
            add(static_cast<uint64_t>(v + 0.5));
    }

  private:
    friend Counter counter(std::string_view, Domain);
    uint32_t slot_ = 0;
};

/** High-watermark gauge: merged value is the maximum ever recorded. */
class Gauge
{
  public:
    /** Raise the watermark to @p v if it is higher. */
    void record(int64_t v) const;

  private:
    friend Gauge gauge(std::string_view, Domain);
    uint32_t slot_ = 0;
};

/**
 * Fixed-bucket histogram over [lo, hi). Out-of-range samples clamp to
 * the edge buckets; NaN samples are ignored.
 */
class Histogram
{
  public:
    /** Record one sample. No-op while recording is off. */
    void observe(double x) const;

  private:
    friend Histogram histogram(std::string_view, double, double,
                               uint32_t, Domain);
    uint32_t firstBucket_ = 0;
    uint32_t bins_ = 1;
    double lo_ = 0.0;
    double hi_ = 1.0;
};

/**
 * Register (or look up) a counter by name. Idempotent: the same name
 * always yields a handle to the same metric. Intended use is a
 * function-local static at the recording site:
 * @code
 *   static const obs::Counter c = obs::counter("sim.dram.streams");
 *   c.add();
 * @endcode
 */
Counter counter(std::string_view name,
                Domain domain = Domain::Deterministic);

/** Register (or look up) a high-watermark gauge by name. */
Gauge gauge(std::string_view name, Domain domain = Domain::Deterministic);

/**
 * Register (or look up) a histogram by name. The bucket geometry of
 * the first registration wins; @p bins is clamped to [1, 512].
 */
Histogram histogram(std::string_view name, double lo, double hi,
                    uint32_t bins, Domain domain = Domain::Deterministic);

/**
 * Render all metrics as a JSON object with stable formatting and keys
 * sorted by metric name:
 * @code
 * {
 *   "schema": "tbstc.metrics.v1",
 *   "counters": {"sim.dram.streams": 12, ...},
 *   "gauges": {...},
 *   "histograms": {"name": {"lo": 0, "hi": 64, "buckets": [...],
 *                           "total": 99}, ...},
 *   "host": { ...same shape, only when includeHost... }
 * }
 * @endcode
 * Deterministic-domain values are bit-identical at any thread count;
 * the optional "host" section is diagnostic and is not.
 */
std::string metricsJson(bool includeHost = false);

/**
 * Write metricsJson() to @p path.
 * @return false when the file cannot be written.
 */
bool writeMetricsJson(const std::string &path, bool includeHost = false);

/**
 * Zero every metric value (registrations survive). Quiescent-point
 * operation, like metricsJson().
 */
void resetMetrics();

} // namespace tbstc::obs

#endif // TBSTC_OBS_METRICS_HPP
