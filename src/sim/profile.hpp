/**
 * @file
 * Layer profile: everything the cycle-level simulator needs to know
 * about one SpMM layer, reduced to block granularity.
 *
 * A profile is built once per (layer, pattern, sparsity, format)
 * combination — from a real mask and a real encoding — and can then be
 * replayed through any accelerator configuration cheaply.
 */

#ifndef TBSTC_SIM_PROFILE_HPP
#define TBSTC_SIM_PROFILE_HPP

#include <cstdint>
#include <vector>

#include "format/encoding.hpp"

namespace tbstc::sim {

/** One M x M block of the sparse operand, as the hardware sees it. */
struct BlockTask
{
    uint16_t nnz = 0;      ///< Kept elements in the block.
    uint8_t n = 0;         ///< N of the block's N:M ratio.
    bool independentDim = false; ///< Needs codec conversion + MBD transpose.
    uint8_t nonemptyRows = 0;    ///< Rows with >= 1 element (naive beats).
};

/** Block-granular description of one SpMM layer D = A x B. */
struct LayerProfile
{
    // GEMM geometry: A is x * y (y = reduction), B is y * nb.
    uint64_t x = 0;
    uint64_t y = 0;
    uint64_t nb = 0;
    uint64_t m = 8; ///< Block size.

    std::vector<BlockTask> blocks; ///< (x/m * y/m) tasks, row-major.
    format::StreamProfile aStream; ///< A-side traffic for the format.
    uint64_t aNnz = 0;             ///< Total kept elements of A.

    /**
     * Scale factor when the profile was built from a row-sampled
     * sub-matrix of A: block counts and traffic are multiplied by it.
     */
    double sampleScale = 1.0;

    /** Useful multiply-accumulates of the layer. */
    double
    usefulMacs() const
    {
        return static_cast<double>(aNnz) * static_cast<double>(nb)
            * sampleScale;
    }
};

} // namespace tbstc::sim

#endif // TBSTC_SIM_PROFILE_HPP
