#include "pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include <optional>

#include "dram.hpp"
#include "dvpe.hpp"
#include "obs/obs.hpp"
#include "scheduler.hpp"
#include "util/contentstore.hpp"
#include "util/fmt.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace tbstc::sim {

namespace {

/// Pipeline fill/drain cost of one layer launch, in cycles.
constexpr double kStartupCycles = 512.0;

/// Value-byte shrink of the A stream in Q+S mode: fp16 -> int8 halves
/// the value payload while per-element metadata stays, and values are
/// the dominant share of every format's payload.
constexpr double kInt8AStreamScale = 0.58;

/// Codec drain margin per converted block (queue flush), in timesteps.
constexpr uint64_t kCodecTailCycles = 2;

} // namespace

void
RunStats::accumulate(const RunStats &other)
{
    cycles += other.cycles;
    seconds += other.seconds;
    energy.computeJ += other.energy.computeJ;
    energy.sramJ += other.energy.sramJ;
    energy.dramJ += other.energy.dramJ;
    energy.codecJ += other.energy.codecJ;
    energy.mbdJ += other.energy.mbdJ;
    energy.staticJ += other.energy.staticJ;
    breakdown.compute += other.breakdown.compute;
    breakdown.memory += other.breakdown.memory;
    breakdown.codec += other.breakdown.codec;
    breakdown.codecExposed += other.breakdown.codecExposed;
    breakdown.startup += other.breakdown.startup;
    breakdown.total += other.breakdown.total;

    // Re-derive the ratio metrics, weighting by each run's share.
    const double total = cycles;
    if (total > 0.0) {
        const double w0 = (total - other.cycles) / total;
        const double w1 = other.cycles / total;
        bwUtilisation = bwUtilisation * w0 + other.bwUtilisation * w1;
        computeUtilisation =
            computeUtilisation * w0 + other.computeUtilisation * w1;
        schedUtilisation =
            schedUtilisation * w0 + other.schedUtilisation * w1;
    }
    edp = energy.totalJ() * seconds;
}

RunStats
RunStats::scaled(double k) const
{
    RunStats out = *this;
    out.cycles *= k;
    out.seconds *= k;
    out.energy.computeJ *= k;
    out.energy.sramJ *= k;
    out.energy.dramJ *= k;
    out.energy.codecJ *= k;
    out.energy.mbdJ *= k;
    out.energy.staticJ *= k;
    out.breakdown.compute *= k;
    out.breakdown.memory *= k;
    out.breakdown.codec *= k;
    out.breakdown.codecExposed *= k;
    out.breakdown.startup *= k;
    out.breakdown.total *= k;
    out.edp = out.energy.totalJ() * out.seconds;
    return out;
}

namespace {

/** The full pipeline model, always computed fresh. No telemetry. */
RunStats
simulateLayerUncached(const LayerProfile &layer, const ArchConfig &cfg,
                      const EnergyParams &energy, const RunOptions &opts)
{
    util::ensure(layer.m > 0 && layer.nb > 0, "degenerate layer");
    const double scale = layer.sampleScale;

    // --- Compute: per-block beats, then the inter-block schedule. ---
    std::vector<uint64_t> costs;
    costs.reserve(layer.blocks.size());
    double codec_elems = 0.0;
    double codec_cycles_raw = 0.0;
    for (const BlockTask &b : layer.blocks) {
        // Element-granular datapaths schedule raw elements; structured
        // ones issue whole beats (lane-groups) per block.
        costs.push_back(cfg.elementGranular ? b.nnz : blockBeats(b, cfg));
        if (b.independentDim && cfg.codecUnit && b.nnz > 0) {
            codec_elems += b.nnz;
            codec_cycles_raw += static_cast<double>(
                (b.nnz + 1) / 2 + kCodecTailCycles);
        }
    }
    const ScheduleResult sched = scheduleBlocks(
        costs, cfg.totalDvpes(), cfg.interSched, cfg.schedLookahead);
    double beat_divisor = cfg.elementGranular
        ? static_cast<double>(cfg.lanesPerDvpe)
        : 1.0;
    // Int8 weights double the MAC rate (each fp16 lane retires two
    // 8-bit products per cycle, as on real tensor cores).
    if (opts.int8Weights)
        beat_divisor *= 2.0;
    const double compute_cycles = static_cast<double>(sched.makespan)
        * static_cast<double>(layer.nb) * scale
        * cfg.beatOverheadScale / beat_divisor;

    // --- Memory: A (format-dependent), B and D (contiguous). ---
    const DramModel dram(cfg);
    DramTransfer a = dram.stream(layer.aStream);
    double a_bytes_scale = scale;
    if (opts.int8Weights)
        a_bytes_scale *= kInt8AStreamScale;
    const DramTransfer b =
        dram.streamContiguous(layer.y * layer.nb * 2);
    const DramTransfer d =
        dram.streamContiguous(layer.x * layer.nb * 2);
    const double mem_cycles =
        a.cycles * a_bytes_scale + b.cycles + d.cycles;

    // --- Codec: conversion runs once per fetched block, overlapped
    // with the pipeline. The codec sits on the fetch path, so its
    // aggregate throughput is provisioned to line rate (one 2-lane
    // converter per 4 bytes/cycle of DRAM bandwidth), with at least
    // one converter per DVPE array; that is what keeps conversion
    // hideable (paper Fig. 14). ---
    const double converters = std::max(
        cfg.dramBytesPerCycle() / 4.0,
        static_cast<double>(cfg.dvpeArrays));
    const double codec_cycles = codec_cycles_raw * scale / converters;

    // --- Assemble the pipeline. ---
    RunStats out;
    const double bottleneck = std::max(compute_cycles, mem_cycles);
    const double exposed = std::max(0.0, codec_cycles - bottleneck);
    out.breakdown.compute = compute_cycles;
    out.breakdown.memory = mem_cycles;
    out.breakdown.codec = codec_cycles;
    out.breakdown.codecExposed = exposed;
    out.breakdown.startup = kStartupCycles;
    out.breakdown.total = bottleneck + exposed + kStartupCycles;
    out.cycles = out.breakdown.total;
    out.seconds = out.cycles / (cfg.clockGhz * 1e9);

    // --- Energy. ---
    const double macs = layer.usefulMacs();
    const double mac_pj =
        opts.int8Weights ? energy.macInt8Pj : energy.macFp16Pj;
    out.energy.computeJ =
        macs * mac_pj * 1e-12 * cfg.computeEnergyScale;
    const double dram_bus = static_cast<double>(a.busBytes)
            * a_bytes_scale
        + static_cast<double>(b.busBytes)
        + static_cast<double>(d.busBytes);
    const double dram_useful = static_cast<double>(a.usefulBytes)
            * a_bytes_scale
        + static_cast<double>(b.usefulBytes)
        + static_cast<double>(d.usefulBytes);
    out.energy.dramJ = dram_bus * energy.dramBytePj * 1e-12;
    // On-chip traffic: every useful byte is written to and read from
    // the double buffer once; operand-register energy is folded into
    // the per-MAC constant.
    out.energy.sramJ = dram_useful * 2.0 * energy.sramBytePj * 1e-12;
    out.energy.codecJ =
        codec_elems * scale * energy.codecElemPj * 1e-12;
    out.energy.mbdJ = cfg.mbdUnit
        ? static_cast<double>(layer.aNnz) * scale * energy.mbdElemPj
            * 1e-12
        : 0.0;
    const double static_mw = energy.dvpeStaticMw
        + (cfg.codecUnit ? energy.codecStaticMw : 0.0)
        + (cfg.mbdUnit ? energy.mbdStaticMw : 0.0)
        + cfg.extraStaticW * 1e3;
    out.energy.staticJ = static_mw * 1e-3 * out.seconds;

    // --- Derived metrics. ---
    out.edp = out.energy.totalJ() * out.seconds;
    out.bwUtilisation = dram_bus > 0.0 ? dram_useful / dram_bus : 1.0;
    const double lane_cycles = compute_cycles
        * static_cast<double>(cfg.totalLanes());
    out.computeUtilisation = lane_cycles > 0.0 ? macs / lane_cycles : 0.0;
    out.schedUtilisation = sched.utilisation;

    return out;
}

/**
 * Pipeline-level telemetry for one simulated (or cache-replayed)
 * layer. Everything recorded here derives from the RunStats breakdown
 * and the layer geometry, so a sim-cache hit replays exactly the
 * counters a fresh simulation would have recorded — the headline
 * sim.pipeline.* metrics stay workload-accurate however the result
 * was produced. (Interior counters — sim.dram.*, sim.sched.* — only
 * record on a fresh compute; single-flight keeps that deterministic.)
 */
void
recordPipelineTelemetry(const LayerProfile &layer, const RunStats &out)
{
    const double compute_cycles = out.breakdown.compute;
    const double mem_cycles = out.breakdown.memory;
    const double codec_cycles = out.breakdown.codec;
    const double exposed = out.breakdown.codecExposed;
    const double bottleneck = std::max(compute_cycles, mem_cycles);
    const double macs = layer.usefulMacs();
    if (obs::metricsEnabled()) {
        static const obs::Counter layers =
            obs::counter("sim.pipeline.layers");
        static const obs::Counter c_compute =
            obs::counter("sim.pipeline.compute_cycles");
        static const obs::Counter c_memory =
            obs::counter("sim.pipeline.memory_cycles");
        static const obs::Counter c_codec =
            obs::counter("sim.pipeline.codec_cycles");
        static const obs::Counter c_exposed =
            obs::counter("sim.pipeline.codec_exposed_cycles");
        static const obs::Counter c_total =
            obs::counter("sim.pipeline.total_cycles");
        static const obs::Counter c_macs =
            obs::counter("sim.pipeline.useful_macs");
        layers.add();
        c_compute.addRounded(compute_cycles);
        c_memory.addRounded(mem_cycles);
        c_codec.addRounded(codec_cycles);
        c_exposed.addRounded(exposed);
        c_total.addRounded(out.cycles);
        c_macs.addRounded(macs);
    }
    if (obs::tracingEnabled()) {
        // Analytic stage windows: compute/memory start together after
        // the fill; exposed conversion trails the bottleneck.
        const uint64_t track = obs::simTrack(util::formatStr(
            "pipeline {}x{}x{} blocks={}", layer.x, layer.y, layer.nb,
            layer.blocks.size()));
        obs::simLaneName(track, 1, "compute");
        obs::simLaneName(track, 2, "memory");
        obs::simLaneName(track, 3, "codec");
        obs::simSpan(track, 0, "startup", 0.0, kStartupCycles);
        obs::simSpan(track, 1, "compute", kStartupCycles,
                     compute_cycles);
        obs::simSpan(track, 2, "memory", kStartupCycles, mem_cycles);
        obs::simSpan(track, 3, "codec.hidden", kStartupCycles,
                     codec_cycles - exposed);
        obs::simSpan(track, 3, "codec.exposed",
                     kStartupCycles + bottleneck, exposed);
    }
}

/**
 * Content key of one simulation. The full ordered block stream feeds
 * the hash (block order affects scheduling, so a histogram is not
 * enough), together with every ArchConfig field except hostThreads —
 * host parallelism never changes results — all EnergyParams, and the
 * run options.
 */
uint64_t
simCacheKey(const LayerProfile &layer, const ArchConfig &cfg,
            const EnergyParams &energy, const RunOptions &opts)
{
    util::Hasher h;
    h.str("tbstc.cache.sim.v1");
    h.u64(layer.x).u64(layer.y).u64(layer.nb).u64(layer.m);
    h.u64(layer.aNnz).f64(layer.sampleScale);
    h.u64(layer.aStream.payloadBytes);
    h.u64(layer.aStream.usefulBytes);
    h.u64(layer.aStream.segments);
    h.u64(layer.blocks.size());
    for (const BlockTask &b : layer.blocks)
        h.u64(static_cast<uint64_t>(b.nnz)
              | static_cast<uint64_t>(b.n) << 16
              | static_cast<uint64_t>(b.independentDim ? 1 : 0) << 24
              | static_cast<uint64_t>(b.nonemptyRows) << 32);
    h.u64(cfg.dvpeArrays).u64(cfg.dvpesPerArray).u64(cfg.lanesPerDvpe);
    h.f64(cfg.clockGhz).f64(cfg.dramGbps).u64(cfg.onchipKb);
    h.u64(cfg.codecUnit ? 1 : 0).u64(cfg.mbdUnit ? 1 : 0);
    h.u64(cfg.alternateUnit ? 1 : 0);
    h.u64(static_cast<uint64_t>(cfg.interSched));
    h.u64(static_cast<uint64_t>(cfg.intraMap));
    h.u64(cfg.schedLookahead);
    h.f64(cfg.computeEnergyScale).f64(cfg.extraStaticW);
    h.f64(cfg.beatOverheadScale);
    h.u64(cfg.elementGranular ? 1 : 0);
    h.f64(energy.macFp16Pj).f64(energy.macInt8Pj).f64(energy.sramBytePj);
    h.f64(energy.dramBytePj).f64(energy.codecElemPj).f64(energy.mbdElemPj);
    h.f64(energy.dvpeStaticMw).f64(energy.codecStaticMw);
    h.f64(energy.mbdStaticMw);
    h.u64(opts.int8Weights ? 1 : 0);
    return h.digest();
}

std::vector<uint8_t>
serializeStats(const RunStats &s)
{
    util::ByteWriter w;
    w.f64(s.cycles);
    w.f64(s.seconds);
    w.f64(s.energy.computeJ);
    w.f64(s.energy.sramJ);
    w.f64(s.energy.dramJ);
    w.f64(s.energy.codecJ);
    w.f64(s.energy.mbdJ);
    w.f64(s.energy.staticJ);
    w.f64(s.edp);
    w.f64(s.breakdown.compute);
    w.f64(s.breakdown.memory);
    w.f64(s.breakdown.codec);
    w.f64(s.breakdown.codecExposed);
    w.f64(s.breakdown.startup);
    w.f64(s.breakdown.total);
    w.f64(s.bwUtilisation);
    w.f64(s.computeUtilisation);
    w.f64(s.schedUtilisation);
    return w.bytes();
}

std::optional<RunStats>
deserializeStats(std::span<const uint8_t> bytes)
{
    util::ByteReader r(bytes);
    RunStats s;
    s.cycles = r.f64();
    s.seconds = r.f64();
    s.energy.computeJ = r.f64();
    s.energy.sramJ = r.f64();
    s.energy.dramJ = r.f64();
    s.energy.codecJ = r.f64();
    s.energy.mbdJ = r.f64();
    s.energy.staticJ = r.f64();
    s.edp = r.f64();
    s.breakdown.compute = r.f64();
    s.breakdown.memory = r.f64();
    s.breakdown.codec = r.f64();
    s.breakdown.codecExposed = r.f64();
    s.breakdown.startup = r.f64();
    s.breakdown.total = r.f64();
    s.bwUtilisation = r.f64();
    s.computeUtilisation = r.f64();
    s.schedUtilisation = r.f64();
    if (!r.done())
        return std::nullopt;
    return s;
}

/** Host-domain cache telemetry (hit patterns are schedule-dependent). */
void
countSimCache(util::CacheOutcome outcome)
{
    if (!obs::metricsEnabled())
        return;
    static const obs::Counter hits =
        obs::counter("cache.sim.hits", obs::Domain::Host);
    static const obs::Counter disk_hits =
        obs::counter("cache.sim.disk_hits", obs::Domain::Host);
    static const obs::Counter misses =
        obs::counter("cache.sim.misses", obs::Domain::Host);
    switch (outcome) {
      case util::CacheOutcome::MemoryHit: hits.add(); break;
      case util::CacheOutcome::DiskHit:   disk_hits.add(); break;
      case util::CacheOutcome::Computed:  misses.add(); break;
      case util::CacheOutcome::Disabled:  break;
    }
}

} // namespace

RunStats
simulateLayer(const LayerProfile &layer, const ArchConfig &cfg,
              const EnergyParams &energy, const RunOptions &opts)
{
    util::ContentStore &store = util::ContentStore::instance();
    if (store.enabled()) {
        const uint64_t key = simCacheKey(layer, cfg, energy, opts);
        auto [bytes, outcome] = store.getOrCompute("sim", key, [&] {
            return serializeStats(
                simulateLayerUncached(layer, cfg, energy, opts));
        });
        countSimCache(outcome);
        if (const auto stats = deserializeStats(bytes)) {
            recordPipelineTelemetry(layer, *stats);
            return *stats;
        }
        util::warn("sim cache payload undecodable; recomputing");
    }
    const RunStats out = simulateLayerUncached(layer, cfg, energy, opts);
    recordPipelineTelemetry(layer, out);
    return out;
}

} // namespace tbstc::sim
