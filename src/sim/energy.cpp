#include "energy.hpp"

namespace tbstc::sim {

namespace {

// Reference geometry the per-unit constants were calibrated against
// (paper Sec. VII-A1): 8 arrays x 16 DVPEs x 8 lanes at 1 GHz.
constexpr double kRefLanes = 1024.0;
constexpr double kRefArrays = 8.0;

// Table III anchor values.
constexpr double kDvpeAreaMm2 = 1.43;
constexpr double kDvpePowerMw = 197.71;
constexpr double kCodecAreaMm2 = 0.03;
constexpr double kCodecPowerMw = 2.19;
constexpr double kMbdAreaMm2 = 0.01;
constexpr double kMbdPowerMw = 0.69;

// Added-over-dense-tensor-core area of one TB-STC instance: the
// reduction network + alternate unit (0.08 mm^2, inside the DVPE
// array figure) plus codec and MBD units (Sec. VII-C4).
constexpr double kReductionNetMm2 = 0.08;

// A100 comparison constants (paper Sec. VII-C4).
constexpr double kA100TensorCoreRatio = 108.0;
constexpr double kA100DieMm2 = 826.0;

} // namespace

AreaModel::AreaModel(const ArchConfig &cfg) : cfg_(cfg) {}

std::vector<ComponentCost>
AreaModel::components() const
{
    const double lane_scale =
        static_cast<double>(cfg_.totalLanes()) / kRefLanes;
    const double array_scale =
        static_cast<double>(cfg_.dvpeArrays) / kRefArrays;

    std::vector<ComponentCost> rows;
    rows.push_back({"DVPE Array", kDvpeAreaMm2 * lane_scale,
                    kDvpePowerMw * lane_scale});
    if (cfg_.codecUnit) {
        rows.push_back({"Codec Unit", kCodecAreaMm2 * array_scale,
                        kCodecPowerMw * array_scale});
    }
    if (cfg_.mbdUnit) {
        rows.push_back({"MBD Unit", kMbdAreaMm2 * array_scale,
                        kMbdPowerMw * array_scale});
    }
    return rows;
}

double
AreaModel::totalAreaMm2() const
{
    double total = 0.0;
    for (const auto &c : components())
        total += c.areaMm2;
    return total;
}

double
AreaModel::totalPowerMw() const
{
    double total = 0.0;
    for (const auto &c : components())
        total += c.powerMw;
    return total;
}

double
AreaModel::addedAreaMm2() const
{
    const double lane_scale =
        static_cast<double>(cfg_.totalLanes()) / kRefLanes;
    const double array_scale =
        static_cast<double>(cfg_.dvpeArrays) / kRefArrays;
    double added = kReductionNetMm2 * lane_scale;
    if (cfg_.codecUnit)
        added += kCodecAreaMm2 * array_scale;
    if (cfg_.mbdUnit)
        added += kMbdAreaMm2 * array_scale;
    return added;
}

double
AreaModel::a100OverheadFraction() const
{
    return addedAreaMm2() * kA100TensorCoreRatio / kA100DieMm2;
}

} // namespace tbstc::sim
