/**
 * @file
 * Top-level cycle-level pipeline simulator.
 *
 * Models the accelerator as a tile pipeline — fetch (DRAM), decode
 * (codec), compute (scheduler + DVPEs), writeback — with stages
 * overlapped via double buffering. Per-layer behaviour is derived
 * from a block-granular LayerProfile built from real masks and real
 * encodings, so pattern, format, scheduling and mapping effects are
 * measured, not assumed.
 */

#ifndef TBSTC_SIM_PIPELINE_HPP
#define TBSTC_SIM_PIPELINE_HPP

#include "config.hpp"
#include "energy.hpp"
#include "profile.hpp"

namespace tbstc::sim {

/** Cycle breakdown of one simulated layer (paper Fig. 14). */
struct CycleBreakdown
{
    double compute = 0.0;     ///< DVPE busy window (scheduled makespan).
    double memory = 0.0;      ///< DRAM transfer window (A + B + D).
    double codec = 0.0;       ///< Raw format-conversion work.
    double codecExposed = 0.0;///< Conversion not hidden by other stages.
    double startup = 0.0;     ///< Pipeline fill.
    double total = 0.0;       ///< End-to-end cycles.
};

/** Results of simulating one layer on one accelerator config. */
struct RunStats
{
    double cycles = 0.0;
    double seconds = 0.0;
    EnergyBreakdown energy;
    double edp = 0.0; ///< Joules x seconds.
    CycleBreakdown breakdown;

    double bwUtilisation = 0.0;      ///< Useful DRAM bytes / bus bytes.
    double computeUtilisation = 0.0; ///< Useful MACs / (lanes x busy).
    double schedUtilisation = 0.0;   ///< Scheduler packing quality.

    /** Accumulate another layer's stats (end-to-end runs). */
    void accumulate(const RunStats &other);

    /**
     * This run repeated @p k times (e.g. one representative of k
     * identically-shaped layers): extensive quantities scale, ratio
     * metrics stay, EDP is recomputed.
     */
    RunStats scaled(double k) const;
};

/** Extra per-run options. */
struct RunOptions
{
    bool int8Weights = false; ///< Q+S mode: 8-bit weight payload/MACs.
};

/**
 * Simulate one SpMM layer on the given architecture.
 *
 * @param layer Block-granular layer description.
 * @param cfg Accelerator configuration.
 * @param energy Energy-parameter set.
 * @param opts Run options.
 */
RunStats simulateLayer(const LayerProfile &layer, const ArchConfig &cfg,
                       const EnergyParams &energy = {},
                       const RunOptions &opts = {});

} // namespace tbstc::sim

#endif // TBSTC_SIM_PIPELINE_HPP
