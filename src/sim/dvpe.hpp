/**
 * @file
 * DVPE intra-block execution model (paper Sec. VI-A1 / Fig. 11(c,d)).
 *
 * A DVPE issues one pipeline beat per cycle; a beat drives all
 * `lanesPerDvpe` multipliers against one column of B. The mapping
 * policy decides how a block's kept elements fill beats:
 *
 *  - Reduction-dimension blocks are always lane-packed: the classic
 *    structured-sparse datapath (STC's multiplexers) packs the N-of-M
 *    row groups into full beats, so a block costs ceil(nnz / lanes).
 *  - Independent-dimension blocks have rows of varying occupancy.
 *    Naive mapping issues one (non-empty) row per beat, stalling idle
 *    lanes. The alternate unit lets TB-STC pack rows together and
 *    buffer the extra partial sums, restoring ceil(nnz / lanes).
 */

#ifndef TBSTC_SIM_DVPE_HPP
#define TBSTC_SIM_DVPE_HPP

#include <cstdint>

#include "config.hpp"
#include "profile.hpp"

namespace tbstc::sim {

/**
 * Pipeline beats one DVPE spends computing @p task against a single
 * column of B.
 *
 * @param task Block descriptor.
 * @param cfg Architecture (lanes, alternate unit, mapping policy).
 */
uint64_t blockBeats(const BlockTask &task, const ArchConfig &cfg);

/**
 * Lane-packed beat count: ceil(nnz / lanes). The best any mapping can
 * do; exposed for utilisation baselines.
 */
uint64_t packedBeats(uint64_t nnz, size_t lanes);

} // namespace tbstc::sim

#endif // TBSTC_SIM_DVPE_HPP
