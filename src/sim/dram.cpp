#include "dram.hpp"

#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace tbstc::sim {

using util::ensure;

DramModel::DramModel(const ArchConfig &cfg, uint64_t burst_bytes,
                     uint64_t segment_overhead_bytes)
    : cfg_(cfg), burst_(burst_bytes), segOverhead_(segment_overhead_bytes)
{
    ensure(burst_ > 0, "DRAM burst size must be positive");
}

DramTransfer
DramModel::fromSegments(uint64_t payload, uint64_t useful,
                        uint64_t segments) const
{
    DramTransfer t;
    t.usefulBytes = useful;
    if (payload == 0)
        return t;
    ensure(segments > 0, "non-empty stream needs segments");

    // Each contiguous run transfers whole bursts (the tail burst is
    // padded) and pays the activation/command overhead once. Runs are
    // modelled at their average length; the burst round-up is applied
    // per run.
    const double avg_len =
        static_cast<double>(payload) / static_cast<double>(segments);
    const double bursts_per_run =
        static_cast<double>(
            (static_cast<uint64_t>(avg_len) + burst_ - 1) / burst_);
    const double run_bytes = bursts_per_run * static_cast<double>(burst_)
        + static_cast<double>(segOverhead_);
    t.busBytes =
        static_cast<uint64_t>(run_bytes * static_cast<double>(segments));
    t.cycles =
        static_cast<double>(t.busBytes) / cfg_.dramBytesPerCycle();

    if (obs::metricsEnabled()) {
        static const obs::Counter streams =
            obs::counter("sim.dram.streams");
        static const obs::Counter c_bus =
            obs::counter("sim.dram.bus_bytes");
        static const obs::Counter c_useful =
            obs::counter("sim.dram.useful_bytes");
        static const obs::Counter c_segments =
            obs::counter("sim.dram.segments");
        static const obs::Counter c_cycles =
            obs::counter("sim.dram.transfer_cycles");
        streams.add();
        c_bus.add(t.busBytes);
        c_useful.add(t.usefulBytes);
        c_segments.add(segments);
        c_cycles.addRounded(t.cycles);
    }
    return t;
}

DramTransfer
DramModel::stream(const format::StreamProfile &profile) const
{
    // Padding/duplicated bytes cross the bus but are not useful.
    return fromSegments(profile.payloadBytes, profile.usefulBytes,
                        profile.segments);
}

DramTransfer
DramModel::streamContiguous(uint64_t bytes) const
{
    if (bytes == 0)
        return {};
    return fromSegments(bytes, bytes, 1);
}

} // namespace tbstc::sim
