#include "dram_detail.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/obs.hpp"
#include "util/fmt.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace tbstc::sim {

using util::ensure;

DramSim::DramSim(const ArchConfig &cfg, DramTimings timings)
    : cfg_(cfg), timings_(timings)
{
    ensure(timings_.banks > 0 && timings_.rowBytes > 0
               && timings_.burstBytes > 0,
           "invalid DramTimings");
}

DramSimResult
DramSim::serveTrace(std::span<const DramRequest> reqs) const
{
    DramSimResult res;
    // Per-bank state: the open row (-1 = closed) and when the bank can
    // accept its next column command.
    std::vector<int64_t> open_row(timings_.banks, -1);
    std::vector<double> bank_ready(timings_.banks, 0.0);

    // Data-bus transfer time of one burst at the configured bandwidth.
    const double burst_cycles =
        static_cast<double>(timings_.burstBytes)
        / cfg_.dramBytesPerCycle();
    double bus_free = 0.0;

    // Row-behaviour trace: one lane for the data bus, one for misses.
    uint64_t track = 0;
    if (obs::tracingEnabled()) {
        track = obs::simTrack(
            util::formatStr("dramsim reqs={}", reqs.size()));
        obs::simLaneName(track, 1, "bus");
        obs::simLaneName(track, 2, "row.miss");
    }

    for (const auto &[addr, len] : reqs) {
        if (len == 0)
            continue;
        ++res.requests;
        const uint64_t first = addr / timings_.burstBytes;
        const uint64_t last = (addr + len - 1) / timings_.burstBytes;
        for (uint64_t burst = first; burst <= last; ++burst) {
            const uint64_t byte = burst * timings_.burstBytes;
            const uint64_t row_global = byte / timings_.rowBytes;
            const auto bank =
                static_cast<uint32_t>(row_global % timings_.banks);
            const auto row =
                static_cast<int64_t>(row_global / timings_.banks);

            double ready = bank_ready[bank];
            bool hit = true;
            if (open_row[bank] == row) {
                // Row hit: column commands pipeline, so the burst
                // streams as soon as the bus frees.
                ++res.rowHits;
            } else {
                hit = false;
                ++res.rowMisses;
                res.energyJ += timings_.actPj * 1e-12;
                // Precharge (if a row was open), activate, then the
                // first column access; banks prepare in parallel with
                // other banks' transfers.
                ready += (open_row[bank] >= 0 ? timings_.tRp : 0)
                    + timings_.tRcd + timings_.tCl;
                open_row[bank] = row;
            }
            const double start = std::max(ready, bus_free);
            bus_free = start + burst_cycles;
            bank_ready[bank] = start;
            res.energyJ += timings_.burstPj * 1e-12;
            ++res.bursts;
            if (track != 0) {
                obs::simSpan(track, 1, hit ? "burst.hit" : "burst.miss",
                             start, burst_cycles);
                if (!hit)
                    obs::simInstant(
                        track, 2,
                        util::formatStr("activate.bank{}", bank),
                        ready);
            }
        }
    }
    res.cycles = bus_free;

    if (obs::metricsEnabled()) {
        static const obs::Counter traces =
            obs::counter("sim.dramsim.traces");
        static const obs::Counter c_req =
            obs::counter("sim.dramsim.requests");
        static const obs::Counter c_bursts =
            obs::counter("sim.dramsim.bursts");
        static const obs::Counter c_hits =
            obs::counter("sim.dramsim.row_hits");
        static const obs::Counter c_misses =
            obs::counter("sim.dramsim.row_misses");
        traces.add();
        c_req.add(res.requests);
        c_bursts.add(res.bursts);
        c_hits.add(res.rowHits);
        c_misses.add(res.rowMisses);
    }
    return res;
}

DramSimResult
DramSim::serveStream(const format::StreamProfile &profile,
                     double spread_factor, uint64_t seed) const
{
    if (profile.payloadBytes == 0)
        return {};
    ensure(spread_factor >= 1.0, "spread_factor must be >= 1");
    const uint64_t segments = std::max<uint64_t>(1, profile.segments);
    const uint64_t avg_len =
        std::max<uint64_t>(1, profile.payloadBytes / segments);

    // Lay segments out across an address space inflated by the spread
    // factor; shuffle their order so consecutive reads hop rows the
    // way a block-ordered walk of a row-packed format does.
    util::Rng rng(seed);
    std::vector<DramRequest> reqs;
    reqs.reserve(segments);
    const uint64_t stride = static_cast<uint64_t>(
        std::ceil(static_cast<double>(avg_len) * spread_factor));
    uint64_t remaining = profile.payloadBytes;
    for (uint64_t s = 0; s < segments; ++s) {
        const uint64_t len =
            s + 1 == segments ? remaining : std::min(avg_len, remaining);
        reqs.emplace_back(s * stride, len);
        remaining -= len;
    }
    if (spread_factor > 1.0) {
        for (size_t i = reqs.size(); i > 1; --i)
            std::swap(reqs[i - 1], reqs[rng.below(i)]);
    }
    return serveTrace(reqs);
}

} // namespace tbstc::sim
