#include "scheduler.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace tbstc::sim {

using util::ensure;

namespace {

ScheduleResult
scheduleNaive(std::span<const uint64_t> costs, size_t pes)
{
    ScheduleResult res;
    for (size_t w0 = 0; w0 < costs.size(); w0 += pes) {
        const size_t w1 = std::min(w0 + pes, costs.size());
        uint64_t wave_max = 0;
        for (size_t i = w0; i < w1; ++i) {
            wave_max = std::max(wave_max, costs[i]);
            res.busyBeats += static_cast<double>(costs[i]);
        }
        res.makespan += wave_max;
    }
    return res;
}

ScheduleResult
scheduleAware(std::span<const uint64_t> costs, size_t pes,
              size_t lookahead)
{
    ScheduleResult res;
    // PE free times as a min-heap.
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<>> free_at;
    for (size_t p = 0; p < pes; ++p)
        free_at.push(0);

    // The scheduling unit buffers up to `lookahead` upcoming blocks
    // and always hands the earliest-free PE the heaviest buffered
    // block (longest-processing-time within the window); light blocks
    // then back-fill the stragglers, which is the merging effect of
    // paper Fig. 11(b).
    std::vector<uint64_t> window;
    size_t cursor = 0;
    auto refill = [&] {
        while (window.size() < lookahead && cursor < costs.size())
            window.push_back(costs[cursor++]);
    };
    refill();
    while (!window.empty()) {
        const auto heaviest =
            std::max_element(window.begin(), window.end());
        const uint64_t cost = *heaviest;
        window.erase(heaviest);
        res.busyBeats += static_cast<double>(cost);
        const uint64_t start = free_at.top();
        free_at.pop();
        free_at.push(start + cost);
        refill();
    }
    uint64_t makespan = 0;
    while (!free_at.empty()) {
        makespan = std::max(makespan, free_at.top());
        free_at.pop();
    }
    res.makespan = makespan;
    return res;
}

} // namespace

ScheduleResult
scheduleBlocks(std::span<const uint64_t> costs, size_t pes,
               InterSched policy, size_t lookahead)
{
    ensure(pes > 0, "scheduleBlocks requires at least one PE");
    ScheduleResult res = policy == InterSched::Naive
        ? scheduleNaive(costs, pes)
        : scheduleAware(costs, pes, std::max<size_t>(lookahead, 1));
    const double denom = static_cast<double>(res.makespan)
        * static_cast<double>(pes);
    res.utilisation = denom > 0.0 ? res.busyBeats / denom : 1.0;

    // Packing-quality telemetry: how well the scheduling unit merged
    // uneven block costs into the PE array (paper Fig. 11(b)).
    if (obs::metricsEnabled()) {
        static const obs::Counter calls = obs::counter("sim.sched.calls");
        static const obs::Counter blocks =
            obs::counter("sim.sched.blocks");
        static const obs::Counter makespan =
            obs::counter("sim.sched.makespan_beats");
        static const obs::Counter busy =
            obs::counter("sim.sched.busy_beats");
        static const obs::Counter idle =
            obs::counter("sim.sched.idle_beats");
        static const obs::Gauge heaviest =
            obs::gauge("sim.sched.heaviest_block_beats");
        static const obs::Histogram cost_hist =
            obs::histogram("sim.sched.block_cost_beats", 0.0, 128.0, 16);
        calls.add();
        blocks.add(costs.size());
        makespan.add(res.makespan);
        busy.addRounded(res.busyBeats);
        idle.addRounded(std::max(0.0, denom - res.busyBeats));
        for (const uint64_t c : costs) {
            heaviest.record(static_cast<int64_t>(c));
            cost_hist.observe(static_cast<double>(c));
        }
    }
    return res;
}

} // namespace tbstc::sim
