/**
 * @file
 * Off-chip DRAM channel model.
 *
 * Substitutes Ramulator/DRAMPower (see DESIGN.md): the observable the
 * paper's storage-format study depends on is how access *contiguity*
 * and *redundancy* translate into delivered bandwidth. The channel
 * transfers fixed-size bursts; every new contiguous run pays a
 * row-activation/command overhead, and partial bursts waste bus slots.
 * Bandwidth utilisation is useful bytes over bus-occupied bytes.
 */

#ifndef TBSTC_SIM_DRAM_HPP
#define TBSTC_SIM_DRAM_HPP

#include <cstdint>

#include "config.hpp"
#include "format/encoding.hpp"

namespace tbstc::sim {

/** Result of streaming one byte stream through the channel. */
struct DramTransfer
{
    uint64_t busBytes = 0;    ///< Bus slots occupied (incl. waste).
    uint64_t usefulBytes = 0; ///< Bytes the consumer actually needed.
    double cycles = 0.0;      ///< Core cycles the transfer occupies.

    /** Delivered fraction of peak bandwidth spent on useful bytes. */
    double
    utilisation() const
    {
        return busBytes == 0
            ? 1.0
            : static_cast<double>(usefulBytes) / busBytes;
    }
};

/** Burst-granular DRAM channel. */
class DramModel
{
  public:
    /**
     * @param cfg Architecture (peak bandwidth, clock).
     * @param burst_bytes Burst size (default 32 B).
     * @param segment_overhead_bytes Bus-slot equivalent of the
     *     activate/command latency paid on each new contiguous run
     *     (default 8 B; short runs are additionally burst-padded).
     */
    explicit DramModel(const ArchConfig &cfg, uint64_t burst_bytes = 32,
                       uint64_t segment_overhead_bytes = 8);

    /** Stream an encoded matrix walk (paper Fig. 7 experiment). */
    DramTransfer stream(const format::StreamProfile &profile) const;

    /** Stream a fully contiguous transfer of @p bytes useful bytes. */
    DramTransfer streamContiguous(uint64_t bytes) const;

    uint64_t burstBytes() const { return burst_; }

  private:
    DramTransfer fromSegments(uint64_t payload, uint64_t useful,
                              uint64_t segments) const;

    ArchConfig cfg_;
    uint64_t burst_;
    uint64_t segOverhead_;
};

} // namespace tbstc::sim

#endif // TBSTC_SIM_DRAM_HPP
