/**
 * @file
 * Request-level DRAM simulator: banks, row buffers, activate/precharge
 * timing — the Ramulator-class substitute behind the coarse DramModel.
 *
 * DramModel (dram.hpp) prices a stream with a per-segment overhead
 * constant; this module derives that behaviour from first principles:
 * a stream becomes a burst-granular request trace, each burst opens or
 * hits a row in its bank, banks precharge/activate independently, and
 * the shared data bus serializes transfers. Tests cross-validate the
 * coarse model's utilisation against this one.
 */

#ifndef TBSTC_SIM_DRAM_DETAIL_HPP
#define TBSTC_SIM_DRAM_DETAIL_HPP

#include <cstdint>
#include <span>
#include <utility>

#include "config.hpp"
#include "format/encoding.hpp"

namespace tbstc::sim {

/** DRAM device timing/geometry, in core-clock cycles and bytes. */
struct DramTimings
{
    uint32_t banks = 16;
    uint32_t rowBytes = 2048;  ///< Row-buffer size.
    uint32_t burstBytes = 32;  ///< Data-bus transaction granularity.
    uint32_t tRcd = 14;        ///< Activate -> column access.
    uint32_t tRp = 14;         ///< Precharge.
    uint32_t tCl = 14;         ///< Column access -> first data.

    // Energy per event, picojoules.
    double actPj = 900.0;      ///< One row activation (incl. precharge).
    double burstPj = 160.0;    ///< One burst transfer (I/O + column).
};

/** One contiguous read request: (byte address, length). */
using DramRequest = std::pair<uint64_t, uint64_t>;

/** Outcome of serving a trace. */
struct DramSimResult
{
    double cycles = 0.0;
    uint64_t requests = 0;
    uint64_t bursts = 0;
    uint64_t rowHits = 0;
    uint64_t rowMisses = 0;
    double energyJ = 0.0;

    double
    rowHitRate() const
    {
        const uint64_t total = rowHits + rowMisses;
        return total ? static_cast<double>(rowHits) / total : 1.0;
    }

    /** Useful bytes per bus-cycle-byte of capacity. */
    double
    utilisation(double bytes, double bytes_per_cycle) const
    {
        return cycles > 0.0 ? bytes / (cycles * bytes_per_cycle) : 1.0;
    }
};

/** Banked, row-buffered DRAM channel. */
class DramSim
{
  public:
    explicit DramSim(const ArchConfig &cfg, DramTimings timings = {});

    /** Serve an explicit request trace in order. */
    DramSimResult serveTrace(std::span<const DramRequest> reqs) const;

    /**
     * Serve a format stream: segments are laid out as the encoding's
     * walk produces them — a contiguous run per segment, runs placed
     * back to back in a @p spread_factor-times larger address space
     * (1 = fully packed; CSR-style walks touch spread-out rows).
     */
    DramSimResult serveStream(const format::StreamProfile &profile,
                              double spread_factor = 1.0,
                              uint64_t seed = 1) const;

    const DramTimings &timings() const { return timings_; }

  private:
    ArchConfig cfg_;
    DramTimings timings_;
};

} // namespace tbstc::sim

#endif // TBSTC_SIM_DRAM_DETAIL_HPP
