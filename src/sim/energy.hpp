/**
 * @file
 * Energy and area models (7 nm, 1 GHz).
 *
 * The paper derives these numbers from RTL synthesis (Synopsys DC),
 * Sparseloop, CACTI 7, and DRAMPower, scaled to 7 nm via DeepScaleTool.
 * We substitute an analytical model whose per-event constants are set
 * from published 7 nm figures and calibrated so the component
 * *breakdown ratios* match the paper's Table III; see DESIGN.md
 * ("Substitutions"). All energies in picojoules, areas in mm^2.
 */

#ifndef TBSTC_SIM_ENERGY_HPP
#define TBSTC_SIM_ENERGY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "config.hpp"

namespace tbstc::sim {

/** Per-event dynamic energies (pJ) and static powers (mW). */
struct EnergyParams
{
    // Dynamic energy per event, picojoules.
    double macFp16Pj = 0.1657;  ///< One FP16 multiply-accumulate.
    double macInt8Pj = 0.055;   ///< One INT8 MAC (Q+S mode).
    double sramBytePj = 0.18;   ///< One byte through on-chip SRAM.
    double dramBytePj = 12.0;   ///< One byte over the DRAM interface.
    double codecElemPj = 0.115; ///< One element through the codec queues.
    double mbdElemPj = 0.0356;  ///< One operand through the MBD unit.

    // Static power, milliwatts (component leakage + clock tree).
    double dvpeStaticMw = 28.0; ///< Whole DVPE-array complex.
    double codecStaticMw = 0.35;
    double mbdStaticMw = 0.12;
};

/** Energy accounting for one simulated run. */
struct EnergyBreakdown
{
    double computeJ = 0.0; ///< MACs (incl. reduction network).
    double sramJ = 0.0;
    double dramJ = 0.0;
    double codecJ = 0.0;
    double mbdJ = 0.0;
    double staticJ = 0.0;

    double
    totalJ() const
    {
        return computeJ + sramJ + dramJ + codecJ + mbdJ + staticJ;
    }
};

/** Component area/power entry for Table III. */
struct ComponentCost
{
    std::string name;
    double areaMm2 = 0.0;
    double powerMw = 0.0; ///< Peak power at 1 GHz full activity.
};

/**
 * Area/power model of a TB-STC-class accelerator.
 *
 * Component areas scale linearly in unit counts; the per-unit
 * constants reproduce the paper's Table III at the default geometry
 * (1.43 / 0.03 / 0.01 mm^2 and 197.71 / 2.19 / 0.69 mW for the DVPE
 * array, codec unit, and MBD unit respectively).
 */
class AreaModel
{
  public:
    explicit AreaModel(const ArchConfig &cfg);

    /** Per-component rows, in Table III order. */
    std::vector<ComponentCost> components() const;

    double totalAreaMm2() const;
    double totalPowerMw() const;

    /**
     * Area overhead of scaling this design to A100 proportions:
     * the paper multiplies one TB-STC instance by 108 (the tensor-core
     * count ratio) and divides by the 826 mm^2 A100 die.
     */
    double a100OverheadFraction() const;

    /** Added-over-tensor-core area (reduction network+codec+MBD). */
    double addedAreaMm2() const;

  private:
    ArchConfig cfg_;
};

} // namespace tbstc::sim

#endif // TBSTC_SIM_ENERGY_HPP
