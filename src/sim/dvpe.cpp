#include "dvpe.hpp"

namespace tbstc::sim {

uint64_t
packedBeats(uint64_t nnz, size_t lanes)
{
    return (nnz + lanes - 1) / lanes;
}

uint64_t
blockBeats(const BlockTask &task, const ArchConfig &cfg)
{
    if (task.nnz == 0)
        return 0;
    if (task.independentDim
        && (!cfg.alternateUnit || cfg.intraMap == IntraMap::Naive)) {
        // Row-per-beat issue: each non-empty row of the block occupies
        // one beat regardless of how few lanes it fills.
        return task.nonemptyRows;
    }
    return packedBeats(task.nnz, cfg.lanesPerDvpe);
}

} // namespace tbstc::sim
