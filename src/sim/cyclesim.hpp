/**
 * @file
 * Event-driven cycle simulator of the TB-STC tile pipeline.
 *
 * simulateLayer() (pipeline.hpp) uses closed-form overlap between the
 * fetch, codec, compute and writeback stages. This module simulates
 * the same pipeline explicitly: the layer is cut into tiles of A
 * blocks; a double-buffered fetch engine competes with writeback for
 * the one memory bus; the codec converts each tile after it lands;
 * the DVPE array starts a tile once it is decoded and its predecessor
 * retired. Stage occupancies and the exact end-to-end cycle count
 * fall out of the event timeline.
 *
 * The analytic model is the fast path (benches sweep thousands of
 * configurations); this simulator is the reference that bounds its
 * error — see tests/test_sim_cyclesim.cpp.
 */

#ifndef TBSTC_SIM_CYCLESIM_HPP
#define TBSTC_SIM_CYCLESIM_HPP

#include "config.hpp"
#include "profile.hpp"

namespace tbstc::sim {

/** Outcome of one event-driven run. */
struct CycleSimResult
{
    double cycles = 0.0;        ///< End-to-end cycles.
    double busBusy = 0.0;       ///< Memory-bus occupied cycles.
    double codecBusy = 0.0;     ///< Codec-converter occupied cycles.
    double computeBusy = 0.0;   ///< DVPE-array occupied cycles.
    size_t tiles = 0;           ///< Pipeline stages executed.

    /** Fraction of the run the DVPE array was computing. */
    double
    computeOccupancy() const
    {
        return cycles > 0.0 ? computeBusy / cycles : 0.0;
    }

    /** Fraction of the run the memory bus was transferring. */
    double
    busOccupancy() const
    {
        return cycles > 0.0 ? busBusy / cycles : 0.0;
    }
};

/** Tunables of the event-driven run. */
struct CycleSimOptions
{
    size_t tileBlocks = 512; ///< A blocks per pipeline tile.
    bool int8Weights = false;
};

/**
 * Run the event-driven tile pipeline for one layer.
 *
 * @param layer Block-granular layer description (same input as the
 *     analytic simulateLayer()).
 * @param cfg Architecture configuration.
 * @param opts Tile size and datapath options.
 */
CycleSimResult simulateLayerEventDriven(const LayerProfile &layer,
                                        const ArchConfig &cfg,
                                        const CycleSimOptions &opts = {});

} // namespace tbstc::sim

#endif // TBSTC_SIM_CYCLESIM_HPP
