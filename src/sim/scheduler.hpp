/**
 * @file
 * Inter-block scheduling (paper Sec. VI-B1 / Fig. 11(a,b)).
 *
 * A stream of block tasks (with per-block beat costs) must be spread
 * over the DVPEs. Naive dispatch issues waves of one block per PE and
 * stalls the wave on its slowest block. The sparsity-aware scheduling
 * unit buffers a small lookahead window of blocks and feeds each PE as
 * it frees up, merging light blocks into the gaps — the paper's
 * "5 instead of 10 PE x cycles" example.
 */

#ifndef TBSTC_SIM_SCHEDULER_HPP
#define TBSTC_SIM_SCHEDULER_HPP

#include <cstdint>
#include <span>

#include "config.hpp"

namespace tbstc::sim {

/** Outcome of scheduling one block stream. */
struct ScheduleResult
{
    uint64_t makespan = 0;    ///< Beats until the last PE finishes.
    double busyBeats = 0.0;   ///< Sum of per-block costs (useful work).
    double utilisation = 0.0; ///< busy / (makespan * pes).
};

/**
 * Schedule @p costs (beats per block, in stream order) onto @p pes
 * processing elements under @p policy.
 *
 * @param lookahead Window the aware scheduling unit may buffer;
 *     ignored for the naive policy.
 */
ScheduleResult scheduleBlocks(std::span<const uint64_t> costs, size_t pes,
                              InterSched policy, size_t lookahead);

} // namespace tbstc::sim

#endif // TBSTC_SIM_SCHEDULER_HPP
