/**
 * @file
 * Architecture configuration for the cycle-level simulator.
 *
 * The default values mirror the paper's evaluation setup (Sec. VII-A1):
 * 8 DVPE arrays x (2 x 8) DVPEs x 8 FP16 multipliers = 1024 MACs/cycle
 * at 1 GHz, with 64 GB/s off-chip bandwidth. Feature flags select which
 * of TB-STC's mechanisms an accelerator variant possesses; clearing
 * them produces the paper's baselines and ablations.
 */

#ifndef TBSTC_SIM_CONFIG_HPP
#define TBSTC_SIM_CONFIG_HPP

#include <cstddef>
#include <cstdint>

namespace tbstc::sim {

/** Inter-block scheduling policy (paper Fig. 11(a)/(b)). */
enum class InterSched : uint8_t
{
    Naive, ///< Wave dispatch: a batch of PEs stalls on its slowest block.
    Aware, ///< Sparsity-aware scheduling unit with block buffering.
};

/** Intra-block mapping policy (paper Fig. 11(c)/(d)). */
enum class IntraMap : uint8_t
{
    Naive,  ///< One block group per pipeline beat; idle lanes stall.
    Packed, ///< Elements of different groups packed into full beats.
};

/** Hardware geometry and feature set of one accelerator variant. */
struct ArchConfig
{
    // --- Geometry (defaults: paper Sec. VII-A1) ---
    size_t dvpeArrays = 8;      ///< DVPE arrays.
    size_t dvpesPerArray = 16;  ///< 2 x 8 DVPEs per array.
    size_t lanesPerDvpe = 8;    ///< FP16 multipliers per DVPE.
    double clockGhz = 1.0;      ///< Core clock.
    double dramGbps = 64.0;     ///< Off-chip bandwidth (GB/s).
    size_t onchipKb = 256;      ///< Double-buffered on-chip SRAM.

    // --- Feature flags ---
    bool codecUnit = true;      ///< Adaptive codec (Sec. V-B).
    bool mbdUnit = true;        ///< Matrix-B distribution unit.
    bool alternateUnit = true;  ///< DVPE output alternate buffer.
    InterSched interSched = InterSched::Aware;
    IntraMap intraMap = IntraMap::Packed;

    /**
     * Scheduling-unit lookahead in blocks (the paper's unit loads at
     * most two blocks per cycle and buffers light blocks for merging).
     */
    size_t schedLookahead = 8;

    // --- Per-op energy scaling of the datapath ---
    /**
     * Multiplier on compute energy relative to the TB-STC datapath.
     * RM-STC's gather/union modules and SIGMA's FAN pay >1 here
     * (paper Fig. 6(d) / Sec. VII-E2).
     */
    double computeEnergyScale = 1.0;

    /** Extra static power (W) for always-on irregularity hardware. */
    double extraStaticW = 0.0;

    /**
     * Multiplier on compute beats relative to the structured TB-STC
     * datapath. Element-granular pipelines (RM-STC row merging,
     * SGCN's feature decompression) pay >1 here.
     */
    double beatOverheadScale = 1.0;

    /**
     * Element-granular datapath (RM-STC, SGCN): lanes are fed from an
     * element stream, so work never quantizes to whole block beats —
     * at the cost of the beatOverheadScale/energy penalties above.
     */
    bool elementGranular = false;

    // --- Host simulation (not modeled hardware) ---
    /**
     * Worker threads for host-side parallelism while simulating under
     * this config (block-parallel mask generation, per-layer sweeps).
     * 0 inherits TBSTC_THREADS / hardware_concurrency; 1 forces the
     * exact serial path. Results are bit-identical at any setting.
     */
    size_t hostThreads = 0;

    /** Total multipliers (peak MACs per cycle). */
    size_t
    totalLanes() const
    {
        return dvpeArrays * dvpesPerArray * lanesPerDvpe;
    }

    /** Total DVPEs (the scheduler's PE count). */
    size_t
    totalDvpes() const
    {
        return dvpeArrays * dvpesPerArray;
    }

    /** Off-chip bytes deliverable per core cycle. */
    double
    dramBytesPerCycle() const
    {
        return dramGbps / clockGhz;
    }
};

} // namespace tbstc::sim

#endif // TBSTC_SIM_CONFIG_HPP
