#include "cyclesim.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "dram.hpp"
#include "dvpe.hpp"
#include "obs/obs.hpp"
#include "scheduler.hpp"
#include "util/fmt.hpp"
#include "util/logging.hpp"

namespace tbstc::sim {

namespace {

/// Codec drain margin per converted block, matching pipeline.cpp.
constexpr double kCodecTailCycles = 2.0;

/** Per-tile precomputed stage durations. */
struct TileWork
{
    double fetchCycles = 0.0;   ///< Bus time for this tile's A (+B share).
    double codecCycles = 0.0;   ///< Converter time for this tile.
    double computeCycles = 0.0; ///< DVPE makespan x nb.
};

} // namespace

CycleSimResult
simulateLayerEventDriven(const LayerProfile &layer, const ArchConfig &cfg,
                         const CycleSimOptions &opts)
{
    util::ensure(opts.tileBlocks > 0, "tileBlocks must be positive");
    const size_t blocks = layer.blocks.size();
    const size_t tiles =
        std::max<size_t>(1, (blocks + opts.tileBlocks - 1)
                                / opts.tileBlocks);
    const double scale = layer.sampleScale;
    const DramModel dram(cfg);

    // Whole-layer A transfer, split proportionally per tile; the
    // per-run burst/segment behaviour is already inside the stream's
    // bus-cycle total.
    DramTransfer a = dram.stream(layer.aStream);
    double a_scale = scale;
    if (opts.int8Weights)
        a_scale *= 0.58; // Matches the analytic model's A shrink.
    const double a_cycles_total = a.cycles * a_scale;
    const double b_cycles_total =
        dram.streamContiguous(layer.y * layer.nb * 2).cycles;
    const double d_cycles_total =
        dram.streamContiguous(layer.x * layer.nb * 2).cycles;

    const double converters = std::max(
        cfg.dramBytesPerCycle() / 4.0,
        static_cast<double>(cfg.dvpeArrays));
    const double beat_divisor =
        (cfg.elementGranular ? static_cast<double>(cfg.lanesPerDvpe)
                             : 1.0)
        * (opts.int8Weights ? 2.0 : 1.0);

    // Whole-stream schedule: the DVPE array never drains between
    // tiles (the scheduling unit keeps feeding), so total compute time
    // comes from one schedule of all blocks and is apportioned to
    // tiles by their share of the busy beats.
    std::vector<uint64_t> all_costs;
    all_costs.reserve(blocks);
    for (const BlockTask &task : layer.blocks)
        all_costs.push_back(cfg.elementGranular ? task.nnz
                                                : blockBeats(task, cfg));
    const ScheduleResult whole = scheduleBlocks(
        all_costs, cfg.totalDvpes(), cfg.interSched, cfg.schedLookahead);
    const double compute_total = static_cast<double>(whole.makespan)
        * static_cast<double>(layer.nb) * scale
        * cfg.beatOverheadScale / beat_divisor;
    const double busy_total = std::max(1.0, whole.busyBeats);

    // Precompute per-tile work.
    std::vector<TileWork> work(tiles);
    for (size_t t = 0; t < tiles; ++t) {
        const size_t b0 = t * opts.tileBlocks;
        const size_t b1 = std::min(b0 + opts.tileBlocks, blocks);
        double codec_raw = 0.0;
        double busy = 0.0;
        for (size_t b = b0; b < b1; ++b) {
            const BlockTask &task = layer.blocks[b];
            busy += static_cast<double>(all_costs[b]);
            if (task.independentDim && cfg.codecUnit && task.nnz > 0)
                codec_raw += static_cast<double>((task.nnz + 1) / 2)
                    + kCodecTailCycles;
        }
        const double share =
            static_cast<double>(b1 - b0) / static_cast<double>(blocks);
        work[t].fetchCycles = (a_cycles_total + b_cycles_total) * share;
        work[t].codecCycles = codec_raw * scale / converters;
        work[t].computeCycles = compute_total * busy / busy_total;
    }

    // Event timeline. Resources: one memory bus (fetch has priority;
    // writeback drains through bus idle slots), one codec complex, one
    // DVPE array. Double buffering: tile t's fetch may start once tile
    // t-2's compute has retired (its buffer slot is free).
    CycleSimResult res;
    res.tiles = tiles;
    std::vector<double> fetch_done(tiles, 0.0);
    std::vector<double> compute_done(tiles, 0.0);
    double fetch_free = 0.0;
    double codec_free = 0.0;
    double compute_free = 0.0;
    double fetch_busy_total = 0.0;

    // Trace each resource on its own lane of one sim-time track: the
    // per-tile occupancy windows are exactly the event timeline below.
    uint64_t track = 0;
    if (obs::tracingEnabled()) {
        track = obs::simTrack(util::formatStr(
            "cyclesim {}x{}x{} tiles={}", layer.x, layer.y, layer.nb,
            tiles));
        obs::simLaneName(track, 1, "bus.fetch");
        obs::simLaneName(track, 2, "codec");
        obs::simLaneName(track, 3, "DVPE");
    }

    for (size_t t = 0; t < tiles; ++t) {
        const double buffer_ready =
            t >= 2 ? compute_done[t - 2] : 0.0;
        const double fetch_start = std::max(fetch_free, buffer_ready);
        fetch_done[t] = fetch_start + work[t].fetchCycles;
        fetch_free = fetch_done[t];
        fetch_busy_total += work[t].fetchCycles;

        const double codec_start =
            std::max(fetch_done[t], codec_free);
        const double codec_done = codec_start + work[t].codecCycles;
        codec_free = codec_done;
        res.codecBusy += work[t].codecCycles;

        const double compute_start =
            std::max(codec_done, compute_free);
        compute_done[t] = compute_start + work[t].computeCycles;
        compute_free = compute_done[t];
        res.computeBusy += work[t].computeCycles;

        if (track != 0) {
            const std::string label = util::formatStr("tile{}", t);
            obs::simSpan(track, 1, label + ".fetch", fetch_start,
                         work[t].fetchCycles);
            obs::simSpan(track, 2, label + ".codec", codec_start,
                         work[t].codecCycles);
            obs::simSpan(track, 3, label + ".compute", compute_start,
                         work[t].computeCycles);
            // DVPE issue/drain markers for the tile.
            obs::simInstant(track, 3, label + ".issue", compute_start);
            obs::simInstant(track, 3, label + ".drain",
                            compute_done[t]);
        }
    }

    // Writeback shares the bus at lower priority: the run cannot end
    // before (a) the last tile computes, (b) the bus has carried all
    // fetch + writeback bytes, and (c) the final tile's writeback
    // share drains after its compute retires.
    const double wb_per_tile =
        d_cycles_total / static_cast<double>(tiles);
    res.busBusy = fetch_busy_total + d_cycles_total;
    res.cycles = std::max({compute_done[tiles - 1] + wb_per_tile,
                           fetch_done[tiles - 1], res.busBusy});

    if (obs::metricsEnabled()) {
        static const obs::Counter runs = obs::counter("sim.cyclesim.runs");
        static const obs::Counter c_tiles =
            obs::counter("sim.cyclesim.tiles");
        static const obs::Counter c_cycles =
            obs::counter("sim.cyclesim.total_cycles");
        static const obs::Counter c_bus =
            obs::counter("sim.cyclesim.bus_busy_cycles");
        static const obs::Counter c_codec =
            obs::counter("sim.cyclesim.codec_busy_cycles");
        static const obs::Counter c_compute =
            obs::counter("sim.cyclesim.compute_busy_cycles");
        runs.add();
        c_tiles.add(tiles);
        c_cycles.addRounded(res.cycles);
        c_bus.addRounded(res.busBusy);
        c_codec.addRounded(res.codecBusy);
        c_compute.addRounded(res.computeBusy);
    }
    return res;
}

} // namespace tbstc::sim
