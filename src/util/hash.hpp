/**
 * @file
 * Streaming 64-bit content hashing for cache keys.
 *
 * Hasher is FNV-1a over an explicit field stream with a splitmix64
 * avalanche finalizer. Callers feed each field individually (never
 * whole structs — struct padding bytes are indeterminate), so two keys
 * collide only when every hashed field matches. The digest is stable
 * across platforms of equal endianness and across runs; it is a cache
 * key, not a cryptographic commitment.
 */

#ifndef TBSTC_UTIL_HASH_HPP
#define TBSTC_UTIL_HASH_HPP

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace tbstc::util {

/** Accumulates typed fields into one 64-bit digest. */
class Hasher
{
  public:
    /** Mix @p data's raw bytes. */
    Hasher &
    bytes(const void *data, size_t len)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < len; ++i) {
            h_ ^= p[i];
            h_ *= 0x00000100000001b3ull; // FNV-1a prime.
        }
        return *this;
    }

    Hasher &
    u64(uint64_t v)
    {
        return bytes(&v, sizeof v);
    }

    /** Doubles hash by bit pattern, so -0.0 != 0.0 and NaNs are stable. */
    Hasher &
    f64(double v)
    {
        return u64(std::bit_cast<uint64_t>(v));
    }

    /** Length-prefixed, so ("ab","c") never collides with ("a","bc"). */
    Hasher &
    str(std::string_view s)
    {
        u64(s.size());
        return bytes(s.data(), s.size());
    }

    Hasher &
    span(std::span<const uint8_t> s)
    {
        u64(s.size());
        return bytes(s.data(), s.size());
    }

    /** Finalize: avalanche so near-equal streams spread across buckets. */
    uint64_t
    digest() const
    {
        uint64_t z = h_ + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    uint64_t h_ = 0xcbf29ce484222325ull; // FNV-1a offset basis.
};

} // namespace tbstc::util

#endif // TBSTC_UTIL_HASH_HPP
