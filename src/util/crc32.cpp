#include "crc32.hpp"

#include "kernels/kernels.hpp"

namespace tbstc::util {

uint32_t
crc32(std::span<const uint8_t> bytes, uint32_t seed)
{
    // Dispatched: PCLMUL folding on x86, the CRC extension on ARMv8,
    // constexpr slice-by-8 tables otherwise (see src/kernels/).
    return kernels::active().crc32(bytes.data(), bytes.size(), seed);
}

} // namespace tbstc::util
