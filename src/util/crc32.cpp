#include "crc32.hpp"

#include <array>

namespace tbstc::util {

namespace {

constexpr std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

constexpr auto kTable = makeTable();

} // namespace

uint32_t
crc32(std::span<const uint8_t> bytes, uint32_t seed)
{
    uint32_t c = seed ^ 0xffffffffu;
    for (uint8_t b : bytes)
        c = kTable[(c ^ b) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace tbstc::util
