/**
 * @file
 * Minimal "{}"-placeholder string formatting.
 *
 * The toolchain this library targets (GCC 12) does not ship
 * std::format, so logging and table code use this tiny substitute: each
 * "{}" in the pattern is replaced by the next argument, streamed via
 * operator<<. No width/precision specs — use util::fmtDouble for
 * fixed-point numbers.
 */

#ifndef TBSTC_UTIL_FMT_HPP
#define TBSTC_UTIL_FMT_HPP

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace tbstc::util {

namespace detail {

template <typename T>
std::string
stringify(const T &value)
{
    std::ostringstream os;
    os << value;
    return os.str();
}

} // namespace detail

/**
 * Replace each "{}" in @p fmt with the next argument. Surplus
 * placeholders are left verbatim; surplus arguments are ignored.
 */
template <typename... Args>
std::string
formatStr(std::string_view fmt, const Args &...args)
{
    std::vector<std::string> parts{detail::stringify(args)...};
    std::string out;
    out.reserve(fmt.size() + parts.size() * 8);
    size_t next = 0;
    for (size_t i = 0; i < fmt.size(); ++i) {
        if (i + 1 < fmt.size() && fmt[i] == '{' && fmt[i + 1] == '}'
            && next < parts.size()) {
            out += parts[next++];
            ++i;
        } else {
            out += fmt[i];
        }
    }
    return out;
}

} // namespace tbstc::util

#endif // TBSTC_UTIL_FMT_HPP
