#include "table.hpp"

#include <algorithm>
#include <cstdio>

#include "logging.hpp"

namespace tbstc::util {

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    ensure(!header_.empty(), "Table requires a non-empty header");
}

void
Table::addRow(std::vector<std::string> cells)
{
    ensure(cells.size() == header_.size(),
           "Table row width must match header");
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            if (row[c].size() < width[c])
                line += std::string(width[c] - row[c].size(), ' ');
            line += row[c];
            if (c + 1 < row.size())
                line += "  ";
        }
        line += '\n';
        return line;
    };

    std::string out = emit_row(header_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out += std::string(total, '-') + '\n';
    for (const auto &row : rows_)
        out += emit_row(row);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace tbstc::util
