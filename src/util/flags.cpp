#include "flags.hpp"

#include <algorithm>
#include <cstdlib>

#include "fmt.hpp"
#include "logging.hpp"

namespace tbstc::util {

namespace {

Unexpected<FlagError>
flagError(FlagErrorKind kind, std::string flag, std::string message)
{
    return unexpected(
        FlagError{kind, std::move(flag), std::move(message)});
}

} // namespace

const char *
flagErrorName(FlagErrorKind kind)
{
    switch (kind) {
      case FlagErrorKind::UnknownFlag:          return "UnknownFlag";
      case FlagErrorKind::MissingValue:         return "MissingValue";
      case FlagErrorKind::BadValue:             return "BadValue";
      case FlagErrorKind::MissingRequired:      return "MissingRequired";
      case FlagErrorKind::UnexpectedPositional:
        return "UnexpectedPositional";
      case FlagErrorKind::MissingPositional:
        return "MissingPositional";
    }
    panic("unknown FlagErrorKind");
}

FlagSet::FlagSet(std::string command, std::string summary)
    : command_(std::move(command)), summary_(std::move(summary))
{
}

FlagSet::Spec *
FlagSet::find(const std::string &name)
{
    for (auto &spec : specs_)
        if (spec.name == name)
            return &spec;
    return nullptr;
}

FlagSet &
FlagSet::add(Spec spec)
{
    if (find(spec.name) != nullptr)
        panic("duplicate flag --{}", spec.name);
    specs_.push_back(std::move(spec));
    return *this;
}

FlagSet &
FlagSet::flag(const std::string &name, bool *out,
              const std::string &help)
{
    return add({name, "", help, Kind::Bool, false, false, out});
}

FlagSet &
FlagSet::option(const std::string &name, std::string *out,
                const std::string &metavar, const std::string &help,
                bool required)
{
    return add({name, metavar, help, Kind::Str, required, false, out});
}

FlagSet &
FlagSet::option(const std::string &name, double *out,
                const std::string &metavar, const std::string &help,
                bool required)
{
    return add({name, metavar, help, Kind::F64, required, false, out});
}

FlagSet &
FlagSet::option(const std::string &name, uint64_t *out,
                const std::string &metavar, const std::string &help,
                bool required)
{
    return add({name, metavar, help, Kind::U64, required, false, out});
}

FlagSet &
FlagSet::positional(const std::string &name, std::string *out,
                    const std::string &help, bool required)
{
    positionals_.push_back({name, help, required, false, out});
    return *this;
}

Result<bool, FlagError>
FlagSet::parse(int argc, char **argv, int first)
{
    // A FlagSet may be parsed more than once; start from a clean slate.
    helpRequested_ = false;
    for (auto &spec : specs_)
        spec.seen = false;
    for (auto &pos : positionals_)
        pos.seen = false;

    size_t next_positional = 0;
    for (int i = first; i < argc; ++i) {
        const std::string token = argv[i];
        if (token == "--help" || token == "-h") {
            helpRequested_ = true;
            return true;
        }
        if (token.rfind("--", 0) != 0) {
            if (next_positional >= positionals_.size())
                return flagError(
                    FlagErrorKind::UnexpectedPositional, token,
                    formatStr("unexpected argument '{}'", token));
            auto &pos = positionals_[next_positional++];
            *pos.out = token;
            pos.seen = true;
            continue;
        }

        const std::string name = token.substr(2);
        Spec *spec = find(name);
        if (spec == nullptr)
            return flagError(FlagErrorKind::UnknownFlag, name,
                             formatStr("unknown option --{}", name));
        spec->seen = true;
        if (spec->kind == Kind::Bool) {
            *static_cast<bool *>(spec->out) = true;
            continue;
        }
        if (i + 1 >= argc)
            return flagError(
                FlagErrorKind::MissingValue, name,
                formatStr("option --{} expects a {} value", name,
                          spec->metavar));
        const std::string value = argv[++i];
        switch (spec->kind) {
          case Kind::Str:
            *static_cast<std::string *>(spec->out) = value;
            break;
          case Kind::F64: {
            char *end = nullptr;
            const double v = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                return flagError(
                    FlagErrorKind::BadValue, name,
                    formatStr("--{} expects a number, got '{}'", name,
                              value));
            *static_cast<double *>(spec->out) = v;
            break;
          }
          case Kind::U64: {
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0'
                || value.front() == '-')
                return flagError(
                    FlagErrorKind::BadValue, name,
                    formatStr("--{} expects a non-negative integer, "
                              "got '{}'",
                              name, value));
            *static_cast<uint64_t *>(spec->out) = v;
            break;
          }
          case Kind::Bool:
            break; // Handled above.
        }
    }

    for (const auto &spec : specs_)
        if (spec.required && !spec.seen)
            return flagError(
                FlagErrorKind::MissingRequired, spec.name,
                formatStr("missing required option --{}", spec.name));
    for (const auto &pos : positionals_)
        if (pos.required && !pos.seen)
            return flagError(
                FlagErrorKind::MissingPositional, pos.name,
                formatStr("missing required argument {}", pos.name));
    return true;
}

bool
FlagSet::seen(const std::string &name) const
{
    for (const auto &spec : specs_)
        if (spec.name == name)
            return spec.seen;
    for (const auto &pos : positionals_)
        if (pos.name == name)
            return pos.seen;
    return false;
}

std::string
FlagSet::help() const
{
    std::string usage = "usage: tbstc " + command_;
    for (const auto &pos : positionals_)
        usage += pos.required ? " " + pos.name : " [" + pos.name + "]";
    if (!specs_.empty())
        usage += " [options]";

    // Left column: "--name METAVAR", padded to the widest entry.
    std::vector<std::string> left;
    size_t width = 0;
    for (const auto &pos : positionals_) {
        left.push_back(pos.name);
        width = std::max(width, left.back().size());
    }
    for (const auto &spec : specs_) {
        std::string entry = "--" + spec.name;
        if (!spec.metavar.empty())
            entry += " " + spec.metavar;
        width = std::max(width, entry.size());
        left.push_back(std::move(entry));
    }

    std::string out = usage + "\n";
    if (!summary_.empty())
        out += "\n" + summary_ + "\n";
    if (!left.empty())
        out += "\noptions:\n";
    size_t i = 0;
    for (const auto &pos : positionals_) {
        out += "  " + left[i] + std::string(width - left[i].size(), ' ')
            + "  " + pos.help + "\n";
        ++i;
    }
    for (const auto &spec : specs_) {
        out += "  " + left[i] + std::string(width - left[i].size(), ' ')
            + "  " + spec.help
            + (spec.required ? " (required)" : "") + "\n";
        ++i;
    }
    return out;
}

} // namespace tbstc::util
