/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture state.
 * fatal()  — the caller asked for something impossible (bad configuration,
 *            invalid arguments); exits with an error code.
 * warn()   — something works, but not as well as it should.
 * inform() — plain status output.
 */

#ifndef TBSTC_UTIL_LOGGING_HPP
#define TBSTC_UTIL_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "fmt.hpp"
#include <string>
#include <string_view>

namespace tbstc::util {

/** Thrown by fatal(); carries the user-facing message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown by panic(); indicates a library bug, not user error. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/**
 * Report an unrecoverable user error (bad config, invalid argument).
 *
 * Throw-only: callers that handle the FatalError own the reporting
 * (the CLI's top-level catch, a try*() wrapper), so a handled error
 * never spams stderr on its way out.
 *
 * @param fmt std::format pattern.
 * @param args Format arguments.
 */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, const Args &...args)
{
    throw FatalError(formatStr(fmt, args...));
}

/**
 * Report a violated internal invariant (a bug in this library).
 * Throw-only, like fatal(); the message reaches stderr only at an
 * unhandled-exception boundary.
 *
 * @param fmt std::format pattern.
 * @param args Format arguments.
 */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, const Args &...args)
{
    throw PanicError(formatStr(fmt, args...));
}

/** Print a warning that does not stop execution. */
template <typename... Args>
void
warn(std::string_view fmt, const Args &...args)
{
    std::string msg = formatStr(fmt, args...);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Print an informational status message. */
template <typename... Args>
void
inform(std::string_view fmt, const Args &...args)
{
    std::string msg = formatStr(fmt, args...);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

/**
 * Assert a simulator invariant; panics with @p what when @p cond is false.
 * Active in all build types (unlike assert()).
 */
inline void
ensure(bool cond, std::string_view what)
{
    if (!cond)
        panic("{}", what);
}

} // namespace tbstc::util

#endif // TBSTC_UTIL_LOGGING_HPP
