/**
 * @file
 * Minimal std::expected-style Result type.
 *
 * The toolchain this library targets (GCC 12) does not ship
 * std::expected, so fallible entry points that must not throw or abort
 * (stream decoding, remote ingestion) return Result<T, E> instead: a
 * tagged union of a success value and a structured error. Construct
 * errors with util::unexpected(), mirroring std::unexpected.
 */

#ifndef TBSTC_UTIL_RESULT_HPP
#define TBSTC_UTIL_RESULT_HPP

#include <utility>
#include <variant>

namespace tbstc::util {

/** Error wrapper disambiguating Result's error constructor. */
template <typename E>
struct Unexpected
{
    E error;
};

/** Build an Unexpected from an error value (deduces E). */
template <typename E>
Unexpected<std::decay_t<E>>
unexpected(E &&error)
{
    return {std::forward<E>(error)};
}

/**
 * Holds either a success value of type T or an error of type E.
 *
 * Accessors mirror std::expected: operator bool / ok() test for
 * success, value()/operator* / operator-> access the success value,
 * error() the error. Accessing the wrong alternative is a programming
 * error (std::variant terminates via std::get's exception).
 */
template <typename T, typename E>
class Result
{
  public:
    Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}
    Result(Unexpected<E> e)
        : v_(std::in_place_index<1>, std::move(e.error))
    {
    }

    bool ok() const { return v_.index() == 0; }
    explicit operator bool() const { return ok(); }

    T &value() & { return std::get<0>(v_); }
    const T &value() const & { return std::get<0>(v_); }
    T &&value() && { return std::get<0>(std::move(v_)); }

    E &error() & { return std::get<1>(v_); }
    const E &error() const & { return std::get<1>(v_); }
    E &&error() && { return std::get<1>(std::move(v_)); }

    T &operator*() & { return value(); }
    const T &operator*() const & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }

    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    /** Success value, or @p fallback when holding an error. */
    template <typename U>
    T
    valueOr(U &&fallback) const &
    {
        return ok() ? value() : static_cast<T>(std::forward<U>(fallback));
    }

  private:
    std::variant<T, E> v_;
};

} // namespace tbstc::util

#endif // TBSTC_UTIL_RESULT_HPP
