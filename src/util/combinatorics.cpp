#include "combinatorics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "logging.hpp"

namespace tbstc::util {

uint64_t
chooseExact(uint64_t n, uint64_t k)
{
    if (k > n)
        return 0;
    k = std::min(k, n - k);
    // Multiply-then-divide is exact at every step because the running
    // product is C(n-k+i, i) * i! / i! — always integral. Carry the
    // intermediate product in 128 bits and bound the final result.
    unsigned __int128 result = 1;
    for (uint64_t i = 1; i <= k; ++i) {
        result = result * (n - k + i) / i;
        ensure(result <= UINT64_MAX, "chooseExact overflow");
    }
    return static_cast<uint64_t>(result);
}

double
log2Choose(double n, double k)
{
    if (k < 0 || k > n)
        return -std::numeric_limits<double>::infinity();
    if (k == 0 || k == n)
        return 0.0;
    constexpr double log2e = 1.4426950408889634;
    return log2e * (std::lgamma(n + 1.0) - std::lgamma(k + 1.0)
                    - std::lgamma(n - k + 1.0));
}

double
log2SumExp2(std::span<const double> log2_terms)
{
    if (log2_terms.empty())
        return -std::numeric_limits<double>::infinity();
    double max_term = -std::numeric_limits<double>::infinity();
    for (double t : log2_terms)
        max_term = std::max(max_term, t);
    if (!std::isfinite(max_term))
        return max_term;
    double sum = 0.0;
    for (double t : log2_terms)
        sum += std::exp2(t - max_term);
    return max_term + std::log2(sum);
}

double
log2AddExp2(double a, double b)
{
    const double terms[] = {a, b};
    return log2SumExp2(terms);
}

} // namespace tbstc::util
