#include "faultinject.hpp"

#include <algorithm>

#include "util/fmt.hpp"
#include "util/logging.hpp"

namespace tbstc::util {

void
FaultInjector::record(std::string description)
{
    log_.push_back({std::move(description)});
}

std::vector<uint8_t>
FaultInjector::flipBits(std::span<const uint8_t> bytes, size_t count)
{
    std::vector<uint8_t> out(bytes.begin(), bytes.end());
    ensure(!out.empty(), "flipBits: empty stream");
    for (size_t i = 0; i < count; ++i) {
        const size_t bit = rng_.below(out.size() * 8);
        out[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        record(formatStr("flip bit {} of byte {}", bit % 8, bit / 8));
    }
    return out;
}

std::vector<uint8_t>
FaultInjector::truncate(std::span<const uint8_t> bytes, size_t size)
{
    ensure(size <= bytes.size(), "truncate: size exceeds stream");
    record(formatStr("truncate {} -> {} bytes", bytes.size(), size));
    return {bytes.begin(), bytes.begin() + size};
}

std::vector<uint8_t>
FaultInjector::truncateRandom(std::span<const uint8_t> bytes)
{
    return truncate(bytes, rng_.below(bytes.size() + 1));
}

std::vector<uint8_t>
FaultInjector::setByte(std::span<const uint8_t> bytes, size_t pos,
                       uint8_t value)
{
    ensure(pos < bytes.size(), "setByte: position out of range");
    std::vector<uint8_t> out(bytes.begin(), bytes.end());
    record(formatStr("set byte {} to {}", pos, value));
    out[pos] = value;
    return out;
}

std::vector<uint8_t>
FaultInjector::mutateRandomByte(std::span<const uint8_t> bytes)
{
    ensure(!bytes.empty(), "mutateRandomByte: empty stream");
    return setByte(bytes, rng_.below(bytes.size()),
                   static_cast<uint8_t>(rng_.below(256)));
}

std::vector<uint8_t>
FaultInjector::swapRanges(std::span<const uint8_t> bytes, size_t a,
                          size_t b, size_t len)
{
    ensure(a + len <= bytes.size() && b + len <= bytes.size(),
           "swapRanges: range out of bounds");
    ensure(a + len <= b || b + len <= a, "swapRanges: ranges overlap");
    std::vector<uint8_t> out(bytes.begin(), bytes.end());
    std::swap_ranges(out.begin() + a, out.begin() + a + len,
                     out.begin() + b);
    record(formatStr("swap {} bytes at {} and {}", len, a, b));
    return out;
}

std::vector<uint8_t>
FaultInjector::extend(std::span<const uint8_t> bytes, size_t count)
{
    std::vector<uint8_t> out(bytes.begin(), bytes.end());
    for (size_t i = 0; i < count; ++i)
        out.push_back(static_cast<uint8_t>(rng_.below(256)));
    record(formatStr("append {} trailing bytes", count));
    return out;
}

} // namespace tbstc::util
