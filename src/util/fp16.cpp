#include "fp16.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace tbstc::util {

uint16_t
fp16FromFloat(float f)
{
    const uint32_t bits = std::bit_cast<uint32_t>(f);
    const uint32_t sign = (bits >> 16) & 0x8000u;
    const int32_t exp32 = static_cast<int32_t>((bits >> 23) & 0xff) - 127;
    uint32_t mant = bits & 0x7fffffu;

    if (exp32 == 128) {
        // Inf / NaN. Preserve NaN-ness with a quiet mantissa bit.
        return static_cast<uint16_t>(sign | 0x7c00u | (mant ? 0x200u : 0));
    }

    int32_t exp16 = exp32 + 15;
    if (exp16 >= 0x1f) {
        // Overflow -> infinity.
        return static_cast<uint16_t>(sign | 0x7c00u);
    }

    if (exp16 <= 0) {
        // Subnormal (or zero). Shift mantissa (with hidden bit) right.
        if (exp16 < -10)
            return static_cast<uint16_t>(sign); // Rounds to zero.
        mant |= 0x800000u;
        const int shift = 14 - exp16; // 14..24
        uint32_t half = mant >> shift;
        // Round to nearest even.
        const uint32_t rem = mant & ((1u << shift) - 1);
        const uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half & 1)))
            ++half;
        return static_cast<uint16_t>(sign | half);
    }

    // Normal number: keep top 10 mantissa bits, round to nearest even.
    uint32_t half = (static_cast<uint32_t>(exp16) << 10) | (mant >> 13);
    const uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1)))
        ++half; // May carry into the exponent; that is correct rounding.
    return static_cast<uint16_t>(sign | half);
}

float
fp16ToFloat(uint16_t h)
{
    const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
    const uint32_t exp = (h >> 10) & 0x1f;
    uint32_t mant = h & 0x3ffu;

    uint32_t bits;
    if (exp == 0) {
        if (mant == 0) {
            bits = sign; // Zero.
        } else {
            // Subnormal: normalize.
            int e = -1;
            do {
                mant <<= 1;
                ++e;
            } while (!(mant & 0x400u));
            mant &= 0x3ffu;
            bits = sign | (static_cast<uint32_t>(112 - e) << 23)
                 | (mant << 13);
        }
    } else if (exp == 0x1f) {
        bits = sign | 0x7f800000u | (mant << 13); // Inf / NaN.
    } else {
        bits = sign | ((exp + 112) << 23) | (mant << 13);
    }
    return std::bit_cast<float>(bits);
}

void
fp16RoundInPlace(std::vector<float> &v)
{
    for (auto &x : v)
        x = fp16Round(x);
}

int8_t
Int8Quant::quantize(float f) const
{
    if (scale <= 0.0f)
        return 0;
    const float q = std::round(f / scale);
    return static_cast<int8_t>(std::clamp(q, -127.0f, 127.0f));
}

Int8Quant
fitInt8(const std::vector<float> &v)
{
    float absmax = 0.0f;
    for (float x : v)
        absmax = std::max(absmax, std::fabs(x));
    Int8Quant q;
    q.scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    return q;
}

void
int8RoundInPlace(std::vector<float> &v)
{
    const Int8Quant q = fitInt8(v);
    for (auto &x : v)
        x = q.dequantize(q.quantize(x));
}

} // namespace tbstc::util
