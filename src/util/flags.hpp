/**
 * @file
 * Typed command-line flag registry.
 *
 * Subcommands declare their flags once — name, bound output variable,
 * metavar, help text — and get parsing, validation, and help rendering
 * from the same declaration. Parsing never aborts: it returns
 * Result<..., FlagError> so the caller decides how to report problems
 * (the CLI prints to stderr and exits 2; tests inspect the error).
 *
 * Grammar: `--name value` for typed options, `--name` for boolean
 * switches, bare words for declared positionals. A valued option
 * consumes the next argv token verbatim (values may start with '-').
 */

#ifndef TBSTC_UTIL_FLAGS_HPP
#define TBSTC_UTIL_FLAGS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "result.hpp"

namespace tbstc::util {

/** What went wrong while parsing an argv vector. */
enum class FlagErrorKind : uint8_t
{
    UnknownFlag,          ///< `--name` was never registered.
    MissingValue,         ///< Valued flag at the end of argv.
    BadValue,             ///< Value failed numeric conversion.
    MissingRequired,      ///< Required flag absent after parsing.
    UnexpectedPositional, ///< Bare word with no positional slot left.
    MissingPositional,    ///< Declared positional absent.
};

/** Stable identifier for a FlagErrorKind (for logs and tests). */
const char *flagErrorName(FlagErrorKind kind);

/** Structured parse failure: taxonomy entry + offending flag. */
struct FlagError
{
    FlagErrorKind kind = FlagErrorKind::UnknownFlag;
    std::string flag;    ///< Flag or positional name, without "--".
    std::string message; ///< Human-readable description.
};

/**
 * One subcommand's flag registry. Register flags against caller-owned
 * variables (whose initial values double as the defaults), then call
 * parse(). Registration order is the help order.
 */
class FlagSet
{
  public:
    /** @p command names the subcommand in usage/help output. */
    explicit FlagSet(std::string command, std::string summary = "");

    /** Boolean switch: present sets *out = true, no value consumed. */
    FlagSet &flag(const std::string &name, bool *out,
                  const std::string &help);

    /** String-valued option. */
    FlagSet &option(const std::string &name, std::string *out,
                    const std::string &metavar, const std::string &help,
                    bool required = false);

    /** Floating-point option (strtod; rejects trailing junk). */
    FlagSet &option(const std::string &name, double *out,
                    const std::string &metavar, const std::string &help,
                    bool required = false);

    /** Unsigned-integer option (strtoull; rejects trailing junk). */
    FlagSet &option(const std::string &name, uint64_t *out,
                    const std::string &metavar, const std::string &help,
                    bool required = false);

    /** Bare-word positional argument, filled in declaration order. */
    FlagSet &positional(const std::string &name, std::string *out,
                        const std::string &help, bool required = true);

    /**
     * Parse argv[first..argc). On success every bound variable holds
     * its parsed or default value; on error the bound variables are in
     * an unspecified partially-written state and only the FlagError
     * should be consulted. `--help` anywhere stops parsing and reports
     * success with helpRequested() set.
     */
    Result<bool, FlagError> parse(int argc, char **argv, int first = 2);

    /** Whether @p name appeared explicitly in the parsed argv. */
    bool seen(const std::string &name) const;

    /** Whether parse() consumed a `--help` token. */
    bool helpRequested() const { return helpRequested_; }

    /** Auto-generated usage + option reference for this subcommand. */
    std::string help() const;

  private:
    enum class Kind : uint8_t { Bool, Str, F64, U64 };

    struct Spec
    {
        std::string name;
        std::string metavar;
        std::string help;
        Kind kind = Kind::Bool;
        bool required = false;
        bool seen = false;
        void *out = nullptr;
    };

    struct Positional
    {
        std::string name;
        std::string help;
        bool required = true;
        bool seen = false;
        std::string *out = nullptr;
    };

    Spec *find(const std::string &name);
    FlagSet &add(Spec spec);

    std::string command_;
    std::string summary_;
    std::vector<Spec> specs_;
    std::vector<Positional> positionals_;
    bool helpRequested_ = false;
};

} // namespace tbstc::util

#endif // TBSTC_UTIL_FLAGS_HPP
