#include "parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "logging.hpp"
#include "obs/obs.hpp"

namespace tbstc::util {

namespace {

/**
 * Set while a thread executes chunk bodies (pool workers permanently,
 * submitters for the duration of a batch). Nested parallel regions see
 * it and run inline instead of re-entering the pool.
 */
thread_local bool inside_pool = false;

/** Per-thread worker-count override; 0 = none. */
thread_local size_t thread_override = 0;

/** TBSTC_THREADS, parsed once; 0 = unset/invalid. */
size_t
envThreads()
{
    static const size_t parsed = [] {
        const char *env = std::getenv("TBSTC_THREADS");
        if (env == nullptr || *env == '\0')
            return size_t{0};
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end == env || *end != '\0') {
            warn("ignoring unparsable TBSTC_THREADS='{}'", env);
            return size_t{0};
        }
        return static_cast<size_t>(v);
    }();
    return parsed;
}

/**
 * One batch of chunk work. Owned by the submitting thread's stack;
 * workers hold a pointer only between the batch being published and
 * the submitter observing completion (both under the pool mutex).
 */
struct Batch
{
    const std::function<void(size_t)> *fn = nullptr;
    size_t chunks = 0;
    std::atomic<size_t> next{0}; ///< Next unclaimed chunk index.
    std::atomic<size_t> done{0}; ///< Completed chunk count.
    std::vector<std::exception_ptr> errors; ///< Slot per chunk.
};

/**
 * Pool telemetry (Domain::Host: values depend on the host schedule and
 * worker count, so they are excluded from the deterministic export).
 */
struct PoolMetrics
{
    obs::Counter batches =
        obs::counter("parallel.batches", obs::Domain::Host);
    obs::Counter chunks =
        obs::counter("parallel.chunks", obs::Domain::Host);
    obs::Counter inlineChunks =
        obs::counter("parallel.chunks_inline", obs::Domain::Host);
    obs::Counter steals =
        obs::counter("parallel.steals", obs::Domain::Host);
    obs::Gauge queueDepthPeak =
        obs::gauge("parallel.queue_depth_peak", obs::Domain::Host);
    obs::Gauge workersPeak =
        obs::gauge("parallel.workers_peak", obs::Domain::Host);
};

const PoolMetrics &
poolMetrics()
{
    static const PoolMetrics m;
    return m;
}

/**
 * Run claimed chunks until the batch is exhausted. @p stealing marks
 * execution by a pool worker rather than the submitting thread (the
 * "steal count" of the queue's work-claiming).
 */
void
drainBatch(Batch &b, bool stealing = false)
{
    const bool record = obs::metricsEnabled();
    for (;;) {
        const size_t ci = b.next.fetch_add(1, std::memory_order_relaxed);
        if (ci >= b.chunks)
            return;
        if (record) {
            poolMetrics().chunks.add();
            if (stealing)
                poolMetrics().steals.add();
            poolMetrics().queueDepthPeak.record(
                static_cast<int64_t>(b.chunks - ci));
        }
        try {
            (*b.fn)(ci);
        } catch (...) {
            b.errors[ci] = std::current_exception();
        }
        b.done.fetch_add(1, std::memory_order_release);
    }
}

class ThreadPool
{
  public:
    explicit ThreadPool(size_t workers)
        : workers_(workers > 0 ? workers : 1)
    {
        // The submitter executes chunks too, so spawn workers - 1.
        for (size_t i = 0; i + 1 < workers_; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard lk(m_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &t : threads_)
            t.join();
    }

    size_t workers() const { return workers_; }

    /** Block until the in-flight batch (if any) has completed. */
    void
    quiesce()
    {
        const std::lock_guard lk(submit_m_);
    }

    /** Execute a batch, blocking until every chunk has completed. */
    void
    run(size_t chunks, const std::function<void(size_t)> &fn)
    {
        // One batch at a time; a concurrent submitter runs inline
        // (identical chunks, identical results — just not offloaded).
        std::unique_lock submit(submit_m_, std::try_to_lock);
        if (!submit.owns_lock()) {
            runInline(chunks, fn);
            return;
        }

        if (obs::metricsEnabled()) {
            poolMetrics().batches.add();
            poolMetrics().workersPeak.record(
                static_cast<int64_t>(workers_));
        }

        Batch batch;
        batch.fn = &fn;
        batch.chunks = chunks;
        batch.errors.resize(chunks);
        {
            std::lock_guard lk(m_);
            batch_ = &batch;
            ++epoch_;
        }
        cv_.notify_all();

        const bool was_inside = inside_pool;
        inside_pool = true;
        drainBatch(batch);
        inside_pool = was_inside;

        {
            std::unique_lock lk(m_);
            done_cv_.wait(lk, [&] {
                return active_ == 0
                    && batch.done.load(std::memory_order_acquire)
                    == chunks;
            });
            batch_ = nullptr;
        }
        for (auto &err : batch.errors)
            if (err)
                std::rethrow_exception(err);
    }

    static void
    runInline(size_t chunks, const std::function<void(size_t)> &fn)
    {
        if (obs::metricsEnabled())
            poolMetrics().inlineChunks.add(chunks);
        for (size_t ci = 0; ci < chunks; ++ci)
            fn(ci);
    }

  private:
    void
    workerLoop()
    {
        inside_pool = true;
        uint64_t seen = 0;
        std::unique_lock lk(m_);
        for (;;) {
            cv_.wait(lk, [&] {
                return stop_ || (batch_ != nullptr && epoch_ != seen);
            });
            if (stop_)
                return;
            seen = epoch_;
            Batch *b = batch_;
            ++active_;
            lk.unlock();
            drainBatch(*b, /*stealing=*/true);
            lk.lock();
            --active_;
            if (active_ == 0)
                done_cv_.notify_all();
        }
    }

    size_t workers_;
    std::vector<std::thread> threads_;

    std::mutex submit_m_; ///< Serializes batch submissions.
    std::mutex m_;
    std::condition_variable cv_;      ///< Wakes workers for a batch.
    std::condition_variable done_cv_; ///< Wakes the submitter.
    Batch *batch_ = nullptr;          ///< Guarded by m_.
    uint64_t epoch_ = 0;              ///< Guarded by m_.
    size_t active_ = 0;               ///< Workers inside the batch.
    bool stop_ = false;
};

/**
 * Shared pool, rebuilt when the effective worker count changes. The
 * caller keeps the returned shared_ptr for the duration of run(): a
 * concurrent resize swaps a new pool in here, and the displaced pool
 * is destroyed (workers joined) only when its last user finishes.
 */
std::mutex &
poolMutex()
{
    static std::mutex m;
    return m;
}

std::shared_ptr<ThreadPool> &
poolSlot()
{
    static std::shared_ptr<ThreadPool> pool;
    return pool;
}

std::shared_ptr<ThreadPool>
globalPool(size_t want)
{
    std::lock_guard lk(poolMutex());
    std::shared_ptr<ThreadPool> &pool = poolSlot();
    if (!pool || pool->workers() != want)
        pool = std::make_shared<ThreadPool>(want);
    return pool;
}

} // namespace

size_t
effectiveThreads()
{
    if (thread_override > 0)
        return thread_override;
    if (envThreads() > 0)
        return envThreads();
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
setThreads(size_t n)
{
    thread_override = n;
}

ThreadScope::ThreadScope(size_t n)
{
    if (n == 0)
        return;
    saved_ = thread_override;
    thread_override = n;
    active_ = true;
}

ThreadScope::~ThreadScope()
{
    if (active_)
        thread_override = saved_;
}

void
drainPool()
{
    if (inside_pool)
        return; // The caller *is* the in-flight work.
    std::shared_ptr<ThreadPool> pool;
    {
        std::lock_guard lk(poolMutex());
        pool = poolSlot();
    }
    if (pool)
        pool->quiesce();
}

void
shutdownPool()
{
    ensure(!inside_pool,
           "shutdownPool() must not be called from a parallel region");
    std::shared_ptr<ThreadPool> pool;
    {
        std::lock_guard lk(poolMutex());
        pool = std::move(poolSlot());
        poolSlot().reset();
    }
    if (pool) {
        // Quiescent-point contract: we hold the only reference, so the
        // destructor runs here and joins every worker before return.
        pool->quiesce();
        pool.reset();
    }
}

void
runChunked(size_t chunks, const std::function<void(size_t)> &chunk)
{
    if (chunks == 0)
        return;
    const size_t workers = effectiveThreads();
    if (workers <= 1 || chunks == 1 || inside_pool) {
        ThreadPool::runInline(chunks, chunk);
        return;
    }
    globalPool(workers)->run(chunks, chunk);
}

void
parallelFor(size_t n, size_t grain,
            const std::function<void(size_t, size_t)> &body)
{
    if (n == 0)
        return;
    if (grain == 0) {
        // Load-balancing auto-grain. Bodies write index-addressed
        // disjoint locations, so a worker-count-dependent layout is
        // still deterministic (unlike orderedReduce, whose fold order
        // must be pinned by an explicit grain).
        grain = n / (effectiveThreads() * 8);
        if (grain == 0)
            grain = 1;
    }
    const size_t chunks = (n + grain - 1) / grain;
    runChunked(chunks, [&](size_t ci) {
        const size_t begin = ci * grain;
        const size_t end = begin + grain < n ? begin + grain : n;
        body(begin, end);
    });
}

std::vector<Rng>
rngStreams(uint64_t seed, size_t n)
{
    Rng root(seed);
    std::vector<Rng> streams;
    streams.reserve(n);
    for (size_t i = 0; i < n; ++i)
        streams.push_back(root.split());
    return streams;
}

} // namespace tbstc::util
