/**
 * @file
 * Content-addressed blob store backing the profile/simulation caches.
 *
 * A blob is an opaque byte payload filed under (kind, key) where kind
 * names the producing layer ("profile", "sim") and key is a Hasher
 * digest of everything that determines the payload. Lookups hit an
 * in-memory map first (always on unless disabled) and then, when a
 * cache directory is configured, the on-disk store shared across
 * processes.
 *
 * Disk blobs are self-validating: a fixed header (magic, version,
 * kind hash, key, payload size) plus a CRC32 over the payload. Any
 * mismatch — wrong magic, wrong version, key collision, short file,
 * bad CRC — rejects the file and the caller recomputes; a corrupt
 * cache can cost time but never alter results. Writes go through a
 * temp file + atomic rename so concurrent readers only ever observe
 * complete blobs.
 *
 * Thread safety: all methods are safe to call from pool workers. Hit
 * and miss counts are schedule-dependent (two threads can race to the
 * same miss), so observability counters for the store live in the
 * Host metrics domain, never the deterministic one.
 */

#ifndef TBSTC_UTIL_CONTENTSTORE_HPP
#define TBSTC_UTIL_CONTENTSTORE_HPP

#include <bit>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tbstc::util {

/** Where a getOrCompute() payload came from. */
enum class CacheOutcome : uint8_t
{
    MemoryHit, ///< Served from the in-memory map (or a coalesced wait).
    DiskHit,   ///< Loaded and validated from the on-disk store.
    Computed,  ///< Freshly computed (and filed for the next caller).
    Disabled,  ///< Store disabled; computed without filing.
};

/** In-memory + optional on-disk content-addressed cache. */
class ContentStore
{
  public:
    /**
     * The process-wide store. First use reads TBSTC_PROFILE_CACHE: a
     * non-empty value configures the disk directory, "0" disables the
     * store entirely (both are overridable via the setters).
     */
    static ContentStore &instance();

    ContentStore() = default;
    ContentStore(const ContentStore &) = delete;
    ContentStore &operator=(const ContentStore &) = delete;

    /** Enable/disable all lookups and insertions (default enabled). */
    void setEnabled(bool on);
    bool enabled() const;

    /**
     * Configure the on-disk directory ("" = memory only). The
     * directory is created on first put if absent.
     */
    void setDiskDir(std::string dir);
    std::string diskDir() const;

    /**
     * Fetch the payload filed under (kind, key), probing memory then
     * disk. A disk hit is promoted into the memory map. Returns
     * nullopt on miss, when disabled, or when the disk blob fails
     * validation (the corrupt file is left in place for inspection;
     * the next put overwrites it).
     */
    std::optional<std::vector<uint8_t>> get(std::string_view kind,
                                            uint64_t key);

    /** File @p payload under (kind, key) in memory and, if set, disk. */
    void put(std::string_view kind, uint64_t key,
             std::span<const uint8_t> payload);

    /**
     * Cached lookup with single-flight semantics: on a miss, exactly
     * one caller runs @p compute while concurrent requests for the
     * same (kind, key) block until the payload lands, then share it.
     * This keeps the multiset of computed work equal to the set of
     * distinct keys — independent of thread count and schedule — which
     * is what lets cached layers preserve the deterministic-metrics
     * contract (interior metric recordings happen exactly once per
     * distinct key, never a racy zero-or-twice).
     */
    std::pair<std::vector<uint8_t>, CacheOutcome>
    getOrCompute(std::string_view kind, uint64_t key,
                 const std::function<std::vector<uint8_t>()> &compute);

    /** Drop every in-memory entry (disk blobs survive). */
    void clearMemory();

    /** Cumulative operation counts (host-domain diagnostics). */
    struct Stats
    {
        uint64_t memoryHits = 0;
        uint64_t diskHits = 0;
        uint64_t misses = 0;
        uint64_t puts = 0;
        uint64_t diskRejects = 0; ///< Blobs failing validation.
    };
    Stats stats() const;

    /** Path a (kind, key) blob lives at under the current disk dir. */
    std::string blobPath(std::string_view kind, uint64_t key) const;

    /**
     * Validate + extract the payload of a raw blob image. Exposed for
     * fault-injection tests; get() uses it on every disk read.
     */
    static std::optional<std::vector<uint8_t>>
    parseBlob(std::span<const uint8_t> blob, std::string_view kind,
              uint64_t key);

    /** Serialize a payload into the on-disk blob image. */
    static std::vector<uint8_t> makeBlob(std::string_view kind,
                                         uint64_t key,
                                         std::span<const uint8_t> payload);

  private:
    struct MapKey
    {
        uint64_t kind = 0;
        uint64_t key = 0;
        bool operator==(const MapKey &) const = default;
    };
    struct MapKeyHash
    {
        size_t
        operator()(const MapKey &k) const
        {
            return static_cast<size_t>(k.kind ^ (k.key * 0x9e3779b97f4a7c15ull));
        }
    };

    mutable std::mutex m_;
    std::condition_variable cv_;
    bool enabled_ = true;
    std::string diskDir_;
    std::unordered_map<MapKey, std::vector<uint8_t>, MapKeyHash> mem_;
    std::unordered_set<MapKey, MapKeyHash> pending_;
    Stats stats_;
};

/** Little-endian payload writer for cache blobs. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    /** By bit pattern, so the round trip is exact for any double. */
    void
    f64(double v)
    {
        u64(std::bit_cast<uint64_t>(v));
    }

    const std::vector<uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<uint8_t> bytes_;
};

/**
 * Little-endian payload reader. Reads past the end return zero and
 * latch ok() false, so callers validate once at the end instead of
 * checking every field.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

    uint8_t
    u8()
    {
        return take(1) ? bytes_[pos_++] : 0;
    }

    uint16_t
    u16()
    {
        if (!take(2))
            return 0;
        uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<uint16_t>(bytes_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(bytes_[pos_++]) << (8 * i);
        return v;
    }

    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }

    /** True when every read fit and the payload is fully consumed. */
    bool done() const { return ok_ && pos_ == bytes_.size(); }

    bool ok() const { return ok_; }

  private:
    bool
    take(size_t n)
    {
        if (bytes_.size() - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    std::span<const uint8_t> bytes_;
    size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace tbstc::util

#endif // TBSTC_UTIL_CONTENTSTORE_HPP
