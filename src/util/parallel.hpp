/**
 * @file
 * Deterministic parallel execution for mask generation and sweeps.
 *
 * Every figure bench runs Alg. 1 mask generation, DDC encoding, and the
 * pipeline simulator over hundreds of (layer, sparsity, accelerator)
 * configurations; those units are independent, so they parallelize —
 * but the library promises bit-identical reproduction of every
 * experiment, so parallelism must never change a result.
 *
 * The guarantee: work is decomposed into contiguous index chunks whose
 * layout depends only on the problem size and the caller's grain, never
 * on the worker count; chunk results land in index-addressed slots and
 * reductions fold them in index order. Threads only change *when* a
 * chunk runs, not *what* it computes or how results combine, so output
 * is byte-identical to the serial path at any thread count.
 *
 * Worker count resolution (first match wins):
 *  1. a ThreadScope / setThreads() override on the calling thread,
 *  2. the TBSTC_THREADS environment variable,
 *  3. std::thread::hardware_concurrency().
 * A count of 1 runs every region inline on the calling thread — the
 * exact serial fallback path. Nested parallel regions (a parallel
 * sweep whose layers parallelize their own block loops) also run
 * inline, so the pool never self-deadlocks.
 */

#ifndef TBSTC_UTIL_PARALLEL_HPP
#define TBSTC_UTIL_PARALLEL_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "logging.hpp"
#include "rng.hpp"

namespace tbstc::util {

/**
 * Effective worker count for parallel regions submitted by this
 * thread: override > TBSTC_THREADS > hardware_concurrency.
 */
size_t effectiveThreads();

/**
 * Override the worker count for this thread's subsequent parallel
 * regions (0 clears the override). Configuration-time API: do not call
 * while another thread is inside a parallel region.
 */
void setThreads(size_t n);

/**
 * RAII worker-count override (restores the previous override on
 * destruction). ThreadScope(0) is a no-op, so configuration knobs with
 * a 0 = "inherit" convention can be applied unconditionally.
 */
class ThreadScope
{
  public:
    explicit ThreadScope(size_t n);
    ~ThreadScope();
    ThreadScope(const ThreadScope &) = delete;
    ThreadScope &operator=(const ThreadScope &) = delete;

  private:
    size_t saved_ = 0;
    bool active_ = false;
};

/**
 * Block until any in-flight batch on the shared pool has completed.
 * After drainPool() returns, every chunk body submitted by other
 * threads before the call has finished executing (the pool may accept
 * new batches immediately after). Safe to call when no pool exists or
 * from a pool worker (then a no-op: the caller is the in-flight work).
 */
void drainPool();

/**
 * Join the shared pool's workers and destroy it; the next parallel
 * region lazily rebuilds one. This replaces destructor-order-dependent
 * teardown: long-running processes (the serve daemon) call it after
 * draining their work so pool exit is deterministic, and one-shot
 * tools call it at the end of main. Quiescent-point operation: no
 * other thread may be submitting parallel regions during the call,
 * and it must not be called from inside a parallel region.
 * Idempotent; safe when no pool was ever built.
 */
void shutdownPool();

/**
 * Execute @p chunk for every index in [0, chunks) on the shared pool,
 * blocking until all complete. Chunks may run in any order and
 * concurrently; the first exception (lowest chunk index) is rethrown
 * after the batch drains. Runs inline when the effective worker count
 * is 1 or the caller is itself a pool worker.
 */
void runChunked(size_t chunks, const std::function<void(size_t)> &chunk);

/**
 * Chunked parallel loop: @p body receives contiguous [begin, end)
 * index ranges covering [0, n). @p grain is the chunk length (0 picks
 * one that load-balances across the pool). Bodies must write only to
 * index-addressed, disjoint locations — then the result is identical
 * at any thread count.
 */
void parallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)> &body);

/**
 * Derive @p n independent child RNG streams from one seed. The streams
 * depend only on (seed, n) — hand stream i to chunk i and a stochastic
 * parallel loop reproduces bit-identically at any thread count.
 */
std::vector<Rng> rngStreams(uint64_t seed, size_t n);

/**
 * Map each index in [0, n) through @p map, returning results in index
 * order. T must be default-constructible. Each index is its own chunk:
 * built for coarse units (a layer simulation, a sweep point).
 */
template <typename T, typename MapFn>
std::vector<T>
parallelMap(size_t n, MapFn map)
{
    std::vector<T> out(n);
    runChunked(n, [&](size_t i) { out[i] = map(i); });
    return out;
}

/**
 * Ordered reduction: partition [0, n) into ceil(n / grain) contiguous
 * chunks, evaluate @p map(begin, end) per chunk in parallel, then fold
 * the chunk values with @p reduce in ascending chunk order. Because
 * the chunk layout is fixed by (n, grain) and the fold is serial and
 * ordered, the result is bit-identical at any thread count — even for
 * non-associative operations like floating-point sums. @p grain must
 * be > 0.
 */
template <typename T, typename MapFn, typename ReduceFn>
T
orderedReduce(size_t n, size_t grain, T init, MapFn map, ReduceFn reduce)
{
    ensure(grain > 0, "orderedReduce requires grain > 0");
    if (n == 0)
        return init;
    const size_t chunks = (n + grain - 1) / grain;
    std::vector<T> partial(chunks);
    runChunked(chunks, [&](size_t ci) {
        const size_t begin = ci * grain;
        const size_t end = begin + grain < n ? begin + grain : n;
        partial[ci] = map(begin, end);
    });
    T acc = std::move(init);
    for (auto &p : partial)
        acc = reduce(std::move(acc), std::move(p));
    return acc;
}

} // namespace tbstc::util

#endif // TBSTC_UTIL_PARALLEL_HPP
