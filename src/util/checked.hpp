/**
 * @file
 * Overflow-checked unsigned arithmetic for size/offset computations.
 *
 * Every size or offset derived from untrusted stream fields must go
 * through these helpers so a corrupted length can never wrap around
 * into a small allocation or an out-of-bounds cursor. The functions
 * report overflow instead of producing a wrapped value.
 */

#ifndef TBSTC_UTIL_CHECKED_HPP
#define TBSTC_UTIL_CHECKED_HPP

#include <cstdint>

namespace tbstc::util {

/** @return false (leaving @p out unspecified) when a + b overflows. */
inline bool
checkedAdd(uint64_t a, uint64_t b, uint64_t &out)
{
    return !__builtin_add_overflow(a, b, &out);
}

/** @return false (leaving @p out unspecified) when a * b overflows. */
inline bool
checkedMul(uint64_t a, uint64_t b, uint64_t &out)
{
    return !__builtin_mul_overflow(a, b, &out);
}

} // namespace tbstc::util

#endif // TBSTC_UTIL_CHECKED_HPP
