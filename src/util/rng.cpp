#include "rng.hpp"

#include <cmath>
#include <numbers>

#include "logging.hpp"

namespace tbstc::util {

namespace {

/** SplitMix64 step; used only for seeding. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
    // All-zero state would lock xoshiro at zero; SplitMix64 cannot emit
    // four zeros from any seed, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    ensure(n > 0, "Rng::below requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return draw % n;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300)
        u1 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::heavyTail(double outlier_frac, double outlier_scale)
{
    const double scale = uniform() < outlier_frac ? outlier_scale : 1.0;
    return gaussian() * scale;
}

std::vector<size_t>
Rng::permutation(size_t n)
{
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i)
        idx[i] = i;
    for (size_t i = n; i > 1; --i) {
        const size_t j = below(i);
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefull);
}

} // namespace tbstc::util
