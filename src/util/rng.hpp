/**
 * @file
 * Deterministic random number generation for all experiments.
 *
 * Every stochastic component of the library (weight synthesis, dataset
 * generation, tie-breaking) draws from an explicitly seeded Rng so that
 * every table and figure reproduces bit-identically. Wall-clock or global
 * RNG state is never used.
 */

#ifndef TBSTC_UTIL_RNG_HPP
#define TBSTC_UTIL_RNG_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tbstc::util {

/**
 * xoshiro256** PRNG seeded via SplitMix64.
 *
 * Fast, high-quality, and tiny; identical streams on every platform,
 * unlike std::mt19937 + std::normal_distribution whose outputs are not
 * pinned by the standard.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    uint64_t below(uint64_t n);

    /** Standard normal draw (Box-Muller, deterministic). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Heavy-tailed draw modelling trained-DNN weight magnitudes:
     * a two-component Gaussian scale mixture. Most weights are small,
     * a minority are large — the regime in which magnitude pruning and
     * N:M mask selection differ meaningfully.
     *
     * @param outlier_frac Fraction of draws from the wide component.
     * @param outlier_scale Stddev ratio of the wide component.
     */
    double heavyTail(double outlier_frac = 0.05,
                     double outlier_scale = 8.0);

    /** Fisher-Yates shuffle of indices [0, n). */
    std::vector<size_t> permutation(size_t n);

    /** Derive an independent child stream (for parallel workloads). */
    Rng split();

  private:
    uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace tbstc::util

#endif // TBSTC_UTIL_RNG_HPP
