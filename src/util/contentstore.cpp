#include "contentstore.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "util/crc32.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace tbstc::util {

namespace {

// Blob header layout (little-endian u32/u64 fields, in order):
//   magic   "TBSC"           guards against foreign files
//   version                  layout revision; bump on any change
//   kind    hash of the kind string   the producing cache layer
//   key     content digest   what the payload was computed from
//   size    payload bytes
//   crc     CRC32(payload)
constexpr uint32_t kMagic = 0x43534254; // "TBSC" little-endian.
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8 + 4;

uint64_t
kindHash(std::string_view kind)
{
    return Hasher{}.str(kind).digest();
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
readU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
readU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

std::optional<std::vector<uint8_t>>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return std::nullopt;
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    std::fclose(f);
    return bytes;
}

bool
writeFileAtomic(const std::string &path, std::span<const uint8_t> bytes)
{
    // Temp name is unique per process and per writer so concurrent
    // writers of the same blob never interleave; rename() makes
    // publication atomic (same filesystem, same directory).
    static std::atomic<uint64_t> seq{0};
    const std::string tmp = path + ".tmp."
        + std::to_string(static_cast<unsigned long long>(::getpid()))
        + "." + std::to_string(seq.fetch_add(1));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return false;
    const bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    std::fclose(f);
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace

ContentStore &
ContentStore::instance()
{
    static ContentStore *store = [] {
        auto *s = new ContentStore();
        if (const char *env = std::getenv("TBSTC_PROFILE_CACHE")) {
            if (std::strcmp(env, "0") == 0)
                s->setEnabled(false);
            else if (env[0] != '\0')
                s->setDiskDir(env);
        }
        return s;
    }();
    return *store;
}

void
ContentStore::setEnabled(bool on)
{
    const std::lock_guard lk(m_);
    enabled_ = on;
}

bool
ContentStore::enabled() const
{
    const std::lock_guard lk(m_);
    return enabled_;
}

void
ContentStore::setDiskDir(std::string dir)
{
    const std::lock_guard lk(m_);
    diskDir_ = std::move(dir);
}

std::string
ContentStore::diskDir() const
{
    const std::lock_guard lk(m_);
    return diskDir_;
}

std::string
ContentStore::blobPath(std::string_view kind, uint64_t key) const
{
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(key));
    std::string dir = diskDir();
    return dir + "/" + std::string(kind) + "-" + hex + ".blob";
}

std::vector<uint8_t>
ContentStore::makeBlob(std::string_view kind, uint64_t key,
                       std::span<const uint8_t> payload)
{
    std::vector<uint8_t> out;
    out.reserve(kHeaderBytes + payload.size());
    putU32(out, kMagic);
    putU32(out, kVersion);
    putU64(out, kindHash(kind));
    putU64(out, key);
    putU64(out, payload.size());
    putU32(out, crc32(payload));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

std::optional<std::vector<uint8_t>>
ContentStore::parseBlob(std::span<const uint8_t> blob,
                        std::string_view kind, uint64_t key)
{
    if (blob.size() < kHeaderBytes)
        return std::nullopt;
    const uint8_t *p = blob.data();
    if (readU32(p) != kMagic || readU32(p + 4) != kVersion)
        return std::nullopt;
    if (readU64(p + 8) != kindHash(kind) || readU64(p + 16) != key)
        return std::nullopt;
    const uint64_t size = readU64(p + 24);
    if (size != blob.size() - kHeaderBytes)
        return std::nullopt;
    const uint32_t crc = readU32(p + 32);
    std::span<const uint8_t> payload = blob.subspan(kHeaderBytes);
    if (crc32(payload) != crc)
        return std::nullopt;
    return std::vector<uint8_t>(payload.begin(), payload.end());
}

std::optional<std::vector<uint8_t>>
ContentStore::get(std::string_view kind, uint64_t key)
{
    const MapKey mk{kindHash(kind), key};
    std::string disk;
    {
        const std::lock_guard lk(m_);
        if (!enabled_)
            return std::nullopt;
        const auto hit = mem_.find(mk);
        if (hit != mem_.end()) {
            ++stats_.memoryHits;
            return hit->second;
        }
        disk = diskDir_;
    }
    if (!disk.empty()) {
        const std::string path = blobPath(kind, key);
        if (const auto blob = readFile(path)) {
            if (auto payload = parseBlob(*blob, kind, key)) {
                const std::lock_guard lk(m_);
                ++stats_.diskHits;
                mem_.emplace(mk, *payload);
                return payload;
            }
            {
                const std::lock_guard lk(m_);
                ++stats_.diskRejects;
            }
            warn("rejecting corrupt cache blob '{}'", path);
        }
    }
    const std::lock_guard lk(m_);
    ++stats_.misses;
    return std::nullopt;
}

void
ContentStore::put(std::string_view kind, uint64_t key,
                  std::span<const uint8_t> payload)
{
    const MapKey mk{kindHash(kind), key};
    std::string disk;
    {
        const std::lock_guard lk(m_);
        if (!enabled_)
            return;
        ++stats_.puts;
        mem_[mk].assign(payload.begin(), payload.end());
        disk = diskDir_;
    }
    if (!disk.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(disk, ec);
        const std::vector<uint8_t> blob = makeBlob(kind, key, payload);
        if (!writeFileAtomic(blobPath(kind, key), blob))
            warn("cannot write cache blob '{}'", blobPath(kind, key));
    }
}

std::pair<std::vector<uint8_t>, CacheOutcome>
ContentStore::getOrCompute(
    std::string_view kind, uint64_t key,
    const std::function<std::vector<uint8_t>()> &compute)
{
    const MapKey mk{kindHash(kind), key};
    std::string disk;
    {
        std::unique_lock lk(m_);
        if (!enabled_) {
            lk.unlock();
            return {compute(), CacheOutcome::Disabled};
        }
        for (;;) {
            const auto hit = mem_.find(mk);
            if (hit != mem_.end()) {
                ++stats_.memoryHits;
                return {hit->second, CacheOutcome::MemoryHit};
            }
            if (!pending_.contains(mk))
                break;
            // Another thread is producing this key; share its result
            // instead of recomputing (and re-recording metrics).
            cv_.wait(lk);
        }
        pending_.insert(mk);
        disk = diskDir_;
    }

    std::optional<std::vector<uint8_t>> payload;
    CacheOutcome outcome = CacheOutcome::Computed;
    if (!disk.empty()) {
        const std::string path = blobPath(kind, key);
        if (const auto blob = readFile(path)) {
            if ((payload = parseBlob(*blob, kind, key))) {
                outcome = CacheOutcome::DiskHit;
            } else {
                {
                    const std::lock_guard lk(m_);
                    ++stats_.diskRejects;
                }
                warn("rejecting corrupt cache blob '{}'", path);
            }
        }
    }
    if (!payload) {
        try {
            payload = compute();
        } catch (...) {
            // Unblock waiters before propagating; they will retry and
            // one of them becomes the new producer.
            {
                const std::lock_guard lk(m_);
                pending_.erase(mk);
            }
            cv_.notify_all();
            throw;
        }
    }

    {
        const std::lock_guard lk(m_);
        pending_.erase(mk);
        if (outcome == CacheOutcome::DiskHit) {
            ++stats_.diskHits;
        } else {
            ++stats_.misses;
            ++stats_.puts;
        }
        mem_[mk] = *payload;
    }
    cv_.notify_all();

    if (outcome == CacheOutcome::Computed && !disk.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(disk, ec);
        const std::vector<uint8_t> blob = makeBlob(kind, key, *payload);
        if (!writeFileAtomic(blobPath(kind, key), blob))
            warn("cannot write cache blob '{}'", blobPath(kind, key));
    }
    return {std::move(*payload), outcome};
}

void
ContentStore::clearMemory()
{
    const std::lock_guard lk(m_);
    mem_.clear();
}

ContentStore::Stats
ContentStore::stats() const
{
    const std::lock_guard lk(m_);
    return stats_;
}

} // namespace tbstc::util
