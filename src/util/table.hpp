/**
 * @file
 * Console table printer used by the benchmark harnesses to emit the
 * rows/series of the paper's tables and figures in a readable layout.
 */

#ifndef TBSTC_UTIL_TABLE_HPP
#define TBSTC_UTIL_TABLE_HPP

#include <string>
#include <vector>

namespace tbstc::util {

/** Right-aligned fixed-point formatting helper. */
std::string fmtDouble(double v, int precision = 2);

/**
 * A simple column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   Table t({"layer", "speedup", "EDP"});
 *   t.addRow({"L1", fmtDouble(1.55), fmtDouble(0.42)});
 *   t.print();
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Render to a string (header, rule, rows). */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

    size_t rows() const { return rows_.size(); }

    /** Column headers (for machine-readable export). */
    const std::vector<std::string> &header() const { return header_; }

    /** Row cells (for machine-readable export). */
    const std::vector<std::vector<std::string>> &
    data() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner ("=== title ===") for bench output. */
void banner(const std::string &title);

} // namespace tbstc::util

#endif // TBSTC_UTIL_TABLE_HPP
