/**
 * @file
 * Deterministic byte-stream corruption engine for robustness testing.
 *
 * FaultInjector produces hostile variants of a serialized stream —
 * bit flips, truncations, byte overwrites, range swaps, trailing
 * garbage — every choice drawn from the library's seeded Rng so a
 * failing corruption reproduces bit-identically from its seed. The
 * engine is format-agnostic: DDC-aware helpers (section boundaries,
 * checksum fix-up) live next to the serializer.
 */

#ifndef TBSTC_UTIL_FAULTINJECT_HPP
#define TBSTC_UTIL_FAULTINJECT_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace tbstc::util {

/** One applied corruption, for reproducing and reporting failures. */
struct CorruptionRecord
{
    std::string description; ///< Human-readable what/where.
};

/** Seeded corruption engine over opaque byte streams. */
class FaultInjector
{
  public:
    explicit FaultInjector(uint64_t seed) : rng_(seed) {}

    /** Copy of @p bytes with @p count random bits flipped. */
    std::vector<uint8_t> flipBits(std::span<const uint8_t> bytes,
                                  size_t count);

    /** Copy of @p bytes cut to exactly @p size bytes. */
    std::vector<uint8_t> truncate(std::span<const uint8_t> bytes,
                                  size_t size);

    /** Copy of @p bytes cut at a random point (possibly to empty). */
    std::vector<uint8_t> truncateRandom(std::span<const uint8_t> bytes);

    /** Copy of @p bytes with the byte at @p pos overwritten. */
    std::vector<uint8_t> setByte(std::span<const uint8_t> bytes,
                                 size_t pos, uint8_t value);

    /** Copy of @p bytes with a random byte set to a random value. */
    std::vector<uint8_t> mutateRandomByte(std::span<const uint8_t> bytes);

    /**
     * Copy of @p bytes with the @p len bytes at @p a and @p b
     * exchanged (ranges must be in bounds and non-overlapping).
     */
    std::vector<uint8_t> swapRanges(std::span<const uint8_t> bytes,
                                    size_t a, size_t b, size_t len);

    /** Copy of @p bytes with @p count random trailing bytes appended. */
    std::vector<uint8_t> extend(std::span<const uint8_t> bytes,
                                size_t count);

    /** Corruptions applied so far, oldest first. */
    const std::vector<CorruptionRecord> &log() const { return log_; }

    /** Underlying stream, for callers mixing in their own draws. */
    Rng &rng() { return rng_; }

  private:
    void record(std::string description);

    Rng rng_;
    std::vector<CorruptionRecord> log_;
};

} // namespace tbstc::util

#endif // TBSTC_UTIL_FAULTINJECT_HPP
