/**
 * @file
 * IEEE-754 binary16 emulation and int8 weight quantization.
 *
 * TB-STC's datapath is FP16; benches that model the "Q+S" configuration
 * (Fig. 15(b)) additionally quantize weights to int8. Host arithmetic is
 * float, with explicit rounding through these helpers so numerical
 * behaviour matches a half-precision datapath.
 */

#ifndef TBSTC_UTIL_FP16_HPP
#define TBSTC_UTIL_FP16_HPP

#include <cstdint>
#include <vector>

namespace tbstc::util {

/** Encode a float to binary16 bits (round-to-nearest-even). */
uint16_t fp16FromFloat(float f);

/** Decode binary16 bits to float. */
float fp16ToFloat(uint16_t h);

/** Round a float through binary16 precision. */
inline float
fp16Round(float f)
{
    return fp16ToFloat(fp16FromFloat(f));
}

/** Round every element of @p v through binary16. */
void fp16RoundInPlace(std::vector<float> &v);

/**
 * Symmetric per-tensor int8 quantization parameters.
 * value ≈ scale * q with q in [-127, 127].
 */
struct Int8Quant
{
    float scale = 1.0f;

    /** Quantize one value. */
    int8_t quantize(float f) const;

    /** Dequantize one value. */
    float dequantize(int8_t q) const { return scale * static_cast<float>(q); }
};

/** Fit symmetric int8 quantization to the absmax of @p v. */
Int8Quant fitInt8(const std::vector<float> &v);

/** Round every element of @p v through int8 quantization (fake-quant). */
void int8RoundInPlace(std::vector<float> &v);

} // namespace tbstc::util

#endif // TBSTC_UTIL_FP16_HPP
