/**
 * @file
 * Small statistics helpers used by the simulator and benches.
 */

#ifndef TBSTC_UTIL_STATS_HPP
#define TBSTC_UTIL_STATS_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace tbstc::util {

/** Arithmetic mean; 0 for an empty span. */
double mean(std::span<const double> xs);

/** Geometric mean; requires all elements > 0. 0 for an empty span. */
double geomean(std::span<const double> xs);

/** Population standard deviation; 0 for fewer than two elements. */
double stddev(std::span<const double> xs);

/** Minimum; panics on empty input. */
double minOf(std::span<const double> xs);

/** Maximum; panics on empty input. */
double maxOf(std::span<const double> xs);

/**
 * Streaming accumulator for per-cycle utilisation-style metrics.
 * Accumulates a numerator/denominator pair and reports the ratio.
 */
class RatioStat
{
  public:
    /** Add @p num useful units out of @p den possible units. */
    void
    add(double num, double den)
    {
        num_ += num;
        den_ += den;
    }

    /** Accumulated ratio; 0 when nothing was added. */
    double ratio() const { return den_ > 0.0 ? num_ / den_ : 0.0; }

    double numerator() const { return num_; }
    double denominator() const { return den_; }

  private:
    double num_ = 0.0;
    double den_ = 0.0;
};

/**
 * Fixed-width histogram over [lo, hi) with out-of-range clamping:
 * values past either edge (including infinities) land in the edge
 * bins. NaN samples are dropped — they have no bin and do not count
 * toward total().
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void add(double x, double weight = 1.0);

    size_t bins() const { return counts_.size(); }
    double binLo(size_t i) const;
    double binHi(size_t i) const;
    double count(size_t i) const { return counts_[i]; }
    double total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<double> counts_;
    double total_ = 0.0;
};

} // namespace tbstc::util

#endif // TBSTC_UTIL_STATS_HPP
