#include "stats.hpp"

#include <algorithm>
#include <cmath>

#include "logging.hpp"

namespace tbstc::util {

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        ensure(x > 0.0, "geomean requires positive values");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
minOf(std::span<const double> xs)
{
    ensure(!xs.empty(), "minOf on empty span");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(std::span<const double> xs)
{
    ensure(!xs.empty(), "maxOf on empty span");
    return *std::max_element(xs.begin(), xs.end());
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0)
{
    ensure(hi > lo && bins > 0, "Histogram requires hi > lo and bins > 0");
}

void
Histogram::add(double x, double weight)
{
    // NaN has no bin (and casting it to an integer is UB): drop it.
    // Infinities clamp to the edge bins like any out-of-range value —
    // resolve them before the cast, which is UB for values outside
    // long's range.
    if (std::isnan(x))
        return;
    const auto top = static_cast<long>(counts_.size()) - 1;
    long bin = 0;
    if (x >= hi_) {
        bin = top;
    } else if (x > lo_) {
        const double span = hi_ - lo_;
        bin = std::clamp<long>(
            static_cast<long>((x - lo_) / span
                              * static_cast<double>(counts_.size())),
            0, top);
    }
    counts_[static_cast<size_t>(bin)] += weight;
    total_ += weight;
}

double
Histogram::binLo(size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i)
         / static_cast<double>(counts_.size());
}

double
Histogram::binHi(size_t i) const
{
    return binLo(i + 1);
}

} // namespace tbstc::util
