/**
 * @file
 * Log-space combinatorics for the mask-space analysis (paper Eqs. (1)-(4)).
 *
 * Mask-space counts overflow any integer type for realistic matrix sizes
 * (e.g. 2^(10^5) masks), so all pattern mask-space math is carried in
 * log2. Exact 64-bit binomials are also provided for small cases so tests
 * can cross-check the log-space path against brute force.
 */

#ifndef TBSTC_UTIL_COMBINATORICS_HPP
#define TBSTC_UTIL_COMBINATORICS_HPP

#include <cstdint>
#include <span>

namespace tbstc::util {

/** Exact C(n, k) in 64 bits; panics on overflow. Intended for n <= 62. */
uint64_t chooseExact(uint64_t n, uint64_t k);

/** log2 C(n, k) via lgamma; exact to double precision. */
double log2Choose(double n, double k);

/**
 * log2 of a sum given log2 of each addend: log2(Σ 2^x_i).
 * Stable for wildly different magnitudes (log-sum-exp in base 2).
 */
double log2SumExp2(std::span<const double> log2_terms);

/** log2(2^a + 2^b). */
double log2AddExp2(double a, double b);

} // namespace tbstc::util

#endif // TBSTC_UTIL_COMBINATORICS_HPP
