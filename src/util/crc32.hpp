/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges.
 *
 * Used by the DDC v2 stream's header and per-section integrity fields.
 * The implementation is the standard reflected table-driven form, so
 * checksums match zlib's crc32() and can be validated externally.
 */

#ifndef TBSTC_UTIL_CRC32_HPP
#define TBSTC_UTIL_CRC32_HPP

#include <cstdint>
#include <span>

namespace tbstc::util {

/** CRC-32 of @p bytes, optionally chained from a previous @p seed. */
uint32_t crc32(std::span<const uint8_t> bytes, uint32_t seed = 0);

} // namespace tbstc::util

#endif // TBSTC_UTIL_CRC32_HPP
