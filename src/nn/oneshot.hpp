/**
 * @file
 * One-shot pruning of a trained model (paper Table II).
 *
 * The paper prunes OPT-6.7B/Llama2-7B with Wanda and SparseGPT under
 * each sparsity pattern and measures zero-shot accuracy. We run the
 * same criteria — real Wanda scores and a real SparseGPT OBS pass with
 * weight compensation — on a trained MLP and a calibration batch, and
 * report accuracy per pattern.
 */

#ifndef TBSTC_NN_ONESHOT_HPP
#define TBSTC_NN_ONESHOT_HPP

#include <vector>

#include "core/pattern.hpp"
#include "core/prune.hpp"
#include "mlp.hpp"

namespace tbstc::nn {

/** One-shot pruning configuration. */
struct OneshotConfig
{
    core::Pattern pattern = core::Pattern::TBS;
    core::Criterion criterion = core::Criterion::Wanda;
    double sparsity = 0.5;
    size_t m = 8;
    std::vector<uint8_t> candidates; ///< Empty => defaultCandidates(m).
    bool obsCompensation = true;     ///< Weight update for SparseGPT.
};

/**
 * Prune @p model in place with @p cfg, using @p calib_x (a batch of
 * inputs) to derive per-layer activation statistics. Only hidden
 * layers are pruned (see maskableLayers()).
 */
void oneshotPrune(Mlp &model, const core::Matrix &calib_x,
                  const OneshotConfig &cfg);

} // namespace tbstc::nn

#endif // TBSTC_NN_ONESHOT_HPP
