#include "oneshot.hpp"

#include "core/linalg.hpp"
#include "core/sparsify.hpp"
#include "sparse_train.hpp"
#include "util/logging.hpp"

namespace tbstc::nn {

using core::Criterion;
using core::Matrix;
using core::Pattern;

void
oneshotPrune(Mlp &model, const Matrix &calib_x, const OneshotConfig &cfg)
{
    const std::vector<uint8_t> cand = cfg.candidates.empty()
        ? core::defaultCandidates(cfg.m)
        : cfg.candidates;

    // A forward pass records each layer's input activations.
    (void)model.forward(calib_x);

    // Prune layer by layer in order; when OBS compensation changes a
    // layer's weights, downstream activations shift, so re-run the
    // forward pass after each compensated layer (sequential pruning,
    // as SparseGPT does).
    for (size_t l : maskableLayers(model)) {
        auto &layer = model.layers()[l];
        const Matrix &acts = layer.lastInput;

        Matrix scores(0, 0);
        Matrix hinv(0, 0);
        switch (cfg.criterion) {
          case Criterion::Magnitude:
            scores = core::magnitudeScores(layer.w);
            break;
          case Criterion::Wanda:
            scores = core::wandaScores(layer.w,
                                       core::activationNorms(acts));
            break;
          case Criterion::SparseGpt: {
            const Matrix h = core::gramFromActivations(acts);
            hinv = core::spdInverse(h);
            scores = core::sparseGptScores(layer.w, hinv);
            break;
          }
          case Criterion::Gradient:
            util::fatal("Gradient criterion needs an explicit gradient; "
                        "use gradientScores() with patternMask() or the "
                        "sparse trainer");
        }

        layer.mask = core::patternMask(cfg.pattern, scores, cfg.sparsity,
                                       cfg.m, cand);
        layer.masked = true;

        if (cfg.criterion == Criterion::SparseGpt
            && cfg.obsCompensation) {
            const Matrix u = core::choleskyUpper(hinv);
            core::obsCompensate(layer.w, layer.mask, u);
            // Downstream layers must see the compensated activations.
            (void)model.forward(calib_x);
        }
    }
}

} // namespace tbstc::nn
