#include "dataset.hpp"

#include <cmath>

#include "mlp.hpp"
#include "util/logging.hpp"

namespace tbstc::nn {

using core::Matrix;
using util::Rng;

namespace {

/** Fixed random warp: x_i += a * sin(2 * x_j + phase_i). */
struct Warp
{
    std::vector<size_t> partner;
    std::vector<double> phase;
    double strength;

    void
    apply(std::vector<float> &x) const
    {
        const std::vector<float> orig = x;
        for (size_t i = 0; i < x.size(); ++i) {
            x[i] += static_cast<float>(
                strength
                * std::sin(2.0 * orig[partner[i]] + phase[i]));
        }
    }
};

Dataset
sample(const DatasetConfig &cfg, const Matrix &means, const Warp &warp,
       size_t n, Rng &rng)
{
    Dataset d;
    d.classes = cfg.classes;
    d.x = Matrix(n, cfg.features);
    d.labels.resize(n);
    std::vector<float> row(cfg.features);
    for (size_t s = 0; s < n; ++s) {
        const size_t cls = rng.below(cfg.classes);
        d.labels[s] = cls;
        for (size_t f = 0; f < cfg.features; ++f) {
            row[f] = means.at(cls, f)
                + static_cast<float>(rng.gaussian(0.0, cfg.clusterStddev));
        }
        warp.apply(row);
        for (size_t f = 0; f < cfg.features; ++f)
            d.x.at(s, f) = row[f];
    }
    return d;
}

} // namespace

DataSplit
makeClusterDataset(const DatasetConfig &cfg, Rng &rng)
{
    util::ensure(cfg.features > 0 && cfg.classes > 1,
                 "degenerate dataset config");

    // Class means on a sphere of radius ~2 so clusters overlap some.
    Matrix means(cfg.classes, cfg.features);
    for (size_t c = 0; c < cfg.classes; ++c) {
        double norm = 0.0;
        for (size_t f = 0; f < cfg.features; ++f) {
            means.at(c, f) = static_cast<float>(rng.gaussian());
            norm += static_cast<double>(means.at(c, f)) * means.at(c, f);
        }
        norm = std::sqrt(norm);
        for (size_t f = 0; f < cfg.features; ++f)
            means.at(c, f) =
                static_cast<float>(means.at(c, f) / norm * 2.0);
    }

    Warp warp;
    warp.strength = cfg.warpStrength;
    warp.partner.resize(cfg.features);
    warp.phase.resize(cfg.features);
    for (size_t f = 0; f < cfg.features; ++f) {
        warp.partner[f] = rng.below(cfg.features);
        warp.phase[f] = rng.uniform(0.0, 6.283185307179586);
    }

    DataSplit split;
    split.train = sample(cfg, means, warp, cfg.trainSamples, rng);
    split.test = sample(cfg, means, warp, cfg.testSamples, rng);
    return split;
}

DataSplit
makeTeacherDataset(const TeacherConfig &cfg, Rng &rng)
{
    util::ensure(cfg.features > 0 && cfg.classes > 1,
                 "degenerate teacher config");
    Mlp teacher({cfg.features, cfg.teacherHidden, cfg.teacherHidden,
                 cfg.classes},
                rng);

    auto sample = [&](size_t n) {
        Dataset d;
        d.classes = cfg.classes;
        d.x = Matrix(n, cfg.features);
        for (float &v : d.x.data())
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
        const Matrix logits = teacher.forward(d.x);
        d.labels.resize(n);
        for (size_t i = 0; i < n; ++i) {
            size_t best = 0;
            for (size_t c = 1; c < cfg.classes; ++c)
                if (logits.at(i, c) > logits.at(i, best))
                    best = c;
            d.labels[i] = best;
        }
        return d;
    };

    DataSplit split;
    split.train = sample(cfg.trainSamples);
    split.test = sample(cfg.testSamples);
    return split;
}

} // namespace tbstc::nn
