#include "conv_layer.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace tbstc::nn {

using core::Mask;
using core::Matrix;
using util::ensure;
using workload::ConvSpec;

Conv2dLayer::Conv2dLayer(ConvSpec spec, util::Rng &rng)
    : spec_(std::move(spec)),
      w_(spec_.cout, spec_.patchSize()),
      b_(spec_.cout, 0.0f),
      gradW_(spec_.cout, spec_.patchSize()),
      gradB_(spec_.cout, 0.0f),
      velocityW_(spec_.cout, spec_.patchSize()),
      velocityB_(spec_.cout, 0.0f)
{
    const double he =
        std::sqrt(2.0 / static_cast<double>(spec_.patchSize()));
    for (auto &v : w_.data())
        v = static_cast<float>(rng.gaussian(0.0, he));
}

Matrix
Conv2dLayer::effectiveW() const
{
    return masked_ ? core::applyMask(w_, mask_) : w_;
}

void
Conv2dLayer::setMask(Mask mask)
{
    ensure(mask.rows() == w_.rows() && mask.cols() == w_.cols(),
           "Conv2dLayer::setMask shape mismatch");
    mask_ = std::move(mask);
    masked_ = true;
}

void
Conv2dLayer::clearMask()
{
    masked_ = false;
    mask_ = Mask();
}

Matrix
Conv2dLayer::forward(const Matrix &x)
{
    ensure(x.cols() == spec_.cin * spec_.h * spec_.w,
           "Conv2dLayer::forward input size mismatch");
    const size_t batch = x.rows();
    const size_t pixels = spec_.outH() * spec_.outW();
    const Matrix w_eff = effectiveW();

    Matrix y(batch, spec_.cout * pixels);
    cols_.assign(batch, Matrix());
    for (size_t i = 0; i < batch; ++i) {
        cols_[i] = workload::im2col(spec_, x.row(i));
        // y_i[c, p] = sum_k cols[p, k] * w[c, k] + b[c].
        for (size_t p = 0; p < pixels; ++p) {
            for (uint64_t c = 0; c < spec_.cout; ++c) {
                double acc = b_[c];
                for (size_t k = 0; k < w_.cols(); ++k)
                    acc += static_cast<double>(cols_[i].at(p, k))
                        * w_eff.at(c, k);
                y.at(i, c * pixels + p) = static_cast<float>(acc);
            }
        }
    }
    return y;
}

Matrix
Conv2dLayer::backward(const Matrix &dy)
{
    const size_t batch = cols_.size();
    const size_t pixels = spec_.outH() * spec_.outW();
    ensure(dy.rows() == batch
               && dy.cols() == spec_.cout * pixels,
           "Conv2dLayer::backward gradient shape mismatch");
    const Matrix w_eff = effectiveW();

    gradW_ = Matrix(w_.rows(), w_.cols());
    gradB_.assign(spec_.cout, 0.0f);
    Matrix dx(batch, spec_.cin * spec_.h * spec_.w);
    for (size_t i = 0; i < batch; ++i) {
        // gradW[c, k] += sum_p dy[c, p] * cols[p, k].
        Matrix dcols(pixels, w_.cols());
        for (uint64_t c = 0; c < spec_.cout; ++c) {
            for (size_t p = 0; p < pixels; ++p) {
                const float g = dy.at(i, c * pixels + p);
                if (g == 0.0f)
                    continue;
                gradB_[c] += g;
                for (size_t k = 0; k < w_.cols(); ++k) {
                    gradW_.at(c, k) += g * cols_[i].at(p, k);
                    dcols.at(p, k) += g * w_eff.at(c, k);
                }
            }
        }
        const auto image = workload::col2im(spec_, dcols);
        for (size_t k = 0; k < image.size(); ++k)
            dx.at(i, k) = image[k];
    }
    return dx;
}

void
Conv2dLayer::sgdStep(double lr, double momentum, double pruned_decay)
{
    for (size_t i = 0; i < w_.size(); ++i) {
        double g = gradW_.data()[i];
        if (masked_ && pruned_decay > 0.0 && !mask_.bit(i))
            g += pruned_decay * w_.data()[i];
        velocityW_.data()[i] = static_cast<float>(
            momentum * velocityW_.data()[i] - lr * g);
        w_.data()[i] += velocityW_.data()[i];
    }
    for (size_t c = 0; c < b_.size(); ++c) {
        velocityB_[c] = static_cast<float>(
            momentum * velocityB_[c] - lr * gradB_[c]);
        b_[c] += velocityB_[c];
    }
}

SimpleCnn::SimpleCnn(const ConvSpec &spec1, const ConvSpec &spec2,
                     size_t classes, util::Rng &rng)
    : conv1_(spec1, rng),
      conv2_(spec2, rng),
      fcW_(classes, spec2.cout),
      fcB_(classes, 0.0f),
      fcGradW_(classes, spec2.cout),
      fcGradB_(classes, 0.0f),
      fcVelW_(classes, spec2.cout),
      fcVelB_(classes, 0.0f)
{
    ensure(spec2.cin == spec1.cout && spec2.h == spec1.outH()
               && spec2.w == spec1.outW(),
           "SimpleCnn: conv2 must consume conv1's output shape");
    const double he = std::sqrt(2.0 / static_cast<double>(spec2.cout));
    for (auto &v : fcW_.data())
        v = static_cast<float>(rng.gaussian(0.0, he));
}

Matrix
SimpleCnn::forward(const Matrix &x)
{
    act1_ = conv1_.forward(x);
    for (auto &v : act1_.data())
        v = std::max(v, 0.0f);
    act2_ = conv2_.forward(act1_);
    for (auto &v : act2_.data())
        v = std::max(v, 0.0f);

    // Global average pool over each output channel.
    const auto &s2 = conv2_.spec();
    const size_t pixels = s2.outH() * s2.outW();
    pooled_ = Matrix(x.rows(), s2.cout);
    for (size_t i = 0; i < x.rows(); ++i)
        for (uint64_t c = 0; c < s2.cout; ++c) {
            double acc = 0.0;
            for (size_t p = 0; p < pixels; ++p)
                acc += act2_.at(i, c * pixels + p);
            pooled_.at(i, c) =
                static_cast<float>(acc / static_cast<double>(pixels));
        }

    Matrix logits(x.rows(), fcW_.rows());
    for (size_t i = 0; i < x.rows(); ++i)
        for (size_t k = 0; k < fcW_.rows(); ++k) {
            double acc = fcB_[k];
            for (size_t c = 0; c < fcW_.cols(); ++c)
                acc += static_cast<double>(pooled_.at(i, c))
                    * fcW_.at(k, c);
            logits.at(i, k) = static_cast<float>(acc);
        }
    return logits;
}

double
SimpleCnn::backward(const Matrix &logits,
                    const std::vector<size_t> &labels)
{
    const size_t batch = logits.rows();
    const size_t classes = logits.cols();
    ensure(batch == labels.size(), "SimpleCnn::backward label count");

    Matrix dlogits(batch, classes);
    double loss = 0.0;
    for (size_t i = 0; i < batch; ++i) {
        float maxv = logits.at(i, 0);
        for (size_t c = 1; c < classes; ++c)
            maxv = std::max(maxv, logits.at(i, c));
        double denom = 0.0;
        for (size_t c = 0; c < classes; ++c)
            denom += std::exp(
                static_cast<double>(logits.at(i, c)) - maxv);
        for (size_t c = 0; c < classes; ++c) {
            const double p = std::exp(
                static_cast<double>(logits.at(i, c)) - maxv) / denom;
            dlogits.at(i, c) = static_cast<float>(
                (p - (labels[i] == c ? 1.0 : 0.0))
                / static_cast<double>(batch));
            if (labels[i] == c)
                loss += -std::log(std::max(p, 1e-12));
        }
    }

    // FC backward.
    fcGradW_ = Matrix(fcW_.rows(), fcW_.cols());
    fcGradB_.assign(fcW_.rows(), 0.0f);
    Matrix dpooled(batch, fcW_.cols());
    for (size_t i = 0; i < batch; ++i) {
        for (size_t k = 0; k < fcW_.rows(); ++k) {
            const float g = dlogits.at(i, k);
            fcGradB_[k] += g;
            for (size_t c = 0; c < fcW_.cols(); ++c) {
                fcGradW_.at(k, c) += g * pooled_.at(i, c);
                dpooled.at(i, c) += g * fcW_.at(k, c);
            }
        }
    }

    // Un-pool (spread the average), then ReLU gate, then conv2/conv1.
    const auto &s2 = conv2_.spec();
    const size_t pixels = s2.outH() * s2.outW();
    Matrix dact2(batch, s2.cout * pixels);
    for (size_t i = 0; i < batch; ++i)
        for (uint64_t c = 0; c < s2.cout; ++c)
            for (size_t p = 0; p < pixels; ++p)
                dact2.at(i, c * pixels + p) = act2_.at(i, c * pixels + p)
                        > 0.0f
                    ? dpooled.at(i, c) / static_cast<float>(pixels)
                    : 0.0f;
    Matrix dact1 = conv2_.backward(dact2);
    for (size_t i = 0; i < dact1.size(); ++i)
        if (act1_.data()[i] <= 0.0f)
            dact1.data()[i] = 0.0f;
    (void)conv1_.backward(dact1);
    return loss / static_cast<double>(batch);
}

void
SimpleCnn::sgdStep(double lr, double momentum, double pruned_decay)
{
    conv1_.sgdStep(lr, momentum, pruned_decay);
    conv2_.sgdStep(lr, momentum, pruned_decay);
    for (size_t i = 0; i < fcW_.size(); ++i) {
        fcVelW_.data()[i] = static_cast<float>(
            momentum * fcVelW_.data()[i] - lr * fcGradW_.data()[i]);
        fcW_.data()[i] += fcVelW_.data()[i];
    }
    for (size_t k = 0; k < fcB_.size(); ++k) {
        fcVelB_[k] = static_cast<float>(
            momentum * fcVelB_[k] - lr * fcGradB_[k]);
        fcB_[k] += fcVelB_[k];
    }
}

double
SimpleCnn::accuracy(const Matrix &x, const std::vector<size_t> &labels)
{
    const Matrix logits = forward(x);
    size_t correct = 0;
    for (size_t i = 0; i < logits.rows(); ++i) {
        size_t best = 0;
        for (size_t c = 1; c < logits.cols(); ++c)
            if (logits.at(i, c) > logits.at(i, best))
                best = c;
        correct += best == labels[i];
    }
    return static_cast<double>(correct)
        / static_cast<double>(std::max<size_t>(1, logits.rows()));
}

} // namespace tbstc::nn
