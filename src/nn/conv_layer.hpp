/**
 * @file
 * Maskable 2-D convolution layer and a small CNN.
 *
 * Convolutions train through the same im2col lowering the hardware
 * uses (workload/conv.hpp): the weight tensor is a
 * (cout x cin*kh*kw) matrix, so every sparsity pattern and pruning
 * criterion in core/ applies to it unchanged — which is exactly how
 * the paper prunes ResNet. SimpleCnn wires two conv layers, global
 * average pooling and a classifier head into a trainable model for
 * the CNN-flavoured accuracy experiments.
 */

#ifndef TBSTC_NN_CONV_LAYER_HPP
#define TBSTC_NN_CONV_LAYER_HPP

#include <vector>

#include "core/matrix.hpp"
#include "util/rng.hpp"
#include "workload/conv.hpp"

namespace tbstc::nn {

/** One maskable convolution layer trained via im2col. */
class Conv2dLayer
{
  public:
    Conv2dLayer(workload::ConvSpec spec, util::Rng &rng);

    /**
     * Forward a batch: @p x is (batch x cin*h*w), CHW per row;
     * returns (batch x cout*outH*outW). Caches the unfolded columns
     * for backward().
     */
    core::Matrix forward(const core::Matrix &x);

    /**
     * Backward a batch: @p dy is the loss gradient of forward()'s
     * output; accumulates gradW/gradB and returns dL/dx.
     */
    core::Matrix backward(const core::Matrix &dy);

    /** SGD with momentum; SR-STE decay on masked-out weights. */
    void sgdStep(double lr, double momentum = 0.9,
                 double pruned_decay = 0.0);

    const workload::ConvSpec &spec() const { return spec_; }

    core::Matrix &weights() { return w_; }
    const core::Matrix &weights() const { return w_; }

    /** Install (or clear) a sparsity mask on the lowered weights. */
    void setMask(core::Mask mask);
    void clearMask();
    bool masked() const { return masked_; }

    /** Effective (masked) lowered weight matrix. */
    core::Matrix effectiveW() const;

  private:
    workload::ConvSpec spec_;
    core::Matrix w_;  ///< cout x cin*kh*kw.
    std::vector<float> b_;
    core::Mask mask_;
    bool masked_ = false;

    core::Matrix gradW_;
    std::vector<float> gradB_;
    core::Matrix velocityW_;
    std::vector<float> velocityB_;
    std::vector<core::Matrix> cols_; ///< Per-sample im2col cache.
};

/**
 * conv -> ReLU -> conv -> ReLU -> global average pool -> linear.
 * Input images are (batch x cin*h*w) rows in CHW order.
 */
class SimpleCnn
{
  public:
    /**
     * @param spec1 First conv (its cin/h/w define the input).
     * @param spec2 Second conv (must consume spec1's output shape).
     * @param classes Output classes.
     */
    SimpleCnn(const workload::ConvSpec &spec1,
              const workload::ConvSpec &spec2, size_t classes,
              util::Rng &rng);

    core::Matrix forward(const core::Matrix &x);
    double backward(const core::Matrix &logits,
                    const std::vector<size_t> &labels);
    void sgdStep(double lr, double momentum = 0.9,
                 double pruned_decay = 0.0);
    double accuracy(const core::Matrix &x,
                    const std::vector<size_t> &labels);

    Conv2dLayer &conv1() { return conv1_; }
    Conv2dLayer &conv2() { return conv2_; }

  private:
    Conv2dLayer conv1_;
    Conv2dLayer conv2_;
    core::Matrix fcW_; ///< classes x cout2.
    std::vector<float> fcB_;
    core::Matrix fcGradW_;
    std::vector<float> fcGradB_;
    core::Matrix fcVelW_;
    std::vector<float> fcVelB_;

    // Forward caches.
    core::Matrix act1_;
    core::Matrix act2_;
    core::Matrix pooled_;
};

} // namespace tbstc::nn

#endif // TBSTC_NN_CONV_LAYER_HPP
