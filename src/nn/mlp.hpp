/**
 * @file
 * A minimal MLP with maskable linear layers and SGD training.
 *
 * The sparse-training loop (paper Sec. III-B1) masks weights in the
 * forward pass, back-propagates through the masked weights
 * (straight-through to the dense copy), and optionally applies SR-STE
 * style decay that pushes pruned weights toward zero so the dense and
 * masked weights converge — "these weights are as close as possible
 * after training".
 */

#ifndef TBSTC_NN_MLP_HPP
#define TBSTC_NN_MLP_HPP

#include <vector>

#include "core/matrix.hpp"
#include "util/rng.hpp"

namespace tbstc::nn {

/** One fully connected layer (weights out x in) with optional mask. */
struct LinearLayer
{
    core::Matrix w;    ///< Dense weights, out x in.
    std::vector<float> b;
    core::Mask mask;   ///< Keep mask; empty => dense.
    bool masked = false;

    // Training scratch (populated by forward/backward).
    core::Matrix lastInput;  ///< batch x in.
    core::Matrix gradW;      ///< out x in.
    std::vector<float> gradB;

    /** Effective (masked) weight matrix. */
    core::Matrix effectiveW() const;
};

/** Multi-layer perceptron with ReLU activations between layers. */
class Mlp
{
  public:
    /**
     * @param dims Layer widths, e.g. {32, 128, 128, 10}:
     *     input -> hidden... -> classes.
     * @param rng Weight initialization stream (He init).
     */
    Mlp(const std::vector<size_t> &dims, util::Rng &rng);

    /** Logits for a batch (batch x input -> batch x classes). */
    core::Matrix forward(const core::Matrix &x);

    /**
     * Backward from softmax cross-entropy.
     * @param logits Output of the matching forward() call.
     * @param labels One class per batch row.
     * @return Mean cross-entropy loss of the batch.
     */
    double backward(const core::Matrix &logits,
                    const std::vector<size_t> &labels);

    /**
     * SGD with momentum on the dense weights.
     * @param lr Learning rate.
     * @param momentum Momentum coefficient.
     * @param prunedDecay SR-STE decay applied to masked-out weights.
     */
    void sgdStep(double lr, double momentum = 0.9,
                 double prunedDecay = 0.0);

    /** Fraction of correct argmax predictions. */
    double accuracy(const core::Matrix &x,
                    const std::vector<size_t> &labels);

    /** Mean cross-entropy on a dataset (no gradient). */
    double loss(const core::Matrix &x, const std::vector<size_t> &labels);

    std::vector<LinearLayer> &layers() { return layers_; }
    const std::vector<LinearLayer> &layers() const { return layers_; }

    /** Clear all masks (dense model). */
    void clearMasks();

  private:
    std::vector<LinearLayer> layers_;
    std::vector<core::Matrix> activations_; ///< Post-ReLU per layer.
    std::vector<core::Matrix> velocityW_;
    std::vector<std::vector<float>> velocityB_;
};

} // namespace tbstc::nn

#endif // TBSTC_NN_MLP_HPP
