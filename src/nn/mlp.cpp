#include "mlp.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace tbstc::nn {

using core::Mask;
using core::Matrix;
using util::ensure;

namespace {

/** C = A (batch x in) * W^T (in x out) -> batch x out. */
Matrix
gemmNT(const Matrix &a, const Matrix &w)
{
    ensure(a.cols() == w.cols(), "gemmNT shape mismatch");
    Matrix c(a.rows(), w.rows());
    for (size_t i = 0; i < a.rows(); ++i) {
        for (size_t o = 0; o < w.rows(); ++o) {
            double sum = 0.0;
            for (size_t k = 0; k < a.cols(); ++k)
                sum += static_cast<double>(a.at(i, k)) * w.at(o, k);
            c.at(i, o) = static_cast<float>(sum);
        }
    }
    return c;
}

/** C = D^T (out x batch) * X (batch x in) -> out x in. */
Matrix
gemmTN(const Matrix &d, const Matrix &x)
{
    ensure(d.rows() == x.rows(), "gemmTN shape mismatch");
    Matrix c(d.cols(), x.cols());
    for (size_t b = 0; b < d.rows(); ++b) {
        for (size_t o = 0; o < d.cols(); ++o) {
            const float dv = d.at(b, o);
            if (dv == 0.0f)
                continue;
            for (size_t k = 0; k < x.cols(); ++k)
                c.at(o, k) += dv * x.at(b, k);
        }
    }
    return c;
}

/** C = D (batch x out) * W (out x in) -> batch x in. */
Matrix
gemmNN(const Matrix &d, const Matrix &w)
{
    ensure(d.cols() == w.rows(), "gemmNN shape mismatch");
    Matrix c(d.rows(), w.cols());
    for (size_t b = 0; b < d.rows(); ++b) {
        for (size_t o = 0; o < d.cols(); ++o) {
            const float dv = d.at(b, o);
            if (dv == 0.0f)
                continue;
            for (size_t k = 0; k < w.cols(); ++k)
                c.at(b, k) += dv * w.at(o, k);
        }
    }
    return c;
}

} // namespace

Matrix
LinearLayer::effectiveW() const
{
    if (!masked)
        return w;
    return core::applyMask(w, mask);
}

Mlp::Mlp(const std::vector<size_t> &dims, util::Rng &rng)
{
    ensure(dims.size() >= 2, "Mlp needs at least input and output dims");
    for (size_t l = 0; l + 1 < dims.size(); ++l) {
        LinearLayer layer;
        layer.w = Matrix(dims[l + 1], dims[l]);
        layer.b.assign(dims[l + 1], 0.0f);
        const double he =
            std::sqrt(2.0 / static_cast<double>(dims[l]));
        for (size_t i = 0; i < layer.w.size(); ++i)
            layer.w.data()[i] =
                static_cast<float>(rng.gaussian(0.0, he));
        layers_.push_back(std::move(layer));
        velocityW_.emplace_back(dims[l + 1], dims[l]);
        velocityB_.emplace_back(dims[l + 1], 0.0f);
    }
    activations_.resize(layers_.size());
}

Matrix
Mlp::forward(const Matrix &x)
{
    Matrix h = x;
    for (size_t l = 0; l < layers_.size(); ++l) {
        LinearLayer &layer = layers_[l];
        layer.lastInput = h;
        Matrix z = gemmNT(h, layer.effectiveW());
        for (size_t b = 0; b < z.rows(); ++b)
            for (size_t o = 0; o < z.cols(); ++o)
                z.at(b, o) += layer.b[o];
        if (l + 1 < layers_.size()) {
            for (float &v : z.data())
                v = std::max(v, 0.0f);
        }
        activations_[l] = z;
        h = std::move(z);
    }
    return h;
}

double
Mlp::backward(const Matrix &logits, const std::vector<size_t> &labels)
{
    ensure(logits.rows() == labels.size(),
           "backward: one label per batch row");
    const size_t batch = logits.rows();
    const size_t classes = logits.cols();

    // Softmax cross-entropy gradient and loss.
    Matrix d(batch, classes);
    double loss_sum = 0.0;
    for (size_t b = 0; b < batch; ++b) {
        float maxv = logits.at(b, 0);
        for (size_t c = 1; c < classes; ++c)
            maxv = std::max(maxv, logits.at(b, c));
        double denom = 0.0;
        for (size_t c = 0; c < classes; ++c)
            denom += std::exp(static_cast<double>(logits.at(b, c)) - maxv);
        for (size_t c = 0; c < classes; ++c) {
            const double p =
                std::exp(static_cast<double>(logits.at(b, c)) - maxv)
                / denom;
            d.at(b, c) = static_cast<float>(
                (p - (labels[b] == c ? 1.0 : 0.0))
                / static_cast<double>(batch));
            if (labels[b] == c)
                loss_sum += -std::log(std::max(p, 1e-12));
        }
    }

    for (size_t li = layers_.size(); li-- > 0;) {
        LinearLayer &layer = layers_[li];
        layer.gradW = gemmTN(d, layer.lastInput);
        layer.gradB.assign(layer.w.rows(), 0.0f);
        for (size_t b = 0; b < d.rows(); ++b)
            for (size_t o = 0; o < d.cols(); ++o)
                layer.gradB[o] += d.at(b, o);
        if (li > 0) {
            Matrix dprev = gemmNN(d, layer.effectiveW());
            // ReLU derivative w.r.t. the previous layer's output.
            const Matrix &act = activations_[li - 1];
            for (size_t i = 0; i < dprev.size(); ++i)
                if (act.data()[i] <= 0.0f)
                    dprev.data()[i] = 0.0f;
            d = std::move(dprev);
        }
    }
    return loss_sum / static_cast<double>(batch);
}

void
Mlp::sgdStep(double lr, double momentum, double prunedDecay)
{
    for (size_t li = 0; li < layers_.size(); ++li) {
        LinearLayer &layer = layers_[li];
        Matrix &vw = velocityW_[li];
        for (size_t i = 0; i < layer.w.size(); ++i) {
            double g = layer.gradW.data()[i];
            if (layer.masked && prunedDecay > 0.0
                && !layer.mask.bit(i)) {
                // SR-STE: decay pruned weights toward zero so the mask
                // and the dense weights agree at convergence.
                g += prunedDecay * layer.w.data()[i];
            }
            vw.data()[i] = static_cast<float>(
                momentum * vw.data()[i] - lr * g);
            layer.w.data()[i] += vw.data()[i];
        }
        auto &vb = velocityB_[li];
        for (size_t o = 0; o < layer.b.size(); ++o) {
            vb[o] = static_cast<float>(
                momentum * vb[o] - lr * layer.gradB[o]);
            layer.b[o] += vb[o];
        }
    }
}

double
Mlp::accuracy(const Matrix &x, const std::vector<size_t> &labels)
{
    const Matrix logits = forward(x);
    size_t correct = 0;
    for (size_t b = 0; b < logits.rows(); ++b) {
        size_t best = 0;
        for (size_t c = 1; c < logits.cols(); ++c)
            if (logits.at(b, c) > logits.at(b, best))
                best = c;
        correct += best == labels[b];
    }
    return static_cast<double>(correct)
        / static_cast<double>(std::max<size_t>(1, logits.rows()));
}

double
Mlp::loss(const Matrix &x, const std::vector<size_t> &labels)
{
    const Matrix logits = forward(x);
    double loss_sum = 0.0;
    for (size_t b = 0; b < logits.rows(); ++b) {
        float maxv = logits.at(b, 0);
        for (size_t c = 1; c < logits.cols(); ++c)
            maxv = std::max(maxv, logits.at(b, c));
        double denom = 0.0;
        for (size_t c = 0; c < logits.cols(); ++c)
            denom +=
                std::exp(static_cast<double>(logits.at(b, c)) - maxv);
        const double p = std::exp(
            static_cast<double>(logits.at(b, labels[b])) - maxv) / denom;
        loss_sum += -std::log(std::max(p, 1e-12));
    }
    return loss_sum / static_cast<double>(std::max<size_t>(1, x.rows()));
}

void
Mlp::clearMasks()
{
    for (auto &layer : layers_) {
        layer.masked = false;
        layer.mask = Mask();
    }
}

} // namespace tbstc::nn
