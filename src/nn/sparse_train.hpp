/**
 * @file
 * End-to-end sparse training (paper Sec. III-B1, Fig. 18, Table I).
 *
 * Trains a model from scratch while masking hidden-layer weights with
 * a sparsity pattern regenerated from the live weights every epoch.
 * Sparsity ramps from 0 to the target over the first epochs (the
 * "sparsity variation" curve marked in Fig. 18), and SR-STE decay
 * pulls pruned weights toward zero so dense and masked weights agree
 * at convergence.
 */

#ifndef TBSTC_NN_SPARSE_TRAIN_HPP
#define TBSTC_NN_SPARSE_TRAIN_HPP

#include <vector>

#include "core/pattern.hpp"
#include "dataset.hpp"
#include "mlp.hpp"

namespace tbstc::nn {

/** Sparse-training hyper-parameters. */
struct TrainConfig
{
    core::Pattern pattern = core::Pattern::Dense;
    double sparsity = 0.5;
    size_t m = 8;
    std::vector<uint8_t> candidates; ///< Empty => defaultCandidates(m).

    size_t epochs = 30;
    size_t batch = 128;
    double lr = 0.05;
    double momentum = 0.9;
    double prunedDecay = 2e-4; ///< SR-STE decay on masked-out weights.
    size_t rampEpochs = 10;    ///< Epochs to reach target sparsity.
};

/** Per-epoch training telemetry. */
struct EpochStats
{
    double trainLoss = 0.0;
    double testAccuracy = 0.0;
    double sparsity = 0.0; ///< Realized mask sparsity this epoch.
};

/** Whole-run result. */
struct TrainResult
{
    std::vector<EpochStats> history;
    double finalAccuracy = 0.0;
};

/**
 * Indices of the layers that get masked: every hidden layer. The
 * first (stem) and last (classifier) layers stay dense, matching the
 * paper's "all layers are pruned except the stem layer and the final
 * fully-connected layer".
 */
std::vector<size_t> maskableLayers(const Mlp &model);

/**
 * Regenerate pattern masks on @p model from current weight magnitudes
 * at the given sparsity; returns the realized overall sparsity of the
 * maskable weights.
 */
double applyPatternMasks(Mlp &model, const TrainConfig &cfg,
                         double sparsity);

/** Train @p model on @p data under @p cfg. */
TrainResult sparseTrain(Mlp &model, const DataSplit &data,
                        const TrainConfig &cfg, util::Rng &rng);

} // namespace tbstc::nn

#endif // TBSTC_NN_SPARSE_TRAIN_HPP
