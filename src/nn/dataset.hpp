/**
 * @file
 * Synthetic classification datasets for the accuracy experiments.
 *
 * The paper's accuracy studies retrain ResNet/BERT and one-shot-prune
 * OPT/Llama. We cannot ship those models or datasets, so (per
 * DESIGN.md) the quantity we reproduce is the *pattern ordering* of
 * accuracy at equal sparsity, measured on models we really train:
 * MLP classifiers on nonlinearly-warped Gaussian-cluster data. The
 * task is hard enough that capacity matters, so pruning measurably
 * hurts and mask quality differentiates the patterns.
 */

#ifndef TBSTC_NN_DATASET_HPP
#define TBSTC_NN_DATASET_HPP

#include <cstddef>
#include <vector>

#include "core/matrix.hpp"
#include "util/rng.hpp"

namespace tbstc::nn {

/** A supervised classification dataset. */
struct Dataset
{
    core::Matrix x;            ///< samples x features.
    std::vector<size_t> labels; ///< One class id per sample.
    size_t classes = 0;

    size_t samples() const { return x.rows(); }
    size_t features() const { return x.cols(); }
};

/** Train/test pair drawn from the same distribution. */
struct DataSplit
{
    Dataset train;
    Dataset test;
};

/** Generation parameters. */
struct DatasetConfig
{
    size_t features = 32;     ///< Must be a multiple of the block size.
    size_t classes = 10;
    size_t trainSamples = 4096;
    size_t testSamples = 1024;
    double clusterStddev = 0.9; ///< Within-class spread.
    double warpStrength = 0.6;  ///< Nonlinear feature mixing strength.
};

/**
 * Generate a nonlinear Gaussian-cluster classification problem.
 *
 * Class means are drawn on a sphere; samples get Gaussian spread and
 * then a fixed random nonlinear warp (sin mixing across feature
 * pairs), which makes the Bayes boundary non-linear so an MLP's
 * hidden capacity — and therefore pruning quality — matters.
 */
DataSplit makeClusterDataset(const DatasetConfig &cfg, util::Rng &rng);

/** Teacher-labelled dataset parameters. */
struct TeacherConfig
{
    size_t features = 32;
    size_t classes = 16;
    size_t teacherHidden = 64; ///< Width of the random teacher MLP.
    size_t trainSamples = 4096;
    size_t testSamples = 1024;
};

/**
 * Generate a teacher-student task: inputs are uniform in [-1, 1]^d
 * and labels are the argmax of a randomly initialized dense teacher
 * MLP. Matching the teacher's decision boundary requires the
 * student's full width, so pruning genuinely costs capacity and the
 * quality of the sparsity pattern becomes measurable — the regime of
 * the paper's Tables I/II.
 */
DataSplit makeTeacherDataset(const TeacherConfig &cfg, util::Rng &rng);

} // namespace tbstc::nn

#endif // TBSTC_NN_DATASET_HPP
