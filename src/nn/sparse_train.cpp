#include "sparse_train.hpp"

#include <algorithm>
#include <cmath>

#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "obs/obs.hpp"
#include "util/fmt.hpp"
#include "util/logging.hpp"

namespace tbstc::nn {

using core::Matrix;
using core::Pattern;

std::vector<size_t>
maskableLayers(const Mlp &model)
{
    std::vector<size_t> idx;
    for (size_t l = 1; l + 1 < model.layers().size(); ++l)
        idx.push_back(l);
    return idx;
}

double
applyPatternMasks(Mlp &model, const TrainConfig &cfg, double sparsity)
{
    if (cfg.pattern == Pattern::Dense || sparsity <= 0.0) {
        for (size_t l : maskableLayers(model)) {
            model.layers()[l].masked = false;
        }
        return 0.0;
    }
    const std::vector<uint8_t> cand = cfg.candidates.empty()
        ? core::defaultCandidates(cfg.m)
        : cfg.candidates;
    size_t kept = 0;
    size_t total = 0;
    for (size_t l : maskableLayers(model)) {
        auto &layer = model.layers()[l];
        const Matrix scores = core::magnitudeScores(layer.w);
        layer.mask =
            core::patternMask(cfg.pattern, scores, sparsity, cfg.m, cand);
        layer.masked = true;
        kept += layer.mask.nnz();
        total += layer.mask.rows() * layer.mask.cols();
    }
    return total == 0
        ? 0.0
        : 1.0 - static_cast<double>(kept) / static_cast<double>(total);
}

TrainResult
sparseTrain(Mlp &model, const DataSplit &data, const TrainConfig &cfg,
            util::Rng &rng)
{
    util::ensure(cfg.batch > 0 && cfg.epochs > 0, "degenerate TrainConfig");
    TrainResult result;
    const size_t n = data.train.samples();

    for (size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        const obs::ScopedSpan span(
            util::formatStr("nn.train.epoch{}", epoch));
        // Cubic sparsity ramp (Zhu & Gupta schedule).
        double s = cfg.sparsity;
        if (cfg.rampEpochs > 1 && epoch < cfg.rampEpochs) {
            const double t = static_cast<double>(epoch + 1)
                / static_cast<double>(cfg.rampEpochs);
            s = cfg.sparsity * (1.0 - std::pow(1.0 - t, 3.0));
        }
        const double realized = applyPatternMasks(model, cfg, s);

        const std::vector<size_t> order = rng.permutation(n);
        double loss_sum = 0.0;
        size_t batches = 0;
        for (size_t b0 = 0; b0 < n; b0 += cfg.batch) {
            const size_t b1 = std::min(b0 + cfg.batch, n);
            Matrix xb(b1 - b0, data.train.features());
            std::vector<size_t> yb(b1 - b0);
            for (size_t i = b0; i < b1; ++i) {
                for (size_t f = 0; f < data.train.features(); ++f)
                    xb.at(i - b0, f) = data.train.x.at(order[i], f);
                yb[i - b0] = data.train.labels[order[i]];
            }
            const Matrix logits = model.forward(xb);
            loss_sum += model.backward(logits, yb);
            model.sgdStep(cfg.lr, cfg.momentum, cfg.prunedDecay);
            ++batches;
        }

        EpochStats stats;
        stats.trainLoss = loss_sum / static_cast<double>(batches);
        stats.testAccuracy =
            model.accuracy(data.test.x, data.test.labels);
        stats.sparsity = realized;
        result.history.push_back(stats);

        if (obs::metricsEnabled()) {
            static const obs::Counter c_epochs =
                obs::counter("nn.train.epochs");
            static const obs::Counter c_batches =
                obs::counter("nn.train.batches");
            static const obs::Counter c_regens =
                obs::counter("nn.train.mask_regens");
            static const obs::Counter c_samples =
                obs::counter("nn.train.samples");
            c_epochs.add();
            c_batches.add(batches);
            c_regens.add();
            c_samples.add(n);
        }
    }
    result.finalAccuracy = result.history.back().testAccuracy;
    return result;
}

} // namespace tbstc::nn
