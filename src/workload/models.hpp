/**
 * @file
 * DL-model workload tables: the GEMM shapes of every weight layer the
 * paper evaluates (ResNet-50/18 via im2col, BERT-base, OPT-6.7B,
 * Llama2-7B).
 *
 * Hardware benches only need layer *shapes*, which are public
 * architecture facts; weights are synthesized (see synth.hpp).
 * Shapes are padded up to the 8-element block grid exactly as a
 * tensor-core kernel would pad them.
 */

#ifndef TBSTC_WORKLOAD_MODELS_HPP
#define TBSTC_WORKLOAD_MODELS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace tbstc::workload {

/** One weight GEMM: D(x,nb) = A(x,y) x B(y,nb). */
struct GemmShape
{
    std::string name;
    uint64_t x = 0;  ///< Output features (independent dimension of A).
    uint64_t y = 0;  ///< Input features (reduction dimension of A).
    uint64_t nb = 0; ///< Activation columns (tokens / spatial pixels).

    /** MACs of the dense GEMM. */
    double
    macs() const
    {
        return static_cast<double>(x) * static_cast<double>(y)
            * static_cast<double>(nb);
    }
};

/** Model identifiers used across benches. */
enum class ModelId : uint8_t
{
    ResNet50,
    ResNet18,
    BertBase,
    Opt67b,
    Llama27b,
};

/** Human-readable model name. */
std::string modelName(ModelId id);

/**
 * All prunable weight GEMMs of the model (stem and classifier
 * excluded, matching the paper's pruning setup).
 *
 * @param seq Sequence length / batch-pixels knob for transformer
 *     models; ignored by the CNNs (their nb is the conv output size).
 */
std::vector<GemmShape> modelLayers(ModelId id, uint64_t seq = 128);

/**
 * A small representative layer subset for layer-wise studies
 * (paper Fig. 12 picks "typical layers").
 */
std::vector<GemmShape> representativeLayers(ModelId id,
                                            uint64_t seq = 128);

/** Round @p v up to a multiple of @p m. */
uint64_t padTo(uint64_t v, uint64_t m);

} // namespace tbstc::workload

#endif // TBSTC_WORKLOAD_MODELS_HPP
