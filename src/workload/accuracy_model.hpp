/**
 * @file
 * Accuracy proxy used by the hardware benches (Pareto frontier and
 * iso-accuracy end-to-end runs).
 *
 * The ground-truth accuracy experiments live in the nn module (they
 * really train models; see bench/tab1 and bench/tab2). Hardware
 * benches, however, need accuracy(pattern, sparsity) curves for
 * models we cannot train here (OPT-6.7B etc.). This proxy anchors
 * each model's curve to the paper's reported Table I/II accuracies
 * and interpolates between patterns using the *measured* mask
 * similarity of our own sparsifiers — so pattern differences still
 * come from executed algorithm code, only the absolute scale is
 * calibrated. Documented in DESIGN.md ("Substitutions").
 */

#ifndef TBSTC_WORKLOAD_ACCURACY_MODEL_HPP
#define TBSTC_WORKLOAD_ACCURACY_MODEL_HPP

#include "core/pattern.hpp"
#include "models.hpp"

namespace tbstc::workload {

/**
 * Measured mask similarity of @p pattern with the unstructured mask
 * at the same sparsity: position-wise agreement (1 - normalized L1
 * distance), on a 256 x 256 synthetic structured weight matrix.
 * This is the paper's Fig. 4(b) metric.
 */
double maskSimilarity(core::Pattern pattern, double sparsity, size_t m,
                      uint64_t seed = 7);

/** Dense (unpruned) accuracy of the model, % (paper Tables I/II). */
double denseAccuracy(ModelId model);

/**
 * Proxy accuracy (%) of @p model pruned with @p pattern at
 * @p sparsity. Monotone decreasing in sparsity; anchored to the
 * paper's reported values at the table sparsity for US/TS/TBS and
 * interpolated by measured mask similarity for other patterns.
 */
double proxyAccuracy(ModelId model, core::Pattern pattern,
                     double sparsity, size_t m = 8);

/**
 * Largest sparsity at which @p pattern still achieves
 * @p target_accuracy on @p model (bisection over proxyAccuracy);
 * used by the iso-accuracy end-to-end comparison (paper Fig. 13).
 */
double isoAccuracySparsity(ModelId model, core::Pattern pattern,
                           double target_accuracy, size_t m = 8);

} // namespace tbstc::workload

#endif // TBSTC_WORKLOAD_ACCURACY_MODEL_HPP
