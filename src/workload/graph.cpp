#include "graph.hpp"

#include "util/logging.hpp"

namespace tbstc::workload {

AttentionGeometry
attentionGeometry(ModelId id)
{
    switch (id) {
      case ModelId::BertBase: return {12, 64, 12};
      case ModelId::Opt67b:   return {32, 128, 32};
      case ModelId::Llama27b: return {32, 128, 32};
      case ModelId::ResNet50:
      case ModelId::ResNet18: return {0, 0, 0};
    }
    util::panic("unknown ModelId");
}

std::vector<InferenceOp>
inferenceGraph(ModelId id, uint64_t seq)
{
    std::vector<InferenceOp> ops;
    for (const auto &shape : modelLayers(id, seq))
        ops.push_back({shape, true, 1.0});

    const AttentionGeometry attn = attentionGeometry(id);
    if (attn.heads > 0) {
        // Per head and layer: scores = Q x K^T (seq x dh x seq) and
        // context = scores x V (seq x seq x dh). Both operands are
        // activations: dense regardless of weight sparsity.
        const double mult =
            static_cast<double>(attn.heads) * attn.layers;
        ops.push_back({{modelName(id) + ".attn.qk",
                        padTo(seq, 8), padTo(attn.headDim, 8), seq},
                       false, mult});
        ops.push_back({{modelName(id) + ".attn.pv",
                        padTo(seq, 8), padTo(seq, 8), attn.headDim},
                       false, mult});
    }
    return ops;
}

GraphMacs
graphMacs(ModelId id, uint64_t seq)
{
    GraphMacs macs;
    for (const auto &op : inferenceGraph(id, seq)) {
        const double m = op.shape.macs() * op.count;
        if (op.weightOp)
            macs.weightMacs += m;
        else
            macs.activationMacs += m;
    }
    return macs;
}

} // namespace tbstc::workload
