/**
 * @file
 * Convolution-to-GEMM lowering (im2col).
 *
 * The paper evaluates ResNet by mapping each convolution onto the
 * tensor core as a GEMM: the weight tensor (cout, cin, kh, kw)
 * flattens to a (cout x cin*kh*kw) matrix and the input activations
 * unfold into columns. This module implements that lowering both at
 * the shape level (for the workload tables) and at the data level
 * (for the NN framework's Conv2d layer): im2col, col2im, and a
 * direct-convolution reference the tests validate against.
 */

#ifndef TBSTC_WORKLOAD_CONV_HPP
#define TBSTC_WORKLOAD_CONV_HPP

#include <cstdint>
#include <string>

#include "core/matrix.hpp"
#include "models.hpp"

namespace tbstc::workload {

/** A 2-D convolution layer specification. */
struct ConvSpec
{
    std::string name = "conv";
    uint64_t cin = 1;
    uint64_t cout = 1;
    uint64_t kh = 3;
    uint64_t kw = 3;
    uint64_t h = 8;  ///< Input height.
    uint64_t w = 8;  ///< Input width.
    uint64_t stride = 1;
    uint64_t pad = 0;

    uint64_t
    outH() const
    {
        return (h + 2 * pad - kh) / stride + 1;
    }

    uint64_t
    outW() const
    {
        return (w + 2 * pad - kw) / stride + 1;
    }

    /** Flattened weight-matrix reduction width: cin * kh * kw. */
    uint64_t patchSize() const { return cin * kh * kw; }
};

/**
 * The GEMM this convolution lowers to: A is (cout x cin*kh*kw) padded
 * to the block grid, B has one column per output pixel.
 */
GemmShape loweredShape(const ConvSpec &spec, size_t block = 8);

/**
 * Unfold one input image (cin x h x w, stored as a 1 x cin*h*w row
 * vector in CHW order) into im2col columns: the result has
 * outH*outW rows and cin*kh*kw columns, so
 * output = cols * W^T reproduces the convolution.
 */
core::Matrix im2col(const ConvSpec &spec,
                    std::span<const float> image);

/**
 * Fold column-gradients back into an image gradient (the adjoint of
 * im2col): input is (outH*outW x cin*kh*kw), output a 1 x cin*h*w
 * CHW vector.
 */
std::vector<float> col2im(const ConvSpec &spec,
                          const core::Matrix &cols);

/**
 * Direct (nested-loop) convolution reference: weights as a
 * (cout x cin*kh*kw) matrix, image in CHW order; returns CHW output
 * (cout x outH x outW) as a flat vector. Used to validate im2col.
 */
std::vector<float> convReference(const ConvSpec &spec,
                                 const core::Matrix &weights,
                                 std::span<const float> image);

} // namespace tbstc::workload

#endif // TBSTC_WORKLOAD_CONV_HPP
