#include "profile_builder.hpp"

#include <algorithm>
#include <optional>

#include "core/mask_search.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "obs/obs.hpp"
#include "synth.hpp"
#include "util/contentstore.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace tbstc::workload {

using core::Mask;
using core::Matrix;
using core::Pattern;
using core::SparsityDim;
using core::TbsMeta;
using format::StorageFormat;
using sim::BlockTask;
using sim::LayerProfile;

core::TbsMeta
deriveMeta(const Mask &mask, size_t m)
{
    util::ensure(mask.rows() % m == 0 && mask.cols() % m == 0,
                 "deriveMeta requires block-divisible mask");
    TbsMeta meta;
    meta.m = m;
    meta.blockRows = mask.rows() / m;
    meta.blockCols = mask.cols() / m;
    meta.blocks.resize(meta.blockRows * meta.blockCols);
    for (size_t br = 0; br < meta.blockRows; ++br) {
        for (size_t bc = 0; bc < meta.blockCols; ++bc) {
            size_t max_row = 0;
            for (size_t r = 0; r < m; ++r) {
                size_t row_nnz = 0;
                for (size_t c = 0; c < m; ++c)
                    row_nnz += mask.at(br * m + r, bc * m + c);
                max_row = std::max(max_row, row_nnz);
            }
            meta.block(br, bc) = {static_cast<uint8_t>(max_row),
                                  SparsityDim::Reduction};
        }
    }
    return meta;
}

namespace {

/**
 * Content key of one profile build. Every ProfileSpec field feeds the
 * hash (the build is a pure function of the spec), plus a schema tag
 * so a payload-layout change can never be misread by an older binary.
 */
uint64_t
profileCacheKey(const ProfileSpec &spec)
{
    util::Hasher h;
    // v2: maskStrategy joined the spec (and the "" default hashes
    // differently from any named strategy, so v1 keys can never alias).
    h.str("tbstc.cache.profile.v2");
    h.str(spec.shape.name);
    h.u64(spec.shape.x).u64(spec.shape.y).u64(spec.shape.nb);
    h.u64(static_cast<uint64_t>(spec.pattern));
    h.f64(spec.sparsity);
    h.u64(spec.m);
    h.str(spec.maskStrategy);
    h.u64(static_cast<uint64_t>(spec.fmt));
    h.u64(spec.densifyIndependent ? 1 : 0);
    h.u64(spec.seed);
    h.u64(spec.maxElements);
    return h.digest();
}

std::vector<uint8_t>
serializeProfile(const LayerProfile &p)
{
    util::ByteWriter w;
    w.u64(p.x);
    w.u64(p.y);
    w.u64(p.nb);
    w.u64(p.m);
    w.u64(p.aNnz);
    w.f64(p.sampleScale);
    w.u64(p.aStream.payloadBytes);
    w.u64(p.aStream.usefulBytes);
    w.u64(p.aStream.segments);
    w.u64(p.blocks.size());
    for (const BlockTask &b : p.blocks) {
        w.u16(b.nnz);
        w.u8(b.n);
        w.u8(b.independentDim ? 1 : 0);
        w.u8(b.nonemptyRows);
    }
    return w.bytes();
}

std::optional<LayerProfile>
deserializeProfile(std::span<const uint8_t> bytes)
{
    util::ByteReader r(bytes);
    LayerProfile p;
    p.x = r.u64();
    p.y = r.u64();
    p.nb = r.u64();
    p.m = r.u64();
    p.aNnz = r.u64();
    p.sampleScale = r.f64();
    p.aStream.payloadBytes = r.u64();
    p.aStream.usefulBytes = r.u64();
    p.aStream.segments = r.u64();
    const uint64_t blocks = r.u64();
    if (!r.ok() || blocks > bytes.size()) // Each block is >= 1 byte.
        return std::nullopt;
    p.blocks.resize(blocks);
    for (auto &b : p.blocks) {
        b.nnz = r.u16();
        b.n = r.u8();
        b.independentDim = r.u8() != 0;
        b.nonemptyRows = r.u8();
    }
    if (!r.done())
        return std::nullopt;
    return p;
}

/** Host-domain cache telemetry (hit patterns are schedule-dependent). */
void
countProfileCache(util::CacheOutcome outcome)
{
    if (!obs::metricsEnabled())
        return;
    static const obs::Counter hits =
        obs::counter("cache.profile.hits", obs::Domain::Host);
    static const obs::Counter disk_hits =
        obs::counter("cache.profile.disk_hits", obs::Domain::Host);
    static const obs::Counter misses =
        obs::counter("cache.profile.misses", obs::Domain::Host);
    switch (outcome) {
      case util::CacheOutcome::MemoryHit: hits.add(); break;
      case util::CacheOutcome::DiskHit:   disk_hits.add(); break;
      case util::CacheOutcome::Computed:  misses.add(); break;
      case util::CacheOutcome::Disabled:  break;
    }
}

LayerProfile buildLayerProfileUncached(const ProfileSpec &spec);

} // namespace

LayerProfile
buildLayerProfile(const ProfileSpec &spec)
{
    util::ContentStore &store = util::ContentStore::instance();
    if (!store.enabled())
        return buildLayerProfileUncached(spec);
    const uint64_t key = profileCacheKey(spec);
    auto [bytes, outcome] = store.getOrCompute(
        "profile", key,
        [&] { return serializeProfile(buildLayerProfileUncached(spec)); });
    countProfileCache(outcome);
    if (auto profile = deserializeProfile(bytes))
        return std::move(*profile);
    // Defensive: an undecodable payload (e.g. a hash collision across
    // schema revisions) falls back to a fresh build.
    util::warn("profile cache payload undecodable; rebuilding");
    return buildLayerProfileUncached(spec);
}

namespace {

LayerProfile
buildLayerProfileUncached(const ProfileSpec &spec)
{
    const size_t m = spec.m;
    const GemmShape &shape = spec.shape;

    // Row-sample huge layers on the block grid.
    uint64_t rows = shape.x;
    if (spec.maxElements > 0 && shape.x * shape.y > spec.maxElements) {
        rows = std::max<uint64_t>(m,
                                  spec.maxElements / shape.y / m * m);
    }
    const double scale =
        static_cast<double>(shape.x) / static_cast<double>(rows);

    const Matrix w = synthWeights(shape, spec.seed, rows);
    const Matrix scores = core::magnitudeScores(w);
    const std::vector<uint8_t> cand = core::defaultCandidates(m);

    Mask mask;
    TbsMeta meta;
    if (spec.pattern == Pattern::TBS) {
        core::MaskRequest req;
        req.pattern = Pattern::TBS;
        req.strategy = spec.maskStrategy;
        req.sparsity = spec.sparsity;
        req.m = m;
        req.candidates = cand;
        auto res = core::tryMakeMask(scores, req);
        if (!res)
            util::fatal("mask search failed: {}", res.error().message);
        mask = std::move(res->mask);
        meta = std::move(res->meta);
    } else {
        if (!core::isMaskStrategy(spec.maskStrategy))
            util::fatal("unknown mask strategy \"{}\"",
                        spec.maskStrategy);
        mask = core::patternMask(spec.pattern, scores, spec.sparsity, m,
                                 cand);
        meta = deriveMeta(mask, m);
    }

    if (spec.densifyIndependent) {
        // Hardware without codec/MBD support cannot exploit (or even
        // index) independent-dimension blocks; they fall back to dense.
        for (size_t br = 0; br < meta.blockRows; ++br) {
            for (size_t bc = 0; bc < meta.blockCols; ++bc) {
                auto &info = meta.block(br, bc);
                if (info.dim == SparsityDim::Independent && info.n > 0
                    && info.n < m) {
                    info = {static_cast<uint8_t>(m),
                            SparsityDim::Reduction};
                    for (size_t r = 0; r < m; ++r)
                        for (size_t c = 0; c < m; ++c)
                            mask.at(br * m + r, bc * m + c) = 1;
                }
            }
        }
    }

    // Block tasks.
    LayerProfile profile;
    profile.x = shape.x;
    profile.y = shape.y;
    profile.nb = shape.nb;
    profile.m = m;
    profile.sampleScale = scale;
    profile.aNnz = mask.nnz();
    // Per-block task derivation only reads the (frozen) mask and
    // writes its own slot — scan blocks in parallel.
    profile.blocks.resize(meta.blocks.size());
    util::parallelFor(
        meta.blocks.size(), 0, [&](size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
            const size_t br = u / meta.blockCols;
            const size_t bc = u % meta.blockCols;
            const auto &info = meta.block(br, bc);
            BlockTask task;
            size_t nnz = 0;
            size_t nonempty = 0;
            for (size_t r = 0; r < m; ++r) {
                size_t row_nnz = 0;
                for (size_t c = 0; c < m; ++c)
                    row_nnz += mask.at(br * m + r, bc * m + c);
                nnz += row_nnz;
                nonempty += row_nnz > 0;
            }
            task.nnz = static_cast<uint16_t>(nnz);
            task.n = info.n;
            task.nonemptyRows = static_cast<uint8_t>(nonempty);
            task.independentDim = info.dim == SparsityDim::Independent
                && info.n > 0 && info.n < m;
            profile.blocks[u] = task;
        }
    });

    // Storage-format stream profile.
    std::unique_ptr<format::Encoding> enc;
    switch (spec.fmt) {
      case StorageFormat::Dense:
        enc = format::encodeDense(w);
        break;
      case StorageFormat::SDC:
        enc = format::encodeSdc(w, mask);
        break;
      case StorageFormat::CSR:
        enc = format::encodeCsr(w, mask);
        break;
      case StorageFormat::DDC:
        enc = format::encodeDdc(w, mask, meta);
        break;
      case StorageFormat::Bitmap:
        enc = format::encodeBitmap(w, mask);
        break;
    }
    util::ensure(enc != nullptr, "unknown storage format");
    profile.aStream = enc->streamProfile(m);
    return profile;
}

} // namespace

} // namespace tbstc::workload
