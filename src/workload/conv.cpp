#include "conv.hpp"

#include "util/logging.hpp"

namespace tbstc::workload {

using core::Matrix;
using util::ensure;

GemmShape
loweredShape(const ConvSpec &spec, size_t block)
{
    GemmShape shape;
    shape.name = spec.name;
    shape.x = padTo(spec.cout, block);
    shape.y = padTo(spec.patchSize(), block);
    shape.nb = spec.outH() * spec.outW();
    return shape;
}

Matrix
im2col(const ConvSpec &spec, std::span<const float> image)
{
    ensure(image.size() == spec.cin * spec.h * spec.w,
           "im2col: image size mismatch");
    const uint64_t oh = spec.outH();
    const uint64_t ow = spec.outW();
    Matrix cols(oh * ow, spec.patchSize());
    for (uint64_t oy = 0; oy < oh; ++oy) {
        for (uint64_t ox = 0; ox < ow; ++ox) {
            const size_t row = oy * ow + ox;
            size_t col = 0;
            for (uint64_t c = 0; c < spec.cin; ++c) {
                for (uint64_t ky = 0; ky < spec.kh; ++ky) {
                    for (uint64_t kx = 0; kx < spec.kw; ++kx, ++col) {
                        const int64_t iy = static_cast<int64_t>(
                            oy * spec.stride + ky)
                            - static_cast<int64_t>(spec.pad);
                        const int64_t ix = static_cast<int64_t>(
                            ox * spec.stride + kx)
                            - static_cast<int64_t>(spec.pad);
                        if (iy < 0 || ix < 0
                            || iy >= static_cast<int64_t>(spec.h)
                            || ix >= static_cast<int64_t>(spec.w)) {
                            cols.at(row, col) = 0.0f;
                        } else {
                            cols.at(row, col) = image
                                [(c * spec.h + iy) * spec.w + ix];
                        }
                    }
                }
            }
        }
    }
    return cols;
}

std::vector<float>
col2im(const ConvSpec &spec, const Matrix &cols)
{
    ensure(cols.rows() == spec.outH() * spec.outW()
               && cols.cols() == spec.patchSize(),
           "col2im: column matrix shape mismatch");
    std::vector<float> image(spec.cin * spec.h * spec.w, 0.0f);
    const uint64_t ow = spec.outW();
    for (uint64_t oy = 0; oy < spec.outH(); ++oy) {
        for (uint64_t ox = 0; ox < ow; ++ox) {
            const size_t row = oy * ow + ox;
            size_t col = 0;
            for (uint64_t c = 0; c < spec.cin; ++c) {
                for (uint64_t ky = 0; ky < spec.kh; ++ky) {
                    for (uint64_t kx = 0; kx < spec.kw; ++kx, ++col) {
                        const int64_t iy = static_cast<int64_t>(
                            oy * spec.stride + ky)
                            - static_cast<int64_t>(spec.pad);
                        const int64_t ix = static_cast<int64_t>(
                            ox * spec.stride + kx)
                            - static_cast<int64_t>(spec.pad);
                        if (iy >= 0 && ix >= 0
                            && iy < static_cast<int64_t>(spec.h)
                            && ix < static_cast<int64_t>(spec.w)) {
                            image[(c * spec.h + iy) * spec.w + ix] +=
                                cols.at(row, col);
                        }
                    }
                }
            }
        }
    }
    return image;
}

std::vector<float>
convReference(const ConvSpec &spec, const Matrix &weights,
              std::span<const float> image)
{
    ensure(weights.rows() == spec.cout
               && weights.cols() == spec.patchSize(),
           "convReference: weight shape mismatch");
    ensure(image.size() == spec.cin * spec.h * spec.w,
           "convReference: image size mismatch");
    const uint64_t oh = spec.outH();
    const uint64_t ow = spec.outW();
    std::vector<float> out(spec.cout * oh * ow, 0.0f);
    for (uint64_t co = 0; co < spec.cout; ++co) {
        for (uint64_t oy = 0; oy < oh; ++oy) {
            for (uint64_t ox = 0; ox < ow; ++ox) {
                double acc = 0.0;
                size_t widx = 0;
                for (uint64_t c = 0; c < spec.cin; ++c) {
                    for (uint64_t ky = 0; ky < spec.kh; ++ky) {
                        for (uint64_t kx = 0; kx < spec.kw;
                             ++kx, ++widx) {
                            const int64_t iy = static_cast<int64_t>(
                                oy * spec.stride + ky)
                                - static_cast<int64_t>(spec.pad);
                            const int64_t ix = static_cast<int64_t>(
                                ox * spec.stride + kx)
                                - static_cast<int64_t>(spec.pad);
                            if (iy < 0 || ix < 0
                                || iy >= static_cast<int64_t>(spec.h)
                                || ix >= static_cast<int64_t>(spec.w))
                                continue;
                            acc += static_cast<double>(
                                       weights.at(co, widx))
                                * image[(c * spec.h + iy) * spec.w
                                        + ix];
                        }
                    }
                }
                out[(co * oh + oy) * ow + ox] =
                    static_cast<float>(acc);
            }
        }
    }
    return out;
}

} // namespace tbstc::workload
