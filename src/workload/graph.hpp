/**
 * @file
 * Full inference graphs: weight GEMMs plus the activation-activation
 * GEMMs (attention score and context products) that no weight-sparsity
 * scheme accelerates.
 *
 * The paper's end-to-end numbers normalize per-GEMM work; this module
 * lets a user additionally account for the dense attention ops when
 * estimating whole-network latency — the honest denominator for
 * Amdahl-style conclusions.
 */

#ifndef TBSTC_WORKLOAD_GRAPH_HPP
#define TBSTC_WORKLOAD_GRAPH_HPP

#include <vector>

#include "models.hpp"

namespace tbstc::workload {

/** One GEMM node of the inference graph. */
struct InferenceOp
{
    GemmShape shape;
    bool weightOp = true; ///< Weight GEMM (prunable) vs activation GEMM.
    double count = 1.0;   ///< Multiplicity (e.g. heads x layers).
};

/** Attention geometry per model. */
struct AttentionGeometry
{
    uint64_t heads = 0;
    uint64_t headDim = 0;
    uint64_t layers = 0;
};

/** Published attention geometry of the transformer models. */
AttentionGeometry attentionGeometry(ModelId id);

/**
 * The complete GEMM graph of one inference pass: every weight layer
 * (from modelLayers()) plus, for transformers, per-layer QK^T and
 * attention-x-V products at the given sequence length. CNNs have no
 * activation GEMMs.
 */
std::vector<InferenceOp> inferenceGraph(ModelId id, uint64_t seq = 128);

/** Total MACs of the graph, split into weight and activation shares. */
struct GraphMacs
{
    double weightMacs = 0.0;
    double activationMacs = 0.0;

    double total() const { return weightMacs + activationMacs; }

    /** Amdahl ceiling: max speedup if weight GEMMs became free. */
    double
    weightBoundSpeedupCeiling() const
    {
        return activationMacs > 0.0 ? total() / activationMacs
                                    : 1e30;
    }
};

GraphMacs graphMacs(ModelId id, uint64_t seq = 128);

} // namespace tbstc::workload

#endif // TBSTC_WORKLOAD_GRAPH_HPP
