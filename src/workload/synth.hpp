/**
 * @file
 * Synthetic weight/activation generation.
 *
 * The paper profiles pruned checkpoints of public models; we cannot
 * ship weights, so each layer's weights are drawn from a heavy-tailed
 * Gaussian scale mixture — the magnitude distribution regime in which
 * magnitude-based mask selection behaves like it does on trained DNNs
 * (most weights small, a minority dominant). Generation is keyed by
 * (layer name, seed) so every bench sees identical matrices.
 */

#ifndef TBSTC_WORKLOAD_SYNTH_HPP
#define TBSTC_WORKLOAD_SYNTH_HPP

#include <string>

#include "core/matrix.hpp"
#include "models.hpp"

namespace tbstc::workload {

/** Deterministic 64-bit hash of a string (FNV-1a). */
uint64_t nameHash(const std::string &name);

/**
 * Synthesize weights for @p shape (rows = x, cols = y), optionally
 * row-sampled to at most @p max_rows rows (0 = no cap).
 */
core::Matrix synthWeights(const GemmShape &shape, uint64_t seed,
                          uint64_t max_rows = 0);

/** Synthesize a calibration activation batch (samples x features). */
core::Matrix synthActivations(uint64_t samples, uint64_t features,
                              uint64_t seed);

} // namespace tbstc::workload

#endif // TBSTC_WORKLOAD_SYNTH_HPP
