#include "synth.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace tbstc::workload {

using core::Matrix;
using util::Rng;

uint64_t
nameHash(const std::string &name)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

Matrix
synthWeights(const GemmShape &shape, uint64_t seed, uint64_t max_rows)
{
    uint64_t rows = shape.x;
    if (max_rows > 0)
        rows = std::min<uint64_t>(rows, max_rows);
    Rng rng(seed ^ nameHash(shape.name));
    Matrix w(rows, shape.y);

    // Trained DNN weights are not i.i.d.: magnitudes vary per output
    // channel (row), per input feature (column), and regionally (e.g.
    // filter groups). This structured variance is what makes whole
    // blocks dense or empty after global-threshold pruning — the
    // effect paper Fig. 17 measures — and what makes SDC's row
    // padding expensive. Log-normal scale fields reproduce it.
    // Output-channel (row) variance dominates in trained nets, which
    // is why the paper's Fig. 17 finds mostly column-direction blocks:
    // a block whose kept mass sits in a few hot rows is matched best
    // by a per-column top-N mask.
    std::vector<double> col_scale(shape.y);
    for (auto &s : col_scale)
        s = std::exp(rng.gaussian(0.0, 0.25));
    std::vector<double> col_block_scale((shape.y + 7) / 8);
    for (auto &s : col_block_scale)
        s = std::exp(rng.gaussian(0.0, 0.35));

    double row_block = 1.0;
    for (uint64_t r = 0; r < rows; ++r) {
        // Row-block (region) scale refreshes every 8 rows so it is
        // identical whether or not later rows get sampled away.
        if (r % 8 == 0)
            row_block = std::exp(rng.gaussian(0.0, 0.7));
        const double row_scale =
            std::exp(rng.gaussian(0.0, 0.6)) * row_block;
        for (uint64_t c = 0; c < shape.y; ++c) {
            w.at(r, c) = static_cast<float>(
                rng.heavyTail() * 0.02 * row_scale * col_scale[c]
                * col_block_scale[c / 8]);
        }
    }
    return w;
}

Matrix
synthActivations(uint64_t samples, uint64_t features, uint64_t seed)
{
    Rng rng(seed ^ 0x9d2c5680u);
    Matrix x(samples, features);
    // Activations after a ReLU-ish nonlinearity: non-negative, with
    // per-feature scale diversity (some channels systematically hot),
    // which is exactly what the Wanda criterion exploits.
    std::vector<double> channel_scale(features);
    for (auto &s : channel_scale)
        s = std::exp(rng.gaussian(0.0, 0.7));
    for (uint64_t i = 0; i < samples; ++i)
        for (uint64_t f = 0; f < features; ++f)
            x.at(i, f) = static_cast<float>(
                std::max(0.0, rng.gaussian(0.0, channel_scale[f])));
    return x;
}

} // namespace tbstc::workload
