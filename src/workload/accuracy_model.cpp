#include "accuracy_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <tuple>

#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "synth.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace tbstc::workload {

using core::Pattern;

namespace {

/** Table I/II anchor rows: accuracy (%) at the anchor sparsity. */
struct Anchor
{
    double sparsity; ///< Sparsity the table reports at.
    double dense;
    double us;
    double ts;
    double rsv;
    double rsh;
    double tbs;
    /**
     * SlideSparse is absent from the paper's tables; its anchor sits
     * between US and TBS, consistent with its mask-space ranking (the
     * per-tile 0..2N-2 ladder is strictly richer than TBS blocks but
     * still short of unstructured freedom).
     */
    double ss;
};

Anchor
anchorFor(ModelId model)
{
    switch (model) {
      case ModelId::ResNet50: // Cifar-10, Table I.
        return {0.75, 95.04, 94.93, 94.32, 94.32, 94.79, 94.91, 94.92};
      case ModelId::ResNet18: // ImageNet, Table I.
        return {0.75, 89.08, 88.15, 86.37, 86.89, 86.61, 87.53, 87.90};
      case ModelId::BertBase: // sst-2, Table I.
        return {0.50, 92.32, 91.43, 90.25, 90.37, 90.48, 91.38, 91.40};
      case ModelId::Opt67b:   // Table II, Wanda/SparseGPT average.
        return {0.50, 64.39, 61.22, 57.93, 58.84, 58.84, 60.75, 61.00};
      case ModelId::Llama27b: // Table II, Wanda/SparseGPT average.
        return {0.50, 70.15, 66.90, 63.72, 64.03, 64.13, 66.06, 66.50};
    }
    util::panic("unknown ModelId");
}

/** The table's reported accuracy for @p pattern at the anchor. */
double
anchorAccuracy(const Anchor &a, Pattern p)
{
    switch (p) {
      case Pattern::Dense: return a.dense;
      case Pattern::US:    return a.us;
      case Pattern::TS:    return a.ts;
      case Pattern::RSV:   return a.rsv;
      case Pattern::RSH:   return a.rsh;
      case Pattern::TBS:   return a.tbs;
      case Pattern::SS:    return a.ss;
    }
    util::panic("unknown Pattern");
}

/** Odds-style sparsity severity: s / (1 - s). */
double
severity(double s)
{
    s = std::clamp(s, 0.0, 0.97);
    return s / (1.0 - s);
}

} // namespace

double
maskSimilarity(Pattern pattern, double sparsity, size_t m, uint64_t seed)
{
    if (pattern == Pattern::US || pattern == Pattern::Dense)
        return 1.0;
    // Memoize: the bisection in isoAccuracySparsity revisits points.
    // Callers run inside pool workers (fig13's grid), so the cache is
    // mutex-guarded; the probe itself is computed outside the lock —
    // a concurrent miss may recompute, but the value is deterministic.
    using Key = std::tuple<int, long, size_t, uint64_t>;
    static std::map<Key, double> cache;
    static std::mutex cache_m;
    const Key key{static_cast<int>(pattern),
                  std::lround(sparsity * 10000.0), m, seed};
    {
        const std::lock_guard lk(cache_m);
        const auto hit = cache.find(key);
        if (hit != cache.end())
            return hit->second;
    }

    constexpr size_t kDim = 256;
    const core::Matrix w =
        synthWeights({"similarity-probe", kDim, kDim, 1}, seed);
    const core::Matrix scores = core::magnitudeScores(w);
    const auto cand = core::defaultCandidates(m);
    double sim;
    if (pattern == Pattern::TBS) {
        // tbsMask already measures its distance to the step-1
        // unstructured mask; agreement = (size - hamming) / size is
        // the identical integer arithmetic, without a second usMask.
        const core::TbsResult res =
            core::tbsMask(scores, sparsity, m, cand);
        const size_t total = res.mask.size();
        sim = static_cast<double>(total - res.usHamming)
            / static_cast<double>(total);
    } else {
        const core::Mask us = core::usMask(scores, sparsity);
        const core::Mask pat =
            core::patternMask(pattern, scores, sparsity, m, cand);
        sim = pat.agreement(us);
    }
    const std::lock_guard lk(cache_m);
    return cache.emplace(key, sim).first->second;
}

double
denseAccuracy(ModelId model)
{
    return anchorFor(model).dense;
}

double
proxyAccuracy(ModelId model, Pattern pattern, double sparsity, size_t m)
{
    const Anchor a = anchorFor(model);
    if (pattern == Pattern::Dense || sparsity <= 0.0)
        return a.dense;

    // Unstructured degradation: power law in the sparsity odds,
    // pinned to the table's US drop at the anchor sparsity.
    constexpr double kUsExponent = 1.5;
    const double us_drop_anchor = a.dense - a.us;
    const double sev_ratio = severity(sparsity) / severity(a.sparsity);
    const double us_drop =
        us_drop_anchor * std::pow(sev_ratio, kUsExponent);
    if (pattern == Pattern::US)
        return std::max(0.0, a.dense - us_drop);

    // Structured gap over US: pinned to this pattern's own table
    // accuracy at the anchor sparsity, and scaled away from the
    // anchor by the measured mask-dissimilarity ratio and the
    // sparsity severity (gap -> 0 as sparsity -> 0).
    const double gap_anchor =
        std::max(0.0, a.us - anchorAccuracy(a, pattern));
    const double dis_anchor = std::max(
        1e-3, 1.0 - maskSimilarity(pattern, a.sparsity, m));
    const double dis = std::max(
        0.0, 1.0 - maskSimilarity(pattern, sparsity, m));
    const double gap = gap_anchor * (dis / dis_anchor) * sev_ratio;
    return std::max(0.0, a.dense - us_drop - gap);
}

double
isoAccuracySparsity(ModelId model, Pattern pattern,
                    double target_accuracy, size_t m)
{
    constexpr double kLo = 0.0;
    constexpr double kHi = 0.95;
    if (proxyAccuracy(model, pattern, kHi, m) >= target_accuracy)
        return kHi;
    if (proxyAccuracy(model, pattern, 0.05, m) < target_accuracy)
        return kLo;
    double lo = 0.05;
    double hi = kHi;
    for (int it = 0; it < 40; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (proxyAccuracy(model, pattern, mid, m) >= target_accuracy)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace tbstc::workload
