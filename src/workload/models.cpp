#include "models.hpp"

#include "util/fmt.hpp"
#include "util/logging.hpp"

namespace tbstc::workload {

using util::formatStr;

uint64_t
padTo(uint64_t v, uint64_t m)
{
    return (v + m - 1) / m * m;
}

std::string
modelName(ModelId id)
{
    switch (id) {
      case ModelId::ResNet50: return "ResNet-50";
      case ModelId::ResNet18: return "ResNet-18";
      case ModelId::BertBase: return "BERT-base";
      case ModelId::Opt67b:   return "OPT-6.7B";
      case ModelId::Llama27b: return "Llama2-7B";
    }
    util::panic("unknown ModelId");
}

namespace {

GemmShape
conv(std::string name, uint64_t cout, uint64_t cin, uint64_t k,
     uint64_t hw)
{
    return {std::move(name), padTo(cout, 8), padTo(cin * k * k, 8),
            hw * hw};
}

std::vector<GemmShape>
resnet50()
{
    // Bottleneck stages of ResNet-50 (ImageNet geometry); the 7x7 stem
    // and the final FC are excluded from pruning per the paper.
    std::vector<GemmShape> layers;
    struct Stage
    {
        uint64_t width;   ///< Bottleneck width (e.g. 64).
        uint64_t in;      ///< Input channels of the first block.
        uint64_t blocks;
        uint64_t hw;      ///< Output spatial edge.
    };
    const Stage stages[] = {
        {64, 64, 3, 56},
        {128, 256, 4, 28},
        {256, 512, 6, 14},
        {512, 1024, 3, 7},
    };
    for (size_t s = 0; s < 4; ++s) {
        const Stage &st = stages[s];
        const uint64_t out = st.width * 4;
        for (uint64_t b = 0; b < st.blocks; ++b) {
            const uint64_t cin = b == 0 ? st.in : out;
            const std::string tag =
                formatStr("conv{}_{}", s + 2, b + 1);
            layers.push_back(
                conv(tag + ".1x1a", st.width, cin, 1, st.hw));
            layers.push_back(
                conv(tag + ".3x3", st.width, st.width, 3, st.hw));
            layers.push_back(
                conv(tag + ".1x1b", out, st.width, 1, st.hw));
            if (b == 0) {
                layers.push_back(
                    conv(tag + ".down", out, cin, 1, st.hw));
            }
        }
    }
    return layers;
}

std::vector<GemmShape>
resnet18()
{
    std::vector<GemmShape> layers;
    struct Stage
    {
        uint64_t width;
        uint64_t in;
        uint64_t hw;
    };
    const Stage stages[] = {
        {64, 64, 56},
        {128, 64, 28},
        {256, 128, 14},
        {512, 256, 7},
    };
    for (size_t s = 0; s < 4; ++s) {
        const Stage &st = stages[s];
        for (uint64_t b = 0; b < 2; ++b) {
            const uint64_t cin = b == 0 ? st.in : st.width;
            const std::string tag =
                formatStr("conv{}_{}", s + 2, b + 1);
            layers.push_back(
                conv(tag + ".3x3a", st.width, cin, 3, st.hw));
            layers.push_back(
                conv(tag + ".3x3b", st.width, st.width, 3, st.hw));
            if (b == 0 && s > 0) {
                layers.push_back(
                    conv(tag + ".down", st.width, cin, 1, st.hw));
            }
        }
    }
    return layers;
}

std::vector<GemmShape>
transformer(const std::string &prefix, uint64_t layers, uint64_t d,
            uint64_t ffn, bool gated, uint64_t seq)
{
    std::vector<GemmShape> out;
    for (uint64_t l = 0; l < layers; ++l) {
        const std::string tag = formatStr("{}.L{}.", prefix, l);
        out.push_back({tag + "q", d, d, seq});
        out.push_back({tag + "k", d, d, seq});
        out.push_back({tag + "v", d, d, seq});
        out.push_back({tag + "o", d, d, seq});
        if (gated) {
            out.push_back({tag + "gate", padTo(ffn, 8), d, seq});
            out.push_back({tag + "up", padTo(ffn, 8), d, seq});
            out.push_back({tag + "down", d, padTo(ffn, 8), seq});
        } else {
            out.push_back({tag + "fc1", padTo(ffn, 8), d, seq});
            out.push_back({tag + "fc2", d, padTo(ffn, 8), seq});
        }
    }
    return out;
}

} // namespace

std::vector<GemmShape>
modelLayers(ModelId id, uint64_t seq)
{
    switch (id) {
      case ModelId::ResNet50: return resnet50();
      case ModelId::ResNet18: return resnet18();
      case ModelId::BertBase:
        return transformer("bert", 12, 768, 3072, false, seq);
      case ModelId::Opt67b:
        return transformer("opt", 32, 4096, 16384, false, seq);
      case ModelId::Llama27b:
        return transformer("llama", 32, 4096, 11008, true, seq);
    }
    util::panic("unknown ModelId");
}

std::vector<GemmShape>
representativeLayers(ModelId id, uint64_t seq)
{
    switch (id) {
      case ModelId::ResNet50:
        return {
            conv("conv2_2.3x3", 64, 64, 3, 56),
            conv("conv3_2.3x3", 128, 128, 3, 28),
            conv("conv4_2.3x3", 256, 256, 3, 14),
            conv("conv5_2.3x3", 512, 512, 3, 7),
        };
      case ModelId::ResNet18:
        return {
            conv("conv2_1.3x3a", 64, 64, 3, 56),
            conv("conv4_1.3x3a", 256, 128, 3, 14),
        };
      case ModelId::BertBase:
        // The paper's Fig. 14 studies the 9th encoder layer.
        return {
            {"bert.L9.qkv", 768, 768, seq},
            {"bert.L9.o", 768, 768, seq},
            {"bert.L9.fc1", 3072, 768, seq},
            {"bert.L9.fc2", 768, 3072, seq},
        };
      case ModelId::Opt67b:
        return {
            {"opt.L16.q", 4096, 4096, seq},
            {"opt.L16.fc1", 16384, 4096, seq},
        };
      case ModelId::Llama27b:
        return {
            {"llama.L16.q", 4096, 4096, seq},
            {"llama.L16.gate", 11008, 4096, seq},
        };
    }
    util::panic("unknown ModelId");
}

} // namespace tbstc::workload
