/**
 * @file
 * Builds block-granular simulator profiles from real masks + encodings.
 *
 * This is the bridge between the algorithm side (patterns, masks) and
 * the hardware side (LayerProfile): weights are synthesized, the
 * requested pattern's mask generated, the requested storage format
 * encoded, and the result reduced to per-block tasks plus a stream
 * profile. Layers too large to materialize are row-sampled on the
 * block grid and linearly rescaled (documented in DESIGN.md).
 */

#ifndef TBSTC_WORKLOAD_PROFILE_BUILDER_HPP
#define TBSTC_WORKLOAD_PROFILE_BUILDER_HPP

#include <string>

#include "core/pattern.hpp"
#include "format/encoding.hpp"
#include "models.hpp"
#include "sim/profile.hpp"

namespace tbstc::workload {

/** Everything that determines one layer profile. */
struct ProfileSpec
{
    GemmShape shape;
    core::Pattern pattern = core::Pattern::TBS;
    double sparsity = 0.5;
    size_t m = 8;

    /**
     * TBS mask-search strategy (core/mask_search.hpp registry name);
     * empty = the default ("greedy"). A determining input of the
     * profile: it feeds the cache key, so a cached greedy profile can
     * never answer an optimal-strategy request.
     */
    std::string maskStrategy;

    format::StorageFormat fmt = format::StorageFormat::DDC;

    /**
     * Treat independent-dimension blocks as dense (the fallback of
     * hardware lacking the codec/MBD units; paper Fig. 16(a)).
     */
    bool densifyIndependent = false;

    uint64_t seed = 42;

    /** Row-sampling cap on materialized elements (0 = unlimited). */
    uint64_t maxElements = 1ull << 23;
};

/** Build the simulator profile for @p spec. */
sim::LayerProfile buildLayerProfile(const ProfileSpec &spec);

/**
 * Derive TBS-style block metadata for a mask produced by a
 * non-transposable pattern: every block is reduction-dimension with
 * N set to its maximum row-group occupancy.
 */
core::TbsMeta deriveMeta(const core::Mask &mask, size_t m);

} // namespace tbstc::workload

#endif // TBSTC_WORKLOAD_PROFILE_BUILDER_HPP
