#include "accelerator.hpp"

#include <map>
#include <tuple>

#include "obs/obs.hpp"
#include "util/fmt.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "workload/graph.hpp"

namespace tbstc::accel {

using core::Pattern;
using format::StorageFormat;
using sim::ArchConfig;
using sim::InterSched;
using sim::IntraMap;
using sim::RunStats;
using workload::ProfileSpec;

std::string
accelName(AccelKind kind)
{
    switch (kind) {
      case AccelKind::TC:        return "TC";
      case AccelKind::STC:       return "STC";
      case AccelKind::Vegeta:    return "VEGETA";
      case AccelKind::HighLight: return "HighLight";
      case AccelKind::RmStc:     return "RM-STC";
      case AccelKind::Sgcn:      return "SGCN";
      case AccelKind::TbStc:     return "TB-STC";
      case AccelKind::TbStcFan:  return "DVPE+FAN";
    }
    util::panic("unknown AccelKind");
}

core::Pattern
accelPattern(AccelKind kind)
{
    switch (kind) {
      case AccelKind::TC:        return Pattern::Dense;
      case AccelKind::STC:       return Pattern::TS;
      case AccelKind::Vegeta:    return Pattern::RSV;
      case AccelKind::HighLight: return Pattern::RSH;
      case AccelKind::RmStc:     return Pattern::US;
      case AccelKind::Sgcn:      return Pattern::US;
      case AccelKind::TbStc:     return Pattern::TBS;
      case AccelKind::TbStcFan:  return Pattern::TBS;
    }
    util::panic("unknown AccelKind");
}

format::StorageFormat
accelFormat(AccelKind kind)
{
    switch (kind) {
      case AccelKind::TC:        return StorageFormat::Dense;
      case AccelKind::STC:       return StorageFormat::SDC;
      case AccelKind::Vegeta:    return StorageFormat::Bitmap;
      case AccelKind::HighLight: return StorageFormat::Bitmap;
      case AccelKind::RmStc:     return StorageFormat::Bitmap;
      case AccelKind::Sgcn:      return StorageFormat::Bitmap;
      case AccelKind::TbStc:     return StorageFormat::DDC;
      case AccelKind::TbStcFan:  return StorageFormat::DDC;
    }
    util::panic("unknown AccelKind");
}

bool
supportsIndependentDim(AccelKind kind)
{
    return kind == AccelKind::TbStc || kind == AccelKind::TbStcFan;
}

sim::ArchConfig
accelConfig(AccelKind kind)
{
    ArchConfig cfg; // Defaults are the paper's common geometry.
    switch (kind) {
      case AccelKind::TC:
      case AccelKind::STC:
        cfg.codecUnit = false;
        cfg.mbdUnit = false;
        cfg.alternateUnit = false;
        cfg.interSched = InterSched::Naive; // Uniform blocks anyway.
        break;
      case AccelKind::Vegeta:
        cfg.codecUnit = false;
        cfg.mbdUnit = false;
        cfg.alternateUnit = false;
        cfg.interSched = InterSched::Naive; // Row-wave dispatch.
        break;
      case AccelKind::HighLight:
        cfg.codecUnit = false;
        cfg.mbdUnit = false;
        cfg.alternateUnit = false;
        // Hierarchical metadata gives coarse (tile-level) balancing:
        // aware dispatch, but with a much shallower buffer than
        // TB-STC's scheduling unit, and two-level metadata decode
        // overhead in the issue path.
        cfg.interSched = InterSched::Aware;
        cfg.schedLookahead = 2;
        cfg.beatOverheadScale = 1.10;
        break;
      case AccelKind::RmStc:
        cfg.codecUnit = false;
        cfg.mbdUnit = false;
        cfg.alternateUnit = false;
        cfg.interSched = InterSched::Aware; // Row merging balances.
        // Gather/union modules: higher switching energy per MAC and
        // always-on overhead (paper Fig. 6(d)); slight beat overhead
        // from merge bubbles.
        cfg.computeEnergyScale = 2.10;
        cfg.extraStaticW = 0.045;
        cfg.beatOverheadScale = 1.05;
        cfg.elementGranular = true;
        break;
      case AccelKind::Sgcn:
        cfg.codecUnit = false;
        cfg.mbdUnit = false;
        cfg.alternateUnit = false;
        cfg.interSched = InterSched::Aware;
        // High-sparsity design point: generous bandwidth, but an
        // element-granular pipeline that cannot reach structured
        // throughput at moderate density (paper Sec. VII-D4).
        cfg.dramGbps = 256.0;
        cfg.beatOverheadScale = 1.35;
        cfg.computeEnergyScale = 1.40;
        cfg.extraStaticW = 0.015;
        cfg.elementGranular = true;
        break;
      case AccelKind::TbStc:
        break; // Full feature set.
      case AccelKind::TbStcFan:
        // SIGMA's forwarding adder network in place of the DVPE
        // reduction network: element-level forwarding burns energy and
        // adds arbitration bubbles (paper Sec. VII-E2: 1.61x EDP).
        cfg.computeEnergyScale = 2.0;
        cfg.extraStaticW = 0.030;
        cfg.beatOverheadScale = 1.25;
        break;
    }
    return cfg;
}

RunStats
runLayer(AccelKind kind, const RunRequest &req)
{
    const obs::ScopedSpan span(util::formatStr(
        "accel.runLayer {} {}x{}x{}", accelName(kind), req.shape.x,
        req.shape.y, req.shape.nb));
    const Pattern pattern =
        req.patternOverride.value_or(accelPattern(kind));

    ProfileSpec spec;
    spec.shape = req.shape;
    spec.pattern = pattern;
    spec.sparsity = kind == AccelKind::STC && !req.patternOverride
        ? 0.5 // STC's datapath is hard-wired 4:8.
        : req.sparsity;
    spec.m = req.m;
    spec.maskStrategy = req.maskStrategy;
    spec.fmt = req.formatOverride.value_or(accelFormat(kind));
    // Structured-only datapaths cannot express independent-dimension
    // blocks and fall back to dense; unstructured-capable ones
    // (RM-STC, SGCN) consume any mask natively.
    spec.densifyIndependent = pattern == Pattern::TBS
        && !supportsIndependentDim(kind)
        && accelPattern(kind) != Pattern::US;
    spec.seed = req.seed;

    const ArchConfig cfg =
        req.configOverride.value_or(accelConfig(kind));
    const util::ThreadScope threads(cfg.hostThreads);
    const sim::LayerProfile profile = workload::buildLayerProfile(spec);
    sim::RunOptions opts;
    opts.int8Weights = req.int8Weights;
    return sim::simulateLayer(profile, cfg, sim::EnergyParams{}, opts);
}

RunStats
runModel(AccelKind kind, workload::ModelId model, double sparsity,
         uint64_t seq, bool int8_weights, uint64_t seed,
         const std::string &maskStrategy)
{
    const obs::ScopedSpan span(util::formatStr(
        "accel.runModel {} model={} seq={}", accelName(kind),
        workload::modelName(model), seq));
    // Group identically shaped layers; simulate one representative and
    // scale. Statistically the synthetic weights of same-shape layers
    // are interchangeable, and this turns 32-layer LLMs into a handful
    // of simulations.
    std::map<std::tuple<uint64_t, uint64_t, uint64_t>,
             std::pair<workload::GemmShape, double>> groups;
    for (const auto &shape : workload::modelLayers(model, seq)) {
        auto key = std::make_tuple(shape.x, shape.y, shape.nb);
        auto [it, inserted] = groups.try_emplace(key, shape, 0.0);
        it->second.second += 1.0;
    }
    // Representatives are independent simulator runs: simulate them in
    // parallel, then accumulate in the map's (sorted-key) order so the
    // floating-point totals match the serial path bit for bit.
    std::vector<std::pair<workload::GemmShape, double>> reps;
    reps.reserve(groups.size());
    for (const auto &[key, entry] : groups)
        reps.push_back(entry);
    const auto stats = util::parallelMap<RunStats>(
        reps.size(), [&](size_t i) {
            RunRequest req;
            req.shape = reps[i].first;
            req.sparsity = sparsity;
            req.seed = seed;
            req.int8Weights = int8_weights;
            req.maskStrategy = maskStrategy;
            return runLayer(kind, req).scaled(reps[i].second);
        });
    RunStats total;
    for (const auto &s : stats)
        total.accumulate(s);
    return total;
}

RunStats
runInference(AccelKind kind, workload::ModelId model, double sparsity,
             uint64_t seq, bool int8_weights, uint64_t seed,
             const std::string &maskStrategy)
{
    const obs::ScopedSpan span(util::formatStr(
        "accel.runInference {} model={} seq={}", accelName(kind),
        workload::modelName(model), seq));
    RunStats total = runModel(kind, model, sparsity, seq, int8_weights,
                              seed, maskStrategy);
    std::vector<workload::InferenceOp> acts;
    for (const auto &op : workload::inferenceGraph(model, seq)) {
        if (!op.weightOp) // Weight ops are covered by runModel().
            acts.push_back(op);
    }
    const auto stats = util::parallelMap<RunStats>(
        acts.size(), [&](size_t i) {
            RunRequest req;
            req.shape = acts[i].shape;
            req.sparsity = 0.0;
            req.seed = seed;
            // Activation GEMMs are dense whatever the weight pattern.
            req.patternOverride = Pattern::Dense;
            req.formatOverride = StorageFormat::Dense;
            return runLayer(kind, req).scaled(acts[i].count);
        });
    for (const auto &s : stats)
        total.accumulate(s);
    return total;
}

} // namespace tbstc::accel
