/**
 * @file
 * Accelerator facade: one entry point that runs a (model, pattern,
 * sparsity) workload on any of the paper's evaluated architectures.
 *
 * Each AccelKind bundles the sparsity pattern the architecture can
 * express, the storage format it consumes, and the hardware feature
 * set / energy knobs of its datapath (paper Sec. VII-A2 baselines):
 *
 *  | Kind      | Pattern | Format | Notes                             |
 *  |-----------|---------|--------|-----------------------------------|
 *  | TC        | Dense   | Dense  | plain tensor core                 |
 *  | STC       | TS 4:8  | SDC    | NVIDIA sparse tensor core         |
 *  | Vegeta    | RS-V    | Bitmap | per-row N, wave scheduling        |
 *  | HighLight | RS-H    | DDC*   | hierarchical, wave scheduling     |
 *  | RmStc     | US      | Bitmap | row-merge; costly gather/union    |
 *  | Sgcn      | US      | CSR    | 256 GB/s, element pipeline        |
 *  | TbStc     | TBS     | DDC    | this paper                        |
 *  | TbStcFan  | TBS     | DDC    | DVPE replaced by SIGMA's FAN      |
 *
 *  (*) HighLight's block-compressed format is modelled with the DDC
 *  encoder over reduction-only metadata, which matches its
 *  tile-skipping efficiency class.
 */

#ifndef TBSTC_ACCEL_ACCELERATOR_HPP
#define TBSTC_ACCEL_ACCELERATOR_HPP

#include <optional>
#include <string>

#include "sim/pipeline.hpp"
#include "workload/models.hpp"
#include "workload/profile_builder.hpp"

namespace tbstc::accel {

/** Evaluated accelerator architectures. */
enum class AccelKind : uint8_t
{
    TC,
    STC,
    Vegeta,
    HighLight,
    RmStc,
    Sgcn,
    TbStc,
    TbStcFan,
};

/** Display name as used in the paper's figures. */
std::string accelName(AccelKind kind);

/** The sparsity pattern this architecture natively expresses. */
core::Pattern accelPattern(AccelKind kind);

/** The storage format this architecture consumes. */
format::StorageFormat accelFormat(AccelKind kind);

/** Hardware configuration (features, bandwidth, energy knobs). */
sim::ArchConfig accelConfig(AccelKind kind);

/** True when the datapath can exploit independent-dimension blocks. */
bool supportsIndependentDim(AccelKind kind);

/** One layer-run request. */
struct RunRequest
{
    workload::GemmShape shape;
    double sparsity = 0.5; ///< STC always clamps to its fixed 4:8.
    size_t m = 8;
    uint64_t seed = 42;
    bool int8Weights = false;

    /**
     * TBS mask-search strategy (core/mask_search.hpp registry name);
     * empty = default greedy. Threaded into the ProfileSpec, so it is
     * a determining input of the cached layer profile.
     */
    std::string maskStrategy;

    /**
     * Run a different pattern's pruned model on this hardware
     * (ablation Fig. 16(a) deploys the TBS model everywhere).
     * Unsupported independent-dimension blocks fall back to dense.
     */
    std::optional<core::Pattern> patternOverride;

    /** Architecture tweak hook (ablations); applied after accelConfig. */
    std::optional<sim::ArchConfig> configOverride;

    /** Storage-format override (e.g. dense activation GEMMs). */
    std::optional<format::StorageFormat> formatOverride;
};

/** Simulate one layer on @p kind. */
sim::RunStats runLayer(AccelKind kind, const RunRequest &req);

/**
 * Simulate a whole model (sum over modelLayers) on @p kind.
 * Identically shaped layers (ubiquitous in transformers) are
 * simulated once and scaled by their multiplicity.
 */
sim::RunStats runModel(AccelKind kind, workload::ModelId model,
                       double sparsity, uint64_t seq = 128,
                       bool int8_weights = false, uint64_t seed = 42,
                       const std::string &maskStrategy = {});

/**
 * Simulate a full inference pass — weight GEMMs at the requested
 * sparsity plus the dense activation GEMMs (attention scores/context)
 * that weight pruning cannot touch (workload/graph.hpp). The honest
 * whole-network latency.
 */
sim::RunStats runInference(AccelKind kind, workload::ModelId model,
                           double sparsity, uint64_t seq = 128,
                           bool int8_weights = false, uint64_t seed = 42,
                           const std::string &maskStrategy = {});

} // namespace tbstc::accel

#endif // TBSTC_ACCEL_ACCELERATOR_HPP
