/**
 * @file
 * Serve daemon soak test: the ISSUE acceptance bar, in-process.
 *
 * 2000 mixed requests from 8 concurrent closed-loop clients against a
 * live server, with verify on: every response's csv/crc bytes must
 * equal the in-process one-shot execution for the same spec. Zero
 * drops are tolerated below the back-pressure threshold — a busy
 * rejection is a retried answer, not a drop, and every request must
 * eventually succeed. A second scenario drains the server with
 * requests still in flight and checks the accepted==answered
 * invariant under racing clients.
 *
 * The soak runs warm-cache by design (the mix repeats a small set of
 * distinct signatures), which is exactly the serving scenario the
 * batcher's dedup and the ContentStore single-flight are built for.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "serve/exec.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace tbstc;
using namespace tbstc::serve;

TEST(ServeSoak, TwoThousandMixedRequestsEightClientsByteIdentical)
{
    ServerOptions sopts;
    sopts.limits.queueCapacity = 512;
    Server server(sopts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    LoadgenOptions lopts;
    lopts.port = *started;
    lopts.clients = 8;
    lopts.totalRequests = 2000;
    lopts.seed = 42;
    lopts.verify = true;
    const auto stats = runLoadgen(lopts);
    ASSERT_TRUE(stats.ok()) << stats.error();

    // Zero drops: every request answered successfully (busy retries
    // are allowed, failures are not), and every response byte-equal
    // to the one-shot execution.
    EXPECT_EQ(stats->sent, 2000u);
    EXPECT_EQ(stats->ok, 2000u);
    EXPECT_EQ(stats->errors, 0u);
    EXPECT_EQ(stats->mismatched, 0u);
    EXPECT_GT(stats->reqPerSec, 0.0);
    EXPECT_GE(stats->p99Ms, stats->p50Ms);

    server.beginShutdown();
    server.wait();
    const ServerCounters c = server.counters();
    EXPECT_EQ(c.answered, c.accepted);
    EXPECT_EQ(c.badRequests, 0u);
    // The mix repeats few distinct signatures, so batching must have
    // coalesced some duplicate executions over 2000 requests.
    EXPECT_GT(c.dedupHits, 0u);
}

TEST(ServeSoak, DrainUnderLoadAnswersEverythingAccepted)
{
    ServerOptions sopts;
    sopts.limits.queueCapacity = 64;
    Server server(sopts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();
    const uint16_t port = *started;

    // Clients hammer the server while the main thread yanks it into
    // a drain mid-flight. Clients tolerate busy/shutting_down/EOF;
    // what must hold is the server-side invariant.
    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
            LoadgenOptions lopts;
            lopts.port = port;
            lopts.clients = 1;
            lopts.totalRequests = 50;
            lopts.seed = 100 + static_cast<uint64_t>(c);
            lopts.maxRetries = 0;
            while (!stop.load(std::memory_order_relaxed))
                (void)runLoadgen(lopts);
        });
    }

    // Let some load build, then drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    server.beginShutdown();
    server.wait();
    stop.store(true, std::memory_order_relaxed);
    for (auto &t : clients)
        t.join();

    // Every request the queue accepted got a response; pings are
    // answered inline by readers and counted separately.
    const ServerCounters c = server.counters();
    EXPECT_EQ(c.answered, c.accepted)
        << "accepted=" << c.accepted << " answered=" << c.answered;
}

} // namespace
