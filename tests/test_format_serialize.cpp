/**
 * @file
 * Tests for the byte-exact DDC serializer (paper Fig. 8 layout).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "format/encoding.hpp"
#include "format/serialize.hpp"
#include "util/fp16.hpp"
#include "util/logging.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc;
using core::Matrix;

struct Fixture
{
    Matrix w;
    core::TbsResult tbs;

    explicit Fixture(uint64_t seed, size_t rows = 64, size_t cols = 64,
                     double sparsity = 0.5)
    {
        w = workload::synthWeights({"ser-probe", rows, cols, 1}, seed);
        tbs = core::tbsMask(core::magnitudeScores(w), sparsity, 8,
                            core::defaultCandidates(8));
    }
};

/** fp16-round every element (the serializer's payload precision). */
Matrix
fp16Rounded(const Matrix &m)
{
    Matrix out = m;
    for (auto &v : out.data())
        v = util::fp16Round(v);
    return out;
}

TEST(SerializeDdc, RoundTripMatrix)
{
    Fixture f(1);
    const auto bytes = format::serializeDdc(f.w, f.tbs.mask, f.tbs.meta);
    const auto parsed = format::deserializeDdc(bytes);
    EXPECT_EQ(parsed.matrix,
              fp16Rounded(core::applyMask(f.w, f.tbs.mask)));
}

TEST(SerializeDdc, RoundTripMeta)
{
    Fixture f(2);
    const auto bytes = format::serializeDdc(f.w, f.tbs.mask, f.tbs.meta);
    const auto parsed = format::deserializeDdc(bytes);
    ASSERT_EQ(parsed.meta.blocks.size(), f.tbs.meta.blocks.size());
    EXPECT_EQ(parsed.meta.m, f.tbs.meta.m);
    for (size_t b = 0; b < parsed.meta.blocks.size(); ++b) {
        EXPECT_EQ(parsed.meta.blocks[b].n, f.tbs.meta.blocks[b].n);
        EXPECT_EQ(parsed.meta.blocks[b].dim, f.tbs.meta.blocks[b].dim);
    }
}

TEST(SerializeDdc, RoundTripMask)
{
    // Synthetic weights are never exactly zero, so the mask survives.
    Fixture f(3, 64, 64, 0.75);
    const auto bytes = format::serializeDdc(f.w, f.tbs.mask, f.tbs.meta);
    const auto parsed = format::deserializeDdc(bytes);
    EXPECT_EQ(parsed.mask, f.tbs.mask);
}

TEST(SerializeDdc, LargeMatrixCrossesGroups)
{
    // 1024 blocks > the 63-block offset group: exercises group bases.
    Fixture f(4, 256, 256, 0.625);
    const auto bytes = format::serializeDdc(f.w, f.tbs.mask, f.tbs.meta);
    const auto parsed = format::deserializeDdc(bytes);
    EXPECT_EQ(parsed.matrix,
              fp16Rounded(core::applyMask(f.w, f.tbs.mask)));
    EXPECT_EQ(parsed.mask, f.tbs.mask);
}

TEST(SerializeDdc, ByteSizeTracksEncodingModel)
{
    // The real stream should be close to the cost model's estimate
    // (header + group bases are the only extras).
    Fixture f(5, 128, 128, 0.75);
    const auto bytes = format::serializeDdc(f.w, f.tbs.mask, f.tbs.meta);
    const auto model =
        format::encodeDdc(f.w, f.tbs.mask, f.tbs.meta)->storageBytes();
    EXPECT_GT(bytes.size(), model);
    EXPECT_LT(bytes.size(), model + 256);
}

TEST(SerializeDdc, InfoTableBitLayout)
{
    // One 16x8 matrix with two blocks: verify the 1/3/12-bit fields
    // land where Fig. 8 puts them.
    Matrix w(16, 8);
    for (size_t i = 0; i < w.size(); ++i)
        w.data()[i] = static_cast<float>(i + 1);
    const auto res =
        core::tbsMask(core::magnitudeScores(w), 0.0, 8,
                      core::defaultCandidates(8)); // Fully dense: 8:8.
    const auto bytes = format::serializeDdc(w, res.mask, res.meta);

    // Locate the info table via the v2 section map (header and group
    // bases carry CRC32 fields, so offsets are layout-derived).
    const auto layout = format::ddcLayout(bytes);
    ASSERT_TRUE(layout.ok());
    const size_t info_at = layout->infoAt;
    const uint16_t e0 = static_cast<uint16_t>(
        bytes[info_at] | (bytes[info_at + 1] << 8));
    const uint16_t e1 = static_cast<uint16_t>(
        bytes[info_at + 2] | (bytes[info_at + 3] << 8));
    EXPECT_EQ(e0 & 0x8000, 0);      // Reduction dim.
    EXPECT_EQ((e0 >> 12) & 7, 0);   // Ladder index 0 (N = 8).
    EXPECT_EQ(e0 & 0x0fff, 0);      // First block at offset 0.
    EXPECT_EQ(e1 & 0x0fff, 64u);    // Second block after 64 elements.
}

TEST(SerializeDdc, RejectsInvalidMask)
{
    Fixture f(6);
    core::Mask bad = f.tbs.mask;
    // Overfill one group beyond its N.
    for (size_t c = 0; c < 8; ++c)
        bad.at(0, c) = 1;
    if (f.tbs.meta.block(0, 0).n < 8) {
        EXPECT_THROW(format::serializeDdc(f.w, bad, f.tbs.meta),
                     util::FatalError);
    }
}

TEST(DeserializeDdc, RejectsCorruption)
{
    Fixture f(7);
    auto bytes = format::serializeDdc(f.w, f.tbs.mask, f.tbs.meta);

    // Bad magic.
    auto bad_magic = bytes;
    bad_magic[0] ^= 0xff;
    EXPECT_THROW(format::deserializeDdc(bad_magic), util::FatalError);

    // Truncation.
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + 16);
    EXPECT_THROW(format::deserializeDdc(truncated), util::FatalError);

    // Corrupt an info-table offset: the section CRC catches the raw
    // flip; with the CRC fixed up, the offset chain check trips.
    const auto layout = format::ddcLayout(bytes);
    ASSERT_TRUE(layout.ok());
    auto bad_info = bytes;
    bad_info[layout->infoAt + 2] ^= 0x01; // Second entry's offset bit 0.
    EXPECT_THROW(format::deserializeDdc(bad_info), util::FatalError);
    ASSERT_TRUE(format::ddcFixupCrcs(bad_info));
    EXPECT_THROW(format::deserializeDdc(bad_info), util::FatalError);
}

TEST(DeserializeDdc, TryVariantNeverThrows)
{
    Fixture f(8);
    const auto bytes = format::serializeDdc(f.w, f.tbs.mask, f.tbs.meta);
    const auto good = format::tryDeserializeDdc(bytes);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good->mask, f.tbs.mask);

    auto bad = bytes;
    bad[1] ^= 0x40;
    const auto err = format::tryDeserializeDdc(bad);
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.error().kind, format::DecodeErrorKind::BadMagic);
}

TEST(SerializeDdc, NegativeZeroSurvives)
{
    // -0.0 encodes to fp16 0x8000 (non-zero bits), so it stays a kept
    // position after the round trip.
    Matrix w(8, 8);
    for (size_t i = 0; i < w.size(); ++i)
        w.data()[i] = 1.0f;
    w.at(0, 0) = -0.0f;
    const auto res = core::tbsMask(core::magnitudeScores(w), 0.0, 8,
                                   core::defaultCandidates(8));
    const auto parsed = format::deserializeDdc(
        format::serializeDdc(w, res.mask, res.meta));
    EXPECT_EQ(parsed.mask.at(0, 0), 1);
    EXPECT_TRUE(std::signbit(parsed.matrix.at(0, 0)));
}

} // namespace
