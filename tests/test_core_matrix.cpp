/**
 * @file
 * Unit tests for the matrix/mask containers and the reference GEMM.
 */

#include <gtest/gtest.h>

#include "core/matrix.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace {

using namespace tbstc::core;
using tbstc::util::PanicError;
using tbstc::util::Rng;

TEST(Matrix, ConstructAndIndex)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    m.at(1, 2) = 5.0f;
    EXPECT_EQ(m.at(1, 2), 5.0f);
    EXPECT_EQ(m.at(0, 0), 0.0f);
}

TEST(Matrix, FromDataValidatesSize)
{
    EXPECT_THROW(Matrix(2, 2, {1.0f, 2.0f}), PanicError);
    Matrix m(1, 2, {1.0f, 2.0f});
    EXPECT_EQ(m.at(0, 1), 2.0f);
}

TEST(Matrix, Transpose)
{
    Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.at(2, 1), 6.0f);
    EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, Norms)
{
    Matrix m(1, 2, {3.0f, -4.0f});
    EXPECT_DOUBLE_EQ(m.absSum(), 7.0);
    EXPECT_DOUBLE_EQ(m.frobenius(), 5.0);
}

TEST(Matrix, MatmulKnown)
{
    Matrix a(2, 2, {1, 2, 3, 4});
    Matrix b(2, 2, {5, 6, 7, 8});
    const Matrix d = matmul(a, b);
    EXPECT_EQ(d.at(0, 0), 19.0f);
    EXPECT_EQ(d.at(0, 1), 22.0f);
    EXPECT_EQ(d.at(1, 0), 43.0f);
    EXPECT_EQ(d.at(1, 1), 50.0f);
}

TEST(Matrix, MatmulWithBias)
{
    Matrix a(1, 1, {2.0f});
    Matrix b(1, 1, {3.0f});
    Matrix c(1, 1, {10.0f});
    EXPECT_EQ(matmul(a, b, &c).at(0, 0), 16.0f);
}

TEST(Matrix, MatmulShapeChecked)
{
    Matrix a(2, 3);
    Matrix b(2, 2);
    EXPECT_THROW(matmul(a, b), PanicError);
}

TEST(Matrix, MatmulSkipsZerosCorrectly)
{
    // The zero-skip fast path must not change results.
    Rng rng(1);
    Matrix a(4, 5);
    Matrix b(5, 3);
    for (auto &v : a.data())
        v = rng.uniform() < 0.5 ? 0.0f
                                : static_cast<float>(rng.gaussian());
    for (auto &v : b.data())
        v = static_cast<float>(rng.gaussian());
    const Matrix d = matmul(a, b);
    for (size_t i = 0; i < 4; ++i) {
        for (size_t j = 0; j < 3; ++j) {
            double ref = 0.0;
            for (size_t k = 0; k < 5; ++k)
                ref += static_cast<double>(a.at(i, k)) * b.at(k, j);
            EXPECT_NEAR(d.at(i, j), ref, 1e-4);
        }
    }
}

TEST(Mask, NnzAndSparsity)
{
    Mask m(2, 4);
    EXPECT_EQ(m.nnz(), 0u);
    EXPECT_DOUBLE_EQ(m.sparsity(), 1.0);
    m.at(0, 0) = 1;
    m.at(1, 3) = 1;
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_DOUBLE_EQ(m.sparsity(), 0.75);
}

TEST(Mask, Overlap)
{
    Mask a(1, 4);
    Mask b(1, 4);
    a.at(0, 0) = a.at(0, 1) = 1;
    b.at(0, 1) = b.at(0, 2) = 1;
    EXPECT_DOUBLE_EQ(a.overlap(b), 0.5);
    EXPECT_DOUBLE_EQ(b.overlap(a), 0.5);
}

TEST(Mask, OverlapWithEmptyIsOne)
{
    Mask a(1, 4);
    Mask b(1, 4);
    a.at(0, 0) = 1;
    EXPECT_DOUBLE_EQ(a.overlap(b), 1.0);
}

TEST(Mask, TransposeRoundTrip)
{
    Mask m(2, 3);
    m.at(0, 2) = 1;
    const Mask t = m.transposed();
    EXPECT_EQ(t.at(2, 0), 1);
    EXPECT_EQ(t.transposed(), m);
}

TEST(ApplyMask, ZeroesDropped)
{
    Matrix w(1, 3, {1.0f, 2.0f, 3.0f});
    Mask m(1, 3);
    m.at(0, 1) = 1;
    const Matrix out = applyMask(w, m);
    EXPECT_EQ(out.at(0, 0), 0.0f);
    EXPECT_EQ(out.at(0, 1), 2.0f);
    EXPECT_EQ(out.at(0, 2), 0.0f);
}

TEST(MaxAbsDiff, Computes)
{
    Matrix a(1, 2, {1.0f, 5.0f});
    Matrix b(1, 2, {1.5f, 4.0f});
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 1.0);
}

} // namespace
