/**
 * @file
 * Tests for the event-driven cycle simulator and its agreement with
 * the analytic pipeline model.
 */

#include <gtest/gtest.h>

#include "sim/cyclesim.hpp"
#include "sim/pipeline.hpp"
#include "workload/profile_builder.hpp"

namespace {

using namespace tbstc;
using namespace tbstc::sim;

LayerProfile
tbsProfile(uint64_t x, uint64_t y, uint64_t nb, double sparsity,
           uint64_t seed = 42)
{
    workload::ProfileSpec spec;
    spec.shape = {"cyclesim-probe", x, y, nb};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = sparsity;
    spec.fmt = format::StorageFormat::DDC;
    spec.seed = seed;
    return workload::buildLayerProfile(spec);
}

TEST(CycleSim, RunsAndAccountsOccupancy)
{
    const auto layer = tbsProfile(256, 256, 64, 0.5);
    const auto res = simulateLayerEventDriven(layer, ArchConfig{});
    EXPECT_GT(res.cycles, 0.0);
    EXPECT_GT(res.tiles, 1u);
    EXPECT_LE(res.computeBusy, res.cycles + 1e-9);
    EXPECT_LE(res.busBusy, res.cycles + 1e-9);
    EXPECT_GT(res.computeOccupancy(), 0.0);
    EXPECT_LE(res.busOccupancy(), 1.0 + 1e-9);
}

TEST(CycleSim, AgreesWithAnalyticModelComputeBound)
{
    // Large nb: compute dominates; the two models must agree closely.
    const auto layer = tbsProfile(512, 512, 512, 0.5);
    const ArchConfig cfg;
    const auto analytic = simulateLayer(layer, cfg);
    const auto event = simulateLayerEventDriven(layer, cfg);
    EXPECT_NEAR(event.cycles / analytic.cycles, 1.0, 0.15);
}

TEST(CycleSim, AgreesWithAnalyticModelMemoryBound)
{
    // Tiny nb: the bus dominates; agreement within the pipeline-fill
    // margin.
    const auto layer = tbsProfile(1024, 1024, 8, 0.5);
    const ArchConfig cfg;
    const auto analytic = simulateLayer(layer, cfg);
    const auto event = simulateLayerEventDriven(layer, cfg);
    EXPECT_NEAR(event.cycles / analytic.cycles, 1.0, 0.30);
}

TEST(CycleSim, PreservesSparsityOrdering)
{
    const ArchConfig cfg;
    double prev = 1e30;
    for (double sp : {0.25, 0.5, 0.75, 0.875}) {
        const auto layer = tbsProfile(512, 512, 128, sp);
        const auto res = simulateLayerEventDriven(layer, cfg);
        EXPECT_LT(res.cycles, prev) << sp;
        prev = res.cycles;
    }
}

TEST(CycleSim, PreservesBaselineOrdering)
{
    // Naive scheduling must not be faster than aware, in both models.
    const auto layer = tbsProfile(512, 512, 128, 0.625);
    ArchConfig aware;
    ArchConfig naive;
    naive.interSched = InterSched::Naive;
    naive.intraMap = IntraMap::Naive;
    const auto ev_aware = simulateLayerEventDriven(layer, aware);
    const auto ev_naive = simulateLayerEventDriven(layer, naive);
    EXPECT_GT(ev_naive.cycles, ev_aware.cycles);

    const auto an_aware = simulateLayer(layer, aware);
    const auto an_naive = simulateLayer(layer, naive);
    EXPECT_GT(an_naive.cycles / an_aware.cycles, 1.0);
}

TEST(CycleSim, TileSizeInsensitive)
{
    // Halving the tile granularity must not change the result much
    // (it only refines pipeline overlap).
    const auto layer = tbsProfile(512, 512, 128, 0.5);
    CycleSimOptions coarse;
    coarse.tileBlocks = 1024;
    CycleSimOptions fine;
    fine.tileBlocks = 256;
    const auto c = simulateLayerEventDriven(layer, ArchConfig{}, coarse);
    const auto f = simulateLayerEventDriven(layer, ArchConfig{}, fine);
    EXPECT_NEAR(f.cycles / c.cycles, 1.0, 0.15);
}

TEST(CycleSim, Int8SpeedsUpCompute)
{
    const auto layer = tbsProfile(512, 512, 256, 0.5);
    CycleSimOptions fp16;
    CycleSimOptions int8;
    int8.int8Weights = true;
    const auto a = simulateLayerEventDriven(layer, ArchConfig{}, fp16);
    const auto b = simulateLayerEventDriven(layer, ArchConfig{}, int8);
    EXPECT_LT(b.cycles, a.cycles);
}

TEST(CycleSim, BandwidthBoundScalesWithBandwidth)
{
    const auto layer = tbsProfile(1024, 1024, 8, 0.5);
    ArchConfig slow;
    slow.dramGbps = 32.0;
    ArchConfig fast;
    fast.dramGbps = 128.0;
    const auto s = simulateLayerEventDriven(layer, slow);
    const auto f = simulateLayerEventDriven(layer, fast);
    EXPECT_GT(s.cycles / f.cycles, 2.0);
}

} // namespace
