/**
 * @file
 * Tests for the accelerator facade and baseline configurations.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hpp"

namespace {

using namespace tbstc::accel;
using tbstc::core::Pattern;
using tbstc::format::StorageFormat;
using tbstc::sim::RunStats;
using tbstc::workload::GemmShape;

RunRequest
request(double sparsity, uint64_t x = 512, uint64_t y = 512,
        uint64_t nb = 256)
{
    RunRequest req;
    req.shape = GemmShape{"test", x, y, nb};
    req.sparsity = sparsity;
    return req;
}

TEST(Accel, NamesAndMappings)
{
    EXPECT_EQ(accelName(AccelKind::TbStc), "TB-STC");
    EXPECT_EQ(accelPattern(AccelKind::STC), Pattern::TS);
    EXPECT_EQ(accelPattern(AccelKind::HighLight), Pattern::RSH);
    EXPECT_EQ(accelFormat(AccelKind::RmStc), StorageFormat::Bitmap);
    EXPECT_EQ(accelFormat(AccelKind::TbStc), StorageFormat::DDC);
    EXPECT_TRUE(supportsIndependentDim(AccelKind::TbStc));
    EXPECT_FALSE(supportsIndependentDim(AccelKind::Vegeta));
}

TEST(Accel, SparseBeatsDenseAtHighSparsity)
{
    const RunStats tc = runLayer(AccelKind::TC, request(0.75));
    const RunStats tb = runLayer(AccelKind::TbStc, request(0.75));
    EXPECT_LT(tb.cycles, tc.cycles);
    EXPECT_LT(tb.edp, tc.edp);
}

TEST(Accel, StcNearHalfOfDense)
{
    // 4:8 halves both compute and A traffic in a compute-bound layer.
    const RunStats tc = runLayer(AccelKind::TC, request(0.5));
    const RunStats stc = runLayer(AccelKind::STC, request(0.5));
    const double speedup = tc.cycles / stc.cycles;
    EXPECT_GT(speedup, 1.4);
    EXPECT_LT(speedup, 2.1);
}

TEST(Accel, StcIgnoresRequestedSparsity)
{
    // STC's datapath is hard-wired 4:8: more sparsity must not help.
    const RunStats s50 = runLayer(AccelKind::STC, request(0.5));
    const RunStats s80 = runLayer(AccelKind::STC, request(0.8));
    EXPECT_NEAR(s50.cycles, s80.cycles, s50.cycles * 0.01);
}

TEST(Accel, TbStcBeatsStcAtHighSparsity)
{
    const RunStats stc = runLayer(AccelKind::STC, request(0.75));
    const RunStats tb = runLayer(AccelKind::TbStc, request(0.75));
    EXPECT_GT(stc.cycles / tb.cycles, 1.2);
}

TEST(Accel, TbStcBetterEdpThanRmStcAtSimilarSpeed)
{
    // Paper Sec. VII-C1: speedups are close (~1.06x) but unstructured
    // hardware burns more energy (~1.75x EDP).
    const RunStats rm = runLayer(AccelKind::RmStc, request(0.75));
    const RunStats tb = runLayer(AccelKind::TbStc, request(0.75));
    const double speedup = rm.cycles / tb.cycles;
    EXPECT_GT(speedup, 0.85);
    EXPECT_LT(speedup, 1.45);
    EXPECT_GT(rm.edp / tb.edp, 1.3);
}

TEST(Accel, TbStcBeatsRowWiseBaselines)
{
    const RunStats veg = runLayer(AccelKind::Vegeta, request(0.75));
    const RunStats hl = runLayer(AccelKind::HighLight, request(0.75));
    const RunStats tb = runLayer(AccelKind::TbStc, request(0.75));
    EXPECT_GT(veg.cycles / tb.cycles, 1.05);
    EXPECT_GT(hl.cycles / tb.cycles, 1.0);
    // HighLight's format is better than VEGETA's padded SDC.
    EXPECT_LE(hl.cycles, veg.cycles * 1.02);
}

TEST(Accel, SgcnWinsOnlyAtExtremeSparsity)
{
    // Paper Fig. 15(d): SGCN overtakes at ~95%, TB-STC wins in the
    // 30-90% range.
    const RunStats tb_mid = runLayer(AccelKind::Sgcn, request(0.5));
    const RunStats tb_ref = runLayer(AccelKind::TbStc, request(0.5));
    EXPECT_GT(tb_mid.cycles, tb_ref.cycles);

    const RunStats sg_hi = runLayer(AccelKind::Sgcn, request(0.95));
    const RunStats tb_hi = runLayer(AccelKind::TbStc, request(0.95));
    EXPECT_LT(sg_hi.cycles, tb_hi.cycles);
}

TEST(Accel, PatternOverrideDensifiesOnBaselines)
{
    // Running the TBS model on VEGETA (Fig. 16(a)) must cost more
    // than on TB-STC.
    RunRequest req = request(0.75);
    req.patternOverride = Pattern::TBS;
    const RunStats on_vegeta = runLayer(AccelKind::Vegeta, req);
    const RunStats on_tbstc = runLayer(AccelKind::TbStc, req);
    EXPECT_GT(on_vegeta.cycles / on_tbstc.cycles, 1.2);
}

TEST(Accel, ConfigOverrideApplies)
{
    RunRequest req = request(0.75);
    auto cfg = accelConfig(AccelKind::TbStc);
    cfg.interSched = tbstc::sim::InterSched::Naive;
    cfg.intraMap = tbstc::sim::IntraMap::Naive;
    req.configOverride = cfg;
    const RunStats naive = runLayer(AccelKind::TbStc, req);
    const RunStats tuned =
        runLayer(AccelKind::TbStc, request(0.75));
    EXPECT_GT(naive.cycles, tuned.cycles);
    EXPECT_GT(tuned.schedUtilisation, naive.schedUtilisation);
}

TEST(Accel, RunModelAccumulatesAllLayers)
{
    const RunStats one = runLayer(
        AccelKind::TbStc,
        [] {
            RunRequest r;
            r.shape = tbstc::workload::modelLayers(
                tbstc::workload::ModelId::BertBase, 128)[0];
            r.sparsity = 0.5;
            return r;
        }());
    const RunStats model = runModel(
        AccelKind::TbStc, tbstc::workload::ModelId::BertBase, 0.5, 128);
    EXPECT_GT(model.cycles, one.cycles * 10);
    EXPECT_GT(model.energy.totalJ(), 0.0);
}

TEST(Accel, Int8SpeedsUpMemoryBoundLayers)
{
    RunRequest fp = request(0.5, 2048, 2048, 32);
    RunRequest q = fp;
    q.int8Weights = true;
    const RunStats sfp = runLayer(AccelKind::TbStc, fp);
    const RunStats sq = runLayer(AccelKind::TbStc, q);
    EXPECT_LT(sq.cycles, sfp.cycles);
}

} // namespace
