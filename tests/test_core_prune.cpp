/**
 * @file
 * Unit tests for pruning criteria and OBS weight compensation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/linalg.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "util/rng.hpp"

namespace {

using namespace tbstc::core;
using tbstc::util::Rng;

Matrix
randomMatrix(size_t r, size_t c, Rng &rng, double scale = 1.0)
{
    Matrix m(r, c);
    for (auto &v : m.data())
        v = static_cast<float>(rng.gaussian() * scale);
    return m;
}

TEST(Criteria, MagnitudeIsAbs)
{
    Matrix w(1, 3, {-2.0f, 0.5f, 0.0f});
    const Matrix s = magnitudeScores(w);
    EXPECT_EQ(s.at(0, 0), 2.0f);
    EXPECT_EQ(s.at(0, 1), 0.5f);
    EXPECT_EQ(s.at(0, 2), 0.0f);
}

TEST(Criteria, WandaWeighsByActivationNorm)
{
    Matrix w(1, 2, {1.0f, 1.0f});
    const std::vector<float> norms{2.0f, 10.0f};
    const Matrix s = wandaScores(w, norms);
    EXPECT_LT(s.at(0, 0), s.at(0, 1));
    EXPECT_EQ(s.at(0, 1), 10.0f);
}

TEST(Criteria, ActivationNorms)
{
    Matrix x(2, 2, {3.0f, 0.0f, 4.0f, 2.0f});
    const auto norms = activationNorms(x);
    EXPECT_NEAR(norms[0], 5.0f, 1e-5);
    EXPECT_NEAR(norms[1], 2.0f, 1e-5);
}

TEST(Criteria, SparseGptPenalizesLowCurvatureColumns)
{
    // Column with larger H^-1 diagonal (less-constrained weight)
    // scores lower at equal magnitude.
    Matrix w(1, 2, {1.0f, 1.0f});
    Matrix hinv(2, 2, {0.1f, 0.0f, 0.0f, 10.0f});
    const Matrix s = sparseGptScores(w, hinv);
    EXPECT_GT(s.at(0, 0), s.at(0, 1));
}

TEST(Criteria, DispatchesAllFamilies)
{
    Rng rng(7);
    const Matrix w = randomMatrix(8, 16, rng);
    const Matrix acts = randomMatrix(64, 16, rng);
    for (Criterion c : {Criterion::Magnitude, Criterion::Wanda,
                        Criterion::SparseGpt}) {
        const Matrix s = criterionScores(c, w, acts);
        EXPECT_EQ(s.rows(), 8u);
        EXPECT_EQ(s.cols(), 16u);
        for (float v : s.data())
            EXPECT_GE(v, 0.0f);
    }
}

TEST(CriterionName, Names)
{
    EXPECT_EQ(criterionName(Criterion::Magnitude), "Magnitude");
    EXPECT_EQ(criterionName(Criterion::Wanda), "Wanda");
    EXPECT_EQ(criterionName(Criterion::SparseGpt), "SparseGPT");
}

/**
 * The OBS compensation must reduce the layer's output reconstruction
 * error ||X W^T - X W_pruned^T||_F versus plain magnitude zeroing —
 * that is SparseGPT's entire point.
 */
TEST(ObsCompensate, ReducesReconstructionError)
{
    Rng rng(11);
    const size_t in = 24;
    const size_t out = 16;
    const Matrix w = randomMatrix(out, in, rng);
    // Correlated activations: OBS compensation works by shifting a
    // pruned weight's contribution onto correlated features, so the
    // calibration data must have feature correlation (as real layer
    // inputs do). Latent factors + small noise provide it.
    const Matrix z = randomMatrix(128, 8, rng);
    const Matrix mix = randomMatrix(8, in, rng, 0.5);
    Matrix x = matmul(z, mix);
    for (auto &v : x.data())
        v += static_cast<float>(rng.gaussian() * 0.05);
    const Matrix h = gramFromActivations(x);
    const Matrix hinv = spdInverse(h);

    const Matrix scores = sparseGptScores(w, hinv);
    const Mask mask = usMask(scores, 0.5);

    // Plain zeroing.
    const Matrix w_zero = applyMask(w, mask);
    // OBS-compensated.
    Matrix w_obs = w;
    obsCompensate(w_obs, mask, choleskyUpper(hinv));

    const Matrix y_ref = matmul(x, w.transposed());
    const Matrix y_zero = matmul(x, w_zero.transposed());
    const Matrix y_obs = matmul(x, w_obs.transposed());

    double err_zero = 0.0;
    double err_obs = 0.0;
    for (size_t i = 0; i < y_ref.size(); ++i) {
        const double dz = y_ref.data()[i] - y_zero.data()[i];
        const double dobs = y_ref.data()[i] - y_obs.data()[i];
        err_zero += dz * dz;
        err_obs += dobs * dobs;
    }
    EXPECT_LT(err_obs, err_zero * 0.9);
}

TEST(ObsCompensate, RespectsMask)
{
    Rng rng(13);
    const Matrix w0 = randomMatrix(8, 16, rng);
    const Matrix x = randomMatrix(64, 16, rng);
    const Matrix hinv = spdInverse(gramFromActivations(x));
    const Mask mask = usMask(magnitudeScores(w0), 0.5);
    Matrix w = w0;
    obsCompensate(w, mask, choleskyUpper(hinv));
    for (size_t r = 0; r < w.rows(); ++r)
        for (size_t c = 0; c < w.cols(); ++c)
            if (!mask.at(r, c))
                EXPECT_EQ(w.at(r, c), 0.0f);
}

TEST(ObsCompensate, NoOpOnFullMask)
{
    Rng rng(17);
    const Matrix w0 = randomMatrix(4, 8, rng);
    const Matrix x = randomMatrix(32, 8, rng);
    const Matrix hinv = spdInverse(gramFromActivations(x));
    Mask full(4, 8);
    for (size_t r = 0; r < 4; ++r)
        for (size_t c = 0; c < 8; ++c)
            full.at(r, c) = 1;
    Matrix w = w0;
    obsCompensate(w, full, choleskyUpper(hinv));
    EXPECT_EQ(w, w0);
}

} // namespace
