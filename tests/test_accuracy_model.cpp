/**
 * @file
 * Tests for the calibrated accuracy proxy used by hardware benches.
 */

#include <gtest/gtest.h>

#include "workload/accuracy_model.hpp"

namespace {

using namespace tbstc::workload;
using tbstc::core::Pattern;

TEST(AccuracyModel, SimilarityOrdering)
{
    for (double s : {0.5, 0.75}) {
        const double ts = maskSimilarity(Pattern::TS, s, 8);
        const double tbs = maskSimilarity(Pattern::TBS, s, 8);
        EXPECT_GT(tbs, ts) << s;
        EXPECT_DOUBLE_EQ(maskSimilarity(Pattern::US, s, 8), 1.0);
    }
}

TEST(AccuracyModel, TbsSimilarityMatchesFig4b)
{
    // Paper Fig. 4(b): TBS mask similarity with US is 85.31%-91.62%.
    const double sim = maskSimilarity(Pattern::TBS, 0.75, 8);
    EXPECT_GT(sim, 0.80);
    EXPECT_LT(sim, 0.97);
}

TEST(AccuracyModel, AnchorsReproduced)
{
    // At the table sparsity the proxy must return the paper's numbers
    // for Dense/US/TBS (TS is fitted within the gap model).
    EXPECT_DOUBLE_EQ(denseAccuracy(ModelId::BertBase), 92.32);
    EXPECT_NEAR(proxyAccuracy(ModelId::BertBase, Pattern::US, 0.50),
                91.43, 1e-6);
    EXPECT_NEAR(proxyAccuracy(ModelId::BertBase, Pattern::TS, 0.50),
                90.25, 1e-6);
    EXPECT_NEAR(proxyAccuracy(ModelId::BertBase, Pattern::TBS, 0.50),
                91.38, 0.25);
    EXPECT_NEAR(proxyAccuracy(ModelId::ResNet50, Pattern::US, 0.75),
                94.93, 1e-6);
}

TEST(AccuracyModel, MonotoneInSparsity)
{
    for (Pattern p : {Pattern::US, Pattern::TS, Pattern::TBS}) {
        double prev = 101.0;
        for (double s : {0.1, 0.3, 0.5, 0.7, 0.9}) {
            const double acc = proxyAccuracy(ModelId::Opt67b, p, s);
            EXPECT_LE(acc, prev + 1e-9);
            prev = acc;
        }
    }
}

TEST(AccuracyModel, PatternOrderingAtAnchor)
{
    for (ModelId m : {ModelId::BertBase, ModelId::Opt67b,
                      ModelId::Llama27b}) {
        const double s = 0.5;
        const double us = proxyAccuracy(m, Pattern::US, s);
        const double tbs = proxyAccuracy(m, Pattern::TBS, s);
        const double rsv = proxyAccuracy(m, Pattern::RSV, s);
        const double ts = proxyAccuracy(m, Pattern::TS, s);
        EXPECT_GE(us + 1e-9, tbs);
        EXPECT_GT(tbs, ts);
        EXPECT_GE(tbs + 0.6, rsv); // RSV may tie TBS within noise.
        EXPECT_GE(rsv + 0.6, ts);
    }
}

TEST(AccuracyModel, DenseUnaffectedBySparsity)
{
    EXPECT_DOUBLE_EQ(
        proxyAccuracy(ModelId::ResNet50, Pattern::Dense, 0.9),
        95.04);
}

TEST(IsoAccuracy, InvertsTheProxy)
{
    const double target =
        proxyAccuracy(ModelId::BertBase, Pattern::TBS, 0.6);
    const double s =
        isoAccuracySparsity(ModelId::BertBase, Pattern::TBS, target);
    EXPECT_NEAR(s, 0.6, 0.02);
}

TEST(IsoAccuracy, BetterPatternsTolerateMoreSparsity)
{
    // At the accuracy US reaches at 50%, TBS must sustain a higher
    // sparsity than TS — the very lever of paper Fig. 13.
    const double target =
        proxyAccuracy(ModelId::Opt67b, Pattern::US, 0.45);
    const double s_tbs =
        isoAccuracySparsity(ModelId::Opt67b, Pattern::TBS, target);
    const double s_ts =
        isoAccuracySparsity(ModelId::Opt67b, Pattern::TS, target);
    EXPECT_GT(s_tbs, s_ts);
}

TEST(IsoAccuracy, Saturates)
{
    EXPECT_DOUBLE_EQ(
        isoAccuracySparsity(ModelId::BertBase, Pattern::TBS, 0.0),
        0.95);
    EXPECT_DOUBLE_EQ(
        isoAccuracySparsity(ModelId::BertBase, Pattern::TBS, 99.9),
        0.0);
}

} // namespace
