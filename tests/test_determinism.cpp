/**
 * @file
 * Golden-value regression tests: the library promises bit-identical
 * reproduction of every experiment, so pin exact values of the
 * deterministic primitives. A failure here means results published
 * from an earlier build are no longer reproducible — treat any golden
 * update as a breaking change.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "core/maskspace.hpp"
#include "core/prune.hpp"
#include "sim/pipeline.hpp"
#include "core/sparsify.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "workload/accuracy_model.hpp"
#include "workload/profile_builder.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc;

/** FNV-1a over a byte view. */
template <typename T>
uint64_t
hashBytes(std::span<const T> data)
{
    uint64_t h = 0xcbf29ce484222325ull;
    const auto *bytes = reinterpret_cast<const uint8_t *>(data.data());
    for (size_t i = 0; i < data.size() * sizeof(T); ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

TEST(Golden, RngStream)
{
    // xoshiro256** seeded through SplitMix64: platform-independent.
    util::Rng rng(42);
    EXPECT_EQ(rng.next(), 0x15780b2e0c2ec716ull);
    EXPECT_EQ(rng.next(), 0x6104d9866d113a7eull);
    rng = util::Rng(0);
    uint64_t last = 0;
    for (int i = 0; i < 1000; ++i)
        last = rng.next();
    EXPECT_EQ(last, 0x7aac8c483a2edd2full);
}

TEST(Golden, SynthWeightsHash)
{
    const auto w = workload::synthWeights({"golden", 64, 64, 1}, 7);
    EXPECT_EQ(hashBytes(std::span<const float>(w.data())),
              0x763a851695fbf636ull);
}

TEST(Golden, TbsMaskHash)
{
    const auto w = workload::synthWeights({"golden", 64, 64, 1}, 7);
    const auto res = core::tbsMask(core::magnitudeScores(w), 0.75, 8,
                                   core::defaultCandidates(8));
    const auto bytes = res.mask.toBytes();
    EXPECT_EQ(hashBytes(std::span<const uint8_t>(bytes)),
              0x9bd674c42093ae19ull);
    EXPECT_EQ(res.mask.nnz(), 1024u);
}

TEST(Golden, SimulatedCycles)
{
    workload::ProfileSpec spec;
    spec.shape = {"golden-sim", 256, 256, 64};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.5;
    spec.fmt = format::StorageFormat::DDC;
    const auto profile = workload::buildLayerProfile(spec);
    const auto stats = sim::simulateLayer(profile, sim::ArchConfig{});
    // Cycle counts are exact integers in double form.
    EXPECT_EQ(stats.cycles, stats.cycles); // NaN guard.
    EXPECT_EQ(static_cast<long long>(stats.cycles),
              static_cast<long long>(
                  sim::simulateLayer(profile, sim::ArchConfig{})
                      .cycles));
}

TEST(Golden, MaskSimilarityStable)
{
    const double a = workload::maskSimilarity(core::Pattern::TBS, 0.75, 8);
    const double b = workload::maskSimilarity(core::Pattern::TBS, 0.75, 8);
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0.80);
}

TEST(Golden, MaskSimilarityConcurrentMatchesSerial)
{
    // fig13's grid calls proxyAccuracy -> maskSimilarity from pool
    // workers, so the memo cache sees concurrent misses on shared and
    // distinct keys. Run the parallel pass first on a fresh seed (cold
    // cache), then compare against serial lookups.
    constexpr uint64_t kSeed = 0xf13;
    const std::vector<double> sparsities = {0.45, 0.55, 0.65, 0.75};
    const size_t jobs = sparsities.size() * 4; // 4 workers per key.
    util::ThreadScope scope(8);
    const auto got = util::parallelMap<double>(jobs, [&](size_t i) {
        return workload::maskSimilarity(
            core::Pattern::TBS, sparsities[i % sparsities.size()], 8,
            kSeed);
    });
    for (size_t i = 0; i < jobs; ++i)
        EXPECT_EQ(got[i],
                  workload::maskSimilarity(
                      core::Pattern::TBS,
                      sparsities[i % sparsities.size()], 8, kSeed))
            << "job=" << i;
}

TEST(Golden, TbsMaskBitIdenticalAcrossThreadCounts)
{
    // The block-wise sparsifier fans blocks out over a pool; its
    // output must match the pinned serial golden at any worker count.
    const auto w = workload::synthWeights({"golden", 64, 64, 1}, 7);
    const auto scores = core::magnitudeScores(w);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        util::ThreadScope scope(threads);
        const auto res =
            core::tbsMask(scores, 0.75, 8, core::defaultCandidates(8));
        const auto bytes = res.mask.toBytes();
        EXPECT_EQ(hashBytes(std::span<const uint8_t>(bytes)),
                  0x9bd674c42093ae19ull)
            << "threads=" << threads;
        EXPECT_EQ(res.mask.nnz(), 1024u);
    }
}

TEST(Golden, MaskSpaceCountBitIdenticalAcrossThreadCounts)
{
    util::ThreadScope serial(1);
    const uint64_t golden = core::bruteForceTbsBlockMasks(4);
    for (size_t threads : {size_t{2}, size_t{8}}) {
        util::ThreadScope scope(threads);
        EXPECT_EQ(core::bruteForceTbsBlockMasks(4), golden)
            << "threads=" << threads;
    }
}

TEST(Golden, LayerSweepBitIdenticalAcrossThreadCounts)
{
    // A full layer sweep (profile build + analytic sim, several
    // patterns): float cycle/energy totals must agree to the last bit
    // between serial and parallel execution.
    const auto sweep = [] {
        std::vector<double> out;
        for (const core::Pattern p :
             {core::Pattern::US, core::Pattern::TS, core::Pattern::TBS})
            for (const double sp : {0.5, 0.75}) {
                workload::ProfileSpec spec;
                spec.shape = {"sweep", 128, 128, 32};
                spec.pattern = p;
                spec.sparsity = sp;
                spec.fmt = format::StorageFormat::DDC;
                const auto profile = workload::buildLayerProfile(spec);
                const auto stats =
                    sim::simulateLayer(profile, sim::ArchConfig{});
                out.push_back(stats.cycles);
                out.push_back(stats.energy.totalJ());
                out.push_back(stats.edp);
            }
        return out;
    };
    util::ThreadScope serial(1);
    const auto golden = sweep();
    for (size_t threads : {size_t{2}, size_t{8}}) {
        util::ThreadScope scope(threads);
        const auto got = sweep();
        ASSERT_EQ(got.size(), golden.size());
        for (size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], golden[i])
                << "threads=" << threads << " slot=" << i;
    }
}

TEST(Golden, ModelRunBitIdenticalAcrossThreadCounts)
{
    // runModel fans per-layer simulations out and folds RunStats in
    // the serial accumulation order; whole-model totals are exact.
    util::ThreadScope serial(1);
    const auto golden = accel::runModel(
        accel::AccelKind::TbStc, workload::ModelId::ResNet50, 0.75, 0);
    for (size_t threads : {size_t{2}, size_t{8}}) {
        util::ThreadScope scope(threads);
        const auto got = accel::runModel(accel::AccelKind::TbStc,
                                         workload::ModelId::ResNet50,
                                         0.75, 0);
        EXPECT_EQ(got.cycles, golden.cycles) << "threads=" << threads;
        EXPECT_EQ(got.energy.totalJ(), golden.energy.totalJ());
        EXPECT_EQ(got.edp, golden.edp);
    }
}

TEST(Golden, HostThreadsConfigForcesSerial)
{
    // cfg.hostThreads pins the host worker count for a run regardless
    // of the ambient setting — same numbers either way.
    accel::RunRequest req;
    req.shape = workload::GemmShape{"cfg-threads", 128, 128, 32};
    req.sparsity = 0.75;
    auto cfg = accel::accelConfig(accel::AccelKind::TbStc);
    cfg.hostThreads = 1;
    req.configOverride = cfg;
    const auto serial = accel::runLayer(accel::AccelKind::TbStc, req);
    util::ThreadScope scope(8);
    req.configOverride->hostThreads = 8;
    const auto parallel = accel::runLayer(accel::AccelKind::TbStc, req);
    EXPECT_EQ(serial.cycles, parallel.cycles);
    EXPECT_EQ(serial.energy.totalJ(), parallel.energy.totalJ());
}

TEST(Golden, EndToEndRunIsBitStable)
{
    // Two fresh runs of the same request agree to the last bit.
    workload::ProfileSpec spec;
    spec.shape = {"golden-e2e", 128, 128, 32};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.625;
    spec.fmt = format::StorageFormat::DDC;
    const auto p1 = workload::buildLayerProfile(spec);
    const auto p2 = workload::buildLayerProfile(spec);
    ASSERT_EQ(p1.blocks.size(), p2.blocks.size());
    for (size_t i = 0; i < p1.blocks.size(); ++i) {
        EXPECT_EQ(p1.blocks[i].nnz, p2.blocks[i].nnz);
        EXPECT_EQ(p1.blocks[i].n, p2.blocks[i].n);
    }
    EXPECT_EQ(p1.aStream.payloadBytes, p2.aStream.payloadBytes);
    const auto s1 = sim::simulateLayer(p1, sim::ArchConfig{});
    const auto s2 = sim::simulateLayer(p2, sim::ArchConfig{});
    EXPECT_EQ(s1.cycles, s2.cycles);
    EXPECT_EQ(s1.energy.totalJ(), s2.energy.totalJ());
    EXPECT_EQ(s1.edp, s2.edp);
}

} // namespace
