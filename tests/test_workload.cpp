/**
 * @file
 * Tests for the workload layer: model tables, synthesis, profiles.
 */

#include <gtest/gtest.h>

#include "workload/models.hpp"
#include "workload/profile_builder.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc::workload;
using tbstc::core::Pattern;
using tbstc::format::StorageFormat;

TEST(Models, PadTo)
{
    EXPECT_EQ(padTo(0, 8), 0u);
    EXPECT_EQ(padTo(1, 8), 8u);
    EXPECT_EQ(padTo(8, 8), 8u);
    EXPECT_EQ(padTo(11008, 8), 11008u);
}

TEST(Models, AllLayersBlockAligned)
{
    for (ModelId id : {ModelId::ResNet50, ModelId::ResNet18,
                       ModelId::BertBase, ModelId::Opt67b,
                       ModelId::Llama27b}) {
        const auto layers = modelLayers(id, 128);
        EXPECT_FALSE(layers.empty()) << modelName(id);
        for (const auto &l : layers) {
            EXPECT_EQ(l.x % 8, 0u) << l.name;
            EXPECT_EQ(l.y % 8, 0u) << l.name;
            EXPECT_GT(l.nb, 0u) << l.name;
        }
    }
}

TEST(Models, LayerCountsMatchArchitectures)
{
    // ResNet-50: 16 bottlenecks x 3 convs + 4 downsamples = 52.
    EXPECT_EQ(modelLayers(ModelId::ResNet50).size(), 52u);
    // BERT-base: 12 x 6 weight GEMMs.
    EXPECT_EQ(modelLayers(ModelId::BertBase).size(), 72u);
    // OPT-6.7B: 32 x 6.
    EXPECT_EQ(modelLayers(ModelId::Opt67b).size(), 192u);
    // Llama2-7B: 32 x 7 (gated MLP).
    EXPECT_EQ(modelLayers(ModelId::Llama27b).size(), 224u);
}

TEST(Models, BertShapes)
{
    const auto layers = modelLayers(ModelId::BertBase, 128);
    const auto &fc1 = layers[4]; // q,k,v,o,fc1,fc2 per layer.
    EXPECT_EQ(fc1.x, 3072u);
    EXPECT_EQ(fc1.y, 768u);
    EXPECT_EQ(fc1.nb, 128u);
    EXPECT_EQ(fc1.macs(), 3072.0 * 768.0 * 128.0);
}

TEST(Models, RepresentativeSubsetsNonEmpty)
{
    for (ModelId id : {ModelId::ResNet50, ModelId::BertBase,
                       ModelId::Opt67b}) {
        const auto reps = representativeLayers(id);
        EXPECT_GE(reps.size(), 2u);
        EXPECT_LE(reps.size(), 8u);
    }
}

TEST(Synth, Deterministic)
{
    const GemmShape shape{"test", 64, 64, 16};
    const auto a = synthWeights(shape, 42);
    const auto b = synthWeights(shape, 42);
    EXPECT_EQ(a, b);
    const auto c = synthWeights(shape, 43);
    EXPECT_NE(a, c);
}

TEST(Synth, NameChangesStream)
{
    const GemmShape a{"layer.a", 32, 32, 8};
    const GemmShape b{"layer.b", 32, 32, 8};
    EXPECT_NE(synthWeights(a, 42), synthWeights(b, 42));
}

TEST(Synth, RowCapApplies)
{
    const GemmShape shape{"big", 4096, 64, 8};
    const auto w = synthWeights(shape, 1, 128);
    EXPECT_EQ(w.rows(), 128u);
    EXPECT_EQ(w.cols(), 64u);
}

TEST(Synth, ActivationsNonNegative)
{
    const auto x = synthActivations(32, 16, 5);
    for (float v : x.data())
        EXPECT_GE(v, 0.0f);
}

TEST(ProfileBuilder, BlockCountsAndNnz)
{
    ProfileSpec spec;
    spec.shape = {"t", 128, 128, 64};
    spec.pattern = Pattern::TBS;
    spec.sparsity = 0.5;
    spec.fmt = StorageFormat::DDC;
    const auto profile = buildLayerProfile(spec);
    EXPECT_EQ(profile.blocks.size(), 16u * 16u);
    EXPECT_NEAR(static_cast<double>(profile.aNnz) / (128.0 * 128.0),
                0.5, 0.05);
    EXPECT_EQ(profile.sampleScale, 1.0);
    EXPECT_GT(profile.aStream.payloadBytes, 0u);
}

TEST(ProfileBuilder, SamplingScalesWork)
{
    ProfileSpec spec;
    spec.shape = {"huge", 4096, 1024, 64};
    spec.pattern = Pattern::US;
    spec.sparsity = 0.5;
    spec.fmt = StorageFormat::Bitmap;
    spec.maxElements = 256 * 1024;
    const auto profile = buildLayerProfile(spec);
    EXPECT_LT(profile.blocks.size(), 4096u / 8 * (1024u / 8));
    EXPECT_GT(profile.sampleScale, 1.0);
    // usefulMacs must reflect the *full* layer.
    const double full_density =
        profile.usefulMacs() / spec.shape.macs();
    EXPECT_NEAR(full_density, 0.5, 0.05);
}

TEST(ProfileBuilder, TbsHasIndependentBlocks)
{
    ProfileSpec spec;
    spec.shape = {"t2", 256, 256, 64};
    spec.pattern = Pattern::TBS;
    spec.sparsity = 0.5;
    spec.fmt = StorageFormat::DDC;
    const auto profile = buildLayerProfile(spec);
    size_t independent = 0;
    for (const auto &b : profile.blocks)
        independent += b.independentDim;
    EXPECT_GT(independent, 0u);
}

TEST(ProfileBuilder, DensifyRemovesIndependentBlocks)
{
    ProfileSpec spec;
    spec.shape = {"t3", 256, 256, 64};
    spec.pattern = Pattern::TBS;
    spec.sparsity = 0.5;
    spec.fmt = StorageFormat::SDC;
    spec.densifyIndependent = true;
    const auto profile = buildLayerProfile(spec);
    for (const auto &b : profile.blocks)
        EXPECT_FALSE(b.independentDim);
    // Densified blocks add extra kept elements beyond the target.
    EXPECT_GT(static_cast<double>(profile.aNnz) / (256.0 * 256.0), 0.5);
}

TEST(ProfileBuilder, DeriveMetaBoundsGroups)
{
    ProfileSpec spec;
    spec.shape = {"t4", 64, 64, 16};
    spec.pattern = Pattern::RSV;
    spec.sparsity = 0.5;
    spec.fmt = StorageFormat::SDC;
    const auto profile = buildLayerProfile(spec);
    for (const auto &b : profile.blocks) {
        EXPECT_LE(b.nnz, 64u);
        EXPECT_LE(b.n, 8u);
        EXPECT_FALSE(b.independentDim);
        EXPECT_LE(b.nonemptyRows, 8u);
    }
}

} // namespace
