/**
 * @file
 * Deterministic fault-injection harness for DDC ingestion.
 *
 * Sweeps thousands of seeded corruptions — bit flips, truncations at
 * and around every section boundary, targeted field mutations with
 * checksums fixed up, section swaps, trailing garbage — over
 * serialized ResNet/BERT-shaped layers and asserts every outcome is
 * either a byte-exact round-trip or a typed DecodeError: never a
 * crash, hang, or silently wrong matrix. Also pins the per-field
 * error taxonomy (which header/info field yields which
 * DecodeErrorKind) and rejects v1 (pre-integrity) golden streams.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "format/serialize.hpp"
#include "util/contentstore.hpp"
#include "util/faultinject.hpp"
#include "util/logging.hpp"
#include "workload/profile_builder.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc;
using core::Matrix;
using format::DecodeErrorKind;
using util::FaultInjector;

struct Layer
{
    const char *name;
    size_t rows;
    size_t cols;
    double sparsity;
};

// ResNet-conv-, BERT-attention-, and group-crossing-shaped layers.
constexpr Layer kLayers[] = {
    {"resnet-conv", 64, 64, 0.5},
    {"bert-ffn", 96, 192, 0.75},
    {"crosses-groups", 256, 256, 0.625},
};

struct Stream
{
    Matrix w;
    core::TbsResult tbs;
    std::vector<uint8_t> bytes;
    format::DdcParsed parsed;
    format::DdcLayout layout;

    explicit Stream(const Layer &l, uint64_t seed = 11)
    {
        w = workload::synthWeights({l.name, l.rows, l.cols, 1}, seed);
        tbs = core::tbsMask(core::magnitudeScores(w), l.sparsity, 8,
                            core::defaultCandidates(8));
        bytes = format::serializeDdc(w, tbs.mask, tbs.meta);
        parsed = format::deserializeDdc(bytes);
        auto lay = format::ddcLayout(bytes);
        if (!lay.ok())
            util::panic("fixture stream has no layout");
        layout = *lay;
    }
};

bool
sameParse(const format::DdcParsed &a, const format::DdcParsed &b)
{
    return a.matrix == b.matrix && a.mask == b.mask
        && a.meta.m == b.meta.m && a.meta.blockRows == b.meta.blockRows
        && a.meta.blockCols == b.meta.blockCols
        && a.meta.blocks == b.meta.blocks;
}

/**
 * The harness invariant: a corrupted stream must either decode to a
 * typed error or parse to exactly what the pristine stream parses to.
 * Returns so the sweep can count corruptions exercised.
 */
void
expectSafe(const Stream &s, const std::vector<uint8_t> &corrupted,
           size_t &cases)
{
    ++cases;
    const auto r = format::tryDeserializeDdc(corrupted);
    if (!r.ok()) {
        EXPECT_FALSE(r.error().message.empty());
        return;
    }
    EXPECT_TRUE(sameParse(*r, s.parsed))
        << "corruption accepted with a different decode";
}

/** Assert a specific taxonomy entry for a targeted corruption. */
void
expectError(const std::vector<uint8_t> &corrupted, DecodeErrorKind kind,
            const char *what)
{
    const auto r = format::tryDeserializeDdc(corrupted);
    ASSERT_FALSE(r.ok()) << what << ": corruption was accepted";
    EXPECT_EQ(r.error().kind, kind)
        << what << ": got " << format::decodeErrorName(r.error().kind)
        << " at byte " << r.error().offset << ": "
        << r.error().message;
}

/** Overwrite the little-endian u32 at @p at. */
std::vector<uint8_t>
withU32(const std::vector<uint8_t> &bytes, size_t at, uint32_t v)
{
    auto out = bytes;
    out[at] = static_cast<uint8_t>(v);
    out[at + 1] = static_cast<uint8_t>(v >> 8);
    out[at + 2] = static_cast<uint8_t>(v >> 16);
    out[at + 3] = static_cast<uint8_t>(v >> 24);
    return out;
}

/** Overwrite a u32 header field and repair every CRC. */
std::vector<uint8_t>
withU32Fixed(const std::vector<uint8_t> &bytes, size_t at, uint32_t v)
{
    auto out = withU32(bytes, at, v);
    format::ddcFixupCrcs(out); // May fail for unparseable layouts;
                               // the decode still must reject cleanly.
    return out;
}

// Fixed v2 header field offsets (the wire contract under test).
constexpr size_t kRowsAt = 4;
constexpr size_t kColsAt = 8;
constexpr size_t kMAt = 12;
constexpr size_t kGroupAt = 16;
constexpr size_t kTotalAt = 20;
constexpr size_t kLadderSizeAt = 24;

TEST(FaultSweep, ThousandsOfCorruptionsNeverCrash)
{
    size_t cases = 0;
    uint64_t seed = 1000;
    for (const Layer &layer : kLayers) {
        const Stream s(layer);
        FaultInjector fi(++seed);

        // Single- and multi-bit flips anywhere in the stream.
        for (int i = 0; i < 160; ++i)
            expectSafe(s, fi.flipBits(s.bytes, 1), cases);
        for (int i = 0; i < 80; ++i)
            expectSafe(s, fi.flipBits(s.bytes, 2 + fi.rng().below(8)),
                       cases);

        // Truncation at (and around) every section boundary, plus
        // random cuts. Every truncation must be a typed error.
        const size_t boundaries[] = {
            0, 1, 3, 4, s.layout.headerCrcAt, s.layout.groupBasesAt,
            s.layout.infoAt, s.layout.infoAt + 1, s.layout.valuesAt,
            s.layout.valuesAt + 1, s.layout.indicesAt,
            s.layout.end - 4, s.layout.end - 1};
        for (size_t b : boundaries) {
            ++cases;
            expectError(fi.truncate(s.bytes, b),
                        DecodeErrorKind::Truncated,
                        "section-boundary truncation");
        }
        for (int i = 0; i < 60; ++i) {
            auto cut = fi.truncateRandom(s.bytes);
            if (cut.size() == s.bytes.size())
                continue; // A no-op cut is not a corruption.
            ++cases;
            expectError(cut, DecodeErrorKind::Truncated,
                        "random truncation");
        }

        // Targeted byte mutations and trailing garbage.
        for (int i = 0; i < 60; ++i)
            expectSafe(s, fi.mutateRandomByte(s.bytes), cases);
        for (int i = 0; i < 20; ++i) {
            ++cases;
            expectError(fi.extend(s.bytes, 1 + fi.rng().below(16)),
                        DecodeErrorKind::PayloadOverrun,
                        "trailing garbage");
        }

        // Section swaps: exchange chunks across section boundaries.
        for (int i = 0; i < 10; ++i) {
            const size_t len = 4 + fi.rng().below(8);
            const size_t a = s.layout.groupBasesAt
                + fi.rng().below(s.layout.infoAt - s.layout.groupBasesAt
                                 - len);
            const size_t b = s.layout.valuesAt
                + fi.rng().below(s.layout.indicesAt - s.layout.valuesAt
                                 - len);
            expectSafe(s, fi.swapRanges(s.bytes, a, b, len), cases);
        }

        // Bit flips in the structural sections (header, group bases,
        // info table) with checksums repaired afterwards: exercises
        // the validators behind the CRC layer. An accepted stream
        // must be a *canonical* serialization of what was decoded —
        // never a silently wrong matrix.
        for (int i = 0; i < 80; ++i) {
            const size_t bit = fi.rng().below(s.layout.valuesAt * 8);
            auto mutated = fi.setByte(
                s.bytes, bit / 8,
                static_cast<uint8_t>(s.bytes[bit / 8]
                                     ^ (1u << (bit % 8))));
            format::ddcFixupCrcs(mutated); // False if unparseable;
                                           // decode must still reject.
            ++cases;
            const auto r = format::tryDeserializeDdc(mutated);
            if (!r.ok())
                continue; // Typed rejection.
            const auto again =
                format::serializeDdc(r->matrix, r->mask, r->meta);
            EXPECT_EQ(again, mutated)
                << "accepted post-fixup mutation is not canonical";
        }
    }
    // The acceptance bar: >= 1000 distinct corruption cases swept.
    EXPECT_GE(cases, 1000u);
}

TEST(FaultTaxonomy, HeaderFields)
{
    const Stream s(kLayers[0]);
    const auto &bytes = s.bytes;

    // Magic and version (checked before the header CRC).
    expectError(withU32(bytes, 0, 0x21434444), DecodeErrorKind::BadMagic,
                "magic");
    expectError(withU32(bytes, 0, format::kDdcMagicV1),
                DecodeErrorKind::BadVersion, "version");

    // Geometry: non-multiple rows/cols, zero/oversized/non-divisor m.
    expectError(withU32Fixed(bytes, kRowsAt, 65),
                DecodeErrorKind::GeometryOverflow, "rows");
    expectError(withU32Fixed(bytes, kColsAt, 63),
                DecodeErrorKind::GeometryOverflow, "cols");
    expectError(withU32Fixed(bytes, kMAt, 0),
                DecodeErrorKind::GeometryOverflow, "m=0");
    expectError(withU32Fixed(bytes, kMAt, 17),
                DecodeErrorKind::GeometryOverflow, "m=17");
    expectError(withU32Fixed(bytes, kMAt, 3),
                DecodeErrorKind::GeometryOverflow, "m=3");

    // A huge declared geometry must be rejected as truncation (the
    // stream cannot contain its info table), never over-allocate.
    expectError(withU32Fixed(withU32(bytes, kColsAt, 0xfffffff8u),
                             kRowsAt, 0xfffffff8u),
                DecodeErrorKind::Truncated, "allocation bomb");

    // Offset-group size.
    expectError(withU32Fixed(bytes, kGroupAt, 0),
                DecodeErrorKind::GeometryOverflow, "group=0");

    // Declared payload total: grows -> truncated; shrinks -> overrun.
    const uint32_t total = s.layout.totalValues;
    expectError(withU32Fixed(bytes, kTotalAt, total + 8),
                DecodeErrorKind::Truncated, "total+8");
    expectError(withU32Fixed(bytes, kTotalAt, total - 8),
                DecodeErrorKind::PayloadOverrun, "total-8");

    // Candidate ladder: size out of range, N > M, unsorted.
    auto bad = bytes;
    bad[kLadderSizeAt] = 0;
    expectError(bad, DecodeErrorKind::BadLadder, "ladder size 0");
    bad[kLadderSizeAt] = 9;
    expectError(bad, DecodeErrorKind::BadLadder, "ladder size 9");
    bad = bytes;
    bad[kLadderSizeAt + 1] = 200; // First N, far above M = 8.
    expectError(bad, DecodeErrorKind::BadLadder, "ladder N > M");
    if (bytes[kLadderSizeAt] >= 2) {
        bad = bytes;
        bad[kLadderSizeAt + 2] = bad[kLadderSizeAt + 1]; // Duplicate.
        expectError(bad, DecodeErrorKind::BadLadder, "ladder unsorted");
    }

    // Header CRC itself.
    auto crc = bytes;
    crc[s.layout.headerCrcAt] ^= 0xff;
    expectError(crc, DecodeErrorKind::ChecksumMismatch, "header crc");
}

TEST(FaultTaxonomy, SectionCrcsCoverEverySection)
{
    const Stream s(kLayers[0]);
    const struct
    {
        const char *name;
        size_t at; // First byte of the section.
    } sections[] = {
        {"group bases", s.layout.groupBasesAt},
        {"info table", s.layout.infoAt},
        {"values", s.layout.valuesAt},
        {"indices", s.layout.indicesAt},
    };
    for (const auto &sec : sections) {
        auto bad = s.bytes;
        bad[sec.at] ^= 0x01;
        expectError(bad, DecodeErrorKind::ChecksumMismatch, sec.name);
    }
    // The stored CRC fields themselves are covered too.
    auto bad = s.bytes;
    bad[s.layout.end - 2] ^= 0x01; // Inside the index-section CRC.
    expectError(bad, DecodeErrorKind::ChecksumMismatch, "stored crc");
}

TEST(FaultTaxonomy, InfoTableBitRanges)
{
    // Use the group-crossing layer so group bases matter.
    const Stream s(kLayers[2]);
    const size_t info_at = s.layout.infoAt;
    const size_t ladder_size = s.bytes[kLadderSizeAt];

    // Ratio field (bits 14:12) beyond the ladder.
    if (ladder_size < 8) {
        auto bad = s.bytes;
        bad[info_at + 1] = static_cast<uint8_t>(
            (bad[info_at + 1] & 0x8f) | 0x70); // Ratio = 7.
        ASSERT_TRUE(format::ddcFixupCrcs(bad));
        expectError(bad, DecodeErrorKind::InfoFieldRange, "ratio");
    }

    // Offset field (bits 11:0): break the chain on a later entry.
    auto bad = s.bytes;
    bad[info_at + 2] ^= 0x01; // Second entry, offset bit 0.
    ASSERT_TRUE(format::ddcFixupCrcs(bad));
    expectError(bad, DecodeErrorKind::OffsetInconsistent, "offset");

    // Group bases participate in the same chain.
    bad = s.bytes;
    bad[s.layout.groupBasesAt] ^= 0x01; // Base of group 0 becomes 1.
    ASSERT_TRUE(format::ddcFixupCrcs(bad));
    expectError(bad, DecodeErrorKind::OffsetInconsistent, "group base");

    // The dim bit (15) is semantic, not structural: flipping it yields
    // a *valid* stream that must decode and re-serialize canonically.
    size_t occupied = 0; // First block carrying values.
    while (s.parsed.meta.blocks[occupied].n == 0)
        ++occupied;
    bad = s.bytes;
    bad[info_at + occupied * 2 + 1] ^= 0x80;
    ASSERT_TRUE(format::ddcFixupCrcs(bad));
    const auto r = format::tryDeserializeDdc(bad);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r->matrix, s.parsed.matrix);
    EXPECT_EQ(format::serializeDdc(r->matrix, r->mask, r->meta), bad);
}

TEST(FaultGolden, V1StreamRejectedWithVersionError)
{
    // Byte-accurate v1 stream (pre-integrity layout) for a dense 8x8
    // single-block matrix: header without total/CRCs, one group base,
    // one info entry, payload count, 64 fp16 values, 3-bit indices.
    std::vector<uint8_t> v1;
    const auto u8 = [&](uint8_t v) { v1.push_back(v); };
    const auto u16 = [&](uint16_t v) {
        u8(static_cast<uint8_t>(v));
        u8(static_cast<uint8_t>(v >> 8));
    };
    const auto u32 = [&](uint32_t v) {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    };
    u32(format::kDdcMagicV1);
    u32(8);  // rows
    u32(8);  // cols
    u32(8);  // m
    u32(63); // group blocks
    u8(1);   // ladder size
    u8(8);   // ladder: N = 8
    u32(0);  // group base
    u16(0);  // info entry: dim row, ratio 0, offset 0
    u32(64); // payload count
    for (int i = 0; i < 64; ++i)
        u16(0x3c00); // fp16 1.0
    uint32_t acc = 0;
    unsigned bits = 0;
    for (int g = 0; g < 8; ++g) {
        for (uint32_t e = 0; e < 8; ++e) { // 3-bit packed indices.
            acc |= e << bits;
            bits += 3;
            while (bits >= 8) {
                u8(static_cast<uint8_t>(acc));
                acc >>= 8;
                bits -= 8;
            }
        }
    }

    expectError(v1, DecodeErrorKind::BadVersion, "v1 golden");
    const auto r = format::tryDeserializeDdc(v1);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("version 1"), std::string::npos);
    EXPECT_THROW(format::deserializeDdc(v1), util::FatalError);
}

TEST(FaultGolden, EmptyAndTinyStreams)
{
    expectError({}, DecodeErrorKind::Truncated, "empty");
    expectError({0x44}, DecodeErrorKind::Truncated, "one byte");
    expectError({0x44, 0x44, 0x43, 0x32}, DecodeErrorKind::Truncated,
                "magic only");
    expectError({0, 0, 0, 0}, DecodeErrorKind::BadMagic, "zero magic");
}

// ---------------------------------------------------------------------
// On-disk profile-cache blobs get the same treatment as DDC streams:
// any corruption must be rejected and the result recomputed, never
// trusted. The sweep drives the real end-to-end path — corrupt the
// file, invalidate the memory map, rebuild through the public API —
// and asserts the returned profile is always the uncorrupted one.
// ---------------------------------------------------------------------

std::vector<uint8_t>
readAll(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        util::panic("cannot read '{}'", path);
    std::vector<uint8_t> bytes;
    uint8_t buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    std::fclose(f);
    return bytes;
}

void
writeAll(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        util::panic("cannot write '{}'", path);
    // bytes.data() may be null when empty (truncate-to-zero faults);
    // fwrite declares its buffer nonnull, so skip the call entirely.
    if (!bytes.empty()
        && std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size())
        util::panic("short write '{}'", path);
    std::fclose(f);
}

bool
sameProfile(const sim::LayerProfile &a, const sim::LayerProfile &b)
{
    if (a.x != b.x || a.y != b.y || a.nb != b.nb || a.m != b.m
        || a.aNnz != b.aNnz || a.sampleScale != b.sampleScale
        || a.aStream.payloadBytes != b.aStream.payloadBytes
        || a.aStream.usefulBytes != b.aStream.usefulBytes
        || a.aStream.segments != b.aStream.segments
        || a.blocks.size() != b.blocks.size())
        return false;
    for (size_t i = 0; i < a.blocks.size(); ++i)
        if (a.blocks[i].nnz != b.blocks[i].nnz
            || a.blocks[i].n != b.blocks[i].n
            || a.blocks[i].independentDim != b.blocks[i].independentDim
            || a.blocks[i].nonemptyRows != b.blocks[i].nonemptyRows)
            return false;
    return true;
}

TEST(FaultSweep, CacheBlobsNeverTrusted)
{
    util::ContentStore &store = util::ContentStore::instance();
    const std::string dir = testing::TempDir() + "tbstc-fault-cache";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    store.setEnabled(true);
    store.setDiskDir(dir);
    store.clearMemory();

    workload::ProfileSpec spec;
    spec.shape = {"fault-cache", 64, 128, 16};
    spec.sparsity = 0.75;
    spec.seed = 17;

    // Cold build files the blob; the uncached result is the oracle.
    const sim::LayerProfile reference = workload::buildLayerProfile(spec);
    std::string blob_path;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        blob_path = e.path().string();
    ASSERT_FALSE(blob_path.empty()) << "cold build wrote no blob";
    const std::vector<uint8_t> pristine = readAll(blob_path);

    FaultInjector fi(2025);
    size_t cases = 0;
    size_t rejected = 0;
    const auto sweep = [&](const std::vector<uint8_t> &corrupted) {
        if (corrupted == pristine)
            return; // A no-op mutation is not a corruption.
        ++cases;
        const uint64_t rejects_before = store.stats().diskRejects;
        writeAll(blob_path, corrupted);
        store.clearMemory();
        const sim::LayerProfile rebuilt =
            workload::buildLayerProfile(spec);
        EXPECT_TRUE(sameProfile(rebuilt, reference))
            << "corrupt cache blob altered a profile";
        rejected += store.stats().diskRejects > rejects_before;
        // The rebuild refiled a valid blob; restore the pristine image
        // so each case corrupts from the same base.
        writeAll(blob_path, pristine);
    };

    for (int i = 0; i < 60; ++i)
        sweep(fi.flipBits(pristine, 1));
    for (int i = 0; i < 30; ++i)
        sweep(fi.flipBits(pristine, 2 + fi.rng().below(16)));
    // Truncations at and around the 36-byte header boundary and the
    // tail, plus random cuts.
    for (const size_t cut : {size_t{0}, size_t{1}, size_t{4}, size_t{8},
                             size_t{35}, size_t{36}, size_t{37},
                             pristine.size() - 1})
        sweep(fi.truncate(pristine, cut));
    for (int i = 0; i < 20; ++i)
        sweep(fi.truncateRandom(pristine));
    for (int i = 0; i < 30; ++i)
        sweep(fi.mutateRandomByte(pristine));
    for (int i = 0; i < 10; ++i)
        sweep(fi.extend(pristine, 1 + fi.rng().below(16)));
    // Cross-section swaps: header <-> payload.
    for (int i = 0; i < 10; ++i) {
        const size_t len = 4 + fi.rng().below(4);
        const size_t a = fi.rng().below(36 - len);
        const size_t b =
            36 + fi.rng().below(pristine.size() - 36 - len);
        sweep(fi.swapRanges(pristine, a, b, len));
    }
    // An empty and a foreign file.
    sweep({});
    sweep(std::vector<uint8_t>(pristine.size(), 0x44));

    EXPECT_GE(cases, 150u);
    // Every corruption that reached the parser was rejected (cuts that
    // only removed the file are misses, not rejects — count those out).
    EXPECT_EQ(rejected, cases);

    store.setDiskDir("");
    store.clearMemory();
    std::filesystem::remove_all(dir);
}

} // namespace
