/**
 * @file
 * Unit tests for inter-block scheduling and DVPE beat mapping.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "sim/dvpe.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace tbstc::sim;
using tbstc::util::Rng;

TEST(Scheduler, UniformCostsPerfectEitherWay)
{
    const std::vector<uint64_t> costs(64, 4);
    const auto naive = scheduleBlocks(costs, 16, InterSched::Naive, 8);
    const auto aware = scheduleBlocks(costs, 16, InterSched::Aware, 8);
    EXPECT_EQ(naive.makespan, 16u);
    EXPECT_EQ(aware.makespan, 16u);
    EXPECT_DOUBLE_EQ(naive.utilisation, 1.0);
    EXPECT_DOUBLE_EQ(aware.utilisation, 1.0);
}

TEST(Scheduler, AwareNeverWorseThanNaive)
{
    Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<uint64_t> costs(200);
        for (auto &c : costs)
            c = rng.below(9);
        const auto naive =
            scheduleBlocks(costs, 16, InterSched::Naive, 8);
        const auto aware =
            scheduleBlocks(costs, 16, InterSched::Aware, 8);
        EXPECT_LE(aware.makespan, naive.makespan);
    }
}

TEST(Scheduler, PaperFig11Example)
{
    // Blocks a..e with costs {1, 2, 1, 1, 1} on 2 PEs: naive waves
    // stall on the slowest of each pair; the aware scheduler packs the
    // light blocks into the gaps, approaching sum/P = 3.
    const std::vector<uint64_t> costs{1, 2, 1, 1, 1};
    const auto naive = scheduleBlocks(costs, 2, InterSched::Naive, 4);
    const auto aware = scheduleBlocks(costs, 2, InterSched::Aware, 4);
    EXPECT_EQ(naive.makespan, 2u + 1u + 1u); // max(1,2)+max(1,1)+1.
    EXPECT_EQ(aware.makespan, 3u);
    EXPECT_GT(aware.utilisation, naive.utilisation);
}

TEST(Scheduler, MakespanLowerBound)
{
    // Makespan can never undercut total work / PEs nor the largest
    // single block.
    Rng rng(2);
    std::vector<uint64_t> costs(128);
    for (auto &c : costs)
        c = rng.below(16) + 1;
    const uint64_t total = std::accumulate(costs.begin(), costs.end(),
                                           uint64_t{0});
    const uint64_t biggest =
        *std::max_element(costs.begin(), costs.end());
    for (auto policy : {InterSched::Naive, InterSched::Aware}) {
        const auto res = scheduleBlocks(costs, 16, policy, 8);
        EXPECT_GE(res.makespan, (total + 15) / 16);
        EXPECT_GE(res.makespan, biggest);
        EXPECT_LE(res.utilisation, 1.0);
    }
}

TEST(Scheduler, SkewedCostsShowNaivePenalty)
{
    // One heavy block per wave of light ones: naive stalls the wave.
    std::vector<uint64_t> costs;
    for (int i = 0; i < 32; ++i) {
        costs.push_back(8);
        for (int j = 0; j < 15; ++j)
            costs.push_back(1);
    }
    const auto naive = scheduleBlocks(costs, 16, InterSched::Naive, 8);
    const auto aware = scheduleBlocks(costs, 16, InterSched::Aware, 8);
    EXPECT_LT(naive.utilisation, 0.25);
    EXPECT_GT(aware.utilisation, 0.8);
}

TEST(Scheduler, EmptyStream)
{
    const auto res = scheduleBlocks({}, 16, InterSched::Aware, 8);
    EXPECT_EQ(res.makespan, 0u);
    EXPECT_DOUBLE_EQ(res.utilisation, 1.0);
}

TEST(Dvpe, PackedBeats)
{
    EXPECT_EQ(packedBeats(0, 8), 0u);
    EXPECT_EQ(packedBeats(1, 8), 1u);
    EXPECT_EQ(packedBeats(8, 8), 1u);
    EXPECT_EQ(packedBeats(9, 8), 2u);
    EXPECT_EQ(packedBeats(64, 8), 8u);
}

TEST(Dvpe, ReductionBlocksAlwaysPacked)
{
    ArchConfig cfg;
    cfg.alternateUnit = false;
    cfg.intraMap = IntraMap::Naive;
    BlockTask task{32, 4, false, 8};
    // Structured reduction-dim blocks pack regardless of the flags.
    EXPECT_EQ(blockBeats(task, cfg), 4u);
}

TEST(Dvpe, IndependentBlocksNeedAlternateUnit)
{
    BlockTask task{16, 2, true, 6}; // 16 nnz spread over 6 rows.
    ArchConfig with;
    EXPECT_EQ(blockBeats(task, with), 2u); // ceil(16/8).
    ArchConfig without;
    without.alternateUnit = false;
    EXPECT_EQ(blockBeats(task, without), 6u); // Row per beat.
    ArchConfig naive;
    naive.intraMap = IntraMap::Naive;
    EXPECT_EQ(blockBeats(task, naive), 6u);
}

TEST(Dvpe, EmptyBlockFree)
{
    EXPECT_EQ(blockBeats(BlockTask{0, 0, false, 0}, ArchConfig{}), 0u);
    EXPECT_EQ(blockBeats(BlockTask{0, 0, true, 0}, ArchConfig{}), 0u);
}

} // namespace
