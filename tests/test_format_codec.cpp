/**
 * @file
 * Unit tests for the adaptive codec unit (paper Fig. 9).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "format/codec.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace {

using namespace tbstc::format;
using tbstc::util::Rng;

/** Build a column-major storage stream for a 2:4-style block. */
std::vector<StorageElem>
columnMajorBlock(const std::vector<std::vector<uint8_t>> &cols_rows)
{
    std::vector<StorageElem> out;
    float v = 1.0f;
    for (uint8_t c = 0; c < cols_rows.size(); ++c)
        for (uint8_t r : cols_rows[c])
            out.push_back({v++, r, c});
    return out;
}

TEST(Codec, PreservesEveryElement)
{
    // Paper Fig. 9(b)'s block: 4 columns, each with 2 kept elements.
    const auto storage = columnMajorBlock({{0, 2}, {1, 2}, {0, 3}, {1, 3}});
    const CodecOutput out = convertToComputation(storage, CodecConfig{4, 2, 2});
    ASSERT_EQ(out.values.size(), storage.size());

    std::multiset<float> in_vals;
    std::multiset<float> out_vals;
    for (const auto &e : storage)
        in_vals.insert(e.value);
    for (float v : out.values)
        out_vals.insert(v);
    EXPECT_EQ(in_vals, out_vals);
}

TEST(Codec, GroupsShareRowInSteadyState)
{
    // With threshold 2, every emitted pair before the drain phase must
    // share its reduction-dimension index.
    Rng rng(3);
    // Column-wise 4:8 block: 8 columns x 4 kept rows each.
    std::vector<std::vector<uint8_t>> cols(8);
    for (auto &col : cols) {
        std::vector<uint8_t> rows{0, 1, 2, 3, 4, 5, 6, 7};
        for (size_t i = 8; i > 1; --i)
            std::swap(rows[i - 1], rows[rng.below(i)]);
        rows.resize(4);
        col = rows;
    }
    const auto storage = columnMajorBlock(cols);
    const CodecConfig cfg{8, 2, 2};
    const CodecOutput out = convertToComputation(storage, cfg);
    ASSERT_EQ(out.values.size(), 32u);

    // All but the drain tail must be same-row pairs; the tail may mix.
    size_t same_row_pairs = 0;
    for (size_t i = 0; i + 1 < out.rids.size(); i += 2)
        same_row_pairs += out.rids[i] == out.rids[i + 1];
    EXPECT_GE(same_row_pairs, out.rids.size() / 2 - 4);
}

TEST(Codec, CycleCostNearHalfNnz)
{
    // Two-lane ingest: conversion should take about nnz/2 timesteps
    // plus a small drain tail — that is what lets the pipeline hide it.
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::vector<uint8_t>> cols(8);
        size_t nnz = 0;
        for (auto &col : cols) {
            const size_t n = 1 + rng.below(8);
            std::vector<uint8_t> rows{0, 1, 2, 3, 4, 5, 6, 7};
            for (size_t i = 8; i > 1; --i)
                std::swap(rows[i - 1], rows[rng.below(i)]);
            rows.resize(n);
            col = rows;
            nnz += n;
        }
        const auto storage = columnMajorBlock(cols);
        const CodecOutput out =
            convertToComputation(storage, CodecConfig{8, 2, 2});
        EXPECT_GE(out.cycles, (nnz + 1) / 2);
        EXPECT_LE(out.cycles, nnz / 2 + 10);
    }
}

TEST(Codec, EmptyInputZeroCycles)
{
    const CodecOutput out = convertToComputation({}, CodecConfig{8, 2, 2});
    EXPECT_EQ(out.cycles, 0u);
    EXPECT_TRUE(out.values.empty());
}

TEST(Codec, SingleElementDrains)
{
    const std::vector<StorageElem> storage{{42.0f, 3, 0}};
    const CodecOutput out =
        convertToComputation(storage, CodecConfig{8, 2, 2});
    ASSERT_EQ(out.values.size(), 1u);
    EXPECT_EQ(out.values[0], 42.0f);
    EXPECT_EQ(out.rids[0], 3);
    EXPECT_GE(out.cycles, 1u);
}

TEST(Codec, RejectsOutOfRangeRid)
{
    const std::vector<StorageElem> storage{{1.0f, 9, 0}};
    EXPECT_THROW(convertToComputation(storage, CodecConfig{8, 2, 2}),
                 tbstc::util::PanicError);
}

TEST(Codec, TryDecodeBlockReportsStructuredErrors)
{
    // Out-of-range Rid: a DecodeError naming the element, no throw.
    const std::vector<StorageElem> bad_rid{{1.0f, 0, 0}, {2.0f, 9, 1}};
    const auto r = tryDecodeBlock(bad_rid, CodecConfig{8, 2, 2});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, DecodeErrorKind::InfoFieldRange);
    EXPECT_EQ(r.error().offset, 1u); // Element index of the culprit.

    // Invalid geometry.
    const auto cfg = tryDecodeBlock({}, CodecConfig{0, 2, 2});
    ASSERT_FALSE(cfg.ok());
    EXPECT_EQ(cfg.error().kind, DecodeErrorKind::GeometryOverflow);
}

TEST(Codec, TryDecodeBlockMatchesThrowingVariant)
{
    const auto storage = columnMajorBlock({{0, 2}, {1, 2}, {0, 3}, {1, 3}});
    const CodecConfig cfg{4, 2, 2};
    const auto tried = tryDecodeBlock(storage, cfg);
    ASSERT_TRUE(tried.ok());
    const CodecOutput direct = convertToComputation(storage, cfg);
    EXPECT_EQ(tried->values, direct.values);
    EXPECT_EQ(tried->rids, direct.rids);
    EXPECT_EQ(tried->iids, direct.iids);
    EXPECT_EQ(tried->cycles, direct.cycles);
}

TEST(Codec, PassthroughCycles)
{
    const CodecConfig cfg{8, 2, 2};
    EXPECT_EQ(passthroughCycles(0, cfg), 0u);
    EXPECT_EQ(passthroughCycles(1, cfg), 1u);
    EXPECT_EQ(passthroughCycles(8, cfg), 4u);
    EXPECT_EQ(passthroughCycles(9, cfg), 5u);
}

TEST(Codec, WiderLanesCutCycles)
{
    Rng rng(7);
    std::vector<std::vector<uint8_t>> cols(8);
    for (auto &col : cols)
        col = {0, 1, 2, 3};
    const auto storage = columnMajorBlock(cols);
    const auto narrow = convertToComputation(storage, CodecConfig{8, 2, 2});
    const auto wide = convertToComputation(storage, CodecConfig{8, 4, 4});
    EXPECT_LT(wide.cycles, narrow.cycles);
}

} // namespace
