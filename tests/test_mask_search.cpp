/**
 * @file
 * Tests for the pluggable mask-search strategy API: the optimal TBS
 * solver's dominance invariants over greedy Algorithm 1, the strategy
 * registry and tryMakeMask error surface, and the SlideSparse pattern
 * family (docs/mask_search.md).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "core/mask_search.hpp"
#include "core/maskspace.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace {

using namespace tbstc::core;
using tbstc::util::FatalError;
using tbstc::util::Rng;

Matrix
randomScores(size_t r, size_t c, uint64_t seed)
{
    Rng rng(seed);
    Matrix m(r, c);
    for (auto &v : m.data())
        v = static_cast<float>(std::fabs(rng.heavyTail()));
    return m;
}

/** L1 distance of one m x m block of @p mask to the same @p us block. */
size_t
blockDist(const Mask &mask, const Mask &us, size_t br, size_t bc,
          size_t m)
{
    size_t d = 0;
    for (size_t r = 0; r < m; ++r) {
        const uint64_t a = mask.rowBits(br * m + r, bc * m, m);
        const uint64_t b = us.rowBits(br * m + r, bc * m, m);
        d += static_cast<size_t>(__builtin_popcountll(a ^ b));
    }
    return d;
}

/**
 * The solver's acceptance invariant, checked from the masks alone:
 * the optimal block distance never exceeds greedy's, and for matrices
 * with real density variation it is strictly smaller somewhere.
 */
void
expectDominance(const Matrix &scores, double sparsity, size_t m,
                bool expect_strict)
{
    const auto cand = defaultCandidates(m);
    const TbsResult greedy = tbsMask(scores, sparsity, m, cand);
    TbsSearchStats stats;
    const TbsResult opt =
        tbsMaskOptimal(scores, sparsity, m, cand, &stats);
    const Mask us = usMask(scores, sparsity);

    EXPECT_TRUE(validateTbs(greedy.mask, greedy.meta));
    EXPECT_TRUE(validateTbs(opt.mask, opt.meta));

    const size_t brs = scores.rows() / m;
    const size_t bcs = scores.cols() / m;
    size_t strict = 0;
    for (size_t br = 0; br < brs; ++br) {
        for (size_t bc = 0; bc < bcs; ++bc) {
            const size_t dg = blockDist(greedy.mask, us, br, bc, m);
            const size_t dd = blockDist(opt.mask, us, br, bc, m);
            EXPECT_LE(dd, dg) << "block (" << br << ", " << bc << ")";
            strict += dd < dg;
        }
    }
    if (expect_strict) {
        EXPECT_GT(strict, 0u);
    }
    EXPECT_EQ(stats.blocks, brs * bcs);
    EXPECT_EQ(stats.improvedBlocks, strict);
    EXPECT_LE(stats.transposableBlocks, stats.blocks);
    // The optimal mask keeps only unstructured survivors, so it can
    // undershoot the greedy nnz but never exceed it.
    EXPECT_LE(opt.mask.nnz(), greedy.mask.nnz());
    EXPECT_EQ(opt.usHamming, opt.mask.hamming(us));
    EXPECT_EQ(greedy.usHamming, greedy.mask.hamming(us));
}

TEST(TbsOptimal, DominatesGreedyOnRandomScores)
{
    for (const uint64_t seed : {11u, 12u, 13u}) {
        for (const double s : {0.5, 0.75})
            expectDominance(randomScores(64, 64, seed), s, 8, true);
    }
}

TEST(TbsOptimal, DominatesGreedyOnAdversarialTies)
{
    // All-equal scores: every rank comparison is a tie, so both
    // searches run entirely on the index tie-break. Dominance must be
    // structural, not score-dependent.
    Matrix ties(32, 32);
    for (auto &v : ties.data())
        v = 1.0f;
    expectDominance(ties, 0.5, 8, false);

    // Striped ties: alternating high/low plateaus concentrate the
    // unstructured mask in half the columns, forcing column-capacity
    // pressure (the Kuhn re-routing path).
    Matrix stripes(32, 32);
    for (size_t r = 0; r < 32; ++r)
        for (size_t c = 0; c < 32; ++c)
            stripes.data()[r * 32 + c] = (c / 4) % 2 == 0 ? 2.0f : 1.0f;
    expectDominance(stripes, 0.5, 8, false);
}

TEST(TbsOptimal, DeterministicAcrossCalls)
{
    const Matrix s = randomScores(64, 64, 21);
    const auto cand = defaultCandidates(8);
    const TbsResult a = tbsMaskOptimal(s, 0.75, 8, cand);
    const TbsResult b = tbsMaskOptimal(s, 0.75, 8, cand);
    EXPECT_EQ(a.mask.hamming(b.mask), 0u);
    EXPECT_EQ(a.usHamming, b.usHamming);
}

TEST(TbsOptimal, SolverOutputStaysWithinBlockQuota)
{
    const Matrix s = randomScores(64, 64, 31);
    TbsSearchStats stats;
    const TbsResult opt =
        tbsMaskOptimal(s, 0.625, 8, defaultCandidates(8), &stats);
    // validateTbs already enforces the declared-direction cap; check
    // the cross-direction cap that makes a block transposable matches
    // the reported count.
    const Mask us = usMask(s, 0.625);
    size_t transposable = 0;
    for (size_t br = 0; br < 8; ++br) {
        for (size_t bc = 0; bc < 8; ++bc) {
            const auto n =
                static_cast<size_t>(opt.meta.blocks[br * 8 + bc].n);
            bool ok = true;
            for (size_t r = 0; r < 8 && ok; ++r) {
                const uint64_t row =
                    opt.mask.rowBits(br * 8 + r, bc * 8, 8);
                ok = static_cast<size_t>(__builtin_popcountll(row))
                    <= n;
            }
            for (size_t c = 0; c < 8 && ok; ++c) {
                size_t nnz = 0;
                for (size_t r = 0; r < 8; ++r)
                    nnz += opt.mask.at(br * 8 + r, bc * 8 + c);
                ok = nnz <= n;
            }
            transposable += ok;
        }
    }
    EXPECT_EQ(stats.transposableBlocks, transposable);
    (void)us;
}

TEST(MaskSearch, UnknownStrategyIsAnError)
{
    const Matrix s = randomScores(16, 16, 41);
    MaskRequest req;
    req.strategy = "simulated-annealing";
    const auto res = tryMakeMask(s, req);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().kind, MaskErrorKind::UnknownStrategy);
    EXPECT_STREQ(maskErrorKindName(res.error().kind),
                 "unknown_strategy");
}

TEST(MaskSearch, ValidatesRequestFields)
{
    const Matrix s = randomScores(16, 16, 42);
    MaskRequest req;
    req.sparsity = 1.5;
    EXPECT_EQ(tryMakeMask(s, req).error().kind,
              MaskErrorKind::BadSparsity);

    req = {};
    req.m = 0;
    EXPECT_EQ(tryMakeMask(s, req).error().kind,
              MaskErrorKind::BadBlockSize);

    req = {};
    req.m = 5;
    req.pattern = Pattern::SS;
    EXPECT_EQ(tryMakeMask(s, req).error().kind,
              MaskErrorKind::BadBlockSize);

    req = {};
    req.candidates = {3, 9}; // 9 > m.
    EXPECT_EQ(tryMakeMask(s, req).error().kind,
              MaskErrorKind::BadCandidates);

    const Matrix odd = randomScores(12, 16, 43);
    req = {};
    EXPECT_EQ(tryMakeMask(odd, req).error().kind,
              MaskErrorKind::NotDivisible);
}

TEST(MaskSearch, EmptyAndGreedyMatchLegacyTbsMask)
{
    const Matrix s = randomScores(32, 32, 44);
    const TbsResult legacy =
        tbsMask(s, 0.75, 8, defaultCandidates(8));
    for (const char *name : {"", kGreedyStrategy}) {
        MaskRequest req;
        req.strategy = name;
        req.sparsity = 0.75;
        const auto res = tryMakeMask(s, req);
        ASSERT_TRUE(res.ok()) << name;
        EXPECT_EQ(res->mask.hamming(legacy.mask), 0u) << name;
        EXPECT_EQ(res->usHamming, legacy.usHamming) << name;
        EXPECT_EQ(res->stats.blocks, 16u) << name;
    }
}

TEST(MaskSearch, RegistryListsBuiltinsAndAcceptsCustom)
{
    EXPECT_TRUE(isMaskStrategy(""));
    EXPECT_TRUE(isMaskStrategy(kGreedyStrategy));
    EXPECT_TRUE(isMaskStrategy(kOptimalStrategy));
    EXPECT_FALSE(isMaskStrategy("nope"));
    const auto names = maskStrategyNames();
    EXPECT_NE(std::find(names.begin(), names.end(), kGreedyStrategy),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), kOptimalStrategy),
              names.end());

    registerMaskStrategy(
        "test-all-greedy",
        [](const Matrix &scores, double sparsity, size_t m,
           std::span<const uint8_t> cand, TbsSearchStats *stats) {
            if (stats != nullptr)
                stats->blocks = 777;
            return tbsMask(scores, sparsity, m, cand);
        });
    EXPECT_TRUE(isMaskStrategy("test-all-greedy"));

    const Matrix s = randomScores(16, 16, 45);
    MaskRequest req;
    req.strategy = "test-all-greedy";
    const auto res = tryMakeMask(s, req);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->stats.blocks, 777u);
}

TEST(MaskSearch, NonTbsPatternsAcceptKnownStrategies)
{
    const Matrix s = randomScores(16, 16, 46);
    MaskRequest req;
    req.pattern = Pattern::TS;
    req.strategy = kOptimalStrategy; // Known: accepted, ignored.
    const auto res = tryMakeMask(s, req);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(validateTs(res->mask, 4, 8));
    EXPECT_EQ(res->usHamming,
              res->mask.hamming(usMask(s, req.sparsity)));

    req.strategy = "nope"; // Unknown: an error even off-TBS.
    EXPECT_EQ(tryMakeMask(s, req).error().kind,
              MaskErrorKind::UnknownStrategy);
}

TEST(MaskSearch, NonTbsColumnsNeedNotDivide)
{
    // TS constrains row tiles only; 12 rows x 16 cols is legal there
    // but not for TBS's square blocks.
    const Matrix s = randomScores(12, 16, 47);
    MaskRequest req;
    req.pattern = Pattern::TS;
    EXPECT_TRUE(tryMakeMask(s, req).ok());
    req.pattern = Pattern::TBS;
    EXPECT_EQ(tryMakeMask(s, req).error().kind,
              MaskErrorKind::NotDivisible);
}

TEST(SlideSparse, GeneratedMasksValidateAcrossBlockSizes)
{
    for (const size_t m : {4u, 8u, 16u}) {
        const Matrix s = randomScores(2 * m, 4 * m, 50 + m);
        for (const double sp : {0.5, 0.75}) {
            const Mask mask = ssMask(s, sp, m);
            EXPECT_TRUE(validateSlideSparse(mask, m))
                << "m=" << m << " s=" << sp;
            const auto size = static_cast<double>(mask.size());
            const double capacity =
                static_cast<double>(m - 2) / static_cast<double>(m);
            EXPECT_LE(static_cast<double>(mask.nnz()),
                      size * capacity);
            // Near the per-tile capacity (m = 4 keeps at most 2 of 4,
            // i.e. 50% density) the target is unreachable whenever
            // tile densities vary, so only check the hit when there
            // is headroom.
            if (1.0 - sp <= 0.8 * capacity) {
                EXPECT_NEAR(static_cast<double>(mask.nnz()),
                            size * (1.0 - sp), 0.1 * size)
                    << "m=" << m << " s=" << sp;
            }
        }
    }
}

TEST(SlideSparse, ValidatorRejectsOverfullTile)
{
    const size_t m = 8;
    const Matrix s = randomScores(m, 2 * m, 60);
    Mask mask = ssMask(s, 0.5, m);
    ASSERT_TRUE(validateSlideSparse(mask, m));
    // Saturate tile 0 of row 0: m kept > the 2N-2 = m-2 cap.
    for (size_t c = 0; c < m; ++c)
        mask.at(0, c) = 1;
    EXPECT_FALSE(validateSlideSparse(mask, m));
}

TEST(SlideSparse, TileCapIsTwoBelowM)
{
    const size_t m = 8;
    const Matrix s = randomScores(4 * m, 4 * m, 61);
    const Mask mask = ssMask(s, 0.25, m); // Dense enough to saturate.
    for (size_t r = 0; r < mask.rows(); ++r)
        for (size_t t = 0; t < mask.cols(); t += m)
            EXPECT_LE(mask.rangeNnz(r, t, m), m - 2)
                << "row " << r << " tile " << t;
}

TEST(SlideSparse, CandidateLadderIsContiguous)
{
    const auto cand = slideSparseCandidates(8);
    ASSERT_EQ(cand.size(), 7u);
    for (size_t i = 0; i < cand.size(); ++i)
        EXPECT_EQ(cand[i], i);
    EXPECT_THROW(slideSparseCandidates(3), FatalError);
    EXPECT_THROW(slideSparseCandidates(2), FatalError);
    EXPECT_THROW(slideSparseCandidates(7), FatalError);
}

TEST(SlideSparse, PatternMaskDispatches)
{
    const Matrix s = randomScores(16, 16, 62);
    const Mask direct = ssMask(s, 0.75, 8);
    const Mask via = patternMask(Pattern::SS, s, 0.75, 8,
                                 defaultCandidates(8));
    EXPECT_EQ(direct.hamming(via), 0u);
}

TEST(SlideSparse, MaskSpaceMatchesBruteForceAtM4)
{
    // A 4-element tile with at most 2N-2 = 2 kept positions has
    // C(4,0) + C(4,1) + C(4,2) = 11 = 2^4 - 4 - 1 legal states; a
    // 4x4 matrix is 4 such tiles.
    const double per_tile = std::log2(11.0);
    EXPECT_NEAR(log2MaskSpace(Pattern::SS, 4, 4, 4), 4.0 * per_tile,
                1e-9);
    // Family ordering at the paper's geometry: TS < TBS < SS < US.
    const double ts = log2MaskSpace(Pattern::TS, 256, 256, 8);
    const double tbs = log2MaskSpace(Pattern::TBS, 256, 256, 8);
    const double ss = log2MaskSpace(Pattern::SS, 256, 256, 8);
    const double us = log2MaskSpace(Pattern::US, 256, 256, 8);
    EXPECT_LT(ts, tbs);
    EXPECT_LT(tbs, ss);
    EXPECT_LT(ss, us);
}

} // namespace
