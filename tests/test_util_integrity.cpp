/**
 * @file
 * Tests for the ingestion-integrity utilities: Result, CRC32, checked
 * arithmetic, and the seeded fault-injection engine.
 */

#include <gtest/gtest.h>

#include <string>

#include "util/checked.hpp"
#include "util/crc32.hpp"
#include "util/faultinject.hpp"
#include "util/result.hpp"

namespace {

using namespace tbstc;
using util::FaultInjector;
using util::Result;
using util::unexpected;

TEST(Result, HoldsValueOrError)
{
    Result<int, std::string> ok = 41;
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(*ok, 41);
    *ok += 1;
    EXPECT_EQ(ok.value(), 42);
    EXPECT_EQ(ok.valueOr(-1), 42);

    Result<int, std::string> bad = unexpected(std::string("nope"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error(), "nope");
    EXPECT_EQ(bad.valueOr(-1), -1);
}

TEST(Result, MoveOutValue)
{
    Result<std::string, int> r = std::string("payload");
    const std::string s = std::move(r).value();
    EXPECT_EQ(s, "payload");
}

TEST(Crc32, KnownAnswer)
{
    // The standard CRC-32 check value ("123456789" -> 0xcbf43926).
    const std::string check = "123456789";
    EXPECT_EQ(util::crc32({reinterpret_cast<const uint8_t *>(
                               check.data()),
                           check.size()}),
              0xcbf43926u);
    EXPECT_EQ(util::crc32({}), 0u);
}

TEST(Crc32, SeedChainsIncrementally)
{
    const std::vector<uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8};
    const auto whole = util::crc32(data);
    const auto head = util::crc32(std::span(data).first(3));
    const auto chained = util::crc32(std::span(data).subspan(3), head);
    EXPECT_EQ(whole, chained);
}

TEST(Crc32, SensitiveToEveryBit)
{
    std::vector<uint8_t> data(64, 0xa5);
    const auto base = util::crc32(data);
    for (size_t bit = 0; bit < data.size() * 8; ++bit) {
        data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        EXPECT_NE(util::crc32(data), base) << "bit " << bit;
        data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
}

TEST(Checked, DetectsOverflow)
{
    uint64_t out = 0;
    EXPECT_TRUE(util::checkedAdd(1, 2, out));
    EXPECT_EQ(out, 3u);
    EXPECT_TRUE(util::checkedMul(1u << 31, 2, out));
    EXPECT_EQ(out, uint64_t{1} << 32);

    EXPECT_FALSE(util::checkedAdd(~uint64_t{0}, 1, out));
    EXPECT_FALSE(util::checkedMul(uint64_t{1} << 33, uint64_t{1} << 31,
                                  out));
    EXPECT_TRUE(util::checkedMul(0, ~uint64_t{0}, out));
    EXPECT_EQ(out, 0u);
}

TEST(FaultInject, DeterministicFromSeed)
{
    const std::vector<uint8_t> bytes(257, 0x5a);
    FaultInjector a(99);
    FaultInjector b(99);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(a.flipBits(bytes, 3), b.flipBits(bytes, 3));
        EXPECT_EQ(a.truncateRandom(bytes), b.truncateRandom(bytes));
        EXPECT_EQ(a.mutateRandomByte(bytes), b.mutateRandomByte(bytes));
        EXPECT_EQ(a.extend(bytes, 5), b.extend(bytes, 5));
    }
    FaultInjector c(100); // Different seed, different stream.
    bool differs = false;
    for (int i = 0; i < 16 && !differs; ++i)
        differs = a.flipBits(bytes, 3) != c.flipBits(bytes, 3);
    EXPECT_TRUE(differs);
}

TEST(FaultInject, FlipBitsTouchesOnlyRequestedBits)
{
    const std::vector<uint8_t> bytes(64, 0);
    FaultInjector fi(7);
    const auto out = fi.flipBits(bytes, 1);
    ASSERT_EQ(out.size(), bytes.size());
    size_t set = 0;
    for (uint8_t b : out)
        set += static_cast<size_t>(__builtin_popcount(b));
    EXPECT_EQ(set, 1u);
    EXPECT_EQ(fi.log().size(), 1u);
}

TEST(FaultInject, TruncateAndExtend)
{
    const std::vector<uint8_t> bytes{1, 2, 3, 4, 5};
    FaultInjector fi(3);
    EXPECT_EQ(fi.truncate(bytes, 2), (std::vector<uint8_t>{1, 2}));
    EXPECT_TRUE(fi.truncate(bytes, 0).empty());
    const auto longer = fi.extend(bytes, 4);
    ASSERT_EQ(longer.size(), 9u);
    EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), longer.begin()));
}

TEST(FaultInject, SwapRanges)
{
    const std::vector<uint8_t> bytes{0, 1, 2, 3, 4, 5, 6, 7};
    FaultInjector fi(4);
    const auto swapped = fi.swapRanges(bytes, 0, 6, 2);
    EXPECT_EQ(swapped, (std::vector<uint8_t>{6, 7, 2, 3, 4, 5, 0, 1}));
}

} // namespace
