/**
 * @file
 * Tests of the deterministic parallel execution layer: pool basics
 * (full index coverage, ordered results), exception propagation,
 * ordered-reduction bit-identity across thread counts, nested-region
 * safety, and the worker-count resolution chain.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace {

using namespace tbstc;

TEST(Parallel, ForCoversEveryIndexOnce)
{
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        util::ThreadScope scope(threads);
        std::vector<std::atomic<int>> hits(1000);
        util::parallelFor(hits.size(), 0, [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i)
                hits[i].fetch_add(1);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(Parallel, ForRespectsExplicitGrain)
{
    util::ThreadScope scope(4);
    std::vector<std::pair<size_t, size_t>> ranges(4);
    util::parallelFor(10, 3, [&](size_t b, size_t e) {
        ranges[b / 3] = {b, e};
    });
    EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>{0, 3}));
    EXPECT_EQ(ranges[1], (std::pair<size_t, size_t>{3, 6}));
    EXPECT_EQ(ranges[2], (std::pair<size_t, size_t>{6, 9}));
    EXPECT_EQ(ranges[3], (std::pair<size_t, size_t>{9, 10}));
}

TEST(Parallel, MapReturnsResultsInIndexOrder)
{
    for (size_t threads : {size_t{1}, size_t{3}, size_t{8}}) {
        util::ThreadScope scope(threads);
        const auto out = util::parallelMap<size_t>(
            257, [](size_t i) { return i * i; });
        ASSERT_EQ(out.size(), 257u);
        for (size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], i * i);
    }
}

TEST(Parallel, OrderedReduceFloatSumBitIdenticalAcrossThreadCounts)
{
    // A float sum whose value depends on association order: identical
    // chunk layout + in-order fold must reproduce it bit for bit at
    // any worker count.
    const auto sum = [](size_t) {
        return util::orderedReduce<float>(
            10000, 64, 0.0f,
            [](size_t b, size_t e) {
                float s = 0.0f;
                for (size_t i = b; i < e; ++i)
                    s += std::sin(static_cast<float>(i)) * 1e-3f
                        + 1e4f / static_cast<float>(i + 1);
                return s;
            },
            [](float acc, float c) { return acc + c; });
    };
    util::ThreadScope serial(1);
    const float golden = sum(0);
    for (size_t threads : {size_t{2}, size_t{5}, size_t{8}}) {
        util::ThreadScope scope(threads);
        for (int rep = 0; rep < 4; ++rep)
            EXPECT_EQ(sum(0), golden);
    }
}

TEST(Parallel, OrderedReduceFoldsInChunkOrder)
{
    util::ThreadScope scope(8);
    // Non-commutative reduction: string concatenation exposes any
    // out-of-order fold immediately.
    const std::string joined = util::orderedReduce<std::string>(
        26, 4, std::string{},
        [](size_t b, size_t e) {
            std::string s;
            for (size_t i = b; i < e; ++i)
                s += static_cast<char>('a' + i);
            return s;
        },
        [](std::string acc, std::string c) { return acc + c; });
    EXPECT_EQ(joined, "abcdefghijklmnopqrstuvwxyz");
}

TEST(Parallel, ExceptionPropagatesAndPoolSurvives)
{
    util::ThreadScope scope(4);
    EXPECT_THROW(
        util::parallelFor(100, 1,
                          [](size_t b, size_t) {
                              if (b == 37)
                                  throw std::runtime_error("chunk 37");
                          }),
        std::runtime_error);
    // The pool must stay usable after a throwing batch.
    std::atomic<size_t> visited{0};
    util::parallelFor(64, 1, [&](size_t b, size_t e) {
        visited.fetch_add(e - b);
    });
    EXPECT_EQ(visited.load(), 64u);
}

TEST(Parallel, LowestChunkExceptionWins)
{
    util::ThreadScope scope(4);
    try {
        util::parallelFor(50, 1, [](size_t b, size_t) {
            if (b == 10 || b == 40)
                throw std::runtime_error("chunk "
                                         + std::to_string(b));
        });
        FAIL() << "expected a rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "chunk 10");
    }
}

TEST(Parallel, NestedRegionsRunInlineWithoutDeadlock)
{
    util::ThreadScope scope(8);
    std::vector<size_t> inner_sums(16);
    util::parallelFor(16, 1, [&](size_t b, size_t) {
        // A parallel region inside a pool worker must not re-enter the
        // pool (deadlock) — it runs inline with identical chunking.
        inner_sums[b] = util::orderedReduce<size_t>(
            100, 10, size_t{0},
            [](size_t lo, size_t hi) {
                size_t s = 0;
                for (size_t i = lo; i < hi; ++i)
                    s += i;
                return s;
            },
            [](size_t acc, size_t c) { return acc + c; });
    });
    for (size_t s : inner_sums)
        EXPECT_EQ(s, 4950u);
}

TEST(Parallel, EffectiveThreadsResolution)
{
    const size_t ambient = util::effectiveThreads();
    EXPECT_GE(ambient, 1u);
    {
        util::ThreadScope scope(3);
        EXPECT_EQ(util::effectiveThreads(), 3u);
        {
            util::ThreadScope inner(7);
            EXPECT_EQ(util::effectiveThreads(), 7u);
        }
        EXPECT_EQ(util::effectiveThreads(), 3u);
        util::ThreadScope noop(0); // 0 = inherit, must not change.
        EXPECT_EQ(util::effectiveThreads(), 3u);
    }
    EXPECT_EQ(util::effectiveThreads(), ambient);

    util::setThreads(5);
    EXPECT_EQ(util::effectiveThreads(), 5u);
    util::setThreads(0);
    EXPECT_EQ(util::effectiveThreads(), ambient);
}

TEST(Parallel, RngStreamsAreDeterministicAndIndependent)
{
    auto a = util::rngStreams(123, 8);
    auto b = util::rngStreams(123, 8);
    ASSERT_EQ(a.size(), 8u);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].next(), b[i].next());
    // Distinct streams diverge from the first draw.
    auto c = util::rngStreams(123, 2);
    EXPECT_NE(c[0].next(), c[1].next());
    // Streams depend only on (seed, n prefix): asking for more streams
    // must not perturb the earlier ones.
    auto d = util::rngStreams(123, 16);
    auto e = util::rngStreams(123, 8);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(d[i].next(), e[i].next());
}

TEST(Parallel, StochasticMapBitIdenticalAcrossThreadCounts)
{
    // The pattern future sweeps use: one split stream per work unit,
    // parallel evaluation, index-ordered results.
    const auto draw = [](size_t threads) {
        util::ThreadScope scope(threads);
        auto streams = util::rngStreams(99, 32);
        return util::parallelMap<double>(32, [&](size_t i) {
            double acc = 0.0;
            for (int k = 0; k < 100; ++k)
                acc += streams[i].gaussian();
            return acc;
        });
    };
    const auto serial = draw(1);
    for (size_t threads : {size_t{2}, size_t{8}})
        EXPECT_EQ(draw(threads), serial);
}

TEST(Parallel, EmptyAndSingleRanges)
{
    util::ThreadScope scope(8);
    bool ran = false;
    util::parallelFor(0, 0, [&](size_t, size_t) { ran = true; });
    EXPECT_FALSE(ran);
    util::parallelFor(1, 0, [&](size_t b, size_t e) {
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 1u);
        ran = true;
    });
    EXPECT_TRUE(ran);
    EXPECT_EQ(util::orderedReduce<int>(
                  0, 4, -7, [](size_t, size_t) { return 0; },
                  [](int a, int b) { return a + b; }),
              -7);
}

TEST(Parallel, ShutdownPoolJoinsAndRebuildsLazily)
{
    util::ThreadScope scope(4);
    const auto sum = [] {
        return util::orderedReduce<uint64_t>(
            1000, 10, uint64_t{0},
            [](size_t b, size_t e) {
                uint64_t acc = 0;
                for (size_t i = b; i < e; ++i)
                    acc += i;
                return acc;
            },
            [](uint64_t a, uint64_t b) { return a + b; });
    };
    EXPECT_EQ(sum(), 499500u);
    util::shutdownPool();
    // The next region rebuilds the pool transparently.
    EXPECT_EQ(sum(), 499500u);
    util::shutdownPool();
    util::shutdownPool(); // Idempotent; no pool to destroy.
    EXPECT_EQ(sum(), 499500u);
    util::shutdownPool();
}

TEST(Parallel, DrainPoolWaitsForSubmittedWork)
{
    util::ThreadScope scope(4);
    util::drainPool(); // No pool yet: no-op.
    std::atomic<int> done{0};
    std::thread submitter([&] {
        util::ThreadScope inner(4);
        util::parallelFor(64, 1, [&](size_t, size_t) {
            done.fetch_add(1);
        });
    });
    submitter.join();
    util::drainPool(); // Pool idle again: returns immediately.
    EXPECT_EQ(done.load(), 64);
    util::shutdownPool();
}

TEST(Parallel, DrainInsideRegionIsNoopAndShutdownRefuses)
{
    util::ThreadScope scope(4);
    std::atomic<int> panics{0};
    util::parallelFor(8, 1, [&](size_t, size_t) {
        util::drainPool(); // Caller is the in-flight work: no-op.
        try {
            util::shutdownPool();
        } catch (const util::PanicError &) {
            panics.fetch_add(1);
        }
    });
    EXPECT_EQ(panics.load(), 8);
    util::shutdownPool();
}

} // namespace
