/**
 * @file
 * Unit tests for the mask-space formulas (paper Eqs. (1)-(4)) and
 * block statistics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/maskspace.hpp"
#include "util/combinatorics.hpp"
#include "util/logging.hpp"

namespace {

using namespace tbstc::core;
using tbstc::util::chooseExact;

TEST(MaskSpace, TsSingleTileMatchesBinomialLadder)
{
    // One 1 x M tile: MS_TS = sum_i C(M, 2^i).
    const size_t m = 8;
    uint64_t expect = 0;
    for (uint64_t n = 1; n <= m; n *= 2)
        expect += chooseExact(m, n);
    EXPECT_NEAR(log2MaskSpaceTs(1, m, m),
                std::log2(static_cast<double>(expect)), 1e-9);
}

TEST(MaskSpace, TileEnumerationMatchesChoose)
{
    for (size_t n : {1u, 2u, 4u, 8u})
        EXPECT_EQ(bruteForceTileMasks(8, n), chooseExact(8, n));
}

TEST(MaskSpace, TbsSingleBlockFormulaVsBruteForce)
{
    // For one M x M block the formula counts sum_i 2 * C(M, 2^i)^M,
    // which double-counts masks expressible in both directions; the
    // brute-force distinct count must be <= the formula and > half.
    const size_t m = 2;
    const double formula = log2MaskSpaceTbs(m, m, m);
    const double brute =
        std::log2(static_cast<double>(bruteForceTbsBlockMasks(m)));
    EXPECT_GE(formula + 1e-9, brute);
    EXPECT_LE(formula, brute + 1.0); // Overcount at most 2x.
}

TEST(MaskSpace, TbsLargerThanRowWiseThanTileWise)
{
    // The representation-space ordering of paper Fig. 4(a):
    // TS < RS-V < TBS < US for a square matrix.
    const size_t x = 64;
    const size_t y = 64;
    const size_t m = 8;
    const double ts = log2MaskSpaceTs(x, y, m);
    const double rsv = log2MaskSpaceRsv(x, y, m);
    const double tbs = log2MaskSpaceTbs(x, y, m);
    const double us = log2MaskSpaceUs(x, y);
    EXPECT_LT(ts, rsv);
    EXPECT_LT(rsv, tbs);
    EXPECT_LT(tbs, us);
}

TEST(MaskSpace, RshBetweenTsAndTbs)
{
    const size_t x = 64;
    const size_t y = 64;
    const size_t m = 8;
    const double ts = log2MaskSpaceTs(x, y, m);
    const double rsh = log2MaskSpaceRsh(x, y, m);
    const double tbs = log2MaskSpaceTbs(x, y, m);
    // RS-H's dominant term coincides with TS's 4:8 term at these
    // dimensions, so the comparison is >= rather than strict.
    EXPECT_GE(rsh, ts);
    EXPECT_LT(rsh, tbs + 1e6); // RS-H is large but bounded.
    EXPECT_GT(tbs, 0.0);
    EXPECT_GT(rsh, 0.0);
}

TEST(MaskSpace, ScalesLinearlyInArea)
{
    // log2 MS is proportional to the number of independent units, so
    // doubling the matrix area doubles it.
    const double one = log2MaskSpaceTbs(32, 32, 8);
    const double two = log2MaskSpaceTbs(64, 32, 8);
    EXPECT_NEAR(two, 2.0 * one, 1e-6);
}

TEST(MaskSpace, DispatchMatchesDirectCalls)
{
    EXPECT_EQ(log2MaskSpace(Pattern::TS, 32, 32, 8),
              log2MaskSpaceTs(32, 32, 8));
    EXPECT_EQ(log2MaskSpace(Pattern::RSV, 32, 32, 8),
              log2MaskSpaceRsv(32, 32, 8));
    EXPECT_EQ(log2MaskSpace(Pattern::RSH, 32, 32, 8),
              log2MaskSpaceRsh(32, 32, 8));
    EXPECT_EQ(log2MaskSpace(Pattern::TBS, 32, 32, 8),
              log2MaskSpaceTbs(32, 32, 8));
    EXPECT_EQ(log2MaskSpace(Pattern::US, 32, 32, 8), 32.0 * 32.0);
    EXPECT_EQ(log2MaskSpace(Pattern::Dense, 32, 32, 8), 0.0);
}

TEST(MaskSpace, RequiresPowerOfTwoM)
{
    EXPECT_THROW(log2MaskSpaceTbs(32, 32, 6),
                 tbstc::util::PanicError);
}

} // namespace
