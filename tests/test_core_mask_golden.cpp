/**
 * @file
 * Golden equivalence suite for the bit-packed mask kernels.
 *
 * The packed Mask representation and the incremental (rank-table)
 * block scoring are pure layout/algorithm changes: every mask family
 * must produce byte-for-byte the masks the original byte-per-element
 * implementation produced. The hashes below were captured from the
 * pre-packing build (FNV-1a over the row-major byte image, and over
 * the TbsMeta block table) and pin that contract — any drift in
 * usMask/tsMask/rsvMask/rshMask/tbsMask or in the per-block direction
 * choice fails here first.
 *
 * The second half cross-checks every packed kernel (popcount nnz,
 * word-wise combinators, agreement/overlap/hamming, blockNnz,
 * forEachSet/forEachDropped, rowBits round-trips) against a naive
 * per-element reference on irregular shapes, including non-multiple
 * -of-64 widths where the pad-bits-zero invariant matters.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/blockstats.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "util/rng.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc;
using core::Mask;
using core::Matrix;

uint64_t
fnv(const uint8_t *p, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
maskHash(const Mask &m)
{
    const std::vector<uint8_t> bytes = m.toBytes();
    return fnv(bytes.data(), bytes.size());
}

uint64_t
metaHash(const core::TbsMeta &meta)
{
    std::vector<uint8_t> bytes;
    bytes.push_back(static_cast<uint8_t>(meta.m));
    bytes.push_back(static_cast<uint8_t>(meta.blockRows));
    bytes.push_back(static_cast<uint8_t>(meta.blockCols));
    for (const auto &b : meta.blocks) {
        bytes.push_back(b.n);
        bytes.push_back(static_cast<uint8_t>(b.dim));
    }
    return fnv(bytes.data(), bytes.size());
}

struct Golden
{
    size_t rows;
    size_t cols;
    double sparsity;
    uint64_t seed;
    uint64_t us, ts, rsv, rsh, tbs, tbsMeta;
};

// Captured from the byte-per-element implementation (see file
// comment); treat as a wire contract, do not regenerate casually.
constexpr Golden kGolden[] = {
    {64, 64, 0.75, 7,
     0xee70fc3eff05feadull, 0xb98cc29640f01331ull, 0x7f1e49a8e7b34a7full,
     0xf9739bef9138e965ull, 0x91567d811db2da77ull, 0x466a376fd7c81d23ull},
    {128, 64, 0.5, 11,
     0xf65095781effea11ull, 0x33509c9d6c9a7d33ull, 0xe85eab8473b3a025ull,
     0xb864a185c66c8bc9ull, 0x3460b3a21264f6cfull, 0xb50fadd054ae1dd7ull},
    {96, 192, 0.625, 3,
     0x53d83fe9c5770917ull, 0xd977e2eea54907ebull, 0x0803e89e6205045full,
     0x33ff78ca594c9825ull, 0x22bc9210714dd933ull, 0x94a2cd3a8e986ea5ull},
};

TEST(MaskGolden, EveryFamilyMatchesPrePackingBuild)
{
    const auto cand = core::defaultCandidates(8);
    for (const Golden &g : kGolden) {
        SCOPED_TRACE(testing::Message()
                     << g.rows << "x" << g.cols << " sp=" << g.sparsity);
        const Matrix w = workload::synthWeights(
            {"golden-mask", g.rows, g.cols, 1}, g.seed);
        const Matrix scores = core::magnitudeScores(w);

        EXPECT_EQ(maskHash(core::usMask(scores, g.sparsity)), g.us);
        EXPECT_EQ(maskHash(core::tsMask(scores, 4, 8)), g.ts);
        EXPECT_EQ(maskHash(core::rsvMask(scores, g.sparsity, 8, cand)),
                  g.rsv);
        EXPECT_EQ(maskHash(core::rshMask(scores, g.sparsity, 8, cand)),
                  g.rsh);
        const core::TbsResult tbs =
            core::tbsMask(scores, g.sparsity, 8, cand);
        EXPECT_EQ(maskHash(tbs.mask), g.tbs);
        EXPECT_EQ(metaHash(tbs.meta), g.tbsMeta);
        // usHamming memoizes hamming(usMask) for maskSimilarity.
        EXPECT_EQ(tbs.usHamming,
                  tbs.mask.hamming(core::usMask(scores, g.sparsity)));
    }
}

/** Random mask with roughly @p density kept bits, via the accessors. */
Mask
randomMask(size_t rows, size_t cols, double density, uint64_t seed)
{
    util::Rng rng(seed);
    Mask m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            m.at(r, c) = rng.uniform() < density ? 1 : 0;
    return m;
}

// Irregular widths: word-aligned, sub-word, and straddling widths
// exercise the pad-bit masking in every kernel.
constexpr struct
{
    size_t rows, cols;
} kShapes[] = {{8, 64}, {16, 8}, {24, 72}, {5, 3}, {32, 200}, {64, 127}};

TEST(MaskPackedOps, CountsMatchByteReference)
{
    uint64_t seed = 100;
    for (const auto &shape : kShapes) {
        const Mask a = randomMask(shape.rows, shape.cols, 0.4, ++seed);
        const Mask b = randomMask(shape.rows, shape.cols, 0.7, ++seed);

        size_t nnz = 0;
        size_t ham = 0;
        size_t both = 0;
        for (size_t r = 0; r < a.rows(); ++r)
            for (size_t c = 0; c < a.cols(); ++c) {
                nnz += a.at(r, c);
                ham += a.at(r, c) != b.at(r, c);
                both += a.at(r, c) & b.at(r, c);
            }
        EXPECT_EQ(a.nnz(), nnz);
        EXPECT_EQ(a.hamming(b), ham);
        EXPECT_DOUBLE_EQ(a.agreement(b),
                         1.0
                             - static_cast<double>(ham)
                                   / static_cast<double>(a.size()));
        if (b.nnz() > 0)
            EXPECT_DOUBLE_EQ(a.overlap(b),
                             static_cast<double>(both)
                                 / static_cast<double>(b.nnz()));
    }
}

TEST(MaskPackedOps, CombinatorsMatchByteReference)
{
    uint64_t seed = 300;
    for (const auto &shape : kShapes) {
        const Mask a = randomMask(shape.rows, shape.cols, 0.5, ++seed);
        const Mask b = randomMask(shape.rows, shape.cols, 0.5, ++seed);

        Mask and_m = a;
        and_m &= b;
        Mask or_m = a;
        or_m |= b;
        Mask xor_m = a;
        xor_m ^= b;
        for (size_t r = 0; r < a.rows(); ++r)
            for (size_t c = 0; c < a.cols(); ++c) {
                EXPECT_EQ(and_m.at(r, c), a.at(r, c) & b.at(r, c));
                EXPECT_EQ(or_m.at(r, c), a.at(r, c) | b.at(r, c));
                EXPECT_EQ(xor_m.at(r, c), a.at(r, c) ^ b.at(r, c));
            }

        // The word images must keep pad bits zero (operator== and
        // popcount kernels rely on it).
        EXPECT_EQ(xor_m.nnz(), a.hamming(b));
        const Mask t = a.transposed();
        EXPECT_EQ(t.rows(), a.cols());
        EXPECT_EQ(t.nnz(), a.nnz());
        for (size_t r = 0; r < a.rows(); ++r)
            for (size_t c = 0; c < a.cols(); ++c)
                EXPECT_EQ(t.at(c, r), a.at(r, c));
    }
}

TEST(MaskPackedOps, BlockNnzMatchesByteReference)
{
    uint64_t seed = 500;
    for (const size_t m : {4u, 8u, 16u}) {
        const Mask a = randomMask(8 * m, 16 * m, 0.55, ++seed);
        const std::vector<size_t> packed = core::blockNnz(a, m);
        ASSERT_EQ(packed.size(), (a.rows() / m) * (a.cols() / m));
        for (size_t br = 0; br < a.rows() / m; ++br)
            for (size_t bc = 0; bc < a.cols() / m; ++bc) {
                size_t ref = 0;
                for (size_t r = 0; r < m; ++r)
                    for (size_t c = 0; c < m; ++c)
                        ref += a.at(br * m + r, bc * m + c);
                EXPECT_EQ(packed[br * (a.cols() / m) + bc], ref)
                    << "m=" << m << " block " << br << "," << bc;
            }
    }
}

TEST(MaskPackedOps, IterationAndRowBitsRoundTrip)
{
    uint64_t seed = 700;
    for (const auto &shape : kShapes) {
        const Mask a = randomMask(shape.rows, shape.cols, 0.3, ++seed);
        for (size_t r = 0; r < a.rows(); ++r) {
            std::vector<size_t> set;
            std::vector<size_t> dropped;
            a.forEachSet(r, [&](size_t c) { set.push_back(c); });
            a.forEachDropped(r, [&](size_t c) { dropped.push_back(c); });
            EXPECT_EQ(set.size() + dropped.size(), a.cols());
            size_t si = 0;
            size_t di = 0;
            for (size_t c = 0; c < a.cols(); ++c) {
                if (a.at(r, c))
                    EXPECT_EQ(set[si++], c);
                else
                    EXPECT_EQ(dropped[di++], c);
            }
        }

        // rowBits/setRowBits at every sub-word offset, including
        // word-straddling windows.
        Mask b = a;
        for (size_t r = 0; r < a.rows(); ++r)
            for (size_t c0 = 0; c0 < a.cols(); c0 += 7) {
                const size_t len = std::min<size_t>(61, a.cols() - c0);
                const uint64_t bits = a.rowBits(r, c0, len);
                for (size_t i = 0; i < len; ++i)
                    EXPECT_EQ((bits >> i) & 1u, a.at(r, c0 + i));
                b.setRowBits(r, c0, len, bits);
            }
        EXPECT_EQ(b, a);

        // toBytes is the row-major byte image.
        const std::vector<uint8_t> bytes = a.toBytes();
        ASSERT_EQ(bytes.size(), a.size());
        for (size_t i = 0; i < bytes.size(); ++i)
            EXPECT_EQ(bytes[i], a.bit(i));
    }
}

} // namespace
