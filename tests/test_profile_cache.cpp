/**
 * @file
 * Content-addressed cache tests: determinism, key sensitivity, blob
 * validation, and single-flight coalescing.
 *
 * The cache's contract is strictly "same bits, sooner": a profile or
 * simulation served from memory, served from disk, or computed with
 * the store disabled must be bit-identical (doubles compared by
 * pattern, not tolerance). Corrupt disk blobs must always be rejected
 * and recomputed — a cache can cost time, never correctness.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <unistd.h>
#include <vector>

#include "sim/energy.hpp"
#include "sim/pipeline.hpp"
#include "util/contentstore.hpp"
#include "workload/profile_builder.hpp"

namespace {

using namespace tbstc;
using sim::LayerProfile;
using util::CacheOutcome;
using util::ContentStore;

/** Fresh scratch directory under the test temp root. */
std::string
scratchDir(const char *tag)
{
    const std::string dir =
        testing::TempDir() + "tbstc-cache-" + tag + "-"
        + std::to_string(static_cast<unsigned long long>(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Restore the process-wide store to its default state on scope exit. */
struct StoreGuard
{
    ~StoreGuard()
    {
        ContentStore &s = ContentStore::instance();
        s.setEnabled(true);
        s.setDiskDir("");
        s.clearMemory();
    }
};

bool
sameProfile(const LayerProfile &a, const LayerProfile &b)
{
    if (a.x != b.x || a.y != b.y || a.nb != b.nb || a.m != b.m
        || a.aNnz != b.aNnz)
        return false;
    if (std::bit_cast<uint64_t>(a.sampleScale)
        != std::bit_cast<uint64_t>(b.sampleScale))
        return false;
    if (a.aStream.payloadBytes != b.aStream.payloadBytes
        || a.aStream.usefulBytes != b.aStream.usefulBytes
        || a.aStream.segments != b.aStream.segments)
        return false;
    if (a.blocks.size() != b.blocks.size())
        return false;
    for (size_t i = 0; i < a.blocks.size(); ++i) {
        const auto &x = a.blocks[i];
        const auto &y = b.blocks[i];
        if (x.nnz != y.nnz || x.n != y.n
            || x.independentDim != y.independentDim
            || x.nonemptyRows != y.nonemptyRows)
            return false;
    }
    return true;
}

bool
sameStats(const sim::RunStats &a, const sim::RunStats &b)
{
    const auto eq = [](double x, double y) {
        return std::bit_cast<uint64_t>(x) == std::bit_cast<uint64_t>(y);
    };
    return eq(a.cycles, b.cycles) && eq(a.seconds, b.seconds)
        && eq(a.energy.computeJ, b.energy.computeJ)
        && eq(a.energy.sramJ, b.energy.sramJ)
        && eq(a.energy.dramJ, b.energy.dramJ)
        && eq(a.energy.codecJ, b.energy.codecJ)
        && eq(a.energy.mbdJ, b.energy.mbdJ)
        && eq(a.energy.staticJ, b.energy.staticJ) && eq(a.edp, b.edp)
        && eq(a.breakdown.compute, b.breakdown.compute)
        && eq(a.breakdown.memory, b.breakdown.memory)
        && eq(a.breakdown.codec, b.breakdown.codec)
        && eq(a.breakdown.codecExposed, b.breakdown.codecExposed)
        && eq(a.breakdown.startup, b.breakdown.startup)
        && eq(a.breakdown.total, b.breakdown.total)
        && eq(a.bwUtilisation, b.bwUtilisation)
        && eq(a.computeUtilisation, b.computeUtilisation)
        && eq(a.schedUtilisation, b.schedUtilisation);
}

workload::ProfileSpec
testSpec(uint64_t seed = 5, double sparsity = 0.625)
{
    workload::ProfileSpec spec;
    spec.shape = {"cache-test", 64, 128, 32};
    spec.sparsity = sparsity;
    spec.seed = seed;
    return spec;
}

TEST(ProfileCache, ColdWarmAndDisabledAgree)
{
    const StoreGuard guard;
    ContentStore &store = ContentStore::instance();
    const std::string dir = scratchDir("profile");

    store.setEnabled(false);
    const LayerProfile reference = buildLayerProfile(testSpec());

    store.setEnabled(true);
    store.setDiskDir(dir);
    store.clearMemory();
    const auto before = store.stats();
    const LayerProfile cold = buildLayerProfile(testSpec());
    const LayerProfile warm = buildLayerProfile(testSpec());
    const auto after = store.stats();

    EXPECT_TRUE(sameProfile(cold, reference));
    EXPECT_TRUE(sameProfile(warm, reference));
    EXPECT_EQ(after.misses, before.misses + 1);
    EXPECT_GE(after.memoryHits, before.memoryHits + 1);

    // Disk-warm: a fresh memory map must be fed from the blob, still
    // bit-identical.
    store.clearMemory();
    const LayerProfile disk_warm = buildLayerProfile(testSpec());
    EXPECT_TRUE(sameProfile(disk_warm, reference));
    EXPECT_EQ(store.stats().diskHits, after.diskHits + 1);

    std::filesystem::remove_all(dir);
}

TEST(ProfileCache, KeySeparatesSpecs)
{
    const StoreGuard guard;
    ContentStore &store = ContentStore::instance();
    store.setEnabled(true);
    store.setDiskDir("");
    store.clearMemory();

    // Warm the cache with one spec, then request near-identical specs
    // differing in exactly one key field: each must be a fresh build
    // (different content key), never a false hit.
    const LayerProfile base = buildLayerProfile(testSpec(5, 0.625));
    const LayerProfile seed = buildLayerProfile(testSpec(6, 0.625));
    const LayerProfile sp = buildLayerProfile(testSpec(5, 0.5));
    EXPECT_FALSE(sameProfile(base, seed));
    EXPECT_FALSE(sameProfile(base, sp));

    auto named = testSpec();
    named.shape.name = "cache-test-renamed";
    // synthWeights seeds from the shape name, so the name is part of
    // the content; a rename must miss and rebuild.
    const LayerProfile renamed = buildLayerProfile(named);
    EXPECT_FALSE(sameProfile(base, renamed));
}

TEST(ProfileCache, KeySeparatesMaskStrategies)
{
    const StoreGuard guard;
    ContentStore &store = ContentStore::instance();
    store.setEnabled(true);
    store.setDiskDir("");
    store.clearMemory();

    // The mask-search strategy is a determining input: a spec naming
    // `optimal` must never be served a profile the greedy default
    // built (their masks differ, docs/mask_search.md).
    const auto before = store.stats();
    const LayerProfile base = buildLayerProfile(testSpec());
    auto opt = testSpec();
    opt.maskStrategy = "optimal";
    const LayerProfile optimal = buildLayerProfile(opt);
    EXPECT_FALSE(sameProfile(base, optimal));
    EXPECT_EQ(store.stats().misses, before.misses + 2);

    // The spelled-out default keys separately from the empty string
    // (the key hashes the raw name) but must rebuild to the same
    // bits — a conservative split, never a false hit.
    auto named = testSpec();
    named.maskStrategy = "greedy";
    const LayerProfile greedy = buildLayerProfile(named);
    EXPECT_EQ(store.stats().misses, before.misses + 3);
    EXPECT_TRUE(sameProfile(base, greedy));
}

TEST(SimCache, CachedStatsBitIdentical)
{
    const StoreGuard guard;
    ContentStore &store = ContentStore::instance();
    const std::string dir = scratchDir("sim");

    LayerProfile layer;
    layer.x = 256;
    layer.y = 256;
    layer.nb = 64;
    layer.m = 8;
    layer.aNnz = 256 * 256 / 2;
    layer.blocks.assign(32 * 32, sim::BlockTask{32, 4, false, 8});
    layer.aStream = {layer.aNnz * 2, layer.aNnz * 2, 2};

    store.setEnabled(false);
    const sim::RunStats reference = simulateLayer(layer, sim::ArchConfig{});

    store.setEnabled(true);
    store.setDiskDir(dir);
    store.clearMemory();
    const sim::RunStats cold = simulateLayer(layer, sim::ArchConfig{});
    const sim::RunStats warm = simulateLayer(layer, sim::ArchConfig{});
    store.clearMemory();
    const sim::RunStats disk = simulateLayer(layer, sim::ArchConfig{});

    EXPECT_TRUE(sameStats(cold, reference));
    EXPECT_TRUE(sameStats(warm, reference));
    EXPECT_TRUE(sameStats(disk, reference));

    // Any config change must miss: hostThreads is the one excluded
    // field (host parallelism never changes results).
    sim::ArchConfig faster;
    faster.clockGhz *= 2.0;
    const sim::RunStats other = simulateLayer(layer, faster);
    EXPECT_FALSE(sameStats(other, reference));

    std::filesystem::remove_all(dir);
}

TEST(ContentStoreBlob, RoundTripAndRejection)
{
    const std::vector<uint8_t> payload = {1, 2, 3, 250, 251, 252, 0, 9};
    const uint64_t key = 0x0123456789abcdefull;
    const std::vector<uint8_t> blob =
        ContentStore::makeBlob("profile", key, payload);

    const auto ok = ContentStore::parseBlob(blob, "profile", key);
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(*ok, payload);

    // Wrong kind and wrong key must both reject (a blob can never be
    // served to a caller it was not computed for).
    EXPECT_FALSE(ContentStore::parseBlob(blob, "sim", key));
    EXPECT_FALSE(ContentStore::parseBlob(blob, "profile", key + 1));

    // Every single-bit flip anywhere in the blob must reject: header
    // flips break magic/version/kind/key/size, payload flips break
    // the CRC.
    for (size_t bit = 0; bit < blob.size() * 8; ++bit) {
        auto bad = blob;
        bad[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(ContentStore::parseBlob(bad, "profile", key))
            << "accepted blob with bit " << bit << " flipped";
    }

    // Truncations and extensions reject (size field mismatch).
    for (const size_t cut : {0u, 1u, 35u, 36u, 40u})
        EXPECT_FALSE(ContentStore::parseBlob(
            std::span(blob.data(), std::min(cut, blob.size())),
            "profile", key));
    auto extended = blob;
    extended.push_back(0);
    EXPECT_FALSE(ContentStore::parseBlob(extended, "profile", key));
}

TEST(ContentStore, DiskRejectsCorruptionAndRecomputes)
{
    ContentStore store; // Local instance; singleton untouched.
    const std::string dir = scratchDir("reject");
    store.setDiskDir(dir);

    const std::vector<uint8_t> payload(64, 0xa5);
    store.put("profile", 42, payload);
    ASSERT_TRUE(std::filesystem::exists(store.blobPath("profile", 42)));

    // Corrupt one payload byte on disk, then force a disk read.
    {
        std::FILE *f =
            std::fopen(store.blobPath("profile", 42).c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 40, SEEK_SET);
        std::fputc(0x00, f);
        std::fclose(f);
    }
    store.clearMemory();
    EXPECT_FALSE(store.get("profile", 42).has_value());
    EXPECT_EQ(store.stats().diskRejects, 1u);

    // getOrCompute must also reject the blob and recompute.
    std::atomic<int> computed{0};
    const auto [bytes, outcome] = store.getOrCompute("profile", 42, [&] {
        ++computed;
        return payload;
    });
    EXPECT_EQ(outcome, CacheOutcome::Computed);
    EXPECT_EQ(computed.load(), 1);
    EXPECT_EQ(bytes, payload);

    // The recompute overwrote the corrupt blob with a valid one.
    store.clearMemory();
    EXPECT_TRUE(store.get("profile", 42).has_value());

    std::filesystem::remove_all(dir);
}

TEST(ContentStore, SingleFlightComputesOncePerKey)
{
    ContentStore store;
    std::atomic<int> computes{0};
    std::atomic<int> started{0};
    constexpr int kThreads = 8;

    std::vector<std::thread> pool;
    std::vector<std::vector<uint8_t>> results(kThreads);
    std::vector<CacheOutcome> outcomes(kThreads);
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([&, t] {
            ++started;
            while (started.load() < kThreads) // Maximize contention.
                std::this_thread::yield();
            auto [bytes, outcome] = store.getOrCompute("sim", 7, [&] {
                ++computes;
                // Hold the flight open long enough for every other
                // thread to reach the wait path.
                std::this_thread::sleep_for(std::chrono::milliseconds(20));
                return std::vector<uint8_t>{9, 9, 9};
            });
            results[t] = std::move(bytes);
            outcomes[t] = outcome;
        });
    for (auto &th : pool)
        th.join();

    // Exactly one producer; everyone observes its payload.
    EXPECT_EQ(computes.load(), 1);
    int produced = 0;
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(results[t], (std::vector<uint8_t>{9, 9, 9}));
        produced += outcomes[t] == CacheOutcome::Computed;
    }
    EXPECT_EQ(produced, 1);

    // Distinct keys are independent flights.
    std::atomic<int> other{0};
    store.getOrCompute("sim", 8, [&] {
        ++other;
        return std::vector<uint8_t>{1};
    });
    EXPECT_EQ(other.load(), 1);
}

TEST(ContentStore, DisabledPassesThrough)
{
    ContentStore store;
    store.setEnabled(false);
    int calls = 0;
    for (int i = 0; i < 2; ++i) {
        const auto [bytes, outcome] = store.getOrCompute("sim", 1, [&] {
            ++calls;
            return std::vector<uint8_t>{5};
        });
        EXPECT_EQ(outcome, CacheOutcome::Disabled);
        EXPECT_EQ(bytes, std::vector<uint8_t>{5});
    }
    EXPECT_EQ(calls, 2); // No caching while disabled.
    EXPECT_FALSE(store.get("sim", 1).has_value());
}

} // namespace
