/**
 * @file
 * Unit tests for the dense linear algebra (Cholesky, SPD inverse, Gram).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/linalg.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace {

using namespace tbstc::core;
using tbstc::util::FatalError;
using tbstc::util::Rng;

/** Random SPD matrix A = B * B^T + eps * I. */
Matrix
randomSpd(size_t n, Rng &rng)
{
    Matrix b(n, n);
    for (auto &v : b.data())
        v = static_cast<float>(rng.gaussian());
    Matrix a = matmul(b, b.transposed());
    for (size_t i = 0; i < n; ++i)
        a.at(i, i) += 0.5f;
    return a;
}

TEST(Cholesky, ReconstructsMatrix)
{
    Rng rng(1);
    const Matrix a = randomSpd(12, rng);
    const Matrix l = choleskyLower(a);
    const Matrix rec = matmul(l, l.transposed());
    EXPECT_LT(maxAbsDiff(rec, a), 1e-3);
}

TEST(Cholesky, LowerIsTriangular)
{
    Rng rng(2);
    const Matrix l = choleskyLower(randomSpd(8, rng));
    for (size_t i = 0; i < 8; ++i)
        for (size_t j = i + 1; j < 8; ++j)
            EXPECT_EQ(l.at(i, j), 0.0f);
}

TEST(Cholesky, UpperMatchesLowerTransposed)
{
    Rng rng(3);
    const Matrix a = randomSpd(6, rng);
    EXPECT_EQ(choleskyUpper(a), choleskyLower(a).transposed());
}

TEST(Cholesky, RejectsIndefinite)
{
    Matrix a(2, 2, {1.0f, 2.0f, 2.0f, 1.0f}); // Eigenvalues 3, -1.
    EXPECT_THROW(choleskyLower(a), FatalError);
}

TEST(SpdInverse, ProducesIdentity)
{
    Rng rng(4);
    const Matrix a = randomSpd(10, rng);
    const Matrix inv = spdInverse(a);
    const Matrix prod = matmul(a, inv);
    EXPECT_LT(maxAbsDiff(prod, identity(10)), 1e-2);
}

TEST(SpdInverse, DiagonalCase)
{
    Matrix a(2, 2, {4.0f, 0.0f, 0.0f, 0.25f});
    const Matrix inv = spdInverse(a);
    EXPECT_NEAR(inv.at(0, 0), 0.25f, 1e-6);
    EXPECT_NEAR(inv.at(1, 1), 4.0f, 1e-6);
    EXPECT_NEAR(inv.at(0, 1), 0.0f, 1e-6);
}

TEST(Gram, IsSymmetricPositiveDefinite)
{
    Rng rng(5);
    Matrix x(40, 16);
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian());
    const Matrix h = gramFromActivations(x);
    for (size_t i = 0; i < 16; ++i)
        for (size_t j = 0; j < 16; ++j)
            EXPECT_NEAR(h.at(i, j), h.at(j, i), 1e-5);
    EXPECT_NO_THROW(choleskyLower(h));
}

TEST(Gram, MatchesDirectComputation)
{
    Matrix x(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
    const Matrix h = gramFromActivations(x, 0.0);
    // H = X^T X / n (damping zero; diagonal floor only if <= 0).
    EXPECT_NEAR(h.at(0, 0), (1.0 + 9.0) / 2.0, 1e-5);
    EXPECT_NEAR(h.at(0, 1), (2.0 + 12.0) / 2.0, 1e-5);
    EXPECT_NEAR(h.at(1, 1), (4.0 + 16.0) / 2.0, 1e-5);
}

TEST(Gram, RankDeficientStillFactorizable)
{
    // One sample in 8 dims: rank-1 Gram; damping must rescue it.
    Matrix x(1, 8);
    for (size_t f = 0; f < 8; ++f)
        x.at(0, f) = 1.0f;
    const Matrix h = gramFromActivations(x, 0.05);
    EXPECT_NO_THROW(choleskyLower(h));
}

TEST(Identity, Basic)
{
    const Matrix i = identity(3);
    EXPECT_EQ(i.at(0, 0), 1.0f);
    EXPECT_EQ(i.at(0, 1), 0.0f);
    const Matrix a(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    EXPECT_EQ(matmul(a, i), a);
}

} // namespace
