/**
 * @file
 * Unit tests for the MLP: gradient correctness, training dynamics,
 * masked layers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace {

using namespace tbstc::nn;
using tbstc::core::Mask;
using tbstc::core::Matrix;
using tbstc::util::Rng;

TEST(Mlp, ForwardShapes)
{
    Rng rng(1);
    Mlp model({8, 16, 4}, rng);
    Matrix x(5, 8);
    const Matrix logits = model.forward(x);
    EXPECT_EQ(logits.rows(), 5u);
    EXPECT_EQ(logits.cols(), 4u);
}

TEST(Mlp, GradientMatchesNumerical)
{
    Rng rng(2);
    Mlp model({4, 6, 3}, rng);
    Matrix x(2, 4);
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian());
    const std::vector<size_t> labels{0, 2};

    const Matrix logits = model.forward(x);
    (void)model.backward(logits, labels);

    // Spot-check several weight gradients against central differences.
    const double eps = 1e-3;
    for (size_t li = 0; li < 2; ++li) {
        auto &layer = model.layers()[li];
        for (size_t idx : {size_t{0}, size_t{5},
                           layer.w.size() - 1}) {
            const float orig = layer.w.data()[idx];
            layer.w.data()[idx] = orig + static_cast<float>(eps);
            const double lp = model.loss(x, labels);
            layer.w.data()[idx] = orig - static_cast<float>(eps);
            const double lm = model.loss(x, labels);
            layer.w.data()[idx] = orig;
            const double numeric = (lp - lm) / (2.0 * eps);
            EXPECT_NEAR(layer.gradW.data()[idx], numeric, 5e-2)
                << "layer " << li << " idx " << idx;
        }
    }
}

TEST(Mlp, TrainingReducesLoss)
{
    Rng rng(3);
    DatasetConfig dc;
    dc.features = 16;
    dc.classes = 4;
    dc.trainSamples = 512;
    dc.testSamples = 128;
    const DataSplit data = makeClusterDataset(dc, rng);

    Mlp model({16, 32, 4}, rng);
    const double loss0 = model.loss(data.train.x, data.train.labels);
    for (int step = 0; step < 60; ++step) {
        const Matrix logits = model.forward(data.train.x);
        (void)model.backward(logits, data.train.labels);
        model.sgdStep(0.1);
    }
    const double loss1 = model.loss(data.train.x, data.train.labels);
    EXPECT_LT(loss1, loss0 * 0.7);
    EXPECT_GT(model.accuracy(data.test.x, data.test.labels), 0.5);
}

TEST(Mlp, MaskedLayerZeroesContributions)
{
    Rng rng(4);
    Mlp model({4, 8, 2}, rng);
    auto &hidden = model.layers()[0];

    Matrix x(1, 4, {1.0f, 1.0f, 1.0f, 1.0f});
    const Matrix before = model.forward(x);

    // Mask everything in the first layer: output must change and
    // effectively see a zero hidden activation (bias only).
    hidden.mask = Mask(8, 4);
    hidden.masked = true;
    const Matrix after = model.forward(x);
    EXPECT_NE(before, after);

    // effectiveW must be all zeros now.
    const Matrix eff = hidden.effectiveW();
    for (float v : eff.data())
        EXPECT_EQ(v, 0.0f);
}

TEST(Mlp, ClearMasksRestoresDense)
{
    Rng rng(5);
    Mlp model({4, 8, 2}, rng);
    Matrix x(1, 4, {1.0f, -1.0f, 0.5f, 2.0f});
    const Matrix dense = model.forward(x);
    model.layers()[0].mask = Mask(8, 4);
    model.layers()[0].masked = true;
    model.clearMasks();
    EXPECT_EQ(model.forward(x), dense);
}

TEST(Mlp, SrSteDecayShrinksPrunedWeights)
{
    Rng rng(6);
    Mlp model({4, 8, 2}, rng);
    auto &layer = model.layers()[0];
    layer.mask = Mask(8, 4); // All pruned.
    layer.masked = true;

    Matrix x(2, 4);
    const std::vector<size_t> labels{0, 1};
    const double before = layer.w.absSum();
    for (int i = 0; i < 50; ++i) {
        const Matrix logits = model.forward(x);
        (void)model.backward(logits, labels);
        model.sgdStep(0.1, 0.0, 0.5);
    }
    // Inputs are zero, so the only weight force is the decay: pruned
    // weights must shrink.
    EXPECT_LT(layer.w.absSum(), before * 0.5);
}

TEST(Dataset, ShapesAndLabels)
{
    Rng rng(7);
    DatasetConfig dc;
    dc.features = 24;
    dc.classes = 5;
    dc.trainSamples = 100;
    dc.testSamples = 50;
    const DataSplit data = makeClusterDataset(dc, rng);
    EXPECT_EQ(data.train.samples(), 100u);
    EXPECT_EQ(data.test.samples(), 50u);
    EXPECT_EQ(data.train.features(), 24u);
    for (size_t l : data.train.labels)
        EXPECT_LT(l, 5u);
}

TEST(Dataset, Learnable)
{
    // A trained model must beat chance clearly: the dataset carries
    // class signal.
    Rng rng(8);
    DatasetConfig dc;
    dc.features = 16;
    dc.classes = 4;
    dc.trainSamples = 1024;
    dc.testSamples = 256;
    const DataSplit data = makeClusterDataset(dc, rng);
    Mlp model({16, 48, 4}, rng);
    for (int step = 0; step < 120; ++step) {
        const Matrix logits = model.forward(data.train.x);
        (void)model.backward(logits, data.train.labels);
        model.sgdStep(0.1);
    }
    EXPECT_GT(model.accuracy(data.test.x, data.test.labels), 0.6);
}

} // namespace
