/**
 * @file
 * Property-based sweeps over the mask generators: structural
 * invariants must hold for every (pattern, sparsity, block size,
 * matrix shape) combination.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "util/rng.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc::core;
using tbstc::util::Rng;

Matrix
randomScores(size_t r, size_t c, uint64_t seed)
{
    Rng rng(seed);
    Matrix m(r, c);
    for (auto &v : m.data())
        v = static_cast<float>(std::fabs(rng.heavyTail()));
    return m;
}

// ---------------------------------------------------------------------
// Sparsity sweep: every pattern respects its structure and lands near
// the requested target at any sparsity degree.
// ---------------------------------------------------------------------

class SparsitySweep
    : public ::testing::TestWithParam<std::tuple<Pattern, double>>
{
};

TEST_P(SparsitySweep, StructureAndTargetHold)
{
    const auto [pattern, sparsity] = GetParam();
    const size_t m = 8;
    const Matrix s = randomScores(96, 96, 101);
    const auto cand = defaultCandidates(m);
    const Mask mask = patternMask(pattern, s, sparsity, m, cand);

    EXPECT_NEAR(mask.sparsity(), sparsity, 0.06);

    if (pattern == Pattern::TBS) {
        const TbsResult res = tbsMask(s, sparsity, m, cand);
        EXPECT_TRUE(validateTbs(res.mask, res.meta));
    }
    if (pattern == Pattern::US) {
        // US hits the target exactly (top-k).
        const auto expect = static_cast<size_t>(
            std::llround((1.0 - sparsity) * 96.0 * 96.0));
        EXPECT_EQ(mask.nnz(), expect);
    }
}

std::string
sparsitySweepName(
    const ::testing::TestParamInfo<std::tuple<Pattern, double>> &info)
{
    std::string name = patternName(std::get<0>(info.param)) + "_s"
        + std::to_string(static_cast<int>(std::get<1>(info.param) * 1000));
    std::erase(name, '-'); // gtest only allows alphanumerics.
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    PatternsBySparsity, SparsitySweep,
    ::testing::Combine(
        ::testing::Values(Pattern::US, Pattern::TS, Pattern::RSV,
                          Pattern::RSH, Pattern::TBS),
        ::testing::Values(0.25, 0.375, 0.5, 0.625, 0.75, 0.875)),
    sparsitySweepName);

// ---------------------------------------------------------------------
// Block-size sweep: TBS invariants hold for every power-of-two M.
// ---------------------------------------------------------------------

class BlockSizeSweep : public ::testing::TestWithParam<size_t>
{
};

TEST_P(BlockSizeSweep, TbsValidAtAllBlockSizes)
{
    const size_t m = GetParam();
    const Matrix s = randomScores(2 * m * 4, m * 8, 300 + m);
    const auto cand = defaultCandidates(m);
    const TbsResult res = tbsMask(s, 0.5, m, cand);
    EXPECT_TRUE(validateTbs(res.mask, res.meta));
    EXPECT_NEAR(res.mask.sparsity(), 0.5, 0.05);
}

TEST_P(BlockSizeSweep, SimilarityToUsGrowsWithSmallerBlocks)
{
    // Finer blocks track the unstructured mask at least as well as a
    // single coarse block (not strictly monotone per sample, so
    // compare the extremes).
    const size_t m = GetParam();
    if (m > 8)
        return; // Only check the fine end.
    const Matrix w =
        tbstc::workload::synthWeights({"bss-probe", 64, 64, 1}, 77);
    const Matrix s = magnitudeScores(w);
    const Mask us = usMask(s, 0.5);
    const auto tbs_m =
        tbsMask(s, 0.5, m, defaultCandidates(m)).mask.overlap(us);
    const auto tbs_32 =
        tbsMask(s, 0.5, 32, defaultCandidates(32)).mask.overlap(us);
    EXPECT_GE(tbs_m + 0.02, tbs_32);
}

std::string
blockSizeName(const ::testing::TestParamInfo<size_t> &info)
{
    return "M" + std::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, BlockSizeSweep,
                         ::testing::Values(4, 8, 16, 32),
                         blockSizeName);

// ---------------------------------------------------------------------
// Criterion sweep: pattern structure is independent of the criterion
// (the paper's orthogonality note).
// ---------------------------------------------------------------------

class CriterionSweep : public ::testing::TestWithParam<Criterion>
{
};

TEST_P(CriterionSweep, TbsValidUnderAllCriteria)
{
    Rng rng(55);
    Matrix w(48, 48);
    for (auto &v : w.data())
        v = static_cast<float>(rng.heavyTail() * 0.05);
    Matrix acts(96, 48);
    for (auto &v : acts.data())
        v = static_cast<float>(std::max(0.0, rng.gaussian()));

    const Matrix scores = criterionScores(GetParam(), w, acts);
    const TbsResult res = tbsMask(scores, 0.5, 8, defaultCandidates(8));
    EXPECT_TRUE(validateTbs(res.mask, res.meta));
    EXPECT_NEAR(res.mask.sparsity(), 0.5, 0.05);
}

std::string
criterionSweepName(const ::testing::TestParamInfo<Criterion> &info)
{
    return criterionName(info.param);
}

INSTANTIATE_TEST_SUITE_P(Criteria, CriterionSweep,
                         ::testing::Values(Criterion::Magnitude,
                                           Criterion::Wanda,
                                           Criterion::SparseGpt),
                         criterionSweepName);

// ---------------------------------------------------------------------
// Similarity ordering: the paper's Fig. 4(b) claim — TBS tracks US
// better than the row-wise patterns, which beat tile-wise — must hold
// across sparsity degrees and seeds.
// ---------------------------------------------------------------------

class SimilarityOrdering
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>>
{
};

TEST_P(SimilarityOrdering, TbsTracksUsBest)
{
    const auto [sparsity, seed] = GetParam();
    const Matrix s = randomScores(128, 128, seed);
    const auto cand = defaultCandidates(8);
    const Mask us = usMask(s, sparsity);
    const double sim_ts =
        patternMask(Pattern::TS, s, sparsity, 8, cand).overlap(us);
    const double sim_rsv =
        patternMask(Pattern::RSV, s, sparsity, 8, cand).overlap(us);
    const double sim_tbs =
        patternMask(Pattern::TBS, s, sparsity, 8, cand).overlap(us);
    EXPECT_GT(sim_tbs, sim_ts);
    EXPECT_GE(sim_tbs + 0.01, sim_rsv);
}

std::string
similarityName(
    const ::testing::TestParamInfo<std::tuple<double, uint64_t>> &info)
{
    return "s"
        + std::to_string(static_cast<int>(std::get<0>(info.param) * 1000))
        + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    SimilaritySweep, SimilarityOrdering,
    ::testing::Combine(::testing::Values(0.5, 0.625, 0.75),
                       ::testing::Values(uint64_t{1001}, uint64_t{1002},
                                         uint64_t{1003})),
    similarityName);

} // namespace
