/**
 * @file
 * ContentStore cross-process contention test.
 *
 * Two child processes (re-executions of this test binary, selected via
 * TBSTC_XPROC_* env vars) hammer one shared cache directory — the same
 * situation as two `tbstc` invocations pointed at the same
 * --profile-cache dir. Each child runs several rounds of getOrCompute
 * over an identical key set, clearing its memory map between rounds so
 * later rounds must go through the disk store while the sibling may be
 * mid-write to the very same blobs. The temp-file + atomic-rename
 * protocol promises readers only ever observe complete blobs, so every
 * payload either validates bit-exactly or misses cleanly — never a
 * torn read.
 *
 * The child reports a CRC folded over every payload it observed; the
 * parent requires both children to agree and to match its own
 * recomputation, then re-reads every blob from disk through a fresh
 * store to confirm all keys landed and validate.
 *
 * Note: the helper lives in its own suite (ContentStoreXProcChild) so
 * a `ContentStore.*` gtest filter never runs it; without the env vars
 * it skips.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>
#include <unistd.h>

#include "util/contentstore.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace {

using tbstc::util::CacheOutcome;
using tbstc::util::ContentStore;

constexpr const char *kKind = "xproc";
constexpr uint64_t kKeys = 24;
constexpr int kRounds = 6;

/** Deterministic payload for a key — identical across processes. */
std::vector<uint8_t>
payloadFor(uint64_t key)
{
    tbstc::util::Rng rng(0x9e3779b9u ^ key);
    std::vector<uint8_t> bytes(64 + (key % 192));
    for (auto &b : bytes)
        b = static_cast<uint8_t>(rng.next());
    return bytes;
}

/** CRC folded over the payloads of every key, in key order. */
uint32_t
foldedCrc(const std::function<std::vector<uint8_t>(uint64_t)> &fetch)
{
    uint32_t crc = 0;
    for (uint64_t key = 0; key < kKeys; ++key) {
        const std::vector<uint8_t> p = fetch(key);
        crc = tbstc::util::crc32(p, crc);
    }
    return crc;
}

/**
 * Child body: rounds of getOrCompute against the shared dir with the
 * memory map dropped between rounds, so disk reads race the sibling's
 * writes. Prints one machine-readable line the parent scrapes.
 */
TEST(ContentStoreXProcChild, Run)
{
    const char *dir = std::getenv("TBSTC_XPROC_DIR");
    if (dir == nullptr || *dir == '\0')
        GTEST_SKIP() << "helper: run via ContentStoreXProc parent";

    ContentStore store;
    store.setDiskDir(dir);
    uint32_t crc = 0;
    for (int round = 0; round < kRounds; ++round) {
        crc = foldedCrc([&](uint64_t key) {
            auto [payload, outcome] = store.getOrCompute(
                kKind, key, [key] { return payloadFor(key); });
            EXPECT_NE(outcome, CacheOutcome::Disabled);
            return payload;
        });
        store.clearMemory();
    }
    const ContentStore::Stats s = store.stats();
    // Rounds after the first hit disk (or recompute past a racing
    // writer); either way every payload validated against the CRC.
    std::printf("XPROC_RESULT crc=%08x diskhits=%llu puts=%llu "
                "rejects=%llu\n",
                crc,
                static_cast<unsigned long long>(s.diskHits),
                static_cast<unsigned long long>(s.puts),
                static_cast<unsigned long long>(s.diskRejects));
    std::fflush(stdout);
}

/** A reaped child: captured stdout + exit status. */
struct ChildRun
{
    std::string output;
    int status = -1;
};

TEST(ContentStoreXProc, TwoProcessesShareOneCacheDir)
{
    const std::string dir =
        testing::TempDir() + "tbstc-xproc-"
        + std::to_string(static_cast<unsigned long long>(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    // Start both children before reaping either, so their rounds
    // genuinely overlap on the shared directory.
    const std::string exe =
        std::filesystem::read_symlink("/proc/self/exe").string();
    std::vector<FILE *> pipes;
    for (int child = 0; child < 2; ++child) {
        const std::string cmd =
            "TBSTC_XPROC_DIR='" + dir + "' '" + exe
            + "' --gtest_filter=ContentStoreXProcChild.Run 2>&1";
        FILE *pipe = ::popen(cmd.c_str(), "r");
        ASSERT_NE(pipe, nullptr);
        pipes.push_back(pipe);
    }
    std::vector<ChildRun> runs;
    for (FILE *pipe : pipes) {
        ChildRun run;
        char buf[512];
        while (std::fgets(buf, sizeof buf, pipe) != nullptr)
            run.output += buf;
        run.status = ::pclose(pipe);
        runs.push_back(std::move(run));
    }

    // The expected fold: payloads computed locally, no store at all.
    const uint32_t want = foldedCrc(payloadFor);
    char wantLine[64];
    std::snprintf(wantLine, sizeof wantLine, "crc=%08x", want);

    for (const ChildRun &run : runs) {
        EXPECT_EQ(run.status, 0) << run.output;
        EXPECT_NE(run.output.find("XPROC_RESULT"), std::string::npos)
            << run.output;
        EXPECT_NE(run.output.find(wantLine), std::string::npos)
            << "child observed different payload bytes:\n"
            << run.output;
        EXPECT_NE(run.output.find("rejects=0"), std::string::npos)
            << "child rejected a disk blob under contention:\n"
            << run.output;
    }

    // Every key must have landed on disk as a validating blob, and a
    // fresh store (third "process") must serve all of them from disk.
    ContentStore reader;
    reader.setDiskDir(dir);
    for (uint64_t key = 0; key < kKeys; ++key) {
        const auto blob = reader.get(kKind, key);
        ASSERT_TRUE(blob.has_value()) << "missing blob for key " << key;
        EXPECT_EQ(*blob, payloadFor(key)) << "key " << key;
    }
    EXPECT_EQ(reader.stats().diskHits, kKeys);
    EXPECT_EQ(reader.stats().diskRejects, 0u);

    std::filesystem::remove_all(dir);
}

} // namespace
