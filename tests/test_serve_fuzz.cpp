/**
 * @file
 * Adversarial protocol fuzzing of the serve daemon, in-process: the
 * seeded fuzzer (serve/fuzz.hpp) drives >= 1000 corrupted frames
 * across the three probe geometries against a live Server and the
 * test asserts the robustness contract — the daemon never dies,
 * never leaks a connection or fd, and keeps answering well-formed
 * requests with clean-connection bytes. Runs under TSan in CI's
 * serve-smoke job (Serve* filter) and under ASan+UBSan via the
 * sanitizer job's ServeFuzz* filter.
 */

#include <gtest/gtest.h>

#include <string>

#include <dirent.h>
#include <unistd.h>

#include "serve/fuzz.hpp"
#include "serve/jsonv.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace tbstc;
using namespace tbstc::serve;

/** Open descriptors of this process (the fuzz leak budget). */
size_t
openFdCount()
{
    DIR *d = ::opendir("/proc/self/fd");
    if (d == nullptr)
        return 0;
    size_t n = 0;
    while (::readdir(d) != nullptr)
        ++n;
    ::closedir(d);
    return n;
}

/** One clean ping proving the daemon still serves. */
bool
daemonAnswersPing(const std::string &socketPath, uint16_t port)
{
    std::string err;
    const int fd = connectClient(socketPath, port, err);
    if (fd < 0)
        return false;
    Request ping;
    ping.id = 99;
    ping.op = Op::Ping;
    std::string frame;
    const bool ok = writeFrame(fd, serializeRequest(ping))
        && readFrameDeadline(fd, frame, kDefaultMaxFrameBytes,
                             {5000, 5000})
            == FrameStatus::Ok;
    ::close(fd);
    if (!ok)
        return false;
    const auto doc = parseJson(frame);
    return doc.ok() && doc->get("ok").asBool(false);
}

TEST(ServeFuzz, ThousandMutatedFramesNeverAbortOrLeak)
{
    const size_t fdsBefore = openFdCount();
    {
        ServerOptions opts;
        Server server(opts);
        const auto started = server.start();
        ASSERT_TRUE(started.ok()) << started.error();

        FuzzOptions fopts;
        fopts.port = *started;
        fopts.seed = 7;
        fopts.sessions = 125;
        fopts.framesPerSession = 8;
        const auto stats = runProtocolFuzz(fopts);
        ASSERT_TRUE(stats.ok()) << stats.error();

        // The acceptance bar: >= 1000 corrupted frames delivered.
        EXPECT_GE(stats->mutatedFrames, 1000u);
        EXPECT_EQ(stats->sessions, 125u);

        // Every end-of-session probe (3 geometries per session) was
        // answered with the clean-connection reference bytes.
        EXPECT_EQ(stats->probes, 3u * stats->sessions);
        EXPECT_EQ(stats->probeMismatches, 0u);

        // Framing-safe corruption was actually answered, and desync
        // corruption actually forced reconnects — the campaign
        // exercised both classes.
        EXPECT_GT(stats->responses, 0u);
        EXPECT_GT(stats->reconnects, 0u);

        // The daemon is still fully alive for a fresh client.
        EXPECT_TRUE(daemonAnswersPing("", *started));

        server.beginShutdown();
        server.wait();

        // The corruption showed up in the typed counters, not in
        // crashes: every reader thread exited and was joined.
        const ServerCounters c = server.counters();
        EXPECT_GT(c.badRequests + c.badFrames, 0u);
    }
    // All sockets (listen, wake pipe, every connection) are closed:
    // no fd leaked per mutated frame or per reaped connection.
    EXPECT_LE(openFdCount(), fdsBefore + 2);
}

TEST(ServeFuzz, UnixSocketPathSurvivesTheSameCampaign)
{
    const std::string path = "/tmp/tbstc_fuzz_test.sock";
    ServerOptions opts;
    opts.socketPath = path;
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    FuzzOptions fopts;
    fopts.socketPath = path;
    fopts.seed = 11;
    fopts.sessions = 25;
    fopts.framesPerSession = 8;
    const auto stats = runProtocolFuzz(fopts);
    ASSERT_TRUE(stats.ok()) << stats.error();
    EXPECT_EQ(stats->probeMismatches, 0u);
    EXPECT_TRUE(daemonAnswersPing(path, 0));

    server.beginShutdown();
    server.wait();
}

} // namespace
