/**
 * @file
 * Tests for one-shot pruning (Wanda / SparseGPT, paper Table II).
 */

#include <gtest/gtest.h>

#include "nn/oneshot.hpp"
#include "nn/sparse_train.hpp"
#include "util/rng.hpp"

namespace {

using namespace tbstc::nn;
using tbstc::core::Criterion;
using tbstc::core::Pattern;
using tbstc::util::Rng;

struct TrainedModel
{
    DataSplit data;
    Mlp model;

    TrainedModel() : data(makeData()), model(makeModel())
    {
        Rng rng(12);
        TrainConfig cfg;
        cfg.pattern = Pattern::Dense;
        cfg.epochs = 16;
        cfg.lr = 0.08;
        (void)sparseTrain(model, data, cfg, rng);
    }

    static DataSplit
    makeData()
    {
        Rng rng(10);
        DatasetConfig dc;
        dc.features = 16;
        dc.classes = 4;
        dc.trainSamples = 1024;
        dc.testSamples = 512;
        return makeClusterDataset(dc, rng);
    }

    static Mlp
    makeModel()
    {
        Rng rng(11);
        return Mlp({16, 32, 32, 4}, rng);
    }

    double
    accuracy(Mlp &m)
    {
        return m.accuracy(data.test.x, data.test.labels);
    }
};

TEST(Oneshot, PruningKeepsMostAccuracy)
{
    TrainedModel t;
    const double dense_acc = t.accuracy(t.model);
    ASSERT_GT(dense_acc, 0.6);

    Mlp pruned = t.model;
    OneshotConfig cfg;
    cfg.pattern = Pattern::TBS;
    cfg.criterion = Criterion::Wanda;
    cfg.sparsity = 0.5;
    oneshotPrune(pruned, t.data.train.x, cfg);
    const double pruned_acc = t.accuracy(pruned);
    EXPECT_GT(pruned_acc, dense_acc - 0.15);
    EXPECT_TRUE(pruned.layers()[1].masked);
    EXPECT_NEAR(pruned.layers()[1].mask.sparsity(), 0.5, 0.05);
}

TEST(Oneshot, ObsCompensationHelpsOrMatches)
{
    TrainedModel t;

    Mlp with = t.model;
    OneshotConfig cfg;
    cfg.pattern = Pattern::TBS;
    cfg.criterion = Criterion::SparseGpt;
    cfg.sparsity = 0.6;
    cfg.obsCompensation = true;
    oneshotPrune(with, t.data.train.x, cfg);

    Mlp without = t.model;
    cfg.obsCompensation = false;
    oneshotPrune(without, t.data.train.x, cfg);

    // Compensation adjusts kept weights, so the two models differ...
    EXPECT_NE(with.layers()[1].w, without.layers()[1].w);
    // ...and on held-out data the compensated model should not lose
    // (allow a small statistical margin).
    EXPECT_GE(t.accuracy(with) + 0.06, t.accuracy(without));
}

TEST(Oneshot, AllCriteriaRun)
{
    TrainedModel t;
    for (Criterion c : {Criterion::Magnitude, Criterion::Wanda,
                        Criterion::SparseGpt}) {
        Mlp pruned = t.model;
        OneshotConfig cfg;
        cfg.pattern = Pattern::TBS;
        cfg.criterion = c;
        cfg.sparsity = 0.5;
        oneshotPrune(pruned, t.data.train.x, cfg);
        EXPECT_GT(t.accuracy(pruned), 0.3)
            << criterionName(c);
    }
}

TEST(Oneshot, TbsBeatsTsOnAverage)
{
    // Table II's ordering at 50%: TBS should retain at least as much
    // accuracy as TS under the same criterion (single seed, so allow
    // a small margin).
    TrainedModel t;

    Mlp ts = t.model;
    OneshotConfig cfg;
    cfg.criterion = Criterion::Wanda;
    cfg.sparsity = 0.5;
    cfg.pattern = Pattern::TS;
    oneshotPrune(ts, t.data.train.x, cfg);

    Mlp tbs = t.model;
    cfg.pattern = Pattern::TBS;
    oneshotPrune(tbs, t.data.train.x, cfg);

    EXPECT_GE(t.accuracy(tbs) + 0.04, t.accuracy(ts));
}

} // namespace
