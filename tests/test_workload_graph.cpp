/**
 * @file
 * Tests for the full inference graph (weight + attention GEMMs).
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "workload/graph.hpp"

namespace {

using namespace tbstc;
using namespace tbstc::workload;

TEST(Graph, CnnsHaveNoActivationGemms)
{
    const auto ops = inferenceGraph(ModelId::ResNet50);
    for (const auto &op : ops)
        EXPECT_TRUE(op.weightOp);
    EXPECT_EQ(ops.size(), modelLayers(ModelId::ResNet50).size());
}

TEST(Graph, TransformersAddAttentionOps)
{
    const auto ops = inferenceGraph(ModelId::BertBase, 128);
    size_t activation_ops = 0;
    double activation_count = 0.0;
    for (const auto &op : ops) {
        if (!op.weightOp) {
            ++activation_ops;
            activation_count += op.count;
        }
    }
    EXPECT_EQ(activation_ops, 2u); // QK^T and PV.
    EXPECT_EQ(activation_count, 2.0 * 12 * 12); // heads x layers x 2.
}

TEST(Graph, AttentionGeometryMatchesPublishedConfigs)
{
    const auto bert = attentionGeometry(ModelId::BertBase);
    EXPECT_EQ(bert.heads, 12u);
    EXPECT_EQ(bert.headDim, 64u);
    const auto opt = attentionGeometry(ModelId::Opt67b);
    EXPECT_EQ(opt.heads * opt.headDim, 4096u);
}

TEST(Graph, MacSplitIsSequenceSensitive)
{
    // Attention MACs grow quadratically in seq; weight MACs linearly.
    const auto short_seq = graphMacs(ModelId::BertBase, 128);
    const auto long_seq = graphMacs(ModelId::BertBase, 512);
    const double act_ratio =
        long_seq.activationMacs / short_seq.activationMacs;
    const double w_ratio = long_seq.weightMacs / short_seq.weightMacs;
    EXPECT_NEAR(w_ratio, 4.0, 0.01);
    EXPECT_GT(act_ratio, 10.0);
    EXPECT_GT(long_seq.weightBoundSpeedupCeiling(), 1.0);
    EXPECT_LT(long_seq.weightBoundSpeedupCeiling(),
              short_seq.weightBoundSpeedupCeiling());
}

TEST(Graph, RunInferenceCostsMoreThanWeightsOnly)
{
    using accel::AccelKind;
    const auto weights_only = accel::runModel(
        AccelKind::TbStc, ModelId::BertBase, 0.75, 128);
    const auto full = accel::runInference(
        AccelKind::TbStc, ModelId::BertBase, 0.75, 128);
    EXPECT_GT(full.cycles, weights_only.cycles);
    EXPECT_GT(full.energy.totalJ(), weights_only.energy.totalJ());
}

TEST(Graph, AttentionDilutesEndToEndSpeedup)
{
    // Amdahl: with dense attention in the denominator, the full-pass
    // speedup is lower than the weights-only speedup.
    using accel::AccelKind;
    const auto dense_w =
        accel::runModel(AccelKind::TC, ModelId::BertBase, 0.0, 128);
    const auto sparse_w =
        accel::runModel(AccelKind::TbStc, ModelId::BertBase, 0.75, 128);
    const auto dense_full = accel::runInference(
        AccelKind::TC, ModelId::BertBase, 0.0, 128);
    const auto sparse_full = accel::runInference(
        AccelKind::TbStc, ModelId::BertBase, 0.75, 128);
    const double weights_speedup = dense_w.cycles / sparse_w.cycles;
    const double full_speedup =
        dense_full.cycles / sparse_full.cycles;
    EXPECT_LT(full_speedup, weights_speedup);
    EXPECT_GT(full_speedup, 1.0);
}

} // namespace
