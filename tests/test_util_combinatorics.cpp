/**
 * @file
 * Unit tests for log-space combinatorics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/combinatorics.hpp"
#include "util/logging.hpp"

namespace {

using namespace tbstc::util;

TEST(ChooseExact, KnownValues)
{
    EXPECT_EQ(chooseExact(0, 0), 1u);
    EXPECT_EQ(chooseExact(8, 0), 1u);
    EXPECT_EQ(chooseExact(8, 8), 1u);
    EXPECT_EQ(chooseExact(8, 4), 70u);
    EXPECT_EQ(chooseExact(8, 2), 28u);
    EXPECT_EQ(chooseExact(52, 5), 2598960u);
    EXPECT_EQ(chooseExact(62, 31), 465428353255261088ull);
}

TEST(ChooseExact, KOverNIsZero)
{
    EXPECT_EQ(chooseExact(4, 5), 0u);
}

TEST(ChooseExact, PascalIdentity)
{
    for (uint64_t n = 1; n <= 30; ++n)
        for (uint64_t k = 1; k <= n; ++k)
            EXPECT_EQ(chooseExact(n, k),
                      chooseExact(n - 1, k - 1) + chooseExact(n - 1, k));
}

TEST(ChooseExact, OverflowPanics)
{
    EXPECT_THROW(chooseExact(128, 64), PanicError);
}

TEST(Log2Choose, MatchesExactSmall)
{
    for (uint64_t n = 1; n <= 40; ++n) {
        for (uint64_t k = 0; k <= n; ++k) {
            const double expect =
                std::log2(static_cast<double>(chooseExact(n, k)));
            EXPECT_NEAR(log2Choose(double(n), double(k)), expect, 1e-9)
                << n << " choose " << k;
        }
    }
}

TEST(Log2Choose, OutOfRangeIsMinusInfinity)
{
    EXPECT_TRUE(std::isinf(log2Choose(4, 5)));
    EXPECT_LT(log2Choose(4, 5), 0);
    EXPECT_TRUE(std::isinf(log2Choose(4, -1)));
}

TEST(Log2SumExp2, SimpleSums)
{
    // 2^3 + 2^3 = 2^4.
    const double terms[] = {3.0, 3.0};
    EXPECT_NEAR(log2SumExp2(terms), 4.0, 1e-12);
}

TEST(Log2SumExp2, DominantTermWins)
{
    const double terms[] = {1000.0, 0.0};
    EXPECT_NEAR(log2SumExp2(terms), 1000.0, 1e-9);
}

TEST(Log2SumExp2, EmptyIsMinusInfinity)
{
    EXPECT_TRUE(std::isinf(log2SumExp2({})));
}

TEST(Log2SumExp2, MatchesDirectComputation)
{
    const double terms[] = {2.0, 5.0, 7.5, 3.3};
    double direct = 0.0;
    for (double t : terms)
        direct += std::exp2(t);
    EXPECT_NEAR(log2SumExp2(terms), std::log2(direct), 1e-12);
}

TEST(Log2AddExp2, TwoTerms)
{
    EXPECT_NEAR(log2AddExp2(0.0, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(log2AddExp2(10.0, 10.0), 11.0, 1e-12);
}

} // namespace
