/**
 * @file
 * Unit tests for block-level statistics (paper Fig. 17 machinery).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/blockstats.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "util/rng.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc::core;
using tbstc::util::Rng;

TEST(BlockStats, ClassifyKinds)
{
    EXPECT_EQ(classifyBlock({0, SparsityDim::Reduction}, 8),
              BlockKind::Other);
    EXPECT_EQ(classifyBlock({8, SparsityDim::Independent}, 8),
              BlockKind::Other);
    EXPECT_EQ(classifyBlock({4, SparsityDim::Reduction}, 8),
              BlockKind::RowSparse);
    EXPECT_EQ(classifyBlock({2, SparsityDim::Independent}, 8),
              BlockKind::ColSparse);
}

TEST(BlockStats, DistributionSumsToOne)
{
    // Structured (channel/region-scaled) weights, like a trained net.
    const Matrix w =
        tbstc::workload::synthWeights({"bs-probe", 128, 128, 1}, 1);
    const Matrix s = magnitudeScores(w);
    const TbsResult res = tbsMask(s, 0.6, 8, defaultCandidates(8));
    const DirectionDistribution d = directionDistribution(res.meta);
    EXPECT_NEAR(d.rowFrac + d.colFrac + d.otherFrac, 1.0, 1e-9);
    EXPECT_EQ(d.blocks, 16u * 16u);
    // At a moderate sparsity all three categories appear.
    EXPECT_GT(d.rowFrac, 0.0);
    EXPECT_GT(d.colFrac, 0.0);
    EXPECT_GT(d.otherFrac, 0.0);
}

TEST(BlockStats, EmptyMetaSafe)
{
    const DirectionDistribution d = directionDistribution(TbsMeta{});
    EXPECT_EQ(d.blocks, 0u);
    EXPECT_EQ(d.rowFrac, 0.0);
}

TEST(BlockStats, BlockNnzCounts)
{
    Mask m(16, 16);
    for (size_t c = 0; c < 8; ++c)
        m.at(0, c) = 1; // 8 in block (0,0).
    m.at(8, 8) = 1;     // 1 in block (1,1).
    const auto nnz = blockNnz(m, 8);
    ASSERT_EQ(nnz.size(), 4u);
    EXPECT_EQ(nnz[0], 8u);
    EXPECT_EQ(nnz[1], 0u);
    EXPECT_EQ(nnz[2], 0u);
    EXPECT_EQ(nnz[3], 1u);
}

TEST(BlockStats, NaiveUtilisationBounds)
{
    // Uniform blocks -> perfect utilisation.
    std::vector<size_t> uniform(16, 32);
    EXPECT_NEAR(naiveInterBlockUtilisation(uniform, 4, 8), 1.0, 1e-9);

    // Highly skewed blocks -> poor utilisation.
    std::vector<size_t> skewed{64, 0, 0, 0};
    const double u = naiveInterBlockUtilisation(skewed, 4, 8);
    EXPECT_NEAR(u, 0.25, 1e-9);

    // Bounds in general.
    Rng rng(3);
    std::vector<size_t> random(64);
    for (auto &v : random)
        v = rng.below(65);
    const double ur = naiveInterBlockUtilisation(random, 16, 8);
    EXPECT_GT(ur, 0.0);
    EXPECT_LE(ur, 1.0);
}

TEST(BlockStats, MixedSparsityShowsImbalance)
{
    // The paper's motivation: ~45% utilisation under direct mapping of
    // a mixed-N TBS layout. Construct blocks with N in {0,1,2,4,8}.
    Rng rng(5);
    std::vector<size_t> nnz;
    const size_t ns[] = {0, 8, 16, 32, 64};
    for (size_t i = 0; i < 256; ++i)
        nnz.push_back(ns[rng.below(5)]);
    const double u = naiveInterBlockUtilisation(nnz, 16, 8);
    EXPECT_LT(u, 0.6);
    EXPECT_GT(u, 0.2);
}

} // namespace
