/**
 * @file
 * Serve daemon tests: JSON parser, wire protocol, bounded queue,
 * and end-to-end server behavior (byte-identity with the one-shot
 * path, back-pressure, drain semantics).
 *
 * The end-to-end tests speak the real protocol over real sockets but
 * stay deterministic: the batcher test hook lets a test hold the
 * batcher so queue fill, busy rejection, and drain ordering are exact,
 * not timing-dependent.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "accel/accelerator.hpp"
#include "serve/exec.hpp"
#include "serve/jsonv.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"

namespace {

using namespace tbstc;
using namespace tbstc::serve;

// ---------------------------------------------------------------- jsonv

TEST(ServeJson, ParsesScalarsObjectsAndArrays)
{
    const auto doc = parseJson(
        R"({"a": 1.5, "b": "x\ny", "c": [true, false, null], "d": {}})");
    ASSERT_TRUE(doc.ok());
    EXPECT_DOUBLE_EQ(doc->get("a").asNumber(), 1.5);
    EXPECT_EQ(doc->get("b").asString(), "x\ny");
    EXPECT_EQ(doc->get("c").asArray().size(), 3u);
    EXPECT_TRUE(doc->get("c").asArray()[0].asBool(false));
    EXPECT_TRUE(doc->get("d").isObject());
    EXPECT_FALSE(doc->has("missing"));
}

TEST(ServeJson, RejectsMalformedDocuments)
{
    EXPECT_FALSE(parseJson("").ok());
    EXPECT_FALSE(parseJson("{").ok());
    EXPECT_FALSE(parseJson("{\"a\": }").ok());
    EXPECT_FALSE(parseJson("[1, 2,]").ok());
    EXPECT_FALSE(parseJson("{\"a\": 1} trailing").ok());
    EXPECT_FALSE(parseJson("nul").ok());
    EXPECT_FALSE(parseJson("\"unterminated").ok());
}

TEST(ServeJson, DepthIsBounded)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += "[";
    const auto doc = parseJson(deep);
    ASSERT_FALSE(doc.ok());
    EXPECT_NE(doc.error().message.find("deep"), std::string::npos);
}

TEST(ServeJson, UnicodeEscapesDecodeToUtf8)
{
    const auto doc = parseJson(R"({"s": "é中"})");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc->get("s").asString(), "\xc3\xa9\xe4\xb8\xad");
}

TEST(ServeJson, QuoteAndParseRoundTrip)
{
    const std::string nasty = "a\"b\\c\n\t\x01z";
    const auto doc = parseJson("{\"k\": " + jsonQuote(nasty) + "}");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc->get("k").asString(), nasty);
}

TEST(ServeJson, DepthCapBoundaryIsExact)
{
    // The document's root parses at depth 0 and each nesting level
    // adds one, so kJsonMaxDepth+1 nested arrays are the deepest
    // accepted document and one more level must fail — cleanly, not
    // by exhausting the stack.
    const auto nested = [](size_t n) {
        std::string s(n, '[');
        s.append(n, ']');
        return s;
    };
    EXPECT_TRUE(parseJson(nested(kJsonMaxDepth + 1)).ok());
    const auto over = parseJson(nested(kJsonMaxDepth + 2));
    ASSERT_FALSE(over.ok());
    EXPECT_NE(over.error().message.find("deep"), std::string::npos);
}

TEST(ServeJson, UnterminatedStringsErrorAtEveryCutPoint)
{
    // Every prefix of a document that ends inside a string (including
    // mid-escape and mid-\uXXXX) must error, never read past the end.
    const std::string doc = R"({"k": "a\\b\u0041c"})";
    for (size_t cut = 7; cut + 2 < doc.size(); ++cut)
        EXPECT_FALSE(parseJson(doc.substr(0, cut)).ok())
            << "prefix length " << cut;
}

TEST(ServeJson, NonFiniteNumberLiteralsAreRejected)
{
    EXPECT_FALSE(parseJson("NaN").ok());
    EXPECT_FALSE(parseJson("nan").ok());
    EXPECT_FALSE(parseJson("Infinity").ok());
    EXPECT_FALSE(parseJson("-Infinity").ok());
    EXPECT_FALSE(parseJson("{\"x\": 1e999}").ok());
    EXPECT_FALSE(parseJson("{\"x\": -1e999}").ok());
    EXPECT_FALSE(parseJson("{\"x\": 0x10}").ok());
    // The boundary of finite doubles still parses.
    EXPECT_TRUE(parseJson("{\"x\": 1e308}").ok());
}

TEST(ServeJson, DuplicateKeysLastValueWins)
{
    const auto doc = parseJson(R"({"k": 1, "k": 2, "k": 3})");
    ASSERT_TRUE(doc.ok());
    EXPECT_DOUBLE_EQ(doc->get("k").asNumber(), 3.0);
}

TEST(ServeJson, MultiMegabyteInputsParseOrErrorCleanly)
{
    // The parser has no size cap of its own (the wire frame cap is
    // the daemon's bound); inputs beyond 1 MiB must parse or error
    // without aborting or overrunning.
    std::string big = "[";
    while (big.size() < (2u << 20))
        big += "\"0123456789abcdef\", ";
    big += "1]";
    const auto ok = parseJson(big);
    ASSERT_TRUE(ok.ok());
    EXPECT_GT(ok->asArray().size(), 100000u);

    big.pop_back(); // drop the ']': unterminated 2 MiB document
    EXPECT_FALSE(parseJson(big).ok());
}

// ------------------------------------------------------------- protocol

TEST(ServeProtocol, RequestRoundTripsThroughSerialization)
{
    Request req;
    req.id = 7;
    req.op = Op::Run;
    req.run.kind = accel::AccelKind::STC;
    req.run.layer = "256x128x2";
    req.run.sparsity = 0.75;
    req.run.seed = 9;
    req.run.bw = 100.0;
    const auto parsed = parseRequest(serializeRequest(req));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->id, 7u);
    EXPECT_EQ(parsed->op, Op::Run);
    EXPECT_EQ(parsed->run.kind, accel::AccelKind::STC);
    EXPECT_EQ(parsed->run.layer, "256x128x2");
    EXPECT_DOUBLE_EQ(parsed->run.sparsity, 0.75);
    EXPECT_EQ(parsed->run.seed, 9u);
    ASSERT_TRUE(parsed->run.bw.has_value());
    EXPECT_DOUBLE_EQ(*parsed->run.bw, 100.0);
    // Strategy-less requests serialize without the field, preserving
    // the pre-strategy wire bytes (batcher dedup keys on them).
    EXPECT_EQ(serializeRequest(req).find("strategy"), std::string::npos);
}

TEST(ServeProtocol, MaskStrategyRoundTripsAndValidates)
{
    Request req;
    req.id = 11;
    req.op = Op::Run;
    req.run.layer = "64x64x1";
    req.run.strategy = "optimal";
    const auto parsed = parseRequest(serializeRequest(req));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->run.strategy, "optimal");

    Request sp;
    sp.id = 12;
    sp.op = Op::Sparsify;
    sp.sparsify.layer = "64x64x1";
    sp.sparsify.strategy = "greedy";
    const auto sparsed = parseRequest(serializeRequest(sp));
    ASSERT_TRUE(sparsed.ok());
    EXPECT_EQ(sparsed->sparsify.strategy, "greedy");

    // Unknown strategies are rejected at parse time on both ops, with
    // the offending name in the diagnostic.
    const auto bad_run = parseRequest(
        R"({"id": 3, "op": "run", "accel": "tbstc",
            "layer": "8x8x1", "strategy": "anneal"})");
    ASSERT_FALSE(bad_run.ok());
    EXPECT_EQ(bad_run.error().id, 3u);
    EXPECT_NE(bad_run.error().message.find("anneal"),
              std::string::npos);
    EXPECT_FALSE(parseRequest(
                     R"({"op": "sparsify", "layer": "8x8x1",
                         "strategy": "anneal"})")
                     .ok());
}

TEST(ServeProtocol, ValidationErrorsCarryTheRequestId)
{
    const auto bad = parseRequest(
        R"({"id": 42, "op": "run", "accel": "nope", "layer": "8x8x1"})");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().id, 42u);
    EXPECT_NE(bad.error().message.find("nope"), std::string::npos);

    EXPECT_FALSE(parseRequest("{\"op\": \"run\"}").ok());
    EXPECT_FALSE(parseRequest("{\"op\": \"warp\"}").ok());
    EXPECT_FALSE(parseRequest("not json").ok());
    EXPECT_FALSE(
        parseRequest(
            R"({"op": "run", "accel": "tbstc", "layer": "8x8x1",
                "sparsity": 1.5})")
            .ok());
    EXPECT_FALSE(
        parseRequest(R"({"op": "sparsify", "layer": "bad"})").ok());
}

TEST(ServeProtocol, UnknownFieldsAreIgnored)
{
    const auto parsed = parseRequest(
        R"({"op": "ping", "future_field": {"x": [1, 2]}})");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->op, Op::Ping);
}

TEST(ServeProtocol, FramesRoundTripOverASocketPair)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string payload = "{\"op\": \"ping\"}";
    ASSERT_TRUE(writeFrame(fds[0], payload));
    std::string got;
    EXPECT_EQ(readFrame(fds[1], got), FrameStatus::Ok);
    EXPECT_EQ(got, payload);

    // Orderly close surfaces as Eof before a length prefix.
    ::close(fds[0]);
    EXPECT_EQ(readFrame(fds[1], got), FrameStatus::Eof);
    ::close(fds[1]);
}

TEST(ServeProtocol, OversizedFrameIsRejected)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // Hand-craft a header whose length exceeds the cap.
    const uint8_t hdr[4] = {0xff, 0xff, 0xff, 0x7f};
    ASSERT_EQ(::send(fds[0], hdr, 4, 0), 4);
    std::string got;
    EXPECT_EQ(readFrame(fds[1], got, 1 << 10), FrameStatus::TooBig);
    ::close(fds[0]);
    ::close(fds[1]);
}

// ---------------------------------------------------------------- queue

TEST(ServeQueue, BackPressureAndDrainSemantics)
{
    BoundedQueue<int> q(2);
    EXPECT_EQ(q.tryPush(1), PushResult::Ok);
    EXPECT_EQ(q.tryPush(2), PushResult::Ok);
    EXPECT_EQ(q.tryPush(3), PushResult::Full);
    EXPECT_EQ(q.depth(), 2u);

    q.close();
    EXPECT_EQ(q.tryPush(4), PushResult::Closed);

    // Drain continues to hand out queued items after close...
    const auto batch = q.popBatch(8);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0], 1);
    EXPECT_EQ(batch[1], 2);
    // ...and then signals completion with an empty batch.
    EXPECT_TRUE(q.popBatch(8).empty());
}

TEST(ServeQueue, PopBlocksUntilPushOrClose)
{
    BoundedQueue<int> q(4);
    std::thread producer([&] { q.tryPush(11); });
    const auto batch = q.popBatch(2);
    producer.join();
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0], 11);
}

// ----------------------------------------------------------- end-to-end

/** Client half of the protocol for tests: one blocking connection. */
class TestClient
{
  public:
    explicit TestClient(uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        connected_ =
            fd_ >= 0
            && ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                         sizeof addr)
                == 0;
    }
    ~TestClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return connected_; }
    bool send(const Request &req)
    {
        return writeFrame(fd_, serializeRequest(req));
    }
    bool sendRaw(std::string_view payload)
    {
        return writeFrame(fd_, payload);
    }

    /** Read one response; returns the parsed document. */
    JsonValue recv()
    {
        std::string frame;
        if (readFrame(fd_, frame) != FrameStatus::Ok)
            return {};
        auto doc = parseJson(frame);
        return doc.ok() ? *std::move(doc) : JsonValue{};
    }

  private:
    int fd_ = -1;
    bool connected_ = false;
};

/** Spin until the server has accepted @p n requests into the queue. */
void
awaitAccepted(const Server &server, uint64_t n)
{
    while (server.counters().accepted < n)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

Request
runRequest(uint64_t id, const std::string &layer, double sparsity)
{
    Request req;
    req.id = id;
    req.op = Op::Run;
    req.run.kind = accel::AccelKind::TbStc;
    req.run.layer = layer;
    req.run.sparsity = sparsity;
    return req;
}

TEST(ServeServer, RunResponseIsByteIdenticalToOneShot)
{
    ServerOptions opts;
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    TestClient client(*started);
    ASSERT_TRUE(client.connected());

    const Request req = runRequest(3, "64x64x1", 0.5);
    ASSERT_TRUE(client.send(req));
    const JsonValue resp = client.recv();
    ASSERT_TRUE(resp.get("ok").asBool(false));
    EXPECT_DOUBLE_EQ(resp.get("id").asNumber(), 3.0);

    // The acceptance bar: the daemon's csv field must be the exact
    // bytes the one-shot path prints for the same spec — including
    // the display label `tbstc run` uses.
    const std::string expected = formatStats(
        accel::accelName(req.run.kind), executeRun(req.run), true);
    EXPECT_EQ(resp.get("result").get("csv").asString(), expected);

    server.beginShutdown();
    server.wait();
    EXPECT_EQ(server.counters().answered, 1u);
}

TEST(ServeServer, SparsifyPingStatsAndBadRequests)
{
    ServerOptions opts;
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    TestClient client(*started);
    ASSERT_TRUE(client.connected());

    // Ping is answered inline by the reader.
    Request ping;
    ping.id = 1;
    ping.op = Op::Ping;
    ASSERT_TRUE(client.send(ping));
    JsonValue resp = client.recv();
    EXPECT_TRUE(resp.get("ok").asBool(false));
    EXPECT_TRUE(resp.get("result").get("pong").asBool(false));

    // Sparsify reports the DDC summary; the CRC must match the
    // in-process execution (shared code, same bytes).
    Request sp;
    sp.id = 2;
    sp.op = Op::Sparsify;
    sp.sparsify.layer = "64x64x1";
    sp.sparsify.sparsity = 0.75;
    ASSERT_TRUE(client.send(sp));
    resp = client.recv();
    ASSERT_TRUE(resp.get("ok").asBool(false));
    const auto local = executeSparsify(sp.sparsify);
    EXPECT_DOUBLE_EQ(resp.get("result").get("ddc_crc32").asNumber(),
                     static_cast<double>(local.ddcCrc32));
    EXPECT_DOUBLE_EQ(resp.get("result").get("nnz").asNumber(),
                     static_cast<double>(local.nnz));

    // Stats responses carry the server section and embedded metrics.
    Request st;
    st.id = 3;
    st.op = Op::Stats;
    ASSERT_TRUE(client.send(st));
    resp = client.recv();
    ASSERT_TRUE(resp.get("ok").asBool(false));
    const JsonValue &stats = resp.get("result");
    EXPECT_EQ(stats.get("schema").asString(), "tbstc.serve.stats.v1");
    EXPECT_GE(stats.get("server").get("accepted").asNumber(), 2.0);
    EXPECT_TRUE(stats.get("metrics").isObject());

    // A malformed request gets a bad_request answer with its id and
    // does not kill the connection.
    ASSERT_TRUE(client.sendRaw(
        R"({"id": 9, "op": "run", "accel": "bogus", "layer": "8x8x1"})"));
    resp = client.recv();
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("kind").asString(), "bad_request");
    EXPECT_DOUBLE_EQ(resp.get("id").asNumber(), 9.0);

    // So does an unknown mask-search strategy, on either op.
    ASSERT_TRUE(client.sendRaw(
        R"({"id": 11, "op": "sparsify", "layer": "64x64x1",
            "strategy": "anneal"})"));
    resp = client.recv();
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("kind").asString(), "bad_request");
    EXPECT_DOUBLE_EQ(resp.get("id").asNumber(), 11.0);

    Request again;
    again.id = 10;
    again.op = Op::Ping;
    ASSERT_TRUE(client.send(again));
    EXPECT_TRUE(client.recv().get("ok").asBool(false));

    server.beginShutdown();
    server.wait();
    const ServerCounters c = server.counters();
    EXPECT_EQ(c.badRequests, 2u);
    EXPECT_EQ(c.pings, 2u);
}

TEST(ServeServer, DuplicateRequestsCoalesceIntoOneExecution)
{
    // Hold the batcher through its first pop so all four duplicates
    // land in one batch deterministically.
    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;

    ServerOptions opts;
    opts.maxBatch = 8;
    opts.batchHook = [&](size_t) {
        std::unique_lock lk(m);
        entered = true;
        cv.notify_all();
        cv.wait(lk, [&] { return release; });
    };
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    TestClient client(*started);
    ASSERT_TRUE(client.connected());

    // First request occupies the batcher (hook blocks)...
    ASSERT_TRUE(client.send(runRequest(1, "32x32x1", 0.5)));
    {
        std::unique_lock lk(m);
        cv.wait(lk, [&] { return entered; });
    }
    // ...so these four land in the queue and form the second batch:
    // three duplicates and one distinct request.
    for (uint64_t id = 2; id <= 4; ++id)
        ASSERT_TRUE(client.send(runRequest(id, "48x48x1", 0.5)));
    ASSERT_TRUE(client.send(runRequest(5, "32x32x1", 0.75)));
    awaitAccepted(server, 5);
    {
        std::lock_guard lk(m);
        release = true;
    }
    cv.notify_all();

    std::vector<std::string> csvs;
    for (int i = 0; i < 5; ++i) {
        const JsonValue resp = client.recv();
        ASSERT_TRUE(resp.get("ok").asBool(false));
        if (resp.get("id").asNumber() >= 2.0
            && resp.get("id").asNumber() <= 4.0)
            csvs.push_back(resp.get("result").get("csv").asString());
    }
    ASSERT_EQ(csvs.size(), 3u);
    EXPECT_EQ(csvs[0], csvs[1]);
    EXPECT_EQ(csvs[1], csvs[2]);

    server.beginShutdown();
    server.wait();
    const ServerCounters c = server.counters();
    EXPECT_EQ(c.answered, 5u);
    EXPECT_EQ(c.dedupHits, 2u);
}

TEST(ServeServer, FullQueueAnswersBusyWithRetryAfter)
{
    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;

    ServerOptions opts;
    opts.limits.queueCapacity = 2;
    opts.maxBatch = 1;
    opts.limits.retryAfterMs = 77;
    opts.batchHook = [&](size_t) {
        std::unique_lock lk(m);
        entered = true;
        cv.notify_all();
        cv.wait(lk, [&] { return release; });
        entered = false;
    };
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    TestClient client(*started);
    ASSERT_TRUE(client.connected());

    // One request held in the batcher, two filling the queue...
    ASSERT_TRUE(client.send(runRequest(1, "16x16x1", 0.5)));
    {
        std::unique_lock lk(m);
        cv.wait(lk, [&] { return entered; });
    }
    ASSERT_TRUE(client.send(runRequest(2, "16x16x1", 0.5)));
    ASSERT_TRUE(client.send(runRequest(3, "16x16x1", 0.5)));
    // ...so the fourth is rejected with busy + the retry hint.
    ASSERT_TRUE(client.send(runRequest(4, "16x16x1", 0.5)));
    const JsonValue busy = client.recv();
    EXPECT_FALSE(busy.get("ok").asBool(true));
    EXPECT_EQ(busy.get("kind").asString(), "busy");
    EXPECT_DOUBLE_EQ(busy.get("id").asNumber(), 4.0);
    EXPECT_DOUBLE_EQ(busy.get("retry_after_ms").asNumber(), 77.0);

    {
        std::lock_guard lk(m);
        release = true;
    }
    cv.notify_all();
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(client.recv().get("ok").asBool(false));

    server.beginShutdown();
    server.wait();
    EXPECT_EQ(server.counters().busyRejected, 1u);
    EXPECT_EQ(server.counters().answered, 3u);
}

TEST(ServeServer, DrainAnswersAcceptedAndRefusesNew)
{
    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;

    ServerOptions opts;
    opts.maxBatch = 2;
    opts.batchHook = [&](size_t) {
        std::unique_lock lk(m);
        if (!entered) {
            entered = true;
            cv.notify_all();
            cv.wait(lk, [&] { return release; });
        }
    };
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    TestClient client(*started);
    ASSERT_TRUE(client.connected());

    // Five accepted requests: some held in the first batch, the rest
    // queued behind it when the drain begins.
    ASSERT_TRUE(client.send(runRequest(1, "16x16x1", 0.5)));
    {
        std::unique_lock lk(m);
        cv.wait(lk, [&] { return entered; });
    }
    for (uint64_t id = 2; id <= 5; ++id)
        ASSERT_TRUE(client.send(runRequest(id, "16x16x1", 0.5)));
    awaitAccepted(server, 5);

    server.beginShutdown();

    // A frame arriving during the drain is refused, not dropped.
    ASSERT_TRUE(client.send(runRequest(6, "16x16x1", 0.5)));
    const JsonValue refused = client.recv();
    EXPECT_FALSE(refused.get("ok").asBool(true));
    EXPECT_EQ(refused.get("kind").asString(), "shutting_down");
    EXPECT_DOUBLE_EQ(refused.get("id").asNumber(), 6.0);

    {
        std::lock_guard lk(m);
        release = true;
    }
    cv.notify_all();

    // Every accepted request is answered before wait() returns.
    std::vector<double> ids;
    for (int i = 0; i < 5; ++i) {
        const JsonValue resp = client.recv();
        EXPECT_TRUE(resp.get("ok").asBool(false));
        ids.push_back(resp.get("id").asNumber());
    }
    server.wait();
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, (std::vector<double>{1, 2, 3, 4, 5}));
    const ServerCounters c = server.counters();
    EXPECT_EQ(c.accepted, 5u);
    EXPECT_EQ(c.answered, 5u);
    EXPECT_EQ(c.drainRejected, 1u);
}

TEST(ServeServer, UnixSocketRoundTrip)
{
    const std::string path = testing::TempDir() + "tbstc-serve-"
        + std::to_string(::getpid()) + ".sock";
    ServerOptions opts;
    opts.socketPath = path;
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s",
                  path.c_str());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    Request ping;
    ping.id = 5;
    ping.op = Op::Ping;
    ASSERT_TRUE(writeFrame(fd, serializeRequest(ping)));
    std::string frame;
    ASSERT_EQ(readFrame(fd, frame), FrameStatus::Ok);
    const auto doc = parseJson(frame);
    ASSERT_TRUE(doc.ok());
    EXPECT_TRUE(doc->get("ok").asBool(false));
    ::close(fd);

    server.beginShutdown();
    server.wait();
    // The socket file is removed by the drain.
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(ServeLoadgen, MixIsDeterministicAndCommandsPrintable)
{
    const auto a = buildMix(50, 7);
    const auto b = buildMix(50, 7);
    ASSERT_EQ(a.size(), 50u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(serializeRequest(a[i]), serializeRequest(b[i]));
        EXPECT_EQ(a[i].id, i + 1);
        EXPECT_FALSE(oneShotCommand(a[i]).empty());
    }
    // A different seed must change the mix.
    const auto c = buildMix(50, 8);
    bool differs = false;
    for (size_t i = 0; i < a.size(); ++i)
        differs = differs
            || serializeRequest(a[i]) != serializeRequest(c[i]);
    EXPECT_TRUE(differs);
}

} // namespace
