/**
 * @file
 * Fault-tolerance tests for the serve daemon: I/O deadlines reaping
 * slow-loris and half-open clients, per-client fairness (token
 * bucket + in-flight cap), request deadlines, accept-time shedding,
 * hot limit reload semantics (including the reload-races-active-
 * requests case SIGHUP exercises), growing busy hints, and the
 * ServeLimits config format. Runs under TSan in CI's serve-smoke job
 * via the Serve* filter.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/config.hpp"
#include "serve/jsonv.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace tbstc;
using namespace tbstc::serve;

/** Connect to 127.0.0.1:@p port; asserts on failure. */
int
mustConnect(uint16_t port)
{
    std::string err;
    const int fd = connectClient("", port, err);
    EXPECT_GE(fd, 0) << err;
    return fd;
}

/** Send one request; read one response document (5 s client cap). */
JsonValue
roundTrip(int fd, const Request &req)
{
    if (!writeFrame(fd, serializeRequest(req)))
        return {};
    std::string frame;
    if (readFrameDeadline(fd, frame, kDefaultMaxFrameBytes,
                          {5000, 5000})
        != FrameStatus::Ok)
        return {};
    auto doc = parseJson(frame);
    return doc.ok() ? *std::move(doc) : JsonValue{};
}

Request
pingRequest(uint64_t id)
{
    Request req;
    req.id = id;
    req.op = Op::Ping;
    return req;
}

Request
statsRequest(uint64_t id)
{
    Request req;
    req.id = id;
    req.op = Op::Stats;
    return req;
}

Request
runRequest(uint64_t id, const std::string &layer)
{
    Request req;
    req.id = id;
    req.op = Op::Run;
    req.run.kind = accel::AccelKind::TbStc;
    req.run.layer = layer;
    req.run.sparsity = 0.5;
    return req;
}

/** Spin (bounded) until @p pred holds; returns its final value. */
template <typename Pred>
bool
spinUntil(Pred pred, int maxMs = 5000)
{
    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::milliseconds(maxMs);
    while (!pred()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

// ------------------------------------------------- deadlines & reaping

TEST(ServeRobust, SlowLorisAndHalfOpenClientsAreReaped)
{
    ServerOptions opts;
    opts.limits.idleTimeoutMs = 200;
    opts.limits.readTimeoutMs = 200;
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    // Half-open client: connects and never sends a byte.
    const int halfOpen = mustConnect(*started);

    // Slow-loris client: starts a frame, then trickles nothing more.
    const int loris = mustConnect(*started);
    const uint8_t hdr[4] = {32, 0, 0, 0};
    ASSERT_EQ(::send(loris, hdr, sizeof hdr, MSG_NOSIGNAL), 4);
    ASSERT_EQ(::send(loris, "x", 1, MSG_NOSIGNAL), 1);

    // An honest client keeps being served while both hostiles sit on
    // their sockets — the reader threads they pin are reaped, not the
    // whole daemon.
    const int honest = mustConnect(*started);
    for (uint64_t i = 1; i <= 6; ++i) {
        const JsonValue resp = roundTrip(honest, pingRequest(i));
        EXPECT_TRUE(resp.get("ok").asBool(false)) << "ping " << i;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    // Both hostile connections hit a deadline (idle for the half-open
    // one, per-frame for the slow loris).
    EXPECT_TRUE(spinUntil(
        [&] { return server.counters().timeouts >= 2; }))
        << "timeouts=" << server.counters().timeouts;

    // The reaped sockets are really dead: the peer sees EOF.
    std::string leftover;
    EXPECT_NE(readFrameDeadline(halfOpen, leftover,
                                kDefaultMaxFrameBytes, {1000, 1000}),
              FrameStatus::Timeout);

    ::close(halfOpen);
    ::close(loris);
    ::close(honest);
    server.beginShutdown();
    server.wait();
    EXPECT_GE(server.counters().timeouts, 2u);
}

// ---------------------------------------------------- per-client limits

TEST(ServeRobust, GreedyClientIsRateLimitedHonestOneIsNot)
{
    ServerOptions opts;
    opts.limits.ratePerSec = 50.0;
    opts.limits.rateBurst = 10.0;
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    // The greedy client fires far beyond its bucket as fast as the
    // socket allows; the honest one paces under its refill rate.
    // Buckets are per connection, so the greedy client's appetite
    // cannot consume the honest client's budget.
    std::atomic<uint64_t> greedyLimited{0};
    std::atomic<uint64_t> greedyOk{0};
    std::thread greedy([&] {
        const int fd = mustConnect(*started);
        for (uint64_t i = 1; i <= 100; ++i) {
            const JsonValue resp = roundTrip(fd, statsRequest(i));
            if (resp.get("ok").asBool(false))
                greedyOk.fetch_add(1);
            else if (resp.get("kind").asString() == "rate_limited")
                greedyLimited.fetch_add(1);
        }
        ::close(fd);
    });

    const int honest = mustConnect(*started);
    uint64_t honestOk = 0;
    for (uint64_t i = 1; i <= 10; ++i) {
        const JsonValue resp = roundTrip(honest, statsRequest(i));
        if (resp.get("ok").asBool(false))
            ++honestOk;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    greedy.join();
    ::close(honest);

    // Honest throughput stays full (well above the 70% bar): ten
    // paced requests cost at most the burst plus the refill earned
    // while pacing.
    EXPECT_EQ(honestOk, 10u);
    // The greedy client was throttled, and by its own bucket only —
    // rejections carry the typed rate_limited kind.
    EXPECT_GT(greedyLimited.load(), 0u);
    EXPECT_GE(greedyOk.load(), 10u); // at least its burst succeeded

    server.beginShutdown();
    server.wait();
    EXPECT_EQ(server.counters().rateLimited, greedyLimited.load());
}

TEST(ServeRobust, PerConnectionInflightCapRejectsTheExcess)
{
    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;

    ServerOptions opts;
    opts.maxBatch = 1;
    opts.limits.maxInflight = 2;
    opts.batchHook = [&](size_t) {
        std::unique_lock lk(m);
        if (!release) {
            entered = true;
            cv.notify_all();
            cv.wait(lk, [&] { return release; });
        }
    };
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    const int fd = mustConnect(*started);
    // First request held in the batcher (in flight), second queued
    // (in flight): the connection is at its cap.
    ASSERT_TRUE(writeFrame(fd, serializeRequest(runRequest(1, "16x16x1"))));
    {
        std::unique_lock lk(m);
        cv.wait(lk, [&] { return entered; });
    }
    ASSERT_TRUE(writeFrame(fd, serializeRequest(runRequest(2, "16x16x1"))));
    ASSERT_TRUE(spinUntil(
        [&] { return server.counters().accepted >= 2; }));

    // The third is rejected at the fairness gate, before the queue.
    const JsonValue rejected = roundTrip(fd, runRequest(3, "16x16x1"));
    EXPECT_FALSE(rejected.get("ok").asBool(true));
    EXPECT_EQ(rejected.get("kind").asString(), "rate_limited");
    EXPECT_DOUBLE_EQ(rejected.get("id").asNumber(), 3.0);

    {
        std::lock_guard lk(m);
        release = true;
    }
    cv.notify_all();
    // Both in-flight requests complete; the cap frees as they answer.
    for (int i = 0; i < 2; ++i) {
        std::string frame;
        EXPECT_EQ(readFrameDeadline(fd, frame, kDefaultMaxFrameBytes,
                                    {10000, 10000}),
                  FrameStatus::Ok);
    }
    const JsonValue after = roundTrip(fd, runRequest(4, "16x16x1"));
    EXPECT_TRUE(after.get("ok").asBool(false));

    ::close(fd);
    server.beginShutdown();
    server.wait();
    EXPECT_EQ(server.counters().rateLimited, 1u);
}

// ------------------------------------------------------ request deadlines

TEST(ServeRobust, ExpiredDeadlineIsAnsweredWithoutExecuting)
{
    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;

    ServerOptions opts;
    opts.maxBatch = 1;
    opts.batchHook = [&](size_t) {
        std::unique_lock lk(m);
        if (!release) {
            entered = true;
            cv.notify_all();
            cv.wait(lk, [&] { return release; });
        }
    };
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    const int fd = mustConnect(*started);
    // First request occupies the batcher...
    ASSERT_TRUE(writeFrame(fd, serializeRequest(runRequest(1, "16x16x1"))));
    {
        std::unique_lock lk(m);
        cv.wait(lk, [&] { return entered; });
    }
    // ...while a 50 ms-deadline request waits in the queue past it.
    Request dl = runRequest(2, "16x16x1");
    dl.deadlineMs = 50;
    ASSERT_TRUE(writeFrame(fd, serializeRequest(dl)));
    ASSERT_TRUE(spinUntil(
        [&] { return server.counters().accepted >= 2; }));
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    {
        std::lock_guard lk(m);
        release = true;
    }
    cv.notify_all();

    // Request 1 executed; request 2 expired while queued and is
    // answered with the typed error instead of executing.
    bool sawOk = false;
    bool sawExpired = false;
    for (int i = 0; i < 2; ++i) {
        std::string frame;
        ASSERT_EQ(readFrameDeadline(fd, frame, kDefaultMaxFrameBytes,
                                    {10000, 10000}),
                  FrameStatus::Ok);
        const auto doc = parseJson(frame);
        ASSERT_TRUE(doc.ok());
        if (doc->get("ok").asBool(false)) {
            EXPECT_DOUBLE_EQ(doc->get("id").asNumber(), 1.0);
            sawOk = true;
        } else {
            EXPECT_DOUBLE_EQ(doc->get("id").asNumber(), 2.0);
            EXPECT_EQ(doc->get("kind").asString(),
                      "deadline_exceeded");
            sawExpired = true;
        }
    }
    EXPECT_TRUE(sawOk);
    EXPECT_TRUE(sawExpired);

    ::close(fd);
    server.beginShutdown();
    server.wait();
    EXPECT_EQ(server.counters().deadlineExceeded, 1u);
    EXPECT_EQ(server.counters().answered, 2u);
}

TEST(ServeRobust, DeadlineIsExcludedFromTheDedupSignature)
{
    // Identical work with different deadlines must still coalesce:
    // the signature zeroes deadline_ms alongside id.
    Request a = runRequest(1, "32x32x1");
    Request b = runRequest(2, "32x32x1");
    a.deadlineMs = 0;
    b.deadlineMs = 60000;
    Request ka = a;
    Request kb = b;
    ka.id = kb.id = 0;
    ka.deadlineMs = kb.deadlineMs = 0;
    EXPECT_EQ(serializeRequest(ka), serializeRequest(kb));
    EXPECT_NE(serializeRequest(a), serializeRequest(b));

    // And the field round-trips through the wire format.
    const auto parsed = parseRequest(serializeRequest(b));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->deadlineMs, 60000u);
}

// --------------------------------------------- shedding & limit reloads

TEST(ServeRobust, ReloadRacingActiveRequestsKeepsOldLimitsInFlight)
{
    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;

    ServerOptions opts;
    opts.maxBatch = 1;
    opts.batchHook = [&](size_t) {
        std::unique_lock lk(m);
        if (!release) {
            entered = true;
            cv.notify_all();
            cv.wait(lk, [&] { return release; });
        }
    };
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    // Client A is admitted under the default limits and has a request
    // in flight (held by the batch hook) when the reload lands.
    const int a = mustConnect(*started);
    ASSERT_TRUE(writeFrame(a, serializeRequest(runRequest(1, "16x16x1"))));
    {
        std::unique_lock lk(m);
        cv.wait(lk, [&] { return entered; });
    }

    // SIGHUP semantics: reloadLimits() mid-request. New limits cap
    // connections at 1 and throttle hard.
    ServeLimits next = server.currentLimits();
    next.maxConnections = 1;
    next.ratePerSec = 0.0001;
    next.rateBurst = 1.0;
    server.reloadLimits(next);
    EXPECT_EQ(server.currentLimits().maxConnections, 1u);
    EXPECT_EQ(server.counters().reloads, 1u);

    // A new accept sees the new limits: client A is still live, so
    // client B is shed with the typed overloaded error.
    std::string err;
    const int b = connectClient("", *started, err);
    ASSERT_GE(b, 0) << err;
    std::string frame;
    ASSERT_EQ(readFrameDeadline(b, frame, kDefaultMaxFrameBytes,
                                {5000, 5000}),
              FrameStatus::Ok);
    const auto shedDoc = parseJson(frame);
    ASSERT_TRUE(shedDoc.ok());
    EXPECT_EQ(shedDoc->get("kind").asString(), "overloaded");
    ::close(b);

    // Client A's in-flight request finishes under the limits it was
    // admitted with — the reload does not retroactively throttle or
    // drop it — and A's connection keeps its unlimited rate bucket.
    {
        std::lock_guard lk(m);
        release = true;
    }
    cv.notify_all();
    ASSERT_EQ(readFrameDeadline(a, frame, kDefaultMaxFrameBytes,
                                {10000, 10000}),
              FrameStatus::Ok);
    EXPECT_TRUE(parseJson(frame)->get("ok").asBool(false));
    for (uint64_t i = 10; i < 15; ++i) {
        const JsonValue resp = roundTrip(a, statsRequest(i));
        EXPECT_TRUE(resp.get("ok").asBool(false))
            << "old-limits client got throttled after reload";
    }

    ::close(a);
    server.beginShutdown();
    server.wait();
    EXPECT_EQ(server.counters().shed, 1u);
}

TEST(ServeRobust, BusyHintGrowsWithConsecutiveRejections)
{
    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;

    ServerOptions opts;
    opts.maxBatch = 1;
    opts.limits.queueCapacity = 1;
    opts.limits.retryAfterMs = 10;
    opts.batchHook = [&](size_t) {
        std::unique_lock lk(m);
        if (!release) {
            entered = true;
            cv.notify_all();
            cv.wait(lk, [&] { return release; });
        }
    };
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    const int fd = mustConnect(*started);
    // One request held, one filling the queue: everything after is
    // rejected, and the hint scales with the rejection streak.
    ASSERT_TRUE(writeFrame(fd, serializeRequest(runRequest(1, "16x16x1"))));
    {
        std::unique_lock lk(m);
        cv.wait(lk, [&] { return entered; });
    }
    ASSERT_TRUE(writeFrame(fd, serializeRequest(runRequest(2, "16x16x1"))));
    ASSERT_TRUE(spinUntil(
        [&] { return server.counters().accepted >= 2; }));

    double lastHint = 0.0;
    for (uint64_t id = 3; id <= 5; ++id) {
        const JsonValue busy = roundTrip(fd, runRequest(id, "16x16x1"));
        EXPECT_EQ(busy.get("kind").asString(), "busy");
        const double hint = busy.get("retry_after_ms").asNumber(0.0);
        EXPECT_GT(hint, lastHint) << "hint did not grow at id " << id;
        lastHint = hint;
    }
    // First rejection advertised exactly the base hint.
    EXPECT_DOUBLE_EQ(lastHint, 30.0); // 10, 20, 30

    {
        std::lock_guard lk(m);
        release = true;
    }
    cv.notify_all();
    ::close(fd);
    server.beginShutdown();
    server.wait();
    EXPECT_EQ(server.counters().busyRejected, 3u);
}

// ------------------------------------------------------- limits config

TEST(ServeConfig, ParseOverridesOnlyNamedFields)
{
    ServeLimits base;
    base.queueCapacity = 64;
    base.ratePerSec = 5.0;
    const auto parsed = parseLimits(
        R"({"idle_timeout_ms": 1234, "max_connections": 3,
            "future_knob": true})",
        base);
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_EQ(parsed->idleTimeoutMs, 1234u);
    EXPECT_EQ(parsed->maxConnections, 3u);
    // Unnamed fields keep the base values; unknown fields are ignored.
    EXPECT_EQ(parsed->queueCapacity, 64u);
    EXPECT_DOUBLE_EQ(parsed->ratePerSec, 5.0);
}

TEST(ServeConfig, BadFieldsErrorNamingTheField)
{
    const auto bad = parseLimits(R"({"read_timeout_ms": "soon"})");
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.error().find("read_timeout_ms"), std::string::npos);
    EXPECT_FALSE(parseLimits("[1, 2]").ok());
    EXPECT_FALSE(parseLimits("{").ok());
    EXPECT_FALSE(parseLimits(R"({"rate_per_sec": -2})").ok());
}

TEST(ServeConfig, JsonRoundTripsThroughParse)
{
    ServeLimits l;
    l.queueCapacity = 17;
    l.retryAfterMs = 99;
    l.idleTimeoutMs = 1000;
    l.readTimeoutMs = 2000;
    l.writeTimeoutMs = 3000;
    l.maxConnections = 7;
    l.ratePerSec = 2.5;
    l.rateBurst = 4.0;
    l.maxInflight = 3;
    const auto parsed = parseLimits(limitsJson(l));
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_EQ(parsed->queueCapacity, l.queueCapacity);
    EXPECT_EQ(parsed->retryAfterMs, l.retryAfterMs);
    EXPECT_EQ(parsed->idleTimeoutMs, l.idleTimeoutMs);
    EXPECT_EQ(parsed->readTimeoutMs, l.readTimeoutMs);
    EXPECT_EQ(parsed->writeTimeoutMs, l.writeTimeoutMs);
    EXPECT_EQ(parsed->maxConnections, l.maxConnections);
    EXPECT_DOUBLE_EQ(parsed->ratePerSec, l.ratePerSec);
    EXPECT_DOUBLE_EQ(parsed->rateBurst, l.rateBurst);
    EXPECT_EQ(parsed->maxInflight, l.maxInflight);
}

TEST(ServeConfig, StatsResponseReportsTheLiveLimits)
{
    ServerOptions opts;
    opts.limits.queueCapacity = 33;
    opts.limits.maxInflight = 9;
    Server server(opts);
    const auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();

    const int fd = mustConnect(*started);
    const JsonValue resp = roundTrip(fd, statsRequest(1));
    ASSERT_TRUE(resp.get("ok").asBool(false));
    const JsonValue &limits = resp.get("result").get("limits");
    EXPECT_DOUBLE_EQ(limits.get("queue_capacity").asNumber(), 33.0);
    EXPECT_DOUBLE_EQ(limits.get("max_inflight").asNumber(), 9.0);
    const JsonValue &srv = resp.get("result").get("server");
    EXPECT_DOUBLE_EQ(srv.get("live_connections").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(srv.get("reloads").asNumber(), 0.0);

    ::close(fd);
    server.beginShutdown();
    server.wait();
}

} // namespace
