/**
 * @file
 * Tests for the maskable Conv2d layer and SimpleCnn: gradient
 * correctness, training, and TBS masking of conv weights.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "nn/conv_layer.hpp"
#include "util/rng.hpp"

namespace {

using namespace tbstc;
using core::Matrix;
using workload::ConvSpec;

/** Synthetic stripe-orientation image classification task. */
struct ImageData
{
    Matrix x;
    std::vector<size_t> labels;
};

ImageData
makeStripes(size_t n, size_t hw, util::Rng &rng)
{
    ImageData d;
    d.x = Matrix(n, hw * hw);
    d.labels.resize(n);
    for (size_t i = 0; i < n; ++i) {
        const size_t cls = rng.below(3); // horizontal/vertical/diag.
        d.labels[i] = cls;
        const size_t phase = rng.below(3);
        for (size_t y = 0; y < hw; ++y) {
            for (size_t x = 0; x < hw; ++x) {
                const size_t k =
                    cls == 0 ? y : (cls == 1 ? x : x + y);
                const double base = (k + phase) % 3 == 0 ? 1.0 : -0.3;
                d.x.at(i, y * hw + x) = static_cast<float>(
                    base + rng.gaussian(0.0, 0.25));
            }
        }
    }
    return d;
}

TEST(Conv2dLayer, ForwardShape)
{
    util::Rng rng(1);
    ConvSpec s;
    s.cin = 2;
    s.cout = 4;
    s.h = s.w = 6;
    s.pad = 1;
    nn::Conv2dLayer layer(s, rng);
    Matrix x(3, 2 * 6 * 6);
    const Matrix y = layer.forward(x);
    EXPECT_EQ(y.rows(), 3u);
    EXPECT_EQ(y.cols(), 4u * 6u * 6u);
}

TEST(Conv2dLayer, GradientMatchesNumerical)
{
    util::Rng rng(2);
    ConvSpec s;
    s.cin = 1;
    s.cout = 2;
    s.h = s.w = 5;
    s.pad = 1;
    nn::Conv2dLayer layer(s, rng);

    Matrix x(2, 25);
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian());

    // Loss = 0.5 * ||y||^2 so dL/dy = y.
    auto loss_of = [&] {
        const Matrix y = layer.forward(x);
        double acc = 0.0;
        for (float v : y.data())
            acc += 0.5 * static_cast<double>(v) * v;
        return acc;
    };

    // Input-gradient numerical check: dL/dx flows through backward()'s
    // dcols and col2im path, the same math that produces gradW.
    const double eps = 1e-3;
    const Matrix y = layer.forward(x);
    const Matrix dx = layer.backward(y);
    for (size_t idx : {size_t{0}, size_t{12}, x.size() - 1}) {
        const float orig = x.data()[idx];
        x.data()[idx] = orig + static_cast<float>(eps);
        const double lp = loss_of();
        x.data()[idx] = orig - static_cast<float>(eps);
        const double lm = loss_of();
        x.data()[idx] = orig;
        EXPECT_NEAR(dx.data()[idx], (lp - lm) / (2 * eps), 0.05)
            << idx;
    }

    // Weight-gradient check through a full SGD step: after stepping
    // with learning rate lr (no momentum), the loss must drop by
    // about lr * ||gradW||^2 for small lr.
    const double before = loss_of();
    (void)layer.forward(x);
    const Matrix y2 = layer.forward(x);
    (void)layer.backward(y2);
    layer.sgdStep(1e-4, 0.0);
    const double after = loss_of();
    EXPECT_LT(after, before);
}

TEST(Conv2dLayer, MaskZeroesTaps)
{
    util::Rng rng(3);
    ConvSpec s;
    s.cin = 1;
    s.cout = 8;
    s.h = s.w = 4;
    s.pad = 1;
    nn::Conv2dLayer layer(s, rng);
    core::Mask mask(8, 9); // All dropped.
    layer.setMask(mask);
    Matrix x(1, 16);
    for (auto &v : x.data())
        v = 1.0f;
    const Matrix y = layer.forward(x);
    for (float v : y.data())
        EXPECT_EQ(v, 0.0f);
    layer.clearMask();
    EXPECT_FALSE(layer.masked());
}

TEST(SimpleCnn, TrainsOnStripes)
{
    util::Rng rng(5);
    const size_t hw = 8;
    ConvSpec c1;
    c1.cin = 1;
    c1.cout = 8;
    c1.h = c1.w = hw;
    c1.pad = 1;
    ConvSpec c2;
    c2.cin = 8;
    c2.cout = 16;
    c2.h = c2.w = hw;
    c2.pad = 1;
    nn::SimpleCnn cnn(c1, c2, 3, rng);

    const ImageData train = makeStripes(384, hw, rng);
    const ImageData test = makeStripes(192, hw, rng);

    for (int epoch = 0; epoch < 14; ++epoch) {
        const Matrix logits = cnn.forward(train.x);
        (void)cnn.backward(logits, train.labels);
        cnn.sgdStep(0.35);
    }
    EXPECT_GT(cnn.accuracy(test.x, test.labels), 0.6);
}

TEST(SimpleCnn, TbsMaskedConvStillLearns)
{
    util::Rng rng(6);
    const size_t hw = 8;
    ConvSpec c1;
    c1.cin = 1;
    c1.cout = 8;
    c1.h = c1.w = hw;
    c1.pad = 1;
    ConvSpec c2;
    c2.cin = 8;
    c2.cout = 16;
    c2.h = c2.w = hw;
    c2.pad = 1;
    nn::SimpleCnn cnn(c1, c2, 3, rng);

    const ImageData train = makeStripes(384, hw, rng);
    const ImageData test = makeStripes(192, hw, rng);

    for (int epoch = 0; epoch < 14; ++epoch) {
        // Regenerate the TBS mask on conv2's lowered weights (72 cols
        // = 9 blocks of 8) each epoch, exactly like sparse training.
        auto &w2 = cnn.conv2().weights();
        const auto res = core::tbsMask(core::magnitudeScores(w2), 0.5,
                                       8, core::defaultCandidates(8));
        cnn.conv2().setMask(res.mask);
        EXPECT_TRUE(core::validateTbs(res.mask, res.meta));

        const Matrix logits = cnn.forward(train.x);
        (void)cnn.backward(logits, train.labels);
        cnn.sgdStep(0.35, 0.9, 2e-4);
    }
    EXPECT_GT(cnn.accuracy(test.x, test.labels), 0.55);
}

TEST(Conv2dLayer, GradientCriterionScoresConvWeights)
{
    // The Taylor criterion applies to lowered conv weights unchanged.
    util::Rng rng(7);
    Matrix w(16, 72);
    Matrix g(16, 72);
    for (auto &v : w.data())
        v = static_cast<float>(rng.gaussian());
    for (auto &v : g.data())
        v = static_cast<float>(rng.gaussian());
    const Matrix scores = core::gradientScores(w, g);
    const auto res = core::tbsMask(scores, 0.5, 8,
                                   core::defaultCandidates(8));
    EXPECT_TRUE(core::validateTbs(res.mask, res.meta));
    EXPECT_NEAR(res.mask.sparsity(), 0.5, 0.06);
}

} // namespace
