/**
 * @file
 * Tests for the end-to-end sparse-training loop (paper Sec. III-B1).
 */

#include <gtest/gtest.h>

#include "nn/sparse_train.hpp"
#include "util/rng.hpp"

namespace {

using namespace tbstc::nn;
using tbstc::core::Pattern;
using tbstc::util::Rng;

DataSplit
smallData(Rng &rng)
{
    DatasetConfig dc;
    dc.features = 16;
    dc.classes = 4;
    dc.trainSamples = 768;
    dc.testSamples = 256;
    return makeClusterDataset(dc, rng);
}

TrainConfig
quickConfig(Pattern p, double sparsity)
{
    TrainConfig cfg;
    cfg.pattern = p;
    cfg.sparsity = sparsity;
    cfg.epochs = 12;
    cfg.rampEpochs = 5;
    cfg.batch = 128;
    cfg.lr = 0.08;
    return cfg;
}

TEST(SparseTrain, MaskableLayersAreHidden)
{
    Rng rng(1);
    Mlp model({16, 32, 32, 4}, rng);
    const auto idx = maskableLayers(model);
    EXPECT_EQ(idx, (std::vector<size_t>{1}));

    Mlp deep({16, 32, 32, 32, 4}, rng);
    EXPECT_EQ(maskableLayers(deep), (std::vector<size_t>{1, 2}));
}

TEST(SparseTrain, SparsityRampIsMonotone)
{
    Rng rng(2);
    const DataSplit data = smallData(rng);
    Mlp model({16, 32, 32, 4}, rng);
    const TrainResult res =
        sparseTrain(model, data, quickConfig(Pattern::TBS, 0.5), rng);
    ASSERT_EQ(res.history.size(), 12u);
    for (size_t e = 1; e < 5; ++e)
        EXPECT_GE(res.history[e].sparsity + 1e-9,
                  res.history[e - 1].sparsity);
    EXPECT_NEAR(res.history.back().sparsity, 0.5, 0.05);
}

TEST(SparseTrain, MasksAreAppliedDuringTraining)
{
    Rng rng(3);
    const DataSplit data = smallData(rng);
    Mlp model({16, 32, 32, 4}, rng);
    (void)sparseTrain(model, data, quickConfig(Pattern::TS, 0.5), rng);
    const auto &layer = model.layers()[1];
    EXPECT_TRUE(layer.masked);
    EXPECT_NEAR(layer.mask.sparsity(), 0.5, 0.05);
}

TEST(SparseTrain, DenseTrainingLeavesNoMasks)
{
    Rng rng(4);
    const DataSplit data = smallData(rng);
    Mlp model({16, 32, 32, 4}, rng);
    const TrainResult res =
        sparseTrain(model, data, quickConfig(Pattern::Dense, 0.0), rng);
    EXPECT_FALSE(model.layers()[1].masked);
    EXPECT_GT(res.finalAccuracy, 0.55);
    for (const auto &e : res.history)
        EXPECT_EQ(e.sparsity, 0.0);
}

TEST(SparseTrain, LossDecreasesOverTraining)
{
    Rng rng(5);
    const DataSplit data = smallData(rng);
    Mlp model({16, 32, 32, 4}, rng);
    const TrainResult res =
        sparseTrain(model, data, quickConfig(Pattern::TBS, 0.5), rng);
    EXPECT_LT(res.history.back().trainLoss,
              res.history.front().trainLoss * 0.8);
}

TEST(SparseTrain, ModerateSparsityKeepsAccuracy)
{
    // The headline claim of sparse training: at 50% structured
    // sparsity the model stays close to dense accuracy.
    Rng rng_data(6);
    const DataSplit data = smallData(rng_data);

    Rng rng_dense(7);
    Mlp dense({16, 32, 32, 4}, rng_dense);
    const double dense_acc =
        sparseTrain(dense, data, quickConfig(Pattern::Dense, 0.0),
                    rng_dense)
            .finalAccuracy;

    Rng rng_tbs(7);
    Mlp tbs({16, 32, 32, 4}, rng_tbs);
    const double tbs_acc =
        sparseTrain(tbs, data, quickConfig(Pattern::TBS, 0.5), rng_tbs)
            .finalAccuracy;

    EXPECT_GT(tbs_acc, dense_acc - 0.10);
}

} // namespace
