/**
 * @file
 * Cross-module integration tests: the full path from weights through
 * masks, encodings, and the simulator must stay consistent, and the
 * headline paper claims must hold directionally.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/accelerator.hpp"
#include "core/blockstats.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "format/codec.hpp"
#include "format/encoding.hpp"
#include "sim/dram.hpp"
#include "util/rng.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc;
using core::Matrix;
using core::Pattern;
using tbstc::util::Rng;

Matrix
heavyTailMatrix(size_t r, size_t c, uint64_t seed)
{
    Rng rng(seed);
    Matrix m(r, c);
    for (auto &v : m.data())
        v = static_cast<float>(rng.heavyTail() * 0.03);
    return m;
}

/** Channel/region-scaled weights, like a trained layer. */
Matrix
structuredMatrix(size_t r, size_t c, uint64_t seed)
{
    return workload::synthWeights({"integration-probe", r, c, 1}, seed);
}

/**
 * SpMM through the DDC encoding must equal the dense reference on the
 * masked weights: storage, decode, and mask machinery agree end to
 * end.
 */
TEST(Integration, SpmmThroughDdcMatchesReference)
{
    const Matrix w = heavyTailMatrix(64, 64, 1);
    const Matrix scores = core::magnitudeScores(w);
    const core::TbsResult res =
        core::tbsMask(scores, 0.5, 8, core::defaultCandidates(8));

    const auto enc = format::encodeDdc(w, res.mask, res.meta);
    const Matrix a = enc->decode();

    const Matrix b = heavyTailMatrix(64, 16, 2);
    const Matrix d_enc = core::matmul(a, b);
    const Matrix d_ref = core::matmul(core::applyMask(w, res.mask), b);
    EXPECT_LT(core::maxAbsDiff(d_enc, d_ref), 1e-6);
}

/**
 * The codec's computation-format output must contain exactly the
 * block's kept elements: running SpMM on the converted stream equals
 * the dense block reference.
 */
TEST(Integration, CodecOutputComputesCorrectBlockProduct)
{
    const size_t m = 8;
    const Matrix w = heavyTailMatrix(m, m, 3);
    const Matrix scores = core::magnitudeScores(w);
    const core::TbsResult res =
        core::tbsMask(scores, 0.5, m, core::defaultCandidates(m));
    const Matrix a = core::applyMask(w, res.mask);

    // Column-major storage stream of the block.
    std::vector<format::StorageElem> storage;
    for (size_t c = 0; c < m; ++c)
        for (size_t r = 0; r < m; ++r)
            if (res.mask.at(r, c))
                storage.push_back({a.at(r, c),
                                   static_cast<uint8_t>(r),
                                   static_cast<uint8_t>(c)});

    const format::CodecOutput out =
        format::convertToComputation(storage, {m, 2, 2});

    // Reassemble a matrix from the converted stream and compare.
    Matrix rebuilt(m, m);
    for (size_t i = 0; i < out.values.size(); ++i)
        rebuilt.at(out.rids[i], out.iids[i]) = out.values[i];
    EXPECT_LT(core::maxAbsDiff(rebuilt, a), 1e-6);
}

/**
 * Paper Sec. V claim chain: on a TBS-pruned matrix, DDC's delivered
 * bandwidth beats both SDC (redundancy) and CSR (fragmentation), by
 * about the advertised 1.47x.
 */
TEST(Integration, DdcBandwidthBeatsSdcAndCsr)
{
    const Matrix w = structuredMatrix(256, 256, 4);
    const Matrix scores = core::magnitudeScores(w);
    const core::TbsResult res =
        core::tbsMask(scores, 0.75, 8, core::defaultCandidates(8));

    const sim::DramModel dram{sim::ArchConfig{}};
    const auto util = [&](const format::Encoding &enc) {
        const auto t = dram.stream(enc.streamProfile(8));
        // Effective useful bandwidth per bus byte.
        return t.utilisation();
    };
    const double u_sdc = util(*format::encodeSdc(w, res.mask));
    const double u_csr = util(*format::encodeCsr(w, res.mask));
    const double u_ddc =
        util(*format::encodeDdc(w, res.mask, res.meta));

    EXPECT_GT(u_ddc, 0.9);
    EXPECT_LT(u_sdc, 0.75);
    EXPECT_LT(u_csr, 0.75);
    EXPECT_GT(u_ddc / std::max(u_sdc, u_csr), 1.25);
}

/**
 * Paper Sec. VI claim: sparsity-aware scheduling lifts compute
 * utilisation by ~1.5x over direct mapping on a TBS layer.
 */
TEST(Integration, SchedulingLiftsUtilisation)
{
    accel::RunRequest req;
    req.shape = workload::GemmShape{"sched-test", 512, 512, 128};
    req.sparsity = 0.6;

    auto naive_cfg = accel::accelConfig(accel::AccelKind::TbStc);
    naive_cfg.interSched = sim::InterSched::Naive;
    naive_cfg.intraMap = sim::IntraMap::Naive;
    accel::RunRequest naive_req = req;
    naive_req.configOverride = naive_cfg;

    const auto naive = accel::runLayer(accel::AccelKind::TbStc, naive_req);
    const auto aware = accel::runLayer(accel::AccelKind::TbStc, req);

    const double lift =
        aware.computeUtilisation / naive.computeUtilisation;
    EXPECT_GT(lift, 1.2);
    EXPECT_LT(lift, 2.5);
}

/**
 * Fig. 17's headline: TBS-pruned layers use all three block
 * categories, with a sizable independent-direction share — the reason
 * single-dimension patterns are insufficient.
 */
TEST(Integration, DirectionDistributionUsesAllCategories)
{
    const Matrix w = structuredMatrix(256, 256, 5);
    const core::TbsResult res = core::tbsMask(
        core::magnitudeScores(w), 0.6, 8, core::defaultCandidates(8));
    const auto dist = core::directionDistribution(res.meta);
    EXPECT_GT(dist.rowFrac, 0.02);
    EXPECT_GT(dist.colFrac, 0.02);
    EXPECT_GT(dist.otherFrac, 0.02);
}

/**
 * End-to-end EDP ordering at a fixed 75% sparsity on a BERT FFN
 * layer: TB-STC must beat every baseline (the Fig. 12 geometry).
 */
TEST(Integration, EdpOrderingOnBertFfn)
{
    accel::RunRequest req;
    req.shape = workload::GemmShape{"bert.ffn1", 3072, 768, 128};
    req.sparsity = 0.75;

    const auto tb = accel::runLayer(accel::AccelKind::TbStc, req);
    for (auto kind : {accel::AccelKind::TC, accel::AccelKind::STC,
                      accel::AccelKind::Vegeta,
                      accel::AccelKind::HighLight,
                      accel::AccelKind::RmStc}) {
        const auto base = accel::runLayer(kind, req);
        EXPECT_GT(base.edp / tb.edp, 1.0) << accel::accelName(kind);
    }
}

} // namespace
