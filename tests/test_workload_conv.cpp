/**
 * @file
 * Tests for the im2col convolution lowering.
 */

#include <gtest/gtest.h>

#include "core/matrix.hpp"
#include "util/rng.hpp"
#include "workload/conv.hpp"

namespace {

using namespace tbstc;
using core::Matrix;
using workload::ConvSpec;

Matrix
randomWeights(const ConvSpec &spec, uint64_t seed)
{
    util::Rng rng(seed);
    Matrix w(spec.cout, spec.patchSize());
    for (auto &v : w.data())
        v = static_cast<float>(rng.gaussian());
    return w;
}

std::vector<float>
randomImage(const ConvSpec &spec, uint64_t seed)
{
    util::Rng rng(seed ^ 0xabc);
    std::vector<float> img(spec.cin * spec.h * spec.w);
    for (auto &v : img)
        v = static_cast<float>(rng.gaussian());
    return img;
}

TEST(ConvSpec, OutputDims)
{
    ConvSpec s;
    s.h = 8;
    s.w = 8;
    s.kh = 3;
    s.kw = 3;
    EXPECT_EQ(s.outH(), 6u);
    s.pad = 1;
    EXPECT_EQ(s.outH(), 8u);
    s.stride = 2;
    EXPECT_EQ(s.outH(), 4u);
    EXPECT_EQ(s.patchSize(), 9u);
}

TEST(ConvSpec, LoweredShapePadsToBlocks)
{
    ConvSpec s;
    s.name = "test";
    s.cin = 3;
    s.cout = 10;
    s.kh = s.kw = 3;
    s.h = s.w = 8;
    s.pad = 1;
    const auto shape = workload::loweredShape(s, 8);
    EXPECT_EQ(shape.x, 16u); // 10 -> 16.
    EXPECT_EQ(shape.y, 32u); // 27 -> 32.
    EXPECT_EQ(shape.nb, 64u);
}

TEST(ConvSpec, ResNetLayerMatchesModelTable)
{
    // The 3x3 conv of ResNet-50 stage conv4 should lower to the same
    // GEMM shape the workload table lists.
    ConvSpec s;
    s.cin = 256;
    s.cout = 256;
    s.kh = s.kw = 3;
    s.h = s.w = 14;
    s.pad = 1;
    const auto shape = workload::loweredShape(s);
    EXPECT_EQ(shape.x, 256u);
    EXPECT_EQ(shape.y, 2304u);
    EXPECT_EQ(shape.nb, 196u);
}

class ConvLowering
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(ConvLowering, Im2colMatchesDirectConvolution)
{
    const auto [stride, pad, cin] = GetParam();
    ConvSpec s;
    s.cin = cin;
    s.cout = 5;
    s.kh = s.kw = 3;
    s.h = 9;
    s.w = 7;
    s.stride = stride;
    s.pad = pad;

    const Matrix w = randomWeights(s, 1);
    const auto img = randomImage(s, 2);

    // im2col path: cols (pixels x patch) * w^T -> (pixels x cout).
    const Matrix cols = workload::im2col(s, img);
    const auto ref = workload::convReference(s, w, img);

    const size_t pixels = s.outH() * s.outW();
    ASSERT_EQ(cols.rows(), pixels);
    for (uint64_t c = 0; c < s.cout; ++c) {
        for (size_t p = 0; p < pixels; ++p) {
            double acc = 0.0;
            for (size_t k = 0; k < s.patchSize(); ++k)
                acc += static_cast<double>(cols.at(p, k)) * w.at(c, k);
            EXPECT_NEAR(acc, ref[c * pixels + p], 1e-4)
                << "cout " << c << " pixel " << p;
        }
    }
}

std::string
convLoweringName(
    const ::testing::TestParamInfo<std::tuple<int, int, int>> &info)
{
    return "s" + std::to_string(std::get<0>(info.param)) + "_p"
        + std::to_string(std::get<1>(info.param)) + "_c"
        + std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvLowering,
    ::testing::Values(std::make_tuple(1, 0, 1), std::make_tuple(1, 1, 1),
                      std::make_tuple(2, 1, 3), std::make_tuple(1, 1, 4),
                      std::make_tuple(2, 0, 2)),
    convLoweringName);

TEST(ConvLowering, Col2imIsAdjointOfIm2col)
{
    // <im2col(x), y> == <x, col2im(y)> for all x, y: the defining
    // property of the backward pass.
    ConvSpec s;
    s.cin = 2;
    s.cout = 1;
    s.kh = s.kw = 3;
    s.h = 6;
    s.w = 5;
    s.pad = 1;

    const auto x = randomImage(s, 3);
    util::Rng rng(4);
    Matrix y(s.outH() * s.outW(), s.patchSize());
    for (auto &v : y.data())
        v = static_cast<float>(rng.gaussian());

    const Matrix cols = workload::im2col(s, x);
    double lhs = 0.0;
    for (size_t i = 0; i < cols.size(); ++i)
        lhs += static_cast<double>(cols.data()[i]) * y.data()[i];

    const auto folded = workload::col2im(s, y);
    double rhs = 0.0;
    for (size_t i = 0; i < x.size(); ++i)
        rhs += static_cast<double>(x[i]) * folded[i];

    EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(ConvLowering, PaddingRegionsAreZero)
{
    ConvSpec s;
    s.cin = 1;
    s.h = s.w = 4;
    s.kh = s.kw = 3;
    s.pad = 1;
    std::vector<float> img(16, 1.0f);
    const Matrix cols = workload::im2col(s, img);
    // Top-left output pixel: the (0,0) kernel tap reads padding.
    EXPECT_EQ(cols.at(0, 0), 0.0f);
    EXPECT_EQ(cols.at(0, 4), 1.0f); // Center tap reads the image.
}

} // namespace
